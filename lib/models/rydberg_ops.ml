open Qturbo_pauli

let number i =
  Pauli_sum.of_list
    [ (Pauli_string.identity, 0.5); (Pauli_string.single i Pauli.Z, -0.5) ]

let number_number i j =
  if i = j then invalid_arg "Rydberg_ops.number_number: equal sites";
  Pauli_sum.of_list
    [
      (Pauli_string.identity, 0.25);
      (Pauli_string.single i Pauli.Z, -0.25);
      (Pauli_string.single j Pauli.Z, -0.25);
      (Pauli_string.two i Pauli.Z j Pauli.Z, 0.25);
    ]
