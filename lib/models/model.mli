(** Target-system models: the benchmark suite of paper Table 2.

    A model is either a static Hamiltonian or a driven (time-dependent)
    one given as a function of the {e normalised} time [s ∈ [0, 1]] (the
    fraction of the target evolution elapsed). *)

type kind =
  | Static of Qturbo_pauli.Pauli_sum.t
  | Driven of (float -> Qturbo_pauli.Pauli_sum.t)

type t = { name : string; n : int; kind : kind }

val static : name:string -> n:int -> Qturbo_pauli.Pauli_sum.t -> t

val driven : name:string -> n:int -> (float -> Qturbo_pauli.Pauli_sum.t) -> t

val hamiltonian_at : t -> s:float -> Qturbo_pauli.Pauli_sum.t
(** For static models, the Hamiltonian regardless of [s]. *)

val is_driven : t -> bool

val discretize : t -> segments:int -> Qturbo_pauli.Pauli_sum.t list
(** Piecewise-constant approximation (paper §5.3): segment [k] carries the
    Hamiltonian at the segment midpoint [s = (k + 1/2)/segments].  Static
    models yield [segments] copies. *)
