open Qturbo_pauli

let check_n ~min name n =
  if n < min then
    invalid_arg (Printf.sprintf "Benchmarks.%s: need at least %d qubits" name min)

let sum_terms terms = Pauli_sum.of_list terms

let chain_pairs n = List.init (n - 1) (fun i -> (i, i + 1))
let cycle_pairs n = List.init n (fun i -> (i, (i + 1) mod n))

let zz_terms pairs coeff =
  List.map (fun (i, j) -> (Pauli_string.two i Pauli.Z j Pauli.Z, coeff)) pairs

let single_terms n op coeff =
  List.init n (fun i -> (Pauli_string.single i op, coeff))

let ising_chain ?(j = 1.0) ?(h = 1.0) ~n () =
  check_n ~min:2 "ising_chain" n;
  Model.static ~name:"ising-chain" ~n
    (sum_terms (zz_terms (chain_pairs n) j @ single_terms n Pauli.X h))

let ising_cycle ?(j = 1.0) ?(h = 1.0) ~n () =
  check_n ~min:3 "ising_cycle" n;
  Model.static ~name:"ising-cycle" ~n
    (sum_terms (zz_terms (cycle_pairs n) j @ single_terms n Pauli.X h))

let kitaev ?(mu = 1.0) ?(t = 1.0) ?(h = 1.0) ~n () =
  check_n ~min:2 "kitaev" n;
  Model.static ~name:"kitaev" ~n
    (sum_terms
       (zz_terms (chain_pairs n) (mu /. 2.0)
       @ single_terms n Pauli.X (-.t)
       @ single_terms n Pauli.Z (-.h)))

let ising_cycle_plus ?(j = 1.0) ?(h = 1.0) ~n () =
  check_n ~min:5 "ising_cycle_plus" n;
  let nnn = List.init n (fun i -> (i, (i + 2) mod n)) in
  Model.static ~name:"ising-cycle+" ~n
    (sum_terms
       (zz_terms (cycle_pairs n) j
       @ zz_terms nnn (j /. 64.0)
       @ single_terms n Pauli.X h))

let heisenberg_chain ?(j = 1.0) ?(h = 1.0) ~n () =
  check_n ~min:2 "heisenberg_chain" n;
  let pair_terms =
    List.concat_map
      (fun (i, k) ->
        List.map
          (fun op -> (Pauli_string.two i op k op, j))
          [ Pauli.X; Pauli.Y; Pauli.Z ])
      (chain_pairs n)
  in
  Model.static ~name:"heis-chain" ~n
    (sum_terms (pair_terms @ single_terms n Pauli.X h))

let mis_chain ?(u = 1.0) ?(omega = 1.0) ?(alpha = 1.0) ~n () =
  check_n ~min:2 "mis_chain" n;
  let static_part =
    List.fold_left
      (fun acc (i, k) -> Pauli_sum.add acc (Pauli_sum.scale alpha (Rydberg_ops.number_number i k)))
      (sum_terms (single_terms n Pauli.X (omega /. 2.0)))
      (chain_pairs n)
  in
  let at s =
    let detuning = (1.0 -. (2.0 *. s)) *. u in
    List.fold_left
      (fun acc i -> Pauli_sum.add acc (Pauli_sum.scale detuning (Rydberg_ops.number i)))
      static_part
      (List.init n Fun.id)
  in
  Model.driven ~name:"mis-chain" ~n at

let qaoa_chain ?(p = 2) ?(gamma = 1.0) ?(beta = 1.0) ~n () =
  check_n ~min:2 "qaoa_chain" n;
  if p < 1 then invalid_arg "Benchmarks.qaoa_chain: need at least one round";
  (* SimuQ-GenQS-style QAOA as an analog drive: 2p equal slots in
     s ∈ [0, 1) alternating between the MaxCut cost layer γ·ΣZᵢZᵢ₊₁ and
     the mixer layer β·ΣXᵢ.  Discretizing with [segments = 2p] (midpoint
     sampling) reproduces the layer sequence exactly. *)
  let cost = sum_terms (zz_terms (chain_pairs n) gamma) in
  let mixer = sum_terms (single_terms n Pauli.X beta) in
  let slots = 2 * p in
  let at s =
    let k =
      Int.min (slots - 1) (int_of_float (Float.of_int slots *. s))
    in
    if k mod 2 = 0 then cost else mixer
  in
  Model.driven ~name:"qaoa-chain" ~n at

let ising_grid ?(j = 1.0) ?(h = 1.0) ~rows ~cols () =
  if rows < 1 || cols < 1 then
    invalid_arg "Benchmarks.ising_grid: need at least a 1x1 lattice";
  let n = rows * cols in
  check_n ~min:2 "ising_grid" n;
  let site r c = (r * cols) + c in
  let bonds = ref [] in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      if c + 1 < cols then bonds := (site r c, site r (c + 1)) :: !bonds;
      if r + 1 < rows then bonds := (site r c, site (r + 1) c) :: !bonds
    done
  done;
  Model.static ~name:"ising-grid" ~n
    (sum_terms (zz_terms (List.rev !bonds) j @ single_terms n Pauli.X h))

let pxp ?(j = 1.0) ?(h = 1.0) ~n () =
  check_n ~min:2 "pxp" n;
  let blockade =
    List.fold_left
      (fun acc (i, k) -> Pauli_sum.add acc (Pauli_sum.scale j (Rydberg_ops.number_number i k)))
      Pauli_sum.zero (chain_pairs n)
  in
  Model.static ~name:"pxp" ~n
    (Pauli_sum.add blockade (sum_terms (single_terms n Pauli.X h)))

let all_static ~n =
  [
    ising_chain ~n ();
    ising_cycle ~n ();
    kitaev ~n ();
    ising_cycle_plus ~n ();
    heisenberg_chain ~n ();
    pxp ~n ();
  ]

let by_name ~name ~n =
  match name with
  | "ising-chain" -> ising_chain ~n ()
  | "ising-cycle" -> ising_cycle ~n ()
  | "kitaev" -> kitaev ~n ()
  | "ising-cycle+" -> ising_cycle_plus ~n ()
  | "heis-chain" -> heisenberg_chain ~n ()
  | "mis-chain" -> mis_chain ~n ()
  | "qaoa-chain" -> qaoa_chain ~n ()
  | "pxp" -> pxp ~n ()
  | "ising-grid" ->
      let side = int_of_float (Float.round (sqrt (float_of_int n))) in
      if side * side <> n then
        invalid_arg "Benchmarks.by_name: ising-grid needs a square qubit count";
      ising_grid ~rows:side ~cols:side ()
  | other -> invalid_arg ("Benchmarks.by_name: unknown model " ^ other)
