open Qturbo_pauli

type kind = Static of Pauli_sum.t | Driven of (float -> Pauli_sum.t)
type t = { name : string; n : int; kind : kind }

let static ~name ~n h =
  if Pauli_sum.n_qubits h > n then invalid_arg "Model.static: term beyond n";
  { name; n; kind = Static h }

let driven ~name ~n f = { name; n; kind = Driven f }

let hamiltonian_at t ~s =
  match t.kind with Static h -> h | Driven f -> f s

let is_driven t = match t.kind with Static _ -> false | Driven _ -> true

let discretize t ~segments =
  if segments < 1 then invalid_arg "Model.discretize: segments < 1";
  List.init segments (fun k ->
      let s = (float_of_int k +. 0.5) /. float_of_int segments in
      hamiltonian_at t ~s)
