(** Rydberg number-operator expansions shared by the MIS and PXP models.

    [n̂_i = (I − Z_i)/2] projects onto the Rydberg (excited) state; the
    models of paper Table 2 written in terms of [n̂] expand into Pauli
    sums through these helpers. *)

val number : int -> Qturbo_pauli.Pauli_sum.t
(** [n̂_i] as a Pauli sum (identity term included). *)

val number_number : int -> int -> Qturbo_pauli.Pauli_sum.t
(** [n̂_i n̂_j = (I − Z_i − Z_j + Z_iZ_j)/4]; requires [i <> j]. *)
