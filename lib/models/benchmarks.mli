(** The benchmark Hamiltonians of paper Table 2.

    Coefficients default to the paper's evaluation setting (all parameters
    1, in the device's frequency unit) but are exposed for the real-device
    experiments, which use specific [J], [h] values (§7.4). *)

val ising_chain : ?j:float -> ?h:float -> n:int -> unit -> Model.t
(** [J Σ Z_iZ_{i+1} + h Σ X_i] on an open chain. *)

val ising_cycle : ?j:float -> ?h:float -> n:int -> unit -> Model.t
(** Same with periodic boundary. *)

val kitaev : ?mu:float -> ?t:float -> ?h:float -> n:int -> unit -> Model.t
(** [μ/2 Σ Z_iZ_{i+1} − Σ (t X_i + h Z_i)]. *)

val ising_cycle_plus : ?j:float -> ?h:float -> n:int -> unit -> Model.t
(** Ising cycle plus next-nearest-neighbour couplings [J/2⁶ Σ Z_iZ_{i+2}]
    — the van-der-Waals-native variant from the paper's reference [11]. *)

val heisenberg_chain : ?j:float -> ?h:float -> n:int -> unit -> Model.t
(** [J Σ (X_iX_{i+1} + Y_iY_{i+1} + Z_iZ_{i+1}) + h Σ X_i]. *)

val mis_chain :
  ?u:float -> ?omega:float -> ?alpha:float -> n:int -> unit -> Model.t
(** Time-dependent maximum-independent-set anneal:
    [Σ ((1−2s)U n̂_i + (ω/2) X_i) + Σ α n̂_i n̂_{i+1}] with the normalised
    time [s] sweeping the detuning from [+U] to [−U]. *)

val qaoa_chain :
  ?p:int -> ?gamma:float -> ?beta:float -> n:int -> unit -> Model.t
(** QAOA-style alternating drive on an open chain (SimuQ's GenQS QAOA
    generator, as an analog schedule): [2p] equal slots in [s ∈ [0, 1)]
    alternating between the MaxCut cost layer [γ Σ Z_iZ_{i+1}] (even
    slots) and the mixer layer [β Σ X_i] (odd slots).  Discretize with
    [segments = 2p] to reproduce the layer sequence exactly; other
    segment counts sample the same piecewise schedule. *)

val ising_grid : ?j:float -> ?h:float -> rows:int -> cols:int -> unit -> Model.t
(** Transverse-field Ising model on a [rows × cols] square lattice
    (open boundaries), qubit [(r, c)] numbered [r·cols + c].  The paper
    notes the benchmark suite's coupling structures are "a chain, a
    lattice, or a cycle"; this is the lattice member, natural for the
    planar Rydberg geometry.  Note the intrinsic Rydberg limitation:
    a square lattice's diagonal van-der-Waals tails are only
    [(√2)⁻⁶ = 1/8] of the bond strength, so compilations carry a
    ~10–15 % error floor that no solver can remove (per-atom detuning
    required; global control fares far worse). *)

val pxp : ?j:float -> ?h:float -> n:int -> unit -> Model.t
(** Blockaded chain [J Σ n̂_i n̂_{i+1} + h Σ X_i]; with [J ≫ h] the
    dynamics realise the PXP scar model. *)

val all_static :
  n:int -> Model.t list
(** The six time-independent benchmarks at default parameters. *)

val by_name : name:string -> n:int -> Model.t
(** Lookup by the names used in the paper's figures: ["ising-chain"],
    ["ising-cycle"], ["kitaev"], ["ising-cycle+"], ["heis-chain"],
    ["mis-chain"], ["qaoa-chain"], ["pxp"], plus ["ising-grid"] which
    requires [n] to be a perfect square ([√n × √n] lattice).  Raises
    [Invalid_argument] on unknown names or non-square grid sizes. *)
