open Qturbo_aais
open Qturbo_optim
open Qturbo_core

type t = {
  aais : Aais.t;
  channels : Instruction.channel array;
  vars : Variable.t array;
  ls : Linear_system.t;  (** reused for the row structure and B_tar *)
  instr_of_channel : int array;  (** channel cid -> instruction index *)
  n_instr : int;
}

let build ~aais ~target ~t_tar =
  let channels = Aais.channels aais in
  let vars = Aais.variables aais in
  let ls = Linear_system.build ~channels ~target ~t_tar in
  let instr_of_channel = Array.make (Array.length channels) 0 in
  List.iteri
    (fun k (instr : Instruction.t) ->
      List.iter
        (fun (c : Instruction.channel) ->
          instr_of_channel.(c.Instruction.cid) <- k)
        instr.Instruction.channels)
    aais.Aais.instructions;
  {
    aais;
    channels;
    vars;
    ls;
    instr_of_channel;
    n_instr = List.length aais.Aais.instructions;
  }

let n_continuous t = Array.length t.vars + 1
let n_instructions t = t.n_instr

let bounds t ~t_max =
  let var_bounds = Array.map (fun v -> v.Variable.bound) t.vars in
  Array.append var_bounds [| Bounds.make ~lo:1e-4 ~hi:t_max |]

let split t x =
  let nv = Array.length t.vars in
  if Array.length x <> nv + 1 then invalid_arg "Global_system.split: bad vector";
  (Array.sub x 0 nv, x.(nv))

let alpha_of t ~indicators x =
  let env, t_sim = split t x in
  Array.map
    (fun (c : Instruction.channel) ->
      if indicators.(t.instr_of_channel.(c.Instruction.cid)) then
        Instruction.eval_channel c ~env *. t_sim
      else 0.0)
    t.channels

let residual t ~indicators x =
  let alpha = alpha_of t ~indicators x in
  let b_sim = Linear_system.b_of_alpha t.ls ~alpha in
  Array.mapi (fun i b -> b -. t.ls.Linear_system.b_tar.(i)) b_sim

let error_l1 t ~indicators x =
  let r = residual t ~indicators x in
  Array.fold_left (fun acc ri -> acc +. Float.abs ri) 0.0 r

let b_norm1 t =
  Array.fold_left
    (fun acc b -> acc +. Float.abs b)
    0.0 t.ls.Linear_system.b_tar

let initial_guess t ~rng ~t_max =
  let nv = Array.length t.vars in
  let x = Array.make (nv + 1) 0.0 in
  Array.iteri
    (fun i (v : Variable.t) ->
      let value =
        match v.Variable.kind with
        | Variable.Runtime_fixed ->
            (* jitter the built-in layout by ±1.5 µm; larger jitter scrambles
               the atom ordering and strands the solver behind 1/r⁶ cliffs *)
            v.Variable.init +. Qturbo_util.Rng.uniform rng ~lo:(-1.5) ~hi:1.5
        | Variable.Runtime_dynamic ->
            (* sample the middle of the box: starting on a bound stalls
               the solver (zero transform gradient), which SciPy's
               trust-region-reflective method also dislikes *)
            let { Bounds.lo; hi } = v.Variable.bound in
            let lo = if Float.is_finite lo then lo else -10.0 in
            let hi = if Float.is_finite hi then hi else 10.0 in
            let w = hi -. lo in
            Qturbo_util.Rng.uniform rng ~lo:(lo +. (0.25 *. w))
              ~hi:(hi -. (0.25 *. w))
      in
      x.(i) <- Bounds.clamp v.Variable.bound value)
    t.vars;
  x.(nv) <- Qturbo_util.Rng.uniform rng ~lo:(0.1 *. t_max) ~hi:t_max;
  x
