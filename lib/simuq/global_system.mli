(** The baseline's global mixed equation system (paper §2.2).

    One residual per Hamiltonian term:
    [Σ_k s_k · expr_k(vars) · T_sim − B_tar_i], over {e all} amplitude
    variables, the evolution-time variable and the per-instruction binary
    indicator variables [s_k] — exactly the monolithic system SimuQ hands
    to SciPy, with no decomposition, no locality, and no structural
    solve. *)

type t

val build :
  aais:Qturbo_aais.Aais.t ->
  target:Qturbo_pauli.Pauli_sum.t ->
  t_tar:float ->
  t

val n_continuous : t -> int
(** Amplitude variables plus one slot for [T_sim] (the last coordinate of
    the solver vector). *)

val n_instructions : t -> int

val bounds : t -> t_max:float -> Qturbo_optim.Bounds.bound array
(** Box bounds for the solver vector (variable bounds + [T ∈ [1e-4, t_max]]). *)

val residual : t -> indicators:bool array -> float array -> float array
(** [residual sys ~indicators x] where [x] is [variables @ [T_sim]];
    an instruction whose indicator is false contributes nothing. *)

val error_l1 : t -> indicators:bool array -> float array -> float

val b_norm1 : t -> float

val initial_guess :
  t -> rng:Qturbo_util.Rng.t -> t_max:float -> float array
(** Random start: runtime-fixed variables jittered around their built-in
    initial layout (SimuQ's AAIS backends seed positions the same way),
    runtime-dynamic variables uniform in their boxes, [T_sim] uniform in
    [[0.1·t_max, t_max]]. *)

val split : t -> float array -> float array * float
(** Separate a solver vector into (variable environment, [T_sim]). *)
