open Qturbo_optim

type options = {
  starts : int;
  accept_relative_error : float;
  t_max : float;
  max_evaluations_per_start : int;
  time_budget_seconds : float;
  seed : int64;
}

let default_options =
  {
    starts = 8;
    accept_relative_error = 2.0;
    t_max = 10.0;
    max_evaluations_per_start = 60_000;
    time_budget_seconds = 120.0;
    seed = 20260706L;
  }

type result = {
  success : bool;
  env : float array;
  t_sim : float;
  error_l1 : float;
  relative_error : float;
  indicators : bool array;
  starts_used : int;
  compile_seconds : float;
}

type attempt = {
  a_x : float array;
  a_error : float;
  a_indicators : bool array;
}

let compile ?(options = default_options) ~aais ~target ~t_tar () =
  if t_tar <= 0.0 then invalid_arg "Simuq_compiler.compile: t_tar <= 0";
  let t0 = Qturbo_util.Clock.now () in
  let sys = Global_system.build ~aais ~target ~t_tar in
  let rng = Qturbo_util.Rng.create ~seed:options.seed in
  let bounds = Global_system.bounds sys ~t_max:options.t_max in
  let b_norm = Float.max 1e-300 (Global_system.b_norm1 sys) in
  let n_instr = Global_system.n_instructions sys in
  (* the indicator search space grows with the instruction count, and
     SimuQ explores it by independent trials: scale the trial budget with
     system size *)
  let starts = Int.max options.starts (aais.Qturbo_aais.Aais.n_qubits / 2) in
  let vars = Qturbo_aais.Aais.variables aais in
  let controllable =
    Array.of_list
      (List.map
         (fun (instr : Qturbo_aais.Instruction.t) ->
           List.exists
             (fun v -> Qturbo_aais.Variable.is_dynamic vars.(v))
             instr.Qturbo_aais.Instruction.variables)
         aais.Qturbo_aais.Aais.instructions)
  in
  let n_controllable =
    Array.fold_left (fun acc c -> if c then acc + 1 else acc) 0 controllable
  in
  let best = ref None in
  let starts_used = ref 0 in
  let out_of_budget () =
    Qturbo_util.Clock.now () -. t0 > options.time_budget_seconds
  in
  (try
     for start = 0 to starts - 1 do
       if out_of_budget () then raise Exit;
       incr starts_used;
       (* indicator sampling: only instructions with runtime-dynamic
          variables are switchable (a van-der-Waals interaction is always
          on).  Even starts keep everything on; odd starts explore the
          binary dimension by dropping a couple of controllable
          instructions *)
       let p_off =
         Float.min 0.15 (2.0 /. float_of_int (Int.max 1 n_controllable))
       in
       let indicators =
         Array.init n_instr (fun i ->
             (not controllable.(i))
             || start mod 2 = 0
             || Qturbo_util.Rng.float rng >= p_off)
       in
       let residual = Global_system.residual sys ~indicators in
       let x0 = Global_system.initial_guess sys ~rng ~t_max:options.t_max in
       (* SimuQ treats the evolution time as a feasibility constraint, not
          an objective: each trial commits to a sampled T (log-uniform over
          the window) and solves the amplitudes for it; trials whose T is
          below the feasible minimum burn their budget and fail *)
       let n_t = Array.length x0 - 1 in
       let t_choice =
         exp
           (Qturbo_util.Rng.uniform rng
              ~lo:(log (0.1 *. options.t_max))
              ~hi:(log options.t_max))
       in
       x0.(n_t) <- t_choice;
       let bounds = Array.copy bounds in
       bounds.(n_t) <- Bounds.make ~lo:t_choice ~hi:t_choice;
       let transform = Bounds.transform bounds in
       (* SciPy-least_squares-like configuration: 3-point finite
          differences and coarse stopping tolerances (SimuQ trades
          solution polish for any feasible point) *)
       (* the solver accepts the first iterate inside SimuQ's tolerance
          rather than polishing to the least-squares optimum *)
       let l1_target = options.accept_relative_error /. 100.0 *. b_norm in
       let accept_residual r =
         Array.fold_left (fun acc ri -> acc +. Float.abs ri) 0.0 r <= l1_target
       in
       let lm_options =
         {
           Levenberg_marquardt.default_options with
           max_evaluations = options.max_evaluations_per_start;
           max_iterations = 2000;
           ftol = 1e-4;
           xtol = 1e-7;
           accept_residual = Some accept_residual;
         }
       in
       let wrapped = Bounds.wrap_residual transform residual in
       let report =
         Levenberg_marquardt.minimize ~options:lm_options
           ~jacobian:(fun x -> Numeric_jacobian.central wrapped x)
           wrapped
           (Bounds.to_internal transform x0)
       in
       let x = Bounds.of_internal transform report.Objective.x in
       let err = Global_system.error_l1 sys ~indicators x in
       let better =
         match !best with None -> true | Some b -> err < b.a_error
       in
       if better then
         best := Some { a_x = x; a_error = err; a_indicators = indicators };
       if err /. b_norm *. 100.0 <= options.accept_relative_error then
         raise Exit
     done
   with Exit -> ());
  match !best with
  | None ->
      {
        success = false;
        env = [||];
        t_sim = Float.nan;
        error_l1 = Float.nan;
        relative_error = Float.nan;
        indicators = [||];
        starts_used = !starts_used;
        compile_seconds = Qturbo_util.Clock.now () -. t0;
      }
  | Some { a_x; a_error; a_indicators } ->
      let env, t_sim = Global_system.split sys a_x in
      let relative_error = a_error /. b_norm *. 100.0 in
      {
        success = relative_error <= options.accept_relative_error;
        env;
        t_sim;
        error_l1 = a_error;
        relative_error;
        indicators = a_indicators;
        starts_used = !starts_used;
        compile_seconds = Qturbo_util.Clock.now () -. t0;
      }
