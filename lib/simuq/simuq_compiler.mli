(** The SimuQ-style baseline compiler.

    Faithful to the baseline's {e strategy} (paper §2.2, §3): build the
    single global mixed system and hand it to a black-box nonlinear
    least-squares solver (bounded Levenberg–Marquardt with
    finite-difference Jacobians, as SciPy's [least_squares] is) from
    random initial points, sampling a random on/off assignment of the
    instruction indicator variables per start.  The first start keeps all
    instructions on.

    Consequences, matching the limitations the paper reports:
    {ul
    {- compile time grows superlinearly (dense Jacobians over {e all}
       variables and rows, times restarts);}
    {- the returned [T_sim] is whatever feasible value the solver landed
       on — random, usually far from minimal;}
    {- when no start converges inside the budget, compilation {e fails}
       (the paper's missing SimuQ data points).}} *)

type options = {
  starts : int;  (** random restarts (default 8) *)
  accept_relative_error : float;
      (** accept a start whose relative error (%) falls below this
          (default 2.0) *)
  t_max : float;  (** search window for the evolution time (default 10.) *)
  max_evaluations_per_start : int;  (** LM budget per start *)
  time_budget_seconds : float;
      (** overall CPU budget; exhaustion fails the compilation (default
          120.) *)
  seed : int64;
}

val default_options : options

type result = {
  success : bool;
  env : float array;  (** variable values of the best start *)
  t_sim : float;
  error_l1 : float;
  relative_error : float;  (** percent *)
  indicators : bool array;  (** instruction on/off of the best start *)
  starts_used : int;
  compile_seconds : float;
}

val compile :
  ?options:options ->
  aais:Qturbo_aais.Aais.t ->
  target:Qturbo_pauli.Pauli_sum.t ->
  t_tar:float ->
  unit ->
  result
(** On failure ([success = false]) the best attempt is still reported
    (its error just missed the acceptance threshold or the budget ran
    out). *)
