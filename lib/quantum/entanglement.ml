open Qturbo_linalg

type density = { k : int; re : Mat.t; im : Mat.t }

let reduced_density psi ~keep =
  let n = psi.State.n in
  if keep <= 0 || keep > n then
    invalid_arg "Entanglement.reduced_density: keep out of range";
  let da = 1 lsl keep in
  let db = 1 lsl (n - keep) in
  let re = Mat.create ~rows:da ~cols:da in
  let im = Mat.create ~rows:da ~cols:da in
  (* basis index = b * da + a with a the kept (low) qubits *)
  for a = 0 to da - 1 do
    for a' = 0 to da - 1 do
      let acc_re = ref 0.0 and acc_im = ref 0.0 in
      for b = 0 to db - 1 do
        let i = (b * da) + a and j = (b * da) + a' in
        (* psi_i * conj(psi_j) *)
        acc_re :=
          !acc_re
          +. (psi.State.re.(i) *. psi.State.re.(j))
          +. (psi.State.im.(i) *. psi.State.im.(j));
        acc_im :=
          !acc_im
          +. (psi.State.im.(i) *. psi.State.re.(j))
          -. (psi.State.re.(i) *. psi.State.im.(j))
      done;
      Mat.set re a a' !acc_re;
      Mat.set im a a' !acc_im
    done
  done;
  { k = keep; re; im }

let eigen_spectrum { k; re; im } =
  let d = 1 lsl k in
  (* real symmetric embedding doubles each eigenvalue *)
  let m =
    Mat.init ~rows:(2 * d) ~cols:(2 * d) (fun i j ->
        match (i < d, j < d) with
        | true, true -> Mat.get re i j
        | true, false -> -.Mat.get im i (j - d)
        | false, true -> Mat.get im (i - d) j
        | false, false -> Mat.get re (i - d) (j - d))
  in
  let { Eigen.eigenvalues; eigenvectors = _ } = Eigen.symmetric m in
  Array.init d (fun i -> eigenvalues.(2 * i))

let von_neumann_entropy psi ~cut =
  let rho = reduced_density psi ~keep:cut in
  Array.fold_left
    (fun acc p -> if p > 1e-14 then acc -. (p *. log p) else acc)
    0.0 (eigen_spectrum rho)

let purity psi ~cut =
  let { k; re; im } = reduced_density psi ~keep:cut in
  let d = 1 lsl k in
  let acc = ref 0.0 in
  (* Tr rho² = Σ_{ij} |rho_ij|² for Hermitian rho *)
  for i = 0 to d - 1 do
    for j = 0 to d - 1 do
      let r = Mat.get re i j and m = Mat.get im i j in
      acc := !acc +. (r *. r) +. (m *. m)
    done
  done;
  !acc
