open Qturbo_pauli

let steps_for ~norm1 ~t =
  let suggested = int_of_float (Float.ceil (20.0 *. norm1 *. Float.abs t)) in
  Int.max 32 suggested

(* y' = f(y) = -i H y; RK4 with preallocated work buffers. *)
let rk4_compiled ~h ~dt ~steps state =
  let n = state.State.n in
  let k = State.create ~n in
  let hy = State.create ~n in
  let acc = State.create ~n in
  let tmp = State.create ~n in
  let d = State.dim state in
  let deriv ~src ~dst =
    (* dst <- -i H src *)
    Apply.apply_into h ~src ~dst;
    for i = 0 to d - 1 do
      let re = dst.State.re.(i) and im = dst.State.im.(i) in
      (* multiply by -i: (re + i im) * (-i) = im - i re *)
      dst.State.re.(i) <- im;
      dst.State.im.(i) <- -.re
    done
  in
  let y = State.copy state in
  for _step = 1 to steps do
    (* k1 *)
    deriv ~src:y ~dst:k;
    Array.blit k.State.re 0 acc.State.re 0 d;
    Array.blit k.State.im 0 acc.State.im 0 d;
    (* k2: y + dt/2 k1 *)
    Array.blit y.State.re 0 tmp.State.re 0 d;
    Array.blit y.State.im 0 tmp.State.im 0 d;
    State.add_scaled tmp { Complex.re = dt /. 2.0; im = 0.0 } k;
    deriv ~src:tmp ~dst:hy;
    State.add_scaled acc { Complex.re = 2.0; im = 0.0 } hy;
    (* k3: y + dt/2 k2 *)
    Array.blit y.State.re 0 tmp.State.re 0 d;
    Array.blit y.State.im 0 tmp.State.im 0 d;
    State.add_scaled tmp { Complex.re = dt /. 2.0; im = 0.0 } hy;
    deriv ~src:tmp ~dst:k;
    State.add_scaled acc { Complex.re = 2.0; im = 0.0 } k;
    (* k4: y + dt k3 *)
    Array.blit y.State.re 0 tmp.State.re 0 d;
    Array.blit y.State.im 0 tmp.State.im 0 d;
    State.add_scaled tmp { Complex.re = dt; im = 0.0 } k;
    deriv ~src:tmp ~dst:hy;
    State.add_scaled acc Complex.one hy;
    (* y += dt/6 * acc *)
    State.add_scaled y { Complex.re = dt /. 6.0; im = 0.0 } acc;
    State.normalize y
  done;
  y

let evolve_compiled ?steps ~h ~norm1 ~t state =
  if t = 0.0 then State.copy state
  else
    let steps = match steps with Some s -> s | None -> steps_for ~norm1 ~t in
    rk4_compiled ~h ~dt:(t /. float_of_int steps) ~steps state

let evolve ?steps ~h ~t state =
  let compiled = Apply.compile ~n:state.State.n h in
  evolve_compiled ?steps ~h:compiled ~norm1:(Pauli_sum.norm1 h) ~t state

let evolve_piecewise ~segments state =
  List.fold_left
    (fun s (h, tau) -> evolve ~h ~t:tau s)
    (State.copy state) segments

let evolve_time_dependent ~h_of_t ~t ~steps state =
  if steps <= 0 then invalid_arg "Evolve.evolve_time_dependent: steps <= 0";
  let n = state.State.n in
  let dt = t /. float_of_int steps in
  let y = ref (State.copy state) in
  let d = State.dim state in
  let deriv time src =
    let h = Apply.compile ~n (h_of_t time) in
    let dst = State.create ~n in
    Apply.apply_into h ~src ~dst;
    for i = 0 to d - 1 do
      let re = dst.State.re.(i) and im = dst.State.im.(i) in
      dst.State.re.(i) <- im;
      dst.State.im.(i) <- -.re
    done;
    dst
  in
  for step = 0 to steps - 1 do
    let t0 = float_of_int step *. dt in
    let y0 = !y in
    let k1 = deriv t0 y0 in
    let mid a c k =
      let s = State.copy a in
      State.add_scaled s { Complex.re = c; im = 0.0 } k;
      s
    in
    let k2 = deriv (t0 +. (dt /. 2.0)) (mid y0 (dt /. 2.0) k1) in
    let k3 = deriv (t0 +. (dt /. 2.0)) (mid y0 (dt /. 2.0) k2) in
    let k4 = deriv (t0 +. dt) (mid y0 dt k3) in
    let out = State.copy y0 in
    State.add_scaled out { Complex.re = dt /. 6.0; im = 0.0 } k1;
    State.add_scaled out { Complex.re = dt /. 3.0; im = 0.0 } k2;
    State.add_scaled out { Complex.re = dt /. 3.0; im = 0.0 } k3;
    State.add_scaled out { Complex.re = dt /. 6.0; im = 0.0 } k4;
    State.normalize out;
    y := out
  done;
  !y
