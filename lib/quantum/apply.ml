open Qturbo_pauli

(* One term: out[i lxor mask_x] += coeff * i^{ny} * (-1)^{parity(i land mask_yz)} * in[i].
   We fold the fixed i^{ny} factor into a complex coefficient (cre, cim). *)
type term = { mask_x : int; mask_yz : int; cre : float; cim : float }

(* Diagonal terms (no X/Y content) are folded into one precomputed
   diagonal: Rydberg Hamiltonians are dominated by Z/ZZ terms, and this
   turns O(terms · 2ⁿ) per application into O(2ⁿ). *)
type compiled = { n : int; diag : float array; terms : term array }

let popcount =
  let rec count acc x = if x = 0 then acc else count (acc + (x land 1)) (x lsr 1) in
  fun x -> count 0 x

let parity x = popcount x land 1

let term_of ~n coeff pstring =
  let mask_x = ref 0 and mask_y = ref 0 and mask_z = ref 0 in
  List.iter
    (fun (site, op) ->
      if site >= n then invalid_arg "Apply.compile: site out of range";
      let bit = 1 lsl site in
      match op with
      | Pauli.X -> mask_x := !mask_x lor bit
      | Pauli.Y ->
          mask_x := !mask_x lor bit;
          mask_y := !mask_y lor bit
      | Pauli.Z -> mask_z := !mask_z lor bit
      | Pauli.I -> ())
    (Pauli_string.to_list pstring);
  let ny = popcount !mask_y in
  let cre, cim =
    match ny mod 4 with
    | 0 -> (coeff, 0.0)
    | 1 -> (0.0, coeff)
    | 2 -> (-.coeff, 0.0)
    | _ -> (0.0, -.coeff)
  in
  { mask_x = !mask_x; mask_yz = !mask_y lor !mask_z; cre; cim }

let compile ~n sum =
  let all = List.map (fun (s, c) -> term_of ~n c s) (Pauli_sum.terms sum) in
  let diagonal, off_diagonal =
    List.partition (fun t -> t.mask_x = 0) all
  in
  let d = 1 lsl n in
  let diag = Array.make d 0.0 in
  List.iter
    (fun { mask_yz; cre; cim = _; mask_x = _ } ->
      for i = 0 to d - 1 do
        let sign = if parity (i land mask_yz) = 0 then 1.0 else -1.0 in
        diag.(i) <- diag.(i) +. (sign *. cre)
      done)
    diagonal;
  { n; diag; terms = Array.of_list off_diagonal }

let compiled_n c = c.n

let apply_into compiled ~src ~dst =
  if src.State.n <> compiled.n || dst.State.n <> compiled.n then
    invalid_arg "Apply.apply_into: qubit-count mismatch";
  let d = State.dim src in
  for i = 0 to d - 1 do
    dst.State.re.(i) <- compiled.diag.(i) *. src.State.re.(i);
    dst.State.im.(i) <- compiled.diag.(i) *. src.State.im.(i)
  done;
  Array.iter
    (fun { mask_x; mask_yz; cre; cim } ->
      for i = 0 to d - 1 do
        let j = i lxor mask_x in
        let sign = if parity (i land mask_yz) = 0 then 1.0 else -1.0 in
        let re = sign *. ((cre *. src.State.re.(i)) -. (cim *. src.State.im.(i))) in
        let im = sign *. ((cre *. src.State.im.(i)) +. (cim *. src.State.re.(i))) in
        dst.State.re.(j) <- dst.State.re.(j) +. re;
        dst.State.im.(j) <- dst.State.im.(j) +. im
      done)
    compiled.terms

let apply compiled s =
  let dst = State.create ~n:compiled.n in
  apply_into compiled ~src:s ~dst;
  dst

let singleton_compiled ~n pstring =
  let t = term_of ~n 1.0 pstring in
  if t.mask_x = 0 then begin
    let d = 1 lsl n in
    let diag =
      Array.init d (fun i ->
          if parity (i land t.mask_yz) = 0 then t.cre else -.t.cre)
    in
    { n; diag; terms = [||] }
  end
  else { n; diag = Array.make (1 lsl n) 0.0; terms = [| t |] }

let apply_string ~n pstring s = apply (singleton_compiled ~n pstring) s

let expectation compiled s =
  let hs = apply compiled s in
  (State.inner s hs).Complex.re

let expectation_string ~n pstring s =
  expectation (singleton_compiled ~n pstring) s
