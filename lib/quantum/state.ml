type t = { n : int; re : float array; im : float array }

let create ~n =
  if n < 0 || n > 26 then invalid_arg "State.create: unsupported qubit count";
  let d = 1 lsl n in
  { n; re = Array.make d 0.0; im = Array.make d 0.0 }

let basis ~n k =
  let s = create ~n in
  if k < 0 || k >= 1 lsl n then invalid_arg "State.basis: index out of range";
  s.re.(k) <- 1.0;
  s

let ground ~n = basis ~n 0
let dim s = 1 lsl s.n
let copy s = { s with re = Array.copy s.re; im = Array.copy s.im }

let norm s =
  let acc = ref 0.0 in
  for i = 0 to dim s - 1 do
    acc := !acc +. (s.re.(i) *. s.re.(i)) +. (s.im.(i) *. s.im.(i))
  done;
  sqrt !acc

let normalize s =
  let n = norm s in
  if n = 0.0 then invalid_arg "State.normalize: zero vector";
  let inv = 1.0 /. n in
  for i = 0 to dim s - 1 do
    s.re.(i) <- s.re.(i) *. inv;
    s.im.(i) <- s.im.(i) *. inv
  done

let inner a b =
  if a.n <> b.n then invalid_arg "State.inner: qubit-count mismatch";
  let re = ref 0.0 and im = ref 0.0 in
  for i = 0 to dim a - 1 do
    (* conj(a) * b *)
    re := !re +. (a.re.(i) *. b.re.(i)) +. (a.im.(i) *. b.im.(i));
    im := !im +. (a.re.(i) *. b.im.(i)) -. (a.im.(i) *. b.re.(i))
  done;
  { Complex.re = !re; im = !im }

let fidelity a b = Complex.norm2 (inner a b)

let probability s k =
  if k < 0 || k >= dim s then invalid_arg "State.probability: out of range";
  (s.re.(k) *. s.re.(k)) +. (s.im.(k) *. s.im.(k))

let probabilities s = Array.init (dim s) (fun k -> probability s k)

let scale c s =
  for i = 0 to dim s - 1 do
    let re = (c.Complex.re *. s.re.(i)) -. (c.Complex.im *. s.im.(i)) in
    let im = (c.Complex.re *. s.im.(i)) +. (c.Complex.im *. s.re.(i)) in
    s.re.(i) <- re;
    s.im.(i) <- im
  done

let add_scaled dst c src =
  if dst.n <> src.n then invalid_arg "State.add_scaled: qubit-count mismatch";
  for i = 0 to dim src - 1 do
    dst.re.(i) <- dst.re.(i) +. ((c.Complex.re *. src.re.(i)) -. (c.Complex.im *. src.im.(i)));
    dst.im.(i) <- dst.im.(i) +. ((c.Complex.re *. src.im.(i)) +. (c.Complex.im *. src.re.(i)))
  done

let equal ?(tol = 1e-9) a b =
  a.n = b.n
  && begin
       let ok = ref true in
       for i = 0 to dim a - 1 do
         if
           Float.abs (a.re.(i) -. b.re.(i)) > tol
           || Float.abs (a.im.(i) -. b.im.(i)) > tol
         then ok := false
       done;
       !ok
     end
