(** Krylov-subspace (Lanczos) evolution.

    For larger registers and long evolutions the RK4 step count scales as
    [‖H‖·t]; projecting onto a small Krylov subspace and exponentiating
    the tridiagonal projection there converges super-exponentially in the
    subspace dimension for a {e fixed} step, so far fewer Hamiltonian
    applications are needed.  The implementation uses full
    reorthogonalisation (registers here are small enough that robustness
    beats the extra dot products) and the {!Qturbo_linalg.Eigen} solver
    on the tridiagonal matrix. *)

val evolve :
  ?dim:int ->
  ?dt_max:float ->
  h:Qturbo_pauli.Pauli_sum.t ->
  t:float ->
  State.t ->
  State.t
(** [evolve ~h ~t psi ≈ exp(−i h t)|psi>].  [dim] is the Krylov dimension
    per step (default 24, silently capped at the Hilbert-space dimension);
    [dt_max] splits long evolutions into steps with [‖H‖₁·dt ≤ 4]
    (overridable).  Raises [Invalid_argument] on nonpositive [dim]. *)

val step_count : norm1:float -> t:float -> dt_max:float option -> int
(** The number of Krylov steps {!evolve} will take; exposed for tests and
    benchmarks comparing against RK4's step count. *)
