open Qturbo_linalg
open Qturbo_pauli

type jump = Dephasing of int | Decay of int
type channel = { jump : jump; rate : float }
type density = { n : int; re : Mat.t; im : Mat.t }

(* ---- complex dense matrix helpers (re/im pairs) ---- *)

type cm = { mre : Mat.t; mim : Mat.t }

let cm_of_density { re; im; n = _ } = { mre = re; mim = im }


let cadd a b = { mre = Mat.add a.mre b.mre; mim = Mat.add a.mim b.mim }
let csub a b = { mre = Mat.sub a.mre b.mre; mim = Mat.sub a.mim b.mim }
let cscale s a = { mre = Mat.scale s a.mre; mim = Mat.scale s a.mim }

let cmul a b =
  {
    mre = Mat.sub (Mat.mul a.mre b.mre) (Mat.mul a.mim b.mim);
    mim = Mat.add (Mat.mul a.mre b.mim) (Mat.mul a.mim b.mre);
  }

let cdagger a =
  { mre = Mat.transpose a.mre; mim = Mat.scale (-1.0) (Mat.transpose a.mim) }

(* multiply by -i: -i(re + i im) = im - i re *)
let cneg_i a = { mre = a.mim; mim = Mat.scale (-1.0) a.mre }

(* ---- construction ---- *)

let of_state psi =
  let n = psi.State.n in
  let d = 1 lsl n in
  let re = Mat.create ~rows:d ~cols:d in
  let im = Mat.create ~rows:d ~cols:d in
  for i = 0 to d - 1 do
    for j = 0 to d - 1 do
      (* psi_i conj(psi_j) *)
      Mat.set re i j
        ((psi.State.re.(i) *. psi.State.re.(j)) +. (psi.State.im.(i) *. psi.State.im.(j)));
      Mat.set im i j
        ((psi.State.im.(i) *. psi.State.re.(j)) -. (psi.State.re.(i) *. psi.State.im.(j)))
    done
  done;
  { n; re; im }

let trace rho =
  let d = 1 lsl rho.n in
  let acc = ref 0.0 in
  for i = 0 to d - 1 do
    acc := !acc +. Mat.get rho.re i i
  done;
  !acc

let dense_of_sum ~n sum =
  let { Dense_op.re; im; n = _ } = Dense_op.of_pauli_sum ~n sum in
  { mre = re; mim = im }

let expectation rho obs =
  let op = dense_of_sum ~n:rho.n obs in
  let prod = cmul (cm_of_density rho) op in
  let d = 1 lsl rho.n in
  let acc = ref 0.0 in
  for i = 0 to d - 1 do
    acc := !acc +. Mat.get prod.mre i i
  done;
  !acc

let purity rho =
  let sq = cmul (cm_of_density rho) (cm_of_density rho) in
  let d = 1 lsl rho.n in
  let acc = ref 0.0 in
  for i = 0 to d - 1 do
    acc := !acc +. Mat.get sq.mre i i
  done;
  !acc

let jump_matrix ~n = function
  | Dephasing i ->
      if i < 0 || i >= n then invalid_arg "Lindblad: site out of range";
      dense_of_sum ~n (Pauli_sum.term 1.0 (Pauli_string.single i Pauli.Z))
  | Decay i ->
      if i < 0 || i >= n then invalid_arg "Lindblad: site out of range";
      (* sigma^- |1>_i -> |0>_i : entry (a, b) = 1 when b = a with bit i
         set and a has it clear *)
      let d = 1 lsl n in
      let m = Mat.create ~rows:d ~cols:d in
      for b = 0 to d - 1 do
        if (b lsr i) land 1 = 1 then Mat.set m (b lxor (1 lsl i)) b 1.0
      done;
      { mre = m; mim = Mat.create ~rows:d ~cols:d }

let evolve ~h ~channels ~t ?steps rho0 =
  let n = rho0.n in
  List.iter
    (fun { rate; _ } ->
      if rate < 0.0 then invalid_arg "Lindblad.evolve: negative rate")
    channels;
  let h_op = dense_of_sum ~n h in
  let prepared =
    List.map
      (fun { jump; rate } ->
        let l = jump_matrix ~n jump in
        let ld = cdagger l in
        (rate, l, ld, cmul ld l))
      channels
  in
  let total_rate =
    List.fold_left (fun acc { rate; _ } -> acc +. rate) 0.0 channels
  in
  let steps =
    match steps with
    | Some s when s > 0 -> s
    | Some _ -> invalid_arg "Lindblad.evolve: steps <= 0"
    | None ->
        Int.max 64
          (int_of_float
             (Float.ceil (20.0 *. (Pauli_sum.norm1 h +. total_rate) *. Float.abs t)))
  in
  let deriv rho =
    (* -i[H, rho] *)
    let acc = ref (cneg_i (csub (cmul h_op rho) (cmul rho h_op))) in
    List.iter
      (fun (rate, l, ld, ldl) ->
        let hop = cmul (cmul l rho) ld in
        let anti = cscale 0.5 (cadd (cmul ldl rho) (cmul rho ldl)) in
        acc := cadd !acc (cscale rate (csub hop anti)))
      prepared;
    !acc
  in
  let dt = t /. float_of_int steps in
  let state = ref (cm_of_density rho0) in
  for _ = 1 to steps do
    let y = !state in
    let k1 = deriv y in
    let k2 = deriv (cadd y (cscale (dt /. 2.0) k1)) in
    let k3 = deriv (cadd y (cscale (dt /. 2.0) k2)) in
    let k4 = deriv (cadd y (cscale dt k3)) in
    let sum =
      cadd (cadd k1 (cscale 2.0 k2)) (cadd (cscale 2.0 k3) k4)
    in
    let next = cadd y (cscale (dt /. 6.0) sum) in
    (* renormalise the trace to absorb integrator drift *)
    let tr =
      let d = 1 lsl n in
      let acc = ref 0.0 in
      for i = 0 to d - 1 do
        acc := !acc +. Mat.get next.mre i i
      done;
      !acc
    in
    state := if Float.abs tr > 1e-300 then cscale (1.0 /. tr) next else next
  done;
  { n; re = !state.mre; im = !state.mim }

let z_avg rho =
  let n = rho.n in
  let acc = ref 0.0 in
  for i = 0 to n - 1 do
    acc :=
      !acc +. expectation rho (Pauli_sum.term 1.0 (Pauli_string.single i Pauli.Z))
  done;
  !acc /. float_of_int n

let zz_avg ?(cycle = true) rho =
  let n = rho.n in
  if n < 2 then invalid_arg "Lindblad.zz_avg: need two qubits";
  let pairs =
    if cycle then List.init n (fun i -> (i, (i + 1) mod n))
    else List.init (n - 1) (fun i -> (i, i + 1))
  in
  let acc =
    List.fold_left
      (fun acc (i, j) ->
        acc
        +. expectation rho
             (Pauli_sum.term 1.0 (Pauli_string.two i Pauli.Z j Pauli.Z)))
      0.0 pairs
  in
  acc /. float_of_int (List.length pairs)
