open Qturbo_pauli

(* exp(-i θ P)|ψ> = cos θ |ψ> - i sin θ P|ψ>, exact because P² = I *)
let apply_exp ~n pstring theta psi =
  if Pauli_string.is_identity pstring then begin
    let out = State.copy psi in
    State.scale { Complex.re = cos theta; im = -.sin theta } out;
    out
  end
  else begin
    let p_psi = Apply.apply_string ~n pstring psi in
    let out = State.copy psi in
    State.scale { Complex.re = cos theta; im = 0.0 } out;
    State.add_scaled out { Complex.re = 0.0; im = -.sin theta } p_psi;
    out
  end

let sweep ~n terms ~dt psi =
  List.fold_left
    (fun psi (pstring, coeff) -> apply_exp ~n pstring (coeff *. dt) psi)
    psi terms

let step_first_order ~h ~dt psi =
  sweep ~n:psi.State.n (Pauli_sum.terms h) ~dt psi

let check_steps steps =
  if steps <= 0 then invalid_arg "Trotter: steps <= 0"

let evolve_first_order ~h ~t ~steps psi =
  check_steps steps;
  let dt = t /. float_of_int steps in
  let terms = Pauli_sum.terms h in
  let n = psi.State.n in
  let state = ref (State.copy psi) in
  for _ = 1 to steps do
    state := sweep ~n terms ~dt !state
  done;
  !state

let evolve_second_order ~h ~t ~steps psi =
  check_steps steps;
  let dt = t /. float_of_int steps in
  let terms = Pauli_sum.terms h in
  let terms_rev = List.rev terms in
  let n = psi.State.n in
  let state = ref (State.copy psi) in
  for _ = 1 to steps do
    state := sweep ~n terms ~dt:(dt /. 2.0) !state;
    state := sweep ~n terms_rev ~dt:(dt /. 2.0) !state
  done;
  !state

let gate_count ~h ~steps ~order =
  let per_step = Pauli_sum.term_count h in
  match order with
  | `First -> per_step * steps
  | `Second -> 2 * per_step * steps

let error_vs_exact ~h ~t ~steps ~order psi =
  let exact = Evolve.evolve ~h ~t psi in
  let approx =
    match order with
    | `First -> evolve_first_order ~h ~t ~steps psi
    | `Second -> evolve_second_order ~h ~t ~steps psi
  in
  1.0 -. State.fidelity exact approx
