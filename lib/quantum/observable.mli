(** The observables reported in the paper's device experiments (§7.4). *)

val z : int -> Qturbo_pauli.Pauli_string.t
(** [Z_i]. *)

val zz : int -> int -> Qturbo_pauli.Pauli_string.t
(** [Z_i Z_j]. *)

val expect_z : State.t -> int -> float

val expect_zz : State.t -> int -> int -> float

val z_avg : State.t -> float
(** [1/N Σ ⟨Z_i⟩] over all qubits of the state. *)

val zz_avg : ?cycle:bool -> State.t -> float
(** [1/N Σ ⟨Z_i Z_{i+1}⟩].  With [cycle] (default true, matching the
    paper's Ising-cycle experiment) the wrap-around pair [Z_{N-1} Z_0] is
    included and the normaliser is N; otherwise N−1 adjacent pairs. *)

val expect_n : State.t -> int -> float
(** Rydberg number operator [⟨n̂_i⟩ = (1 − ⟨Z_i⟩)/2]. *)

val z_avg_of_bits : int array list -> float
(** Estimate [z_avg] from sampled bitstrings (each array holds per-qubit
    0/1 outcomes, 1 meaning the Rydberg/excited state so [Z = 1 − 2·bit]). *)

val zz_avg_of_bits : ?cycle:bool -> int array list -> float
