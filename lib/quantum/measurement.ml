type readout_error = { p_0_to_1 : float; p_1_to_0 : float }

let perfect_readout = { p_0_to_1 = 0.0; p_1_to_0 = 0.0 }

let sample_index ~rng s =
  let u = Qturbo_util.Rng.float rng in
  let d = State.dim s in
  let acc = ref 0.0 in
  let result = ref (d - 1) in
  (try
     for k = 0 to d - 1 do
       acc := !acc +. State.probability s k;
       if u < !acc then begin
         result := k;
         raise Exit
       end
     done
   with Exit -> ());
  !result

let sample_bits ~rng s =
  let k = sample_index ~rng s in
  Array.init s.State.n (fun i -> (k lsr i) land 1)

let flip ~rng readout b =
  let p = if b = 0 then readout.p_0_to_1 else readout.p_1_to_0 in
  if p > 0.0 && Qturbo_util.Rng.float rng < p then 1 - b else b

let sample_shots ~rng ?(readout = perfect_readout) ~shots s =
  List.init shots (fun _ ->
      let bits = sample_bits ~rng s in
      Array.map (fun b -> flip ~rng readout b) bits)
