(** Open-system (Lindblad master equation) evolution.

    The device emulator's quasi-static noise model captures Aquila's
    dominant shot-to-shot errors; this module provides the complementary
    {e Markovian} channels — continuous dephasing and decay — by
    integrating the Lindblad equation

    [dρ/dt = −i[H, ρ] + Σ_k γ_k (L_k ρ L_k† − ½{L_k†L_k, ρ})]

    on the dense density matrix.  Practical to ~6 qubits (the Fig.-6b
    scale); used to cross-check the trajectory picture and to expose
    decoherence-rate ablations.  RK4 in superoperator form, trace
    renormalised each step. *)

type jump =
  | Dephasing of int  (** [L = Z_i] (rate in the Hamiltonian's units) *)
  | Decay of int  (** [L = σ⁻_i = (X_i + iY_i)/2], Rydberg-state decay *)

type channel = { jump : jump; rate : float }

type density = {
  n : int;
  re : Qturbo_linalg.Mat.t;
  im : Qturbo_linalg.Mat.t;
}

val of_state : State.t -> density
(** Pure-state density matrix [|ψ⟩⟨ψ|]. *)

val trace : density -> float

val expectation : density -> Qturbo_pauli.Pauli_sum.t -> float
(** [Tr(ρ O)] (real part — exact for Hermitian observables). *)

val purity : density -> float
(** [Tr ρ²]. *)

val evolve :
  h:Qturbo_pauli.Pauli_sum.t ->
  channels:channel list ->
  t:float ->
  ?steps:int ->
  density ->
  density
(** Integrate for duration [t].  With [channels = []] this reduces to
    unitary evolution (tested against {!Evolve}).  Raises
    [Invalid_argument] on negative rates or sites outside the register. *)

val z_avg : density -> float

val zz_avg : ?cycle:bool -> density -> float
