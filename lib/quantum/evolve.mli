(** Schrödinger-equation integration: [dψ/dt = −i H ψ].

    A classic RK4 integrator with a step size tied to the Hamiltonian's
    coefficient L1 norm (an upper bound on its spectral norm), plus
    renormalisation each step to absorb the integrator's norm drift.  At
    the ≤ 12-qubit sizes of the device experiments this is both faster and
    simpler than exponentiating matrices, and it extends directly to
    time-dependent Hamiltonians. *)

val steps_for : norm1:float -> t:float -> int
(** Heuristic step count keeping [‖H‖·dt ≲ 0.05], with a floor of 32
    steps; exposed for tests and benchmarks. *)

val evolve :
  ?steps:int -> h:Qturbo_pauli.Pauli_sum.t -> t:float -> State.t -> State.t
(** Evolve for duration [t] (a fresh state is returned).  [steps]
    overrides the heuristic. *)

val evolve_compiled : ?steps:int -> h:Apply.compiled -> norm1:float -> t:float -> State.t -> State.t
(** Same, with a pre-compiled Hamiltonian (reused across shots). *)

val evolve_piecewise :
  segments:(Qturbo_pauli.Pauli_sum.t * float) list -> State.t -> State.t
(** Evolve through piecewise-constant segments [(H_k, τ_k)] in order —
    the shape of a compiled time-dependent pulse schedule. *)

val evolve_time_dependent :
  h_of_t:(float -> Qturbo_pauli.Pauli_sum.t) ->
  t:float ->
  steps:int ->
  State.t ->
  State.t
(** RK4 with the Hamiltonian re-evaluated at the substep times; reference
    evolution for genuinely time-dependent targets (MIS chain). *)
