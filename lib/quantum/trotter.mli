(** Digital quantum simulation baseline: Suzuki–Trotter product formulas.

    The paper motivates analog simulation by the gate cost of the digital
    route (§1): approximating [exp(−iHt)] as a product of per-term
    exponentials requires many gates per step and many steps for accuracy.
    This module implements that route exactly (each Pauli-term exponential
    is applied analytically, [exp(−iθP) = cos θ · I − i sin θ · P]), so
    the analog-vs-digital comparison bench can report both the error decay
    and the gate count a circuit implementation would need. *)

val step_first_order :
  h:Qturbo_pauli.Pauli_sum.t -> dt:float -> State.t -> State.t
(** One first-order step [Π_k exp(−i c_k P_k dt)] in canonical term
    order. *)

val evolve_first_order :
  h:Qturbo_pauli.Pauli_sum.t -> t:float -> steps:int -> State.t -> State.t

val evolve_second_order :
  h:Qturbo_pauli.Pauli_sum.t -> t:float -> steps:int -> State.t -> State.t
(** Strang splitting: forward half-sweep then backward half-sweep per
    step; error [O(dt²)] per unit time. *)

val gate_count :
  h:Qturbo_pauli.Pauli_sum.t -> steps:int -> order:[ `First | `Second ] -> int
(** Number of multi-qubit Pauli-rotation gates the digital circuit would
    execute ([terms·steps], doubled for second order). *)

val error_vs_exact :
  h:Qturbo_pauli.Pauli_sum.t ->
  t:float ->
  steps:int ->
  order:[ `First | `Second ] ->
  State.t ->
  float
(** [1 − fidelity] against the RK4 reference evolution — the digital
    approximation error at the given step count. *)
