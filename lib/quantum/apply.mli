(** Applying Pauli strings and Pauli sums to state vectors.

    A Pauli string acts on a basis index by an X-mask bit flip and a
    diagonal ±1/±i phase, so application is O(2ⁿ) per term with no matrix
    ever materialised. *)

type compiled
(** A Pauli sum preprocessed into (coefficient, masks, phase) triples. *)

val compile : n:int -> Qturbo_pauli.Pauli_sum.t -> compiled
(** Raises [Invalid_argument] if the sum touches a site [>= n]. *)

val compiled_n : compiled -> int

val apply_string :
  n:int -> Qturbo_pauli.Pauli_string.t -> State.t -> State.t
(** [apply_string ~n p s] returns [p|s>] as a fresh state. *)

val apply : compiled -> State.t -> State.t
(** [apply h s] returns [H|s>] as a fresh state. *)

val apply_into : compiled -> src:State.t -> dst:State.t -> unit
(** [apply_into h ~src ~dst] computes [H|src>] into [dst] (overwriting),
    allocation-free; the hot path of the RK4 integrator. *)

val expectation : compiled -> State.t -> float
(** [⟨s|H|s⟩] (real part; exact for Hermitian sums). *)

val expectation_string : n:int -> Qturbo_pauli.Pauli_string.t -> State.t -> float
