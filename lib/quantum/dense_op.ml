open Qturbo_linalg

type t = { n : int; re : Mat.t; im : Mat.t }

let of_pauli_sum ~n sum =
  let d = 1 lsl n in
  let re = Mat.create ~rows:d ~cols:d in
  let im = Mat.create ~rows:d ~cols:d in
  let compiled = Apply.compile ~n sum in
  (* build column by column: H e_k *)
  for k = 0 to d - 1 do
    let col = Apply.apply compiled (State.basis ~n k) in
    for i = 0 to d - 1 do
      Mat.set re i k col.State.re.(i);
      Mat.set im i k col.State.im.(i)
    done
  done;
  { n; re; im }

let apply { n; re; im } s =
  if s.State.n <> n then invalid_arg "Dense_op.apply: qubit-count mismatch";
  let d = 1 lsl n in
  let out = State.create ~n in
  for i = 0 to d - 1 do
    let acc_re = ref 0.0 and acc_im = ref 0.0 in
    for j = 0 to d - 1 do
      let hre = Mat.get re i j and him = Mat.get im i j in
      acc_re := !acc_re +. (hre *. s.State.re.(j)) -. (him *. s.State.im.(j));
      acc_im := !acc_im +. (hre *. s.State.im.(j)) +. (him *. s.State.re.(j))
    done;
    out.State.re.(i) <- !acc_re;
    out.State.im.(i) <- !acc_im
  done;
  out

let is_hermitian ?(tol = 1e-9) { re; im; n = _ } =
  let d = Mat.rows re in
  let ok = ref true in
  for i = 0 to d - 1 do
    for j = 0 to d - 1 do
      if Float.abs (Mat.get re i j -. Mat.get re j i) > tol then ok := false;
      if Float.abs (Mat.get im i j +. Mat.get im j i) > tol then ok := false
    done
  done;
  !ok

(* real symmetric embedding [[A, -B], [B, A]] of H = A + iB *)
let embedding { re; im; n = _ } =
  let d = Mat.rows re in
  Mat.init ~rows:(2 * d) ~cols:(2 * d) (fun i j ->
      match (i < d, j < d) with
      | true, true -> Mat.get re i j
      | true, false -> -.Mat.get im i (j - d)
      | false, true -> Mat.get im (i - d) j
      | false, false -> Mat.get re (i - d) (j - d))

let hermitian_eigen op =
  if not (is_hermitian op) then
    invalid_arg "Dense_op: operator is not Hermitian";
  Eigen.symmetric (embedding op)

let exact_evolve op ~t psi =
  if psi.State.n <> op.n then
    invalid_arg "Dense_op.exact_evolve: qubit-count mismatch";
  let { Eigen.eigenvalues; eigenvectors = v } = hermitian_eigen op in
  let d = 1 lsl op.n in
  let out = State.create ~n:op.n in
  (* each embedding eigenvector [u; w] encodes the complex H-eigenvector
     u + i w; the 2d of them form a tight frame with constant 2, so
     exp(-iHt)|psi> = 1/2 Σ_k exp(-i λ_k t) w_k <w_k|psi> *)
  for k = 0 to (2 * d) - 1 do
    let lambda = eigenvalues.(k) in
    (* overlap <w_k|psi> = Σ_j conj(u_j + i w_j) psi_j *)
    let ov_re = ref 0.0 and ov_im = ref 0.0 in
    for j = 0 to d - 1 do
      let ur = Mat.get v j k and ui = Mat.get v (j + d) k in
      (* conj(w) * psi *)
      ov_re := !ov_re +. (ur *. psi.State.re.(j)) +. (ui *. psi.State.im.(j));
      ov_im := !ov_im +. (ur *. psi.State.im.(j)) -. (ui *. psi.State.re.(j))
    done;
    (* phase = exp(-i lambda t) / 2 *)
    let pr = 0.5 *. cos (lambda *. t) and pi = -0.5 *. sin (lambda *. t) in
    let cr = (pr *. !ov_re) -. (pi *. !ov_im) in
    let ci = (pr *. !ov_im) +. (pi *. !ov_re) in
    for j = 0 to d - 1 do
      let ur = Mat.get v j k and ui = Mat.get v (j + d) k in
      out.State.re.(j) <- out.State.re.(j) +. (cr *. ur) -. (ci *. ui);
      out.State.im.(j) <- out.State.im.(j) +. (cr *. ui) +. (ci *. ur)
    done
  done;
  out

let eigenvalues op =
  let { Eigen.eigenvalues = all; eigenvectors = _ } = hermitian_eigen op in
  (* the embedding doubles each eigenvalue: keep every other one *)
  let d = 1 lsl op.n in
  Array.init d (fun k -> all.(2 * k))
