let connected_zz s i j =
  Observable.expect_zz s i j -. (Observable.expect_z s i *. Observable.expect_z s j)

let correlation_profile s =
  let n = s.State.n in
  if n < 2 then invalid_arg "Correlations.correlation_profile: need two qubits";
  Array.init (n - 1) (fun r0 ->
      let r = r0 + 1 in
      let acc = ref 0.0 and count = ref 0 in
      for i = 0 to n - 1 - r do
        acc := !acc +. connected_zz s i (i + r);
        incr count
      done;
      !acc /. float_of_int !count)

let staggered_magnetisation s =
  let n = s.State.n in
  let acc = ref 0.0 in
  for i = 0 to n - 1 do
    let sign = if i mod 2 = 0 then 1.0 else -1.0 in
    acc := !acc +. (sign *. Observable.expect_z s i)
  done;
  !acc /. float_of_int n

let domain_wall_density s =
  let n = s.State.n in
  if n < 2 then invalid_arg "Correlations.domain_wall_density: need two qubits";
  let acc = ref 0.0 in
  for i = 0 to n - 2 do
    acc := !acc +. ((1.0 -. Observable.expect_zz s i (i + 1)) /. 2.0)
  done;
  !acc /. float_of_int (n - 1)
