(** Monte-Carlo wavefunction (quantum-jump) unravelling of the Lindblad
    equation.

    {!Lindblad} integrates the density matrix exactly but is limited to a
    handful of qubits; the trajectory method evolves pure states of the
    full register and reproduces the same channel averages, so Markovian
    dephasing/decay can be added to the 12-qubit device emulation.

    One step: with probability [Σ_k γ_k dt ⟨L_k†L_k⟩] a jump [ψ ← L_kψ]
    fires (k chosen proportionally); otherwise the state takes a unitary
    RK4 substep followed by the no-jump damping
    [ψ ← (I − dt/2 Σ γ_k L_k†L_k) ψ], and is renormalised.  The splitting
    error is O(dt²) per step. *)

val evolve :
  rng:Qturbo_util.Rng.t ->
  h:Qturbo_pauli.Pauli_sum.t ->
  channels:Lindblad.channel list ->
  t:float ->
  ?steps:int ->
  State.t ->
  State.t
(** One stochastic trajectory.  With [channels = []] this is
    deterministic and equals {!Evolve.evolve}. *)

val average_observable :
  rng:Qturbo_util.Rng.t ->
  h:Qturbo_pauli.Pauli_sum.t ->
  channels:Lindblad.channel list ->
  t:float ->
  trajectories:int ->
  observable:(State.t -> float) ->
  State.t ->
  float
(** Channel average of an observable over independent trajectories
    (the quantity that converges to the Lindblad expectation). *)
