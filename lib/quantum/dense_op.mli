(** Dense complex operators and exact (integrator-free) evolution.

    A reference path, deliberately independent of the fast mask/phase
    machinery in {!Apply} and the RK4 integrator in {!Evolve}: operators
    are materialised as dense complex matrices, and evolution under a
    Hermitian Hamiltonian goes through the eigendecomposition of its real
    symmetric embedding.  Used by tests to cross-validate the fast path
    and by the entanglement module.  Practical up to ~8 qubits. *)

type t = {
  n : int;  (** qubit count; the matrix is [2ⁿ × 2ⁿ] *)
  re : Qturbo_linalg.Mat.t;
  im : Qturbo_linalg.Mat.t;
}

val of_pauli_sum : n:int -> Qturbo_pauli.Pauli_sum.t -> t
(** Materialise a Pauli sum (identity terms included). *)

val apply : t -> State.t -> State.t

val is_hermitian : ?tol:float -> t -> bool

val exact_evolve : t -> t:float -> State.t -> State.t
(** [exact_evolve h ~t psi = exp(−i h t) |psi>] for Hermitian [h], via the
    eigendecomposition of the real embedding [[A, −B], [B, A]].  Raises
    [Invalid_argument] when [h] is not Hermitian (within [1e-9]). *)

val eigenvalues : t -> Qturbo_linalg.Vec.t
(** Ascending spectrum of a Hermitian operator (each eigenvalue of the
    doubled embedding appears twice; duplicates are collapsed). *)
