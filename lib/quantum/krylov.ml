open Qturbo_linalg
open Qturbo_pauli

let step_count ~norm1 ~t ~dt_max =
  let budget =
    match dt_max with Some d -> d | None -> 4.0 /. Float.max 1e-12 norm1
  in
  Int.max 1 (int_of_float (Float.ceil (Float.abs t /. budget)))

(* one Lanczos step: build an orthonormal Krylov basis {v_0..v_{m-1}} and
   the tridiagonal projection, exponentiate it, and reassemble. *)
let lanczos_step ~h_compiled ~dim ~dt psi =
  let n = psi.State.n in
  let d = State.dim psi in
  let m = Int.min dim d in
  let basis = Array.init m (fun _ -> State.create ~n) in
  let alpha = Array.make m 0.0 in
  let beta = Array.make m 0.0 in
  (* v0 = psi (normalised) *)
  let v0 = State.copy psi in
  State.normalize v0;
  basis.(0) <- v0;
  let actual = ref m in
  (try
     for j = 0 to m - 1 do
       let w = Apply.apply h_compiled basis.(j) in
       (* full reorthogonalisation against all previous vectors *)
       for k = 0 to j do
         let ov = State.inner basis.(k) w in
         if k = j then alpha.(j) <- ov.Complex.re;
         State.add_scaled w { Complex.re = -.ov.Complex.re; im = -.ov.Complex.im } basis.(k)
       done;
       if j + 1 < m then begin
         let b = State.norm w in
         if b < 1e-12 then begin
           (* invariant subspace found: the Krylov space closed early *)
           actual := j + 1;
           raise Exit
         end;
         beta.(j + 1) <- b;
         State.scale { Complex.re = 1.0 /. b; im = 0.0 } w;
         basis.(j + 1) <- w
       end
     done
   with Exit -> ());
  let m = !actual in
  (* tridiagonal projection T, exponentiated through its eigensystem *)
  let tmat =
    Mat.init ~rows:m ~cols:m (fun i j ->
        if i = j then alpha.(i)
        else if abs (i - j) = 1 then beta.(Int.max i j)
        else 0.0)
  in
  let { Eigen.eigenvalues; eigenvectors } = Eigen.symmetric tmat in
  (* coefficients c = V exp(-i Λ dt) Vᵀ e_0, scaled by |psi| *)
  let norm0 = State.norm psi in
  let out = State.create ~n in
  for k = 0 to m - 1 do
    let phase = -.eigenvalues.(k) *. dt in
    let wk0 = Mat.get eigenvectors 0 k in
    let cre = wk0 *. cos phase *. norm0 in
    let cim = wk0 *. sin phase *. norm0 in
    for j = 0 to m - 1 do
      let vjk = Mat.get eigenvectors j k in
      State.add_scaled out { Complex.re = cre *. vjk; im = cim *. vjk } basis.(j)
    done
  done;
  out

let evolve ?(dim = 24) ?dt_max ~h ~t psi =
  if dim <= 0 then invalid_arg "Krylov.evolve: dim <= 0";
  if t = 0.0 then State.copy psi
  else begin
    let n = psi.State.n in
    let h_compiled = Apply.compile ~n h in
    let norm1 = Pauli_sum.norm1 h in
    let steps = step_count ~norm1 ~t ~dt_max in
    let dt = t /. float_of_int steps in
    let state = ref (State.copy psi) in
    for _ = 1 to steps do
      state := lanczos_step ~h_compiled ~dim ~dt !state
    done;
    !state
  end
