(** Projective measurement sampling with readout error.

    The device emulator measures every shot in the computational basis;
    asymmetric readout flips model Aquila's imaging errors (missing a
    Rydberg atom is far likelier than a false positive). *)

type readout_error = {
  p_0_to_1 : float;  (** P(read 1 | true 0) *)
  p_1_to_0 : float;  (** P(read 1 flips to 0) *)
}

val perfect_readout : readout_error

val sample_bits :
  rng:Qturbo_util.Rng.t -> State.t -> int array
(** One shot: a length-[n] 0/1 array sampled from [|ψ|²] (bit [i] is qubit
    [i]). *)

val sample_shots :
  rng:Qturbo_util.Rng.t ->
  ?readout:readout_error ->
  shots:int ->
  State.t ->
  int array list
(** [shots] independent measurements with readout errors applied. *)
