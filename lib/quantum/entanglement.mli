(** Reduced density matrices and entanglement entropy.

    Used by the PXP example and tests: quantum-scar dynamics (the physics
    behind the paper's second device experiment) are diagnosed by the
    anomalously slow growth of the half-chain entanglement entropy. *)

type density = {
  k : int;  (** retained qubit count; matrices are [2ᵏ × 2ᵏ] *)
  re : Qturbo_linalg.Mat.t;
  im : Qturbo_linalg.Mat.t;
}

val reduced_density : State.t -> keep:int -> density
(** Reduced density matrix of qubits [0 .. keep-1], tracing out the rest.
    Raises [Invalid_argument] unless [0 < keep <= n]. *)

val eigen_spectrum : density -> float array
(** Eigenvalues of the (Hermitian, PSD) density matrix, ascending; they
    sum to 1 for a normalised input state. *)

val von_neumann_entropy : State.t -> cut:int -> float
(** Entanglement entropy [−Tr ρ_A ln ρ_A] of the bipartition
    [A = qubits 0..cut-1].  Zero for product states, [ln 2] per maximally
    entangled pair. *)

val purity : State.t -> cut:int -> float
(** [Tr ρ_A²]; 1 for product states. *)
