open Qturbo_pauli

(* per-channel precomputation: the jump operation on a state and the
   L†L Pauli sum entering both the jump probability and the no-jump
   damping *)
type prepared = {
  rate : float;
  apply_jump : State.t -> State.t;
  ldl : Pauli_sum.t;  (** L†L *)
}

let prepare ~n { Lindblad.jump; rate } =
  match jump with
  | Lindblad.Dephasing i ->
      if i < 0 || i >= n then invalid_arg "Trajectory: site out of range";
      let z = Pauli_string.single i Pauli.Z in
      {
        rate;
        apply_jump = (fun s -> Apply.apply_string ~n z s);
        ldl = Pauli_sum.term 1.0 Pauli_string.identity;
      }
  | Lindblad.Decay i ->
      if i < 0 || i >= n then invalid_arg "Trajectory: site out of range";
      (* sigma^- = (X + iY)/2; apply directly on amplitudes *)
      let bit = 1 lsl i in
      let apply_jump s =
        let out = State.create ~n in
        for b = 0 to State.dim s - 1 do
          if b land bit <> 0 then begin
            out.State.re.(b lxor bit) <- s.State.re.(b);
            out.State.im.(b lxor bit) <- s.State.im.(b)
          end
        done;
        out
      in
      (* L†L = n̂_i = (I - Z_i)/2 *)
      let ldl =
        Pauli_sum.of_list
          [
            (Pauli_string.identity, 0.5);
            (Pauli_string.single i Pauli.Z, -0.5);
          ]
      in
      { rate; apply_jump; ldl }

let evolve ~rng ~h ~channels ~t ?steps psi0 =
  let n = psi0.State.n in
  List.iter
    (fun { Lindblad.rate; _ } ->
      if rate < 0.0 then invalid_arg "Trajectory.evolve: negative rate")
    channels;
  let prepared = List.map (prepare ~n) channels in
  let total_rate =
    List.fold_left (fun acc p -> acc +. p.rate) 0.0 prepared
  in
  let steps =
    match steps with
    | Some s when s > 0 -> s
    | Some _ -> invalid_arg "Trajectory.evolve: steps <= 0"
    | None ->
        (* both the Hamiltonian resolution and gamma·dt << 1 matter *)
        Int.max
          (Evolve.steps_for ~norm1:(Pauli_sum.norm1 h) ~t)
          (int_of_float (Float.ceil (50.0 *. total_rate *. Float.abs t)))
  in
  let dt = t /. float_of_int steps in
  let h_compiled = Apply.compile ~n h in
  let norm1 = Pauli_sum.norm1 h in
  let ldl_compiled =
    List.map (fun p -> (p, Apply.compile ~n p.ldl)) prepared
  in
  let state = ref (State.copy psi0) in
  for _ = 1 to steps do
    let psi = !state in
    (* jump probabilities for this interval *)
    let probs =
      List.map
        (fun (p, ldl) -> (p, p.rate *. dt *. Apply.expectation ldl psi))
        ldl_compiled
    in
    let p_total = List.fold_left (fun acc (_, p) -> acc +. p) 0.0 probs in
    let r = Qturbo_util.Rng.float rng in
    if r < p_total then begin
      (* pick the jump proportionally to its probability *)
      let rec pick acc = function
        | [] -> invalid_arg "Trajectory: empty jump list"
        | [ (p, _) ] -> p
        | (p, w) :: rest -> if acc +. w >= r then p else pick (acc +. w) rest
      in
      let chosen = pick 0.0 probs in
      let jumped = chosen.apply_jump psi in
      if State.norm jumped > 1e-12 then begin
        State.normalize jumped;
        state := jumped
      end
      (* a zero-norm jump (e.g. decay from the ground state) cannot
         physically fire: its probability was zero, keep the state *)
    end
    else begin
      (* unitary substep *)
      let evolved =
        Evolve.evolve_compiled ~steps:1 ~h:h_compiled ~norm1 ~t:dt psi
      in
      (* no-jump damping: psi -= dt/2 Σ γ L†L psi *)
      List.iter
        (fun (p, ldl) ->
          let d = Apply.apply ldl evolved in
          State.add_scaled evolved
            { Complex.re = -0.5 *. p.rate *. dt; im = 0.0 }
            d)
        ldl_compiled;
      State.normalize evolved;
      state := evolved
    end
  done;
  !state

let average_observable ~rng ~h ~channels ~t ~trajectories ~observable psi0 =
  if trajectories <= 0 then
    invalid_arg "Trajectory.average_observable: trajectories <= 0";
  let acc = ref 0.0 in
  for _ = 1 to trajectories do
    acc := !acc +. observable (evolve ~rng ~h ~channels ~t psi0)
  done;
  !acc /. float_of_int trajectories
