(** Two-point correlation functions and order parameters.

    The condensed-matter diagnostics physicists extract from the
    benchmark models' dynamics (paper Table 2 draws from Ising / lattice
    gauge / Heisenberg literature): connected correlators, staggered
    magnetisation, and domain-wall density. *)

val connected_zz : State.t -> int -> int -> float
(** [⟨Z_iZ_j⟩ − ⟨Z_i⟩⟨Z_j⟩]. *)

val correlation_profile : State.t -> float array
(** [C(r) = mean_i (⟨Z_iZ_{i+r}⟩ − ⟨Z_i⟩⟨Z_{i+r}⟩)] for
    [r = 1 .. n−1] on an open chain (entry [r−1]). *)

val staggered_magnetisation : State.t -> float
(** [1/N Σ (−1)^i ⟨Z_i⟩] — the Néel/antiferromagnetic order parameter
    relevant to the MIS anneal's alternating ground state. *)

val domain_wall_density : State.t -> float
(** [1/(N−1) Σ (1 − ⟨Z_iZ_{i+1}⟩)/2] — the density of broken Ising
    bonds. *)
