(** Complex state vectors over [n] qubits.

    Amplitudes are stored as parallel [re]/[im] float arrays (no boxed
    complex records on the hot path).  Basis index bit [k] is the state of
    qubit [k] (little-endian); [|0...0>] is index 0.  Sizes stay small in
    this project (≤ 12 qubits for the device experiments), so everything
    is dense. *)

type t = { n : int; re : float array; im : float array }

val create : n:int -> t
(** The all-zeros vector (not a valid quantum state until set). *)

val basis : n:int -> int -> t
(** [basis ~n k] is the computational basis state [|k>].  Raises
    [Invalid_argument] when [k] is out of range. *)

val ground : n:int -> t
(** [|0...0>]. *)

val dim : t -> int

val copy : t -> t

val norm : t -> float

val normalize : t -> unit
(** In place; raises [Invalid_argument] on the zero vector. *)

val inner : t -> t -> Complex.t
(** [⟨a|b⟩]. *)

val fidelity : t -> t -> float
(** [|⟨a|b⟩|²]. *)

val probability : t -> int -> float
(** [|amplitude k|²]. *)

val probabilities : t -> float array

val scale : Complex.t -> t -> unit
(** In place. *)

val add_scaled : t -> Complex.t -> t -> unit
(** [add_scaled dst c src] performs [dst += c·src] in place. *)

val equal : ?tol:float -> t -> t -> bool
(** Amplitude-wise comparison (not up to global phase). *)
