open Qturbo_pauli

let z i = Pauli_string.single i Pauli.Z
let zz i j = Pauli_string.two i Pauli.Z j Pauli.Z

let expect_z s i = Apply.expectation_string ~n:s.State.n (z i) s
let expect_zz s i j = Apply.expectation_string ~n:s.State.n (zz i j) s

let z_avg s =
  let n = s.State.n in
  let acc = ref 0.0 in
  for i = 0 to n - 1 do
    acc := !acc +. expect_z s i
  done;
  !acc /. float_of_int n

let zz_avg ?(cycle = true) s =
  let n = s.State.n in
  if n < 2 then invalid_arg "Observable.zz_avg: need at least two qubits";
  let pairs =
    if cycle then List.init n (fun i -> (i, (i + 1) mod n))
    else List.init (n - 1) (fun i -> (i, i + 1))
  in
  let acc =
    List.fold_left (fun acc (i, j) -> acc +. expect_zz s i j) 0.0 pairs
  in
  acc /. float_of_int (List.length pairs)

let expect_n s i = (1.0 -. expect_z s i) /. 2.0

let z_of_bit b = 1.0 -. (2.0 *. float_of_int b)

let z_avg_of_bits samples =
  match samples with
  | [] -> invalid_arg "Observable.z_avg_of_bits: no samples"
  | first :: _ ->
      let n = Array.length first in
      let acc = ref 0.0 and count = ref 0 in
      List.iter
        (fun bits ->
          incr count;
          Array.iter (fun b -> acc := !acc +. z_of_bit b) bits)
        samples;
      !acc /. float_of_int (n * !count)

let zz_avg_of_bits ?(cycle = true) samples =
  match samples with
  | [] -> invalid_arg "Observable.zz_avg_of_bits: no samples"
  | first :: _ ->
      let n = Array.length first in
      if n < 2 then invalid_arg "Observable.zz_avg_of_bits: need two qubits";
      let pairs =
        if cycle then List.init n (fun i -> (i, (i + 1) mod n))
        else List.init (n - 1) (fun i -> (i, i + 1))
      in
      let acc = ref 0.0 and count = ref 0 in
      List.iter
        (fun bits ->
          incr count;
          List.iter
            (fun (i, j) ->
              acc := !acc +. (z_of_bit bits.(i) *. z_of_bit bits.(j)))
            pairs)
        samples;
      !acc /. float_of_int (List.length pairs * !count)
