val now : unit -> float
(** Wall-clock seconds (epoch-based).  All compile-time measurements
    use this rather than [Sys.time]: process CPU time sums over
    domains, so it over-counts parallel sections. *)
