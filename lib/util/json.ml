type value =
  | Null
  | Bool of bool
  | Number of float
  | String of string
  | Array of value list
  | Object of (string * value) list

(* ---- emission ------------------------------------------------------- *)

let escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let quote s = "\"" ^ escape s ^ "\""

(* JSON has no representation for nan/±inf ([%.17g] would print "nan",
   which strict parsers reject); emit [null] instead.  Everything the
   code base prints into a JSON number position must come through
   here. *)
let float_lit f =
  if Float.is_finite f then Printf.sprintf "%.17g" f else "null"

(* Non-finite numbers have no JSON representation; [emit] maps them to
   [null] (same policy as [float_lit]), so [parse (emit v)] returns [v]
   with every non-finite [Number] replaced by [Null]. *)
let emit v =
  let b = Buffer.create 256 in
  let rec go = function
    | Null -> Buffer.add_string b "null"
    | Bool true -> Buffer.add_string b "true"
    | Bool false -> Buffer.add_string b "false"
    | Number f -> Buffer.add_string b (float_lit f)
    | String s ->
        Buffer.add_char b '"';
        Buffer.add_string b (escape s);
        Buffer.add_char b '"'
    | Array items ->
        Buffer.add_char b '[';
        List.iteri
          (fun i item ->
            if i > 0 then Buffer.add_char b ',';
            go item)
          items;
        Buffer.add_char b ']'
    | Object fields ->
        Buffer.add_char b '{';
        List.iteri
          (fun i (k, item) ->
            if i > 0 then Buffer.add_char b ',';
            Buffer.add_char b '"';
            Buffer.add_string b (escape k);
            Buffer.add_string b "\":";
            go item)
          fields;
        Buffer.add_char b '}'
  in
  go v;
  Buffer.contents b

(* ---- strict recursive-descent parser -------------------------------- *)

exception Parse_error of string

type cursor = { text : string; mutable pos : int }

let fail cur msg =
  raise (Parse_error (Printf.sprintf "%s at offset %d" msg cur.pos))

let peek cur = if cur.pos < String.length cur.text then Some cur.text.[cur.pos] else None

let advance cur = cur.pos <- cur.pos + 1

let skip_ws cur =
  let rec go () =
    match peek cur with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance cur;
        go ()
    | _ -> ()
  in
  go ()

let expect cur c =
  match peek cur with
  | Some x when x = c -> advance cur
  | _ -> fail cur (Printf.sprintf "expected '%c'" c)

let literal cur word v =
  let n = String.length word in
  if
    cur.pos + n <= String.length cur.text
    && String.sub cur.text cur.pos n = word
  then begin
    cur.pos <- cur.pos + n;
    v
  end
  else fail cur ("invalid literal (expected " ^ word ^ ")")

let parse_hex4 cur =
  let code = ref 0 in
  for _ = 1 to 4 do
    let d =
      match peek cur with
      | Some ('0' .. '9' as c) -> Char.code c - Char.code '0'
      | Some ('a' .. 'f' as c) -> Char.code c - Char.code 'a' + 10
      | Some ('A' .. 'F' as c) -> Char.code c - Char.code 'A' + 10
      | _ -> fail cur "invalid \\u escape"
    in
    advance cur;
    code := (!code * 16) + d
  done;
  !code

let parse_string cur =
  expect cur '"';
  let b = Buffer.create 16 in
  let rec go () =
    match peek cur with
    | None -> fail cur "unterminated string"
    | Some '"' -> advance cur
    | Some c when Char.code c < 0x20 -> fail cur "raw control character in string"
    | Some '\\' -> (
        advance cur;
        match peek cur with
        | Some '"' -> advance cur; Buffer.add_char b '"'; go ()
        | Some '\\' -> advance cur; Buffer.add_char b '\\'; go ()
        | Some '/' -> advance cur; Buffer.add_char b '/'; go ()
        | Some 'b' -> advance cur; Buffer.add_char b '\b'; go ()
        | Some 'f' -> advance cur; Buffer.add_char b '\012'; go ()
        | Some 'n' -> advance cur; Buffer.add_char b '\n'; go ()
        | Some 'r' -> advance cur; Buffer.add_char b '\r'; go ()
        | Some 't' -> advance cur; Buffer.add_char b '\t'; go ()
        | Some 'u' ->
            advance cur;
            let code = parse_hex4 cur in
            (* RFC 8259 §7: astral-plane characters are encoded as a
               UTF-16 surrogate pair of two \uXXXX escapes.  A high
               surrogate must be immediately followed by an escaped low
               surrogate; anything else (lone high, lone low, high+BMP)
               is malformed. *)
            let scalar =
              if code >= 0xD800 && code <= 0xDBFF then begin
                (match peek cur with
                | Some '\\' -> advance cur
                | _ -> fail cur "unpaired high surrogate in \\u escape");
                (match peek cur with
                | Some 'u' -> advance cur
                | _ -> fail cur "unpaired high surrogate in \\u escape");
                let low = parse_hex4 cur in
                if low < 0xDC00 || low > 0xDFFF then
                  fail cur "unpaired high surrogate in \\u escape";
                0x10000 + ((code - 0xD800) lsl 10) + (low - 0xDC00)
              end
              else if code >= 0xDC00 && code <= 0xDFFF then
                fail cur "unpaired low surrogate in \\u escape"
              else code
            in
            Buffer.add_utf_8_uchar b (Uchar.of_int scalar);
            go ()
        | _ -> fail cur "invalid escape sequence")
    | Some c ->
        advance cur;
        Buffer.add_char b c;
        go ()
  in
  go ();
  Buffer.contents b

let parse_number cur =
  let start = cur.pos in
  let digit () =
    match peek cur with
    | Some ('0' .. '9') ->
        advance cur;
        true
    | _ -> false
  in
  let digits1 who = if not (digit ()) then fail cur who else while digit () do () done in
  (match peek cur with Some '-' -> advance cur | _ -> ());
  (* int part: 0, or [1-9][0-9]* — leading zeros are not JSON *)
  (match peek cur with
  | Some '0' -> advance cur
  | Some ('1' .. '9') -> while digit () do () done
  | _ -> fail cur "invalid number");
  (match peek cur with
  | Some '.' ->
      advance cur;
      digits1 "digits required after decimal point"
  | _ -> ());
  (match peek cur with
  | Some ('e' | 'E') ->
      advance cur;
      (match peek cur with Some ('+' | '-') -> advance cur | _ -> ());
      digits1 "digits required in exponent"
  | _ -> ());
  Number (float_of_string (String.sub cur.text start (cur.pos - start)))

(* The parser recurses once per nested container, so hostile input like
   500 KB of "[[[[…" would otherwise die with [Stack_overflow].  The
   depth bound turns that into a clean {!Parse_error}; 512 is far above
   anything the code base emits while keeping stack use trivial. *)
let default_max_depth = 512

let rec parse_value cur depth max_depth =
  skip_ws cur;
  match peek cur with
  | None -> fail cur "unexpected end of input"
  | Some 'n' -> literal cur "null" Null
  | Some 't' -> literal cur "true" (Bool true)
  | Some 'f' -> literal cur "false" (Bool false)
  | Some '"' -> String (parse_string cur)
  | Some '[' ->
      if depth >= max_depth then fail cur "nesting depth limit exceeded";
      advance cur;
      skip_ws cur;
      if peek cur = Some ']' then begin
        advance cur;
        Array []
      end
      else begin
        let rec items acc =
          let v = parse_value cur (depth + 1) max_depth in
          skip_ws cur;
          match peek cur with
          | Some ',' ->
              advance cur;
              items (v :: acc)
          | Some ']' ->
              advance cur;
              List.rev (v :: acc)
          | _ -> fail cur "expected ',' or ']'"
        in
        Array (items [])
      end
  | Some '{' ->
      if depth >= max_depth then fail cur "nesting depth limit exceeded";
      advance cur;
      skip_ws cur;
      if peek cur = Some '}' then begin
        advance cur;
        Object []
      end
      else begin
        let field () =
          skip_ws cur;
          let k = parse_string cur in
          skip_ws cur;
          expect cur ':';
          (k, parse_value cur (depth + 1) max_depth)
        in
        let rec fields acc =
          let f = field () in
          skip_ws cur;
          match peek cur with
          | Some ',' ->
              advance cur;
              fields (f :: acc)
          | Some '}' ->
              advance cur;
              List.rev (f :: acc)
          | _ -> fail cur "expected ',' or '}'"
        in
        Object (fields [])
      end
  | Some ('-' | '0' .. '9') -> parse_number cur
  | Some c -> fail cur (Printf.sprintf "unexpected character '%c'" c)

let parse_exn ?(max_depth = default_max_depth) text =
  if max_depth < 1 then invalid_arg "Json.parse_exn: max_depth must be >= 1";
  let cur = { text; pos = 0 } in
  let v = parse_value cur 0 max_depth in
  skip_ws cur;
  if cur.pos <> String.length text then fail cur "trailing garbage after value";
  v

let parse ?max_depth text =
  match parse_exn ?max_depth text with
  | v -> Ok v
  | exception Parse_error msg -> Error msg

(* ---- accessors ------------------------------------------------------- *)

let member name = function
  | Object fields -> List.assoc_opt name fields
  | _ -> None

let member_exn name v =
  match member name v with
  | Some x -> x
  | None -> raise (Parse_error ("missing member " ^ name))
