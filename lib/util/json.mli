(** Minimal JSON support shared by every hand-rolled emitter.

    The code base prints its machine-readable reports with [Printf]
    rather than a JSON library; that is fine until a [nan] or [inf]
    reaches a number position ([%.17g] renders them as ["nan"], which no
    strict parser accepts).  {!float_lit} is the single float-emission
    helper: finite values render with full [%.17g] round-trip precision,
    non-finite values render as [null].  {!escape}/{!quote} are the
    matching string helpers.

    {!parse} is a strict RFC 8259 recursive-descent parser — no [NaN] /
    [Infinity] literals, no trailing commas, no garbage after the
    top-level value.  [\uXXXX] escapes cover the full Unicode range:
    astral-plane characters arrive as UTF-16 surrogate pairs and are
    decoded to the combined scalar; a lone or mismatched surrogate is a
    {!Parse_error}.  Container nesting is bounded ([?max_depth],
    default {!default_max_depth}) so hostile input fails with
    {!Parse_error} instead of [Stack_overflow] — the daemon feeds this
    parser raw bytes off a socket.  Tests use it to pin that every
    [--json] output path (including degraded and fault-injected
    compiles) stays valid JSON. *)

type value =
  | Null
  | Bool of bool
  | Number of float
  | String of string
  | Array of value list
  | Object of (string * value) list

val escape : string -> string
(** Backslash-escape a string body per RFC 8259 (quotes, backslash,
    control characters). *)

val quote : string -> string
(** [escape] wrapped in double quotes — a complete JSON string token. *)

val float_lit : float -> string
(** A JSON number token with [%.17g] precision, or [null] when the
    value is [nan] or [±inf]. *)

val emit : value -> string
(** Serialize a {!value} to a compact RFC 8259 text.  Inverse of
    {!parse} up to the non-finite-number policy: [parse (emit v)]
    returns [v] with every [nan]/[±inf] [Number] mapped to [Null]
    (JSON has no token for them; see {!float_lit}). *)

exception Parse_error of string

val default_max_depth : int
(** Container-nesting bound applied when [?max_depth] is omitted
    (512). *)

val parse : ?max_depth:int -> string -> (value, string) result

val parse_exn : ?max_depth:int -> string -> value
(** Raises {!Parse_error} with an offset-annotated message.
    [max_depth] bounds container nesting: input nested deeper than
    [max_depth] arrays/objects fails cleanly instead of overflowing the
    stack.  Raises [Invalid_argument] if [max_depth < 1]. *)

val member : string -> value -> value option
(** Field lookup on an [Object]; [None] on other constructors. *)

val member_exn : string -> value -> value
(** Raises {!Parse_error} when the field is absent. *)
