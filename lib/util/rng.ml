type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create ~seed = { state = seed }

let copy t = { state = t.state }

let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split t =
  let seed = next_int64 t in
  create ~seed:(Int64.logxor seed 0xA5A5A5A5A5A5A5A5L)

(* Take the top 53 bits so the result is uniform over representable
   doubles in [0, 1). *)
let float t =
  let bits = Int64.shift_right_logical (next_int64 t) 11 in
  Int64.to_float bits *. (1.0 /. 9007199254740992.0)

let uniform t ~lo ~hi =
  assert (lo <= hi);
  lo +. ((hi -. lo) *. float t)

let gaussian t ~mu ~sigma =
  (* Box-Muller; guard against log 0 by nudging u1 away from zero. *)
  let u1 = Float.max (float t) 1e-300 in
  let u2 = float t in
  let r = sqrt (-2.0 *. log u1) in
  mu +. (sigma *. r *. cos (2.0 *. Float.pi *. u2))

let int t ~bound =
  assert (bound > 0);
  (* drop two bits so the value fits OCaml's 63-bit native int positively *)
  let x = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2) in
  x mod bound

let bool t = Int64.logand (next_int64 t) 1L = 1L

let shuffle t a =
  let n = Array.length a in
  for i = n - 1 downto 1 do
    let j = int t ~bound:(i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
