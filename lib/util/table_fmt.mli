(** Plain-text table rendering for the benchmark harness.

    The bench binary reports each paper table/figure as an aligned ASCII
    table so the rows can be compared directly against the paper. *)

type t
(** A table under construction: a header row plus data rows. *)

val create : header:string list -> t
(** [create ~header] starts a table with the given column names. *)

val add_row : t -> string list -> unit
(** Append a row.  Rows shorter than the header are padded with [""];
    longer rows raise [Invalid_argument]. *)

val add_float_row : t -> label:string -> float list -> unit
(** Convenience: a label column followed by floats rendered with
    {!cell_of_float}. *)

val cell_of_float : float -> string
(** Compact human-readable rendering: fixed-point for moderate magnitudes,
    scientific otherwise, ["-"] for NaN (used for missing data points,
    matching the paper's missing SimuQ results). *)

val render : t -> string
(** Render with a title-less aligned layout, columns separated by two
    spaces, header underlined. *)

val print : ?title:string -> t -> unit
(** [print ?title t] writes the rendered table (preceded by [title] and a
    separator when given) to stdout. *)
