let now = Unix.gettimeofday
