(** Deterministic pseudo-random number generation.

    The library must be reproducible run-to-run (the SimuQ baseline uses
    random restarts, the device emulator samples noise shots), so all
    randomness flows through an explicit generator state seeded by the
    caller.  The core generator is splitmix64, which has a 64-bit state,
    passes BigCrush, and is trivially splittable. *)

type t
(** Mutable generator state. *)

val create : seed:int64 -> t
(** [create ~seed] returns a fresh generator.  Equal seeds yield equal
    streams. *)

val copy : t -> t
(** [copy t] duplicates the state; the copy evolves independently. *)

val split : t -> t
(** [split t] advances [t] and returns a statistically independent child
    generator, for handing to sub-computations without sharing state. *)

val next_int64 : t -> int64
(** Next raw 64-bit output. *)

val float : t -> float
(** [float t] is uniform in [\[0, 1)]. *)

val uniform : t -> lo:float -> hi:float -> float
(** [uniform t ~lo ~hi] is uniform in [\[lo, hi)].  Requires [lo <= hi]. *)

val gaussian : t -> mu:float -> sigma:float -> float
(** [gaussian t ~mu ~sigma] samples a normal variate (Box–Muller). *)

val int : t -> bound:int -> int
(** [int t ~bound] is uniform in [\[0, bound)].  Requires [bound > 0]. *)

val bool : t -> bool
(** Fair coin. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)
