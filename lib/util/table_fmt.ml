type t = { header : string list; mutable rows : string list list }

let create ~header = { header; rows = [] }

let add_row t row =
  let ncols = List.length t.header in
  let len = List.length row in
  if len > ncols then invalid_arg "Table_fmt.add_row: row wider than header";
  let padded =
    if len = ncols then row else row @ List.init (ncols - len) (fun _ -> "")
  in
  t.rows <- t.rows @ [ padded ]

let cell_of_float x =
  if Float.is_nan x then "-"
  else if x = 0.0 then "0"
  else
    let ax = Float.abs x in
    if ax >= 1e5 || ax < 1e-3 then Printf.sprintf "%.3e" x
    else if ax >= 100.0 then Printf.sprintf "%.1f" x
    else Printf.sprintf "%.4f" x

let add_float_row t ~label xs = add_row t (label :: List.map cell_of_float xs)

let rstrip s =
  let len = ref (String.length s) in
  while !len > 0 && s.[!len - 1] = ' ' do
    decr len
  done;
  String.sub s 0 !len

let render t =
  let all = t.header :: t.rows in
  let ncols = List.length t.header in
  let width c =
    List.fold_left
      (fun acc row -> Int.max acc (String.length (List.nth row c)))
      0 all
  in
  let widths = List.init ncols width in
  let pad w s = s ^ String.make (w - String.length s) ' ' in
  let line_row row = rstrip (String.concat "  " (List.map2 pad widths row)) in
  let sep = String.concat "  " (List.map (fun w -> String.make w '-') widths) in
  String.concat "\n" (line_row t.header :: sep :: List.map line_row t.rows)

let print ?title t =
  (match title with
  | None -> ()
  | Some s ->
      print_endline "";
      print_endline ("== " ^ s ^ " =="));
  print_endline (render t)
