let check_nonempty name a =
  if Array.length a = 0 then invalid_arg (name ^ ": empty array")

let mean a =
  check_nonempty "Stats.mean" a;
  Array.fold_left ( +. ) 0.0 a /. float_of_int (Array.length a)

let variance a =
  let n = Array.length a in
  if n < 2 then 0.0
  else
    let m = mean a in
    let acc = Array.fold_left (fun s x -> s +. ((x -. m) *. (x -. m))) 0.0 a in
    acc /. float_of_int (n - 1)

let stddev a = sqrt (variance a)

let stderr_mean a =
  check_nonempty "Stats.stderr_mean" a;
  stddev a /. sqrt (float_of_int (Array.length a))

let min_max a =
  check_nonempty "Stats.min_max" a;
  Array.fold_left
    (fun (lo, hi) x -> (Float.min lo x, Float.max hi x))
    (a.(0), a.(0)) a

let sorted_copy a =
  let b = Array.copy a in
  Array.sort Float.compare b;
  b

let median a =
  check_nonempty "Stats.median" a;
  let b = sorted_copy a in
  let n = Array.length b in
  if n mod 2 = 1 then b.(n / 2) else (b.((n / 2) - 1) +. b.(n / 2)) /. 2.0

let percentile a ~p =
  check_nonempty "Stats.percentile" a;
  if p < 0.0 || p > 100.0 then invalid_arg "Stats.percentile: p out of range";
  let b = sorted_copy a in
  let n = Array.length b in
  let rank = p /. 100.0 *. float_of_int (n - 1) in
  let lo = int_of_float (Float.floor rank) in
  let hi = int_of_float (Float.ceil rank) in
  if lo = hi then b.(lo)
  else
    let w = rank -. float_of_int lo in
    ((1.0 -. w) *. b.(lo)) +. (w *. b.(hi))

let geometric_mean a =
  check_nonempty "Stats.geometric_mean" a;
  let acc =
    Array.fold_left
      (fun s x ->
        if x <= 0.0 then invalid_arg "Stats.geometric_mean: nonpositive element"
        else s +. log x)
      0.0 a
  in
  exp (acc /. float_of_int (Array.length a))

let linear_fit xs ys =
  let n = Array.length xs in
  if n <> Array.length ys then invalid_arg "Stats.linear_fit: length mismatch";
  if n < 2 then invalid_arg "Stats.linear_fit: need at least two points";
  let mx = mean xs and my = mean ys in
  let sxy = ref 0.0 and sxx = ref 0.0 in
  for i = 0 to n - 1 do
    sxy := !sxy +. ((xs.(i) -. mx) *. (ys.(i) -. my));
    sxx := !sxx +. ((xs.(i) -. mx) *. (xs.(i) -. mx))
  done;
  if !sxx = 0.0 then invalid_arg "Stats.linear_fit: degenerate xs";
  let slope = !sxy /. !sxx in
  (slope, my -. (slope *. mx))
