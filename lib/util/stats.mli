(** Descriptive statistics over float arrays.

    Used by the bench harness (summarising sweep series) and by the device
    emulator (averaging shot samples). *)

val mean : float array -> float
(** Arithmetic mean.  Raises [Invalid_argument] on an empty array. *)

val variance : float array -> float
(** Unbiased sample variance (denominator [n - 1]); [0.] when [n < 2]. *)

val stddev : float array -> float
(** Square root of {!variance}. *)

val stderr_mean : float array -> float
(** Standard error of the mean: [stddev / sqrt n]. *)

val min_max : float array -> float * float
(** Smallest and largest element.  Raises [Invalid_argument] on empty. *)

val median : float array -> float
(** Median (average of the two middle elements for even [n]).  Does not
    mutate its argument.  Raises [Invalid_argument] on empty. *)

val percentile : float array -> p:float -> float
(** [percentile a ~p] with [p] in [\[0, 100\]], linear interpolation between
    order statistics.  Raises [Invalid_argument] on empty. *)

val geometric_mean : float array -> float
(** Geometric mean; requires strictly positive elements.  Used for the
    "average speedup" numbers quoted in the evaluation. *)

val linear_fit : float array -> float array -> float * float
(** [linear_fit xs ys] returns [(slope, intercept)] of the least-squares
    line.  Raises [Invalid_argument] when lengths differ or [n < 2]. *)
