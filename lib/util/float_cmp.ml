let approx ?(rtol = 1e-9) ?(atol = 1e-12) a b =
  if Float.is_nan a || Float.is_nan b then false
  else
    let scale = Float.max (Float.abs a) (Float.abs b) in
    Float.abs (a -. b) <= atol +. (rtol *. scale)

let approx_array ?rtol ?atol a b =
  Array.length a = Array.length b
  && Array.for_all2 (fun x y -> approx ?rtol ?atol x y) a b

let clamp ~lo ~hi x =
  assert (lo <= hi);
  if x < lo then lo else if x > hi then hi else x

let is_finite x = Float.is_finite x
