(** Tolerant floating-point comparison helpers used throughout the solver
    stack and the test suites. *)

val approx : ?rtol:float -> ?atol:float -> float -> float -> bool
(** [approx ?rtol ?atol a b] holds when
    [|a - b| <= atol + rtol * max |a| |b|].  Defaults: [rtol = 1e-9],
    [atol = 1e-12].  NaN compares unequal to everything. *)

val approx_array : ?rtol:float -> ?atol:float -> float array -> float array -> bool
(** Pointwise {!approx} over arrays of equal length; [false] when the
    lengths differ. *)

val clamp : lo:float -> hi:float -> float -> float
(** [clamp ~lo ~hi x] restricts [x] to [\[lo, hi\]].  Requires [lo <= hi]. *)

val is_finite : float -> bool
(** True for ordinary floats; false for NaN and infinities. *)
