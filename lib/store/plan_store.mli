(** On-disk persistence for coefficient-free compile plans.

    The in-memory [Plan_cache] amortizes the structural front end
    within one process; this store amortizes it {e across} processes.
    Entries are opaque byte payloads keyed by the exact structural
    [Shape] key string — the same canonicalized key the LRU uses — so
    a hit here is as trustworthy as an LRU hit, provided the payload
    survives validation.

    Trust model: the store is a cache, never a source of truth.  Every
    entry carries a magic line, the store-format {e version} string
    supplied by the opener, the full key, and an MD5 checksum of the
    payload.  [load] re-derives all of them; any mismatch — truncated
    file, garbage bytes, flipped checksum, stale version, digest
    collision on the file name — is a counted miss, never an error.
    The caller rebuilds and [save] repairs the entry atomically
    (write-to-temp + [rename]), so a crashed writer can leave at worst
    a stale temp file, never a torn entry. *)

type t

type stats = {
  hits : int;  (** validated loads *)
  misses : int;  (** entry absent *)
  corrupt : int;
      (** entry present but failed validation (torn, garbage, bad
          checksum, wrong key), or reclassified by the caller after a
          post-load decode/lint failure *)
  version_mismatch : int;
      (** entry written by a different store-format version *)
  writes : int;  (** successful saves *)
  write_errors : int;  (** saves that failed (permissions, disk) *)
}

val open_store : version:string -> dir:string -> t
(** Open (lazily create) a store rooted at [dir].  [version] is an
    arbitrary single-line tag baked into every entry and required on
    load — bump it (or include a binary digest in it) to invalidate
    all prior entries at once.  Never raises: an unusable directory
    only surfaces later as misses and [write_errors]. *)

val dir : t -> string
val version : t -> string

val entry_path : t -> key:string -> string
(** Path of the file that would hold [key]'s entry ([<md5 hex>.plan]
    under [dir]).  Exposed for tests and ops tooling. *)

val load : t -> key:string -> string option
(** Validated payload for [key], or [None] (counted as miss, corrupt,
    or version mismatch — see {!stats}).  Never raises. *)

val save : t -> key:string -> payload:string -> bool
(** Atomically persist [payload] under [key], replacing any prior
    entry.  Returns [false] (and counts a write error) instead of
    raising. *)

val reclassify_corrupt : t -> unit
(** Demote the most recent hit to a corrupt miss.  The store validates
    bytes, not semantics: when the caller's decode or lint gate rejects
    a payload that passed checksum validation, this keeps the telemetry
    honest. *)

val stats : t -> stats
val reset_stats : t -> unit
