let magic = "qturbo-plan-store 1"

type stats = {
  hits : int;
  misses : int;
  corrupt : int;
  version_mismatch : int;
  writes : int;
  write_errors : int;
}

type t = {
  dir : string;
  version : string;
  lock : Mutex.t;
  mutable hits : int;
  mutable misses : int;
  mutable corrupt : int;
  mutable version_mismatch : int;
  mutable writes : int;
  mutable write_errors : int;
}

let sanitize_version v =
  String.map (fun c -> if c = '\n' || c = '\r' then ' ' else c) v

let open_store ~version ~dir =
  {
    dir;
    version = sanitize_version version;
    lock = Mutex.create ();
    hits = 0;
    misses = 0;
    corrupt = 0;
    version_mismatch = 0;
    writes = 0;
    write_errors = 0;
  }

let dir t = t.dir
let version t = t.version

let entry_path t ~key =
  Filename.concat t.dir (Digest.to_hex (Digest.string key) ^ ".plan")

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

(* ---- load ------------------------------------------------------------ *)

type verdict = Valid of string | Absent | Corrupt | Version_mismatch

(* Entry layout: four header lines (magic, version tag, "<key_len>
   <payload_len>", payload MD5 hex) followed by the raw key bytes and
   the raw payload bytes.  The key is stored in full — file names are
   only a digest, so an (improbable) digest collision must read as a
   miss, not as somebody else's plan. *)
let validate t ~key text =
  let len = String.length text in
  let line_end from =
    match String.index_from_opt text from '\n' with
    | Some i -> i
    | None -> raise Exit
  in
  match
    let e1 = line_end 0 in
    let e2 = line_end (e1 + 1) in
    let e3 = line_end (e2 + 1) in
    let e4 = line_end (e3 + 1) in
    let line a b = String.sub text a (b - a) in
    let l_magic = line 0 e1 in
    let l_version = line (e1 + 1) e2 in
    let l_sizes = line (e2 + 1) e3 in
    let l_md5 = line (e3 + 1) e4 in
    if l_magic <> magic then Corrupt
    else
      let key_len, payload_len =
        match String.split_on_char ' ' l_sizes with
        | [ a; b ] -> (int_of_string a, int_of_string b)
        | _ -> raise Exit
      in
      if key_len < 0 || payload_len < 0 then Corrupt
      else
        let body = e4 + 1 in
        if len - body <> key_len + payload_len then Corrupt
        else if String.sub text body key_len <> key then Corrupt
        else if l_version <> t.version then Version_mismatch
        else
          let payload = String.sub text (body + key_len) payload_len in
          if Digest.to_hex (Digest.string payload) <> l_md5 then Corrupt
          else Valid payload
  with
  | v -> v
  | exception (Exit | Failure _ | Invalid_argument _) -> Corrupt

let load t ~key =
  let verdict =
    match
      In_channel.with_open_bin (entry_path t ~key) In_channel.input_all
    with
    | text -> validate t ~key text
    | exception Sys_error _ -> Absent
  in
  locked t (fun () ->
      match verdict with
      | Valid payload ->
          t.hits <- t.hits + 1;
          Some payload
      | Absent ->
          t.misses <- t.misses + 1;
          None
      | Corrupt ->
          t.corrupt <- t.corrupt + 1;
          None
      | Version_mismatch ->
          t.version_mismatch <- t.version_mismatch + 1;
          None)

(* ---- save ------------------------------------------------------------ *)

let rec ensure_dir path =
  if path <> "" && path <> "/" && not (Sys.file_exists path) then begin
    ensure_dir (Filename.dirname path);
    try Unix.mkdir path 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let save t ~key ~payload =
  let final = entry_path t ~key in
  let tmp = Printf.sprintf "%s.tmp.%d" final (Unix.getpid ()) in
  let ok =
    try
      ensure_dir t.dir;
      Out_channel.with_open_bin tmp (fun oc ->
          Printf.fprintf oc "%s\n%s\n%d %d\n%s\n" magic t.version
            (String.length key) (String.length payload)
            (Digest.to_hex (Digest.string payload));
          Out_channel.output_string oc key;
          Out_channel.output_string oc payload);
      Unix.rename tmp final;
      true
    with Sys_error _ | Unix.Unix_error _ ->
      (try Sys.remove tmp with Sys_error _ -> ());
      false
  in
  locked t (fun () ->
      if ok then t.writes <- t.writes + 1
      else t.write_errors <- t.write_errors + 1);
  ok

(* ---- telemetry ------------------------------------------------------- *)

let reclassify_corrupt t =
  locked t (fun () ->
      if t.hits > 0 then begin
        t.hits <- t.hits - 1;
        t.corrupt <- t.corrupt + 1
      end)

let stats t =
  locked t (fun () ->
      {
        hits = t.hits;
        misses = t.misses;
        corrupt = t.corrupt;
        version_mismatch = t.version_mismatch;
        writes = t.writes;
        write_errors = t.write_errors;
      })

let reset_stats t =
  locked t (fun () ->
      t.hits <- 0;
      t.misses <- 0;
      t.corrupt <- 0;
      t.version_mismatch <- 0;
      t.writes <- 0;
      t.write_errors <- 0)
