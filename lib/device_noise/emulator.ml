open Qturbo_aais
open Qturbo_quantum

type outcome = { z_avg : float; zz_avg : float; shots : int; trajectories : int }

let perturbed_pulse ~rng ~(noise : Noise_model.t) (pulse : Pulse.rydberg) =
  let g ~mu ~sigma =
    if sigma = 0.0 then mu else Qturbo_util.Rng.gaussian rng ~mu ~sigma
  in
  (* global (laser) errors are shared by all atoms and all segments of the
     shot; site jitter is per atom *)
  let omega_factor = g ~mu:1.0 ~sigma:noise.Noise_model.omega_relative_sigma in
  let delta_offset = g ~mu:0.0 ~sigma:noise.Noise_model.delta_sigma in
  let phi_offset = g ~mu:0.0 ~sigma:noise.Noise_model.phi_sigma in
  let jitter (x, y) =
    ( g ~mu:x ~sigma:noise.Noise_model.position_sigma,
      g ~mu:y ~sigma:noise.Noise_model.position_sigma )
  in
  {
    pulse with
    Pulse.positions = Array.map jitter pulse.Pulse.positions;
    segments =
      List.map
        (fun (s : Pulse.rydberg_segment) ->
          {
            s with
            Pulse.omega = Array.map (fun w -> Float.max 0.0 (omega_factor *. w)) s.Pulse.omega;
            delta = Array.map (fun d -> d +. delta_offset) s.Pulse.delta;
            phi = Array.map (fun p -> p +. phi_offset) s.Pulse.phi;
          })
        pulse.Pulse.segments;
  }

let evolve_pulse pulse =
  let n = Array.length pulse.Pulse.positions in
  let segments = Pulse.rydberg_segment_hamiltonians pulse in
  Evolve.evolve_piecewise ~segments (State.ground ~n)

(* when Markovian rates are on, each segment evolves through the
   quantum-jump unravelling instead of the unitary integrator *)
let evolve_pulse_markovian ~rng ~(noise : Noise_model.t) pulse =
  let n = Array.length pulse.Pulse.positions in
  let channels =
    List.concat
      (List.init n (fun i ->
           List.filter
             (fun { Lindblad.rate; _ } -> rate > 0.0)
             [
               { Lindblad.jump = Lindblad.Dephasing i;
                 rate = noise.Noise_model.dephasing_rate };
               { Lindblad.jump = Lindblad.Decay i;
                 rate = noise.Noise_model.decay_rate };
             ]))
  in
  List.fold_left
    (fun psi (h, tau) -> Trajectory.evolve ~rng ~h ~channels ~t:tau psi)
    (State.ground ~n)
    (Pulse.rydberg_segment_hamiltonians pulse)

let noiseless_final_state ~pulse = evolve_pulse pulse

let run ~rng ~noise ~shots ?trajectories ?(cycle = true) ~pulse () =
  if shots <= 0 then invalid_arg "Emulator.run: shots <= 0";
  let trajectories =
    match trajectories with
    | Some t -> Int.max 1 (Int.min t shots)
    | None -> Int.min shots 32
  in
  let base = shots / trajectories and extra = shots mod trajectories in
  let all_bits = ref [] in
  for traj = 0 to trajectories - 1 do
    let traj_shots = base + (if traj < extra then 1 else 0) in
    if traj_shots > 0 then begin
      let noisy = perturbed_pulse ~rng ~noise pulse in
      let markovian =
        noise.Noise_model.dephasing_rate > 0.0
        || noise.Noise_model.decay_rate > 0.0
      in
      let final =
        if markovian then evolve_pulse_markovian ~rng ~noise noisy
        else evolve_pulse noisy
      in
      let bits =
        Measurement.sample_shots ~rng ~readout:noise.Noise_model.readout
          ~shots:traj_shots final
      in
      all_bits := bits @ !all_bits
    end
  done;
  {
    z_avg = Observable.z_avg_of_bits !all_bits;
    zz_avg = Observable.zz_avg_of_bits ~cycle !all_bits;
    shots;
    trajectories;
  }
