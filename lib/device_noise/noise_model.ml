type t = {
  omega_relative_sigma : float;
  delta_sigma : float;
  phi_sigma : float;
  position_sigma : float;
  dephasing_rate : float;
  decay_rate : float;
  readout : Qturbo_quantum.Measurement.readout_error;
}

let ideal =
  {
    omega_relative_sigma = 0.0;
    delta_sigma = 0.0;
    phi_sigma = 0.0;
    position_sigma = 0.0;
    dephasing_rate = 0.0;
    decay_rate = 0.0;
    readout = Qturbo_quantum.Measurement.perfect_readout;
  }

let aquila =
  {
    omega_relative_sigma = 0.015;
    delta_sigma = 0.5;
    phi_sigma = 0.01;
    position_sigma = 0.1;
    dephasing_rate = 0.0;
    decay_rate = 0.0;
    readout = { Qturbo_quantum.Measurement.p_0_to_1 = 0.01; p_1_to_0 = 0.08 };
  }

let aquila_with_markovian =
  { aquila with dephasing_rate = 0.05; decay_rate = 0.02 }

let scaled factor t =
  {
    t with
    omega_relative_sigma = factor *. t.omega_relative_sigma;
    delta_sigma = factor *. t.delta_sigma;
    phi_sigma = factor *. t.phi_sigma;
    position_sigma = factor *. t.position_sigma;
    dephasing_rate = factor *. t.dephasing_rate;
    decay_rate = factor *. t.decay_rate;
  }
