(** Noise model of a Rydberg analog machine (the Aquila substitution).

    The paper's device experiment (§7.4) runs compiled pulses on QuEra's
    Aquila; we replace the machine with an emulator whose noise channels
    are the dominant ones reported for neutral-atom analog devices:

    {ul
    {- {b quasi-static control noise}: shot-to-shot fluctuation of the
       global Rabi amplitude (relative) and detuning (absolute).  Because
       the resulting phase error accumulates over the {e device} execution
       time, shorter pulses are quadratically more robust — exactly the
       mechanism the paper's experiment demonstrates;}
    {- {b site jitter}: each atom's trapped position deviates from the
       programmed one, perturbing the van-der-Waals couplings;}
    {- {b asymmetric readout error}: missing a Rydberg excitation is far
       likelier than a false positive.}} *)

type t = {
  omega_relative_sigma : float;  (** σ of the relative Rabi-amplitude error *)
  delta_sigma : float;  (** σ of the global detuning offset (device units) *)
  phi_sigma : float;  (** σ of the global drive-phase offset (rad) *)
  position_sigma : float;  (** σ of per-atom, per-axis site jitter (µm) *)
  dephasing_rate : float;
      (** per-atom Markovian dephasing rate (1/µs), realised by the
          quantum-jump unravelling; 0 = off *)
  decay_rate : float;  (** per-atom Rydberg-state decay rate (1/µs) *)
  readout : Qturbo_quantum.Measurement.readout_error;
}

val ideal : t
(** All channels off — the emulator then reproduces the noiseless theory
    curves ("QTurbo (TH)" / "SimuQ (TH)" in paper Fig. 6). *)

val aquila : t
(** Magnitudes at the scale of Aquila's published performance:
    1.5 % Rabi error, 0.5 rad/µs detuning offset, 0.1 µm site jitter,
    1 % / 8 % readout flips.  Markovian rates are zero here — the
    quasi-static channels dominate at Aquila's µs pulse scales. *)

val aquila_with_markovian : t
(** {!aquila} plus per-atom Markovian dephasing (0.05/µs) and Rydberg
    decay (0.02/µs); emulation then runs the quantum-jump unravelling,
    a few times slower per trajectory. *)

val scaled : float -> t -> t
(** Multiply every coherent-noise σ (not the readout) by a factor;
    for noise-sensitivity ablations. *)
