(** Shot-based execution of Rydberg pulse schedules under the noise model.

    Shots are grouped into {e trajectories}: within one trajectory the
    quasi-static noise draw is fixed (that is what quasi-static means),
    the Schrödinger equation is integrated exactly for the perturbed
    pulse, and several projective measurements are sampled from the final
    state.  Averaging trajectories reproduces the device's shot
    statistics at a fraction of the cost of one evolution per shot. *)

type outcome = {
  z_avg : float;  (** estimated [1/N Σ⟨Z_i⟩] over all shots *)
  zz_avg : float;  (** estimated adjacent-pair [⟨Z_iZ_j⟩] average *)
  shots : int;
  trajectories : int;
}

val run :
  rng:Qturbo_util.Rng.t ->
  noise:Noise_model.t ->
  shots:int ->
  ?trajectories:int ->
  ?cycle:bool ->
  pulse:Qturbo_aais.Pulse.rydberg ->
  unit ->
  outcome
(** Execute [pulse] from the all-ground state.  [trajectories] defaults to
    [min shots 32]; [cycle] (default true) selects the wrap-around pair in
    [zz_avg].  Raises [Invalid_argument] on nonpositive [shots]. *)

val noiseless_final_state :
  pulse:Qturbo_aais.Pulse.rydberg -> Qturbo_quantum.State.t
(** Exact evolution of the unperturbed pulse — the "(TH)" curves of
    paper Fig. 6. *)

val perturbed_pulse :
  rng:Qturbo_util.Rng.t ->
  noise:Noise_model.t ->
  Qturbo_aais.Pulse.rydberg ->
  Qturbo_aais.Pulse.rydberg
(** One quasi-static noise draw applied to a schedule (exposed for tests:
    the perturbation must vanish under {!Noise_model.ideal}). *)
