(** Term-coverage analysis (pass 1).

    Every Pauli term of the target Hamiltonian must be producible by at
    least one instruction channel on the mapped sites, or the global
    linear system contains a row with an empty left-hand side and the
    solve can only fail with an unexplained residual.  This pass reports
    the exact unsupported terms up front:

    {ul
    {- [QT001] (error): a target term no channel produces;}
    {- [QT004] (error): the target touches qubits outside the AAIS.}} *)

val check :
  channels:Qturbo_aais.Instruction.channel array ->
  n_qubits:int ->
  target:Qturbo_pauli.Pauli_sum.t ->
  Diagnostic.t list
