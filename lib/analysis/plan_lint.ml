module Ps = Qturbo_pauli.Pauli_string

type classification_view = {
  name : string;
  class_vars : int list;
  class_channels : int list;
}

type view = {
  key : string;
  rederived_key : string;
  support : Ps.t list;
  key_support : Ps.t list option;
  rows : Ps.t array;
  cells : (int * float) list array;
  n_channels : int;
  n_vars : int;
  channel_terms : Ps.t list;
  comps : Structure.comp list;
  classifications : classification_view list;
  prepared_names : string list;
}

let error ~subject ~code ?hint msg =
  Diagnostic.make ~code ~severity:Diagnostic.Error ~subject ?hint msg

let term_subject t = Diagnostic.Term t
let comp_subject (c : Structure.comp) =
  Diagnostic.Component
    {
      id = c.id;
      channels = List.length c.channel_ids;
      variables = List.length c.var_ids;
    }

module Ps_set = Set.Make (Ps)
module Ps_tbl = Hashtbl.Make (Ps)

(* ---- QT023: term index exactly covers the canonical support -------- *)

let check_term_index v =
  let diags = ref [] in
  let add d = diags := d :: !diags in
  let n_support = List.length v.support in
  let n_rows = Array.length v.rows in
  (* support terms must lead the index, in canonical order *)
  List.iteri
    (fun i t ->
      if i >= n_rows then
        add
          (error ~subject:(term_subject t) ~code:"QT023"
             ~hint:"the term index is shorter than the support"
             (Printf.sprintf "support term %s has no row" (Ps.to_string t)))
      else if not (Ps.equal v.rows.(i) t) then
        add
          (error ~subject:(term_subject t) ~code:"QT023"
             ~hint:"rows must lead with the support in canonical order"
             (Printf.sprintf "row %d is %s, expected support term %s" i
                (Ps.to_string v.rows.(i))
                (Ps.to_string t))))
    v.support;
  (* no duplicate rows.  Size the tables for their full load up front:
     on dense devices both hold O(n²) entries, and growing from a small
     seed rehashes every resident several times over. *)
  let seen = Ps_tbl.create (2 * n_rows) in
  Array.iteri
    (fun i t ->
      match Ps_tbl.find_opt seen t with
      | Some j ->
          add
            (error ~subject:(term_subject t) ~code:"QT023"
               ~hint:"each Pauli term owns exactly one system row"
               (Printf.sprintf "rows %d and %d both index term %s" j i
                  (Ps.to_string t)))
      | None -> Ps_tbl.add seen t i)
    v.rows;
  (* trailing rows must be channel-producible, and every channel term rowed *)
  let support_set = Ps_set.of_list v.support in
  let channel_set = Ps_tbl.create (2 * List.length v.channel_terms) in
  List.iter
    (fun t -> if not (Ps_tbl.mem channel_set t) then Ps_tbl.add channel_set t ())
    v.channel_terms;
  Array.iteri
    (fun i t ->
      if i >= n_support && not (Ps_tbl.mem channel_set t) then
        add
          (error ~subject:(term_subject t) ~code:"QT023"
             ~hint:"rows beyond the support must be channel-producible terms"
             (Printf.sprintf "row %d indexes term %s, which no channel produces"
                i (Ps.to_string t))))
    v.rows;
  Ps_tbl.iter
    (fun t () ->
      if (not (Ps_tbl.mem seen t)) && not (Ps_set.mem t support_set) then
        add
          (error ~subject:(term_subject t) ~code:"QT023"
             ~hint:
               "channel-producible terms need a (zero-target) row to be \
                driven to zero"
             (Printf.sprintf "channel term %s has no row" (Ps.to_string t))))
    channel_set;
  List.rev !diags

(* ---- QT024: skeleton dimensions -------------------------------------- *)

let check_skeleton v =
  let diags = ref [] in
  let add d = diags := d :: !diags in
  let n_rows = Array.length v.rows in
  if Array.length v.cells <> n_rows then
    add
      (error ~subject:Diagnostic.System ~code:"QT024"
         ~hint:"the skeleton must carry one cell list per indexed term"
         (Printf.sprintf "skeleton has %d cell rows for %d index rows"
            (Array.length v.cells) n_rows));
  Array.iteri
    (fun i cells ->
      List.iter
        (fun (cid, _) ->
          if cid < 0 || cid >= v.n_channels then
            add
              (error ~subject:Diagnostic.System ~code:"QT024"
                 ~hint:
                   (Printf.sprintf "the device has %d channels" v.n_channels)
                 (Printf.sprintf
                    "skeleton row %d references channel %d outside [0, %d)" i
                    cid v.n_channels)))
        cells)
    v.cells;
  List.rev !diags

(* ---- QT025: locality components partition the channel set ----------- *)

let check_partition v =
  let diags = ref [] in
  let add d = diags := d :: !diags in
  (* owner maps as plain arrays over the known id ranges: this pass
     walks every channel id of every component (O(n²) entries on dense
     devices), so hashing here dominated the whole linter *)
  let chan_owner = Array.make (Int.max v.n_channels 1) (-1) in
  let var_owner = Array.make (Int.max v.n_vars 1) (-1) in
  let comp_ids = Hashtbl.create 8 in
  List.iter
    (fun (c : Structure.comp) ->
      (if Hashtbl.mem comp_ids c.id then
         add
           (error ~subject:(comp_subject c) ~code:"QT025"
              (Printf.sprintf "duplicate locality component id %d" c.id)));
      Hashtbl.replace comp_ids c.id ();
      List.iter
        (fun cid ->
          if cid < 0 || cid >= v.n_channels then
            add
              (error ~subject:(comp_subject c) ~code:"QT025"
                 (Printf.sprintf
                    "component %d lists channel %d outside [0, %d)" c.id cid
                    v.n_channels))
          else if chan_owner.(cid) >= 0 then
            add
              (error ~subject:(comp_subject c) ~code:"QT025"
                 ~hint:"components must be disjoint"
                 (Printf.sprintf "channel %d appears in components %d and %d"
                    cid chan_owner.(cid) c.id))
          else chan_owner.(cid) <- c.id)
        c.channel_ids;
      List.iter
        (fun vid ->
          if vid < 0 || vid >= v.n_vars then
            add
              (error ~subject:(comp_subject c) ~code:"QT025"
                 (Printf.sprintf
                    "component %d lists variable %d outside [0, %d)" c.id vid
                    v.n_vars))
          else if var_owner.(vid) >= 0 then
            add
              (error ~subject:(comp_subject c) ~code:"QT025"
                 ~hint:"a variable belongs to at most one component"
                 (Printf.sprintf "variable %d appears in components %d and %d"
                    vid var_owner.(vid) c.id))
          else var_owner.(vid) <- c.id)
        c.var_ids)
    v.comps;
  for cid = 0 to v.n_channels - 1 do
    if chan_owner.(cid) < 0 then
      add
        (error ~subject:Diagnostic.System ~code:"QT025"
           ~hint:"every channel must land in exactly one locality component"
           (Printf.sprintf "channel %d belongs to no locality component" cid))
  done;
  List.rev !diags

(* ---- QT026: classifications consistent with component arity --------- *)

let check_classifications v =
  let diags = ref [] in
  let add d = diags := d :: !diags in
  let n_comps = List.length v.comps in
  let n_class = List.length v.classifications in
  if n_class <> n_comps then
    add
      (error ~subject:Diagnostic.System ~code:"QT026"
         ~hint:"classification is per locality component"
         (Printf.sprintf "%d classifications for %d components" n_class n_comps));
  let rec go comps classes =
    match (comps, classes) with
    | (c : Structure.comp) :: cr, (cl : classification_view) :: clr ->
        let subset what ids universe =
          List.iter
            (fun id ->
              if not (List.mem id universe) then
                add
                  (error ~subject:(comp_subject c) ~code:"QT026"
                     ~hint:
                       "a classification may only name its own component's \
                        channels and variables"
                     (Printf.sprintf
                        "%s classification of component %d names %s %d, which \
                         the component does not contain"
                        cl.name c.id what id)))
            ids
        in
        subset "variable" cl.class_vars c.var_ids;
        subset "channel" cl.class_channels c.channel_ids;
        (match cl.name with
        | "const" ->
            if c.var_ids <> [] then
              add
                (error ~subject:(comp_subject c) ~code:"QT026"
                   ~hint:"const components carry no free variables"
                   (Printf.sprintf
                      "component %d is classified const but has %d variable%s"
                      c.id
                      (List.length c.var_ids)
                      (if List.length c.var_ids = 1 then "" else "s")))
        | "linear" ->
            if List.length cl.class_vars <> 1 then
              add
                (error ~subject:(comp_subject c) ~code:"QT026"
                   (Printf.sprintf
                      "linear classification of component %d names %d driver \
                       variables (expected 1)"
                      c.id
                      (List.length cl.class_vars)))
        | "polar" ->
            if List.length cl.class_vars <> 2 then
              add
                (error ~subject:(comp_subject c) ~code:"QT026"
                   (Printf.sprintf
                      "polar classification of component %d names %d variables \
                       (expected amplitude and phase)"
                      c.id
                      (List.length cl.class_vars)))
        | _ -> ());
        go cr clr
    | _, _ -> ()
  in
  go v.comps v.classifications;
  List.rev !diags

(* ---- QT027: structural key round-trip -------------------------------- *)

let check_key v =
  let diags = ref [] in
  let add d = diags := d :: !diags in
  if not (String.equal v.key v.rederived_key) then
    add
      (error ~subject:Diagnostic.System ~code:"QT027"
         ~hint:
           "a stale key makes the cache serve this plan for the wrong \
            structure"
         "stored plan key differs from the key re-derived from the plan's own \
          device and support");
  (match v.key_support with
  | None ->
      add
        (error ~subject:Diagnostic.System ~code:"QT027"
           ~hint:"the support section of the key must parse back"
           "support section of the stored plan key does not parse")
  | Some terms ->
      if
        List.length terms <> List.length v.support
        || not (List.for_all2 Ps.equal terms v.support)
      then
        add
          (error ~subject:Diagnostic.System ~code:"QT027"
             ~hint:"the key's support section must round-trip exactly"
             "support parsed back from the stored plan key differs from the \
              plan's support"));
  List.rev !diags

(* ---- QT028: prepared solver contexts agree --------------------------- *)

let check_prepared v =
  let diags = ref [] in
  let add d = diags := d :: !diags in
  let n_comps = List.length v.comps in
  if List.length v.prepared_names <> n_comps then
    add
      (error ~subject:Diagnostic.System ~code:"QT028"
         ~hint:"each component owns exactly one prepared solver context"
         (Printf.sprintf "%d prepared solver contexts for %d components"
            (List.length v.prepared_names)
            n_comps));
  let rec go comps classes prepared =
    match (comps, classes, prepared) with
    | ( (c : Structure.comp) :: cr,
        (cl : classification_view) :: clr,
        pname :: pr ) ->
        if not (String.equal cl.name pname) then
          add
            (error ~subject:(comp_subject c) ~code:"QT028"
               ~hint:
                 "the prepared context must be built from the plan's own \
                  classification"
               (Printf.sprintf
                  "component %d is classified %s but its prepared solver \
                   context reports %s"
                  c.id cl.name pname));
        go cr clr pr
    | _, _, _ -> ()
  in
  go v.comps v.classifications v.prepared_names;
  List.rev !diags

let check v =
  check_term_index v @ check_skeleton v @ check_partition v
  @ check_classifications v @ check_key v @ check_prepared v
