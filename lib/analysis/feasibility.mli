(** Bounds-feasibility analysis (pass 2).

    For every target term the compiler must find channel amplitudes whose
    summed effect integrates to [coeff · t_tar].  This pass bounds the
    achievable instantaneous rate of each term by interval arithmetic
    over the symbolic channel expressions ({!Qturbo_aais.Expr.eval_interval})
    using the declared variable bounds, and reports terms that are
    provably out of reach before any solver runs:

    {ul
    {- [QT002] (error): the required sign of the rate is unreachable —
       e.g. a negative ZZ coefficient on a van-der-Waals interaction
       whose rate interval is strictly positive;}
    {- [QT003] (warning): the sign is reachable but, given the device's
       maximum evolution time [t_max], the achievable integral falls
       short of [coeff · t_tar].  A warning rather than an error because
       the interval bound is conservative.}}

    Terms no channel produces at all are skipped here; pass 1 reports
    them as [QT001]. *)

val check :
  channels:Qturbo_aais.Instruction.channel array ->
  variables:Qturbo_aais.Variable.t array ->
  target:Qturbo_pauli.Pauli_sum.t ->
  t_tar:float ->
  ?t_max:float ->
  unit ->
  Diagnostic.t list
(** [t_max], when given, must be positive and finite to enable the
    [QT003] magnitude check. *)
