open Qturbo_aais

let static_checks ~aais ~target ~t_tar ?t_max () =
  let channels = Aais.channels aais in
  let variables = Aais.variables aais in
  Device_check.variables variables
  @ Coverage.check ~channels ~n_qubits:aais.Aais.n_qubits ~target
  @ Feasibility.check ~channels ~variables ~target ~t_tar ?t_max ()
  @ Truncation.check ~aais ~t_tar

let check_or_raise diags =
  match Diagnostic.errors diags with
  | [] -> ()
  | errs -> raise (Diagnostic.Rejected errs)
