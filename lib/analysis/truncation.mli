(** Interaction-cutoff accounting (analyzer code [QT029]).

    When a builder truncated the device's pair interactions (e.g.
    {!Qturbo_aais.Rydberg.build} beyond its auto threshold), the AAIS
    carries an {!Qturbo_aais.Aais.truncation} summary.  This pass turns
    it into an [Info] diagnostic quantifying the honest addition to the
    Theorem-1 error bound: the L1 weight of every omitted effect is an
    upper bound on the per-unit-time operator-norm error of the
    truncated device Hamiltonian, so multiplied by the target evolution
    time it bounds the extra synthesis error.  Exact devices (no
    truncation record) produce no diagnostics. *)

val check : aais:Qturbo_aais.Aais.t -> t_tar:float -> Diagnostic.t list
