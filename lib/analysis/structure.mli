(** Equation-system structure analysis (pass 3).

    Operates on a generic view of the assembled global linear system and
    its locality decomposition, so this library stays independent of
    [qturbo.core] (which converts its [Linear_system] rows and
    [Locality] components into the types below before calling in):

    {ul
    {- [QT005] (error): a dangling synthesized variable — an instruction
       channel that feeds no Hamiltonian term and appears in no system
       row, so its amplitude is unconstrained and the instruction is
       dead weight;}
    {- [QT006] (warning): an amplitude variable referenced by no channel
       expression — it can never influence the compiled pulses;}
    {- [QT007] (warning/info): a locality component with more channels
       than free variables (+1 for the shared evolution time), so its
       local system is generically over-constrained and the local solver
       can only produce a least-squares fit.  Reported as a warning when
       every variable in the component is runtime-dynamic, and as info
       when runtime-fixed variables participate (the standard
       van-der-Waals wrap rows are expected to be fit in this sense).}} *)

type row = {
  term : Qturbo_pauli.Pauli_string.t;
  cells : (int * float) list;  (** (channel id, effect coefficient) *)
}

type comp = { id : int; channel_ids : int list; var_ids : int list }

val check :
  channels:Qturbo_aais.Instruction.channel array ->
  variables:Qturbo_aais.Variable.t array ->
  rows:row list ->
  comps:comp list ->
  Diagnostic.t list
