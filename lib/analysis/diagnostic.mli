(** Structured diagnostics for the pre-solve static analyzer.

    Every finding carries a stable code ([QT001]...), a severity, a
    located subject (Pauli term, channel, variable, component, device or
    pulse), a human-readable message and an optional fix hint.  The
    codes are the public contract: tools and tests match on them, never
    on message text.  See [docs/DIAGNOSTICS.md] for the full table. *)

type severity = Error | Warning | Info

type subject =
  | Term of Qturbo_pauli.Pauli_string.t  (** a target Hamiltonian term *)
  | Channel of { cid : int; label : string }  (** an instruction channel *)
  | Variable of { id : int; name : string }  (** an amplitude variable *)
  | Component of { id : int; channels : int; variables : int }
      (** a locality component of the bipartite channel/variable graph *)
  | Device of string  (** a device preset, by name *)
  | Pulse  (** a compiled pulse schedule *)
  | System  (** the assembled equation system as a whole *)

type t = {
  code : string;  (** stable, e.g. ["QT001"] *)
  severity : severity;
  subject : subject;
  message : string;
  hint : string option;
}

val make :
  code:string -> severity:severity -> subject:subject -> ?hint:string -> string -> t
(** [make ~code ~severity ~subject ?hint message]. *)

exception Rejected of t list
(** Raised by strict pipeline prechecks when error-severity diagnostics
    are present.  A human-readable printer is registered, so an uncaught
    [Rejected] shows the diagnostics rather than an opaque constructor. *)

val is_error : t -> bool
val errors : t list -> t list
val warnings : t list -> t list
(** Warning severity only (excludes [Info]). *)

val has_errors : t list -> bool

val severity_to_string : severity -> string
(** ["error" | "warning" | "info"]. *)

val subject_to_string : subject -> string
(** Compact locator, e.g. ["term Y0Y1"], ["channel vdw(0,1)"]. *)

val pp : Format.formatter -> t -> unit
(** One line: [error[QT001] term Y0Y1: message (hint: ...)]. *)

val to_string : t -> string

val to_json : t -> string
(** One JSON object with [code], [severity], [subject] (an object with a
    [kind] discriminant), [message] and [hint] (null when absent). *)

val list_to_json : t list -> string
(** [{"errors": n, "warnings": n, "diagnostics": [...]}]. *)

val json_escape : string -> string
(** JSON string-literal escaping (quotes not included), shared with the
    other JSON emitters so all output escapes identically. *)
