open Qturbo_aais

let error ~subject ~code ?hint msg =
  Diagnostic.make ~code ~severity:Diagnostic.Error ~subject ?hint msg

(* (pops, pushes) of one instruction.  [K_unknown] is reported as QT022
   and treated as a no-op so the walk can keep scanning for further
   reference violations. *)
let stack_effect (i : Expr.vm_instr) =
  match i with
  | K_const _ | K_var _ | K_vv _ | K_dsq _ | K_var_sin _ | K_var_cos _ -> (0, 1)
  | K_neg | K_pow _ | K_sin | K_cos | K_var_op _ | K_const_op _ | K_sq | K_cube
  | K_crdiv _ ->
      (1, 1)
  | K_binop _ -> (2, 1)
  | K_unknown _ -> (0, 0)

let instr_name (i : Expr.vm_instr) =
  match i with
  | K_const _ -> "const"
  | K_var _ -> "var"
  | K_neg -> "neg"
  | K_binop Expr.B_add -> "add"
  | K_binop Expr.B_sub -> "sub"
  | K_binop Expr.B_mul -> "mul"
  | K_binop Expr.B_div -> "div"
  | K_pow _ -> "pow"
  | K_sin -> "sin"
  | K_cos -> "cos"
  | K_vv _ -> "vv-binop"
  | K_var_op _ -> "var-binop"
  | K_const_op _ -> "const-binop"
  | K_sq -> "sq"
  | K_cube -> "cube"
  | K_dsq _ -> "dsq"
  | K_crdiv _ -> "crdiv"
  | K_var_sin _ -> "var-sin"
  | K_var_cos _ -> "var-cos"
  | K_unknown _ -> "unknown"

(* Interval-interpret a stack-safe, well-formed program using the exact
   interval primitives of [Expr.eval_interval].  [bnd] supplies one
   sanitized interval per environment slot. *)
let interval_exec prog consts ~bnd =
  let module I = Expr.Interval in
  let app2 b x y =
    match (b : Expr.binop) with
    | B_add -> I.add x y
    | B_sub -> I.sub x y
    | B_mul -> I.mul x y
    | B_div -> I.div x y
  in
  let st = ref [] in
  let push x = st := x :: !st in
  let pop () =
    match !st with
    | x :: rest ->
        st := rest;
        x
    | [] -> assert false (* caller established stack safety *)
  in
  Array.iter
    (fun (i : Expr.vm_instr) ->
      match i with
      | K_const ci -> push (I.of_const consts.(ci))
      | K_var v -> push (bnd v)
      | K_neg -> push (I.neg (pop ()))
      | K_binop b ->
          let y = pop () in
          let x = pop () in
          push (app2 b x y)
      | K_pow n -> push (I.pow (pop ()) n)
      | K_sin -> push (I.sin_ (pop ()))
      | K_cos -> push (I.cos_ (pop ()))
      | K_vv (b, a, c) -> push (app2 b (bnd a) (bnd c))
      | K_var_op (b, v) ->
          let x = pop () in
          push (app2 b x (bnd v))
      | K_const_op (b, ci) ->
          let x = pop () in
          push (app2 b x (I.of_const consts.(ci)))
      | K_sq -> push (I.pow (pop ()) 2)
      | K_cube -> push (I.pow (pop ()) 3)
      | K_dsq (a, c) -> push (I.pow (I.sub (bnd a) (bnd c)) 2)
      | K_crdiv ci ->
          let x = pop () in
          push (I.div (I.of_const consts.(ci)) x)
      | K_var_sin v -> push (I.sin_ (bnd v))
      | K_var_cos v -> push (I.cos_ (bnd v))
      | K_unknown _ -> assert false (* caller established well-formedness *))
    prog;
  pop ()

let check ?(subject = Diagnostic.System) ?source ?bounds ~n_env kernel =
  let prog = Expr.kernel_view kernel in
  let consts = Expr.kernel_consts kernel in
  let n_consts = Array.length consts in
  let declared_max = Expr.kernel_max_var kernel in
  let declared_depth = Expr.kernel_depth kernel in
  (* single forward walk: exact stack-effect typing + reference checks *)
  let cur = ref 0 and high = ref 0 in
  let underflow = ref None in
  let bad_vars = ref [] and bad_consts = ref [] and unknowns = ref [] in
  let note r v = if not (List.mem v !r) then r := v :: !r in
  let see_var v = if v < 0 || v >= n_env || v > declared_max then note bad_vars v in
  let see_const ci = if ci < 0 || ci >= n_consts then note bad_consts ci in
  Array.iteri
    (fun pc (i : Expr.vm_instr) ->
      (match i with
      | K_const ci -> see_const ci
      | K_var v -> see_var v
      | K_vv (_, a, b) | K_dsq (a, b) ->
          see_var a;
          see_var b
      | K_var_op (_, v) | K_var_sin v | K_var_cos v -> see_var v
      | K_const_op (_, ci) | K_crdiv ci -> see_const ci
      | K_unknown { op; arg } -> unknowns := (pc, op, arg) :: !unknowns
      | K_neg | K_binop _ | K_pow _ | K_sin | K_cos | K_sq | K_cube -> ());
      let pops, pushes = stack_effect i in
      if !underflow = None then
        if !cur < pops then underflow := Some (pc, i)
        else begin
          cur := !cur - pops + pushes;
          if !cur > !high then high := !cur
        end)
    prog;
  let diags = ref [] in
  let add d = diags := d :: !diags in
  (match !underflow with
  | Some (pc, i) ->
      add
        (error ~subject ~code:"QT017"
           ~hint:"the kernel was not produced by Expr.compile; rebuild it"
           (Printf.sprintf
              "kernel stack underflow: step %d (%s) pops more values than the \
               program has pushed"
              pc (instr_name i)))
  | None ->
      if Array.length prog = 0 then
        add
          (error ~subject ~code:"QT018"
             ~hint:"an empty program returns an uninitialized stack slot"
             "kernel program is empty: evaluation would return stale scratch")
      else if !cur <> 1 then
        add
          (error ~subject ~code:"QT018"
             ~hint:"a postfix program must leave exactly the result on the stack"
             (Printf.sprintf
                "kernel terminates with stack depth %d (expected 1)" !cur)));
  if !bad_vars <> [] then
    add
      (error ~subject ~code:"QT019"
         ~hint:
           (Printf.sprintf
              "environment has %d slots and the kernel declares max_var %d"
              n_env declared_max)
         (Printf.sprintf "kernel reads variable id%s %s outside its declared environment"
            (if List.length !bad_vars > 1 then "s" else "")
            (String.concat ", "
               (List.map string_of_int (List.sort compare !bad_vars)))));
  if !underflow = None && !high > declared_depth then
    add
      (error ~subject ~code:"QT020"
         ~hint:
           "eval_kernel sizes its scratch from the declared depth; exceeding \
            it writes out of bounds"
         (Printf.sprintf
            "kernel declares %d stack slot%s but needs %d" declared_depth
            (if declared_depth = 1 then "" else "s")
            !high));
  List.iter
    (fun (pc, op, arg) ->
      add
        (error ~subject ~code:"QT022"
           ~hint:"opcodes 28-31 are unassigned; the program word is corrupt"
           (Printf.sprintf "kernel step %d has invalid opcode %d (arg %d)" pc op
              arg)))
    (List.rev !unknowns);
  if !bad_consts <> [] then
    add
      (error ~subject ~code:"QT022"
         ~hint:(Printf.sprintf "the constant table has %d entries" n_consts)
         (Printf.sprintf
            "kernel references constant index%s %s outside its constant table"
            (if List.length !bad_consts > 1 then "es" else "")
            (String.concat ", "
               (List.map string_of_int (List.sort compare !bad_consts)))));
  (* Range soundness: only meaningful once the program is structurally
     sound (the abstract interpreter assumes stack safety). *)
  (match source with
  | Some src when !diags = [] ->
      let module I = Expr.Interval in
      let given = match bounds with Some b -> b | None -> [||] in
      let bnd v =
        if v >= 0 && v < Array.length given then I.of_bound given.(v)
        else I.whole
      in
      let src_slots =
        List.fold_left (fun acc v -> Stdlib.max acc (v + 1)) n_env
          (Expr.vars src)
      in
      let bfull = Array.init src_slots bnd in
      let klo, khi = interval_exec prog consts ~bnd in
      let slo, shi = Expr.eval_interval src ~bounds:bfull in
      if not (klo <= slo && khi >= shi) then
        add
          (error ~subject ~code:"QT021"
             ~hint:
               "the compiled program provably computes a different function \
                than its source expression"
             (Printf.sprintf
                "kernel range [%h, %h] does not enclose the source \
                 expression's range [%h, %h]"
                klo khi slo shi))
  | _ -> ());
  List.rev !diags

let check_channel ~n_vars ~bounds (ch : Instruction.channel) =
  check
    ~subject:(Diagnostic.Channel { cid = ch.cid; label = ch.label })
    ~source:ch.expr ~bounds ~n_env:n_vars ch.kernel

(* A device carries O(n²) channels, but almost all of them are copies of
   a handful of expression shapes that differ only in which variables
   they read (every van-der-Waals pair, every per-site detuning, …).
   Verification is invariant under a variable-id bijection once the ids
   are folded into (a) the per-variable environment/witness predicate
   and (b) the per-variable bound interval, so [check_aais] canonicalizes
   each channel by first-use renaming and verifies one representative
   per class.  Only clean results are memoized: a failing channel is
   re-checked individually so its diagnostics carry the real ids. *)
let canonical_class n_vars bounds (ch : Instruction.channel) =
  let view = Expr.kernel_view ch.kernel in
  let declared_max = Expr.kernel_max_var ch.kernel in
  let map = Hashtbl.create 8 in
  let order = ref [] in
  let next = ref 0 in
  let rename v =
    match Hashtbl.find_opt map v with
    | Some c -> c
    | None ->
        let c = !next in
        incr next;
        Hashtbl.add map v c;
        order := v :: !order;
        c
  in
  let cview =
    Array.map
      (function
        | Expr.K_var v -> Expr.K_var (rename v)
        | Expr.K_vv (op, a, b) ->
            let a = rename a in
            let b = rename b in
            Expr.K_vv (op, a, b)
        | Expr.K_var_op (op, v) -> Expr.K_var_op (op, rename v)
        | Expr.K_dsq (a, b) ->
            let a = rename a in
            let b = rename b in
            Expr.K_dsq (a, b)
        | Expr.K_var_sin v -> Expr.K_var_sin (rename v)
        | Expr.K_var_cos v -> Expr.K_var_cos (rename v)
        | instr -> instr)
      view
  in
  let rec rename_expr (e : Expr.t) =
    match e with
    | Expr.Const _ -> e
    | Expr.Var v -> Expr.Var (rename v)
    | Expr.Neg a -> Expr.Neg (rename_expr a)
    | Expr.Add (a, b) -> Expr.Add (rename_expr a, rename_expr b)
    | Expr.Sub (a, b) -> Expr.Sub (rename_expr a, rename_expr b)
    | Expr.Mul (a, b) -> Expr.Mul (rename_expr a, rename_expr b)
    | Expr.Div (a, b) -> Expr.Div (rename_expr a, rename_expr b)
    | Expr.Pow_int (a, k) -> Expr.Pow_int (rename_expr a, k)
    | Expr.Sin a -> Expr.Sin (rename_expr a)
    | Expr.Cos a -> Expr.Cos (rename_expr a)
  in
  let csrc = rename_expr ch.expr in
  let originals = List.rev !order in
  (* everything QT019 asks about a variable id, resolved per canonical
     slot; two channels with equal flag lists behave identically *)
  let env_flags =
    List.map (fun v -> v >= 0 && v < n_vars && v <= declared_max) originals
  in
  (* the bound interval each canonical slot resolves to, sanitized the
     way the interval walk will *)
  let cbounds =
    let module I = Expr.Interval in
    List.map
      (fun v ->
        if v >= 0 && v < Array.length bounds then I.of_bound bounds.(v)
        else I.whole)
      originals
  in
  ( cview,
    Expr.kernel_consts ch.kernel,
    Expr.kernel_depth ch.kernel,
    env_flags,
    csrc,
    cbounds )

let check_aais aais =
  let channels = Aais.channels aais in
  let vars = Aais.variables aais in
  let n_vars = Array.length vars in
  let bounds =
    Array.map
      (fun (v : Variable.t) -> (v.bound.Qturbo_optim.Bounds.lo, v.bound.hi))
      vars
  in
  let memo = Hashtbl.create 64 in
  Array.to_list channels
  |> List.concat_map (fun ch ->
         let key = canonical_class n_vars bounds ch in
         match Hashtbl.find_opt memo key with
         | Some () -> []
         | None ->
             let diags = check_channel ~n_vars ~bounds ch in
             if diags = [] then Hashtbl.add memo key ();
             diags)

let verify_compiled src kernel =
  let n_env =
    List.fold_left (fun acc v -> Stdlib.max acc (v + 1)) 0 (Expr.vars src)
  in
  match check ~source:src ~n_env kernel with
  | [] -> ()
  | diags -> raise (Diagnostic.Rejected diags)

let install_compile_hook () = Expr.compile_hook := verify_compiled

(* Verify-at-birth opt-in: any process started with QTURBO_VERIFY_KERNELS
   set gets the hook installed as soon as this library initializes. *)
let () =
  match Sys.getenv_opt "QTURBO_VERIFY_KERNELS" with
  | Some ("1" | "true" | "yes") -> install_compile_hook ()
  | _ -> ()
