(** Plan-invariant linter (static analyzer stage two, pass B).

    [Qturbo_core.Compile_plan] artifacts are replayed from an LRU cache
    across compiles, sweeps and time-dependent segments — and the
    roadmap's plan store will deserialize them from disk.  This pass
    checks the cross-stage invariants that make a plan trustworthy,
    operating (like {!Structure}) on a generic view so this library
    stays independent of [qturbo.core], which converts its own types and
    calls {!check}:

    {ul
    {- [QT023] (error): the term index does not exactly cover the
       canonical support — a support term without a row, rows not
       leading with the support in order, a duplicate row, or a row that
       is neither a support term nor producible by any channel;}
    {- [QT024] (error): skeleton dimensions are inconsistent — the cell
       array length differs from the row count, or a cell references a
       channel id outside [0, n_channels);}
    {- [QT025] (error): the locality components fail to partition the
       channel set — a channel in no component or in several, a
       duplicated or out-of-range variable id, or a duplicate component
       id;}
    {- [QT026] (error): a classification is inconsistent with its
       component's arity — classification/component count mismatch,
       a const classification over a component with variables, or a
       linear/polar classification naming variables or channels outside
       its component;}
    {- [QT027] (error): the structural [Shape] key does not round-trip —
       re-deriving the key from the plan's own device and support gives
       a different string, or the support section of the stored key does
       not parse back to the plan's support;}
    {- [QT028] (error): the prepared solver contexts disagree with the
       classifications — count mismatch, or a prepared context whose
       own classification differs from the plan's.}}

    All checks are pure structural scans; linting a plan costs
    microseconds next to its build. *)

type classification_view = {
  name : string;
      (** ["const" | "linear" | "polar" | "fixed" | "generic"] *)
  class_vars : int list;
      (** variable ids the classification names (linear's driver, polar's
          amplitude and phase); empty for the structureless kinds *)
  class_channels : int list;
      (** channel cids the classification names (slope / cos / sin
          entries); empty for the structureless kinds *)
}

type view = {
  key : string;  (** the stored structural cache key *)
  rederived_key : string;  (** the key rebuilt from the plan's own parts *)
  support : Qturbo_pauli.Pauli_string.t list;  (** canonical support *)
  key_support : Qturbo_pauli.Pauli_string.t list option;
      (** the support section of [key], parsed back; [None] when it does
          not parse *)
  rows : Qturbo_pauli.Pauli_string.t array;  (** term-index rows, in order *)
  cells : (int * float) list array;  (** per-row [(channel, coeff)] *)
  n_channels : int;
  n_vars : int;
  channel_terms : Qturbo_pauli.Pauli_string.t list;
      (** every non-identity term some channel can produce *)
  comps : Structure.comp list;
  classifications : classification_view list;  (** one per component *)
  prepared_names : string list;
      (** the classification each prepared solver context reports for
          itself, rendered like {!classification_view.name} *)
}

val check : view -> Diagnostic.t list
(** Returns [[]] for a sound plan, error diagnostics otherwise. *)
