open Qturbo_aais

let bad_limit ~device ~field ~value ~want =
  Diagnostic.make ~code:"QT011" ~severity:Diagnostic.Error
    ~subject:(Diagnostic.Device device)
    ~hint:"fix the device preset; the compiler trusts these limits verbatim"
    (Printf.sprintf "%s = %g but must be %s" field value want)

let finite_pos x = Float.is_finite x && x > 0.0

let rydberg_limits (d : Device.rydberg) =
  let diags = ref [] in
  let err field value want = bad_limit ~device:d.name ~field ~value ~want in
  if not (finite_pos d.c6) then diags := err "c6" d.c6 "positive" :: !diags;
  if not (finite_pos d.min_separation) then
    diags := err "min_separation" d.min_separation "positive" :: !diags;
  if not (finite_pos d.max_time) then
    diags := err "max_time" d.max_time "positive" :: !diags;
  if Float.is_nan d.omega_max || d.omega_max < 0.0 then
    diags := err "omega_max" d.omega_max "non-negative" :: !diags;
  if Float.is_nan d.delta_max || d.delta_max < 0.0 then
    diags := err "delta_max" d.delta_max "non-negative" :: !diags;
  if Float.is_nan d.omega_slew_max || d.omega_slew_max < 0.0 then
    diags := err "omega_slew_max" d.omega_slew_max "non-negative" :: !diags;
  if
    Float.is_finite d.min_separation
    && (Float.is_nan d.max_extent || d.max_extent < d.min_separation)
  then
    diags :=
      err "max_extent" d.max_extent
        (Printf.sprintf "at least min_separation = %g" d.min_separation)
      :: !diags;
  List.rev !diags

(* Unit-mixing heuristic: the two Aquila conventions sit far apart —
   c6 = 862690 amplitude·µm⁶ with Ω ≲ 2.5, Δ ≲ 20 (plain MHz) versus
   c6 = 2π·862690 ≈ 5.42e6 with Ω ≈ 15.8, Δ ≈ 125 (rad/µs).  Only specs
   whose c6 clearly matches one convention are classified, so toy test
   devices never trigger this. *)
type convention = Mhz | Rad

let rydberg_units (d : Device.rydberg) =
  let c6_conv =
    if d.c6 >= 5.0e5 && d.c6 <= 1.5e6 then Some Mhz
    else if d.c6 >= 3.0e6 && d.c6 <= 1.0e7 then Some Rad
    else None
  in
  let amp_conv v ~mhz_max ~rad_min =
    if v > 0.0 && v <= mhz_max then Some Mhz
    else if v >= rad_min then Some Rad
    else None
  in
  match c6_conv with
  | None -> []
  | Some conv ->
      let clash field v other =
        Diagnostic.make ~code:"QT010" ~severity:Diagnostic.Warning
          ~subject:(Diagnostic.Device d.name)
          ~hint:
            "multiply MHz quantities by 2π to get rad/µs (or divide the \
             other way); mixed conventions compile without error but \
             execute the wrong Hamiltonian"
          (Printf.sprintf
             "c6 = %g looks like the %s convention but %s = %g looks like \
              %s"
             d.c6
             (match conv with Mhz -> "MHz" | Rad -> "rad/µs")
             field v
             (match other with Mhz -> "MHz" | Rad -> "rad/µs"))
      in
      let check field v ~mhz_max ~rad_min acc =
        match amp_conv v ~mhz_max ~rad_min with
        | Some c when c <> conv -> clash field v c :: acc
        | _ -> acc
      in
      []
      |> check "omega_max" d.omega_max ~mhz_max:4.0 ~rad_min:6.0
      |> check "delta_max" d.delta_max ~mhz_max:30.0 ~rad_min:60.0
      |> List.rev

let rydberg_spec d = rydberg_limits d @ rydberg_units d

let heisenberg_spec (d : Device.heisenberg) =
  let diags = ref [] in
  let err field value want = bad_limit ~device:d.name ~field ~value ~want in
  if Float.is_nan d.single_max || d.single_max < 0.0 then
    diags := err "single_max" d.single_max "non-negative" :: !diags;
  if Float.is_nan d.two_max || d.two_max < 0.0 then
    diags := err "two_max" d.two_max "non-negative" :: !diags;
  if not (finite_pos d.max_time) then
    diags := err "max_time" d.max_time "positive" :: !diags;
  List.rev !diags

let iontrap_spec (d : Device.iontrap) =
  let diags = ref [] in
  let err field value want = bad_limit ~device:d.name ~field ~value ~want in
  if Float.is_nan d.omega_max || d.omega_max < 0.0 then
    diags := err "omega_max" d.omega_max "non-negative" :: !diags;
  if Float.is_nan d.mu_max || d.mu_max < 0.0 then
    diags := err "mu_max" d.mu_max "non-negative" :: !diags;
  if Float.is_nan d.j_max || d.j_max < 0.0 then
    diags := err "j_max" d.j_max "non-negative" :: !diags;
  if Float.is_nan d.falloff || d.falloff < 0.0 then
    diags := err "falloff" d.falloff "finite and non-negative" :: !diags;
  if d.coupling_range < 1 then
    diags :=
      err "coupling_range" (float_of_int d.coupling_range) "at least 1"
      :: !diags;
  if d.max_ions < 1 then
    diags := err "max_ions" (float_of_int d.max_ions) "at least 1" :: !diags;
  if not (finite_pos d.max_time) then
    diags := err "max_time" d.max_time "positive" :: !diags;
  List.rev !diags

let variables vars =
  let diags = ref [] in
  Array.iter
    (fun (v : Variable.t) ->
      let lo = v.Variable.bound.lo and hi = v.Variable.bound.hi in
      if Float.is_nan lo || Float.is_nan hi || lo > hi then
        diags :=
          Diagnostic.make ~code:"QT009" ~severity:Diagnostic.Error
            ~subject:(Diagnostic.Variable { id = v.id; name = v.name })
            ~hint:"declare bounds with lo <= hi and finite values"
            (Printf.sprintf "bounds [%g, %g] are empty or NaN" lo hi)
          :: !diags
      else if not (Float.is_finite v.init) then
        diags :=
          Diagnostic.make ~code:"QT009" ~severity:Diagnostic.Error
            ~subject:(Diagnostic.Variable { id = v.id; name = v.name })
            ~hint:"give the solvers a finite starting point"
            (Printf.sprintf "initial guess %g is not finite" v.init)
          :: !diags)
    vars;
  List.rev !diags

let rydberg_pulse (p : Pulse.rydberg) =
  let limit_diags =
    List.map
      (fun msg ->
        Diagnostic.make ~code:"QT012" ~severity:Diagnostic.Error
          ~subject:Diagnostic.Pulse
          ~hint:
            "the schedule is not executable on this device; recompile \
             against the device's actual limits"
          msg)
      (Pulse.within_limits p)
  in
  let slew_diags =
    List.map
      (fun msg ->
        Diagnostic.make ~code:"QT013" ~severity:Diagnostic.Warning
          ~subject:Diagnostic.Pulse
          ~hint:"run the ramping post-pass to smooth the transitions"
          msg)
      (Pulse.slew_violations p)
  in
  limit_diags @ slew_diags

let heisenberg_pulse (p : Pulse.heisenberg) =
  List.map
    (fun msg ->
      Diagnostic.make ~code:"QT012" ~severity:Diagnostic.Error
        ~subject:Diagnostic.Pulse
        ~hint:
          "the schedule is not executable on this device; recompile \
           against the device's actual limits"
        msg)
    (Pulse.heisenberg_within_limits p)

(* No QT013 analogue: ion traps carry no slew limit in the spec, so the
   ramping post-pass is an identity for this family. *)
let iontrap_pulse (p : Pulse.iontrap) =
  List.map
    (fun msg ->
      Diagnostic.make ~code:"QT012" ~severity:Diagnostic.Error
        ~subject:Diagnostic.Pulse
        ~hint:
          "the schedule is not executable on this device; recompile \
           against the device's actual limits"
        msg)
    (Pulse.iontrap_within_limits p)
