open Qturbo_aais

let check ~(aais : Aais.t) ~t_tar =
  match aais.Aais.truncation with
  | None -> []
  | Some tr ->
      let bound = tr.Aais.dropped_l1 *. t_tar in
      [
        Diagnostic.make ~code:"QT029" ~severity:Diagnostic.Info
          ~subject:(Diagnostic.Device aais.Aais.name)
          ~hint:
            "compile with the all-pairs cutoff (or a larger radius) if \
             this exceeds the simulation's error budget"
          (Printf.sprintf
             "interaction cutoff at %g um dropped %d of %d pair channels \
              (kept %d); omitted-coupling L1 weight %.3e (largest single \
              pair %.3e) adds at most %.3e to the Theorem-1 bound over \
              t_tar = %g"
             tr.Aais.radius tr.Aais.dropped_pairs
             (tr.Aais.kept_pairs + tr.Aais.dropped_pairs)
             tr.Aais.kept_pairs tr.Aais.dropped_l1 tr.Aais.max_dropped bound
             t_tar);
      ]
