(** Kernel IR verifier (static analyzer stage two, pass A).

    {!Qturbo_aais.Expr.compile} flattens every channel expression into a
    packed postfix program whose evaluator runs with unchecked stack
    accesses on the hot residual path.  This module is an abstract
    interpreter over the typed IR view ({!Qturbo_aais.Expr.kernel_view})
    that proves, per kernel:

    {ul
    {- [QT017] (error): {e stack underflow} — an instruction pops more
       values than the program has pushed at that point;}
    {- [QT018] (error): {e wrong result arity} — the program terminates
       with a stack depth other than 1 (or is empty), so [eval_kernel]
       would return a stale or uninitialized slot;}
    {- [QT019] (error): {e environment violation} — a variable read
       outside the declared environment ([id ≥ n_env]) or beyond the
       kernel's own declared [kernel_max_var] (a lying closedness
       witness);}
    {- [QT020] (error): {e under-declared stack depth} — the program's
       true high-water mark exceeds [kernel_depth], so the evaluator's
       scratch array can be written out of bounds;}
    {- [QT021] (error): {e range unsoundness} — interval-interpreting
       the kernel over the variable bounds yields an interval that fails
       to enclose [Expr.eval_interval] of the source ADT, i.e. the
       compiled program provably computes a different function;}
    {- [QT022] (error): {e malformed instruction} — an undecodable
       opcode word, or a constant-table index outside the kernel's
       constant pool.}}

    Every check is solver-free and runs in one pass over the program
    (plus one interval evaluation of the source for [QT021]), so
    verifying a whole device costs microseconds — cheap enough for the
    compile-time hook and the [qturbo lint] command to run it on every
    kernel. *)

open Qturbo_aais

val check :
  ?subject:Diagnostic.subject ->
  ?source:Expr.t ->
  ?bounds:(float * float) array ->
  n_env:int ->
  Expr.kernel ->
  Diagnostic.t list
(** Verify one kernel against an environment of [n_env] variable slots.
    [?source] enables the [QT021] range-soundness comparison ([bounds]
    defaults to the whole line per variable); [?subject] locates the
    findings (defaults to {!Diagnostic.System}).  Returns [[]] for a
    provably safe kernel. *)

val check_channel :
  n_vars:int -> bounds:(float * float) array -> Instruction.channel ->
  Diagnostic.t list
(** {!check} on a channel's cached kernel, with the channel as subject
    and its source expression enabling the range comparison. *)

val check_aais : Aais.t -> Diagnostic.t list
(** Verify every channel kernel of a device, with bounds taken from the
    device's variable declarations.  The kernel-level half of
    [qturbo lint]. *)

val verify_compiled : Expr.t -> Expr.kernel -> unit
(** Compile-time verification hook body: checks a freshly compiled
    kernel against its source (environment sized by the source's
    variable set, unbounded intervals) and raises
    {!Diagnostic.Rejected} on any finding. *)

val install_compile_hook : unit -> unit
(** Point {!Qturbo_aais.Expr.compile_hook} at {!verify_compiled}, so
    every kernel compiled from then on is verified at birth (test mode,
    [qturbo lint], and [QTURBO_VERIFY_KERNELS=1] runs). *)
