open Qturbo_pauli
open Qturbo_aais

module Ps_tbl = Hashtbl.Make (struct
  type t = Pauli_string.t

  let equal = Pauli_string.equal
  let hash = Pauli_string.hash
end)

let check ~channels ~n_qubits ~target =
  let terms = Pauli_sum.terms (Pauli_sum.drop_identity target) in
  (* mark which target terms some channel produces; scanning the channel
     effect lists against a table of target terms stays linear even when
     the AAIS produces O(N²) terms the target never mentions *)
  let covered = Ps_tbl.create 64 in
  List.iter (fun (s, _) -> Ps_tbl.replace covered s false) terms;
  (* identity effects can never be in [covered], so the raw effect list
     needs no filtering here *)
  Array.iter
    (fun (c : Instruction.channel) ->
      List.iter
        (fun (e : Instruction.effect) ->
          if Ps_tbl.mem covered e.pstring then
            Ps_tbl.replace covered e.pstring true)
        c.effects)
    channels;
  let diags = ref [] in
  List.iter
    (fun (s, _coeff) ->
      if Pauli_string.max_site s >= n_qubits then
        diags :=
          Diagnostic.make ~code:"QT004" ~severity:Diagnostic.Error
            ~subject:(Diagnostic.Term s)
            ~hint:
              (Printf.sprintf
                 "remap the target onto sites 0..%d or build a larger AAIS"
                 (n_qubits - 1))
            (Printf.sprintf "term touches site %d but the AAIS has %d qubits"
               (Pauli_string.max_site s) n_qubits)
          :: !diags
      else if not (Ps_tbl.find covered s) then
        diags :=
          Diagnostic.make ~code:"QT001" ~severity:Diagnostic.Error
            ~subject:(Diagnostic.Term s)
            ~hint:
              "no instruction channel feeds this Pauli term; choose an AAIS \
               whose instructions span it, or transform the target (e.g. a \
               basis change) before compiling"
            "target term is not producible by any instruction channel"
          :: !diags)
    terms;
  List.rev !diags
