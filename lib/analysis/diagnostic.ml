type severity = Error | Warning | Info

type subject =
  | Term of Qturbo_pauli.Pauli_string.t
  | Channel of { cid : int; label : string }
  | Variable of { id : int; name : string }
  | Component of { id : int; channels : int; variables : int }
  | Device of string
  | Pulse
  | System

type t = {
  code : string;
  severity : severity;
  subject : subject;
  message : string;
  hint : string option;
}

let make ~code ~severity ~subject ?hint message =
  { code; severity; subject; message; hint }

exception Rejected of t list

let is_error d = d.severity = Error
let errors ds = List.filter is_error ds
let warnings ds = List.filter (fun d -> d.severity = Warning) ds
let has_errors ds = List.exists is_error ds

let severity_to_string = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

let subject_to_string = function
  | Term s -> Format.asprintf "term %a" Qturbo_pauli.Pauli_string.pp s
  | Channel { label; _ } -> Printf.sprintf "channel %s" label
  | Variable { name; _ } -> Printf.sprintf "variable %s" name
  | Component { id; channels; variables } ->
      Printf.sprintf "component #%d (%d channels, %d variables)" id channels
        variables
  | Device name -> Printf.sprintf "device %s" name
  | Pulse -> "pulse"
  | System -> "system"

let pp ppf d =
  Format.fprintf ppf "%s[%s] %s: %s"
    (severity_to_string d.severity)
    d.code
    (subject_to_string d.subject)
    d.message;
  match d.hint with
  | Some h -> Format.fprintf ppf " (hint: %s)" h
  | None -> ()

let to_string d = Format.asprintf "%a" pp d

(* ---- JSON ----------------------------------------------------------- *)

(* shared with every hand-rolled emitter; this module prints no raw
   floats (codes, names, counts only), so [Json.float_lit] is not needed
   here *)
let json_escape = Qturbo_util.Json.escape

let jstr s = "\"" ^ json_escape s ^ "\""

let subject_to_json = function
  | Term s ->
      Printf.sprintf {|{"kind":"term","term":%s}|}
        (jstr (Format.asprintf "%a" Qturbo_pauli.Pauli_string.pp s))
  | Channel { cid; label } ->
      Printf.sprintf {|{"kind":"channel","cid":%d,"label":%s}|} cid (jstr label)
  | Variable { id; name } ->
      Printf.sprintf {|{"kind":"variable","id":%d,"name":%s}|} id (jstr name)
  | Component { id; channels; variables } ->
      Printf.sprintf
        {|{"kind":"component","id":%d,"channels":%d,"variables":%d}|} id
        channels variables
  | Device name -> Printf.sprintf {|{"kind":"device","name":%s}|} (jstr name)
  | Pulse -> {|{"kind":"pulse"}|}
  | System -> {|{"kind":"system"}|}

let to_json d =
  Printf.sprintf
    {|{"code":%s,"severity":%s,"subject":%s,"message":%s,"hint":%s}|}
    (jstr d.code)
    (jstr (severity_to_string d.severity))
    (subject_to_json d.subject)
    (jstr d.message)
    (match d.hint with Some h -> jstr h | None -> "null")

let list_to_json ds =
  Printf.sprintf {|{"errors":%d,"warnings":%d,"diagnostics":[%s]}|}
    (List.length (errors ds))
    (List.length (warnings ds))
    (String.concat "," (List.map to_json ds))

let () =
  Printexc.register_printer (function
    | Rejected ds ->
        Some
          (Printf.sprintf "Qturbo_analysis.Diagnostic.Rejected:\n%s"
             (String.concat "\n" (List.map to_string ds)))
    | _ -> None)
