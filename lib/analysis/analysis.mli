(** Pre-solve static analyzer entry points.

    [qturbo.analysis] inspects a target Hamiltonian against an AAIS
    {e before} any solver runs and emits structured {!Diagnostic.t}
    findings: unsupported Pauli terms, coefficients provably outside the
    interval-evaluated channel ranges, degenerate equation-system
    structure, and device/unit sanity problems.  The compiler front-ends
    ([Qturbo_core.Compiler] / [Td_compiler]) call {!static_checks} as a
    fail-fast precheck; [qturbo check] exposes the same passes on the
    command line.

    Pass 3 (system structure) needs the assembled linear system and its
    locality decomposition, which live in [qturbo.core]; the core
    converts its own types into {!Structure.row} / {!Structure.comp} and
    calls {!Structure.check} directly. *)

val static_checks :
  aais:Qturbo_aais.Aais.t ->
  target:Qturbo_pauli.Pauli_sum.t ->
  t_tar:float ->
  ?t_max:float ->
  unit ->
  Diagnostic.t list
(** Passes 1 (term coverage), 2 (bounds feasibility), the variable-pool
    part of pass 4, and the interaction-cutoff accounting ({!Truncation},
    [QT029]), in stable order.  [t_max] enables the [QT003] magnitude
    check. *)

val check_or_raise : Diagnostic.t list -> unit
(** Raises {!Diagnostic.Rejected} with the error-severity subset when
    any diagnostic is an error; returns unit otherwise. *)
