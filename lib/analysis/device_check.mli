(** Units/limits analysis (pass 4).

    Sanity checks on device presets, variable pools and compiled pulse
    schedules:

    {ul
    {- [QT009] (error): a variable with inverted or NaN bounds, or a
       non-finite initial guess;}
    {- [QT010] (warning): suspected MHz / rad·µs⁻¹ unit mixing in a
       Rydberg spec — the [c6] coefficient follows one convention while
       [omega_max]/[delta_max] follow the other;}
    {- [QT011] (error): non-positive or nonsensical device limits
       ([c6], [min_separation], [max_time] must be positive;
       [omega_max], [delta_max], [omega_slew_max] non-negative;
       [max_extent >= min_separation]);}
    {- [QT012] (error): a compiled pulse schedule outside the device's
       amplitude/time limits (unified with
       {!Qturbo_aais.Pulse.within_limits});}
    {- [QT013] (warning): Rabi slew-rate violations on internal schedule
       transitions ({!Qturbo_aais.Pulse.slew_violations}) — a warning
       because the ramping post-pass is expected to fix these.}} *)

val rydberg_spec : Qturbo_aais.Device.rydberg -> Diagnostic.t list
(** [QT010] and [QT011]. *)

val heisenberg_spec : Qturbo_aais.Device.heisenberg -> Diagnostic.t list
(** [QT011]. *)

val iontrap_spec : Qturbo_aais.Device.iontrap -> Diagnostic.t list
(** [QT011]: [omega_max], [mu_max], [j_max], [falloff] non-negative
    (and [falloff] finite), [coupling_range] and [max_ions] at least 1,
    [max_time] positive. *)

val variables : Qturbo_aais.Variable.t array -> Diagnostic.t list
(** [QT009]. *)

val rydberg_pulse : Qturbo_aais.Pulse.rydberg -> Diagnostic.t list
(** [QT012] and [QT013]. *)

val heisenberg_pulse : Qturbo_aais.Pulse.heisenberg -> Diagnostic.t list
(** [QT012] (unified with {!Qturbo_aais.Pulse.heisenberg_within_limits}). *)

val iontrap_pulse : Qturbo_aais.Pulse.iontrap -> Diagnostic.t list
(** [QT012] (unified with {!Qturbo_aais.Pulse.iontrap_within_limits});
    no [QT013] — ion traps have no slew limit. *)
