open Qturbo_pauli
open Qturbo_aais

(* Interval helpers local to this pass.  [Expr.eval_interval] returns
   normalised intervals (lo <= hi, NaN widened away); the combinators
   here only need scalar scaling and addition on such intervals. *)

let norm ((a, b) as i) =
  if Float.is_nan a || Float.is_nan b then (neg_infinity, infinity) else i

let iscale c (a, b) =
  if c = 0.0 then (0.0, 0.0)
  else if c > 0.0 then norm (c *. a, c *. b)
  else norm (c *. b, c *. a)

let iadd (a, b) (c, d) = norm (a +. c, b +. d)

let fmt_interval (a, b) = Printf.sprintf "[%g, %g]" a b

module Ps_tbl = Hashtbl.Make (struct
  type t = Pauli_string.t

  let equal a b = Pauli_string.compare a b = 0
  let hash = Pauli_string.hash
end)

(* Channels contributing to each term of [wanted], with their effect
   coefficients.  Restricting to the wanted terms keeps this linear in
   the channel effect lists even when the AAIS produces O(N²) terms the
   target never mentions. *)
let contributions channels ~wanted =
  let tbl = Ps_tbl.create 64 in
  (* identity effects can never be in [wanted]: scan the raw effect
     lists without the [effect_terms] filtering allocation *)
  Array.iter
    (fun (c : Instruction.channel) ->
      List.iter
        (fun (e : Instruction.effect) ->
          if Ps_tbl.mem wanted e.pstring then
            Ps_tbl.replace tbl e.pstring
              ((c, e.coeff)
              :: (try Ps_tbl.find tbl e.pstring with Not_found -> [])))
        c.effects)
    channels;
  tbl

let check ~channels ~variables ~target ~t_tar ?t_max () =
  let bounds =
    Array.map
      (fun (v : Variable.t) -> (v.Variable.bound.lo, v.Variable.bound.hi))
      variables
  in
  let rate_cache = Hashtbl.create 64 in
  let channel_rate (c : Instruction.channel) =
    match Hashtbl.find_opt rate_cache c.cid with
    | Some i -> i
    | None ->
        let i = Expr.eval_interval c.expr ~bounds in
        Hashtbl.add rate_cache c.cid i;
        i
  in
  let terms = Pauli_sum.terms (Pauli_sum.drop_identity target) in
  let wanted = Ps_tbl.create 64 in
  List.iter (fun (s, coeff) -> if coeff <> 0.0 then Ps_tbl.replace wanted s ()) terms;
  let contrib = contributions channels ~wanted in
  let diags = ref [] in
  List.iter
    (fun (s, coeff) ->
      if coeff <> 0.0 then
        match Ps_tbl.find_opt contrib s with
        | None | Some [] -> () (* pass 1 reports QT001 *)
        | Some cs ->
            let ((lo, hi) as rate) =
              List.fold_left
                (fun acc (c, k) -> iadd acc (iscale k (channel_rate c)))
                (0.0, 0.0) cs
            in
            let sign_ok =
              if coeff > 0.0 then hi > 0.0 else lo < 0.0
            in
            if not sign_ok then
              diags :=
                Diagnostic.make ~code:"QT002" ~severity:Diagnostic.Error
                  ~subject:(Diagnostic.Term s)
                  ~hint:
                    "the channel expressions cannot reach this sign within \
                     the declared variable bounds; flip the target \
                     coefficient's sign via a basis change or pick a device \
                     with a wider amplitude range"
                  (Printf.sprintf
                     "coefficient %g requires a %s rate, but the achievable \
                      rate interval is %s"
                     coeff
                     (if coeff > 0.0 then "positive" else "negative")
                     (fmt_interval rate))
                :: !diags
            else
              match t_max with
              | Some tm when tm > 0.0 && Float.is_finite tm ->
                  let need = coeff *. t_tar in
                  let best =
                    if coeff > 0.0 then hi *. tm else lo *. tm
                  in
                  let short =
                    Float.is_finite best
                    && (if coeff > 0.0 then need > best else need < best)
                  in
                  if short then
                    diags :=
                      Diagnostic.make ~code:"QT003"
                        ~severity:Diagnostic.Warning
                        ~subject:(Diagnostic.Term s)
                        ~hint:
                          "reduce the target time, rescale the Hamiltonian, \
                           or split the evolution into repeated segments"
                        (Printf.sprintf
                           "needs integral %g over t_tar = %g, but the rate \
                            interval %s caps the achievable integral at %g \
                            within the device's max evolution time %g"
                           need t_tar (fmt_interval rate) best tm)
                      :: !diags
              | _ -> ())
    terms;
  List.rev !diags
