open Qturbo_aais

type row = {
  term : Qturbo_pauli.Pauli_string.t;
  cells : (int * float) list;
}

type comp = { id : int; channel_ids : int list; var_ids : int list }

let check ~channels ~variables ~rows ~comps =
  let diags = ref [] in
  let add d = diags := d :: !diags in
  (* QT005: channels absent from every row and feeding no term. *)
  let n_ch = Array.length channels in
  let in_rows = Array.make (Int.max 1 n_ch) false in
  List.iter
    (fun r ->
      List.iter
        (fun (cid, k) ->
          if k <> 0.0 && cid >= 0 && cid < n_ch then in_rows.(cid) <- true)
        r.cells)
    rows;
  Array.iter
    (fun (c : Instruction.channel) ->
      let feeds_term =
        List.exists
          (fun (e : Instruction.effect) ->
            e.coeff <> 0.0
            && not (Qturbo_pauli.Pauli_string.is_identity e.pstring))
          c.effects
      in
      if (not feeds_term) && not (c.cid >= 0 && c.cid < n_ch && in_rows.(c.cid))
      then
        add
          (Diagnostic.make ~code:"QT005" ~severity:Diagnostic.Error
             ~subject:(Diagnostic.Channel { cid = c.cid; label = c.label })
             ~hint:
               "remove the channel from the AAIS or give it a non-identity \
                effect; an unconstrained synthesized variable makes the \
                solved pulse schedule ill-defined"
             "synthesized variable feeds no Hamiltonian term and appears in \
              no system equation"))
    channels;
  (* QT006: variables no channel expression mentions.  The locality
     decomposition already unions each channel's expression variables, and
     drops variable-only groups, so a variable is used iff it appears in
     some component — [comps] must be the full decomposition. *)
  let n_vars = Array.length variables in
  let used_vars = Array.make (Int.max 1 n_vars) false in
  List.iter
    (fun c ->
      List.iter
        (fun v -> if v >= 0 && v < n_vars then used_vars.(v) <- true)
        c.var_ids)
    comps;
  Array.iter
    (fun (v : Variable.t) ->
      if not (v.id >= 0 && v.id < n_vars && used_vars.(v.id)) then
        add
          (Diagnostic.make ~code:"QT006" ~severity:Diagnostic.Warning
             ~subject:(Diagnostic.Variable { id = v.id; name = v.name })
             ~hint:"drop the variable from the pool or wire it into a channel"
             "amplitude variable is used by no channel expression"))
    variables;
  (* QT007: locally over-constrained components. *)
  List.iter
    (fun c ->
      let free =
        List.fold_left
          (fun n vid ->
            let v = variables.(vid) in
            if v.Variable.bound.lo < v.Variable.bound.hi then n + 1 else n)
          0 c.var_ids
      in
      let n_ch = List.length c.channel_ids in
      if n_ch > free + 1 then
        let all_dynamic =
          List.for_all (fun vid -> Variable.is_dynamic variables.(vid)) c.var_ids
        in
        let severity =
          if all_dynamic then Diagnostic.Warning else Diagnostic.Info
        in
        add
          (Diagnostic.make ~code:"QT007" ~severity
             ~subject:
               (Diagnostic.Component
                  {
                    id = c.id;
                    channels = n_ch;
                    variables = List.length c.var_ids;
                  })
             ~hint:
               "the local solver will fall back to a least-squares fit; \
                expect a nonzero residual unless the extra equations are \
                consistent by construction"
             (Printf.sprintf
                "%d channels constrained by only %d free variables (+1 shared \
                 evolution time)"
                n_ch free)))
    comps;
  List.rev !diags
