module Int_set = Set.Make (Int)

type t = { mutable edges : int; adj : Int_set.t array }

let create n =
  if n < 0 then invalid_arg "Graph.create: negative size";
  { edges = 0; adj = Array.make n Int_set.empty }

let vertex_count t = Array.length t.adj
let edge_count t = t.edges

let check t v =
  if v < 0 || v >= vertex_count t then
    invalid_arg "Graph: vertex out of range"

let has_edge t u v =
  check t u;
  check t v;
  Int_set.mem v t.adj.(u)

let add_edge t u v =
  check t u;
  check t v;
  if u <> v && not (Int_set.mem v t.adj.(u)) then begin
    t.adj.(u) <- Int_set.add v t.adj.(u);
    t.adj.(v) <- Int_set.add u t.adj.(v);
    t.edges <- t.edges + 1
  end

let neighbors t v =
  check t v;
  Int_set.elements t.adj.(v)

let degree t v =
  check t v;
  Int_set.cardinal t.adj.(v)

let components t =
  let n = vertex_count t in
  let uf = Union_find.create n in
  for v = 0 to n - 1 do
    Int_set.iter (fun u -> Union_find.union uf v u) t.adj.(v)
  done;
  Union_find.groups uf

let is_connected t =
  let n = vertex_count t in
  n <= 1 || Array.length (components t) = 1

let bfs_order t ~start =
  check t start;
  let n = vertex_count t in
  let visited = Array.make n false in
  let queue = Queue.create () in
  let order = ref [] in
  visited.(start) <- true;
  Queue.add start queue;
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    order := v :: !order;
    Int_set.iter
      (fun u ->
        if not visited.(u) then begin
          visited.(u) <- true;
          Queue.add u queue
        end)
      t.adj.(v)
  done;
  List.rev !order

let of_edges ~n edges =
  let g = create n in
  List.iter (fun (u, v) -> add_edge g u v) edges;
  g
