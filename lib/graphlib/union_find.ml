type t = { parent : int array; rank : int array }

let create n =
  if n < 0 then invalid_arg "Union_find.create: negative size";
  { parent = Array.init n Fun.id; rank = Array.make n 0 }

let size t = Array.length t.parent

let check t i =
  if i < 0 || i >= size t then invalid_arg "Union_find: element out of range"

let rec find t i =
  check t i;
  let p = t.parent.(i) in
  if p = i then i
  else begin
    let root = find t p in
    t.parent.(i) <- root;
    root
  end

let union t i j =
  let ri = find t i and rj = find t j in
  if ri <> rj then
    if t.rank.(ri) < t.rank.(rj) then t.parent.(ri) <- rj
    else if t.rank.(ri) > t.rank.(rj) then t.parent.(rj) <- ri
    else begin
      t.parent.(rj) <- ri;
      t.rank.(ri) <- t.rank.(ri) + 1
    end

let same t i j = find t i = find t j

let count_sets t =
  let n = size t in
  let count = ref 0 in
  for i = 0 to n - 1 do
    if find t i = i then incr count
  done;
  !count

let groups t =
  let n = size t in
  let by_root = Hashtbl.create 16 in
  let order = ref [] in
  for i = n - 1 downto 0 do
    let r = find t i in
    let existing = try Hashtbl.find by_root r with Not_found -> [] in
    if existing = [] then order := r :: !order;
    Hashtbl.replace by_root r (i :: existing)
  done;
  let roots = List.sort Int.compare !order in
  Array.of_list (List.map (fun r -> Hashtbl.find by_root r) roots)
