(** Simple undirected graphs over integer vertices [0 .. n-1].

    Two compiler uses: the variable-dependency graph whose connected
    components become the localized mixed systems, and the target-coupling
    graph driving the qubit-mapping heuristic. *)

type t

val create : int -> t
(** [create n] is the edgeless graph on [n] vertices. *)

val vertex_count : t -> int

val edge_count : t -> int
(** Undirected edges (each counted once). *)

val add_edge : t -> int -> int -> unit
(** Idempotent; self-loops are ignored.  Raises [Invalid_argument] on
    out-of-range vertices. *)

val has_edge : t -> int -> int -> bool

val neighbors : t -> int -> int list
(** Ascending, no duplicates. *)

val degree : t -> int -> int

val components : t -> int list array
(** Connected components, each sorted ascending, ordered by smallest
    member. *)

val is_connected : t -> bool
(** True for empty and single-vertex graphs. *)

val bfs_order : t -> start:int -> int list
(** Vertices of [start]'s component in breadth-first order (ties broken by
    ascending vertex id). *)

val of_edges : n:int -> (int * int) list -> t
