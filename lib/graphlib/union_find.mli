(** Disjoint-set forest with union by rank and path compression.

    The locality decomposition of QTurbo (paper §4.2) reduces to connected
    components of the bipartite graph between synthesized variables and
    amplitude variables; union–find keeps that near-linear. *)

type t

val create : int -> t
(** [create n] builds [n] singleton sets labelled [0 .. n-1]. *)

val size : t -> int
(** Number of elements (not sets). *)

val find : t -> int -> int
(** Canonical representative; compresses paths.  Raises [Invalid_argument]
    on out-of-range elements. *)

val union : t -> int -> int -> unit
(** Merge the sets of the two elements (no-op if already together). *)

val same : t -> int -> int -> bool

val count_sets : t -> int

val groups : t -> int list array
(** All sets, each as the list of its members in ascending order, indexed
    arbitrarily but deterministically (by ascending representative). *)
