(** Finite-difference Jacobians, for residual functions without an exact
    derivative (the SimuQ baseline's global mixed system). *)

val forward :
  ?rel_step:float -> Objective.residual_fn -> float array -> Qturbo_linalg.Mat.t
(** Forward differences; one extra residual evaluation per variable.
    [rel_step] scales the per-variable step [h = rel_step * max 1 |x_j|]
    (default [1e-7]). *)

val central :
  ?rel_step:float -> Objective.residual_fn -> float array -> Qturbo_linalg.Mat.t
(** Central differences; two extra evaluations per variable, second-order
    accurate.  Default [rel_step = 1e-6]. *)
