(** Multistart driver: run a solver from several random initial points and
    keep the best result.

    This mirrors SimuQ's practice of re-running SciPy's [least_squares]
    from random initial guesses until one lands in the feasible basin; the
    number of starts times the per-start budget is the baseline's dominant
    compile-time cost. *)

type 'a run = {
  report : Objective.report;
  start_index : int;
  extra : 'a;  (** solver-specific payload (e.g. indicator assignment) *)
}

val search :
  rng:Qturbo_util.Rng.t ->
  starts:int ->
  sample:(Qturbo_util.Rng.t -> float array) ->
  solve:(float array -> Objective.report * 'a) ->
  accept:(Objective.report -> bool) ->
  unit ->
  'a run option * int
(** [search ~rng ~starts ~sample ~solve ~accept ()] draws up to [starts]
    initial points, solving from each; stops early at the first accepted
    report.  Returns the best run seen (by cost) — or [None] when every
    start diverged to a non-finite cost — together with the number of
    starts actually consumed. *)

val sample_box :
  Bounds.bound array -> fallback:float -> Qturbo_util.Rng.t -> float array
(** Uniform sample inside a box; infinite sides are replaced by
    [±fallback]. *)
