(** Multistart driver: run a solver from several random initial points and
    keep the best result.

    This mirrors SimuQ's practice of re-running SciPy's [least_squares]
    from random initial guesses until one lands in the feasible basin; the
    number of starts times the per-start budget is the baseline's dominant
    compile-time cost. *)

type 'a run = {
  report : Objective.report;
  start_index : int;
  extra : 'a;  (** solver-specific payload (e.g. indicator assignment) *)
}

val search :
  ?domains:int ->
  rng:Qturbo_util.Rng.t ->
  starts:int ->
  sample:(Qturbo_util.Rng.t -> float array) ->
  solve:(float array -> Objective.report * 'a) ->
  accept:(Objective.report -> bool) ->
  unit ->
  'a run option * int
(** [search ~rng ~starts ~sample ~solve ~accept ()] solves from up to
    [starts] random initial points and returns the winning run together
    with the number of starts consumed.

    Each start samples its initial point from its own [Rng.split]-derived
    stream (split off [rng] in start order before any solving), so the
    set of initial points — and therefore the winner — is the same
    whether the starts run sequentially or on the pool ([domains],
    defaulting to {!Qturbo_par.Pool.default_domains}).

    The winner is the {e accepted} run with the smallest start index when
    [accept] fires (the run itself, even if an earlier start had lower
    cost; [used] is its index + 1), and otherwise the best run by
    [(cost, start_index)] — strictly smaller finite cost wins, ties keep
    the earlier start ([used = starts]).  [None] when every start
    diverged to a non-finite cost.  The sequential path stops solving at
    the first accepted run; the parallel path runs all starts
    speculatively and then picks the identical winner.

    A start whose [solve] raises is contained per-start: it drops out of
    the candidate set (as if it had returned an infinite cost) and the
    remaining starts still determine the same winner.  When every start
    raises or diverges the result is [(None, starts)] — never an escaped
    exception — so callers classify the failure instead of crashing. *)

val sample_box :
  Bounds.bound array -> fallback:float -> Qturbo_util.Rng.t -> float array
(** Uniform sample inside a box; infinite sides are replaced by
    [±fallback]. *)
