open Qturbo_linalg

type options = {
  max_iterations : int;
  ftol : float;
  xtol : float;
  gtol : float;
  lambda_init : float;
  lambda_up : float;
  lambda_down : float;
  max_evaluations : int;
  cost_target : float;
  accept_residual : (float array -> bool) option;
  deadline : float option;
}

let default_options =
  {
    max_iterations = 200;
    ftol = 1e-12;
    xtol = 1e-12;
    gtol = 1e-10;
    lambda_init = 1e-3;
    lambda_up = 8.0;
    lambda_down = 5.0;
    max_evaluations = 100_000;
    cost_target = 0.0;
    accept_residual = None;
    deadline = None;
  }

(* Internal control-flow exceptions.  Both are caught inside [minimize] and
   turned into a stop reason on the report; neither can escape to callers. *)
exception Budget_exhausted
exception Deadline_hit

let minimize ?(options = default_options) ?jacobian f x0 =
  let n = Array.length x0 in
  let evaluations = ref 0 in
  let check_deadline () =
    match options.deadline with
    | Some t when Qturbo_util.Clock.now () >= t -> raise Deadline_hit
    | _ -> ()
  in
  let eval x =
    check_deadline ();
    if !evaluations >= options.max_evaluations then raise Budget_exhausted;
    incr evaluations;
    f x
  in
  let jac x =
    match jacobian with
    | Some j ->
        check_deadline ();
        j x
    | None ->
        (* charge n + 1 evaluations for a forward-difference Jacobian *)
        check_deadline ();
        if !evaluations + n >= options.max_evaluations then
          raise Budget_exhausted;
        evaluations := !evaluations + n;
        Numeric_jacobian.forward f x
  in
  let x = ref (Array.copy x0) in
  (* reusable buffers: candidate point (double-buffered against [x]) and
     the damped normal matrix the LM attempts overwrite *)
  let x_new = ref (Array.make n 0.0) in
  let best_x = Array.copy x0 in
  let damped = Mat.create ~rows:n ~cols:n in
  let r = ref [||] in
  let cost = ref infinity in
  let best_cost = ref infinity in
  let lambda = ref options.lambda_init in
  let iterations = ref 0 in
  let converged = ref false in
  let stop = ref Objective.Stop_max_iterations in
  (try
     r := eval !x;
     cost := Objective.cost_of_residual !r;
     best_cost := !cost;
     let accepted_early r =
       match options.accept_residual with
       | Some f -> f r
       | None -> false
     in
     if not (Float.is_finite !cost) then
       (* NaN/Inf at the initial point: nothing to optimize from.  Report it
          as invalid rather than pretending we converged to a NaN cost. *)
       stop := Objective.Stop_invalid
     else begin
       let continue_loop =
         ref (!cost > options.cost_target && not (accepted_early !r))
       in
       if not !continue_loop then begin
         converged := true;
         stop := Objective.Stop_converged
       end;
       while !continue_loop && !iterations < options.max_iterations do
         incr iterations;
         let j = jac !x in
         let g = Mat.mul_vec_t j !r in
         if Vec.norm_inf g <= options.gtol then begin
           converged := true;
           stop := Objective.Stop_converged;
           continue_loop := false
         end
         else begin
           (* normal equations with Marquardt scaling on the diagonal *)
           let jtj = Mat.at_mul_self j in
           let neg_g = Vec.scale (-1.0) g in
           let accepted = ref false in
           let attempts = ref 0 in
           while (not !accepted) && !attempts < 25 do
             incr attempts;
             Array.blit (Mat.data jtj) 0 (Mat.data damped) 0 (n * n);
             for k = 0 to n - 1 do
               let d = Mat.get jtj k k in
               let scaled = if d > 0.0 then d else 1.0 in
               Mat.set damped k k (d +. (!lambda *. scaled))
             done;
             let step_ok, delta =
               match Lu.solve_factored (Lu.factorize_in_place damped) neg_g with
               | delta -> (Array.for_all Float.is_finite delta, delta)
               | exception Lu.Singular _ -> (false, [||])
             in
             if not step_ok then lambda := !lambda *. options.lambda_up
             else begin
               let xc = !x_new in
               for k = 0 to n - 1 do
                 xc.(k) <- !x.(k) +. delta.(k)
               done;
               let r_new = eval xc in
               let cost_new = Objective.cost_of_residual r_new in
               if Float.is_finite cost_new && cost_new < !cost then begin
                 accepted := true;
                 let cost_drop = !cost -. cost_new in
                 let step_norm = Vec.norm2 delta in
                 x_new := !x;
                 x := xc;
                 r := r_new;
                 cost := cost_new;
                 if cost_new < !best_cost then begin
                   best_cost := cost_new;
                   Array.blit xc 0 best_x 0 n
                 end;
                 lambda := Float.max 1e-12 (!lambda /. options.lambda_down);
                 if
                   cost_new <= options.cost_target
                   || accepted_early r_new
                   || cost_drop <= options.ftol *. Float.max !cost 1e-300
                   || step_norm <= options.xtol *. (Vec.norm2 !x +. options.xtol)
                 then begin
                   converged := true;
                   stop := Objective.Stop_converged;
                   continue_loop := false
                 end
               end
               else lambda := !lambda *. options.lambda_up
             end
           done;
           if not !accepted then begin
             (* no downhill step found at any damping: local minimum *)
             converged := true;
             stop := Objective.Stop_no_progress;
             continue_loop := false
           end
         end
       done
     end
   with
  | Budget_exhausted ->
      converged := false;
      stop := Objective.Stop_max_evaluations
  | Deadline_hit ->
      converged := false;
      stop := Objective.Stop_deadline);
  let residual_norm =
    if !best_cost = infinity then infinity else sqrt (2.0 *. !best_cost)
  in
  {
    Objective.x = best_x;
    cost = !best_cost;
    residual_norm;
    iterations = !iterations;
    evaluations = !evaluations;
    converged = !converged;
    stop = !stop;
  }
