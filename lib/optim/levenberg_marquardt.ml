open Qturbo_linalg

type options = {
  max_iterations : int;
  ftol : float;
  xtol : float;
  gtol : float;
  lambda_init : float;
  lambda_up : float;
  lambda_down : float;
  max_evaluations : int;
  cost_target : float;
  accept_residual : (float array -> bool) option;
  deadline : float option;
}

let default_options =
  {
    max_iterations = 200;
    ftol = 1e-12;
    xtol = 1e-12;
    gtol = 1e-10;
    lambda_init = 1e-3;
    lambda_up = 8.0;
    lambda_down = 5.0;
    max_evaluations = 100_000;
    cost_target = 0.0;
    accept_residual = None;
    deadline = None;
  }

(* Internal control-flow exceptions.  Both are caught inside [minimize] and
   turned into a stop reason on the report; neither can escape to callers. *)
exception Budget_exhausted
exception Deadline_hit

let minimize ?(options = default_options) ?jacobian f x0 =
  let n = Array.length x0 in
  let evaluations = ref 0 in
  let check_deadline () =
    match options.deadline with
    | Some t when Qturbo_util.Clock.now () >= t -> raise Deadline_hit
    | _ -> ()
  in
  let eval x =
    check_deadline ();
    if !evaluations >= options.max_evaluations then raise Budget_exhausted;
    incr evaluations;
    f x
  in
  let jac x =
    match jacobian with
    | Some j ->
        check_deadline ();
        j x
    | None ->
        (* charge n + 1 evaluations for a forward-difference Jacobian *)
        check_deadline ();
        if !evaluations + n >= options.max_evaluations then
          raise Budget_exhausted;
        evaluations := !evaluations + n;
        Numeric_jacobian.forward f x
  in
  let x = ref (Array.copy x0) in
  (* reusable buffers: candidate point (double-buffered against [x]) and
     the damped normal matrix the LM attempts overwrite *)
  let x_new = ref (Array.make n 0.0) in
  let best_x = Array.copy x0 in
  let damped = Mat.create ~rows:n ~cols:n in
  let r = ref [||] in
  let cost = ref infinity in
  let best_cost = ref infinity in
  let lambda = ref options.lambda_init in
  let iterations = ref 0 in
  let converged = ref false in
  let stop = ref Objective.Stop_max_iterations in
  (try
     r := eval !x;
     cost := Objective.cost_of_residual !r;
     best_cost := !cost;
     let accepted_early r =
       match options.accept_residual with
       | Some f -> f r
       | None -> false
     in
     if not (Float.is_finite !cost) then
       (* NaN/Inf at the initial point: nothing to optimize from.  Report it
          as invalid rather than pretending we converged to a NaN cost. *)
       stop := Objective.Stop_invalid
     else begin
       let continue_loop =
         ref (!cost > options.cost_target && not (accepted_early !r))
       in
       if not !continue_loop then begin
         converged := true;
         stop := Objective.Stop_converged
       end;
       while !continue_loop && !iterations < options.max_iterations do
         incr iterations;
         let j = jac !x in
         let g = Mat.mul_vec_t j !r in
         if Vec.norm_inf g <= options.gtol then begin
           converged := true;
           stop := Objective.Stop_converged;
           continue_loop := false
         end
         else begin
           (* normal equations with Marquardt scaling on the diagonal *)
           let jtj = Mat.at_mul_self j in
           let neg_g = Vec.scale (-1.0) g in
           let accepted = ref false in
           let attempts = ref 0 in
           while (not !accepted) && !attempts < 25 do
             incr attempts;
             Array.blit (Mat.data jtj) 0 (Mat.data damped) 0 (n * n);
             for k = 0 to n - 1 do
               let d = Mat.get jtj k k in
               let scaled = if d > 0.0 then d else 1.0 in
               Mat.set damped k k (d +. (!lambda *. scaled))
             done;
             let step_ok, delta =
               match Lu.solve_factored (Lu.factorize_in_place damped) neg_g with
               | delta -> (Array.for_all Float.is_finite delta, delta)
               | exception Lu.Singular _ -> (false, [||])
             in
             if not step_ok then lambda := !lambda *. options.lambda_up
             else begin
               let xc = !x_new in
               for k = 0 to n - 1 do
                 xc.(k) <- !x.(k) +. delta.(k)
               done;
               let r_new = eval xc in
               let cost_new = Objective.cost_of_residual r_new in
               if Float.is_finite cost_new && cost_new < !cost then begin
                 accepted := true;
                 let cost_drop = !cost -. cost_new in
                 let step_norm = Vec.norm2 delta in
                 x_new := !x;
                 x := xc;
                 r := r_new;
                 cost := cost_new;
                 if cost_new < !best_cost then begin
                   best_cost := cost_new;
                   Array.blit xc 0 best_x 0 n
                 end;
                 lambda := Float.max 1e-12 (!lambda /. options.lambda_down);
                 if
                   cost_new <= options.cost_target
                   || accepted_early r_new
                   || cost_drop <= options.ftol *. Float.max !cost 1e-300
                   || step_norm <= options.xtol *. (Vec.norm2 !x +. options.xtol)
                 then begin
                   converged := true;
                   stop := Objective.Stop_converged;
                   continue_loop := false
                 end
               end
               else lambda := !lambda *. options.lambda_up
             end
           done;
           if not !accepted then begin
             (* no downhill step found at any damping: local minimum *)
             converged := true;
             stop := Objective.Stop_no_progress;
             continue_loop := false
           end
         end
       done
     end
   with
  | Budget_exhausted ->
      converged := false;
      stop := Objective.Stop_max_evaluations
  | Deadline_hit ->
      converged := false;
      stop := Objective.Stop_deadline);
  let residual_norm =
    if !best_cost = infinity then infinity else sqrt (2.0 *. !best_cost)
  in
  {
    Objective.x = best_x;
    cost = !best_cost;
    residual_norm;
    iterations = !iterations;
    evaluations = !evaluations;
    converged = !converged;
    stop = !stop;
  }

(* ---- sparse-Jacobian variant ----------------------------------------- *)

(* Conjugate gradient on the damped normal equations
   [(JᵀJ + λ·diag s) δ = b]: the matrix is only ever applied, never
   formed, so an attempt costs O(cg_iters · nnz) instead of the dense
   path's O(n³) factorization.  Deterministic: fixed iteration order,
   sequential dot products, no data-dependent parallelism.  Returns
   [None] when the iteration hits a non-finite or non-positive curvature
   value (the caller treats it like a singular factorization and raises
   the damping). *)
let cg_normal ~j ~lambda ~scale ~b ~jv ~av =
  let n = Array.length b in
  let m = Csr.rows j in
  let row_ptr = Csr.row_ptr j
  and col_idx = Csr.col_idx j
  and values = Csr.values j in
  let apply v out =
    (* jv ← J v *)
    for i = 0 to m - 1 do
      let s = ref 0.0 in
      for k = row_ptr.(i) to row_ptr.(i + 1) - 1 do
        s := !s +. (values.(k) *. v.(col_idx.(k)))
      done;
      jv.(i) <- !s
    done;
    (* out ← Jᵀ jv + λ·s∘v *)
    Array.fill out 0 n 0.0;
    for i = 0 to m - 1 do
      let yi = jv.(i) in
      if yi <> 0.0 then
        for k = row_ptr.(i) to row_ptr.(i + 1) - 1 do
          let c = col_idx.(k) in
          out.(c) <- out.(c) +. (values.(k) *. yi)
        done
    done;
    for k = 0 to n - 1 do
      out.(k) <- out.(k) +. (lambda *. scale.(k) *. v.(k))
    done
  in
  let dot a b =
    let s = ref 0.0 in
    for k = 0 to Array.length a - 1 do
      s := !s +. (a.(k) *. b.(k))
    done;
    !s
  in
  let x = Array.make n 0.0 in
  let r = Array.copy b in
  let p = Array.copy b in
  let rs = ref (dot r r) in
  let b2 = !rs in
  if b2 = 0.0 then Some x
  else begin
    let tol2 = 1e-24 *. b2 in
    let max_iters = Int.max 8 (2 * n) in
    let it = ref 0 in
    let failed = ref false in
    while (not !failed) && !rs > tol2 && !it < max_iters do
      incr it;
      apply p av;
      let pap = dot p av in
      if not (Float.is_finite pap && pap > 0.0) then failed := true
      else begin
        let alpha = !rs /. pap in
        for k = 0 to n - 1 do
          x.(k) <- x.(k) +. (alpha *. p.(k));
          r.(k) <- r.(k) -. (alpha *. av.(k))
        done;
        let rs_new = dot r r in
        if not (Float.is_finite rs_new) then failed := true
        else begin
          let beta = rs_new /. !rs in
          for k = 0 to n - 1 do
            p.(k) <- r.(k) +. (beta *. p.(k))
          done;
          rs := rs_new
        end
      end
    done;
    if !failed || not (Array.for_all Float.is_finite x) then None else Some x
  end

let minimize_sparse ?(options = default_options) ~jacobian f x0 =
  let n = Array.length x0 in
  let evaluations = ref 0 in
  let check_deadline () =
    match options.deadline with
    | Some t when Qturbo_util.Clock.now () >= t -> raise Deadline_hit
    | _ -> ()
  in
  let eval x =
    check_deadline ();
    if !evaluations >= options.max_evaluations then raise Budget_exhausted;
    incr evaluations;
    f x
  in
  let jac x =
    check_deadline ();
    jacobian x
  in
  let x = ref (Array.copy x0) in
  let x_new = ref (Array.make n 0.0) in
  let best_x = Array.copy x0 in
  (* CG scratch, sized on the first Jacobian *)
  let jv = ref [||] in
  let av = Array.make n 0.0 in
  let r = ref [||] in
  let cost = ref infinity in
  let best_cost = ref infinity in
  let lambda = ref options.lambda_init in
  let iterations = ref 0 in
  let converged = ref false in
  let stop = ref Objective.Stop_max_iterations in
  (try
     r := eval !x;
     cost := Objective.cost_of_residual !r;
     best_cost := !cost;
     let accepted_early r =
       match options.accept_residual with
       | Some f -> f r
       | None -> false
     in
     if not (Float.is_finite !cost) then stop := Objective.Stop_invalid
     else begin
       let continue_loop =
         ref (!cost > options.cost_target && not (accepted_early !r))
       in
       if not !continue_loop then begin
         converged := true;
         stop := Objective.Stop_converged
       end;
       while !continue_loop && !iterations < options.max_iterations do
         incr iterations;
         let j = jac !x in
         if Array.length !jv < Csr.rows j then jv := Array.make (Csr.rows j) 0.0;
         let g = Csr.mul_vec_t j !r in
         if Vec.norm_inf g <= options.gtol then begin
           converged := true;
           stop := Objective.Stop_converged;
           continue_loop := false
         end
         else begin
           (* Marquardt scaling from the diagonal of JᵀJ, exactly as the
              dense path: zero columns get unit scale *)
           let diag = Csr.col_sq_sums j in
           let scale =
             Array.map (fun d -> if d > 0.0 then d else 1.0) diag
           in
           let neg_g = Vec.scale (-1.0) g in
           let accepted = ref false in
           let attempts = ref 0 in
           while (not !accepted) && !attempts < 25 do
             incr attempts;
             let step_ok, delta =
               match
                 cg_normal ~j ~lambda:!lambda ~scale ~b:neg_g ~jv:!jv ~av
               with
               | Some delta -> (true, delta)
               | None -> (false, [||])
             in
             if not step_ok then lambda := !lambda *. options.lambda_up
             else begin
               let xc = !x_new in
               for k = 0 to n - 1 do
                 xc.(k) <- !x.(k) +. delta.(k)
               done;
               let r_new = eval xc in
               let cost_new = Objective.cost_of_residual r_new in
               if Float.is_finite cost_new && cost_new < !cost then begin
                 accepted := true;
                 let cost_drop = !cost -. cost_new in
                 let step_norm = Vec.norm2 delta in
                 x_new := !x;
                 x := xc;
                 r := r_new;
                 cost := cost_new;
                 if cost_new < !best_cost then begin
                   best_cost := cost_new;
                   Array.blit xc 0 best_x 0 n
                 end;
                 lambda := Float.max 1e-12 (!lambda /. options.lambda_down);
                 if
                   cost_new <= options.cost_target
                   || accepted_early r_new
                   || cost_drop <= options.ftol *. Float.max !cost 1e-300
                   || step_norm <= options.xtol *. (Vec.norm2 !x +. options.xtol)
                 then begin
                   converged := true;
                   stop := Objective.Stop_converged;
                   continue_loop := false
                 end
               end
               else lambda := !lambda *. options.lambda_up
             end
           done;
           if not !accepted then begin
             converged := true;
             stop := Objective.Stop_no_progress;
             continue_loop := false
           end
         end
       done
     end
   with
  | Budget_exhausted ->
      converged := false;
      stop := Objective.Stop_max_evaluations
  | Deadline_hit ->
      converged := false;
      stop := Objective.Stop_deadline);
  let residual_norm =
    if !best_cost = infinity then infinity else sqrt (2.0 *. !best_cost)
  in
  {
    Objective.x = best_x;
    cost = !best_cost;
    residual_norm;
    iterations = !iterations;
    evaluations = !evaluations;
    converged = !converged;
    stop = !stop;
  }
