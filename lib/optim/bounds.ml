type bound = { lo : float; hi : float }

let unbounded = { lo = neg_infinity; hi = infinity }

let make ~lo ~hi =
  if Float.is_nan lo || Float.is_nan hi then invalid_arg "Bounds.make: NaN bound";
  if lo > hi then invalid_arg "Bounds.make: lo > hi";
  { lo; hi }

let contains { lo; hi } x = x >= lo && x <= hi

let clamp { lo; hi } x = if x < lo then lo else if x > hi then hi else x

type transform = bound array

let transform bounds = bounds

(* MINUIT-style transformations.  Two-sided: x = lo + (hi-lo)(sin u + 1)/2.
   One-sided lower: x = lo - 1 + sqrt(u² + 1).  One-sided upper mirrors. *)

let to_internal_1 b x =
  let x = clamp b x in
  match (Float.is_finite b.lo, Float.is_finite b.hi) with
  | false, false -> x
  | true, true ->
      if b.hi = b.lo then 0.0
      else
        let y = (2.0 *. (x -. b.lo) /. (b.hi -. b.lo)) -. 1.0 in
        asin (Qturbo_util.Float_cmp.clamp ~lo:(-1.0) ~hi:1.0 y)
  | true, false ->
      let y = x -. b.lo +. 1.0 in
      (* invert x = lo - 1 + sqrt(u²+1): u = sqrt(y² - 1) with y >= 1 *)
      sqrt (Float.max 0.0 ((y *. y) -. 1.0))
  | false, true ->
      let y = b.hi -. x +. 1.0 in
      -.sqrt (Float.max 0.0 ((y *. y) -. 1.0))

let of_internal_1 b u =
  match (Float.is_finite b.lo, Float.is_finite b.hi) with
  | false, false -> u
  | true, true -> b.lo +. ((b.hi -. b.lo) *. (sin u +. 1.0) /. 2.0)
  | true, false -> b.lo -. 1.0 +. sqrt ((u *. u) +. 1.0)
  | false, true -> b.hi +. 1.0 -. sqrt ((u *. u) +. 1.0)

let check_dim t x =
  if Array.length t <> Array.length x then
    invalid_arg "Bounds: dimension mismatch"

let to_internal t x =
  check_dim t x;
  Array.mapi (fun i xi -> to_internal_1 t.(i) xi) x

let of_internal t u =
  check_dim t u;
  Array.mapi (fun i ui -> of_internal_1 t.(i) ui) u

let wrap_residual t f u = f (of_internal t u)
let wrap_scalar t f u = f (of_internal t u)
