type residual_fn = float array -> float array
type jacobian_fn = float array -> Qturbo_linalg.Mat.t
type scalar_fn = float array -> float

type report = {
  x : float array;
  cost : float;
  residual_norm : float;
  iterations : int;
  evaluations : int;
  converged : bool;
}

let cost_of_residual r = 0.5 *. Qturbo_linalg.Vec.dot r r
