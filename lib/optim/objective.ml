type residual_fn = float array -> float array
type jacobian_fn = float array -> Qturbo_linalg.Mat.t
type scalar_fn = float array -> float

(* Why a solver handed back the iterate it did.  [converged] alone cannot
   distinguish "hit the tolerance" from "hit the wall-clock deadline with a
   garbage iterate", and the resilience supervisor needs that distinction to
   classify failures. *)
type stop_reason =
  | Stop_converged (* tolerance / cost target / accept predicate met *)
  | Stop_no_progress (* no downhill step at any damping: local minimum *)
  | Stop_max_iterations
  | Stop_max_evaluations
  | Stop_deadline (* wall-clock deadline expired mid-solve *)
  | Stop_invalid (* non-finite cost at the initial point *)

let stop_name = function
  | Stop_converged -> "converged"
  | Stop_no_progress -> "no-progress"
  | Stop_max_iterations -> "max-iterations"
  | Stop_max_evaluations -> "max-evaluations"
  | Stop_deadline -> "deadline"
  | Stop_invalid -> "invalid"

type report = {
  x : float array;
  cost : float;
  residual_norm : float;
  iterations : int;
  evaluations : int;
  converged : bool;
  stop : stop_reason;
}

let cost_of_residual r = 0.5 *. Qturbo_linalg.Vec.dot r r

(* A report for a solve that produced nothing usable: the caller keeps its
   initial iterate and an infinite cost so any finite competitor wins. *)
let failed_report ~x ~stop =
  {
    x = Array.copy x;
    cost = infinity;
    residual_norm = infinity;
    iterations = 0;
    evaluations = 0;
    converged = false;
    stop;
  }
