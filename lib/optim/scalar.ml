type root_result = { root : float; converged : bool; iterations : int }

type min_result = {
  argmin : float;
  minimum : float;
  converged : bool;
  iterations : int;
}

let bisect ?(tol = 1e-12) ?(max_iterations = 200) ~f ~lo ~hi () =
  let flo = f lo and fhi = f hi in
  if flo = 0.0 then { root = lo; converged = true; iterations = 0 }
  else if fhi = 0.0 then { root = hi; converged = true; iterations = 0 }
  else if flo *. fhi > 0.0 then
    invalid_arg "Scalar.bisect: no sign change on bracket"
  else begin
    let lo = ref lo and hi = ref hi and flo = ref flo in
    let i = ref 0 in
    let within_tol () =
      !hi -. !lo <= tol *. Float.max 1.0 (Float.abs !hi)
    in
    while (not (within_tol ())) && !i < max_iterations do
      incr i;
      let mid = 0.5 *. (!lo +. !hi) in
      let fmid = f mid in
      if fmid = 0.0 then begin
        lo := mid;
        hi := mid
      end
      else if !flo *. fmid < 0.0 then hi := mid
      else begin
        lo := mid;
        flo := fmid
      end
    done;
    { root = 0.5 *. (!lo +. !hi); converged = within_tol (); iterations = !i }
  end

let bisect_predicate ?(tol = 1e-9) ?(max_iterations = 200) ~f ~lo ~hi () =
  if f lo then { root = lo; converged = true; iterations = 0 }
  else if not (f hi) then
    invalid_arg "Scalar.bisect_predicate: predicate false at hi"
  else begin
    let lo = ref lo and hi = ref hi in
    let i = ref 0 in
    let within_tol () =
      !hi -. !lo <= tol *. Float.max 1.0 (Float.abs !hi)
    in
    while (not (within_tol ())) && !i < max_iterations do
      incr i;
      let mid = 0.5 *. (!lo +. !hi) in
      if f mid then hi := mid else lo := mid
    done;
    { root = !hi; converged = within_tol (); iterations = !i }
  end

let inv_phi = (sqrt 5.0 -. 1.0) /. 2.0

let golden_min ?(tol = 1e-10) ?(max_iterations = 500) ~f ~lo ~hi () =
  let a = ref lo and b = ref hi in
  let c = ref (!b -. (inv_phi *. (!b -. !a))) in
  let d = ref (!a +. (inv_phi *. (!b -. !a))) in
  let fc = ref (f !c) and fd = ref (f !d) in
  let i = ref 0 in
  let within_tol () = !b -. !a <= tol *. Float.max 1.0 (Float.abs !b) in
  while (not (within_tol ())) && !i < max_iterations do
    incr i;
    if !fc < !fd then begin
      b := !d;
      d := !c;
      fd := !fc;
      c := !b -. (inv_phi *. (!b -. !a));
      fc := f !c
    end
    else begin
      a := !c;
      c := !d;
      fc := !fd;
      d := !a +. (inv_phi *. (!b -. !a));
      fd := f !d
    end
  done;
  let x = 0.5 *. (!a +. !b) in
  { argmin = x; minimum = f x; converged = within_tol (); iterations = !i }
