(** Nelder–Mead downhill simplex minimisation of a scalar objective.

    Derivative-free; used for the "Case 3" localized systems (no
    time-critical variable, minimise [T_sim] directly, paper §5.1) and as a
    robustness cross-check against Levenberg–Marquardt in tests. *)

type options = {
  max_iterations : int;
  ftol : float;  (** spread of simplex values at convergence *)
  xtol : float;  (** spread of simplex vertices at convergence *)
  initial_step : float;  (** simplex edge length relative to [x0] scale *)
  deadline : float option;
      (** absolute wall-clock deadline, checked between iterations (where
          the simplex is consistent); expiry returns the best vertex with
          [stop = Stop_deadline] *)
}

val default_options : options

val minimize :
  ?options:options -> Objective.scalar_fn -> float array -> Objective.report
(** [minimize f x0] returns the best vertex.  [report.residual_norm] is
    [sqrt (2 · max cost 0)] for interface uniformity. *)
