(** Box constraints for the unconstrained solvers.

    The amplitude variables of an AAIS are bounded (maximum Rabi amplitude,
    detuning range, atom-position window).  Rather than constrain LM/NM
    directly, bounded variables are mapped through a smooth bijection onto
    the whole real line (the MINUIT parameter transformation), the solver
    runs unconstrained in the internal space, and solutions map back inside
    the box by construction. *)

type bound = { lo : float; hi : float }
(** Either side may be infinite ([neg_infinity] / [infinity]). *)

val unbounded : bound

val make : lo:float -> hi:float -> bound
(** Raises [Invalid_argument] when [lo > hi] or either bound is NaN. *)

val contains : bound -> float -> bool

val clamp : bound -> float -> float

type transform
(** A per-variable stack of transformations. *)

val transform : bound array -> transform

val to_internal : transform -> float array -> float array
(** External (bounded) point → internal (unconstrained) point.  External
    values outside their box are clamped first. *)

val of_internal : transform -> float array -> float array
(** Internal point → external point, always inside the box. *)

val wrap_residual :
  transform -> Objective.residual_fn -> Objective.residual_fn
(** Conjugate a residual function by {!of_internal} so an unconstrained
    solver optimises in internal coordinates. *)

val wrap_scalar : transform -> Objective.scalar_fn -> Objective.scalar_fn
