(** Levenberg–Marquardt nonlinear least squares.

    Minimises [0.5 ‖F(x)‖₂²] for a residual [F : R^n → R^m].  This is the
    workhorse behind (a) the runtime-fixed-variable solver (atom positions
    against van-der-Waals targets), (b) the generic localized-mixed-system
    fallback, and (c) the SimuQ baseline's global mixed solve. *)

type options = {
  max_iterations : int;  (** outer LM iterations (default 200) *)
  ftol : float;  (** relative cost-decrease convergence threshold *)
  xtol : float;  (** relative step-size convergence threshold *)
  gtol : float;  (** gradient-infinity-norm convergence threshold *)
  lambda_init : float;  (** initial damping *)
  lambda_up : float;  (** damping multiplier on rejection *)
  lambda_down : float;  (** damping divisor on acceptance *)
  max_evaluations : int;
      (** hard budget on residual evaluations, Jacobian columns included —
          the knob the SimuQ baseline uses to model compilation failure *)
  cost_target : float;
      (** stop as soon as the cost falls to or below this (0. disables);
          models a solver that accepts any point within tolerance rather
          than polishing to the optimum *)
  accept_residual : (float array -> bool) option;
      (** like [cost_target] but with a caller-supplied criterion on the
          raw residual vector (e.g. an L1 tolerance); checked at the start
          and after every accepted step *)
  deadline : float option;
      (** absolute wall-clock deadline ([Clock.now]-based).  Checked before
          every residual/Jacobian evaluation; on expiry the solve stops and
          reports the best point seen with [stop = Stop_deadline] *)
}

val default_options : options

val minimize :
  ?options:options ->
  ?jacobian:Objective.jacobian_fn ->
  Objective.residual_fn ->
  float array ->
  Objective.report
(** [minimize f x0] runs LM from [x0].  When [jacobian] is omitted a
    forward-difference Jacobian is used (its evaluations are charged to the
    budget).  The report's [converged] is true when any of the three
    tolerances triggered; exhausting the iteration or evaluation budget
    leaves it false while still returning the best point seen, with
    [report.stop] naming the cause ([Stop_max_evaluations],
    [Stop_deadline], [Stop_invalid] for a non-finite initial cost, …).
    No exception ever escapes [minimize] itself: the internal budget and
    deadline signals are caught here and surfaced only through the
    report. *)

val minimize_sparse :
  ?options:options ->
  jacobian:(float array -> Qturbo_linalg.Csr.t) ->
  Objective.residual_fn ->
  float array ->
  Objective.report
(** {!minimize} for a sparse Jacobian.  Identical outer control flow
    (damping schedule, accept/reject, every stopping rule), but each
    damped step solves the normal equations
    [(JᵀJ + λ·diag s) δ = −Jᵀr] by conjugate gradients applying [J]
    twice per iteration — O(cg·nnz) per attempt instead of the dense
    path's O(n³) factorization, which is what keeps large runtime-fixed
    solves (thousands of free variables) near-linear.  The Marquardt
    scale [s] is the diagonal of [JᵀJ] with zero columns mapped to 1,
    matching the dense path.  Fully deterministic: sequential dot
    products in fixed order, no data-dependent parallelism.  A
    non-finite or non-positive-curvature CG breakdown is treated like a
    singular factorization (damping raised, attempt retried).  The
    [jacobian] is required — there is no finite-difference fallback on
    this path. *)
