open Qturbo_linalg

let step rel_step xj = rel_step *. Float.max 1.0 (Float.abs xj)

let forward ?(rel_step = 1e-7) f x =
  let f0 = f x in
  let m = Array.length f0 and n = Array.length x in
  let jac = Mat.create ~rows:m ~cols:n in
  let xt = Array.copy x in
  for j = 0 to n - 1 do
    let h = step rel_step x.(j) in
    xt.(j) <- x.(j) +. h;
    let fj = f xt in
    xt.(j) <- x.(j);
    for i = 0 to m - 1 do
      Mat.set jac i j ((fj.(i) -. f0.(i)) /. h)
    done
  done;
  jac

let central ?(rel_step = 1e-6) f x =
  let n = Array.length x in
  let xt = Array.copy x in
  let jac = ref None in
  for j = 0 to n - 1 do
    let h = step rel_step x.(j) in
    xt.(j) <- x.(j) +. h;
    let fp = f xt in
    xt.(j) <- x.(j) -. h;
    let fm = f xt in
    xt.(j) <- x.(j);
    let m = Array.length fp in
    let mat =
      match !jac with
      | Some mat -> mat
      | None ->
          let mat = Mat.create ~rows:m ~cols:n in
          jac := Some mat;
          mat
    in
    for i = 0 to m - 1 do
      Mat.set mat i j ((fp.(i) -. fm.(i)) /. (2.0 *. h))
    done
  done;
  match !jac with
  | Some mat -> mat
  | None -> Mat.create ~rows:(Array.length (f x)) ~cols:0
