open Qturbo_util

type 'a run = { report : Objective.report; start_index : int; extra : 'a }

(* the best run under the deterministic (cost, start_index) order:
   strictly smaller finite cost wins, ties keep the earlier start *)
let better_than best (report : Objective.report) =
  match best with
  | None -> Float.is_finite report.Objective.cost
  | Some { report = b; _ } -> report.Objective.cost < b.Objective.cost

let search ?domains ~rng ~starts ~sample ~solve ~accept () =
  let domains =
    match domains with Some d -> d | None -> Qturbo_par.Pool.default_domains ()
  in
  if starts <= 0 then (None, 0)
  else begin
    (* per-start streams are split off the caller's rng up front, in
       start order — every start sees the same initial point whether the
       search runs sequentially or on the pool *)
    let x0s = Array.make starts [||] in
    for i = 0 to starts - 1 do
      x0s.(i) <- sample (Rng.split rng)
    done;
    (* a start whose solver raises is contained: it simply stops being a
       candidate, so the winner stays deterministic by (cost, start_index)
       over the surviving starts, and all-starts-raising yields (None, _)
       for the caller to classify rather than an escaped exception *)
    let safe_solve x0 = match solve x0 with
      | run -> Some run
      | exception _ -> None
    in
    if domains <= 1 || Qturbo_par.Pool.in_worker () then begin
      (* sequential: stop at the first accepted run *)
      let best = ref None in
      let accepted = ref None in
      let i = ref 0 in
      while !accepted = None && !i < starts do
        (match safe_solve x0s.(!i) with
        | Some (report, extra) ->
            if accept report then
              accepted := Some { report; start_index = !i; extra }
            else if better_than !best report then
              best := Some { report; start_index = !i; extra }
        | None -> ());
        incr i
      done;
      match !accepted with
      | Some run -> (Some run, run.start_index + 1)
      | None -> (!best, !i)
    end
    else begin
      (* speculative: all starts run, then the same winner is picked —
         the accepted run at the smallest start index, else the best by
         (cost, start_index) *)
      let runs =
        Qturbo_par.Pool.parallel_map ~domains ~chunk:1 safe_solve x0s
      in
      let accepted = ref None in
      for i = starts - 1 downto 0 do
        match runs.(i) with
        | Some (report, extra) ->
            if accept report then
              accepted := Some { report; start_index = i; extra }
        | None -> ()
      done;
      match !accepted with
      | Some run -> (Some run, run.start_index + 1)
      | None ->
          let best = ref None in
          Array.iteri
            (fun i run ->
              match run with
              | Some (report, extra) ->
                  if better_than !best report then
                    best := Some { report; start_index = i; extra }
              | None -> ())
            runs;
          (!best, starts)
    end
  end

let sample_box bounds ~fallback rng =
  Array.map
    (fun { Bounds.lo; hi } ->
      let lo = if Float.is_finite lo then lo else -.fallback in
      let hi = if Float.is_finite hi then hi else fallback in
      Qturbo_util.Rng.uniform rng ~lo ~hi)
    bounds
