type 'a run = { report : Objective.report; start_index : int; extra : 'a }

let search ~rng ~starts ~sample ~solve ~accept () =
  let best = ref None in
  let used = ref 0 in
  (try
     for i = 0 to starts - 1 do
       incr used;
       let x0 = sample rng in
       let report, extra = solve x0 in
       let better =
         match !best with
         | None -> Float.is_finite report.Objective.cost
         | Some { report = b; _ } -> report.Objective.cost < b.Objective.cost
       in
       if better then best := Some { report; start_index = i; extra };
       if accept report then raise Exit
     done
   with Exit -> ());
  (!best, !used)

let sample_box bounds ~fallback rng =
  Array.map
    (fun { Bounds.lo; hi } ->
      let lo = if Float.is_finite lo then lo else -.fallback in
      let hi = if Float.is_finite hi then hi else fallback in
      Qturbo_util.Rng.uniform rng ~lo ~hi)
    bounds
