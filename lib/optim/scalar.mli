(** One-dimensional root finding and minimisation.

    Used by the evolution-time optimiser: the generic localized system
    asks "what is the smallest [T] for which the component is feasible?",
    answered by bisecting the feasibility indicator over [T]. *)

val bisect :
  ?tol:float ->
  ?max_iterations:int ->
  f:(float -> float) ->
  lo:float ->
  hi:float ->
  unit ->
  float
(** Root of [f] on [\[lo, hi\]]; requires a sign change ([Invalid_argument]
    otherwise).  Returns the midpoint of the final bracket. *)

val bisect_predicate :
  ?tol:float ->
  ?max_iterations:int ->
  f:(float -> bool) ->
  lo:float ->
  hi:float ->
  unit ->
  float
(** Smallest [x] in [\[lo, hi\]] with [f x = true], assuming [f] is
    monotone (false then true).  Requires [f hi = true]; if [f lo] already
    holds, returns [lo]. *)

val golden_min :
  ?tol:float ->
  ?max_iterations:int ->
  f:(float -> float) ->
  lo:float ->
  hi:float ->
  unit ->
  float * float
(** Golden-section minimisation of a unimodal [f]; returns [(x, f x)]. *)
