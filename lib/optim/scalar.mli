(** One-dimensional root finding and minimisation.

    Used by the evolution-time optimiser: the generic localized system
    asks "what is the smallest [T] for which the component is feasible?",
    answered by bisecting the feasibility indicator over [T].

    Every routine reports whether it actually reached its tolerance:
    hitting [max_iterations] leaves [converged = false] so callers can no
    longer mistake the last iterate for an answer. *)

type root_result = {
  root : float;
  converged : bool;  (** final bracket width within [tol] *)
  iterations : int;
}

type min_result = {
  argmin : float;
  minimum : float;  (** [f argmin] *)
  converged : bool;  (** final bracket width within [tol] *)
  iterations : int;
}

val bisect :
  ?tol:float ->
  ?max_iterations:int ->
  f:(float -> float) ->
  lo:float ->
  hi:float ->
  unit ->
  root_result
(** Root of [f] on [\[lo, hi\]]; requires a sign change ([Invalid_argument]
    otherwise).  [root] is the midpoint of the final bracket. *)

val bisect_predicate :
  ?tol:float ->
  ?max_iterations:int ->
  f:(float -> bool) ->
  lo:float ->
  hi:float ->
  unit ->
  root_result
(** Smallest [x] in [\[lo, hi\]] with [f x = true], assuming [f] is
    monotone (false then true).  Requires [f hi = true]; if [f lo] already
    holds, returns [lo] with [converged = true].  [root] is the smallest
    bracket endpoint known to satisfy [f]. *)

val golden_min :
  ?tol:float ->
  ?max_iterations:int ->
  f:(float -> float) ->
  lo:float ->
  hi:float ->
  unit ->
  min_result
(** Golden-section minimisation of a unimodal [f]. *)
