(** Shared types for the nonlinear solvers. *)

type residual_fn = float array -> float array
(** A vector residual [F : R^n -> R^m]; solvers minimise [‖F(x)‖₂²]. *)

type jacobian_fn = float array -> Qturbo_linalg.Mat.t
(** Jacobian [J(x)] with [J_{ij} = ∂F_i/∂x_j]. *)

type scalar_fn = float array -> float

(** Why a solver handed back the iterate it did.  [converged] alone cannot
    distinguish "hit the tolerance" from "hit the wall-clock deadline with
    a garbage iterate"; the resilience supervisor classifies failures from
    this. *)
type stop_reason =
  | Stop_converged  (** tolerance / cost target / accept predicate met *)
  | Stop_no_progress  (** no downhill step at any damping: local minimum *)
  | Stop_max_iterations
  | Stop_max_evaluations
  | Stop_deadline  (** wall-clock deadline expired mid-solve *)
  | Stop_invalid  (** non-finite cost at the initial point *)

val stop_name : stop_reason -> string
(** Stable kebab-case name for reports and logs. *)

type report = {
  x : float array;  (** best point found *)
  cost : float;  (** [0.5 · ‖F(x)‖₂²] (or the scalar value for NM) *)
  residual_norm : float;  (** [‖F(x)‖₂] *)
  iterations : int;
  evaluations : int;  (** residual/scalar function evaluations *)
  converged : bool;
  stop : stop_reason;
}

val cost_of_residual : float array -> float
(** [0.5 · ‖r‖₂²]. *)

val failed_report : x:float array -> stop:stop_reason -> report
(** A report for a solve that produced nothing usable: the caller's point
    with infinite cost, so any finite competitor wins. *)
