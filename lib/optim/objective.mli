(** Shared types for the nonlinear solvers. *)

type residual_fn = float array -> float array
(** A vector residual [F : R^n -> R^m]; solvers minimise [‖F(x)‖₂²]. *)

type jacobian_fn = float array -> Qturbo_linalg.Mat.t
(** Jacobian [J(x)] with [J_{ij} = ∂F_i/∂x_j]. *)

type scalar_fn = float array -> float

type report = {
  x : float array;  (** best point found *)
  cost : float;  (** [0.5 · ‖F(x)‖₂²] (or the scalar value for NM) *)
  residual_norm : float;  (** [‖F(x)‖₂] *)
  iterations : int;
  evaluations : int;  (** residual/scalar function evaluations *)
  converged : bool;
}

val cost_of_residual : float array -> float
(** [0.5 · ‖r‖₂²]. *)
