type options = {
  max_iterations : int;
  ftol : float;
  xtol : float;
  initial_step : float;
  deadline : float option;
}

let default_options =
  {
    max_iterations = 2000;
    ftol = 1e-10;
    xtol = 1e-8;
    initial_step = 0.1;
    deadline = None;
  }

(* standard coefficients: reflection, expansion, contraction, shrink *)
let rho = 1.0
let chi = 2.0
let gamma = 0.5
let sigma = 0.5

let rec minimize ?(options = default_options) f x0 =
  let n = Array.length x0 in
  if n = 0 then
    {
      Objective.x = [||];
      cost = f [||];
      residual_norm = 0.0;
      iterations = 0;
      evaluations = 1;
      converged = true;
      stop = Objective.Stop_converged;
    }
  else minimize_nonempty ~options f x0

and minimize_nonempty ~options f x0 =
  let n = Array.length x0 in
  let evaluations = ref 0 in
  let eval x =
    incr evaluations;
    let v = f x in
    if Float.is_nan v then infinity else v
  in
  (* simplex of n+1 vertices *)
  let vertices =
    Array.init (n + 1) (fun i ->
        let v = Array.copy x0 in
        if i > 0 then begin
          let j = i - 1 in
          let h = options.initial_step *. Float.max 1.0 (Float.abs x0.(j)) in
          v.(j) <- v.(j) +. h
        end;
        v)
  in
  let values = Array.map eval vertices in
  (* all per-iteration scratch is hoisted: the sort permutation and its
     staging copies, the centroid, and two candidate-point buffers that
     are swapped with the displaced worst vertex on acceptance *)
  let idx = Array.init (n + 1) Fun.id in
  let tmp_v = Array.make (n + 1) x0 in
  let tmp_f = Array.make (n + 1) 0.0 in
  let order () =
    for i = 0 to n do
      idx.(i) <- i
    done;
    Array.sort (fun a b -> Float.compare values.(a) values.(b)) idx;
    for i = 0 to n do
      tmp_v.(i) <- vertices.(idx.(i));
      tmp_f.(i) <- values.(idx.(i))
    done;
    Array.blit tmp_v 0 vertices 0 (n + 1);
    Array.blit tmp_f 0 values 0 (n + 1)
  in
  let c = Array.make n 0.0 in
  let centroid () =
    (* of all vertices but the worst *)
    Array.fill c 0 n 0.0;
    for i = 0 to n - 1 do
      (* vertex index i over 0..n-1 *)
      for j = 0 to n - 1 do
        c.(j) <- c.(j) +. (vertices.(i).(j) /. float_of_int n)
      done
    done
  in
  let combine_into dst a b coeff =
    for j = 0 to n - 1 do
      dst.(j) <- a.(j) +. (coeff *. (b.(j) -. a.(j)))
    done
  in
  let scratch_r = ref (Array.make n 0.0) in
  let scratch_e = ref (Array.make n 0.0) in
  (* install a candidate as the new worst vertex, recycling the
     displaced vertex array as the next scratch buffer *)
  let install cand fc =
    let old = vertices.(n) in
    vertices.(n) <- !cand;
    values.(n) <- fc;
    cand := old
  in
  let iterations = ref 0 in
  let converged = ref false in
  let deadline_hit = ref false in
  let expired () =
    match options.deadline with
    | Some t -> Qturbo_util.Clock.now () >= t
    | None -> false
  in
  order ();
  (* the deadline is checked only between iterations, where the simplex is
     in a consistent (ordered, fully evaluated) state *)
  while (not !converged) && (not !deadline_hit) && !iterations < options.max_iterations do
    if expired () then deadline_hit := true
    else begin
    incr iterations;
    centroid ();
    let worst = vertices.(n) in
    let xr = !scratch_r in
    combine_into xr c worst (-.rho);
    let fr = eval xr in
    if fr < values.(0) then begin
      (* try expanding further along the reflection direction *)
      let xe = !scratch_e in
      combine_into xe c worst (-.(rho *. chi));
      let fe = eval xe in
      if fe < fr then install scratch_e fe else install scratch_r fr
    end
    else if fr < values.(n - 1) then install scratch_r fr
    else begin
      (* contraction: outside if the reflected point improved on the worst *)
      let xc = !scratch_e in
      let fc =
        if fr < values.(n) then begin
          combine_into xc c worst (-.(rho *. gamma));
          eval xc
        end
        else begin
          combine_into xc c worst gamma;
          eval xc
        end
      in
      if fc < Float.min fr values.(n) then install scratch_e fc
      else
        (* shrink toward the best vertex (elementwise, so in place) *)
        for i = 1 to n do
          let vi = vertices.(i) and v0 = vertices.(0) in
          for j = 0 to n - 1 do
            vi.(j) <- v0.(j) +. (sigma *. (vi.(j) -. v0.(j)))
          done;
          values.(i) <- eval vi
        done
    end;
    order ();
    let f_spread = Float.abs (values.(n) -. values.(0)) in
    let x_spread = ref 0.0 in
    for i = 1 to n do
      for j = 0 to n - 1 do
        x_spread :=
          Float.max !x_spread (Float.abs (vertices.(i).(j) -. vertices.(0).(j)))
      done
    done;
    (* both criteria must hold (as in SciPy's fatol/xatol): a symmetric
       simplex straddling the minimum has zero value spread but a wide
       vertex spread, and must keep contracting *)
    if
      f_spread <= options.ftol *. (Float.abs values.(0) +. options.ftol)
      && !x_spread <= options.xtol
    then converged := true
    end
  done;
  let best_cost = values.(0) in
  let stop =
    if !converged then Objective.Stop_converged
    else if !deadline_hit then Objective.Stop_deadline
    else Objective.Stop_max_iterations
  in
  {
    Objective.x = Array.copy vertices.(0);
    cost = best_cost;
    residual_norm = sqrt (2.0 *. Float.max best_cost 0.0);
    iterations = !iterations;
    evaluations = !evaluations;
    converged = !converged;
    stop;
  }
