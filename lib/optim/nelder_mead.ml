type options = {
  max_iterations : int;
  ftol : float;
  xtol : float;
  initial_step : float;
}

let default_options =
  { max_iterations = 2000; ftol = 1e-10; xtol = 1e-8; initial_step = 0.1 }

(* standard coefficients: reflection, expansion, contraction, shrink *)
let rho = 1.0
let chi = 2.0
let gamma = 0.5
let sigma = 0.5

let rec minimize ?(options = default_options) f x0 =
  let n = Array.length x0 in
  if n = 0 then
    {
      Objective.x = [||];
      cost = f [||];
      residual_norm = 0.0;
      iterations = 0;
      evaluations = 1;
      converged = true;
    }
  else minimize_nonempty ~options f x0

and minimize_nonempty ~options f x0 =
  let n = Array.length x0 in
  let evaluations = ref 0 in
  let eval x =
    incr evaluations;
    let v = f x in
    if Float.is_nan v then infinity else v
  in
  (* simplex of n+1 vertices *)
  let vertices =
    Array.init (n + 1) (fun i ->
        let v = Array.copy x0 in
        if i > 0 then begin
          let j = i - 1 in
          let h = options.initial_step *. Float.max 1.0 (Float.abs x0.(j)) in
          v.(j) <- v.(j) +. h
        end;
        v)
  in
  let values = Array.map eval vertices in
  let order () =
    let idx = Array.init (n + 1) Fun.id in
    Array.sort (fun a b -> Float.compare values.(a) values.(b)) idx;
    let vs = Array.map (fun i -> vertices.(i)) idx in
    let fs = Array.map (fun i -> values.(i)) idx in
    Array.blit vs 0 vertices 0 (n + 1);
    Array.blit fs 0 values 0 (n + 1)
  in
  let centroid () =
    (* of all vertices but the worst *)
    let c = Array.make n 0.0 in
    for i = 0 to n - 1 do
      (* vertex index i over 0..n-1 *)
      for j = 0 to n - 1 do
        c.(j) <- c.(j) +. (vertices.(i).(j) /. float_of_int n)
      done
    done;
    c
  in
  let combine a b coeff =
    Array.init n (fun j -> a.(j) +. (coeff *. (b.(j) -. a.(j))))
  in
  let iterations = ref 0 in
  let converged = ref false in
  order ();
  while (not !converged) && !iterations < options.max_iterations do
    incr iterations;
    let c = centroid () in
    let worst = vertices.(n) in
    let xr = combine c worst (-.rho) in
    let fr = eval xr in
    if fr < values.(0) then begin
      (* try expanding further along the reflection direction *)
      let xe = combine c worst (-.(rho *. chi)) in
      let fe = eval xe in
      if fe < fr then begin
        vertices.(n) <- xe;
        values.(n) <- fe
      end
      else begin
        vertices.(n) <- xr;
        values.(n) <- fr
      end
    end
    else if fr < values.(n - 1) then begin
      vertices.(n) <- xr;
      values.(n) <- fr
    end
    else begin
      (* contraction: outside if the reflected point improved on the worst *)
      let xc, fc =
        if fr < values.(n) then
          let xc = combine c worst (-.(rho *. gamma)) in
          (xc, eval xc)
        else
          let xc = combine c worst gamma in
          (xc, eval xc)
      in
      if fc < Float.min fr values.(n) then begin
        vertices.(n) <- xc;
        values.(n) <- fc
      end
      else
        (* shrink toward the best vertex *)
        for i = 1 to n do
          vertices.(i) <- combine vertices.(0) vertices.(i) sigma;
          values.(i) <- eval vertices.(i)
        done
    end;
    order ();
    let f_spread = Float.abs (values.(n) -. values.(0)) in
    let x_spread = ref 0.0 in
    for i = 1 to n do
      for j = 0 to n - 1 do
        x_spread :=
          Float.max !x_spread (Float.abs (vertices.(i).(j) -. vertices.(0).(j)))
      done
    done;
    (* both criteria must hold (as in SciPy's fatol/xatol): a symmetric
       simplex straddling the minimum has zero value spread but a wide
       vertex spread, and must keep contracting *)
    if
      f_spread <= options.ftol *. (Float.abs values.(0) +. options.ftol)
      && !x_spread <= options.xtol
    then converged := true
  done;
  let best_cost = values.(0) in
  {
    Objective.x = Array.copy vertices.(0);
    cost = best_cost;
    residual_norm = sqrt (2.0 *. Float.max best_cost 0.0);
    iterations = !iterations;
    evaluations = !evaluations;
    converged = !converged;
  }
