(** Target-qubit → simulator-qubit mapping (paper §7.3).

    The benchmark models have regular coupling structure (chains, cycles),
    so — as the paper does — a lightweight heuristic suffices: order the
    target qubits by a breadth-first walk of their two-qubit coupling
    graph and lay them out along the device in that order.  Both QTurbo
    and the baseline use the same mapping, so the comparison isolates the
    equation-system work. *)

type t = int array
(** [map.(target_qubit) = simulator_qubit]; always a permutation. *)

val identity : n:int -> t

val of_array : int array -> t
(** Validates that the argument is a permutation of [0 .. n-1]
    ([Invalid_argument] otherwise). *)

val inverse : t -> t

val is_permutation : int array -> bool

val greedy_chain : target:Qturbo_pauli.Pauli_sum.t -> n:int -> t
(** BFS over the coupling graph (edges = two-site Pauli terms) starting
    from a minimum-degree qubit; disconnected qubits are appended in index
    order.  For chain/cycle models this recovers the natural order even
    when the input labels are shuffled. *)

val apply : t -> Qturbo_pauli.Pauli_sum.t -> Qturbo_pauli.Pauli_sum.t
(** Relabel every site [q] of the Hamiltonian as [map.(q)]. *)

val chain_cost : target:Qturbo_pauli.Pauli_sum.t -> t -> float
(** Placement cost on a 1-D chain: [Σ |c| · (|π(i) − π(j)| − 1)] over
    two-site terms — zero iff every coupling lands on adjacent sites.
    The objective both heuristics minimise. *)

val anneal :
  rng:Qturbo_util.Rng.t ->
  target:Qturbo_pauli.Pauli_sum.t ->
  n:int ->
  ?iterations:int ->
  ?init:t ->
  unit ->
  t
(** Simulated-annealing refinement of a chain placement by random
    transpositions (default 200·n iterations, geometric cooling), started
    from [init] (default {!greedy_chain}'s output).  Never returns a
    placement worse than the start; useful when the coupling graph is not
    a path/cycle and BFS ordering leaves long-range couplings behind. *)
