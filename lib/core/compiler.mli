(** The QTurbo compilation pipeline (paper §4–§6) for time-independent
    targets.

    Stages: build the global linear system over synthesized variables and
    solve it (greedy structural pass, dense fallback); decompose channels
    and variables into locality components; take [T_sim] as the maximum of
    the components' shortest feasible evolution times (the bottleneck
    instruction runs at full amplitude); solve each localized mixed system
    at [T_sim] — closed forms for linear/polar components, damped
    least squares for the runtime-fixed (position) components; iterate
    [T_sim] upward if the layout violates device geometry; finally apply
    the §6.2 refinement, re-solving the runtime-dynamic channels against
    the residual left by the achieved runtime-fixed amplitudes.

    The stages are implemented by {!Compile_plan}, split into a
    structural front-end (reusable, coefficient-free plans, cached by
    structural key) and a numeric back-end; this module re-exports the
    historical surface with type equations, so existing call sites are
    unaffected, and {!compile} delegates to the staged pipeline. *)

type options = Compile_plan.options = {
  refine : bool;  (** §6.2 iterative refinement (default true) *)
  time_opt : bool;
      (** §5.1 evolution-time optimisation; when false, [T_sim] is padded
          by [no_opt_padding] — the ablation baseline *)
  no_opt_padding : float;  (** default 3.0 *)
  dt_factor : float;
      (** multiplicative [Δt] step of the §5.2 constraint iteration
          (default 1.25) *)
  max_constraint_iters : int;  (** default 24 *)
  time_floor : float;  (** smallest allowed [T_sim] (default 1e-4) *)
  dense_linear_solver : bool;
      (** force the dense least-squares path (linear-solver ablation) *)
  generic_local_solver : bool;
      (** ignore the analytic linear/polar patterns and solve every
          dynamic component through the generic bisection + LM path
          (local-solver ablation) *)
  domains : int;
      (** pool width for the parallel stages (component solves, residual
          rows, α evaluation).  Defaults to
          {!Qturbo_par.Pool.default_domains} — i.e. [QTURBO_DOMAINS] when
          set, else cores − 1.  [1] runs fully sequentially; results are
          bitwise-identical either way. *)
  supervise : bool;
      (** run every component solve under the
          {!Qturbo_resilience.Supervisor} escalation ladder (default
          true).  On a clean compile the supervised path issues exactly
          the same solver calls as the unsupervised one, so results are
          bitwise-identical; it only changes behaviour on hard solver
          failure, injected faults, or an expired deadline. *)
  best_effort : bool;
      (** when a component fails every ladder stage, carry the failure on
          [result.failures] (with [degraded = true]) instead of raising
          {!Qturbo_resilience.Failure.Failed} (default false) *)
  deadline_seconds : float option;
      (** wall-clock budget for the whole compile, measured from the
          moment {!compile} builds its supervisor.  Stages started after
          expiry short-circuit with [Deadline_expired]; already-running
          pool sweeps are cancelled and re-run in short-circuit mode so
          the degraded result is identical at any [domains]. *)
  faults : Qturbo_resilience.Fault.spec option;
      (** deterministic fault injection for the supervised sites; [None]
          (the default) reads [QTURBO_FAULTS] from the environment *)
  plan_cache : bool;
      (** reuse structurally-identical {!Compile_plan} artifacts from
          the process-wide LRU cache (default true); a cache hit skips
          the whole structural front-end and is bitwise-identical to a
          cold build by construction *)
}

val default_options : options

type component_summary = Compile_plan.component_summary = {
  classification : string;  (** ["linear"|"polar"|"fixed"|"const"|"generic"] *)
  channels : int;
  variables : int;
  min_time : float;
  eps2 : float;
}

type plan_stats = Compile_plan.plan_stats = {
  cache_enabled : bool;
  cache_hit : bool;  (** this compile's plan came from the memory cache *)
  store_enabled : bool;  (** the persistent plan store was active *)
  store_hit : bool;  (** this compile's plan came off the on-disk store *)
  cache_hits : int;  (** process-wide counter, sampled at completion *)
  cache_misses : int;
  cache_discarded : int;
      (** process-wide: fresh builds dropped because the key was
          already resident (concurrent double-builds) *)
  key_hits : int;  (** counters for {e this} compile's plan key *)
  key_misses : int;
  key_evictions : int;
  build_seconds : float;  (** structural front-end cost (0 on a hit) *)
  solve_seconds : float;  (** numeric back-end cost *)
}

type provenance = Compile_plan.provenance = Built | Cached | Stored
    (** Where a compile's plan came from (see {!Compile_plan.obtain}). *)

type result = Compile_plan.result = {
  env : float array;  (** value of every AAIS variable *)
  t_sim : float;  (** compiled evolution time (µs) *)
  alpha_target : float array;  (** linear-system solution per channel *)
  alpha_achieved : float array;  (** [expr(env)·T_sim] per channel *)
  error_l1 : float;  (** [‖B_sim − B_tar‖₁] (paper Eq. 9) *)
  relative_error : float;  (** [error_l1 / ‖B_tar‖₁ × 100] (%) *)
  eps1 : float;  (** linear-system residual (Theorem 1's ε₁) *)
  eps2_total : float;  (** Σ of localized-system residuals (Σε₂ⁱ) *)
  theorem1_bound : float;  (** [‖M‖₁·Σε₂ + ε₁] — must dominate [error_l1] *)
  components : component_summary list;
  constraint_iterations : int;
  compile_seconds : float;  (** wall-clock time of the compilation *)
  warnings : string list;
      (** pipeline warnings; includes rendered warning-severity
          diagnostics from the precheck *)
  diagnostics : Qturbo_analysis.Diagnostic.t list;
      (** everything the pre-solve static analyzer found *)
  failures : Qturbo_resilience.Failure.t list;
      (** classified solver failures and recoveries collected by the
          resilience supervisor, in pipeline order *)
  degraded : bool;
      (** true iff some failure is fatal — a component kept a
          non-converged solution (best-effort compiles only; strict
          compiles raise instead) *)
  plan : plan_stats;  (** plan provenance and cache counters *)
}

val stage_hook : (string -> unit) ref
(** Called with a stage name as the pipeline enters it ("plan-build",
    "plan-cache-hit", "precheck", "linear-solve", "local-solve").
    Defaults to a no-op; tests install a recorder to assert, without
    timing, that rejected inputs never reach a solver stage and that
    cached compiles skip the plan build.  The same ref as
    {!Compile_plan.stage_hook}. *)

val analyze :
  ?t_max:float ->
  aais:Qturbo_aais.Aais.t ->
  target:Qturbo_pauli.Pauli_sum.t ->
  t_tar:float ->
  unit ->
  Qturbo_analysis.Diagnostic.t list
(** Run every static-analysis pass (coverage, bounds feasibility,
    system structure, variable sanity) without compiling.  [t_max]
    enables the [QT003] magnitude check.  This is what [qturbo check]
    calls. *)

val diagnostics_of :
  ?t_max:float ->
  aais:Qturbo_aais.Aais.t ->
  target:Qturbo_pauli.Pauli_sum.t ->
  t_tar:float ->
  ls:Linear_system.t ->
  comps:Locality.component list ->
  unit ->
  Qturbo_analysis.Diagnostic.t list
(** The passes of {!analyze} against a pre-built linear system and
    locality decomposition.  This is exactly the marginal work the
    precheck adds inside {!compile} (which builds [ls] and [comps]
    anyway); the [analysis] bench experiment measures it. *)

val compile :
  ?options:options ->
  ?strict:bool ->
  ?t_max:float ->
  aais:Qturbo_aais.Aais.t ->
  target:Qturbo_pauli.Pauli_sum.t ->
  t_tar:float ->
  unit ->
  result
(** Raises [Invalid_argument] when [t_tar <= 0] or the target touches
    qubits outside the AAIS; a non-finite [t_tar] raises
    {!Qturbo_analysis.Diagnostic.Rejected} with a [QT016] diagnostic.

    Runs {!analyze} as a fail-fast precheck before any solver: with
    [strict] (the default), error-severity diagnostics raise
    {!Qturbo_analysis.Diagnostic.Rejected}; with [~strict:false] the
    pipeline proceeds anyway (the historical least-squares behaviour)
    and the findings are carried on [result.diagnostics].
    Warning-severity findings are additionally rendered into
    [result.warnings].

    With [options.supervise] (the default), component solves run under
    the resilience escalation ladder; if a component exhausts every
    stage the compile raises {!Qturbo_resilience.Failure.Failed} unless
    [options.best_effort] is set, in which case the degraded result is
    returned with the classified records on [result.failures]. *)

val compile_batch :
  ?options:options ->
  ?strict:bool ->
  ?t_max:float ->
  ?batch_domains:int ->
  aais:Qturbo_aais.Aais.t ->
  (Qturbo_pauli.Pauli_sum.t * float) list ->
  result list
(** Compile a list of [(target, t_tar)] jobs against one AAIS, building
    the structural front-end once per distinct target shape.  With
    [options.plan_cache] (the default) plans go through the process-wide
    cache; with it disabled a batch-local memo still shares plans inside
    the batch.  Each job's result is exactly what {!compile} would have
    produced for it.

    Runs in two phases: plans are validated and acquired sequentially
    in job order (deterministic cache accounting), then the numeric
    back-ends run on the work pool with [batch_domains] workers
    (default [1] — fully sequential).  Results are collected by index,
    so the output list is bitwise-identical at any [batch_domains],
    including under injected faults; a rejection or failure raises the
    smallest-index job's exception, exactly like the sequential loop. *)

val b_tar_norm1 :
  aais:Qturbo_aais.Aais.t ->
  target:Qturbo_pauli.Pauli_sum.t ->
  t_tar:float ->
  float
(** [‖B_tar‖₁] over the compiler's row set (identity excluded); the
    denominator of the relative-error metric. *)
