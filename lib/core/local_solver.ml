open Qturbo_aais
open Qturbo_optim

type classification =
  | Const_channels
  | Linear of { var : int; slopes : (int * float) list }
  | Polar of {
      amp : int;
      phase : int;
      cos_channels : (int * float) list;
      sin_channels : (int * float) list;
    }
  | Fixed_vars
  | Generic

type solution = { assignments : (int * float) list; eps2 : float }

let classify ~vars ~channels (comp : Locality.component) =
  let has_fixed =
    List.exists (fun v -> Variable.is_fixed vars.(v)) comp.Locality.var_ids
  in
  if has_fixed then Fixed_vars
  else
    match comp.Locality.var_ids with
    | [] -> Const_channels
    | [ v ] ->
        let slopes =
          List.filter_map
            (fun cid ->
              match channels.(cid).Instruction.hint with
              | Instruction.Hint_linear { var; slope } when var = v ->
                  Some (cid, slope)
              | Instruction.Hint_linear _ | Instruction.Hint_polar_cos _
              | Instruction.Hint_polar_sin _ | Instruction.Hint_fixed
              | Instruction.Hint_generic ->
                  None)
            comp.Locality.channel_ids
        in
        if List.length slopes = List.length comp.Locality.channel_ids then
          Linear { var = v; slopes }
        else Generic
    | [ v1; v2 ] -> (
        let cos_channels = ref [] and sin_channels = ref [] in
        let consistent = ref true in
        let amp = ref (-1) and phase = ref (-1) in
        let note_pair a p =
          if !amp = -1 then begin
            amp := a;
            phase := p
          end
          else if !amp <> a || !phase <> p then consistent := false
        in
        List.iter
          (fun cid ->
            match channels.(cid).Instruction.hint with
            | Instruction.Hint_polar_cos { amp = a; phase = p; scale } ->
                note_pair a p;
                cos_channels := (cid, scale) :: !cos_channels
            | Instruction.Hint_polar_sin { amp = a; phase = p; scale } ->
                note_pair a p;
                sin_channels := (cid, scale) :: !sin_channels
            | Instruction.Hint_linear _ | Instruction.Hint_fixed
            | Instruction.Hint_generic ->
                consistent := false)
          comp.Locality.channel_ids;
        let pair_ok =
          !consistent && !amp >= 0
          && List.sort Int.compare [ !amp; !phase ]
             = List.sort Int.compare [ v1; v2 ]
        in
        if pair_ok then
          Polar
            {
              amp = !amp;
              phase = !phase;
              cos_channels = List.rev !cos_channels;
              sin_channels = List.rev !sin_channels;
            }
        else Generic)
    | _ :: _ :: _ :: _ -> Generic

(* Least-squares fit of a single scaled unknown: y* minimising
   Σ (k_c·y − α_c)². *)
let fit_scaled targets =
  let num = List.fold_left (fun acc (k, a) -> acc +. (k *. a)) 0.0 targets in
  let den = List.fold_left (fun acc (k, _) -> acc +. (k *. k)) 0.0 targets in
  if den = 0.0 then 0.0 else num /. den

let time_for_bound ~(bound : Bounds.bound) needed =
  (* smallest T > 0 such that needed / T lies inside [bound] *)
  if needed = 0.0 then 0.0
  else if needed > 0.0 then
    if bound.Bounds.hi > 0.0 then needed /. bound.Bounds.hi else infinity
  else if bound.Bounds.lo < 0.0 then needed /. bound.Bounds.lo
  else infinity

let linear_fit_targets ~alpha slopes =
  List.map (fun (cid, slope) -> (slope, alpha.(cid))) slopes

let polar_fit ~alpha ~cos_channels ~sin_channels =
  let a_star = fit_scaled (linear_fit_targets ~alpha cos_channels) in
  let b_star = fit_scaled (linear_fit_targets ~alpha sin_channels) in
  (* a_star = ΩT·cos φ, b_star = ΩT·sin φ *)
  let omega_t = sqrt ((a_star *. a_star) +. (b_star *. b_star)) in
  let phi = if omega_t = 0.0 then 0.0 else atan2 b_star a_star in
  (omega_t, phi)

(* ---- prepared components ---------------------------------------- *)

(* Everything derivable from (vars, channels, comp, classification)
   alone — i.e. independent of α and T_sim — is derived once here and
   reused across every probe of the T-bisection, every constraint
   iteration and every refinement pass.  A [prepared] value is
   immutable, so it may be shared freely across pool domains (the
   per-call env scratch is allocated per solve). *)

type generic_ctx = {
  g_var_ids : int array;
  g_env_size : int;
  g_transform : Bounds.transform;
  g_x0 : float array; (* internal coordinates *)
}

type prep_case =
  | P_const of (int * float) list (* (cid, expr value) — closed exprs *)
  | P_closed_form (* Linear / Polar: the classification carries it all *)
  | P_generic of generic_ctx
  | P_fixed (* runtime-fixed: use Fixed_solver *)

type prepared = {
  p_comp : Locality.component;
  p_cls : classification;
  p_cids : int array;
  p_vars : Variable.t array;
  p_channels : Instruction.channel array;
  p_case : prep_case;
}

let classification_of p = p.p_cls

let prepare ~vars ~channels comp classification =
  let case =
    match classification with
    | Fixed_vars -> P_fixed
    | Const_channels ->
        P_const
          (List.map
             (fun cid ->
               (cid, Instruction.eval_channel channels.(cid) ~env:[||]))
             comp.Locality.channel_ids)
    | Linear _ | Polar _ -> P_closed_form
    | Generic ->
        let var_ids = Array.of_list comp.Locality.var_ids in
        let bounds = Array.map (fun v -> vars.(v).Variable.bound) var_ids in
        let transform = Bounds.transform bounds in
        let x0_ext = Array.map (fun v -> vars.(v).Variable.init) var_ids in
        P_generic
          {
            g_var_ids = var_ids;
            g_env_size =
              Array.fold_left (fun acc v -> Int.max acc (v + 1)) 1 var_ids;
            g_transform = transform;
            g_x0 = Bounds.to_internal transform x0_ext;
          }
  in
  {
    p_comp = comp;
    p_cls = classification;
    p_cids = Array.of_list comp.Locality.channel_ids;
    p_vars = vars;
    p_channels = channels;
    p_case = case;
  }

(* ---- generic path: bounded LM feasibility + bisection over T ---- *)

let component_residual ~channels ~alpha ~t_sim comp env =
  List.map
    (fun cid ->
      (Instruction.eval_channel channels.(cid) ~env *. t_sim) -. alpha.(cid))
    comp.Locality.channel_ids
  |> Array.of_list

let generic_residual ~alpha ~t_sim p g =
  let channels = p.p_channels in
  let cids = p.p_cids in
  let n_ch = Array.length cids in
  let var_ids = g.g_var_ids in
  let scratch = Array.make g.g_env_size 0.0 in
  fun x ->
    Array.iteri (fun k v -> scratch.(v) <- x.(k)) var_ids;
    Array.init n_ch (fun i ->
        let cid = cids.(i) in
        (Instruction.eval_channel channels.(cid) ~env:scratch *. t_sim)
        -. alpha.(cid))

let generic_solution_of_report ~alpha ~t_sim p g (report : Objective.report) =
  let var_ids = g.g_var_ids in
  let nv = Array.length var_ids in
  let x_ext = Bounds.of_internal g.g_transform report.Objective.x in
  let assignments = List.init nv (fun k -> (var_ids.(k), x_ext.(k))) in
  let residual = generic_residual ~alpha ~t_sim p g in
  let final = residual x_ext in
  let eps2 = Array.fold_left (fun acc r -> acc +. Float.abs r) 0.0 final in
  { assignments; eps2 }

let generic_solve_supervised ~sup ~alpha ~t_sim p g =
  let residual = generic_residual ~alpha ~t_sim p g in
  let outcome =
    Qturbo_resilience.Supervisor.solve sup ~site:"local-solve"
      ~component:p.p_comp.Locality.id
      (Bounds.wrap_residual g.g_transform residual)
      g.g_x0
  in
  ( generic_solution_of_report ~alpha ~t_sim p g
      outcome.Qturbo_resilience.Supervisor.report,
    outcome.Qturbo_resilience.Supervisor.failures )

let generic_solve_prepared ~alpha ~t_sim p g =
  let residual = generic_residual ~alpha ~t_sim p g in
  let report =
    Levenberg_marquardt.minimize
      (Bounds.wrap_residual g.g_transform residual)
      g.g_x0
  in
  generic_solution_of_report ~alpha ~t_sim p g report

let component_alpha_scale ~alpha comp =
  List.fold_left
    (fun acc cid -> Float.max acc (Float.abs alpha.(cid)))
    0.0 comp.Locality.channel_ids

let generic_min_time_impl ~alpha p g =
  if component_alpha_scale ~alpha p.p_comp = 0.0 then (0.0, [])
  else begin
    let feasible t =
      let scale = Float.max 1.0 (component_alpha_scale ~alpha p.p_comp) in
      let { eps2; _ } = generic_solve_prepared ~alpha ~t_sim:t p g in
      eps2 <= 1e-7 *. scale
    in
    (* find a feasible upper bracket by doubling *)
    let rec grow t tries =
      if tries = 0 then None
      else if feasible t then Some t
      else grow (2.0 *. t) (tries - 1)
    in
    match grow 1e-3 50 with
    | None ->
        ( infinity,
          [
            Qturbo_resilience.Failure.make ~component:p.p_comp.Locality.id
              ~site:"min-time" ~stage:"" ~fatal:false
              ~class_:Qturbo_resilience.Failure.Non_convergence
              "no feasible evolution time found by bracket doubling";
          ] )
    | Some hi ->
        let r =
          Scalar.bisect_predicate ~tol:1e-6 ~f:feasible ~lo:(hi /. 2.0) ~hi ()
        in
        let failures =
          if r.Scalar.converged then []
          else
            [
              Qturbo_resilience.Failure.make ~component:p.p_comp.Locality.id
                ~site:"min-time" ~stage:"" ~fatal:false
                ~class_:Qturbo_resilience.Failure.Non_convergence
                (Printf.sprintf
                   "T bisection stopped after %d iterations above tolerance"
                   r.Scalar.iterations);
            ]
        in
        (r.Scalar.root, failures)
  end

let generic_min_time_prepared ~alpha p g = fst (generic_min_time_impl ~alpha p g)

let min_time_prepared ~alpha p =
  match (p.p_cls, p.p_case) with
  | Fixed_vars, _ -> 0.0
  | Const_channels, P_const ks ->
      (* expr·T = α: every channel pins T; take the largest demand (smaller
         demands become approximation error, reported by solve_at) *)
      List.fold_left
        (fun acc (cid, k) ->
          let a = alpha.(cid) in
          if a = 0.0 || k = 0.0 then acc else Float.max acc (a /. k))
        0.0 ks
  | Linear { var; slopes }, _ ->
      let needed = fit_scaled (linear_fit_targets ~alpha slopes) in
      time_for_bound ~bound:p.p_vars.(var).Variable.bound needed
  | Polar { amp; phase = _; cos_channels; sin_channels }, _ ->
      let omega_t, _ = polar_fit ~alpha ~cos_channels ~sin_channels in
      if omega_t = 0.0 then 0.0
      else
        let hi = p.p_vars.(amp).Variable.bound.Bounds.hi in
        if hi > 0.0 then omega_t /. hi else infinity
  | Generic, P_generic g -> generic_min_time_prepared ~alpha p g
  | (Const_channels | Generic), _ -> assert false

let eval_eps2 ~channels ~alpha ~t_sim comp assignments =
  let env_size =
    List.fold_left (fun acc (v, _) -> Int.max acc (v + 1)) 1 assignments
  in
  let env = Array.make env_size 0.0 in
  List.iter (fun (v, x) -> env.(v) <- x) assignments;
  let r = component_residual ~channels ~alpha ~t_sim comp env in
  Array.fold_left (fun acc x -> acc +. Float.abs x) 0.0 r

let solve_prepared ~alpha ~t_sim p =
  if t_sim <= 0.0 then
    invalid_arg
      (Printf.sprintf "Local_solver.solve_at: t_sim <= 0 (component %d)"
         p.p_comp.Locality.id);
  let vars = p.p_vars and channels = p.p_channels and comp = p.p_comp in
  match (p.p_cls, p.p_case) with
  | Fixed_vars, _ ->
      invalid_arg
        (Printf.sprintf
           "Local_solver.solve_at: component %d is runtime-fixed (use \
            Fixed_solver)"
           p.p_comp.Locality.id)
  | Const_channels, P_const ks ->
      let eps2 =
        List.fold_left
          (fun acc (cid, k) -> acc +. Float.abs ((k *. t_sim) -. alpha.(cid)))
          0.0 ks
      in
      { assignments = []; eps2 }
  | Linear { var; slopes }, _ ->
      let needed = fit_scaled (linear_fit_targets ~alpha slopes) in
      let value = Bounds.clamp vars.(var).Variable.bound (needed /. t_sim) in
      let assignments = [ (var, value) ] in
      { assignments; eps2 = eval_eps2 ~channels ~alpha ~t_sim comp assignments }
  | Polar { amp; phase; cos_channels; sin_channels }, _ ->
      let omega_t, phi = polar_fit ~alpha ~cos_channels ~sin_channels in
      let omega = Bounds.clamp vars.(amp).Variable.bound (omega_t /. t_sim) in
      let phi = Bounds.clamp vars.(phase).Variable.bound phi in
      let assignments = [ (amp, omega); (phase, phi) ] in
      { assignments; eps2 = eval_eps2 ~channels ~alpha ~t_sim comp assignments }
  | Generic, P_generic g -> generic_solve_prepared ~alpha ~t_sim p g
  | (Const_channels | Generic), _ -> assert false

(* ---- supervised entry points -------------------------------------- *)

(* Closed-form cases (const/linear/polar) are direct arithmetic that
   cannot diverge, so only the generic LM path runs under the ladder.
   With [Supervisor.none] the supervised path is bitwise-identical to
   [solve_prepared]. *)

let solve_supervised ~sup ~alpha ~t_sim p =
  match (p.p_cls, p.p_case) with
  | Generic, P_generic g -> generic_solve_supervised ~sup ~alpha ~t_sim p g
  | _ -> (solve_prepared ~alpha ~t_sim p, [])

let min_time_supervised ~sup ~alpha p =
  match (p.p_cls, p.p_case) with
  | Generic, P_generic g ->
      if
        Qturbo_resilience.Supervisor.site_expired sup ~site:"min-time"
          ~component:p.p_comp.Locality.id
      then
        ( infinity,
          [
            Qturbo_resilience.Failure.make ~component:p.p_comp.Locality.id
              ~site:"min-time" ~stage:"" ~fatal:false
              ~class_:Qturbo_resilience.Failure.Deadline_expired
              "expired before evolution-time search";
          ] )
      else generic_min_time_impl ~alpha p g
  | _ -> (min_time_prepared ~alpha p, [])

(* ---- unprepared entry points (tests, one-off probes) -------------- *)

let min_time ~vars ~channels ~alpha comp classification =
  min_time_prepared ~alpha (prepare ~vars ~channels comp classification)

let solve_at ~vars ~channels ~alpha ~t_sim comp classification =
  solve_prepared ~alpha ~t_sim (prepare ~vars ~channels comp classification)
