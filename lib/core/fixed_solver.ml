open Qturbo_aais
open Qturbo_optim
open Qturbo_linalg

type result = { assignments : (int * float) list; eps2 : float }

let is_pinned (b : Bounds.bound) = b.Bounds.lo = b.Bounds.hi

(* Everything independent of (α, T_sim), derived once per component:
   the free/pinned split, the sparse symbolic Jacobian (structure and
   compiled derivative kernels) and the channel kernels.  The dominant
   saving is the Jacobian scan: probing every (row, variable) pair costs
   O(rows · cols) symbolic derivatives, while scanning each row's own
   variable set costs O(rows · vars-per-row) — a van-der-Waals channel
   touches 4 coordinates, not all of them. *)
type prepared = {
  comp : Locality.component;
  vars : Variable.t array;
  channels : Instruction.channel array;
  free_ids : int array;
  cids : int array;
  env_size : int;
  x_init : float array;
  bounds : Bounds.bound array;
  pinned : (int * float) list;
  nonzero_derivs : (int * int * Expr.kernel) array; (* (row, free col, d/dv) *)
  res_batch : Expr.Batch.t;
      (* the component's channel kernels packed for SoA evaluation —
         one flat program per residual sweep instead of per-row
         dispatch *)
  jac_row_slots : (int * float) list array;
      (* per row, the free columns with structurally nonzero derivative,
         in [nonzero_derivs] order — the CSR template of the sparse
         Jacobian.  [Csr.of_row_lists] on this packs slot [t] of the
         value array at exactly triple [t]. *)
}

let prepare ~vars ~channels (comp : Locality.component) =
  let all_ids = Array.of_list comp.Locality.var_ids in
  (* gauge-pinned coordinates (lo = hi) are held fixed; optimising them
     would let LM translate the layout and the clamp would then break it *)
  let free_ids =
    Array.of_list
      (List.filter
         (fun v -> not (is_pinned vars.(v).Variable.bound))
         comp.Locality.var_ids)
  in
  let cids = Array.of_list comp.Locality.channel_ids in
  let env_size = Array.fold_left (fun acc v -> Int.max acc (v + 1)) 1 all_ids in
  let k_of_var = Array.make env_size (-1) in
  Array.iteri (fun k v -> k_of_var.(v) <- k) free_ids;
  (* only the structurally nonzero entries, found by scanning each
     channel's own variable set rather than the full free-variable list *)
  let nonzero_derivs =
    let triples = ref [] in
    Array.iteri
      (fun i cid ->
        let expr = channels.(cid).Instruction.expr in
        List.iter
          (fun v ->
            match if v < env_size then k_of_var.(v) else -1 with
            | -1 -> ()
            | k -> (
                match Expr.deriv expr v with
                | Expr.Const 0.0 -> ()
                | d -> triples := (i, k, Expr.compile d) :: !triples))
          (Expr.vars expr))
      cids;
    Array.of_list (List.rev !triples)
  in
  let jac_row_slots =
    let rows = Array.make (Array.length cids) [] in
    Array.iter (fun (i, k, _) -> rows.(i) <- (k, 0.0) :: rows.(i))
      nonzero_derivs;
    Array.map List.rev rows
  in
  {
    comp;
    vars;
    channels;
    free_ids;
    cids;
    env_size;
    x_init = Array.map (fun v -> vars.(v).Variable.init) free_ids;
    bounds = Array.map (fun v -> vars.(v).Variable.bound) free_ids;
    pinned =
      List.filter_map
        (fun v ->
          if is_pinned vars.(v).Variable.bound then
            Some (v, vars.(v).Variable.bound.Bounds.lo)
          else None)
        comp.Locality.var_ids;
    nonzero_derivs;
    res_batch =
      Expr.Batch.pack
        (Array.map (fun cid -> channels.(cid).Instruction.kernel) cids);
    jac_row_slots;
  }

(* Below this many rows/entries the pool dispatch costs more than it
   saves: submitting a job and waking sleeping workers runs ~0.5 ms,
   while a compiled-kernel row evaluates in ~10 ns — a residual pass
   over 4k van-der-Waals rows is ~50 µs of work.  Fine-grained inner
   parallelism only pays on components far larger than any Fig. 3
   benchmark; smaller solves stay sequential on every domain count. *)
let par_threshold = 32_768

(* Free-variable count at which the LM position solve switches from the
   dense normal-equation factorization (O(nv³) per damping attempt) to
   the conjugate-gradient sparse path.  Every Fig. 3-scale device
   (n ≤ 100 atoms, nv ≤ ~200) stays on the historical dense path — and
   therefore stays bitwise-identical — while n ≳ 130 planar layouts get
   the near-linear solve. *)
let sparse_threshold = 256

let solve_impl ?(domains = 1) ?sup ~alpha ~t_sim p =
  if t_sim <= 0.0 then
    invalid_arg
      (Printf.sprintf "Fixed_solver.solve: t_sim <= 0 (component %d)"
         p.comp.Locality.id);
  let channels = p.channels and cids = p.cids and free_ids = p.free_ids in
  let n_rows = Array.length cids in
  let nv = Array.length free_ids in
  let scratch = Array.make p.env_size 0.0 in
  List.iter (fun (v, x) -> scratch.(v) <- x) p.pinned;
  let row_domains = if n_rows < par_threshold then 1 else domains in
  (* sequential residual sweeps run on the packed SoA batch: one flat
     program over a reusable float64 buffer, bitwise-identical to the
     per-row kernel dispatch it replaces *)
  let out = Expr.Batch.create_buffer n_rows in
  let load x = Array.iteri (fun k v -> scratch.(v) <- x.(k)) free_ids in
  let residual_ext x =
    load x;
    if row_domains = 1 then begin
      Expr.Batch.eval p.res_batch ~env:scratch ~out;
      Array.init n_rows (fun i ->
          (Bigarray.Array1.unsafe_get out i *. t_sim)
          -. alpha.(Array.unsafe_get cids i))
    end
    else begin
      let r = Array.make n_rows 0.0 in
      Qturbo_par.Pool.parallel_for ~domains:row_domains ~total:n_rows (fun i ->
          let cid = Array.unsafe_get cids i in
          r.(i) <-
            (Instruction.eval_channel channels.(cid) ~env:scratch *. t_sim)
            -. alpha.(cid));
      r
    end
  in
  let cost x =
    if row_domains = 1 then begin
      (* allocation-free: square the rows straight out of the batch
         buffer, accumulating in row order like the array fold did *)
      load x;
      Expr.Batch.eval p.res_batch ~env:scratch ~out;
      let acc = ref 0.0 in
      for i = 0 to n_rows - 1 do
        let ri =
          (Bigarray.Array1.unsafe_get out i *. t_sim)
          -. alpha.(Array.unsafe_get cids i)
        in
        acc := !acc +. (ri *. ri)
      done;
      !acc
    end
    else begin
      let r = residual_ext x in
      Array.fold_left (fun acc ri -> acc +. (ri *. ri)) 0.0 r
    end
  in
  (* magnitude pre-fit: van-der-Waals amplitudes are homogeneous in the
     coordinates, so a single uniform rescale of the initial layout finds
     the right magnitude basin before LM refines the shape *)
  let scaled s = Array.map (fun x -> s *. x) p.x_init in
  let prefit =
    Scalar.golden_min ~f:(fun ls -> cost (scaled (exp ls))) ~lo:(-3.0) ~hi:3.0 ()
  in
  let prefit_failures =
    if prefit.Scalar.converged then []
    else
      [
        Qturbo_resilience.Failure.make ~component:p.comp.Locality.id
          ~site:"fixed-solve" ~stage:"prefit" ~fatal:false
          ~class_:Qturbo_resilience.Failure.Non_convergence
          (Printf.sprintf
             "magnitude pre-fit stopped after %d iterations above tolerance"
             prefit.Scalar.iterations);
      ]
  in
  let x0_ext = scaled (exp prefit.Scalar.argmin) in
  let nnz = Array.length p.nonzero_derivs in
  let jac_domains = if nnz < par_threshold then 1 else domains in
  let use_sparse = nv >= sparse_threshold in
  (* exact symbolic Jacobian; LM runs in external coordinates (position
     boxes are wide, so iterates stay interior) and the result is clamped,
     any clamping error landing in eps2.  Below [sparse_threshold] the
     dense matrix is reused across LM iterations: zero it, then fill the
     structurally nonzero cells.  Above it no dense matrix is ever
     allocated — the CSR structure comes from the prepared template and
     only its value array is refilled (slot [t] is triple [t]). *)
  let jacobian_dense =
    lazy
      (let jac = Mat.create ~rows:n_rows ~cols:nv in
       let jac_data = Mat.data jac in
       fun x ->
         load x;
         Array.fill jac_data 0 (Array.length jac_data) 0.0;
         Qturbo_par.Pool.parallel_for ~domains:jac_domains ~total:nnz (fun t ->
             let i, k, d = Array.unsafe_get p.nonzero_derivs t in
             jac_data.((i * nv) + k) <- Expr.eval_kernel d ~env:scratch *. t_sim);
         jac)
  in
  let jacobian_sparse =
    lazy
      (let csr = Csr.of_row_lists ~cols:nv p.jac_row_slots in
       let values = Csr.values csr in
       fun x ->
         load x;
         Qturbo_par.Pool.parallel_for ~domains:jac_domains ~total:nnz (fun t ->
             let _, _, d = Array.unsafe_get p.nonzero_derivs t in
             values.(t) <- Expr.eval_kernel d ~env:scratch *. t_sim);
         csr)
  in
  let report, solve_failures =
    match (sup, use_sparse) with
    | None, false ->
        ( Levenberg_marquardt.minimize ~jacobian:(Lazy.force jacobian_dense)
            residual_ext x0_ext,
          [] )
    | None, true ->
        ( Levenberg_marquardt.minimize_sparse
            ~jacobian:(Lazy.force jacobian_sparse) residual_ext x0_ext,
          [] )
    | Some sup, false ->
        let outcome =
          Qturbo_resilience.Supervisor.solve sup ~site:"fixed-solve"
            ~component:p.comp.Locality.id ~jacobian:(Lazy.force jacobian_dense)
            ~bounds:p.bounds residual_ext x0_ext
        in
        ( outcome.Qturbo_resilience.Supervisor.report,
          outcome.Qturbo_resilience.Supervisor.failures )
    | Some sup, true ->
        (* Large components bypass the escalation ladder: Nelder–Mead is
           skipped above ~40 dimensions anyway and a multistart over
           thousands of coordinates would dwarf the compile.  The
           supervisor still contributes its wall-clock deadline; a hard
           failure is surfaced as a non-fatal record (the clamped pre-fit
           layout is returned, its error landing in eps2).  Injected
           faults do not reach this path — fault-injection drills run at
           Fig. 3 scale, below [sparse_threshold]. *)
        let options =
          {
            Levenberg_marquardt.default_options with
            deadline = Qturbo_resilience.Supervisor.deadline sup;
          }
        in
        let report =
          Levenberg_marquardt.minimize_sparse ~options
            ~jacobian:(Lazy.force jacobian_sparse) residual_ext x0_ext
        in
        let failures =
          if Float.is_finite report.Objective.cost then []
          else
            let class_ =
              match report.Objective.stop with
              | Objective.Stop_deadline ->
                  Qturbo_resilience.Failure.Deadline_expired
              | Objective.Stop_max_evaluations ->
                  Qturbo_resilience.Failure.Budget_exhausted
              | Objective.Stop_invalid ->
                  Qturbo_resilience.Failure.Numeric_invalid
              | _ -> Qturbo_resilience.Failure.Non_convergence
            in
            [
              Qturbo_resilience.Failure.make ~component:p.comp.Locality.id
                ~site:"fixed-solve" ~stage:"lm-sparse" ~fatal:false ~class_
                (Printf.sprintf
                   "sparse LM position solve failed with non-finite cost \
                    after %d iterations"
                   report.Objective.iterations);
            ]
        in
        (report, failures)
  in
  let x_ext =
    Array.mapi (fun k x -> Bounds.clamp p.bounds.(k) x) report.Objective.x
  in
  let final = residual_ext x_ext in
  let eps2 = Array.fold_left (fun acc r -> acc +. Float.abs r) 0.0 final in
  let free_assignments = List.init nv (fun k -> (free_ids.(k), x_ext.(k))) in
  ( { assignments = free_assignments @ p.pinned; eps2 },
    prefit_failures @ solve_failures )

let solve_prepared ?domains ~alpha ~t_sim p =
  fst (solve_impl ?domains ~alpha ~t_sim p)

let solve_supervised ?domains ~sup ~alpha ~t_sim p =
  solve_impl ?domains ~sup ~alpha ~t_sim p

let solve ?domains ~vars ~channels ~alpha ~t_sim comp =
  solve_prepared ?domains ~alpha ~t_sim (prepare ~vars ~channels comp)
