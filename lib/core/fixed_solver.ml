open Qturbo_aais
open Qturbo_optim
open Qturbo_linalg

type result = { assignments : (int * float) list; eps2 : float }

let is_pinned (b : Bounds.bound) = b.Bounds.lo = b.Bounds.hi

let solve ~vars ~channels ~alpha ~t_sim (comp : Locality.component) =
  if t_sim <= 0.0 then invalid_arg "Fixed_solver.solve: t_sim <= 0";
  let all_ids = Array.of_list comp.Locality.var_ids in
  (* gauge-pinned coordinates (lo = hi) are held fixed; optimising them
     would let LM translate the layout and the clamp would then break it *)
  let free_ids =
    Array.of_list
      (List.filter
         (fun v -> not (is_pinned vars.(v).Variable.bound))
         comp.Locality.var_ids)
  in
  let nv = Array.length free_ids in
  let cids = Array.of_list comp.Locality.channel_ids in
  let env_size = Array.fold_left (fun acc v -> Int.max acc (v + 1)) 1 all_ids in
  let scratch = Array.make env_size 0.0 in
  Array.iter
    (fun v ->
      if is_pinned vars.(v).Variable.bound then
        scratch.(v) <- vars.(v).Variable.bound.Bounds.lo)
    all_ids;
  let residual_ext x =
    Array.iteri (fun k v -> scratch.(v) <- x.(k)) free_ids;
    Array.map
      (fun cid ->
        (Expr.eval channels.(cid).Instruction.expr ~env:scratch *. t_sim)
        -. alpha.(cid))
      cids
  in
  let cost x =
    let r = residual_ext x in
    Array.fold_left (fun acc ri -> acc +. (ri *. ri)) 0.0 r
  in
  let x_init = Array.map (fun v -> vars.(v).Variable.init) free_ids in
  (* magnitude pre-fit: van-der-Waals amplitudes are homogeneous in the
     coordinates, so a single uniform rescale of the initial layout finds
     the right magnitude basin before LM refines the shape *)
  let scaled s = Array.map (fun x -> s *. x) x_init in
  let log_scale, _ =
    Scalar.golden_min ~f:(fun ls -> cost (scaled (exp ls))) ~lo:(-3.0) ~hi:3.0 ()
  in
  let x0_ext = scaled (exp log_scale) in
  let bounds = Array.map (fun v -> vars.(v).Variable.bound) free_ids in
  (* exact symbolic Jacobian; LM runs in external coordinates (position
     boxes are wide, so iterates stay interior) and the result is clamped,
     any clamping error landing in eps2 *)
  (* only the structurally nonzero entries: a van-der-Waals channel
     depends on two atoms' coordinates, so the Jacobian has O(rows)
     nonzeros, not O(rows · cols) *)
  let nonzero_derivs =
    let triples = ref [] in
    Array.iteri
      (fun i cid ->
        Array.iteri
          (fun k v ->
            match Expr.deriv channels.(cid).Instruction.expr v with
            | Expr.Const 0.0 -> ()
            | d -> triples := (i, k, d) :: !triples)
          free_ids)
      cids;
    Array.of_list (List.rev !triples)
  in
  let jacobian x =
    Array.iteri (fun k v -> scratch.(v) <- x.(k)) free_ids;
    let jac = Mat.create ~rows:(Array.length cids) ~cols:nv in
    Array.iter
      (fun (i, k, d) -> Mat.set jac i k (Expr.eval d ~env:scratch *. t_sim))
      nonzero_derivs;
    jac
  in
  let report = Levenberg_marquardt.minimize ~jacobian residual_ext x0_ext in
  let x_ext =
    Array.mapi (fun k x -> Bounds.clamp bounds.(k) x) report.Objective.x
  in
  let final = residual_ext x_ext in
  let eps2 = Array.fold_left (fun acc r -> acc +. Float.abs r) 0.0 final in
  let free_assignments = List.init nv (fun k -> (free_ids.(k), x_ext.(k))) in
  let pinned_assignments =
    List.filter_map
      (fun v ->
        if is_pinned vars.(v).Variable.bound then
          Some (v, vars.(v).Variable.bound.Bounds.lo)
        else None)
      comp.Locality.var_ids
  in
  { assignments = free_assignments @ pinned_assignments; eps2 }
