open Qturbo_aais
module Failure = Qturbo_resilience.Failure
module Fault = Qturbo_resilience.Fault
module Supervisor = Qturbo_resilience.Supervisor
module Diagnostic = Qturbo_analysis.Diagnostic

type segment_result = {
  env : float array;
  duration : float;
  error_l1 : float;
  eps1 : float;
}

type result = {
  segments : segment_result list;
  t_sim : float;
  error_l1 : float;
  relative_error : float;
  binding_segment : int;
  compile_seconds : float;
  warnings : string list;
  diagnostics : Diagnostic.t list;
  failures : Failure.t list;
  degraded : bool;
  plan_shapes : int;
  plan_builds : int;
}

(* Precheck every discretized segment Hamiltonian, deduplicating findings
   that repeat across segments (the channels and bounds are shared, so a
   term unsupported in one segment is typically unsupported in all).  The
   structure pass comes off each segment's plan — computed once per
   distinct shape — so only the coefficient-dependent passes run per
   segment. *)
let precheck ?t_max ~aais ~tau_tar pairs =
  let seen = Hashtbl.create 32 in
  List.concat_map
    (fun (h, (plan : Compile_plan.t)) ->
      List.filter
        (fun (d : Diagnostic.t) ->
          let key = (d.code, Diagnostic.subject_to_string d.subject) in
          if Hashtbl.mem seen key then false
          else begin
            Hashtbl.add seen key ();
            true
          end)
        (Qturbo_analysis.Analysis.static_checks ~aais ~target:h
           ~t_tar:tau_tar ?t_max ()
        @ plan.Compile_plan.structure_diags))
    pairs

let validate ~t_tar ~segments =
  if not (Float.is_finite t_tar) then
    raise
      (Diagnostic.Rejected
         [
           Diagnostic.make ~code:"QT016" ~severity:Diagnostic.Error
             ~subject:Diagnostic.System
             ~hint:"pass a finite positive evolution time"
             (Printf.sprintf "Td_compiler.compile: t_tar must be finite, got %h"
                t_tar);
         ]);
  if t_tar <= 0.0 then invalid_arg "Td_compiler.compile: t_tar <= 0";
  if segments <= 0 then
    raise
      (Diagnostic.Rejected
         [
           Diagnostic.make ~code:"QT016" ~severity:Diagnostic.Error
             ~subject:Diagnostic.System
             ~hint:"discretize into at least one segment"
             (Printf.sprintf "Td_compiler.compile: segments must be >= 1, got %d"
                segments);
         ])

(* A single segment degenerates to a time-independent compile: one
   Hamiltonian, no binding-segment arbitration, no duration stretching.
   Delegate to the staged static pipeline so the two entry points are
   the same code path — bitwise-identical results by construction (the
   golden equivalence test pins this). *)
let compile_single ?options ?strict ?t_max ~aais ~model ~t_tar ~t0 () =
  let h =
    match Qturbo_models.Model.discretize model ~segments:1 with
    | [ h ] -> h
    | hams ->
        invalid_arg
          (Printf.sprintf "Td_compiler.compile: discretize returned %d segments"
             (List.length hams))
  in
  let r = Compile_plan.compile ?options ?strict ?t_max ~aais ~target:h ~t_tar () in
  {
    segments =
      [
        {
          env = r.Compile_plan.env;
          duration = r.Compile_plan.t_sim;
          error_l1 = r.Compile_plan.error_l1;
          eps1 = r.Compile_plan.eps1;
        };
      ];
    t_sim = r.Compile_plan.t_sim;
    error_l1 = r.Compile_plan.error_l1;
    relative_error = r.Compile_plan.relative_error;
    binding_segment = 0;
    compile_seconds = Qturbo_util.Clock.now () -. t0;
    warnings = r.Compile_plan.warnings;
    diagnostics = r.Compile_plan.diagnostics;
    failures = r.Compile_plan.failures;
    degraded = r.Compile_plan.degraded;
    plan_shapes = 1;
    plan_builds =
      (if r.Compile_plan.plan.cache_hit || r.Compile_plan.plan.store_hit then 0
       else 1);
  }

let compile ?(options = Compiler.default_options) ?(strict = true) ?t_max ~aais
    ~model ~t_tar ~segments () =
  validate ~t_tar ~segments;
  let t0 = Qturbo_util.Clock.now () in
  if segments = 1 then
    compile_single ~options ~strict ?t_max ~aais ~model ~t_tar ~t0 ()
  else begin
  let domains = options.Compiler.domains in
  let warnings = ref [] in
  (* supervision context — same semantics as the static pipeline: the
     deadline is absolute from here, the fault spec comes from the options
     (else [QTURBO_FAULTS]), and [supervise = false] is the raw seed path *)
  let sup =
    if options.Compiler.supervise then
      Some
        (Supervisor.make ?deadline_seconds:options.Compiler.deadline_seconds
           ?faults:options.Compiler.faults
           ~best_effort:options.Compiler.best_effort ())
    else None
  in
  let pipeline_failures = ref [] in
  let guard_for ~site ~guarded =
    match sup with
    | Some s when guarded -> Some (Supervisor.pool_guard s ~site)
    | _ -> None
  in
  (* guarded sweep with the unguarded-rerun fallback: once the guard has
     fired the deadline has expired for every element, so the rerun's
     supervised solves short-circuit deterministically — the same degraded
     result at any domain count (see Compile_plan.guarded_sweep) *)
  let with_rerun run =
    try run ~guarded:true with Supervisor.Expired -> run ~guarded:false
  in
  (* the target-independent device artifacts — locality decomposition,
     classification, prepared solver contexts — are shared with the
     static pipeline's plan cache; segments of equal shape additionally
     share a full plan (skeleton + structure diagnostics) *)
  let device =
    if options.Compiler.plan_cache then Compile_plan.obtain_device ~options ~aais
    else Compile_plan.build_device ~options ~aais ()
  in
  let channels = device.Compile_plan.channels in
  let vars = device.Compile_plan.vars in
  let tau_tar = t_tar /. float_of_int segments in
  let hams = Qturbo_models.Model.discretize model ~segments in
  (* one plan for the whole sweep, keyed by the canonical union support
     of every discretized segment.  Keying each segment by its own shape
     forked a second plan whenever a coefficient happened to cancel in
     one segment (the mis-chain quirk: K ≡ 2 mod 4 discretizations hit
     s = 0.75, which zeroes the end-atom Z terms) — the union shape pays
     one front-end build regardless, and segments missing a term simply
     instantiate that row with b_tar = 0.  When no segment drops a term
     the union equals every segment's own support, so the key, plan and
     pulses are bitwise-unchanged. *)
  let plan_builds = ref 0 in
  let union_support =
    List.sort_uniq Qturbo_pauli.Pauli_string.compare
      (List.concat_map Compile_plan.support_of_target hams)
  in
  let shared_plan =
    if options.Compiler.plan_cache then begin
      let p, provenance =
        Compile_plan.obtain_for_support ~options ~aais ~support:union_support
      in
      if provenance = Compile_plan.Built then incr plan_builds;
      p
    end
    else begin
      incr plan_builds;
      Compile_plan.build ~options ~device ~aais ~target_shape:union_support ()
    end
  in
  let plans = List.map (fun _ -> shared_plan) hams in
  !Compiler.stage_hook "precheck";
  let diagnostics =
    precheck ?t_max ~aais ~tau_tar (List.combine hams plans)
  in
  if strict then Qturbo_analysis.Analysis.check_or_raise diagnostics;
  List.iter
    (fun (d : Diagnostic.t) ->
      if d.severity = Diagnostic.Warning then
        warnings := Diagnostic.to_string d :: !warnings)
    diagnostics;
  (* per-segment right-hand sides against the shared (per-shape) skeleton;
     instantiation is a single array init, so no pool dispatch *)
  let systems =
    List.map2
      (fun h (plan : Compile_plan.t) ->
        Linear_system.instantiate plan.Compile_plan.skeleton ~target:h
          ~t_tar:tau_tar)
      hams plans
  in
  !Compiler.stage_hook "linear-solve";
  let solutions =
    Qturbo_par.Pool.parallel_map_list ~domains ~chunk:1 Linear_system.solve
      systems
  in
  let alphas =
    Array.of_list
      (List.map (fun s -> s.Qturbo_linalg.Sparse_solve.x) solutions)
  in
  let eps1s =
    Array.of_list
      (List.map (fun s -> s.Qturbo_linalg.Sparse_solve.residual_l1) solutions)
  in
  (* fixed/dynamic split of the device's prepared components; the
     partition preserves component order on both sides *)
  let combined =
    List.combine device.Compile_plan.comps device.Compile_plan.prepared
  in
  let fixed_comps, dynamic_pairs =
    List.partition
      (fun (_, p) ->
        match p with
        | Compile_plan.Fixed _ -> true
        | Compile_plan.Dynamic _ -> false)
      combined
  in
  let dynamic_prepared =
    List.filter_map
      (fun (_, p) ->
        match p with Compile_plan.Dynamic d -> Some d | _ -> None)
      dynamic_pairs
  in
  let fixed_prepared =
    List.filter_map
      (fun (_, p) -> match p with Compile_plan.Fixed f -> Some f | _ -> None)
      fixed_comps
  in
  (* dynamic bottleneck time per segment; failures are returned (not
     accumulated into a shared ref) because the sweep runs on the pool *)
  let dyn_time alpha =
    List.fold_left
      (fun (acc, fs) p ->
        match sup with
        | None -> (Float.max acc (Local_solver.min_time_prepared ~alpha p), fs)
        | Some sup ->
            let t, f = Local_solver.min_time_supervised ~sup ~alpha p in
            (Float.max acc t, fs @ f))
      (options.Compiler.time_floor, [])
      dynamic_prepared
  in
  let t_dyn_pairs =
    with_rerun (fun ~guarded ->
        Qturbo_par.Pool.parallel_map
          ?guard:(guard_for ~site:"min-time" ~guarded)
          ~domains ~chunk:1 dyn_time alphas)
  in
  let t_dyn = Array.map fst t_dyn_pairs in
  Array.iter
    (fun (_, fs) -> pipeline_failures := !pipeline_failures @ fs)
    t_dyn_pairs;
  let fixed_cids =
    List.concat_map (fun (c, _) -> c.Locality.channel_ids) fixed_comps
  in
  (* binding segment: largest fixed-channel amplitude demand α/T *)
  let demand s =
    List.fold_left
      (fun acc cid -> Float.max acc (Float.abs alphas.(s).(cid) /. t_dyn.(s)))
      0.0 fixed_cids
  in
  let binding_segment = ref 0 in
  for s = 1 to segments - 1 do
    if demand s > demand !binding_segment then binding_segment := s
  done;
  let sb = !binding_segment in
  (* solve the layout against the binding segment, growing T on
     geometric-constraint violations.  The retry loop is hard-bounded:
     exhausting [max_constraint_iters] (or the deadline) produces a
     classified failure and the best layout found, never an unbounded
     spin.  Only the final iteration's solver failures are kept — earlier
     iterations' layouts are discarded along with their records. *)
  let retry_fault =
    (match sup with
    | None -> None
    | Some s ->
        Fault.fires (Supervisor.faults s) ~site:"constraint-loop"
          ~component:(-1))
    = Some Fault.Retry
  in
  let rec solve_fixed t iter =
    let env = Array.map (fun (v : Variable.t) -> v.Variable.init) vars in
    let layout_failures = ref [] in
    List.iter
      (fun fp ->
        let assignments =
          match sup with
          | None ->
              (Fixed_solver.solve_prepared ~domains ~alpha:alphas.(sb)
                 ~t_sim:t fp)
                .Fixed_solver.assignments
          | Some sup ->
              let r, fs =
                Fixed_solver.solve_supervised ~domains ~sup ~alpha:alphas.(sb)
                  ~t_sim:t fp
              in
              layout_failures := !layout_failures @ fs;
              r.Fixed_solver.assignments
        in
        List.iter (fun (v, x) -> env.(v) <- x) assignments)
      fixed_prepared;
    let violations =
      if retry_fault then
        [ "injected fault: constraint-loop=retry forces a violation" ]
      else aais.Aais.check_fixed env
    in
    let expired =
      match sup with
      | None -> false
      | Some s ->
          Supervisor.site_expired s ~site:"constraint-loop" ~component:(-1)
    in
    if
      violations = []
      || iter >= options.Compiler.max_constraint_iters
      || expired
    then begin
      if violations <> [] then begin
        let reason =
          if iter >= options.Compiler.max_constraint_iters then
            Printf.sprintf
              "layout constraints unresolved after %d iterations: %s" iter
              (String.concat "; " violations)
          else
            Printf.sprintf
              "deadline expired with layout constraints unresolved after %d \
               iterations: %s"
              iter
              (String.concat "; " violations)
        in
        warnings := reason :: !warnings;
        layout_failures :=
          !layout_failures
          @ [
              Failure.make ~component:(-1) ~site:"constraint-loop" ~stage:""
                ~fatal:false
                ~class_:
                  (if iter >= options.Compiler.max_constraint_iters then
                     Failure.Position_retry_exhausted
                   else Failure.Deadline_expired)
                reason;
            ]
      end;
      (t, env, !layout_failures)
    end
    else solve_fixed (t *. options.Compiler.dt_factor) (iter + 1)
  in
  let t_binding, fixed_env, layout_failures = solve_fixed t_dyn.(sb) 0 in
  pipeline_failures := !pipeline_failures @ layout_failures;
  (* the shared layout's amplitude per fixed channel, evaluated once —
     every segment reads the same values *)
  let fixed_val = Array.make (Array.length channels) 0.0 in
  List.iter
    (fun cid ->
      fixed_val.(cid) <- Instruction.eval_channel channels.(cid) ~env:fixed_env)
    fixed_cids;
  let achieved_amp =
    Array.of_list (List.map (fun cid -> (cid, fixed_val.(cid))) fixed_cids)
  in
  (* per-segment duration: stretched so the shared layout integrates to
     the segment's required B, never faster than its dynamic bottleneck *)
  let duration s =
    let t_fixed =
      Array.fold_left
        (fun acc (cid, amp) ->
          if Float.abs amp > 1e-12 then
            Float.max acc (alphas.(s).(cid) /. amp)
          else acc)
        0.0 achieved_amp
    in
    let t = Float.max t_dyn.(s) t_fixed in
    if s = sb then Float.max t t_binding else t
  in
  let fixed_cid_mask = Array.make (Array.length channels) false in
  List.iter (fun cid -> fixed_cid_mask.(cid) <- true) fixed_cids;
  let solve_segment s ls =
    let t_s = duration s in
    let alpha = alphas.(s) in
    (* refinement-style residual RHS against the achieved fixed amplitudes *)
    let adjusted_rows =
      List.map
        (fun { Qturbo_linalg.Sparse_solve.cells; rhs } ->
          let fixed_part =
            List.fold_left
              (fun acc (cid, coeff) ->
                if fixed_cid_mask.(cid) then
                  acc +. (coeff *. fixed_val.(cid) *. t_s)
                else acc)
              0.0 cells
          in
          {
            Qturbo_linalg.Sparse_solve.cells =
              List.filter (fun (cid, _) -> not fixed_cid_mask.(cid)) cells;
            rhs = rhs -. fixed_part;
          })
        (Linear_system.rows ls)
    in
    let alpha_dyn =
      if options.Compiler.refine then
        (Qturbo_linalg.Sparse_solve.solve ~ncols:(Array.length channels)
           adjusted_rows)
          .Qturbo_linalg.Sparse_solve.x
      else alpha
    in
    let env = Array.copy fixed_env in
    let seg_failures = ref [] in
    List.iter
      (fun p ->
        let assignments =
          match sup with
          | None ->
              (Local_solver.solve_prepared ~alpha:alpha_dyn ~t_sim:t_s p)
                .Local_solver.assignments
          | Some sup ->
              let sol, fs =
                Local_solver.solve_supervised ~sup ~alpha:alpha_dyn ~t_sim:t_s
                  p
              in
              seg_failures := !seg_failures @ fs;
              sol.Local_solver.assignments
        in
        List.iter (fun (v, x) -> env.(v) <- x) assignments)
      dynamic_prepared;
    let achieved =
      Array.map
        (fun (c : Instruction.channel) -> Instruction.eval_channel c ~env *. t_s)
        channels
    in
    let error_l1 = Linear_system.residual_l1 ls ~alpha:achieved in
    ({ env; duration = t_s; error_l1; eps1 = eps1s.(s) }, !seg_failures)
  in
  (* an injected [segment-loop] deadline (or a truly expired wall clock)
     gets one classified pipeline record; the per-component records from
     the short-circuiting supervised solves carry the detail *)
  (match sup with
  | Some s when Supervisor.site_expired s ~site:"segment-loop" ~component:(-1)
    ->
      pipeline_failures :=
        !pipeline_failures
        @ [
            Failure.make ~component:(-1) ~site:"segment-loop" ~stage:""
              ~fatal:false ~class_:Failure.Deadline_expired
              "deadline expired entering the segment sweep";
          ]
  | _ -> ());
  (* segments only read the shared layout; solve them on the pool *)
  let segment_pairs =
    with_rerun (fun ~guarded ->
        Qturbo_par.Pool.parallel_map_list
          ?guard:(guard_for ~site:"segment-loop" ~guarded)
          ~domains ~chunk:1
          (fun (s, ls) -> solve_segment s ls)
          (List.mapi (fun s ls -> (s, ls)) systems))
  in
  let segment_results = List.map fst segment_pairs in
  let segment_failures = List.concat_map snd segment_pairs in
  let t_sim =
    List.fold_left (fun acc r -> acc +. r.duration) 0.0 segment_results
  in
  let error_l1 =
    List.fold_left
      (fun acc (r : segment_result) -> acc +. r.error_l1)
      0.0 segment_results
  in
  let b_norm =
    List.fold_left
      (fun acc ls ->
        Array.fold_left
          (fun acc b -> acc +. Float.abs b)
          acc ls.Linear_system.b_tar)
      0.0 systems
  in
  (* failures, in pipeline order: evolution-time search, the binding
     layout's constraint loop, then the segment sweep (segment order —
     the pool collects by index) *)
  let failures = !pipeline_failures @ segment_failures in
  let degraded = List.exists (fun f -> f.Failure.fatal) failures in
  let best_effort =
    match sup with Some s -> Supervisor.best_effort s | None -> false
  in
  if degraded && not best_effort then raise (Failure.Failed failures);
  {
    segments = segment_results;
    t_sim;
    error_l1;
    relative_error = (if b_norm > 0.0 then error_l1 /. b_norm *. 100.0 else 0.0);
    binding_segment = sb;
    compile_seconds = Qturbo_util.Clock.now () -. t0;
    warnings = List.rev !warnings;
    diagnostics;
    failures;
    degraded;
    plan_shapes = 1;
    plan_builds = !plan_builds;
  }
  end
