open Qturbo_aais

type segment_result = {
  env : float array;
  duration : float;
  error_l1 : float;
  eps1 : float;
}

type result = {
  segments : segment_result list;
  t_sim : float;
  error_l1 : float;
  relative_error : float;
  binding_segment : int;
  compile_seconds : float;
  warnings : string list;
  diagnostics : Qturbo_analysis.Diagnostic.t list;
}

(* Precheck every discretized segment Hamiltonian, deduplicating findings
   that repeat across segments (the channels and bounds are shared, so a
   term unsupported in one segment is typically unsupported in all). *)
let precheck ?t_max ~aais ~tau_tar hams =
  let seen = Hashtbl.create 32 in
  List.concat_map
    (fun h ->
      List.filter
        (fun (d : Qturbo_analysis.Diagnostic.t) ->
          let key =
            (d.code, Qturbo_analysis.Diagnostic.subject_to_string d.subject)
          in
          if Hashtbl.mem seen key then false
          else begin
            Hashtbl.add seen key ();
            true
          end)
        (Compiler.analyze ?t_max ~aais ~target:h ~t_tar:tau_tar ()))
    hams

let compile ?(options = Compiler.default_options) ?(strict = true) ?t_max ~aais
    ~model ~t_tar ~segments () =
  if t_tar <= 0.0 then invalid_arg "Td_compiler.compile: t_tar <= 0";
  if segments < 1 then invalid_arg "Td_compiler.compile: segments < 1";
  let t0 = Qturbo_util.Clock.now () in
  let domains = options.Compiler.domains in
  let warnings = ref [] in
  let channels = Aais.channels aais in
  let vars = Aais.variables aais in
  let tau_tar = t_tar /. float_of_int segments in
  let hams = Qturbo_models.Model.discretize model ~segments in
  !Compiler.stage_hook "precheck";
  let diagnostics = precheck ?t_max ~aais ~tau_tar hams in
  if strict then Qturbo_analysis.Analysis.check_or_raise diagnostics;
  List.iter
    (fun (d : Qturbo_analysis.Diagnostic.t) ->
      if d.severity = Qturbo_analysis.Diagnostic.Warning then
        warnings := Qturbo_analysis.Diagnostic.to_string d :: !warnings)
    diagnostics;
  (* per-segment linear systems over the shared channel set; segments are
     independent, so they build and solve on the pool *)
  let systems =
    Qturbo_par.Pool.parallel_map_list ~domains ~chunk:1
      (fun h -> Linear_system.build ~channels ~target:h ~t_tar:tau_tar)
      hams
  in
  !Compiler.stage_hook "linear-solve";
  let solutions =
    Qturbo_par.Pool.parallel_map_list ~domains ~chunk:1 Linear_system.solve
      systems
  in
  let alphas =
    Array.of_list
      (List.map (fun s -> s.Qturbo_linalg.Sparse_solve.x) solutions)
  in
  let eps1s =
    Array.of_list
      (List.map (fun s -> s.Qturbo_linalg.Sparse_solve.residual_l1) solutions)
  in
  let comps = Locality.decompose ~channels ~n_vars:(Array.length vars) in
  let classifications = List.map (Local_solver.classify ~vars ~channels) comps in
  let fixed_comps, dynamic_pairs =
    List.partition
      (fun (_, cls) ->
        match cls with
        | Local_solver.Fixed_vars -> true
        | Local_solver.Const_channels | Local_solver.Linear _
        | Local_solver.Polar _ | Local_solver.Generic ->
            false)
      (List.combine comps classifications)
  in
  (* components are prepared once and re-solved across every segment,
     constraint iteration and refinement pass *)
  let dynamic_prepared =
    List.map
      (fun (comp, cls) -> Local_solver.prepare ~vars ~channels comp cls)
      dynamic_pairs
  in
  let fixed_prepared =
    List.map (fun (comp, _) -> Fixed_solver.prepare ~vars ~channels comp)
      fixed_comps
  in
  (* dynamic bottleneck time per segment *)
  let dyn_time alpha =
    List.fold_left
      (fun acc p -> Float.max acc (Local_solver.min_time_prepared ~alpha p))
      options.Compiler.time_floor dynamic_prepared
  in
  let t_dyn = Qturbo_par.Pool.parallel_map ~domains ~chunk:1 dyn_time alphas in
  let fixed_cids =
    List.concat_map (fun (c, _) -> c.Locality.channel_ids) fixed_comps
  in
  (* binding segment: largest fixed-channel amplitude demand α/T *)
  let demand s =
    List.fold_left
      (fun acc cid -> Float.max acc (Float.abs alphas.(s).(cid) /. t_dyn.(s)))
      0.0 fixed_cids
  in
  let binding_segment = ref 0 in
  for s = 1 to segments - 1 do
    if demand s > demand !binding_segment then binding_segment := s
  done;
  let sb = !binding_segment in
  (* solve the layout against the binding segment, growing T on
     geometric-constraint violations *)
  let rec solve_fixed t iter =
    let env = Array.map (fun (v : Variable.t) -> v.Variable.init) vars in
    List.iter
      (fun fp ->
        let { Fixed_solver.assignments; eps2 = _ } =
          Fixed_solver.solve_prepared ~domains ~alpha:alphas.(sb) ~t_sim:t fp
        in
        List.iter (fun (v, x) -> env.(v) <- x) assignments)
      fixed_prepared;
    let violations = aais.Aais.check_fixed env in
    if violations = [] || iter >= options.Compiler.max_constraint_iters then begin
      if violations <> [] then
        warnings :=
          Printf.sprintf "layout constraints unresolved: %s"
            (String.concat "; " violations)
          :: !warnings;
      (t, env)
    end
    else solve_fixed (t *. options.Compiler.dt_factor) (iter + 1)
  in
  let t_binding, fixed_env = solve_fixed t_dyn.(sb) 0 in
  (* the shared layout's amplitude per fixed channel, evaluated once —
     every segment reads the same values *)
  let fixed_val = Array.make (Array.length channels) 0.0 in
  List.iter
    (fun cid ->
      fixed_val.(cid) <- Instruction.eval_channel channels.(cid) ~env:fixed_env)
    fixed_cids;
  let achieved_amp =
    Array.of_list (List.map (fun cid -> (cid, fixed_val.(cid))) fixed_cids)
  in
  (* per-segment duration: stretched so the shared layout integrates to
     the segment's required B, never faster than its dynamic bottleneck *)
  let duration s =
    let t_fixed =
      Array.fold_left
        (fun acc (cid, amp) ->
          if Float.abs amp > 1e-12 then
            Float.max acc (alphas.(s).(cid) /. amp)
          else acc)
        0.0 achieved_amp
    in
    let t = Float.max t_dyn.(s) t_fixed in
    if s = sb then Float.max t t_binding else t
  in
  let fixed_cid_mask = Array.make (Array.length channels) false in
  List.iter (fun cid -> fixed_cid_mask.(cid) <- true) fixed_cids;
  let solve_segment s ls =
    let t_s = duration s in
    let alpha = alphas.(s) in
    (* refinement-style residual RHS against the achieved fixed amplitudes *)
    let adjusted_rows =
      List.map
        (fun { Qturbo_linalg.Sparse_solve.cells; rhs } ->
          let fixed_part =
            List.fold_left
              (fun acc (cid, coeff) ->
                if fixed_cid_mask.(cid) then
                  acc +. (coeff *. fixed_val.(cid) *. t_s)
                else acc)
              0.0 cells
          in
          {
            Qturbo_linalg.Sparse_solve.cells =
              List.filter (fun (cid, _) -> not fixed_cid_mask.(cid)) cells;
            rhs = rhs -. fixed_part;
          })
        (Linear_system.rows ls)
    in
    let alpha_dyn =
      if options.Compiler.refine then
        (Qturbo_linalg.Sparse_solve.solve ~ncols:(Array.length channels)
           adjusted_rows)
          .Qturbo_linalg.Sparse_solve.x
      else alpha
    in
    let env = Array.copy fixed_env in
    List.iter
      (fun p ->
        let { Local_solver.assignments; eps2 = _ } =
          Local_solver.solve_prepared ~alpha:alpha_dyn ~t_sim:t_s p
        in
        List.iter (fun (v, x) -> env.(v) <- x) assignments)
      dynamic_prepared;
    let achieved =
      Array.map
        (fun (c : Instruction.channel) -> Instruction.eval_channel c ~env *. t_s)
        channels
    in
    let error_l1 = Linear_system.residual_l1 ls ~alpha:achieved in
    { env; duration = t_s; error_l1; eps1 = eps1s.(s) }
  in
  (* segments only read the shared layout; solve them on the pool *)
  let segment_results =
    Qturbo_par.Pool.parallel_map_list ~domains ~chunk:1
      (fun (s, ls) -> solve_segment s ls)
      (List.mapi (fun s ls -> (s, ls)) systems)
  in
  let t_sim =
    List.fold_left (fun acc r -> acc +. r.duration) 0.0 segment_results
  in
  let error_l1 =
    List.fold_left
      (fun acc (r : segment_result) -> acc +. r.error_l1)
      0.0 segment_results
  in
  let b_norm =
    List.fold_left
      (fun acc ls ->
        Array.fold_left
          (fun acc b -> acc +. Float.abs b)
          acc ls.Linear_system.b_tar)
      0.0 systems
  in
  {
    segments = segment_results;
    t_sim;
    error_l1;
    relative_error = (if b_norm > 0.0 then error_l1 /. b_norm *. 100.0 else 0.0);
    binding_segment = sb;
    compile_seconds = Qturbo_util.Clock.now () -. t0;
    warnings = List.rev !warnings;
    diagnostics;
  }
