(** Turn a compilation result into an executable pulse schedule. *)

val rydberg_pulse :
  Qturbo_aais.Rydberg.t ->
  env:float array ->
  t_sim:float ->
  Qturbo_aais.Pulse.rydberg
(** Single-segment schedule from the compiled variable values. *)

val rydberg_pulse_segments :
  Qturbo_aais.Rydberg.t ->
  segments:(float array * float) list ->
  Qturbo_aais.Pulse.rydberg
(** Multi-segment schedule from per-segment [(env, duration)] pairs; the
    atom layout is taken from the first segment's environment (runtime
    fixed variables must agree across segments — guaranteed by
    {!Td_compiler}). *)

val heisenberg_pulse :
  Qturbo_aais.Heisenberg.t ->
  env:float array ->
  t_sim:float ->
  Qturbo_aais.Pulse.heisenberg

val iontrap_pulse :
  Qturbo_aais.Iontrap.t ->
  env:float array ->
  t_sim:float ->
  Qturbo_aais.Pulse.iontrap
(** Single-segment ion-trap schedule: per-ion drives/shifts plus every
    Mølmer–Sørensen coupling amplitude at its compiled value. *)
