(** Runtime-fixed-variable solver (paper §5.2).

    Once the evolution time is fixed by the dynamic bottleneck, the
    runtime-fixed variables (atom positions) must satisfy
    [expr_c(x) = α_c / T_sim] for every channel of their component.  The
    system is nonlinear (van-der-Waals tails couple every pair), generally
    inconsistent (far pairs cannot reach exactly zero), and solved in
    least squares by Levenberg–Marquardt with exact symbolic Jacobians.

    Initialisation: the variables' built-in initial layout is first
    rescaled by a golden-section search over a uniform scale factor —
    van-der-Waals amplitudes are homogeneous in the coordinates, so one
    scalar brings the initial guess into the right magnitude basin before
    LM refines the shape. *)

type result = {
  assignments : (int * float) list;  (** [(variable id, value)] *)
  eps2 : float;  (** L1 residual against the component's α targets *)
}

type prepared
(** The (α, T_sim)-independent part of a solve: the free/pinned
    variable split and the sparse symbolic Jacobian structure with its
    compiled derivative kernels.  Preparing once and re-solving across
    the §5.2 constraint iteration avoids re-deriving O(rows · vars)
    symbolic derivatives on every probe — the single largest cost of
    the original solver on position components.  Immutable and
    shareable across pool domains. *)

val sparse_threshold : int
(** Free-variable count at which the LM position solve switches from
    the dense normal-equation factorization (O(nv³) per damping
    attempt) to the conjugate-gradient sparse path
    ({!Qturbo_optim.Levenberg_marquardt.minimize_sparse}).  Components
    below it — every Fig. 3-scale device — run the historical dense
    path and stay bitwise-identical to prior releases.  On the sparse
    path under a supervisor, the escalation ladder is bypassed (the
    deadline still applies; hard failures surface as non-fatal records)
    and injected faults are not applied. *)

val prepare :
  vars:Qturbo_aais.Variable.t array ->
  channels:Qturbo_aais.Instruction.channel array ->
  Locality.component ->
  prepared

val solve_prepared :
  ?domains:int ->
  alpha:float array ->
  t_sim:float ->
  prepared ->
  result
(** Solve at a given [T_sim].  [domains > 1] evaluates the residual
    rows and Jacobian entries on the pool (disjoint writes collected by
    index, so the result is bitwise-identical to [domains = 1]; small
    components stay sequential regardless).  Raises [Invalid_argument]
    when [t_sim <= 0]. *)

val solve_supervised :
  ?domains:int ->
  sup:Qturbo_resilience.Supervisor.t ->
  alpha:float array ->
  t_sim:float ->
  prepared ->
  result * Qturbo_resilience.Failure.t list
(** {!solve_prepared} with the LM position solve run under the
    resilience escalation ladder (site ["fixed-solve"], the component's
    locality id; the position boxes seed the multistart stage).  Also
    reports a non-fatal [Non_convergence] record when the golden-section
    magnitude pre-fit stops above tolerance.  Under [Supervisor.none]
    the result is bitwise-identical to {!solve_prepared}; on a hard
    solver failure the returned layout is the (clamped) pre-fit initial
    layout and the failure list says why. *)

val solve :
  ?domains:int ->
  vars:Qturbo_aais.Variable.t array ->
  channels:Qturbo_aais.Instruction.channel array ->
  alpha:float array ->
  t_sim:float ->
  Locality.component ->
  result
(** [prepare] + [solve_prepared] in one step.
    Raises [Invalid_argument] when [t_sim <= 0]. *)
