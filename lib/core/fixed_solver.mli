(** Runtime-fixed-variable solver (paper §5.2).

    Once the evolution time is fixed by the dynamic bottleneck, the
    runtime-fixed variables (atom positions) must satisfy
    [expr_c(x) = α_c / T_sim] for every channel of their component.  The
    system is nonlinear (van-der-Waals tails couple every pair), generally
    inconsistent (far pairs cannot reach exactly zero), and solved in
    least squares by Levenberg–Marquardt with exact symbolic Jacobians.

    Initialisation: the variables' built-in initial layout is first
    rescaled by a golden-section search over a uniform scale factor —
    van-der-Waals amplitudes are homogeneous in the coordinates, so one
    scalar brings the initial guess into the right magnitude basin before
    LM refines the shape. *)

type result = {
  assignments : (int * float) list;  (** [(variable id, value)] *)
  eps2 : float;  (** L1 residual against the component's α targets *)
}

val solve :
  vars:Qturbo_aais.Variable.t array ->
  channels:Qturbo_aais.Instruction.channel array ->
  alpha:float array ->
  t_sim:float ->
  Locality.component ->
  result
(** Raises [Invalid_argument] when [t_sim <= 0]. *)
