(** Bounded, mutex-guarded LRU cache keyed by structural strings.

    Backs the {!Compile_plan} plan and device caches.  Entries must be
    immutable (plans are), because a cached value may be shared by
    concurrent compiles running on different pool domains.  All
    operations are thread-safe; the critical sections are tiny (a
    hash-table probe), so contention is negligible next to a solve.

    Hit/miss/eviction counters are process-global per cache and are
    surfaced in [qturbo compile --json]; {!clear} resets them (tests
    and benchmarks start from a cold, zero-counter state). *)

type stats = {
  hits : int;
  misses : int;  (** {!find} calls that returned [None] *)
  evictions : int;
  size : int;  (** resident entries *)
  capacity : int;
}

type 'a t

val create : capacity:int -> 'a t
(** Raises [Invalid_argument] when [capacity < 1]. *)

val find : 'a t -> string -> 'a option
(** Counts a hit (and refreshes the entry's age) or a miss. *)

val add : 'a t -> string -> 'a -> unit
(** Insert, evicting the least-recently-used entry at capacity.  If the
    key is already resident the resident value is kept — values for
    equal structural keys are interchangeable by construction. *)

val clear : 'a t -> unit
(** Drop every entry and zero the counters. *)

val stats : 'a t -> stats
