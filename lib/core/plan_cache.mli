(** Bounded, mutex-guarded LRU cache keyed by structural strings.

    Backs the {!Compile_plan} plan and device caches.  Entries must be
    immutable (plans are), because a cached value may be shared by
    concurrent compiles running on different pool domains.  All
    operations are thread-safe; the critical sections are tiny (a
    hash-table probe), so contention is negligible next to a solve.

    Counters come at two granularities: process-global per cache
    ({!stats}) and per key ({!key_stats}/{!per_key}), both surfaced in
    [qturbo compile --json] and the sweep reports — per-key hit rates
    are what makes the LRU capacities an observable sizing decision
    rather than a guess.  Per-key counters survive eviction of the
    entry (they describe the key's whole history) and are only dropped
    by {!clear}, which resets everything (tests and benchmarks start
    from a cold, zero-counter state). *)

type stats = {
  hits : int;
  misses : int;  (** {!find} calls that returned [None] *)
  evictions : int;
  discarded : int;
      (** {!add} calls that found the key already resident and dropped
          the freshly built value (concurrent double-builds) *)
  rejected : int;
      (** {!reject} calls: values refused admission (or pulled on a
          failed re-lint) by [Compile_plan]'s plan linter *)
  size : int;  (** resident entries *)
  capacity : int;
}

type key_stats = {
  key_hits : int;
  key_misses : int;
  key_evictions : int;
  key_discarded : int;
  key_rejected : int;
}

val zero_key_stats : key_stats

type 'a t

val create : capacity:int -> 'a t
(** Raises [Invalid_argument] when [capacity < 1]. *)

val find : 'a t -> string -> 'a option
(** Counts a hit (and refreshes the entry's age) or a miss. *)

val add : 'a t -> string -> 'a -> unit
(** Insert, evicting the least-recently-used entry at capacity.  If the
    key is already resident the resident value is kept — values for
    equal structural keys are interchangeable by construction — and the
    drop is counted as [discarded]. *)

val reject : 'a t -> string -> unit
(** Count an integrity rejection for [key]: a value that failed
    [Plan_lint] and was refused admission (or removed after a failed
    re-lint on a cache hit).  Telemetry only — does not touch resident
    entries; pair with {!remove} to pull a resident value. *)

val remove : 'a t -> string -> unit
(** Drop the resident entry for [key], if any.  Not counted as an
    eviction (evictions are capacity pressure); callers removing a
    lint-rejected value count it via {!reject}. *)

val clear : 'a t -> unit
(** Drop every entry, every per-key cell, and zero the counters. *)

val stats : 'a t -> stats

val key_stats : 'a t -> string -> key_stats
(** Counters for one key; {!zero_key_stats} for a never-seen key. *)

val per_key : 'a t -> (string * key_stats) list
(** Every key ever touched (hit, missed, evicted or discarded), with
    its counters, sorted by key for deterministic output. *)
