open Qturbo_aais
open Qturbo_graph

type component = { id : int; channel_ids : int list; var_ids : int list }

let decompose ~channels ~n_vars =
  let n_channels = Array.length channels in
  (* nodes: [0, n_channels) are channels, [n_channels, n_channels+n_vars)
     are variables *)
  let uf = Union_find.create (n_channels + n_vars) in
  Array.iteri
    (fun k (c : Instruction.channel) ->
      assert (c.Instruction.cid = k);
      List.iter
        (fun v ->
          if v < 0 || v >= n_vars then
            invalid_arg "Locality.decompose: variable id out of range";
          Union_find.union uf k (n_channels + v))
        (Expr.vars c.Instruction.expr))
    channels;
  let groups = Union_find.groups uf in
  let components =
    Array.to_list groups
    |> List.filter_map (fun members ->
           let channel_ids = List.filter (fun m -> m < n_channels) members in
           let var_ids =
             List.filter_map
               (fun m -> if m >= n_channels then Some (m - n_channels) else None)
               members
           in
           if channel_ids = [] then None
           else Some (channel_ids, var_ids))
  in
  let min_cid = function [] -> max_int | c :: _ -> c in
  let sorted =
    List.sort
      (fun (c1, _) (c2, _) -> Int.compare (min_cid c1) (min_cid c2))
      components
  in
  List.mapi (fun id (channel_ids, var_ids) -> { id; channel_ids; var_ids }) sorted

let component_of_channel components cid =
  List.find (fun c -> List.mem cid c.channel_ids) components
