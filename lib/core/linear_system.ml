open Qturbo_pauli
open Qturbo_aais
open Qturbo_linalg

type t = {
  index : Term_index.t;
  cells : (int * float) list array;
  b_tar : float array;
  n_channels : int;
  csr : Csr.t;
}

type skeleton = {
  sk_index : Term_index.t;
  sk_cells : (int * float) list array;
  sk_n_channels : int;
  sk_csr : Csr.t;
}

let skeleton ~channels ~support =
  let index = Term_index.build_of_support ~channels ~support in
  let n_rows = Term_index.count index in
  let cells = Array.make n_rows [] in
  Array.iter
    (fun (c : Instruction.channel) ->
      List.iter
        (fun (s, coeff) ->
          match Term_index.row_of index s with
          | Some row -> cells.(row) <- (c.Instruction.cid, coeff) :: cells.(row)
          | None -> ())
        (Instruction.effect_terms c))
    channels;
  (* restore channel order within each row *)
  Array.iteri (fun i row -> cells.(i) <- List.rev row) cells;
  {
    sk_index = index;
    sk_cells = cells;
    sk_n_channels = Array.length channels;
    sk_csr = Csr.of_row_lists ~cols:(Array.length channels) cells;
  }

let instantiate sk ~target ~t_tar =
  let b_tar =
    Array.init (Term_index.count sk.sk_index) (fun i ->
        Pauli_sum.coeff target (Term_index.string_of sk.sk_index i) *. t_tar)
  in
  {
    index = sk.sk_index;
    cells = sk.sk_cells;
    b_tar;
    n_channels = sk.sk_n_channels;
    csr = sk.sk_csr;
  }

let skeleton_index sk = sk.sk_index
let skeleton_cells sk = sk.sk_cells
let skeleton_csr sk = sk.sk_csr
let csr t = t.csr

let build ~channels ~target ~t_tar =
  let support = List.map fst (Pauli_sum.terms target) in
  instantiate (skeleton ~channels ~support) ~target ~t_tar

let rows t =
  Array.to_list
    (Array.mapi
       (fun i cells -> { Sparse_solve.cells; rhs = t.b_tar.(i) })
       t.cells)

let solve t = Sparse_solve.solve ~ncols:t.n_channels (rows t)
let solve_dense t = Sparse_solve.dense_only ~ncols:t.n_channels (rows t)

(* The numeric kernels below run once per sweep instance (not once per
   skeleton), so they iterate the CSR's flat arrays instead of chasing
   the per-row cons lists.  Stored entry order is identical to the list
   order ([Csr.of_row_lists] packs verbatim), so every float accumulates
   in the same sequence and the results are bitwise-unchanged. *)

let b_of_alpha t ~alpha =
  if Array.length alpha <> t.n_channels then
    invalid_arg "Linear_system.b_of_alpha: dimension mismatch";
  let row_ptr = Csr.row_ptr t.csr
  and col_idx = Csr.col_idx t.csr
  and values = Csr.values t.csr in
  Array.init (Array.length t.cells) (fun i ->
      let acc = ref 0.0 in
      for k = row_ptr.(i) to row_ptr.(i + 1) - 1 do
        acc := !acc +. (values.(k) *. alpha.(col_idx.(k)))
      done;
      !acc)

let residual_l1 t ~alpha =
  let b = b_of_alpha t ~alpha in
  let acc = ref 0.0 in
  Array.iteri (fun i bi -> acc := !acc +. Float.abs (bi -. t.b_tar.(i))) b;
  !acc

let norm1 t = Csr.norm1 t.csr
