open Qturbo_pauli
open Qturbo_aais
open Qturbo_linalg

type t = {
  index : Term_index.t;
  cells : (int * float) list array;
  b_tar : float array;
  n_channels : int;
}

type skeleton = {
  sk_index : Term_index.t;
  sk_cells : (int * float) list array;
  sk_n_channels : int;
}

let skeleton ~channels ~support =
  let index = Term_index.build_of_support ~channels ~support in
  let n_rows = Term_index.count index in
  let cells = Array.make n_rows [] in
  Array.iter
    (fun (c : Instruction.channel) ->
      List.iter
        (fun (s, coeff) ->
          match Term_index.row_of index s with
          | Some row -> cells.(row) <- (c.Instruction.cid, coeff) :: cells.(row)
          | None -> ())
        (Instruction.effect_terms c))
    channels;
  (* restore channel order within each row *)
  Array.iteri (fun i row -> cells.(i) <- List.rev row) cells;
  { sk_index = index; sk_cells = cells; sk_n_channels = Array.length channels }

let instantiate sk ~target ~t_tar =
  let b_tar =
    Array.init (Term_index.count sk.sk_index) (fun i ->
        Pauli_sum.coeff target (Term_index.string_of sk.sk_index i) *. t_tar)
  in
  {
    index = sk.sk_index;
    cells = sk.sk_cells;
    b_tar;
    n_channels = sk.sk_n_channels;
  }

let skeleton_index sk = sk.sk_index
let skeleton_cells sk = sk.sk_cells

let build ~channels ~target ~t_tar =
  let support = List.map fst (Pauli_sum.terms target) in
  instantiate (skeleton ~channels ~support) ~target ~t_tar

let rows t =
  Array.to_list
    (Array.mapi
       (fun i cells -> { Sparse_solve.cells; rhs = t.b_tar.(i) })
       t.cells)

let solve t = Sparse_solve.solve ~ncols:t.n_channels (rows t)
let solve_dense t = Sparse_solve.dense_only ~ncols:t.n_channels (rows t)

let b_of_alpha t ~alpha =
  if Array.length alpha <> t.n_channels then
    invalid_arg "Linear_system.b_of_alpha: dimension mismatch";
  Array.map
    (fun cells ->
      List.fold_left (fun acc (c, coeff) -> acc +. (coeff *. alpha.(c))) 0.0 cells)
    t.cells

let residual_l1 t ~alpha =
  let b = b_of_alpha t ~alpha in
  let acc = ref 0.0 in
  Array.iteri (fun i bi -> acc := !acc +. Float.abs (bi -. t.b_tar.(i))) b;
  !acc

let norm1 t =
  let col_sums = Array.make t.n_channels 0.0 in
  Array.iter
    (fun cells ->
      List.iter
        (fun (c, coeff) -> col_sums.(c) <- col_sums.(c) +. Float.abs coeff)
        cells)
    t.cells;
  Array.fold_left Float.max 0.0 col_sums
