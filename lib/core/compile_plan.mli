(** Staged compile pipeline: reusable plan artifacts + a structural cache.

    The compiler's work splits cleanly into a {e structural front-end}
    that depends only on the AAIS and the target's shape (which Pauli
    terms it touches) — term indexing, linear-system skeleton, locality
    decomposition, per-component classification, compiled expression
    kernels, prepared solver contexts — and a {e numeric back-end} that
    additionally consumes the target coefficients and the evolution time.
    {!build} produces the former as an immutable, coefficient-free
    {!t}; {!solve} runs the latter against a plan.  Parameter sweeps,
    batch compiles and the segments of a time-dependent compile all
    reuse one plan, paying the front-end once.

    Plans are cached process-wide in a bounded LRU ({!Plan_cache})
    keyed by an exact structural string ({!plan_key}): the AAIS
    fingerprint (name, variables, channel expressions/hints/effects and
    the device builder's constraint fingerprint) plus the target's
    support and the classification-affecting options.  Exact keys mean
    no hash collisions; equal keys produce interchangeable plans, so a
    cache hit is bitwise-identical to a cold build by construction.

    [Compiler] re-exports the [options]/[result] types from here and
    delegates [Compiler.compile]; existing call sites are unaffected. *)

open Qturbo_aais
open Qturbo_pauli

module Failure = Qturbo_resilience.Failure
module Fault = Qturbo_resilience.Fault
module Supervisor = Qturbo_resilience.Supervisor
module Diagnostic = Qturbo_analysis.Diagnostic

type options = {
  refine : bool;  (** iterative refinement pass (paper §6.2) *)
  time_opt : bool;  (** evolution-time optimisation (§5.1) *)
  no_opt_padding : float;  (** T multiplier when [time_opt] is off *)
  dt_factor : float;  (** T growth per constraint iteration (§5.2) *)
  max_constraint_iters : int;
  time_floor : float;  (** smallest admissible evolution time *)
  dense_linear_solver : bool;  (** ablation: skip the greedy pass *)
  generic_local_solver : bool;  (** ablation: force Nelder–Mead *)
  domains : int;  (** worker domains for parallel sections *)
  supervise : bool;  (** run solves under the fallback supervisor *)
  best_effort : bool;  (** degrade instead of raising on fatal failure *)
  deadline_seconds : float option;
  faults : Fault.spec option;  (** fault injection (tests/CI) *)
  plan_cache : bool;
      (** reuse structurally-identical plans from the process-wide
          cache; off = rebuild the front-end on every compile *)
}

val default_options : options

val stage_hook : (string -> unit) ref
(** Observability hook; receives ["plan-build"], ["plan-cache-hit"],
    ["precheck"], ["linear-solve"], ["local-solve"] in pipeline order.
    Shared with [Compiler.stage_hook] (same ref). *)

type component_summary = {
  classification : string;
  channels : int;
  variables : int;
  min_time : float;
  eps2 : float;
}

type plan_stats = {
  cache_enabled : bool;
  cache_hit : bool;  (** this compile's plan came from the memory cache *)
  store_enabled : bool;  (** the persistent plan store was active *)
  store_hit : bool;  (** this compile's plan came off the on-disk store *)
  cache_hits : int;  (** process-wide counter, sampled at completion *)
  cache_misses : int;
  cache_discarded : int;
      (** process-wide: fresh builds dropped because the key was
          already resident (concurrent double-builds) *)
  key_hits : int;  (** counters for {e this} compile's plan key *)
  key_misses : int;
  key_evictions : int;
  build_seconds : float;  (** front-end cost (0 on a cache or store hit) *)
  solve_seconds : float;  (** numeric back-end cost *)
}

type provenance = Built | Cached | Stored
    (** Where a compile's plan came from: a fresh front-end build, the
        in-memory LRU, or the on-disk {!Qturbo_store.Plan_store}. *)

type result = {
  env : float array;
  t_sim : float;
  alpha_target : float array;
  alpha_achieved : float array;
  error_l1 : float;
  relative_error : float;
  eps1 : float;
  eps2_total : float;
  theorem1_bound : float;
  components : component_summary list;
  constraint_iterations : int;
  compile_seconds : float;
  warnings : string list;
  diagnostics : Diagnostic.t list;
  failures : Failure.t list;
  degraded : bool;
  plan : plan_stats;
}

(** {1 Plan artifacts} *)

type prepared_comp =
  | Dynamic of Local_solver.prepared
  | Fixed of Fixed_solver.prepared

type device = {
  aais : Aais.t;
  channels : Instruction.channel array;
  vars : Variable.t array;
  generic_local_solver : bool;
  comps : Locality.component list;
  classifications : Local_solver.classification list;
  prepared : prepared_comp list;
  device_key : string;
}
(** The target-independent part of a plan: locality decomposition,
    classifications (with the [generic_local_solver] override applied)
    and prepared solver contexts.  Depends only on the AAIS, so it is
    shared across every target shape on the same device. *)

type t = {
  device : device;
  support : Pauli_string.t list;
  skeleton : Linear_system.skeleton;
  structure_diags : Diagnostic.t list;
      (** the shape-only analyzer pass, computed once per plan *)
  key : string;
  build_seconds : float;
}

val support_of_target : Pauli_sum.t -> Pauli_string.t list
(** Non-identity support, in term order (= {!Shape.support_of_target}). *)

val plan_key : options:options -> aais:Aais.t -> target:Pauli_sum.t -> string
(** The structural cache key this target would compile under.  Equal
    keys ⇒ interchangeable plans; coefficients do not contribute. *)

val build_device : ?options:options -> aais:Aais.t -> unit -> device
val obtain_device : options:options -> aais:Aais.t -> device
(** Cache-aware variant ([options.plan_cache = false] builds fresh). *)

val build :
  ?options:options ->
  ?device:device ->
  aais:Aais.t ->
  target_shape:Pauli_string.t list ->
  unit ->
  t
(** Build a plan for a target shape (fires the ["plan-build"] hook).
    [?device] reuses an already-built device part. *)

val obtain :
  options:options -> aais:Aais.t -> target:Pauli_sum.t -> t * provenance
(** Fetch-or-build the plan for [target]'s shape, reporting where it
    came from.  Lookup order: memory LRU, then the persistent store
    (when {!enable_store} is active — a validated store hit back-fills
    the LRU), then a fresh build (which back-fills both).  Fresh builds
    pass through the {!lint} gate (see {!build}); with {!lint_on_hit}
    set, resident plans are re-linted on every hit and a failing plan
    is pulled, counted as a rejection and rebuilt rather than served.
    Store payloads are {e always} re-linted before being served,
    whatever {!lint_on_hit} says. *)

val obtain_for_support :
  options:options ->
  aais:Aais.t ->
  support:Pauli_string.t list ->
  t * provenance
(** {!obtain} for an explicit (canonically sorted, identity-free)
    support instead of a target's own shape.  [Td_compiler] uses this to
    compile every segment of a sweep against the {e union} support of
    all segments, so coefficient cancellations in individual segments
    cannot fork a second plan shape. *)

(** {1 Plan linting}

    The cross-stage invariant pass ([Qturbo_analysis.Plan_lint], codes
    [QT023]–[QT028]) over a plan's artifacts: term-index coverage of the
    canonical support, skeleton dimensions, locality-component
    partition, classification arity, structural-key round-trip, and
    prepared-context agreement.  {!build} runs it on every fresh plan
    and raises {!Diagnostic.Rejected} on errors (disable via
    {!lint_plans}); cached plans re-lint on hit behind {!lint_on_hit}
    ([QTURBO_LINT_CACHE=1]). *)

val lint : t -> Diagnostic.t list
(** Run the invariant pass on a plan; [[]] when sound. *)

val admit : t -> Diagnostic.t list
(** Lint-gated cache admission: admit the plan under its key when the
    lint is clean (returning [[]]), otherwise refuse, count the
    rejection in the cache telemetry ({!Plan_cache.stats.rejected}) and
    return the errors.  A plan failing {!lint} is never admitted. *)

val lint_plans : bool ref
(** Lint every fresh {!build} (default [true]).  Turned off only for
    overhead measurement ([bench analysis]). *)

val lint_on_hit : bool ref
(** Re-lint resident plans on every cache hit (default: set when
    [QTURBO_LINT_CACHE] is [1]/[true]/[yes]).  Debug flag — hits are
    the hot path and plans are immutable, so this buys nothing unless
    memory corruption or a deserialized plan store is in play. *)

(** {1 Solving} *)

val validate_t_tar : who:string -> float -> unit
(** Shared input validation: non-finite [t_tar] raises
    {!Diagnostic.Rejected} with a [QT016] diagnostic; [t_tar <= 0.0]
    raises [Invalid_argument "<who>: t_tar <= 0"]. *)

val solve :
  ?options:options ->
  ?strict:bool ->
  ?t_max:float ->
  ?provenance:provenance ->
  plan:t ->
  coeffs:Pauli_sum.t ->
  t_tar:float ->
  unit ->
  result
(** Run the numeric back-end: instantiate the right-hand side from
    [coeffs], precheck, global linear solve, evolution-time search,
    constraint iteration, refinement.  Bitwise-identical to the
    monolithic pre-plan pipeline.  [coeffs] must lie inside the plan's
    shape (terms outside it raise [Invalid_argument]); extra shape rows
    simply get a zero target.  [?provenance] (default [Built]) only
    annotates [result.plan]. *)

val compile :
  ?options:options ->
  ?strict:bool ->
  ?t_max:float ->
  aais:Aais.t ->
  target:Pauli_sum.t ->
  t_tar:float ->
  unit ->
  result
(** [obtain] + [solve] — the staged equivalent of the historical
    [Compiler.compile]. *)

(** {1 Persistent plan store}

    Process-wide hook for the on-disk store ({!Qturbo_store.Plan_store}):
    when enabled, {!obtain} consults it on every memory-cache miss and
    persists every fresh build, so a second process skips the front end
    for shapes a first process already compiled.  Payloads are whole
    plans marshaled with closures; the store version ties entries to
    the exact executable (see {!store_version}), and every load is
    checksum-validated and re-linted, so a stale, torn or hand-edited
    entry degrades to a rebuild, never to wrong output.  Results are
    bitwise-identical with the store on or off. *)

val enable_store : dir:string -> unit
(** Route {!obtain} through a store rooted at [dir] (created lazily).
    Replaces any previously enabled store. *)

val disable_store : unit -> unit

val store_dir : unit -> string option
val store_stats : unit -> Qturbo_store.Plan_store.stats option

val store_version : unit -> string
(** The store-format version tag this process writes and requires:
    a format prefix plus the running executable's digest (marshaled
    closures do not survive a rebuild, so a new binary must invalidate
    every prior entry).  Exposed for tests and ops tooling. *)

(** {1 Cache control} *)

val cache_stats : unit -> Plan_cache.stats

val cache_per_key : unit -> (string * Plan_cache.key_stats) list
(** Per-key counters of the plan cache (keys are the exact structural
    strings; display layers typically digest them), sorted by key. *)

val device_cache_stats : unit -> Plan_cache.stats

val clear_caches : unit -> unit
(** Drop all cached plans/devices and zero the counters (tests,
    benchmarks and cold-path measurement). *)

val cache_insert_unchecked : t -> unit
(** Insert a plan under its key {e without} the {!admit} lint gate,
    replacing any resident under that key.  Test-only: plants corrupted
    residents so the {!lint_on_hit} path can be exercised. *)
