open Qturbo_aais
open Qturbo_pauli

module Failure = Qturbo_resilience.Failure
module Fault = Qturbo_resilience.Fault

(* The pipeline itself lives in [Compile_plan]; this module re-exports
   the historical surface (the types with equations, so field access
   through [Compiler] keeps working everywhere) and adds the batch
   entry point. *)

type options = Compile_plan.options = {
  refine : bool;
  time_opt : bool;
  no_opt_padding : float;
  dt_factor : float;
  max_constraint_iters : int;
  time_floor : float;
  dense_linear_solver : bool;
  generic_local_solver : bool;
  domains : int;
  supervise : bool;
  best_effort : bool;
  deadline_seconds : float option;
  faults : Fault.spec option;
  plan_cache : bool;
}

let default_options = Compile_plan.default_options

type component_summary = Compile_plan.component_summary = {
  classification : string;
  channels : int;
  variables : int;
  min_time : float;
  eps2 : float;
}

type plan_stats = Compile_plan.plan_stats = {
  cache_enabled : bool;
  cache_hit : bool;
  store_enabled : bool;
  store_hit : bool;
  cache_hits : int;
  cache_misses : int;
  cache_discarded : int;
  key_hits : int;
  key_misses : int;
  key_evictions : int;
  build_seconds : float;
  solve_seconds : float;
}

type provenance = Compile_plan.provenance = Built | Cached | Stored

type result = Compile_plan.result = {
  env : float array;
  t_sim : float;
  alpha_target : float array;
  alpha_achieved : float array;
  error_l1 : float;
  relative_error : float;
  eps1 : float;
  eps2_total : float;
  theorem1_bound : float;
  components : component_summary list;
  constraint_iterations : int;
  compile_seconds : float;
  warnings : string list;
  diagnostics : Qturbo_analysis.Diagnostic.t list;
  failures : Failure.t list;
  degraded : bool;
  plan : plan_stats;
}

let stage_hook = Compile_plan.stage_hook

let b_tar_norm1 ~aais ~target ~t_tar =
  let channels = Aais.channels aais in
  let ls = Linear_system.build ~channels ~target ~t_tar in
  Array.fold_left (fun acc b -> acc +. Float.abs b) 0.0 ls.Linear_system.b_tar

(* The structure pass of [qturbo.analysis] takes a generic view of the
   system; convert our [Linear_system] rows and [Locality] components. *)
let structure_view ~ls ~comps =
  let rows =
    List.mapi
      (fun i { Qturbo_linalg.Sparse_solve.cells; _ } ->
        {
          Qturbo_analysis.Structure.term =
            Term_index.string_of ls.Linear_system.index i;
          cells;
        })
      (Linear_system.rows ls)
  in
  let comps =
    List.map
      (fun (c : Locality.component) ->
        {
          Qturbo_analysis.Structure.id = c.Locality.id;
          channel_ids = c.Locality.channel_ids;
          var_ids = c.Locality.var_ids;
        })
      comps
  in
  (rows, comps)

let diagnostics_of ?t_max ~aais ~target ~t_tar ~ls ~comps () =
  let channels = Aais.channels aais in
  let vars = Aais.variables aais in
  let rows, scomps = structure_view ~ls ~comps in
  Qturbo_analysis.Analysis.static_checks ~aais ~target ~t_tar ?t_max ()
  @ Qturbo_analysis.Structure.check ~channels ~variables:vars ~rows
      ~comps:scomps

let analyze ?t_max ~aais ~target ~t_tar () =
  let channels = Aais.channels aais in
  let ls = Linear_system.build ~channels ~target ~t_tar in
  let comps =
    Locality.decompose ~channels ~n_vars:(Array.length (Aais.variables aais))
  in
  diagnostics_of ?t_max ~aais ~target ~t_tar ~ls ~comps ()

let compile = Compile_plan.compile

let compile_batch ?(options = default_options) ?(strict = true) ?t_max
    ?(batch_domains = 1) ~aais jobs =
  (* the device part is shared across every job; plans are memoized per
     target shape — through the process-wide cache when it is enabled,
     through a batch-local table otherwise (a disabled cache must still
     not rebuild the front-end for jobs of equal shape, that is the
     whole point of batching) *)
  let device = lazy (Compile_plan.obtain_device ~options ~aais) in
  let local : (string, Compile_plan.t) Hashtbl.t = Hashtbl.create 8 in
  (* Phase 1 — validate and acquire plans sequentially in job order.
     All cache mutation (and therefore all hit/miss/discard accounting)
     happens here, so the counters each job samples are independent of
     the phase-2 schedule and a batch never double-builds a shape
     concurrently with itself. *)
  let prepared =
    List.map
      (fun (target, t_tar) ->
        Compile_plan.validate_t_tar ~who:"Compiler.compile" t_tar;
        if Pauli_sum.n_qubits target > aais.Aais.n_qubits then
          invalid_arg
            "Compiler.compile: target touches qubits outside the AAIS";
        let plan, provenance =
          if options.plan_cache then Compile_plan.obtain ~options ~aais ~target
          else begin
            let support = Compile_plan.support_of_target target in
            let key = Shape.of_support support in
            match Hashtbl.find_opt local key with
            | Some p -> (p, Compile_plan.Cached)
            | None ->
                let p =
                  Compile_plan.build ~options ~device:(Lazy.force device) ~aais
                    ~target_shape:support ()
                in
                Hashtbl.add local key p;
                (p, Compile_plan.Built)
          end
        in
        (target, t_tar, plan, provenance))
      jobs
  in
  (* Phase 2 — numeric back-ends over the shared plans on the work
     pool.  Results are collected by index and a failing job surfaces
     the smallest-index exception, so batch output is bitwise-identical
     to the sequential loop at any [batch_domains] (each job's inner
     parallel sections detect the worker context and run
     sequentially). *)
  Qturbo_par.Pool.parallel_map_list ~domains:batch_domains ~chunk:1
    (fun (target, t_tar, plan, provenance) ->
      Compile_plan.solve ~options ~strict ?t_max ~provenance ~plan
        ~coeffs:target ~t_tar ())
    prepared
