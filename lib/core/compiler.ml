open Qturbo_aais
open Qturbo_pauli

let src = Logs.Src.create "qturbo.compiler" ~doc:"QTurbo compilation pipeline"

module Log = (val Logs.src_log src)

type options = {
  refine : bool;
  time_opt : bool;
  no_opt_padding : float;
  dt_factor : float;
  max_constraint_iters : int;
  time_floor : float;
  dense_linear_solver : bool;
  generic_local_solver : bool;
}

let default_options =
  {
    refine = true;
    time_opt = true;
    no_opt_padding = 3.0;
    dt_factor = 1.25;
    max_constraint_iters = 24;
    time_floor = 1e-4;
    dense_linear_solver = false;
    generic_local_solver = false;
  }

(* Observability hook for the pipeline stages.  Tests install a recorder
   to assert ordering properties ("no solver stage ran before rejection")
   without relying on timing. *)
let stage_hook : (string -> unit) ref = ref (fun _ -> ())

type component_summary = {
  classification : string;
  channels : int;
  variables : int;
  min_time : float;
  eps2 : float;
}

type result = {
  env : float array;
  t_sim : float;
  alpha_target : float array;
  alpha_achieved : float array;
  error_l1 : float;
  relative_error : float;
  eps1 : float;
  eps2_total : float;
  theorem1_bound : float;
  components : component_summary list;
  constraint_iterations : int;
  compile_seconds : float;
  warnings : string list;
  diagnostics : Qturbo_analysis.Diagnostic.t list;
}

let classification_name = function
  | Local_solver.Const_channels -> "const"
  | Local_solver.Linear _ -> "linear"
  | Local_solver.Polar _ -> "polar"
  | Local_solver.Fixed_vars -> "fixed"
  | Local_solver.Generic -> "generic"

(* Solve every component at the given evolution time, returning the full
   environment and the per-component residuals. *)
let solve_components ~vars ~channels ~alpha ~t_sim comps classifications =
  let env = Array.map (fun (v : Variable.t) -> v.Variable.init) vars in
  let eps2s =
    List.map2
      (fun comp classification ->
        let assignments, eps2 =
          match classification with
          | Local_solver.Fixed_vars ->
              let { Fixed_solver.assignments; eps2 } =
                Fixed_solver.solve ~vars ~channels ~alpha ~t_sim comp
              in
              (assignments, eps2)
          | Local_solver.Const_channels | Local_solver.Linear _
          | Local_solver.Polar _ | Local_solver.Generic ->
              let { Local_solver.assignments; eps2 } =
                Local_solver.solve_at ~vars ~channels ~alpha ~t_sim comp
                  classification
              in
              (assignments, eps2)
        in
        List.iter (fun (v, x) -> env.(v) <- x) assignments;
        eps2)
      comps classifications
  in
  (env, eps2s)

let alpha_achieved_of_env ~channels ~env ~t_sim =
  Array.map
    (fun (c : Instruction.channel) ->
      Expr.eval c.Instruction.expr ~env *. t_sim)
    channels

let b_tar_norm1 ~aais ~target ~t_tar =
  let channels = Aais.channels aais in
  let ls = Linear_system.build ~channels ~target ~t_tar in
  Array.fold_left (fun acc b -> acc +. Float.abs b) 0.0 ls.Linear_system.b_tar

(* The structure pass of [qturbo.analysis] takes a generic view of the
   system; convert our [Linear_system] rows and [Locality] components. *)
let structure_view ~ls ~comps =
  let rows =
    List.mapi
      (fun i { Qturbo_linalg.Sparse_solve.cells; _ } ->
        {
          Qturbo_analysis.Structure.term =
            Term_index.string_of ls.Linear_system.index i;
          cells;
        })
      (Linear_system.rows ls)
  in
  let comps =
    List.map
      (fun (c : Locality.component) ->
        {
          Qturbo_analysis.Structure.id = c.Locality.id;
          channel_ids = c.Locality.channel_ids;
          var_ids = c.Locality.var_ids;
        })
      comps
  in
  (rows, comps)

let diagnostics_of ?t_max ~aais ~target ~t_tar ~ls ~comps () =
  let channels = Aais.channels aais in
  let vars = Aais.variables aais in
  let rows, scomps = structure_view ~ls ~comps in
  Qturbo_analysis.Analysis.static_checks ~aais ~target ~t_tar ?t_max ()
  @ Qturbo_analysis.Structure.check ~channels ~variables:vars ~rows
      ~comps:scomps

let analyze ?t_max ~aais ~target ~t_tar () =
  let channels = Aais.channels aais in
  let ls = Linear_system.build ~channels ~target ~t_tar in
  let comps =
    Locality.decompose ~channels ~n_vars:(Array.length (Aais.variables aais))
  in
  diagnostics_of ?t_max ~aais ~target ~t_tar ~ls ~comps ()

let compile ?(options = default_options) ?(strict = true) ?t_max ~aais ~target
    ~t_tar () =
  if t_tar <= 0.0 then invalid_arg "Compiler.compile: t_tar <= 0";
  if Pauli_sum.n_qubits target > aais.Aais.n_qubits then
    invalid_arg "Compiler.compile: target touches qubits outside the AAIS";
  let t0 = Sys.time () in
  let warnings = ref [] in
  let channels = Aais.channels aais in
  let vars = Aais.variables aais in
  (* stage 0: build the system and its decomposition, then run the static
     analyzer as a fail-fast precheck — provably-broken inputs are
     rejected before any solver runs *)
  let ls = Linear_system.build ~channels ~target ~t_tar in
  let comps = Locality.decompose ~channels ~n_vars:(Array.length vars) in
  !stage_hook "precheck";
  let diagnostics = diagnostics_of ?t_max ~aais ~target ~t_tar ~ls ~comps () in
  if strict then Qturbo_analysis.Analysis.check_or_raise diagnostics;
  List.iter
    (fun d ->
      if d.Qturbo_analysis.Diagnostic.severity = Qturbo_analysis.Diagnostic.Warning
      then warnings := Qturbo_analysis.Diagnostic.to_string d :: !warnings)
    diagnostics;
  Log.debug (fun m ->
      m "precheck: %d diagnostics (%d errors)" (List.length diagnostics)
        (List.length (Qturbo_analysis.Diagnostic.errors diagnostics)));
  (* stage 1: global linear system over synthesized variables *)
  !stage_hook "linear-solve";
  let lin =
    if options.dense_linear_solver then Linear_system.solve_dense ls
    else Linear_system.solve ls
  in
  let alpha = lin.Qturbo_linalg.Sparse_solve.x in
  let eps1 = lin.Qturbo_linalg.Sparse_solve.residual_l1 in
  Log.debug (fun m ->
      let st = lin.Qturbo_linalg.Sparse_solve.stats in
      m "linear system: %d rows, %d channels, greedy %d / dense %d, eps1 %.3g"
        (Term_index.count ls.Linear_system.index)
        (Array.length channels)
        st.Qturbo_linalg.Sparse_solve.greedy_solved
        st.Qturbo_linalg.Sparse_solve.dense_solved eps1);
  (* stage 2: classification of the locality components (built in stage 0) *)
  let classifications =
    List.map
      (fun comp ->
        match Local_solver.classify ~vars ~channels comp with
        | (Local_solver.Linear _ | Local_solver.Polar _)
          when options.generic_local_solver ->
            Local_solver.Generic
        | cls -> cls)
      comps
  in
  (* stage 3: evolution-time optimisation (bottleneck component) *)
  let min_times =
    List.map2
      (fun comp cls -> Local_solver.min_time ~vars ~channels ~alpha comp cls)
      comps classifications
  in
  let bottleneck = List.fold_left Float.max 0.0 min_times in
  Log.debug (fun m ->
      m "locality: %d components, bottleneck evolution time %.4g"
        (List.length comps) bottleneck);
  if bottleneck = infinity then
    warnings := "some component is infeasible at any evolution time" :: !warnings;
  let t_base =
    if bottleneck = infinity || bottleneck = 0.0 then options.time_floor
    else Float.max options.time_floor bottleneck
  in
  let t_start = if options.time_opt then t_base else t_base *. options.no_opt_padding in
  (* stage 4: solve localized systems, iterating T upward while the
     runtime-fixed layout violates device geometry (paper §5.2) *)
  !stage_hook "local-solve";
  let rec attempt t iter =
    let env, eps2s =
      solve_components ~vars ~channels ~alpha ~t_sim:t comps classifications
    in
    let violations = aais.Aais.check_fixed env in
    if violations = [] || iter >= options.max_constraint_iters then begin
      if violations <> [] then
        warnings :=
          Printf.sprintf "layout constraints unresolved after %d iterations: %s"
            iter
            (String.concat "; " violations)
          :: !warnings;
      (t, env, eps2s, iter)
    end
    else attempt (t *. options.dt_factor) (iter + 1)
  in
  let t_sim, env, eps2s, constraint_iterations = attempt t_start 0 in
  Log.debug (fun m ->
      m "localized systems solved at T = %.4g after %d constraint iterations"
        t_sim constraint_iterations);
  (* stage 5: iterative refinement (§6.2) — re-solve the runtime-dynamic
     channels against the residual left by the achieved fixed channels *)
  let achieved = alpha_achieved_of_env ~channels ~env ~t_sim in
  let env, eps2s =
    if not options.refine then (env, eps2s)
    else begin
      let fixed_cid = Array.make (Array.length channels) false in
      List.iter2
        (fun comp cls ->
          match cls with
          | Local_solver.Fixed_vars ->
              List.iter
                (fun cid -> fixed_cid.(cid) <- true)
                comp.Locality.channel_ids
          | Local_solver.Const_channels | Local_solver.Linear _
          | Local_solver.Polar _ | Local_solver.Generic ->
              ())
        comps classifications;
      (* residual RHS: move the achieved fixed-channel contributions over *)
      let rows = Array.of_list (Linear_system.rows ls) in
      let adjusted_rows =
        Array.to_list
          (Array.map
             (fun { Qturbo_linalg.Sparse_solve.cells; rhs } ->
               let fixed_part =
                 List.fold_left
                   (fun acc (cid, coeff) ->
                     if fixed_cid.(cid) then acc +. (coeff *. achieved.(cid))
                     else acc)
                   0.0 cells
               in
               {
                 Qturbo_linalg.Sparse_solve.cells =
                   List.filter (fun (cid, _) -> not fixed_cid.(cid)) cells;
                 rhs = rhs -. fixed_part;
               })
             rows)
      in
      let refined =
        Qturbo_linalg.Sparse_solve.solve ~ncols:(Array.length channels)
          adjusted_rows
      in
      let alpha_refined = refined.Qturbo_linalg.Sparse_solve.x in
      (* keep the fixed channels' original targets for eps accounting *)
      Array.iteri
        (fun cid is_fixed -> if is_fixed then alpha_refined.(cid) <- alpha.(cid))
        fixed_cid;
      (* re-solve only the dynamic components at the same T *)
      let env = Array.copy env in
      let eps2s =
        List.map2
          (fun comp cls ->
            match cls with
            | Local_solver.Fixed_vars ->
                (* unchanged: recompute its eps2 against original targets *)
                List.fold_left
                  (fun acc cid -> acc +. Float.abs (achieved.(cid) -. alpha.(cid)))
                  0.0 comp.Locality.channel_ids
            | Local_solver.Const_channels | Local_solver.Linear _
            | Local_solver.Polar _ | Local_solver.Generic ->
                let { Local_solver.assignments; eps2 } =
                  Local_solver.solve_at ~vars ~channels ~alpha:alpha_refined
                    ~t_sim comp cls
                in
                List.iter (fun (v, x) -> env.(v) <- x) assignments;
                eps2)
          comps classifications
      in
      (env, eps2s)
    end
  in
  let alpha_achieved = alpha_achieved_of_env ~channels ~env ~t_sim in
  let error_l1 = Linear_system.residual_l1 ls ~alpha:alpha_achieved in
  let b_norm =
    Array.fold_left (fun acc b -> acc +. Float.abs b) 0.0 ls.Linear_system.b_tar
  in
  let eps2_total = List.fold_left ( +. ) 0.0 eps2s in
  let components =
    List.map2
      (fun (comp : Locality.component) (cls, (tmin, eps2)) ->
        {
          classification = classification_name cls;
          channels = List.length comp.Locality.channel_ids;
          variables = List.length comp.Locality.var_ids;
          min_time = tmin;
          eps2;
        })
      comps
      (List.map2
         (fun cls pair -> (cls, pair))
         classifications
         (List.combine min_times eps2s))
  in
  {
    env;
    t_sim;
    alpha_target = alpha;
    alpha_achieved;
    error_l1;
    relative_error =
      (if b_norm > 0.0 then error_l1 /. b_norm *. 100.0 else 0.0);
    eps1;
    eps2_total;
    theorem1_bound = (Linear_system.norm1 ls *. eps2_total) +. eps1;
    components;
    constraint_iterations;
    compile_seconds = Sys.time () -. t0;
    warnings = List.rev !warnings;
    diagnostics;
  }
