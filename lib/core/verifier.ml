open Qturbo_pauli
open Qturbo_aais
module Diagnostic = Qturbo_analysis.Diagnostic

type report = {
  error_l1 : float;
  relative_error : float;
  max_term_error : float;
  executable : bool;
  violations : string list;
  diagnostics : Diagnostic.t list;
  consistent_with_compiler : bool;
  failures : Qturbo_resilience.Failure.t list;
  degraded : bool;
  plan : Compiler.plan_stats;
}

let compare_hamiltonians ~h_sim ~t_sim ~target ~t_tar =
  let b_sim = Pauli_sum.scale t_sim (Pauli_sum.drop_identity h_sim) in
  let b_tar = Pauli_sum.scale t_tar (Pauli_sum.drop_identity target) in
  let diff = Pauli_sum.sub b_sim b_tar in
  let error_l1 = Pauli_sum.norm1 diff in
  let max_term_error =
    List.fold_left
      (fun acc (_, c) -> Float.max acc (Float.abs c))
      0.0 (Pauli_sum.terms diff)
  in
  let b_norm = Pauli_sum.norm1 b_tar in
  let relative_error =
    if b_norm > 0.0 then error_l1 /. b_norm *. 100.0 else 0.0
  in
  (error_l1, relative_error, max_term_error)

let consistency ~recomputed (result : Compiler.result) =
  Float.abs (recomputed -. result.Compiler.error_l1)
  <= 1e-6 +. (0.01 *. Float.max recomputed result.Compiler.error_l1)

let verify_rydberg ryd ~target ~t_tar (result : Compiler.result) =
  let env = result.Compiler.env in
  let t_sim = result.Compiler.t_sim in
  let h_sim = Rydberg.hamiltonian ryd ~env in
  let error_l1, relative_error, max_term_error =
    compare_hamiltonians ~h_sim ~t_sim ~target ~t_tar
  in
  let pulse = Extract.rydberg_pulse ryd ~env ~t_sim in
  let violations = Pulse.within_limits pulse in
  (* QT012 for the hard limit violations above, QT013 for slew findings
     (informational here: raw compiled pulses are rectangles and only
     pass the slew check after the ramping post-pass) *)
  let diagnostics = Qturbo_analysis.Device_check.rydberg_pulse pulse in
  {
    error_l1;
    relative_error;
    max_term_error;
    executable = violations = [];
    violations;
    diagnostics;
    consistent_with_compiler = consistency ~recomputed:error_l1 result;
    failures = result.Compiler.failures;
    degraded = result.Compiler.degraded;
    plan = result.Compiler.plan;
  }

let verify_heisenberg heis ~target ~t_tar (result : Compiler.result) =
  let env = result.Compiler.env in
  let t_sim = result.Compiler.t_sim in
  let h_sim = Heisenberg.hamiltonian heis ~env in
  let error_l1, relative_error, max_term_error =
    compare_hamiltonians ~h_sim ~t_sim ~target ~t_tar
  in
  (* amplitude bounds *)
  let violations = ref [] in
  let diagnostics = ref [] in
  Array.iter
    (fun (v : Variable.t) ->
      let x = env.(v.Variable.id) in
      if not (Qturbo_optim.Bounds.contains v.Variable.bound x) then begin
        violations :=
          Printf.sprintf "%s = %g outside its bound" v.Variable.name x
          :: !violations;
        diagnostics :=
          Diagnostic.make ~code:"QT015" ~severity:Diagnostic.Error
            ~subject:(Diagnostic.Variable { id = v.id; name = v.name })
            ~hint:"the local solver left the feasible box; file a bug"
            (Printf.sprintf "compiled value %g violates bound [%g, %g]" x
               v.Variable.bound.lo v.Variable.bound.hi)
          :: !diagnostics
      end)
    (Aais.variables heis.Heisenberg.aais);
  if t_sim > heis.Heisenberg.spec.Device.max_time then begin
    violations :=
      Printf.sprintf "T_sim %.3f us exceeds device limit" t_sim :: !violations;
    diagnostics :=
      Diagnostic.make ~code:"QT014" ~severity:Diagnostic.Error
        ~subject:Diagnostic.Pulse
        ~hint:
          "split the evolution into repeated shorter executions or rescale \
           the target"
        (Printf.sprintf "T_sim %.3f us exceeds the device limit %.3f us" t_sim
           heis.Heisenberg.spec.Device.max_time)
      :: !diagnostics
  end;
  {
    error_l1;
    relative_error;
    max_term_error;
    executable = !violations = [];
    violations = !violations;
    diagnostics = !diagnostics;
    consistent_with_compiler = consistency ~recomputed:error_l1 result;
    failures = result.Compiler.failures;
    degraded = result.Compiler.degraded;
    plan = result.Compiler.plan;
  }

let verify_iontrap trap ~target ~t_tar (result : Compiler.result) =
  let env = result.Compiler.env in
  let t_sim = result.Compiler.t_sim in
  let h_sim = Iontrap.hamiltonian trap ~env in
  let error_l1, relative_error, max_term_error =
    compare_hamiltonians ~h_sim ~t_sim ~target ~t_tar
  in
  let pulse = Extract.iontrap_pulse trap ~env ~t_sim in
  let violations = ref (Pulse.iontrap_within_limits pulse) in
  let diagnostics = ref (Qturbo_analysis.Device_check.iontrap_pulse pulse) in
  if t_sim > trap.Iontrap.spec.Device.max_time then begin
    (* already a QT012 violation via within_limits, but keep the QT014
       schedule-length diagnostic uniform across families *)
    diagnostics :=
      !diagnostics
      @ [
          Diagnostic.make ~code:"QT014" ~severity:Diagnostic.Error
            ~subject:Diagnostic.Pulse
            ~hint:
              "split the evolution into repeated shorter executions or \
               rescale the target"
            (Printf.sprintf "T_sim %.3f us exceeds the device limit %.3f us"
               t_sim trap.Iontrap.spec.Device.max_time);
        ]
  end;
  {
    error_l1;
    relative_error;
    max_term_error;
    executable = !violations = [];
    violations = !violations;
    diagnostics = !diagnostics;
    consistent_with_compiler = consistency ~recomputed:error_l1 result;
    failures = result.Compiler.failures;
    degraded = result.Compiler.degraded;
    plan = result.Compiler.plan;
  }

(* All float emission goes through [Json.float_lit]: degraded
   best-effort results can carry nan/inf error metrics, and "%.17g"
   would render them as invalid JSON — the helper maps non-finite
   values to null. *)
let jf = Qturbo_util.Json.float_lit

let plan_to_json (p : Compiler.plan_stats) =
  Printf.sprintf
    {|{"enabled":%b,"hit":%b,"store_enabled":%b,"store_hit":%b,"hits":%d,"misses":%d,"discarded":%d,"key_hits":%d,"key_misses":%d,"key_evictions":%d,"build_seconds":%s,"solve_seconds":%s}|}
    p.Compiler.cache_enabled p.Compiler.cache_hit p.Compiler.store_enabled
    p.Compiler.store_hit p.Compiler.cache_hits p.Compiler.cache_misses
    p.Compiler.cache_discarded p.Compiler.key_hits p.Compiler.key_misses
    p.Compiler.key_evictions
    (jf p.Compiler.build_seconds)
    (jf p.Compiler.solve_seconds)

let report_to_json r =
  let jstr s = "\"" ^ Diagnostic.json_escape s ^ "\"" in
  Printf.sprintf
    {|{"error_l1":%s,"relative_error":%s,"max_term_error":%s,"executable":%b,"consistent_with_compiler":%b,"degraded":%b,"violations":[%s],"analysis":%s,"failures":%s,"plan_cache":%s}|}
    (jf r.error_l1) (jf r.relative_error) (jf r.max_term_error) r.executable
    r.consistent_with_compiler r.degraded
    (String.concat "," (List.map jstr r.violations))
    (Diagnostic.list_to_json r.diagnostics)
    (Qturbo_resilience.Failure.list_to_json r.failures)
    (plan_to_json r.plan)
