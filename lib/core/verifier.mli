(** Independent verification of compiled results.

    Defence in depth for the compiler pipeline: rather than trusting the
    linear-system bookkeeping, the verifier rebuilds the {e physical}
    simulator Hamiltonian from the compiled variable values (through
    {!Qturbo_aais.Rydberg.hamiltonian} / {!Qturbo_aais.Heisenberg.hamiltonian},
    which know nothing about channels or synthesized variables), compares
    [H_sim·T_sim] with [H_tar·T_tar] coefficient by coefficient, and
    re-checks the extracted pulse against the device limits. *)

type report = {
  error_l1 : float;  (** independently recomputed [‖B_sim − B_tar‖₁] *)
  relative_error : float;  (** percent *)
  max_term_error : float;  (** worst single Pauli-term mismatch *)
  executable : bool;  (** pulse passes {!Qturbo_aais.Pulse.within_limits} *)
  violations : string list;
      (** human-readable limit violations (kept stable for existing
          callers; the same findings appear structured in [diagnostics]) *)
  diagnostics : Qturbo_analysis.Diagnostic.t list;
      (** structured view of the violations — [QT012]/[QT013] for Rydberg
          pulse limits and slew, [QT014]/[QT015] for Heisenberg time and
          bound violations *)
  consistent_with_compiler : bool;
      (** recomputed error agrees with the compiler's own metric within
          [1e-6] absolute + 1 % relative *)
  failures : Qturbo_resilience.Failure.t list;
      (** the compile's classified solver-failure records, carried
          through so one report tells the whole degradation story *)
  degraded : bool;  (** the compile kept a non-converged component *)
  plan : Compiler.plan_stats;
      (** the compile's plan provenance and cache counters, carried
          through to the JSON report (["plan_cache"] object) *)
}

val verify_rydberg :
  Qturbo_aais.Rydberg.t ->
  target:Qturbo_pauli.Pauli_sum.t ->
  t_tar:float ->
  Compiler.result ->
  report

val verify_heisenberg :
  Qturbo_aais.Heisenberg.t ->
  target:Qturbo_pauli.Pauli_sum.t ->
  t_tar:float ->
  Compiler.result ->
  report

val verify_iontrap :
  Qturbo_aais.Iontrap.t ->
  target:Qturbo_pauli.Pauli_sum.t ->
  t_tar:float ->
  Compiler.result ->
  report
(** Same reconstruction through {!Qturbo_aais.Iontrap.hamiltonian}; the
    extracted pulse is checked with
    {!Qturbo_aais.Pulse.iontrap_within_limits} ([QT012]) plus the
    cross-family [QT014] schedule-length diagnostic. *)

val report_to_json : report -> string
(** One JSON object; the structured diagnostics land under ["analysis"]
    (see {!Qturbo_analysis.Diagnostic.list_to_json}). *)
