(** Dense row numbering of Hamiltonian terms.

    The equation system has one row per Pauli term that the target demands
    {e or} that any instruction channel can produce (the latter must be
    driven to zero when absent from the target — the paper's [Z₃Z₁ = 0]
    rows).  Identity strings carry only a global phase and are excluded. *)

type t

val build :
  channels:Qturbo_aais.Instruction.channel array ->
  target:Qturbo_pauli.Pauli_sum.t ->
  t
(** Rows are ordered: target terms first (canonical order), then
    channel-only terms in channel order. *)

val build_of_support :
  channels:Qturbo_aais.Instruction.channel array ->
  support:Qturbo_pauli.Pauli_string.t list ->
  t
(** {!build} from the target's shape alone — its support in canonical
    order ({!Qturbo_aais.Shape.support_of_target}).  [build ~channels
    ~target] is exactly [build_of_support] on [target]'s support: the
    index depends on which terms the target touches, never on its
    coefficients. *)

val count : t -> int

val row_of : t -> Qturbo_pauli.Pauli_string.t -> int option

val string_of : t -> int -> Qturbo_pauli.Pauli_string.t
(** Raises [Invalid_argument] on out-of-range rows. *)

val strings : t -> Qturbo_pauli.Pauli_string.t array
