open Qturbo_aais
open Qturbo_pauli

let src = Logs.Src.create "qturbo.compiler" ~doc:"QTurbo compilation pipeline"

module Log = (val Logs.src_log src)

module Failure = Qturbo_resilience.Failure
module Fault = Qturbo_resilience.Fault
module Supervisor = Qturbo_resilience.Supervisor
module Diagnostic = Qturbo_analysis.Diagnostic

type options = {
  refine : bool;
  time_opt : bool;
  no_opt_padding : float;
  dt_factor : float;
  max_constraint_iters : int;
  time_floor : float;
  dense_linear_solver : bool;
  generic_local_solver : bool;
  domains : int;
  supervise : bool;
  best_effort : bool;
  deadline_seconds : float option;
  faults : Fault.spec option;
  plan_cache : bool;
}

let default_options =
  {
    refine = true;
    time_opt = true;
    no_opt_padding = 3.0;
    dt_factor = 1.25;
    max_constraint_iters = 24;
    time_floor = 1e-4;
    dense_linear_solver = false;
    generic_local_solver = false;
    domains = Qturbo_par.Pool.default_domains ();
    supervise = true;
    best_effort = false;
    deadline_seconds = None;
    faults = None;
    plan_cache = true;
  }

(* Observability hook for the pipeline stages.  Tests install a recorder
   to assert ordering properties ("no solver stage ran before rejection",
   "a cached compile skips plan-build") without relying on timing. *)
let stage_hook : (string -> unit) ref = ref (fun _ -> ())

type component_summary = {
  classification : string;
  channels : int;
  variables : int;
  min_time : float;
  eps2 : float;
}

type plan_stats = {
  cache_enabled : bool;
  cache_hit : bool;
  store_enabled : bool;
  store_hit : bool;
  cache_hits : int;
  cache_misses : int;
  cache_discarded : int;
  key_hits : int;
  key_misses : int;
  key_evictions : int;
  build_seconds : float;
  solve_seconds : float;
}

(* Where this compile's plan came from: a fresh front-end build, the
   in-memory LRU, or the on-disk store. *)
type provenance = Built | Cached | Stored

type result = {
  env : float array;
  t_sim : float;
  alpha_target : float array;
  alpha_achieved : float array;
  error_l1 : float;
  relative_error : float;
  eps1 : float;
  eps2_total : float;
  theorem1_bound : float;
  components : component_summary list;
  constraint_iterations : int;
  compile_seconds : float;
  warnings : string list;
  diagnostics : Diagnostic.t list;
  failures : Failure.t list;
  degraded : bool;
  plan : plan_stats;
}

let classification_name = function
  | Local_solver.Const_channels -> "const"
  | Local_solver.Linear _ -> "linear"
  | Local_solver.Polar _ -> "polar"
  | Local_solver.Fixed_vars -> "fixed"
  | Local_solver.Generic -> "generic"

(* A component bundled with its solver-specific prepared state. *)
type prepared_comp =
  | Dynamic of Local_solver.prepared
  | Fixed of Fixed_solver.prepared

let prepare_components ~vars ~channels comps classifications =
  List.map2
    (fun comp classification ->
      match classification with
      | Local_solver.Fixed_vars -> Fixed (Fixed_solver.prepare ~vars ~channels comp)
      | Local_solver.Const_channels | Local_solver.Linear _
      | Local_solver.Polar _ | Local_solver.Generic ->
          Dynamic (Local_solver.prepare ~vars ~channels comp classification))
    comps classifications

(* ------------------------------------------------------------------ *)
(* Plan artifacts                                                      *)

type device = {
  aais : Aais.t;
  channels : Instruction.channel array;
  vars : Variable.t array;
  generic_local_solver : bool;
  comps : Locality.component list;
  classifications : Local_solver.classification list;
  prepared : prepared_comp list;
  device_key : string;
}

type t = {
  device : device;
  support : Pauli_string.t list;
  skeleton : Linear_system.skeleton;
  structure_diags : Diagnostic.t list;
  key : string;
  build_seconds : float;
}

let support_of_target = Shape.support_of_target

let device_key ~(options : options) ~aais =
  Printf.sprintf "g=%b|%s" options.generic_local_solver (Shape.of_aais aais)

(* Single point of truth for the plan-key format; [Plan_lint]'s
   round-trip check re-derives keys through here. *)
let plan_key_raw ~generic ~aais ~support =
  Printf.sprintf "g=%b|%s" generic (Shape.key ~aais ~support)

let plan_key_of_support ~(options : options) ~aais ~support =
  plan_key_raw ~generic:options.generic_local_solver ~aais ~support

let plan_key ~options ~aais ~target =
  plan_key_of_support ~options ~aais ~support:(support_of_target target)

let build_device ?(options = default_options) ~aais () =
  let channels = Aais.channels aais in
  let vars = Aais.variables aais in
  let comps = Locality.decompose ~channels ~n_vars:(Array.length vars) in
  let classifications =
    List.map
      (fun comp ->
        match Local_solver.classify ~vars ~channels comp with
        | (Local_solver.Linear _ | Local_solver.Polar _)
          when options.generic_local_solver ->
            Local_solver.Generic
        | cls -> cls)
      comps
  in
  let prepared = prepare_components ~vars ~channels comps classifications in
  {
    aais;
    channels;
    vars;
    generic_local_solver = options.generic_local_solver;
    comps;
    classifications;
    prepared;
    device_key = device_key ~options ~aais;
  }

(* The structure pass of [qturbo.analysis] takes a generic view of the
   system; convert the skeleton rows and [Locality] components. *)
let structure_rows ~index ~cells =
  Array.to_list
    (Array.mapi
       (fun i c ->
         { Qturbo_analysis.Structure.term = Term_index.string_of index i;
           cells = c })
       cells)

let structure_comps comps =
  List.map
    (fun (c : Locality.component) ->
      {
        Qturbo_analysis.Structure.id = c.Locality.id;
        channel_ids = c.Locality.channel_ids;
        var_ids = c.Locality.var_ids;
      })
    comps

(* ------------------------------------------------------------------ *)
(* Plan linting                                                        *)

(* [Plan_lint] (like [Structure]) takes a generic view so the analysis
   library stays independent of this one; convert our types and call
   in. *)

let classification_view (cl : Local_solver.classification) =
  let open Qturbo_analysis.Plan_lint in
  match cl with
  | Local_solver.Const_channels ->
      { name = "const"; class_vars = []; class_channels = [] }
  | Local_solver.Linear { var; slopes } ->
      { name = "linear"; class_vars = [ var ]; class_channels = List.map fst slopes }
  | Local_solver.Polar { amp; phase; cos_channels; sin_channels } ->
      {
        name = "polar";
        class_vars = [ amp; phase ];
        class_channels = List.map fst cos_channels @ List.map fst sin_channels;
      }
  | Local_solver.Fixed_vars ->
      { name = "fixed"; class_vars = []; class_channels = [] }
  | Local_solver.Generic ->
      { name = "generic"; class_vars = []; class_channels = [] }

let prepared_name = function
  | Dynamic p -> classification_name (Local_solver.classification_of p)
  | Fixed _ -> "fixed"

(* last occurrence of "@@" in a key: [Shape.key] joins the device and
   support sections with it, and only the final separator is ours to
   trust (labels inside the device section are free-form text) *)
let last_separator key =
  let rec go found i =
    if i + 1 >= String.length key then found
    else if key.[i] = '@' && key.[i + 1] = '@' then go (Some i) (i + 1)
    else go found (i + 1)
  in
  go None 0

let key_support_of key =
  match last_separator key with
  | None -> None
  | Some i -> (
      let body = String.sub key (i + 2) (String.length key - i - 2) in
      match
        String.split_on_char ',' body
        |> List.filter (fun s -> not (String.equal s ""))
        |> List.map Pauli_string.of_string
      with
      | terms -> Some terms
      | exception _ -> None)

let lint (plan : t) =
  let d = plan.device in
  let index = Linear_system.skeleton_index plan.skeleton in
  let channel_terms =
    (* hash-based dedup: devices carry O(n²) channels whose effect terms
       overlap heavily, and the comparison-sort over the raw concat
       dominates lint time on large devices *)
    let module Tbl = Hashtbl.Make (Pauli_string) in
    let seen = Tbl.create (4 * Array.length d.channels) in
    Array.iter
      (fun ch ->
        List.iter
          (fun (t, _) -> if not (Tbl.mem seen t) then Tbl.add seen t ())
          (Instruction.effect_terms ch))
      d.channels;
    Tbl.fold (fun t () acc -> t :: acc) seen []
  in
  Qturbo_analysis.Plan_lint.check
    {
      Qturbo_analysis.Plan_lint.key = plan.key;
      (* the device section is [d.device_key], rendered from the same
         aais when the device part was built (both the stored key and
         this one descend from it, so corruption of either side still
         mismatches); only the cheap support section is re-rendered *)
      rederived_key = d.device_key ^ "@@" ^ Shape.of_support plan.support;
      support = plan.support;
      key_support = key_support_of plan.key;
      rows = Term_index.strings index;
      cells = Linear_system.skeleton_cells plan.skeleton;
      n_channels = Array.length d.channels;
      n_vars = Array.length d.vars;
      channel_terms;
      comps = structure_comps d.comps;
      classifications = List.map classification_view d.classifications;
      prepared_names = List.map prepared_name d.prepared;
    }

(* Strict-mode gate: fresh builds are linted before anyone can use (or
   cache) them.  [lint_plans := false] is the escape hatch for overhead
   measurement ([bench analysis]) and emergencies. *)
let lint_plans = ref true

(* Re-lint on every cache hit — a debug flag (QTURBO_LINT_CACHE=1),
   since hits are the hot path and plans are immutable. *)
let lint_on_hit =
  ref
    (match Sys.getenv_opt "QTURBO_LINT_CACHE" with
    | Some ("1" | "true" | "yes") -> true
    | _ -> false)

(* ------------------------------------------------------------------ *)
(* Caches                                                              *)

let plan_cache : t Plan_cache.t = Plan_cache.create ~capacity:32
let device_cache : device Plan_cache.t = Plan_cache.create ~capacity:8

let cache_stats () = Plan_cache.stats plan_cache
let cache_per_key () = Plan_cache.per_key plan_cache
let device_cache_stats () = Plan_cache.stats device_cache

let clear_caches () =
  Plan_cache.clear plan_cache;
  Plan_cache.clear device_cache

(* test-only: plant a plan without the [admit] lint gate, so the
   hit-path re-lint can be exercised against a corrupted resident *)
let cache_insert_unchecked (plan : t) =
  (* replace, not add: [Plan_cache.add] keeps an existing resident on a
     key collision, which would silently discard the planted plan *)
  Plan_cache.remove plan_cache plan.key;
  Plan_cache.add plan_cache plan.key plan

let obtain_device ~options ~aais =
  if not options.plan_cache then build_device ~options ~aais ()
  else
    let key = device_key ~options ~aais in
    match Plan_cache.find device_cache key with
    | Some d -> d
    | None ->
        let d = build_device ~options ~aais () in
        Plan_cache.add device_cache key d;
        d

let build ?(options = default_options) ?device ~aais ~target_shape () =
  !stage_hook "plan-build";
  let t0 = Qturbo_util.Clock.now () in
  let device =
    match device with Some d -> d | None -> obtain_device ~options ~aais
  in
  let skeleton =
    Linear_system.skeleton ~channels:device.channels ~support:target_shape
  in
  let structure_diags =
    Qturbo_analysis.Structure.check ~channels:device.channels
      ~variables:device.vars
      ~rows:
        (structure_rows
           ~index:(Linear_system.skeleton_index skeleton)
           ~cells:(Linear_system.skeleton_cells skeleton))
      ~comps:(structure_comps device.comps)
  in
  let plan =
    {
      device;
      support = target_shape;
      skeleton;
      structure_diags;
      key = plan_key_of_support ~options ~aais ~support:target_shape;
      build_seconds = Qturbo_util.Clock.now () -. t0;
    }
  in
  (if !lint_plans then
     match Diagnostic.errors (lint plan) with
     | [] -> ()
     | errs ->
         Log.err (fun m ->
             m "plan lint rejected a fresh build (%d errors)" (List.length errs));
         raise (Diagnostic.Rejected errs));
  plan

(* Lint-gated cache admission: a plan failing [Plan_lint] is never
   admitted, and the refusal is counted ([Plan_cache.reject]).  Returns
   the lint errors (empty = admitted). *)
let admit (plan : t) =
  match Diagnostic.errors (lint plan) with
  | [] ->
      Plan_cache.add plan_cache plan.key plan;
      []
  | errs ->
      Plan_cache.reject plan_cache plan.key;
      Log.warn (fun m ->
          m "plan lint refused cache admission (%d errors)" (List.length errs));
      errs

(* ------------------------------------------------------------------ *)
(* Persistent plan store                                               *)

module Plan_store = Qturbo_store.Plan_store

(* Marshaled closures are only decodable by the exact binary that wrote
   them (the runtime embeds code digests), so the store-format version
   bakes in the executable's digest: a rebuilt binary invalidates every
   prior entry as a counted version mismatch up front instead of a
   decode failure later. *)
let store_version =
  let v = lazy (
    let exe_digest =
      try Digest.to_hex (Digest.file Sys.executable_name)
      with Sys_error _ -> "unknown-executable"
    in
    "qturbo-plan/1 " ^ exe_digest)
  in
  fun () -> Lazy.force v

let store : Plan_store.t option ref = ref None

let enable_store ~dir =
  store := Some (Plan_store.open_store ~version:(store_version ()) ~dir)

let disable_store () = store := None
let store_dir () = Option.map Plan_store.dir !store
let store_stats () = Option.map Plan_store.stats !store

(* A payload that passed the store's byte-level checks (magic, version,
   key, checksum) can still be semantic garbage — a hand-edited entry
   with a recomputed checksum.  The decode is exception-guarded and
   every deserialized plan passes the full [Plan_lint] gate before it
   is served; this is the "deserialized plan store" case the
   [lint_on_hit] doc anticipates, except here the lint is
   unconditional.  Any failure demotes the store hit to a corrupt miss
   and the caller rebuilds. *)
let store_fetch ~key =
  match !store with
  | None -> None
  | Some st -> (
      match Plan_store.load st ~key with
      | None -> None
      | Some payload -> (
          match (Marshal.from_string payload 0 : t) with
          | exception _ ->
              Plan_store.reclassify_corrupt st;
              Log.warn (fun m ->
                  m "plan store entry failed to decode; rebuilding");
              None
          | p ->
              if p.key <> key || Diagnostic.has_errors (lint p) then begin
                Plan_store.reclassify_corrupt st;
                Log.warn (fun m ->
                    m "plan store entry failed the lint gate; rebuilding");
                None
              end
              else Some p))

let store_persist (p : t) =
  match !store with
  | None -> ()
  | Some st -> (
      match Marshal.to_string p [ Marshal.Closures ] with
      | payload -> ignore (Plan_store.save st ~key:p.key ~payload : bool)
      | exception _ ->
          Log.warn (fun m -> m "plan could not be marshaled for the store"))

(* Fetch-or-build a plan for an explicit support.  Returns the plan and
   where it came from: memory LRU, then on-disk store, then a fresh
   build (which back-fills both). *)
let obtain_for_support ~options ~aais ~support =
  if not options.plan_cache then
    (build ~options ~aais ~target_shape:support (), Built)
  else
    let key = plan_key_of_support ~options ~aais ~support in
    let rebuild () =
      let p = build ~options ~aais ~target_shape:support () in
      (* no [admit] here: when the strict gate is on, [build] just
         linted this plan (and raised on errors), so re-linting at
         admission would double the gate cost on every fresh build;
         when the gate is off, the caller asked for no linting at all *)
      Plan_cache.add plan_cache p.key p;
      store_persist p;
      (p, Built)
    in
    match Plan_cache.find plan_cache key with
    | Some p ->
        if !lint_on_hit && Diagnostic.has_errors (lint p) then begin
          (* a resident plan that no longer lints is never served: pull
             it, count the rejection, and rebuild from scratch *)
          Plan_cache.reject plan_cache key;
          Plan_cache.remove plan_cache key;
          Log.warn (fun m -> m "plan lint pulled a resident cache entry");
          rebuild ()
        end
        else begin
          !stage_hook "plan-cache-hit";
          (p, Cached)
        end
    | None -> (
        match store_fetch ~key with
        | Some p ->
            !stage_hook "plan-store-hit";
            Plan_cache.add plan_cache p.key p;
            (* the deserialized device part is shareable too: admit it so
               fresh shapes on the same device skip the prepare pass *)
            Plan_cache.add device_cache p.device.device_key p.device;
            (p, Stored)
        | None -> rebuild ())

let obtain ~options ~aais ~target =
  obtain_for_support ~options ~aais ~support:(support_of_target target)

(* ------------------------------------------------------------------ *)
(* Input validation (shared with Td_compiler)                          *)

let validate_t_tar ~who t_tar =
  if not (Float.is_finite t_tar) then
    raise
      (Diagnostic.Rejected
         [
           Diagnostic.make ~code:"QT016" ~severity:Diagnostic.Error
             ~subject:Diagnostic.System
             ~hint:"pass a finite positive evolution time"
             (Printf.sprintf "%s: t_tar must be finite, got %h" who t_tar);
         ]);
  if t_tar <= 0.0 then invalid_arg (who ^ ": t_tar <= 0")

(* ------------------------------------------------------------------ *)
(* The numeric back-end                                                *)

(* Parallel strategy for a component sweep: when one component holds
   most of the channels (the single position component of a Rydberg
   AAIS), spreading components over the pool leaves every domain but
   one idle — run the sweep sequentially so the big component's inner
   parallelism (residual rows, Jacobian entries) gets the pool instead.
   Otherwise parallelize across components, one component per task. *)
let component_domains ~domains comps =
  let sizes = List.map (fun c -> List.length c.Locality.channel_ids) comps in
  let total = List.fold_left ( + ) 0 sizes in
  let largest = List.fold_left Int.max 0 sizes in
  if 2 * largest > total then (1, domains) else (domains, 1)

let solve_prepared_comp ?sup ~alpha ~t_sim ~fixed_domains = function
  | Dynamic p -> (
      match sup with
      | None ->
          let { Local_solver.assignments; eps2 } =
            Local_solver.solve_prepared ~alpha ~t_sim p
          in
          (assignments, eps2, [])
      | Some sup ->
          let { Local_solver.assignments; eps2 }, failures =
            Local_solver.solve_supervised ~sup ~alpha ~t_sim p
          in
          (assignments, eps2, failures))
  | Fixed p -> (
      match sup with
      | None ->
          let { Fixed_solver.assignments; eps2 } =
            Fixed_solver.solve_prepared ~domains:fixed_domains ~alpha ~t_sim p
          in
          (assignments, eps2, [])
      | Some sup ->
          let { Fixed_solver.assignments; eps2 }, failures =
            Fixed_solver.solve_supervised ~domains:fixed_domains ~sup ~alpha
              ~t_sim p
          in
          (assignments, eps2, failures))

(* Run a guarded component sweep.  The supervisor's pool guard raises
   [Expired] the moment the deadline passes (or an injected deadline fault
   fires), which abandons the sweep; the fallback rerun is unguarded, and
   because the deadline has by then expired for every component, each
   supervised solve short-circuits deterministically with a
   [Deadline_expired] record — the same degraded result at any domain
   count. *)
let guarded_sweep ?sup ~site ~comp_domains f prepared =
  let run ~guarded =
    let guard =
      match sup with
      | Some s when guarded -> Some (Supervisor.pool_guard s ~site)
      | _ -> None
    in
    Qturbo_par.Pool.parallel_map_list ?guard ~domains:comp_domains ~chunk:1 f
      prepared
  in
  try run ~guarded:true with Supervisor.Expired -> run ~guarded:false

(* Solve every component at the given evolution time, returning the full
   environment, the per-component residuals, and the per-component failure
   records.  Solves run on the pool (components write disjoint variable
   slots); the assignments are then applied sequentially in component
   order, so the resulting [env] is identical to the sequential sweep. *)
let solve_components ?sup ~vars ~comp_domains ~fixed_domains ~alpha ~t_sim
    prepared =
  let env = Array.map (fun (v : Variable.t) -> v.Variable.init) vars in
  let solved =
    guarded_sweep ?sup ~site:"local-solve" ~comp_domains
      (fun p -> solve_prepared_comp ?sup ~alpha ~t_sim ~fixed_domains p)
      prepared
  in
  let failures = List.concat_map (fun (_, _, fs) -> fs) solved in
  let eps2s =
    List.map
      (fun (assignments, eps2, _) ->
        List.iter (fun (v, x) -> env.(v) <- x) assignments;
        eps2)
      solved
  in
  (env, eps2s, failures)

let alpha_achieved_of_env ~domains ~channels ~env ~t_sim =
  (* a kernel eval is ~10 ns; only very wide channel sets outweigh the
     pool dispatch (same granularity reasoning as Fixed_solver) *)
  let domains = if Array.length channels < 32_768 then 1 else domains in
  Qturbo_par.Pool.parallel_map ~domains
    (fun (c : Instruction.channel) -> Instruction.eval_channel c ~env *. t_sim)
    channels

(* The full numeric back-end: instantiate the right-hand side, run the
   precheck against the instance, the global linear solve, evolution-time
   optimisation, the §5.2 constraint iteration and §6.2 refinement.
   Ported verbatim from the pre-plan [Compiler.compile] body — the float
   operations and their order are unchanged, so results are
   bitwise-identical to the monolithic pipeline. *)
let solve_from ~t0 ~provenance ~options ~strict ?t_max ~plan ~target ~t_tar () =
  validate_t_tar ~who:"Compiler.compile" t_tar;
  let aais = plan.device.aais in
  if Pauli_sum.n_qubits target > aais.Aais.n_qubits then
    invalid_arg "Compiler.compile: target touches qubits outside the AAIS";
  let plan_index = Linear_system.skeleton_index plan.skeleton in
  List.iter
    (fun (s, _) ->
      if
        (not (Pauli_string.is_identity s))
        && Term_index.row_of plan_index s = None
      then
        invalid_arg "Compile_plan.solve: target term outside the plan's shape")
    (Pauli_sum.terms target);
  let solve_t0 = Qturbo_util.Clock.now () in
  let domains = options.domains in
  let warnings = ref [] in
  (* supervision context: deadline (absolute from here), fault spec
     (explicit, else QTURBO_FAULTS), best-effort flag.  [supervise = false]
     bypasses the ladder entirely — the raw seed solver path, kept for
     overhead benchmarking. *)
  let sup =
    if options.supervise then
      Some
        (Supervisor.make ?deadline_seconds:options.deadline_seconds
           ?faults:options.faults ~best_effort:options.best_effort ())
    else None
  in
  let pipeline_failures = ref [] in
  let fault_fires site =
    match sup with
    | None -> None
    | Some s -> Fault.fires (Supervisor.faults s) ~site ~component:(-1)
  in
  let channels = plan.device.channels in
  let vars = plan.device.vars in
  let comps = plan.device.comps in
  (* stage 0: attach the instance to the plan's skeleton, then run the
     static analyzer as a fail-fast precheck — provably-broken inputs
     are rejected before any solver runs.  The structure pass was
     computed once at plan build; only the coefficient-dependent passes
     run per instance. *)
  let ls = Linear_system.instantiate plan.skeleton ~target ~t_tar in
  !stage_hook "precheck";
  let diagnostics =
    Qturbo_analysis.Analysis.static_checks ~aais ~target ~t_tar ?t_max ()
    @ plan.structure_diags
  in
  if strict then Qturbo_analysis.Analysis.check_or_raise diagnostics;
  List.iter
    (fun d ->
      if d.Diagnostic.severity = Diagnostic.Warning then
        warnings := Diagnostic.to_string d :: !warnings)
    diagnostics;
  Log.debug (fun m ->
      m "precheck: %d diagnostics (%d errors)" (List.length diagnostics)
        (List.length (Diagnostic.errors diagnostics)));
  (* stage 1: global linear system over synthesized variables *)
  !stage_hook "linear-solve";
  let lin =
    if options.dense_linear_solver then Linear_system.solve_dense ls
    else Linear_system.solve ls
  in
  let alpha = lin.Qturbo_linalg.Sparse_solve.x in
  let eps1 = lin.Qturbo_linalg.Sparse_solve.residual_l1 in
  Log.debug (fun m ->
      let st = lin.Qturbo_linalg.Sparse_solve.stats in
      m "linear system: %d rows, %d channels, greedy %d / dense %d, eps1 %.3g"
        (Term_index.count ls.Linear_system.index)
        (Array.length channels)
        st.Qturbo_linalg.Sparse_solve.greedy_solved
        st.Qturbo_linalg.Sparse_solve.dense_solved eps1);
  (* stage 2: classification and prepared contexts come off the plan *)
  let classifications = plan.device.classifications in
  let prepared = plan.device.prepared in
  let comp_domains, fixed_domains = component_domains ~domains comps in
  (* stage 3: evolution-time optimisation (bottleneck component) *)
  let min_time_results =
    guarded_sweep ?sup ~site:"min-time" ~comp_domains
      (function
        | Dynamic p -> (
            match sup with
            | None -> (Local_solver.min_time_prepared ~alpha p, [])
            | Some sup -> Local_solver.min_time_supervised ~sup ~alpha p)
        | Fixed _ -> (0.0, []))
      prepared
  in
  let min_times = List.map fst min_time_results in
  pipeline_failures :=
    !pipeline_failures @ List.concat_map snd min_time_results;
  let bottleneck = List.fold_left Float.max 0.0 min_times in
  Log.debug (fun m ->
      m "locality: %d components, bottleneck evolution time %.4g"
        (List.length comps) bottleneck);
  if bottleneck = infinity then
    warnings := "some component is infeasible at any evolution time" :: !warnings;
  let t_base =
    if bottleneck = infinity || bottleneck = 0.0 then options.time_floor
    else Float.max options.time_floor bottleneck
  in
  let t_start = if options.time_opt then t_base else t_base *. options.no_opt_padding in
  (* stage 4: solve localized systems, iterating T upward while the
     runtime-fixed layout violates device geometry (paper §5.2).  The
     retry loop is hard-bounded: exhausting [max_constraint_iters]
     produces a classified [Position_retry_exhausted] failure (and the
     best layout found), never an unbounded spin. *)
  !stage_hook "local-solve";
  let retry_fault = fault_fires "constraint-loop" = Some Fault.Retry in
  let rec attempt t iter =
    let env, eps2s, solve_failures =
      solve_components ?sup ~vars ~comp_domains ~fixed_domains ~alpha ~t_sim:t
        prepared
    in
    let violations =
      if retry_fault then
        [ "injected fault: constraint-loop=retry forces a violation" ]
      else aais.Aais.check_fixed env
    in
    let expired =
      match sup with
      | None -> false
      | Some s -> Supervisor.site_expired s ~site:"constraint-loop" ~component:(-1)
    in
    if violations = [] || iter >= options.max_constraint_iters || expired
    then begin
      if violations <> [] then begin
        let reason =
          if iter >= options.max_constraint_iters then
            Printf.sprintf
              "layout constraints unresolved after %d iterations: %s" iter
              (String.concat "; " violations)
          else
            Printf.sprintf
              "deadline expired with layout constraints unresolved after %d \
               iterations: %s"
              iter
              (String.concat "; " violations)
        in
        warnings := reason :: !warnings;
        pipeline_failures :=
          !pipeline_failures
          @ [
              Failure.make ~component:(-1) ~site:"constraint-loop" ~stage:""
                ~fatal:false
                ~class_:
                  (if iter >= options.max_constraint_iters then
                     Failure.Position_retry_exhausted
                   else Failure.Deadline_expired)
                reason;
            ]
      end;
      (t, env, eps2s, solve_failures, iter)
    end
    else attempt (t *. options.dt_factor) (iter + 1)
  in
  let t_sim, env, eps2s, solve_failures, constraint_iterations =
    attempt t_start 0
  in
  Log.debug (fun m ->
      m "localized systems solved at T = %.4g after %d constraint iterations"
        t_sim constraint_iterations);
  (* stage 5: iterative refinement (§6.2) — re-solve the runtime-dynamic
     channels against the residual left by the achieved fixed channels *)
  let achieved = alpha_achieved_of_env ~domains ~channels ~env ~t_sim in
  let refine_expired =
    match sup with
    | None -> false
    | Some s -> Supervisor.site_expired s ~site:"refine" ~component:(-1)
  in
  if options.refine && refine_expired then
    pipeline_failures :=
      !pipeline_failures
      @ [
          Failure.make ~component:(-1) ~site:"refine" ~stage:"" ~fatal:false
            ~class_:Failure.Deadline_expired
            "deadline expired before refinement; returning unrefined result";
        ];
  let refine_failures = ref [] in
  let env, eps2s =
    if (not options.refine) || refine_expired then (env, eps2s)
    else begin
      let fixed_cid = Array.make (Array.length channels) false in
      List.iter2
        (fun comp cls ->
          match cls with
          | Local_solver.Fixed_vars ->
              List.iter
                (fun cid -> fixed_cid.(cid) <- true)
                comp.Locality.channel_ids
          | Local_solver.Const_channels | Local_solver.Linear _
          | Local_solver.Polar _ | Local_solver.Generic ->
              ())
        comps classifications;
      (* residual RHS: move the achieved fixed-channel contributions over *)
      let rows = Array.of_list (Linear_system.rows ls) in
      let adjusted_rows =
        Array.to_list
          (Array.map
             (fun { Qturbo_linalg.Sparse_solve.cells; rhs } ->
               let fixed_part =
                 List.fold_left
                   (fun acc (cid, coeff) ->
                     if fixed_cid.(cid) then acc +. (coeff *. achieved.(cid))
                     else acc)
                   0.0 cells
               in
               {
                 Qturbo_linalg.Sparse_solve.cells =
                   List.filter (fun (cid, _) -> not fixed_cid.(cid)) cells;
                 rhs = rhs -. fixed_part;
               })
             rows)
      in
      let refined =
        Qturbo_linalg.Sparse_solve.solve ~ncols:(Array.length channels)
          adjusted_rows
      in
      let alpha_refined = refined.Qturbo_linalg.Sparse_solve.x in
      (* keep the fixed channels' original targets for eps accounting *)
      Array.iteri
        (fun cid is_fixed -> if is_fixed then alpha_refined.(cid) <- alpha.(cid))
        fixed_cid;
      (* re-solve only the dynamic components at the same T; solves run
         on the pool, assignments apply in component order as above *)
      let env = Array.copy env in
      let resolved =
        guarded_sweep ?sup ~site:"refine" ~comp_domains
          (fun (comp, p) ->
            match p with
            | Fixed _ ->
                (* unchanged: recompute its eps2 against original targets *)
                ( [],
                  List.fold_left
                    (fun acc cid ->
                      acc +. Float.abs (achieved.(cid) -. alpha.(cid)))
                    0.0 comp.Locality.channel_ids,
                  [] )
            | Dynamic p -> (
                match sup with
                | None ->
                    let { Local_solver.assignments; eps2 } =
                      Local_solver.solve_prepared ~alpha:alpha_refined ~t_sim p
                    in
                    (assignments, eps2, [])
                | Some sup ->
                    let { Local_solver.assignments; eps2 }, failures =
                      Local_solver.solve_supervised ~sup ~alpha:alpha_refined
                        ~t_sim p
                    in
                    (assignments, eps2, failures)))
          (List.combine comps prepared)
      in
      refine_failures := List.concat_map (fun (_, _, fs) -> fs) resolved;
      let eps2s =
        List.map
          (fun (assignments, eps2, _) ->
            List.iter (fun (v, x) -> env.(v) <- x) assignments;
            eps2)
          resolved
      in
      (env, eps2s)
    end
  in
  let alpha_achieved = alpha_achieved_of_env ~domains ~channels ~env ~t_sim in
  let error_l1 = Linear_system.residual_l1 ls ~alpha:alpha_achieved in
  let b_norm =
    Array.fold_left (fun acc b -> acc +. Float.abs b) 0.0 ls.Linear_system.b_tar
  in
  let eps2_total = List.fold_left ( +. ) 0.0 eps2s in
  let components =
    List.map2
      (fun (comp : Locality.component) (cls, (tmin, eps2)) ->
        {
          classification = classification_name cls;
          channels = List.length comp.Locality.channel_ids;
          variables = List.length comp.Locality.var_ids;
          min_time = tmin;
          eps2;
        })
      comps
      (List.map2
         (fun cls pair -> (cls, pair))
         classifications
         (List.combine min_times eps2s))
  in
  (* failures, in pipeline order: evolution-time search and
     pipeline-level records (constraint loop, refinement expiry), then
     the final constraint-iteration solve sweep (component order — the
     pool collects by index), then refinement re-solves *)
  let failures = !pipeline_failures @ solve_failures @ !refine_failures in
  let degraded = List.exists (fun f -> f.Failure.fatal) failures in
  let best_effort =
    match sup with Some s -> Supervisor.best_effort s | None -> false
  in
  if degraded && not best_effort then raise (Failure.Failed failures);
  let now = Qturbo_util.Clock.now () in
  let cache = Plan_cache.stats plan_cache in
  let kstats =
    if options.plan_cache then Plan_cache.key_stats plan_cache plan.key
    else Plan_cache.zero_key_stats
  in
  {
    env;
    t_sim;
    alpha_target = alpha;
    alpha_achieved;
    error_l1;
    relative_error =
      (if b_norm > 0.0 then error_l1 /. b_norm *. 100.0 else 0.0);
    eps1;
    eps2_total;
    theorem1_bound = (Linear_system.norm1 ls *. eps2_total) +. eps1;
    components;
    constraint_iterations;
    compile_seconds = now -. t0;
    warnings = List.rev !warnings;
    diagnostics;
    failures;
    degraded;
    plan =
      {
        cache_enabled = options.plan_cache;
        cache_hit = provenance = Cached;
        store_enabled = Option.is_some !store;
        store_hit = provenance = Stored;
        cache_hits = cache.Plan_cache.hits;
        cache_misses = cache.Plan_cache.misses;
        cache_discarded = cache.Plan_cache.discarded;
        key_hits = kstats.Plan_cache.key_hits;
        key_misses = kstats.Plan_cache.key_misses;
        key_evictions = kstats.Plan_cache.key_evictions;
        build_seconds =
          (* a store hit skipped the front end too; the build time baked
             into the deserialized plan belongs to the writer process *)
          (match provenance with Built -> plan.build_seconds | _ -> 0.0);
        solve_seconds = now -. solve_t0;
      };
  }

let solve ?(options = default_options) ?(strict = true) ?t_max
    ?(provenance = Built) ~plan ~coeffs ~t_tar () =
  solve_from ~t0:(Qturbo_util.Clock.now ()) ~provenance ~options ~strict ?t_max
    ~plan ~target:coeffs ~t_tar ()

let compile ?(options = default_options) ?(strict = true) ?t_max ~aais ~target
    ~t_tar () =
  validate_t_tar ~who:"Compiler.compile" t_tar;
  if Pauli_sum.n_qubits target > aais.Aais.n_qubits then
    invalid_arg "Compiler.compile: target touches qubits outside the AAIS";
  let t0 = Qturbo_util.Clock.now () in
  let plan, provenance = obtain ~options ~aais ~target in
  solve_from ~t0 ~provenance ~options ~strict ?t_max ~plan ~target ~t_tar ()
