(** Compilation of time-dependent targets (paper §5.3).

    The driven Hamiltonian is discretized into piecewise-constant segments
    (midpoint rule).  Runtime-dynamic variables may change between
    segments, but runtime-fixed variables (atom positions) must be shared:
    the solver picks the segment demanding the largest fixed-channel
    amplitude as the {e binding segment}, solves the layout against it,
    and stretches every other segment's evolution time so its (now
    over-strong) fixed amplitudes integrate to exactly the required
    [B] — lowering the dynamic amplitudes, which always remains within
    bounds (paper's argument at the end of §5.3). *)

type segment_result = {
  env : float array;
  duration : float;  (** compiled duration of this segment (µs) *)
  error_l1 : float;
  eps1 : float;
}

type result = {
  segments : segment_result list;
  t_sim : float;  (** total compiled execution time *)
  error_l1 : float;  (** summed over segments *)
  relative_error : float;  (** percent, against the summed [‖B_tar‖₁] *)
  binding_segment : int;  (** index of the segment that fixed the layout *)
  compile_seconds : float;
  warnings : string list;
  diagnostics : Qturbo_analysis.Diagnostic.t list;
      (** static-analyzer findings over all discretized segments,
          deduplicated by (code, subject) *)
  failures : Qturbo_resilience.Failure.t list;
      (** classified solver failures and recoveries collected by the
          resilience supervisor, in pipeline order *)
  degraded : bool;
      (** true iff some failure is fatal (best-effort compiles only;
          strict compiles raise instead) *)
  plan_shapes : int;
      (** distinct structural shapes among the discretized segments —
          always 1: every segment compiles against the union support of
          the whole discretization, so per-segment coefficient
          cancellations (the mis-chain K ≡ 2 mod 4 quirk) can no longer
          fork a second shape *)
  plan_builds : int;
      (** structural front-ends actually built by this compile; [0]
          when every shape was already resident in the process-wide
          plan cache — a sweep over re-discretized models pays the
          front-end once for the whole sweep *)
}

val compile :
  ?options:Compiler.options ->
  ?strict:bool ->
  ?t_max:float ->
  aais:Qturbo_aais.Aais.t ->
  model:Qturbo_models.Model.t ->
  t_tar:float ->
  segments:int ->
  unit ->
  result
(** Works for static models too (each segment then sees the same
    Hamiltonian).  Raises [Invalid_argument] on finite nonpositive
    [t_tar]; a non-finite [t_tar] or [segments <= 0] raises
    {!Qturbo_analysis.Diagnostic.Rejected} with a structured [QT016]
    diagnostic instead of an unclassified exception.

    [~segments:1] delegates to the staged time-independent pipeline
    ({!Compile_plan.compile}) — a single-segment compile is
    bitwise-identical to {!Compiler.compile} of the discretized
    Hamiltonian.  With more segments, the target-independent plan
    artifacts (locality decomposition, classifications — including the
    [generic_local_solver] override — and prepared solver contexts) are
    shared across all segments, and segments of equal shape share one
    linear-system skeleton.

    Every discretized segment Hamiltonian runs through the pre-solve
    static analyzer first; with [strict] (the default) error-severity
    diagnostics raise {!Qturbo_analysis.Diagnostic.Rejected} before any
    solver runs.

    With [options.supervise] (the default), the binding-layout and
    per-segment solves run under the resilience escalation ladder; if a
    component exhausts every stage the compile raises
    {!Qturbo_resilience.Failure.Failed} unless [options.best_effort] is
    set, in which case the degraded result is returned with the
    classified records on [result.failures]. *)
