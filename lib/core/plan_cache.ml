type stats = {
  hits : int;
  misses : int;
  evictions : int;
  size : int;
  capacity : int;
}

type 'a entry = { value : 'a; mutable last_used : int }

type 'a t = {
  capacity : int;
  tbl : (string, 'a entry) Hashtbl.t;
  lock : Mutex.t;
  mutable tick : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

let create ~capacity =
  if capacity < 1 then invalid_arg "Plan_cache.create: capacity < 1";
  {
    capacity;
    tbl = Hashtbl.create (2 * capacity);
    lock = Mutex.create ();
    tick = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
  }

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let find t key =
  locked t (fun () ->
      match Hashtbl.find_opt t.tbl key with
      | Some e ->
          t.tick <- t.tick + 1;
          e.last_used <- t.tick;
          t.hits <- t.hits + 1;
          Some e.value
      | None ->
          t.misses <- t.misses + 1;
          None)

(* Evict the least-recently-used entry.  Capacities are small (tens),
   so a linear scan beats maintaining an intrusive list. *)
let evict_lru t =
  let victim = ref None in
  Hashtbl.iter
    (fun key e ->
      match !victim with
      | Some (_, age) when age <= e.last_used -> ()
      | _ -> victim := Some (key, e.last_used))
    t.tbl;
  match !victim with
  | Some (key, _) ->
      Hashtbl.remove t.tbl key;
      t.evictions <- t.evictions + 1
  | None -> ()

let add t key value =
  locked t (fun () ->
      t.tick <- t.tick + 1;
      match Hashtbl.find_opt t.tbl key with
      | Some e ->
          (* plans for equal keys are interchangeable; keep the resident
             one (it may already be shared) and just refresh its age *)
          e.last_used <- t.tick
      | None ->
          if Hashtbl.length t.tbl >= t.capacity then evict_lru t;
          Hashtbl.add t.tbl key { value; last_used = t.tick })

let clear t =
  locked t (fun () ->
      Hashtbl.reset t.tbl;
      t.tick <- 0;
      t.hits <- 0;
      t.misses <- 0;
      t.evictions <- 0)

let stats t =
  locked t (fun () ->
      {
        hits = t.hits;
        misses = t.misses;
        evictions = t.evictions;
        size = Hashtbl.length t.tbl;
        capacity = t.capacity;
      })
