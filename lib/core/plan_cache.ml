type stats = {
  hits : int;
  misses : int;
  evictions : int;
  discarded : int;
  rejected : int;
  size : int;
  capacity : int;
}

type key_stats = {
  key_hits : int;
  key_misses : int;
  key_evictions : int;
  key_discarded : int;
  key_rejected : int;
}

let zero_key_stats =
  {
    key_hits = 0;
    key_misses = 0;
    key_evictions = 0;
    key_discarded = 0;
    key_rejected = 0;
  }

type 'a entry = { value : 'a; mutable last_used : int }

(* Mutable per-key counter cell.  Cells survive eviction of their entry
   (telemetry is about keys, not resident values) and are only dropped
   by [clear]; the population is bounded by the number of distinct
   structural shapes a process compiles, which is tiny. *)
type kcell = {
  mutable k_hits : int;
  mutable k_misses : int;
  mutable k_evictions : int;
  mutable k_discarded : int;
  mutable k_rejected : int;
}

type 'a t = {
  capacity : int;
  tbl : (string, 'a entry) Hashtbl.t;
  keys : (string, kcell) Hashtbl.t;
  lock : Mutex.t;
  mutable tick : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable discarded : int;
  mutable rejected : int;
}

let create ~capacity =
  if capacity < 1 then invalid_arg "Plan_cache.create: capacity < 1";
  {
    capacity;
    tbl = Hashtbl.create (2 * capacity);
    keys = Hashtbl.create (4 * capacity);
    lock = Mutex.create ();
    tick = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
    discarded = 0;
    rejected = 0;
  }

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

(* call under the lock *)
let kcell t key =
  match Hashtbl.find_opt t.keys key with
  | Some c -> c
  | None ->
      let c =
        {
          k_hits = 0;
          k_misses = 0;
          k_evictions = 0;
          k_discarded = 0;
          k_rejected = 0;
        }
      in
      Hashtbl.add t.keys key c;
      c

let find t key =
  locked t (fun () ->
      match Hashtbl.find_opt t.tbl key with
      | Some e ->
          t.tick <- t.tick + 1;
          e.last_used <- t.tick;
          t.hits <- t.hits + 1;
          let c = kcell t key in
          c.k_hits <- c.k_hits + 1;
          Some e.value
      | None ->
          t.misses <- t.misses + 1;
          let c = kcell t key in
          c.k_misses <- c.k_misses + 1;
          None)

(* Evict the least-recently-used entry.  Capacities are small (tens),
   so a linear scan beats maintaining an intrusive list. *)
let evict_lru t =
  let victim = ref None in
  Hashtbl.iter
    (fun key e ->
      match !victim with
      | Some (_, age) when age <= e.last_used -> ()
      | _ -> victim := Some (key, e.last_used))
    t.tbl;
  match !victim with
  | Some (key, _) ->
      Hashtbl.remove t.tbl key;
      t.evictions <- t.evictions + 1;
      let c = kcell t key in
      c.k_evictions <- c.k_evictions + 1
  | None -> ()

let add t key value =
  locked t (fun () ->
      t.tick <- t.tick + 1;
      match Hashtbl.find_opt t.tbl key with
      | Some e ->
          (* plans for equal keys are interchangeable; keep the resident
             one (it may already be shared) and just refresh its age.
             The fresh build is dropped — count it, so the telemetry
             reports the duplicated front-end work honestly instead of
             silently under-reporting it (concurrent double-builds land
             here). *)
          e.last_used <- t.tick;
          t.discarded <- t.discarded + 1;
          let c = kcell t key in
          c.k_discarded <- c.k_discarded + 1
      | None ->
          if Hashtbl.length t.tbl >= t.capacity then evict_lru t;
          Hashtbl.add t.tbl key { value; last_used = t.tick })

(* A lint rejection: the value was refused admission (or pulled after a
   failed re-lint on hit).  Counted separately from evictions — an
   eviction is capacity pressure, a rejection is an integrity failure. *)
let reject t key =
  locked t (fun () ->
      t.rejected <- t.rejected + 1;
      let c = kcell t key in
      c.k_rejected <- c.k_rejected + 1)

let remove t key = locked t (fun () -> Hashtbl.remove t.tbl key)

let clear t =
  locked t (fun () ->
      Hashtbl.reset t.tbl;
      Hashtbl.reset t.keys;
      t.tick <- 0;
      t.hits <- 0;
      t.misses <- 0;
      t.evictions <- 0;
      t.discarded <- 0;
      t.rejected <- 0)

let stats t =
  locked t (fun () ->
      {
        hits = t.hits;
        misses = t.misses;
        evictions = t.evictions;
        discarded = t.discarded;
        rejected = t.rejected;
        size = Hashtbl.length t.tbl;
        capacity = t.capacity;
      })

let key_stats_of_cell (c : kcell) =
  {
    key_hits = c.k_hits;
    key_misses = c.k_misses;
    key_evictions = c.k_evictions;
    key_discarded = c.k_discarded;
    key_rejected = c.k_rejected;
  }

let key_stats t key =
  locked t (fun () ->
      match Hashtbl.find_opt t.keys key with
      | Some c -> key_stats_of_cell c
      | None -> zero_key_stats)

let per_key t =
  locked t (fun () ->
      Hashtbl.fold (fun key c acc -> (key, key_stats_of_cell c) :: acc) t.keys []
      |> List.sort (fun (a, _) (b, _) -> String.compare a b))
