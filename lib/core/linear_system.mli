(** The global linear equation system over synthesized variables
    (paper §4.1, Eq. 5).

    Unknown [α_k] is channel [k]'s synthesized variable — its amplitude
    expression times the evolution time.  Row [i] demands
    [Σ_k M_{ik} α_k = B_tar_i] where [B_tar_i] is the target coefficient
    of Pauli term [i] times [T_tar] (zero for terms the target does not
    contain). *)

type t = {
  index : Term_index.t;
  cells : (int * float) list array;  (** per-row [(channel, coeff)] *)
  b_tar : float array;
  n_channels : int;
  csr : Qturbo_linalg.Csr.t;
      (** The same matrix in compressed sparse row form — stored entry
          order matches [cells] exactly ({!Qturbo_linalg.Csr.of_row_lists}
          packs verbatim), so iterating either representation
          accumulates floats in the same sequence.  Shared with the
          skeleton; do not mutate. *)
}

type skeleton
(** The coefficient-free part of the system: the term index and the
    matrix cells.  Both depend only on the channels and the target's
    {e shape} (which Pauli terms it touches), so a skeleton is built
    once per shape and shared — across a parameter sweep, across the
    segments of a time-dependent compile — while [b_tar] is
    re-instantiated per coefficient instance. *)

val skeleton :
  channels:Qturbo_aais.Instruction.channel array ->
  support:Qturbo_pauli.Pauli_string.t list ->
  skeleton
(** Build the index and cells from a target shape
    ({!Qturbo_aais.Shape.support_of_target}). *)

val instantiate :
  skeleton -> target:Qturbo_pauli.Pauli_sum.t -> t_tar:float -> t
(** Attach the instance-specific right-hand side
    [b_tar_i = coeff_i · t_tar].  The index and cells are shared with
    the skeleton (they are never mutated); only [b_tar] is fresh.
    [target] must have the shape the skeleton was built from — terms
    outside the skeleton's row set are silently ignored, which is why
    [Compile_plan] keys plans by shape. *)

val skeleton_index : skeleton -> Term_index.t
(** The shared term index (row numbering) of a skeleton. *)

val skeleton_cells : skeleton -> (int * float) list array
(** The shared matrix cells of a skeleton — do not mutate. *)

val skeleton_csr : skeleton -> Qturbo_linalg.Csr.t
(** The CSR form of the skeleton matrix (see {!t.csr}) — do not
    mutate. *)

val csr : t -> Qturbo_linalg.Csr.t
(** The CSR form of the system matrix (the [csr] field). *)

val build :
  channels:Qturbo_aais.Instruction.channel array ->
  target:Qturbo_pauli.Pauli_sum.t ->
  t_tar:float ->
  t
(** [instantiate (skeleton ...) ...] in one step — bitwise-identical
    cells and [b_tar] to the historical one-shot builder. *)

val solve : t -> Qturbo_linalg.Sparse_solve.result
(** Greedy structural pass + dense fallback (see {!Qturbo_linalg.Sparse_solve}). *)

val solve_dense : t -> Qturbo_linalg.Sparse_solve.result
(** Dense-only reference path, for the linear-solver ablation. *)

val b_of_alpha : t -> alpha:float array -> float array
(** [M·α] — the achieved coefficient vector [B_sim]. *)

val residual_l1 : t -> alpha:float array -> float
(** [‖M·α − B_tar‖₁], the compilation error metric (paper Eq. 9). *)

val norm1 : t -> float
(** [‖M‖₁], the constant of Theorem 1's error bound. *)

val rows : t -> Qturbo_linalg.Sparse_solve.row list
