(** The global linear equation system over synthesized variables
    (paper §4.1, Eq. 5).

    Unknown [α_k] is channel [k]'s synthesized variable — its amplitude
    expression times the evolution time.  Row [i] demands
    [Σ_k M_{ik} α_k = B_tar_i] where [B_tar_i] is the target coefficient
    of Pauli term [i] times [T_tar] (zero for terms the target does not
    contain). *)

type t = {
  index : Term_index.t;
  cells : (int * float) list array;  (** per-row [(channel, coeff)] *)
  b_tar : float array;
  n_channels : int;
}

val build :
  channels:Qturbo_aais.Instruction.channel array ->
  target:Qturbo_pauli.Pauli_sum.t ->
  t_tar:float ->
  t

val solve : t -> Qturbo_linalg.Sparse_solve.result
(** Greedy structural pass + dense fallback (see {!Qturbo_linalg.Sparse_solve}). *)

val solve_dense : t -> Qturbo_linalg.Sparse_solve.result
(** Dense-only reference path, for the linear-solver ablation. *)

val b_of_alpha : t -> alpha:float array -> float array
(** [M·α] — the achieved coefficient vector [B_sim]. *)

val residual_l1 : t -> alpha:float array -> float
(** [‖M·α − B_tar‖₁], the compilation error metric (paper Eq. 9). *)

val norm1 : t -> float
(** [‖M‖₁], the constant of Theorem 1's error bound. *)

val rows : t -> Qturbo_linalg.Sparse_solve.row list
