open Qturbo_pauli
open Qturbo_graph

type t = int array

let identity ~n = Array.init n Fun.id

let is_permutation a =
  let n = Array.length a in
  let seen = Array.make n false in
  Array.for_all
    (fun x ->
      if x < 0 || x >= n || seen.(x) then false
      else begin
        seen.(x) <- true;
        true
      end)
    a

let of_array a =
  if not (is_permutation a) then invalid_arg "Mapping.of_array: not a permutation";
  Array.copy a

let inverse m =
  let inv = Array.make (Array.length m) 0 in
  Array.iteri (fun i j -> inv.(j) <- i) m;
  inv

let coupling_graph ~target ~n =
  let g = Graph.create n in
  List.iter
    (fun (s, _) ->
      match Pauli_string.support s with
      | [ i; j ] -> Graph.add_edge g i j
      | [] | [ _ ] | _ :: _ :: _ -> ())
    (Pauli_sum.terms target);
  g

let greedy_chain ~target ~n =
  let g = coupling_graph ~target ~n in
  (* start from a minimum-degree vertex: the end of a chain if there is
     one, an arbitrary vertex of a cycle otherwise *)
  let start = ref 0 in
  for v = 1 to n - 1 do
    if Graph.degree g v < Graph.degree g !start then start := v
  done;
  let order = Graph.bfs_order g ~start:!start in
  let placed = Array.make n false in
  let map = Array.make n (-1) in
  let next = ref 0 in
  let place q =
    if not placed.(q) then begin
      placed.(q) <- true;
      map.(q) <- !next;
      incr next
    end
  in
  List.iter place order;
  (* disconnected leftovers in index order *)
  for q = 0 to n - 1 do
    place q
  done;
  map

let chain_cost ~target m =
  List.fold_left
    (fun acc (s, c) ->
      match Pauli_string.support s with
      | [ i; j ] ->
          acc +. (Float.abs c *. float_of_int (abs (m.(i) - m.(j)) - 1))
      | [] | [ _ ] | _ :: _ :: _ -> acc)
    0.0
    (Pauli_sum.terms target)

let anneal ~rng ~target ~n ?iterations ?init () =
  let iterations =
    match iterations with Some k -> k | None -> 200 * Int.max 1 n
  in
  let m =
    match init with
    | Some m0 ->
        if not (is_permutation m0) then
          invalid_arg "Mapping.anneal: init is not a permutation";
        Array.copy m0
    | None -> greedy_chain ~target ~n
  in
  if n < 2 then m
  else begin
    let best = Array.copy m in
    let best_cost = ref (chain_cost ~target m) in
    let cost = ref !best_cost in
    (* geometric cooling from the scale of one typical coupling *)
    let t0 = Float.max 1e-3 (Pauli_sum.norm1 target /. float_of_int n) in
    let cooling = 0.999 in
    let temp = ref t0 in
    for _ = 1 to iterations do
      let a = Qturbo_util.Rng.int rng ~bound:n in
      let b = Qturbo_util.Rng.int rng ~bound:n in
      if a <> b then begin
        let swap () =
          let tmp = m.(a) in
          m.(a) <- m.(b);
          m.(b) <- tmp
        in
        swap ();
        let c' = chain_cost ~target m in
        let accept =
          c' <= !cost
          || Qturbo_util.Rng.float rng < exp ((!cost -. c') /. !temp)
        in
        if accept then begin
          cost := c';
          if c' < !best_cost then begin
            best_cost := c';
            Array.blit m 0 best 0 n
          end
        end
        else swap ()
      end;
      temp := Float.max 1e-9 (!temp *. cooling)
    done;
    best
  end

let apply m h =
  let relabel s =
    Pauli_string.of_list
      (List.map (fun (site, op) -> (m.(site), op)) (Pauli_string.to_list s))
  in
  Pauli_sum.of_list
    (List.map (fun (s, c) -> (relabel s, c)) (Pauli_sum.terms h))
