open Qturbo_aais

let per_atom (ryd : Rydberg.t) vars env =
  let k i =
    match ryd.Rydberg.spec.Device.control with
    | Device.Global -> 0
    | Device.Local -> i
  in
  Array.init ryd.Rydberg.n (fun i -> env.(vars.(k i).Variable.id))

let rydberg_segment ryd env duration =
  {
    Pulse.duration;
    omega = per_atom ryd ryd.Rydberg.omegas env;
    phi = per_atom ryd ryd.Rydberg.phis env;
    delta = per_atom ryd ryd.Rydberg.deltas env;
  }

let rydberg_pulse ryd ~env ~t_sim =
  {
    Pulse.spec = ryd.Rydberg.spec;
    positions = Rydberg.positions ryd ~env;
    segments = [ rydberg_segment ryd env t_sim ];
  }

let rydberg_pulse_segments ryd ~segments =
  match segments with
  | [] -> invalid_arg "Extract.rydberg_pulse_segments: no segments"
  | (env0, _) :: _ ->
      {
        Pulse.spec = ryd.Rydberg.spec;
        positions = Rydberg.positions ryd ~env:env0;
        segments =
          List.map (fun (env, tau) -> rydberg_segment ryd env tau) segments;
      }

let heisenberg_pulse (heis : Heisenberg.t) ~env ~t_sim : Pulse.heisenberg =
  let h = Heisenberg.hamiltonian heis ~env in
  {
    Pulse.spec = heis.Heisenberg.spec;
    segments =
      [ { Pulse.duration = t_sim; amplitudes = Qturbo_pauli.Pauli_sum.terms h } ];
  }

let iontrap_pulse (trap : Iontrap.t) ~env ~t_sim : Pulse.iontrap =
  let value (v : Variable.t) = env.(v.Variable.id) in
  {
    Pulse.spec = trap.Iontrap.spec;
    segments =
      [
        {
          Pulse.duration = t_sim;
          omega = Array.map value trap.Iontrap.omegas;
          phi = Array.map value trap.Iontrap.phis;
          mu = Array.map value trap.Iontrap.mus;
          couplings =
            List.map
              (fun (i, j, op, v) -> (i, j, op, value v))
              trap.Iontrap.pairs;
        };
      ];
  }
