(** Hardware ramping post-pass.

    Real analog machines cannot switch drive amplitudes discontinuously:
    Aquila requires the Rabi amplitude to begin and end at zero and bounds
    its slew rate.  This pass converts each rectangular segment into a
    rise / hold / fall trapezoid whose {e area} (the integrated drive,
    which is what the compilation equations constrain) equals the
    original rectangle's, by holding at a proportionally higher amplitude
    for a shorter time.  Detunings and phases are held constant through
    the ramps; the approximation error this introduces is second order in
    [ramp_time / duration] and is measured by the tests against exact
    evolution. *)

type options = {
  ramp_time : float;
      (** rise/fall duration per edge (µs); Aquila-scale default 0.05 *)
  steps_per_ramp : int;
      (** piecewise-constant staircase resolution of each ramp (the pulse
          representation is piecewise constant); default 4 *)
}

val default_options : options

val apply : ?options:options -> Qturbo_aais.Pulse.rydberg -> Qturbo_aais.Pulse.rydberg
(** Ramp every segment of a schedule.  The hold amplitude scales to
    preserve the drive area, subject to the device's amplitude maximum
    and slew budget ([hold_amplitude / ramp_time <= omega_slew_max]);
    whenever those limits bite — QTurbo pulses typically already run at
    the amplitude maximum — the hold stretches instead, so a segment
    grows by one [ramp_time] in the common case (and by whatever the slew
    budget forces when [ramp_time] is too aggressive for the device).
    Detunings are rescaled so their time integral is preserved exactly. *)

val omega_area : Qturbo_aais.Pulse.rydberg -> float array
(** Per-atom integrated Rabi drive [∫ Ω dt] — the invariant {!apply}
    preserves. *)

val ramp_admissible : ?fraction:float -> Qturbo_aais.Pulse.rydberg -> bool
(** Hardware admissibility: the first and last sub-segments drive at no
    more than [fraction] (default 0.2) of the schedule's peak amplitude.
    A raw rectangular pulse fails; {!apply}'s staircase passes (its edge
    levels are [peak/(2·steps_per_ramp)]). *)
