(** Localized mixed equation systems (paper §4.2–§5.1).

    Each locality component is classified by structure and solved with the
    cheapest applicable method:

    {ul
    {- [Linear]: every channel is a linear drive of one shared
       time-critical variable (detunings; all Heisenberg channels).
       Closed form.}
    {- [Polar]: cos/sin channel pairs over one amplitude and one phase
       variable (Rabi drives).  Closed form.}
    {- [Fixed]: the component involves runtime-fixed variables (atom
       positions); deferred to {!Fixed_solver} once [T_sim] is known.}
    {- [Const]: no variables at all; the channel either matches or it
       doesn't.}
    {- [Generic]: anything else — the paper's "Case 3" and any exotic
       AAIS.  Feasibility is decided by bounded Levenberg–Marquardt and
       the minimal time found by bisection over [T].}}

    Each classification yields the component's {e shortest feasible
    evolution time} given the variable bounds; the compiler takes the
    maximum over components as [T_sim] (the bottleneck instruction then
    runs at full amplitude, paper §5.1). *)

type classification =
  | Const_channels
  | Linear of { var : int; slopes : (int * float) list }
      (** [(cid, slope)] per channel *)
  | Polar of {
      amp : int;
      phase : int;
      cos_channels : (int * float) list;  (** [(cid, scale)] *)
      sin_channels : (int * float) list;
    }
  | Fixed_vars
  | Generic

val classify :
  vars:Qturbo_aais.Variable.t array ->
  channels:Qturbo_aais.Instruction.channel array ->
  Locality.component ->
  classification

type solution = {
  assignments : (int * float) list;  (** [(variable id, value)] *)
  eps2 : float;  (** L1 residual against the component's α targets *)
}

type prepared
(** A component bundled with everything derivable from its
    classification alone (closed-expression values, the generic path's
    bound transform and starting point) — computed once, reused across
    every [T] probe, constraint iteration and refinement pass.
    Immutable, so safe to share across pool domains. *)

val prepare :
  vars:Qturbo_aais.Variable.t array ->
  channels:Qturbo_aais.Instruction.channel array ->
  Locality.component ->
  classification ->
  prepared

val classification_of : prepared -> classification

val min_time_prepared : alpha:float array -> prepared -> float
(** {!min_time} against a prepared component. *)

val solve_prepared : alpha:float array -> t_sim:float -> prepared -> solution
(** {!solve_at} against a prepared component. *)

val solve_supervised :
  sup:Qturbo_resilience.Supervisor.t ->
  alpha:float array ->
  t_sim:float ->
  prepared ->
  solution * Qturbo_resilience.Failure.t list
(** {!solve_prepared} with the generic LM path run under the resilience
    escalation ladder (site ["local-solve"], the component's locality id).
    Closed-form classifications are direct arithmetic and bypass the
    ladder.  Under [Supervisor.none] the result is bitwise-identical to
    {!solve_prepared}; on a hard solver failure the returned solution
    keeps the initial iterate (clamped into bounds) and the failure list
    says why. *)

val min_time_supervised :
  sup:Qturbo_resilience.Supervisor.t ->
  alpha:float array ->
  prepared ->
  float * Qturbo_resilience.Failure.t list
(** {!min_time_prepared}, additionally reporting a non-fatal
    [Non_convergence] record when the generic path's [T] bisection (or
    bracket doubling) stops before reaching its tolerance, and
    [Deadline_expired] when the supervision deadline has already
    passed. *)

val min_time :
  vars:Qturbo_aais.Variable.t array ->
  channels:Qturbo_aais.Instruction.channel array ->
  alpha:float array ->
  Locality.component ->
  classification ->
  float
(** Shortest feasible [T_sim] for this component alone: [0.] when the
    component imposes no lower bound (all-zero targets, or runtime-fixed
    components whose feasibility is policed later), [infinity] when
    infeasible at any time. *)

val solve_at :
  vars:Qturbo_aais.Variable.t array ->
  channels:Qturbo_aais.Instruction.channel array ->
  alpha:float array ->
  t_sim:float ->
  Locality.component ->
  classification ->
  solution
(** Solve the component's variables given the global [T_sim].  Values are
    clamped into their bounds; the clamping error shows up in [eps2].
    [Fixed_vars] components raise [Invalid_argument] (use
    {!Fixed_solver}). *)
