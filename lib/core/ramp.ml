open Qturbo_aais

type options = { ramp_time : float; steps_per_ramp : int }

let default_options = { ramp_time = 0.05; steps_per_ramp = 4 }

let omega_area (p : Pulse.rydberg) =
  let n = Array.length p.Pulse.positions in
  let area = Array.make n 0.0 in
  List.iter
    (fun (s : Pulse.rydberg_segment) ->
      Array.iteri
        (fun i w -> area.(i) <- area.(i) +. (w *. s.Pulse.duration))
        s.Pulse.omega)
    p.Pulse.segments;
  area

let ramp_admissible ?(fraction = 0.2) (p : Pulse.rydberg) =
  let seg_peak (s : Pulse.rydberg_segment) =
    Array.fold_left Float.max 0.0 s.Pulse.omega
  in
  let peak =
    List.fold_left (fun acc s -> Float.max acc (seg_peak s)) 0.0 p.Pulse.segments
  in
  if peak <= 1e-12 then true
  else
    match p.Pulse.segments with
    | [] -> true
    | first :: _ as segments ->
        let rec last = function
          | [] -> first
          | [ s ] -> s
          | _ :: tl -> last tl
        in
        seg_peak first <= fraction *. peak
        && seg_peak (last segments) <= fraction *. peak

(* staircase envelope factors for one linear ramp: midpoint heights of
   [steps] equal sub-intervals, area-equal to the continuous ramp *)
let ramp_levels steps rising =
  List.init steps (fun k ->
      let frac = (float_of_int k +. 0.5) /. float_of_int steps in
      if rising then frac else 1.0 -. frac)

let ramp_segment ~options ~omega_max ~slew_max (s : Pulse.rydberg_segment) =
  let t = s.Pulse.duration in
  let peak = Array.fold_left Float.max 0.0 s.Pulse.omega in
  if peak <= 1e-12 || t <= 0.0 then [ s ]
  else begin
    let r = options.ramp_time in
    (* hold-amplitude scale preserving the drive area
       (scale·Ω·(hold + r) = Ω·t), bounded by: keeping the total duration
       at t (only possible when t > r), the device amplitude maximum, the
       slew budget scale·peak/r <= slew_max, and hold >= 0 *)
    let candidates =
      [
        (if t > r then t /. (t -. r) else infinity);
        omega_max /. peak;
        (if Float.is_finite slew_max then slew_max *. r /. peak else infinity);
        t /. r;
      ]
    in
    let scale = List.fold_left Float.min infinity candidates in
    let hold = (t /. scale) -. r in
    let total = hold +. (2.0 *. r) in
    (* detuning is rescaled so its integral over the (possibly stretched)
       segment still matches the original Δ·t *)
    let delta_scale = t /. total in
    let sub ~duration ~factor =
      {
        Pulse.duration;
        omega = Array.map (fun w -> factor *. scale *. w) s.Pulse.omega;
        phi = Array.copy s.Pulse.phi;
        delta = Array.map (fun d -> delta_scale *. d) s.Pulse.delta;
      }
    in
    let step_t = r /. float_of_int options.steps_per_ramp in
    let rise =
      List.map (fun f -> sub ~duration:step_t ~factor:f)
        (ramp_levels options.steps_per_ramp true)
    in
    let fall =
      List.map (fun f -> sub ~duration:step_t ~factor:f)
        (ramp_levels options.steps_per_ramp false)
    in
    rise @ [ sub ~duration:hold ~factor:1.0 ] @ fall
  end

let apply ?(options = default_options) (p : Pulse.rydberg) =
  if options.ramp_time <= 0.0 then invalid_arg "Ramp.apply: ramp_time <= 0";
  if options.steps_per_ramp < 1 then invalid_arg "Ramp.apply: steps_per_ramp < 1";
  let omega_max = p.Pulse.spec.Device.omega_max in
  let slew_max = p.Pulse.spec.Device.omega_slew_max in
  {
    p with
    Pulse.segments =
      List.concat_map
        (ramp_segment ~options ~omega_max ~slew_max)
        p.Pulse.segments;
  }
