(** Locality decomposition (paper §4.2): connected components of the
    bipartite graph whose nodes are instruction channels and amplitude
    variables, with an edge whenever the channel's expression mentions the
    variable.

    Each component becomes one localized mixed equation system, solvable
    independently of the others. *)

type component = {
  id : int;
  channel_ids : int list;  (** ascending channel cids *)
  var_ids : int list;  (** ascending variable ids *)
}

val decompose :
  channels:Qturbo_aais.Instruction.channel array ->
  n_vars:int ->
  component list
(** Components are ordered by their smallest channel id.  Variables that
    no channel mentions belong to no component (they keep their initial
    value).  A channel whose expression is constant forms a singleton
    component with no variables. *)

val component_of_channel : component list -> int -> component
(** Raises [Not_found] for unknown channel ids. *)
