open Qturbo_pauli
open Qturbo_aais

module Term_map = Map.Make (struct
  type t = Pauli_string.t

  let compare = Pauli_string.compare
end)

type t = { by_string : int Term_map.t; by_row : Pauli_string.t array }

let build_of_support ~channels ~support =
  (* the row counter rides in the accumulator — [List.length rev] per
     insertion made assembly quadratic in the row count *)
  let add ((map, rev, count) as acc) s =
    if Pauli_string.is_identity s || Term_map.mem s map then acc
    else (Term_map.add s count map, s :: rev, count + 1)
  in
  let acc = List.fold_left add (Term_map.empty, [], 0) support in
  let map, rev, _ =
    Array.fold_left
      (fun acc c ->
        List.fold_left
          (fun acc (s, _) -> add acc s)
          acc
          (Instruction.effect_terms c))
      acc channels
  in
  { by_string = map; by_row = Array.of_list (List.rev rev) }

let build ~channels ~target =
  build_of_support ~channels ~support:(List.map fst (Pauli_sum.terms target))

let count t = Array.length t.by_row
let row_of t s = Term_map.find_opt s t.by_string

let string_of t i =
  if i < 0 || i >= count t then invalid_arg "Term_index.string_of: out of range";
  t.by_row.(i)

let strings t = Array.copy t.by_row
