(* Work pool over stdlib domains.

   One process-global pool, grown lazily: workers are spawned the first
   time a job actually asks for them, so `QTURBO_DOMAINS=1` (and every
   test that does not opt in) never creates a domain.  Jobs are index
   ranges; results are always collected by index on the caller side, so
   the output of a parallel run is bitwise-identical to the sequential
   loop — parallelism changes scheduling, never arithmetic. *)

let max_workers = 62

let default_domains () =
  match Sys.getenv_opt "QTURBO_DOMAINS" with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> n
      | Some _ | None -> 1)
  | None -> Int.max 1 (Domain.recommended_domain_count () - 1)

(* true inside a pool task (worker or participating submitter); nested
   parallel calls run sequentially instead of deadlocking on the pool *)
let worker_flag = Domain.DLS.new_key (fun () -> ref false)
let in_worker () = !(Domain.DLS.get worker_flag)

type job = {
  run : int -> unit;
  total : int;
  chunk : int;
  mutable next : int; (* first unclaimed index *)
  mutable outstanding : int; (* claimed ranges still executing *)
  mutable failed : (int * exn) option; (* smallest failing index *)
}

let m = Mutex.create ()
let work = Condition.create ()
let finished = Condition.create ()
let jobs : job Queue.t = Queue.create ()
let shutdown = ref false
let workers : unit Domain.t list ref = ref []

(* Run [lo, hi); on an exception record it (keeping the smallest index,
   which matches what a sequential loop would have raised first — every
   smaller index was claimed, and therefore executed, before this one)
   and stop the whole job from claiming further ranges. *)
let exec_range job lo hi =
  let i = ref lo in
  let stop = ref false in
  while (not !stop) && !i < hi do
    (try job.run !i
     with e ->
       stop := true;
       Mutex.lock m;
       (match job.failed with
       | Some (j, _) when j < !i -> ()
       | _ -> job.failed <- Some (!i, e));
       job.next <- job.total;
       Mutex.unlock m);
    incr i
  done

(* under [m]: next job with unclaimed work, dropping drained heads *)
let rec find_job () =
  match Queue.peek_opt jobs with
  | Some j when j.next < j.total -> Some j
  | Some _ ->
      ignore (Queue.pop jobs);
      find_job ()
  | None -> None

let worker () =
  Domain.DLS.get worker_flag := true;
  Mutex.lock m;
  let running = ref true in
  while !running do
    match find_job () with
    | Some j ->
        let lo = j.next in
        let hi = Int.min j.total (lo + j.chunk) in
        j.next <- hi;
        j.outstanding <- j.outstanding + 1;
        Mutex.unlock m;
        exec_range j lo hi;
        Mutex.lock m;
        j.outstanding <- j.outstanding - 1;
        if j.next >= j.total && j.outstanding = 0 then
          Condition.broadcast finished
    | None ->
        if !shutdown then running := false else Condition.wait work m
  done;
  Mutex.unlock m

let stop_pool () =
  Mutex.lock m;
  shutdown := true;
  Condition.broadcast work;
  let ws = !workers in
  workers := [];
  Mutex.unlock m;
  List.iter Domain.join ws

let ensure_workers n =
  let n = Int.min n max_workers in
  let need () =
    Mutex.lock m;
    let missing = (not !shutdown) && List.length !workers < n in
    Mutex.unlock m;
    missing
  in
  while need () do
    Mutex.lock m;
    let first = !workers = [] in
    Mutex.unlock m;
    if first then at_exit stop_pool;
    let d = Domain.spawn worker in
    Mutex.lock m;
    workers := d :: !workers;
    Mutex.unlock m
  done

let parallel_for ?domains ?chunk ?guard ~total f =
  let domains = match domains with Some d -> d | None -> default_domains () in
  (* the guard runs before each index on whichever domain claimed it; a
     raising guard (deadline expiry, cancellation) is reported through
     the ordinary smallest-failing-index mechanism, so guarded parallel
     runs fail with the same exception a guarded sequential loop would *)
  let f = match guard with None -> f | Some g -> fun i -> g (); f i in
  if total <= 0 then ()
  else if domains <= 1 || total = 1 || in_worker () || !shutdown then
    for i = 0 to total - 1 do
      f i
    done
  else begin
    ensure_workers (domains - 1);
    let chunk =
      match chunk with
      | Some c -> Int.max 1 c
      | None -> Int.max 1 (total / (domains * 4))
    in
    let job = { run = f; total; chunk; next = 0; outstanding = 0; failed = None } in
    Mutex.lock m;
    Queue.push job jobs;
    Condition.broadcast work;
    let flag = Domain.DLS.get worker_flag in
    flag := true;
    while job.next < job.total do
      let lo = job.next in
      let hi = Int.min job.total (lo + job.chunk) in
      job.next <- hi;
      job.outstanding <- job.outstanding + 1;
      Mutex.unlock m;
      exec_range job lo hi;
      Mutex.lock m;
      job.outstanding <- job.outstanding - 1
    done;
    while job.outstanding > 0 do
      Condition.wait finished m
    done;
    flag := false;
    Mutex.unlock m;
    match job.failed with None -> () | Some (_, e) -> raise e
  end

let parallel_map ?domains ?chunk ?guard f arr =
  let n = Array.length arr in
  if n = 0 then [||]
  else begin
    let out = Array.make n None in
    parallel_for ?domains ?chunk ?guard ~total:n (fun i ->
        out.(i) <- Some (f arr.(i)));
    Array.map (function Some v -> v | None -> assert false) out
  end

let parallel_mapi ?domains ?chunk ?guard f arr =
  let n = Array.length arr in
  if n = 0 then [||]
  else begin
    let out = Array.make n None in
    parallel_for ?domains ?chunk ?guard ~total:n (fun i ->
        out.(i) <- Some (f i arr.(i)));
    Array.map (function Some v -> v | None -> assert false) out
  end

let parallel_map_list ?domains ?chunk ?guard f l =
  Array.to_list (parallel_map ?domains ?chunk ?guard f (Array.of_list l))

let parallel_reduce ?domains ?chunk ?guard ~map ~fold ~init arr =
  Array.fold_left fold init (parallel_map ?domains ?chunk ?guard map arr)
