(** Deterministic work pool over stdlib domains.

    One lazily-created, process-global pool shared by the whole
    compiler.  Every primitive distributes an index range [0, total)
    over the pool and collects results {e by index}, so a parallel run
    produces output bitwise-identical to the sequential loop: each
    element is computed by exactly the same pure-float code, only the
    schedule changes.  With [domains <= 1] (or inside a pool task) no
    domain is ever spawned and the sequential loop runs directly —
    [QTURBO_DOMAINS=1] is exactly the pre-parallelism compiler.

    Exceptions: a failing task stops the job from claiming further
    work, and the exception raised to the caller is the one from the
    smallest failing index — the same exception a sequential loop
    would have raised first. *)

val default_domains : unit -> int
(** [QTURBO_DOMAINS] when set to a positive integer (any other value
    reads as [1]); otherwise [Domain.recommended_domain_count () - 1],
    floored at 1. *)

val in_worker : unit -> bool
(** True while executing inside a pool task.  Nested parallel calls
    detect this and run sequentially instead of deadlocking. *)

val parallel_for :
  ?domains:int ->
  ?chunk:int ->
  ?guard:(unit -> unit) ->
  total:int ->
  (int -> unit) ->
  unit
(** [parallel_for ~total f] runs [f i] for every [i] in [0, total).
    [f] must write to disjoint per-index locations (or be pure).
    [chunk] is the number of consecutive indices claimed at a time
    (default [total / (4·domains)], floored at 1); pass [~chunk:1]
    when task costs are very uneven.

    [guard] runs before each index on the claiming domain; it is the
    deadline/cancellation hook.  A raising guard stops the job from
    claiming further ranges and its exception propagates to the caller
    under the usual smallest-failing-index rule, so a guarded parallel
    run fails exactly like the guarded sequential loop. *)

val parallel_map :
  ?domains:int -> ?chunk:int -> ?guard:(unit -> unit) ->
  ('a -> 'b) -> 'a array -> 'b array
val parallel_mapi :
  ?domains:int -> ?chunk:int -> ?guard:(unit -> unit) ->
  (int -> 'a -> 'b) -> 'a array -> 'b array
val parallel_map_list :
  ?domains:int -> ?chunk:int -> ?guard:(unit -> unit) ->
  ('a -> 'b) -> 'a list -> 'b list

val parallel_reduce :
  ?domains:int ->
  ?chunk:int ->
  ?guard:(unit -> unit) ->
  map:('a -> 'b) ->
  fold:('acc -> 'b -> 'acc) ->
  init:'acc ->
  'a array ->
  'acc
(** Maps in parallel, then folds the mapped results sequentially in
    index order — the reduction order (and thus any float rounding)
    is identical to [Array.fold_left fold init (Array.map map arr)]. *)

val stop_pool : unit -> unit
(** Join all pool domains.  Registered via [at_exit] on first spawn;
    exposed for tests.  After this, every call runs sequentially. *)
