let fp = Printf.sprintf "%h"

let floats_line label xs =
  label ^ " " ^ String.concat " " (Array.to_list (Array.map fp xs))

let to_string (p : Pulse.rydberg) =
  let b = Buffer.create 1024 in
  let addf fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
  let s = p.Pulse.spec in
  addf "rydberg-pulse v1";
  addf "device %s" s.Device.name;
  addf "spec %h %h %h %h %h %h %h %s %s" s.Device.c6 s.Device.omega_max
    s.Device.delta_max s.Device.min_separation s.Device.max_extent
    s.Device.max_time s.Device.omega_slew_max
    (match s.Device.control with Device.Global -> "global" | Device.Local -> "local")
    (match s.Device.geometry with Device.Line -> "line" | Device.Plane -> "plane");
  addf "atoms %d" (Array.length p.Pulse.positions);
  Array.iteri
    (fun i (x, y) -> addf "atom %d %h %h" i x y)
    p.Pulse.positions;
  List.iter
    (fun (seg : Pulse.rydberg_segment) ->
      addf "segment %h" seg.Pulse.duration;
      addf "%s" (floats_line "omega" seg.Pulse.omega);
      addf "%s" (floats_line "phi" seg.Pulse.phi);
      addf "%s" (floats_line "delta" seg.Pulse.delta))
    p.Pulse.segments;
  addf "end";
  Buffer.contents b

(* ---- strict-JSON emission (Qturbo_util.Json.value, so non-finite
   floats map to null and the output always parses) ---- *)

module Json = Qturbo_util.Json

let jfloats xs = Json.Array (Array.to_list (Array.map (fun x -> Json.Number x) xs))

let rydberg_json (p : Pulse.rydberg) =
  Json.Object
    [
      ("family", Json.String "rydberg");
      ("device", Json.String p.Pulse.spec.Device.name);
      ("duration", Json.Number (Pulse.rydberg_duration p));
      ( "positions",
        Json.Array
          (Array.to_list
             (Array.map
                (fun (x, y) -> Json.Array [ Json.Number x; Json.Number y ])
                p.Pulse.positions)) );
      ( "segments",
        Json.Array
          (List.map
             (fun (s : Pulse.rydberg_segment) ->
               Json.Object
                 [
                   ("duration", Json.Number s.Pulse.duration);
                   ("omega", jfloats s.Pulse.omega);
                   ("phi", jfloats s.Pulse.phi);
                   ("delta", jfloats s.Pulse.delta);
                 ])
             p.Pulse.segments) );
    ]

let rydberg_to_json p = Json.emit (rydberg_json p)

let heisenberg_json (p : Pulse.heisenberg) =
  Json.Object
    [
      ("family", Json.String "heisenberg");
      ("device", Json.String p.Pulse.spec.Device.name);
      ("duration", Json.Number (Pulse.heisenberg_duration p));
      ( "segments",
        Json.Array
          (List.map
             (fun (s : Pulse.heisenberg_segment) ->
               Json.Object
                 [
                   ("duration", Json.Number s.Pulse.duration);
                   ( "amplitudes",
                     Json.Object
                       (List.map
                          (fun (pstring, a) ->
                            ( Format.asprintf "%a" Qturbo_pauli.Pauli_string.pp
                                pstring,
                              Json.Number a ))
                          s.Pulse.amplitudes) );
                 ])
             p.Pulse.segments) );
    ]

let heisenberg_to_json p = Json.emit (heisenberg_json p)

let iontrap_json (p : Pulse.iontrap) =
  Json.Object
    [
      ("family", Json.String "iontrap");
      ("device", Json.String p.Pulse.spec.Device.name);
      ("duration", Json.Number (Pulse.iontrap_duration p));
      ( "segments",
        Json.Array
          (List.map
             (fun (s : Pulse.iontrap_segment) ->
               Json.Object
                 [
                   ("duration", Json.Number s.Pulse.duration);
                   ("omega", jfloats s.Pulse.omega);
                   ("phi", jfloats s.Pulse.phi);
                   ("mu", jfloats s.Pulse.mu);
                   ( "couplings",
                     Json.Array
                       (List.map
                          (fun (i, j, op, a) ->
                            Json.Object
                              [
                                ("i", Json.Number (float_of_int i));
                                ("j", Json.Number (float_of_int j));
                                ( "basis",
                                  Json.String (Qturbo_pauli.Pauli.op_to_string op)
                                );
                                ("amplitude", Json.Number a);
                              ])
                          s.Pulse.couplings) );
                 ])
             p.Pulse.segments) );
    ]

let iontrap_to_json p = Json.emit (iontrap_json p)

exception Parse_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

let words line =
  String.split_on_char ' ' line |> List.filter (fun w -> w <> "")

let parse_float w =
  try float_of_string w with Failure _ -> fail "bad float %S" w

let parse_floats label ws expected =
  let xs = Array.of_list (List.map parse_float ws) in
  if Array.length xs <> expected then
    fail "%s: expected %d values, got %d" label expected (Array.length xs);
  xs

let of_string text =
  try
    let lines =
      String.split_on_char '\n' text
      |> List.map String.trim
      |> List.filter (fun l -> l <> "")
    in
    let rest = ref lines in
    let next () =
      match !rest with
      | [] -> fail "unexpected end of input"
      | l :: tl ->
          rest := tl;
          l
    in
    (match next () with
    | "rydberg-pulse v1" -> ()
    | other -> fail "bad header %S" other);
    let name =
      match words (next ()) with
      | "device" :: parts -> String.concat " " parts
      | _ -> fail "expected device line"
    in
    let spec =
      match words (next ()) with
      | [ "spec"; c6; om; dm; sep; ext; mt; slew; control; geometry ] ->
          {
            Device.name;
            c6 = parse_float c6;
            omega_max = parse_float om;
            delta_max = parse_float dm;
            min_separation = parse_float sep;
            max_extent = parse_float ext;
            max_time = parse_float mt;
            omega_slew_max = parse_float slew;
            control =
              (match control with
              | "global" -> Device.Global
              | "local" -> Device.Local
              | other -> fail "bad control %S" other);
            geometry =
              (match geometry with
              | "line" -> Device.Line
              | "plane" -> Device.Plane
              | other -> fail "bad geometry %S" other);
          }
      | _ -> fail "expected spec line"
    in
    let n =
      match words (next ()) with
      | [ "atoms"; n ] -> (
          match int_of_string_opt n with
          | Some n when n > 0 -> n
          | Some _ | None -> fail "bad atom count %S" n)
      | _ -> fail "expected atoms line"
    in
    let positions =
      Array.init n (fun i ->
          match words (next ()) with
          | [ "atom"; idx; x; y ] ->
              if int_of_string_opt idx <> Some i then fail "atom %d out of order" i;
              (parse_float x, parse_float y)
          | _ -> fail "expected atom line %d" i)
    in
    let segments = ref [] in
    let finished = ref false in
    while not !finished do
      match words (next ()) with
      | [ "end" ] -> finished := true
      | [ "segment"; duration ] ->
          let duration = parse_float duration in
          let channel label =
            match words (next ()) with
            | l :: ws when l = label -> parse_floats label ws n
            | _ -> fail "expected %s line" label
          in
          let omega = channel "omega" in
          let phi = channel "phi" in
          let delta = channel "delta" in
          segments := { Pulse.duration; omega; phi; delta } :: !segments
      | other -> fail "unexpected line %S" (String.concat " " other)
    done;
    Ok { Pulse.spec; positions; segments = List.rev !segments }
  with Parse_error msg -> Error msg

let save ~path pulse =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string pulse))

let load ~path =
  match open_in path with
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> of_string (In_channel.input_all ic))
  | exception Sys_error msg -> Error msg
