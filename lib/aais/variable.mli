(** Amplitude variables of an analog instruction set (paper §2.1.1).

    A variable is either {e runtime fixed} (set before the program starts
    and immutable during execution — atom positions) or {e runtime
    dynamic} (adjustable while the program runs — detunings, Rabi
    amplitudes, phases).  Variables carry box bounds from the device
    specification and an initial guess for the nonlinear solvers.

    Variables are allocated from a pool; their ids index the environment
    arrays the compiler passes around. *)

type kind = Runtime_fixed | Runtime_dynamic

type t = {
  id : int;
  name : string;
  kind : kind;
  bound : Qturbo_optim.Bounds.bound;
  init : float;
}

type pool

val create_pool : unit -> pool

val fresh :
  pool ->
  name:string ->
  kind:kind ->
  ?lo:float ->
  ?hi:float ->
  ?init:float ->
  unit ->
  t
(** Allocate a variable.  Bounds default to unbounded; [init] defaults to
    the bound midpoint when finite, else [0.]. *)

val count : pool -> int

val all : pool -> t array
(** All variables, indexed by id. *)

val get : pool -> int -> t
(** Raises [Invalid_argument] on unknown ids. *)

val is_fixed : t -> bool

val is_dynamic : t -> bool

val initial_env : pool -> float array
(** Environment array preloaded with every variable's [init]. *)

val bounds_array : pool -> Qturbo_optim.Bounds.bound array

val pp : Format.formatter -> t -> unit
