open Qturbo_pauli

type t = {
  aais : Aais.t;
  spec : Device.iontrap;
  n : int;
  omegas : Variable.t array;
  phis : Variable.t array;
  mus : Variable.t array;
  pairs : (int * int * Pauli.op * Variable.t) list;
}

let ms_bases = [| Pauli.X; Pauli.Y; Pauli.Z |]

let pair_bound ~spec ~i ~j =
  let d = float_of_int (abs (j - i)) in
  spec.Device.j_max /. (d ** spec.Device.falloff)

let coupled_pairs ~spec ~n =
  List.concat
    (List.init n (fun i ->
         List.filter_map
           (fun j ->
             if j <= i || j - i > spec.Device.coupling_range then None
             else Some (i, j))
           (List.init n Fun.id)))

let build ~spec ~n =
  if n < 1 then invalid_arg "Iontrap.build: need at least one ion";
  if n > spec.Device.max_ions then
    invalid_arg
      (Printf.sprintf "Iontrap.build: %d ions exceed the trap limit %d" n
         spec.Device.max_ions);
  let pool = Variable.create_pool () in
  let next_cid = ref 0 in
  let fresh_cid () =
    let c = !next_cid in
    incr next_cid;
    c
  in
  (* every variable is runtime dynamic: a trap has no analogue of the
     Rydberg position solve, so compilation reduces to the linear/polar
     closed forms *)
  let pairs =
    List.concat_map
      (fun (i, j) ->
        let bound = pair_bound ~spec ~i ~j in
        Array.to_list
          (Array.map
             (fun op ->
               let v =
                 Variable.fresh pool
                   ~name:
                     (Printf.sprintf "J^%s(%d,%d)" (Pauli.op_to_string op) i j)
                   ~kind:Variable.Runtime_dynamic ~lo:(-.bound) ~hi:bound
                   ~init:0.0 ()
               in
               (i, j, op, v))
             ms_bases))
      (coupled_pairs ~spec ~n)
  in
  let mus =
    Array.init n (fun i ->
        Variable.fresh pool
          ~name:(Printf.sprintf "mu%d" i)
          ~kind:Variable.Runtime_dynamic ~lo:(-.spec.Device.mu_max)
          ~hi:spec.Device.mu_max ~init:0.0 ())
  in
  let omegas =
    Array.init n (fun i ->
        Variable.fresh pool
          ~name:(Printf.sprintf "omega%d" i)
          ~kind:Variable.Runtime_dynamic ~lo:0.0 ~hi:spec.Device.omega_max
          ~init:0.0 ())
  in
  let phis =
    Array.init n (fun i ->
        Variable.fresh pool
          ~name:(Printf.sprintf "phi%d" i)
          ~kind:Variable.Runtime_dynamic ~lo:(-.Float.pi) ~hi:Float.pi
          ~init:0.0 ())
  in
  let ms_instructions =
    List.map
      (fun (i, j, op, v) ->
        let base = String.lowercase_ascii (Pauli.op_to_string op) in
        let label = Printf.sprintf "ms-%s%s(%d,%d)" base base i j in
        let channel =
          Instruction.channel ~cid:(fresh_cid ()) ~label ~expr:(Expr.var v)
            ~effects:
              [ { Instruction.pstring = Pauli_string.two i op j op; coeff = 1.0 } ]
            ~hint:(Instruction.Hint_linear { var = v.Variable.id; slope = 1.0 })
        in
        Instruction.make ~label ~channels:[ channel ])
      pairs
  in
  let shift_instructions =
    List.init n (fun i ->
        let label = Printf.sprintf "shift(%d)" i in
        let channel =
          Instruction.channel ~cid:(fresh_cid ()) ~label
            ~expr:(Expr.var mus.(i))
            ~effects:
              [
                {
                  Instruction.pstring = Pauli_string.single i Pauli.Z;
                  coeff = 1.0;
                };
              ]
            ~hint:
              (Instruction.Hint_linear { var = mus.(i).Variable.id; slope = 1.0 })
        in
        Instruction.make ~label ~channels:[ channel ])
  in
  let drive_instructions =
    List.init n (fun i ->
        let omega = omegas.(i) and phi = phis.(i) in
        let cos_channel =
          Instruction.channel ~cid:(fresh_cid ())
            ~label:(Printf.sprintf "drive-cos(%d)" i)
            ~expr:Expr.(const 0.5 * var omega * cos_ (var phi))
            ~effects:
              [
                {
                  Instruction.pstring = Pauli_string.single i Pauli.X;
                  coeff = 1.0;
                };
              ]
            ~hint:
              (Instruction.Hint_polar_cos
                 { amp = omega.Variable.id; phase = phi.Variable.id; scale = 0.5 })
        in
        let sin_channel =
          Instruction.channel ~cid:(fresh_cid ())
            ~label:(Printf.sprintf "drive-sin(%d)" i)
            ~expr:Expr.(neg (const 0.5 * var omega * sin_ (var phi)))
            ~effects:
              [
                {
                  Instruction.pstring = Pauli_string.single i Pauli.Y;
                  coeff = 1.0;
                };
              ]
            ~hint:
              (Instruction.Hint_polar_sin
                 {
                   amp = omega.Variable.id;
                   phase = phi.Variable.id;
                   scale = -0.5;
                 })
        in
        Instruction.make
          ~label:(Printf.sprintf "drive(%d)" i)
          ~channels:[ cos_channel; sin_channel ])
  in
  let instructions = ms_instructions @ shift_instructions @ drive_instructions in
  let aais =
    Aais.make
      ~name:(Printf.sprintf "iontrap[%s,n=%d]" spec.Device.name n)
      ~n_qubits:n ~pool ~instructions
      ~fingerprint:
        (Printf.sprintf
           "iontrap omega=%h mu=%h j=%h falloff=%h range=%d maxions=%d"
           spec.Device.omega_max spec.Device.mu_max spec.Device.j_max
           spec.Device.falloff spec.Device.coupling_range spec.Device.max_ions)
      ()
  in
  { aais; spec; n; omegas; phis; mus; pairs }

let hamiltonian_of_pulse ~omega ~phi ~mu ~couplings () =
  let n = Array.length omega in
  if Array.length phi <> n || Array.length mu <> n then
    invalid_arg "Iontrap.hamiltonian_of_pulse: per-ion array lengths";
  let h = ref Pauli_sum.zero in
  let add c s = if c <> 0.0 then h := Pauli_sum.add_term !h s c in
  List.iter (fun (i, j, op, a) -> add a (Pauli_string.two i op j op)) couplings;
  for i = 0 to n - 1 do
    add mu.(i) (Pauli_string.single i Pauli.Z);
    add (omega.(i) /. 2.0 *. cos phi.(i)) (Pauli_string.single i Pauli.X);
    add (-.(omega.(i) /. 2.0) *. sin phi.(i)) (Pauli_string.single i Pauli.Y)
  done;
  !h

let hamiltonian t ~env =
  hamiltonian_of_pulse
    ~omega:(Array.map (fun (v : Variable.t) -> env.(v.Variable.id)) t.omegas)
    ~phi:(Array.map (fun (v : Variable.t) -> env.(v.Variable.id)) t.phis)
    ~mu:(Array.map (fun (v : Variable.t) -> env.(v.Variable.id)) t.mus)
    ~couplings:
      (List.map
         (fun (i, j, op, (v : Variable.t)) -> (i, j, op, env.(v.Variable.id)))
         t.pairs)
    ()
