(** Structural fingerprints of a compile's {e shape}.

    The front-end artifacts of a compile — term index, linear-system
    skeleton, locality components, classifications, prepared solver
    contexts — depend only on the AAIS and the set of Pauli strings the
    target Hamiltonian touches, never on the coefficients or the target
    evolution time.  This module renders that dependency set into a
    canonical string, the key of [Qturbo_core.Compile_plan]'s
    structural plan cache.  The SimuQ baseline shares the same helper
    (its global system is keyed identically), so both compilers agree
    on when two compiles have the same shape.

    Keys are exact, not hashed: every float is rendered as a hex
    literal ([%h]), so two devices differing in one ulp of a bound get
    different keys and a cached plan is never reused across genuinely
    different structures. *)

val of_aais : Aais.t -> string
(** Canonical rendering of the device structure: name, qubit count,
    the builder {!Aais.t.fingerprint}, every variable (id, kind, box
    bounds, initial guess) and every channel (cid, expression tree,
    solver hint, effect terms with coefficients).

    When {!Aais.t.sites} is non-empty, site-coordinate variables are
    rendered with the first site's initial coordinates subtracted from
    their bounds and initial guess, anchoring the layout at the origin:
    rigidly-translated devices (same geometry, different placement in
    the field of view) share one key and therefore one cached plan.
    This is sound because the compiler consumes only coordinate
    differences (van der Waals amplitudes, pairwise feasibility
    checks).  Rotation is not canonicalized. *)

val support_of_target : Qturbo_pauli.Pauli_sum.t -> Qturbo_pauli.Pauli_string.t list
(** The target's shape: its support in canonical (sorted) order with
    the identity string removed — exactly the term set the compiler's
    row index is built from. *)

val of_support : Qturbo_pauli.Pauli_string.t list -> string
(** Canonical rendering of a target shape. *)

val key : aais:Aais.t -> support:Qturbo_pauli.Pauli_string.t list -> string
(** [of_aais aais] and [of_support support] joined — the full
    structural key of one (device, target-shape) pair. *)
