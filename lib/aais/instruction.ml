open Qturbo_pauli

type effect = { pstring : Pauli_string.t; coeff : float }

type solver_hint =
  | Hint_linear of { var : int; slope : float }
  | Hint_polar_cos of { amp : int; phase : int; scale : float }
  | Hint_polar_sin of { amp : int; phase : int; scale : float }
  | Hint_fixed
  | Hint_generic

type channel = {
  cid : int;
  label : string;
  expr : Expr.t;
  kernel : Expr.kernel;
  effects : effect list;
  hint : solver_hint;
}

type t = { label : string; channels : channel list; variables : int list }

let validate_hint c =
  match c.hint with
  | Hint_linear { var; slope } -> (
      match Expr.is_linear_in c.expr var with
      | Some k -> Float.abs (k -. slope) <= 1e-12 *. Float.max 1.0 (Float.abs k)
      | None -> false)
  | Hint_polar_cos { amp; phase; scale } | Hint_polar_sin { amp; phase; scale }
    ->
      (* structural check: depends on exactly {amp, phase}; numerical
         check at a few probe points against the declared closed form *)
      Expr.vars c.expr = List.sort Int.compare [ amp; phase ]
      && begin
           let is_sin =
             match c.hint with
             | Hint_polar_sin _ -> true
             | Hint_polar_cos _ | Hint_linear _ | Hint_fixed | Hint_generic ->
                 false
           in
           let n = 1 + Int.max amp phase in
           let probe (a, p) =
             let env = Array.make n 0.0 in
             env.(amp) <- a;
             env.(phase) <- p;
             let expect =
               if is_sin then scale *. a *. sin p else scale *. a *. cos p
             in
             Float.abs (Expr.eval c.expr ~env -. expect)
             <= 1e-9 *. Float.max 1.0 (Float.abs expect)
           in
           List.for_all probe
             [ (1.0, 0.0); (2.0, 0.7); (0.5, -1.3); (3.0, 2.9) ]
         end
  | Hint_fixed | Hint_generic -> true

(* the kernel is compiled eagerly here rather than lazily at first use:
   channels are shared across pool domains and [Lazy.force] is not safe
   under concurrent forcing *)
let channel ~cid ~label ~expr ~effects ~hint =
  let c = { cid; label; expr; kernel = Expr.compile expr; effects; hint } in
  if not (validate_hint c) then
    invalid_arg ("Instruction.channel: hint contradicts expression: " ^ label);
  c

let eval_channel c ~env = Expr.eval_kernel c.kernel ~env

module Int_set = Set.Make (Int)

let make ~label ~channels =
  let variables =
    List.fold_left
      (fun acc c -> Int_set.union acc (Int_set.of_list (Expr.vars c.expr)))
      Int_set.empty channels
    |> Int_set.elements
  in
  { label; channels; variables }

let effect_terms c =
  List.filter_map
    (fun { pstring; coeff } ->
      if Pauli_string.is_identity pstring then None else Some (pstring, coeff))
    c.effects
