(** Plain-text serialization of Rydberg pulse schedules.

    The compiler's output artifact can be saved, diffed and reloaded — the
    moral equivalent of SimuQ exporting Braket pulse programs.  The format
    is line-oriented and versioned; floats round-trip exactly (hex float
    literals). *)

val to_string : Pulse.rydberg -> string

val of_string : string -> (Pulse.rydberg, string) result
(** Parse; [Error msg] describes the first offending line. *)

val save : path:string -> Pulse.rydberg -> unit

val load : path:string -> (Pulse.rydberg, string) result
