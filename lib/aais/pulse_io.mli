(** Plain-text serialization of Rydberg pulse schedules.

    The compiler's output artifact can be saved, diffed and reloaded — the
    moral equivalent of SimuQ exporting Braket pulse programs.  The format
    is line-oriented and versioned; floats round-trip exactly (hex float
    literals). *)

val to_string : Pulse.rydberg -> string

val of_string : string -> (Pulse.rydberg, string) result
(** Parse; [Error msg] describes the first offending line. *)

val save : path:string -> Pulse.rydberg -> unit

val load : path:string -> (Pulse.rydberg, string) result

(** {1 Strict-JSON emission}

    One emitter per pulse family, built on {!Qturbo_util.Json} so every
    output is strict RFC 8259 (non-finite floats become [null]).  The
    objects share a common envelope — [family], [device], [duration],
    [segments] — with per-family segment payloads. *)

val rydberg_to_json : Pulse.rydberg -> string

val heisenberg_to_json : Pulse.heisenberg -> string

val iontrap_to_json : Pulse.iontrap -> string
