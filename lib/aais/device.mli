(** Device specifications: physical constants and pulse constraints.

    Units: the Rydberg presets are expressed either in plain MHz·µs·µm
    (the convention of the paper's worked example, §5) or in rad/µs·µs·µm
    (the convention of the device experiments, §7.4).  The compiler is
    unit-agnostic — a spec just has to be internally consistent. *)

type control = Global | Local
(** [Global]: one Δ/Ω/φ shared by all atoms (Aquila's actual capability);
    [Local]: per-atom controls (the paper's worked example). *)

type geometry = Line | Plane
(** Atom placement dimensionality. *)

type rydberg = {
  name : string;
  c6 : float;  (** van-der-Waals coefficient, amplitude·µm⁶ *)
  omega_max : float;  (** Rabi amplitude bound, [Ω ∈ [0, omega_max]] *)
  delta_max : float;  (** detuning bound, [Δ ∈ [−delta_max, delta_max]] *)
  min_separation : float;  (** µm between any two atoms *)
  max_extent : float;  (** µm, side of the placement window *)
  max_time : float;  (** µs, longest executable pulse *)
  omega_slew_max : float;
      (** bound on |dΩ/dt| between consecutive schedule points
          (amplitude unit per µs); [infinity] disables the check *)
  control : control;
  geometry : geometry;
}

val aquila_paper : rydberg
(** MHz-unit Aquila as used in the §5 worked example: [C6 = 862690],
    [Ω_max = 2.5 MHz], [Δ_max = 20 MHz], local control, 1-D geometry.
    Reproduces the paper's numbers ([x₂ = 7.46 µm], [T = 0.8 µs]) exactly. *)

val aquila : rydberg
(** rad/µs-unit Aquila per the published spec [39]:
    [C6 = 2π·862690 ≈ 5.42e6], [Ω_max = 15.8], [Δ_max = 125],
    global control, planar geometry. *)

val aquila_fig6a : rydberg
(** Fig. 6(a) preset: [Ω_max] capped at 6.28 rad/µs. *)

val aquila_fig6b : rydberg
(** Fig. 6(b) preset: [Ω_max] capped at 13.8 rad/µs, 1-D chain. *)

val with_control : control -> rydberg -> rydberg

val with_geometry : geometry -> rydberg -> rydberg

type heisenberg = {
  name : string;
  single_max : float;  (** bound on single-Pauli amplitudes [|a^{P_i}|] *)
  two_max : float;  (** bound on two-Pauli amplitudes [|a^{P_iP_j}|] *)
  max_time : float;
  ring : bool;  (** chain (false) or ring (true) connectivity *)
}

val heisenberg_default : heisenberg
(** Superconducting-scale bounds (single-qubit drives are fast, two-qubit
    couplings ~50× weaker), chain connectivity. *)

type iontrap = {
  name : string;
  omega_max : float;  (** per-ion Rabi-drive amplitude bound, [Ω ∈ [0, omega_max]] *)
  mu_max : float;  (** per-ion light-shift (Z) amplitude bound, [|μ| <= mu_max] *)
  j_max : float;
      (** Mølmer–Sørensen pair-coupling bound at ion-index distance 1;
          the usable bound at distance [d] is [j_max / d^falloff] *)
  falloff : float;
      (** power-law exponent of the coupling-strength falloff with
          ion-index distance (0 = distance-independent) *)
  coupling_range : int;
      (** largest ion-index distance with a pair channel at all
          ([max_int] = all-to-all) *)
  max_ions : int;  (** chain-length limit of the trap *)
  max_time : float;  (** µs, longest executable schedule *)
}
(** Trapped-ion chain specification (the SimuQ-style IonTrap backend):
    per-ion polar Rabi drives (X/Y), per-ion light shifts (Z) and
    same-Pauli Mølmer–Sørensen pair couplings (XX/YY/ZZ) whose bound
    decays as a power law in the ion-index distance. *)

val iontrap_chain : iontrap
(** All-to-all chain trap with a [1/d^1.2] coupling falloff — the
    collective-motional-mode regime.  The default ion-trap preset. *)

val iontrap_nn : iontrap
(** Nearest-neighbour-only trap (segmented/shuttling architecture):
    [coupling_range = 1], distance-independent bound. *)
