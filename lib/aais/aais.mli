(** An Abstract Analog Instruction Set: the compiler's view of a device.

    Bundles the variable pool, the instruction list and a constraint check
    on the runtime-fixed variables (geometric feasibility of atom
    layouts).  Built by {!Rydberg.build} / {!Heisenberg.build}; the
    compiler core consumes only this interface. *)

type t = {
  name : string;
  n_qubits : int;
  pool : Variable.pool;
  instructions : Instruction.t list;
  check_fixed : float array -> string list;
      (** [check_fixed env] returns human-readable violations of the
          runtime-fixed-variable constraints (empty = feasible).  Drives
          the evolution-time iteration of paper §5.2. *)
  fingerprint : string;
      (** Builder-supplied rendering of every device parameter that is
          {e not} visible through the variables and channels — the
          parameters captured only inside the [check_fixed] closure
          (e.g. the minimum atom separation).  Part of the structural
          cache key computed by {!Shape}; two AAIS values whose
          variables, channels and fingerprint all agree are
          interchangeable for compilation. *)
  sites : (int * int option) array;
      (** Per lattice site, the variable ids of its coordinates:
          [(x_id, Some y_id)] on a plane, [(x_id, None)] on a line.
          Empty when the device has no spatial layout (e.g.
          Heisenberg).  {!Shape} uses this to anchor the first site at
          the origin when rendering the structural cache key, so
          rigidly-translated devices share one plan. *)
}

val make :
  name:string ->
  n_qubits:int ->
  pool:Variable.pool ->
  instructions:Instruction.t list ->
  ?check_fixed:(float array -> string list) ->
  ?fingerprint:string ->
  ?sites:(int * int option) array ->
  unit ->
  t
(** Validates that channel [cid]s are dense [0 .. count-1] (raises
    [Invalid_argument] otherwise).  [fingerprint] defaults to [""] —
    correct only when [check_fixed] captures nothing beyond what the
    variables and channels already expose.  [sites] defaults to [[||]]
    (no spatial layout, no key canonicalization). *)

val channels : t -> Instruction.channel array
(** All channels indexed by [cid]. *)

val channel_count : t -> int

val variable : t -> int -> Variable.t

val variables : t -> Variable.t array

val dynamic_variable_ids : t -> int list

val fixed_variable_ids : t -> int list
