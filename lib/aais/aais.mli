(** An Abstract Analog Instruction Set: the compiler's view of a device.

    Bundles the variable pool, the instruction list and a constraint check
    on the runtime-fixed variables (geometric feasibility of atom
    layouts).  Built by {!Rydberg.build} / {!Heisenberg.build}; the
    compiler core consumes only this interface. *)

type t = {
  name : string;
  n_qubits : int;
  pool : Variable.pool;
  instructions : Instruction.t list;
  check_fixed : float array -> string list;
      (** [check_fixed env] returns human-readable violations of the
          runtime-fixed-variable constraints (empty = feasible).  Drives
          the evolution-time iteration of paper §5.2. *)
}

val make :
  name:string ->
  n_qubits:int ->
  pool:Variable.pool ->
  instructions:Instruction.t list ->
  ?check_fixed:(float array -> string list) ->
  unit ->
  t
(** Validates that channel [cid]s are dense [0 .. count-1] (raises
    [Invalid_argument] otherwise). *)

val channels : t -> Instruction.channel array
(** All channels indexed by [cid]. *)

val channel_count : t -> int

val variable : t -> int -> Variable.t

val variables : t -> Variable.t array

val dynamic_variable_ids : t -> int list

val fixed_variable_ids : t -> int list
