(** An Abstract Analog Instruction Set: the compiler's view of a device.

    Bundles the variable pool, the instruction list and a constraint check
    on the runtime-fixed variables (geometric feasibility of atom
    layouts).  Built by {!Rydberg.build} / {!Heisenberg.build}; the
    compiler core consumes only this interface. *)

type truncation = {
  radius : float;  (** interaction-cutoff radius (µm) the builder applied *)
  kept_pairs : int;  (** pair channels emitted *)
  dropped_pairs : int;  (** pair channels omitted (beyond [radius]) *)
  dropped_l1 : float;
      (** L1 weight of every omitted effect, in the channel amplitude's
          units (MHz for Rydberg): an upper bound on the per-unit-time
          operator-norm error of the truncated device Hamiltonian.
          Multiplied by the evolution time it adds to the Theorem-1
          bound; the analyzer reports it as [QT029]. *)
  max_dropped : float;  (** largest single omitted pair amplitude *)
}
(** Summary of an interaction cutoff a builder applied while emitting
    pair channels (e.g. {!Rydberg.build} with a neighbor-list cutoff).
    Only present when pairs were actually dropped — an AAIS whose cutoff
    covered the full layout is byte-identical to the exact one. *)

type t = {
  name : string;
  n_qubits : int;
  pool : Variable.pool;
  instructions : Instruction.t list;
  check_fixed : float array -> string list;
      (** [check_fixed env] returns human-readable violations of the
          runtime-fixed-variable constraints (empty = feasible).  Drives
          the evolution-time iteration of paper §5.2. *)
  fingerprint : string;
      (** Builder-supplied rendering of every device parameter that is
          {e not} visible through the variables and channels — the
          parameters captured only inside the [check_fixed] closure
          (e.g. the minimum atom separation).  Part of the structural
          cache key computed by {!Shape}; two AAIS values whose
          variables, channels and fingerprint all agree are
          interchangeable for compilation. *)
  sites : (int * int option) array;
      (** Per lattice site, the variable ids of its coordinates:
          [(x_id, Some y_id)] on a plane, [(x_id, None)] on a line.
          Empty when the device has no spatial layout (e.g.
          Heisenberg).  {!Shape} uses this to anchor the first site at
          the origin when rendering the structural cache key, so
          rigidly-translated devices share one plan. *)
  truncation : truncation option;
      (** Interaction-cutoff summary when the builder dropped pair
          channels; [None] for exact devices.  Not part of the
          structural cache key — the emitted channels already determine
          it. *)
}

val make :
  name:string ->
  n_qubits:int ->
  pool:Variable.pool ->
  instructions:Instruction.t list ->
  ?check_fixed:(float array -> string list) ->
  ?fingerprint:string ->
  ?sites:(int * int option) array ->
  ?truncation:truncation ->
  unit ->
  t
(** Validates that channel [cid]s are dense [0 .. count-1] (raises
    [Invalid_argument] otherwise).  [fingerprint] defaults to [""] —
    correct only when [check_fixed] captures nothing beyond what the
    variables and channels already expose.  [sites] defaults to [[||]]
    (no spatial layout, no key canonicalization). *)

val channels : t -> Instruction.channel array
(** All channels indexed by [cid]. *)

val channel_count : t -> int

val variable : t -> int -> Variable.t

val variables : t -> Variable.t array

val dynamic_variable_ids : t -> int list

val fixed_variable_ids : t -> int list
