type t =
  | Const of float
  | Var of int
  | Neg of t
  | Add of t * t
  | Sub of t * t
  | Mul of t * t
  | Div of t * t
  | Pow_int of t * int
  | Sin of t
  | Cos of t

let const x = Const x
let var (v : Variable.t) = Var v.Variable.id
let ( + ) a b = Add (a, b)
let ( - ) a b = Sub (a, b)
let ( * ) a b = Mul (a, b)
let ( / ) a b = Div (a, b)
let pow a n = Pow_int (a, n)
let neg a = Neg a
let sin_ a = Sin a
let cos_ a = Cos a

let rec eval e ~env =
  match e with
  | Const x -> x
  | Var id -> env.(id)
  | Neg a -> -.eval a ~env
  | Add (a, b) -> Stdlib.( +. ) (eval a ~env) (eval b ~env)
  | Sub (a, b) -> Stdlib.( -. ) (eval a ~env) (eval b ~env)
  | Mul (a, b) -> Stdlib.( *. ) (eval a ~env) (eval b ~env)
  | Div (a, b) -> Stdlib.( /. ) (eval a ~env) (eval b ~env)
  | Pow_int (a, n) ->
      let x = eval a ~env in
      let rec go acc base n =
        if n = 0 then acc
        else if n land 1 = 1 then go (Stdlib.( *. ) acc base) (Stdlib.( *. ) base base) (n asr 1)
        else go acc (Stdlib.( *. ) base base) (n asr 1)
      in
      if n >= 0 then go 1.0 x n else Stdlib.( /. ) 1.0 (go 1.0 x (Stdlib.( ~- ) n))
  | Sin a -> Stdlib.sin (eval a ~env)
  | Cos a -> Stdlib.cos (eval a ~env)

module Int_set = Set.Make (Int)

let rec var_set = function
  | Const _ -> Int_set.empty
  | Var id -> Int_set.singleton id
  | Neg a | Sin a | Cos a | Pow_int (a, _) -> var_set a
  | Add (a, b) | Sub (a, b) | Mul (a, b) | Div (a, b) ->
      Int_set.union (var_set a) (var_set b)

let vars e = Int_set.elements (var_set e)
let depends_on e id = Int_set.mem id (var_set e)

let rec simplify e =
  match e with
  | Const _ | Var _ -> e
  | Neg a -> (
      match simplify a with
      | Const x -> Const (-.x)
      | Neg b -> b
      | a' -> Neg a')
  | Add (a, b) -> (
      match (simplify a, simplify b) with
      | Const x, Const y -> Const (Stdlib.( +. ) x y)
      | Const 0.0, b' -> b'
      | a', Const 0.0 -> a'
      | a', b' -> Add (a', b'))
  | Sub (a, b) -> (
      match (simplify a, simplify b) with
      | Const x, Const y -> Const (Stdlib.( -. ) x y)
      | a', Const 0.0 -> a'
      | Const 0.0, b' -> simplify (Neg b')
      | a', b' -> Sub (a', b'))
  | Mul (a, b) -> (
      match (simplify a, simplify b) with
      | Const x, Const y -> Const (Stdlib.( *. ) x y)
      | Const 0.0, _ | _, Const 0.0 -> Const 0.0
      | Const 1.0, b' -> b'
      | a', Const 1.0 -> a'
      | a', b' -> Mul (a', b'))
  | Div (a, b) -> (
      match (simplify a, simplify b) with
      | Const x, Const y when y <> 0.0 -> Const (Stdlib.( /. ) x y)
      | a', Const 1.0 -> a'
      | Const 0.0, b' when b' <> Const 0.0 -> Const 0.0
      | a', b' -> Div (a', b'))
  | Pow_int (a, n) -> (
      match (simplify a, n) with
      | a', 1 -> a'
      | _, 0 -> Const 1.0
      | Const x, n -> Const (eval (Pow_int (Const x, n)) ~env:[||])
      | a', n -> Pow_int (a', n))
  | Sin a -> (
      match simplify a with Const x -> Const (Stdlib.sin x) | a' -> Sin a')
  | Cos a -> (
      match simplify a with Const x -> Const (Stdlib.cos x) | a' -> Cos a')

let rec deriv_raw e id =
  match e with
  | Const _ -> Const 0.0
  | Var v -> if v = id then Const 1.0 else Const 0.0
  | Neg a -> Neg (deriv_raw a id)
  | Add (a, b) -> Add (deriv_raw a id, deriv_raw b id)
  | Sub (a, b) -> Sub (deriv_raw a id, deriv_raw b id)
  | Mul (a, b) -> Add (Mul (deriv_raw a id, b), Mul (a, deriv_raw b id))
  | Div (a, b) ->
      Div (Sub (Mul (deriv_raw a id, b), Mul (a, deriv_raw b id)), Pow_int (b, 2))
  | Pow_int (a, n) ->
      Mul
        ( Mul (Const (float_of_int n), Pow_int (a, Stdlib.( - ) n 1)),
          deriv_raw a id )
  | Sin a -> Mul (Cos a, deriv_raw a id)
  | Cos a -> Neg (Mul (Sin a, deriv_raw a id))

let deriv e id = simplify (deriv_raw e id)

let is_linear_in e id =
  match simplify e with
  | Var v when v = id -> Some 1.0
  | Mul (Const k, Var v) | Mul (Var v, Const k) when v = id -> Some k
  | Div (Var v, Const k) when v = id && k <> 0.0 -> Some (Stdlib.( /. ) 1.0 k)
  | Neg (Var v) when v = id -> Some (-1.0)
  | Neg (Mul (Const k, Var v)) | Neg (Mul (Var v, Const k)) when v = id ->
      Some (-.k)
  | Const _ | Var _ | Neg _ | Add _ | Sub _ | Mul _ | Div _ | Pow_int _ | Sin _
  | Cos _ ->
      None

let rec pp ppf = function
  | Const x -> Format.fprintf ppf "%g" x
  | Var id -> Format.fprintf ppf "v%d" id
  | Neg a -> Format.fprintf ppf "-(%a)" pp a
  | Add (a, b) -> Format.fprintf ppf "(%a + %a)" pp a pp b
  | Sub (a, b) -> Format.fprintf ppf "(%a - %a)" pp a pp b
  | Mul (a, b) -> Format.fprintf ppf "(%a * %a)" pp a pp b
  | Div (a, b) -> Format.fprintf ppf "(%a / %a)" pp a pp b
  | Pow_int (a, n) -> Format.fprintf ppf "(%a)^%d" pp a n
  | Sin a -> Format.fprintf ppf "sin(%a)" pp a
  | Cos a -> Format.fprintf ppf "cos(%a)" pp a
