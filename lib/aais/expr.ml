type t =
  | Const of float
  | Var of int
  | Neg of t
  | Add of t * t
  | Sub of t * t
  | Mul of t * t
  | Div of t * t
  | Pow_int of t * int
  | Sin of t
  | Cos of t

let const x = Const x
let var (v : Variable.t) = Var v.Variable.id
let ( + ) a b = Add (a, b)
let ( - ) a b = Sub (a, b)
let ( * ) a b = Mul (a, b)
let ( / ) a b = Div (a, b)
let pow a n = Pow_int (a, n)
let neg a = Neg a
let sin_ a = Sin a
let cos_ a = Cos a

(* binary exponentiation, shared by [eval] and the interval evaluator so
   interval endpoints reproduce [eval]'s rounding exactly *)
let int_pow_nonneg x n =
  let rec go acc base n =
    if n = 0 then acc
    else if n land 1 = 1 then go (Stdlib.( *. ) acc base) (Stdlib.( *. ) base base) (n asr 1)
    else go acc (Stdlib.( *. ) base base) (n asr 1)
  in
  go 1.0 x n

let int_pow x n =
  if n >= 0 then int_pow_nonneg x n
  else Stdlib.( /. ) 1.0 (int_pow_nonneg x (Stdlib.( ~- ) n))

let rec eval e ~env =
  match e with
  | Const x -> x
  | Var id -> env.(id)
  | Neg a -> -.eval a ~env
  | Add (a, b) -> Stdlib.( +. ) (eval a ~env) (eval b ~env)
  | Sub (a, b) -> Stdlib.( -. ) (eval a ~env) (eval b ~env)
  | Mul (a, b) -> Stdlib.( *. ) (eval a ~env) (eval b ~env)
  | Div (a, b) -> Stdlib.( /. ) (eval a ~env) (eval b ~env)
  | Pow_int (a, n) -> int_pow (eval a ~env) n
  | Sin a -> Stdlib.sin (eval a ~env)
  | Cos a -> Stdlib.cos (eval a ~env)

module Int_set = Set.Make (Int)

let rec var_set = function
  | Const _ -> Int_set.empty
  | Var id -> Int_set.singleton id
  | Neg a | Sin a | Cos a | Pow_int (a, _) -> var_set a
  | Add (a, b) | Sub (a, b) | Mul (a, b) | Div (a, b) ->
      Int_set.union (var_set a) (var_set b)

let vars e = Int_set.elements (var_set e)
let depends_on e id = Int_set.mem id (var_set e)

let rec simplify e =
  match e with
  | Const _ | Var _ -> e
  | Neg a -> (
      match simplify a with
      | Const x -> Const (-.x)
      | Neg b -> b
      | a' -> Neg a')
  | Add (a, b) -> (
      match (simplify a, simplify b) with
      | Const x, Const y -> Const (Stdlib.( +. ) x y)
      | Const 0.0, b' -> b'
      | a', Const 0.0 -> a'
      | a', b' -> Add (a', b'))
  | Sub (a, b) -> (
      match (simplify a, simplify b) with
      | Const x, Const y -> Const (Stdlib.( -. ) x y)
      | a', Const 0.0 -> a'
      | Const 0.0, b' -> simplify (Neg b')
      | a', b' -> Sub (a', b'))
  | Mul (a, b) -> (
      match (simplify a, simplify b) with
      | Const x, Const y -> Const (Stdlib.( *. ) x y)
      | Const 0.0, _ | _, Const 0.0 -> Const 0.0
      | Const 1.0, b' -> b'
      | a', Const 1.0 -> a'
      | a', b' -> Mul (a', b'))
  | Div (a, b) -> (
      match (simplify a, simplify b) with
      | Const x, Const y when y <> 0.0 -> Const (Stdlib.( /. ) x y)
      | a', Const 1.0 -> a'
      | Const 0.0, b' when b' <> Const 0.0 -> Const 0.0
      | a', b' -> Div (a', b'))
  | Pow_int (a, n) -> (
      match (simplify a, n) with
      | a', 1 -> a'
      | _, 0 -> Const 1.0
      | Const x, n -> Const (eval (Pow_int (Const x, n)) ~env:[||])
      | a', n -> Pow_int (a', n))
  | Sin a -> (
      match simplify a with Const x -> Const (Stdlib.sin x) | a' -> Sin a')
  | Cos a -> (
      match simplify a with Const x -> Const (Stdlib.cos x) | a' -> Cos a')

let rec deriv_raw e id =
  match e with
  | Const _ -> Const 0.0
  | Var v -> if v = id then Const 1.0 else Const 0.0
  | Neg a -> Neg (deriv_raw a id)
  | Add (a, b) -> Add (deriv_raw a id, deriv_raw b id)
  | Sub (a, b) -> Sub (deriv_raw a id, deriv_raw b id)
  | Mul (a, b) -> Add (Mul (deriv_raw a id, b), Mul (a, deriv_raw b id))
  | Div (a, b) ->
      Div (Sub (Mul (deriv_raw a id, b), Mul (a, deriv_raw b id)), Pow_int (b, 2))
  | Pow_int (a, n) ->
      Mul
        ( Mul (Const (float_of_int n), Pow_int (a, Stdlib.( - ) n 1)),
          deriv_raw a id )
  | Sin a -> Mul (Cos a, deriv_raw a id)
  | Cos a -> Neg (Mul (Sin a, deriv_raw a id))

let deriv e id = simplify (deriv_raw e id)

let is_linear_in e id =
  match simplify e with
  | Var v when v = id -> Some 1.0
  | Mul (Const k, Var v) | Mul (Var v, Const k) when v = id -> Some k
  | Div (Var v, Const k) when v = id && k <> 0.0 -> Some (Stdlib.( /. ) 1.0 k)
  | Neg (Var v) when v = id -> Some (-1.0)
  | Neg (Mul (Const k, Var v)) | Neg (Mul (Var v, Const k)) when v = id ->
      Some (-.k)
  | Const _ | Var _ | Neg _ | Add _ | Sub _ | Mul _ | Div _ | Pow_int _ | Sin _
  | Cos _ ->
      None

(* ---- interval evaluation ------------------------------------------- *)

(* A closed interval [lo, hi] with possibly infinite endpoints.  The
   arithmetic is conservative: results always enclose the image of the
   true function over the inputs, widening to the whole line whenever a
   tighter enclosure would require case analysis we cannot justify
   (division through zero, indeterminate endpoint products). *)

let whole = (neg_infinity, infinity)

(* an endpoint combination that produced NaN (inf - inf, 0 * inf after
   IEEE, ...) carries no information: widen to the whole line *)
let norm ((lo, hi) as i) =
  if Float.is_nan lo || Float.is_nan hi then whole else i

(* endpoint product with the 0 * inf = 0 convention: an infinite endpoint
   encodes an unbounded direction, and scaling it by exactly zero
   contributes nothing to the product's range *)
let mul_ep a b = if a = 0.0 || b = 0.0 then 0.0 else Stdlib.( *. ) a b

let imul (a, b) (c, d) =
  let p1 = mul_ep a c and p2 = mul_ep a d and p3 = mul_ep b c and p4 = mul_ep b d in
  norm
    ( Float.min (Float.min p1 p2) (Float.min p3 p4),
      Float.max (Float.max p1 p2) (Float.max p3 p4) )

(* reciprocal of an interval.  When the interval straddles zero in its
   interior the reciprocal is two disconnected rays; we return the whole
   line (the convex hull), which stays sound. *)
let iinv (c, d) =
  if c = 0.0 && d = 0.0 then whole
  else if c >= 0.0 then
    (* [0, d] or [c, d] with c > 0: positive ray *)
    ( (if d = infinity then 0.0 else Stdlib.( /. ) 1.0 d),
      if c = 0.0 then infinity else Stdlib.( /. ) 1.0 c )
  else if d <= 0.0 then
    ( (if d = 0.0 then neg_infinity else Stdlib.( /. ) 1.0 d),
      if c = neg_infinity then 0.0 else Stdlib.( /. ) 1.0 c )
  else whole

let idiv u v = imul u (iinv v)

let ipow_nonneg (a, b) n =
  if n = 0 then (1.0, 1.0)
  else
    let pa = int_pow_nonneg a n and pb = int_pow_nonneg b n in
    if n land 1 = 1 then (pa, pb) (* odd: monotone *)
    else if a >= 0.0 then (pa, pb)
    else if b <= 0.0 then (pb, pa)
    else (0.0, Float.max pa pb)

let ipow i n = if n >= 0 then ipow_nonneg i n else iinv (ipow_nonneg i (-n))

let two_pi = 2.0 *. Float.pi

(* does [lo, hi] contain a point of the form offset + k * period? *)
let contains_grid_point lo hi ~offset ~period =
  if Stdlib.( -. ) hi lo >= period then true
  else
    let k = Float.ceil (Stdlib.( /. ) (Stdlib.( -. ) lo offset) period) in
    Stdlib.( +. ) offset (Stdlib.( *. ) k period) <= hi

let icos (a, b) =
  if (not (Float.is_finite a)) || not (Float.is_finite b) then (-1.0, 1.0)
  else if Stdlib.( -. ) b a >= two_pi then (-1.0, 1.0)
  else
    let ca = Stdlib.cos a and cb = Stdlib.cos b in
    let lo =
      if contains_grid_point a b ~offset:Float.pi ~period:two_pi then -1.0
      else Float.min ca cb
    in
    let hi =
      if contains_grid_point a b ~offset:0.0 ~period:two_pi then 1.0
      else Float.max ca cb
    in
    (lo, hi)

(* sin x = cos (x - pi/2); shifting the interval keeps the enclosure
   conservative up to the rounding of the shift, which [icos]'s exact
   extrema (+-1) absorb *)
let isin (a, b) =
  if (not (Float.is_finite a)) || not (Float.is_finite b) then (-1.0, 1.0)
  else if Stdlib.( -. ) b a >= two_pi then (-1.0, 1.0)
  else
    let sa = Stdlib.sin a and sb = Stdlib.sin b in
    let lo =
      if contains_grid_point a b ~offset:(Stdlib.( /. ) (-.Float.pi) 2.0) ~period:two_pi
      then -1.0
      else Float.min sa sb
    in
    let hi =
      if contains_grid_point a b ~offset:(Stdlib.( /. ) Float.pi 2.0) ~period:two_pi
      then 1.0
      else Float.max sa sb
    in
    (lo, hi)

let rec eval_interval e ~bounds =
  match e with
  | Const x -> (x, x)
  | Var id ->
      let ((lo, hi) as i) = bounds.(id) in
      if Float.is_nan lo || Float.is_nan hi || lo > hi then whole else i
  | Neg a ->
      let lo, hi = eval_interval a ~bounds in
      (-.hi, -.lo)
  | Add (a, b) ->
      let alo, ahi = eval_interval a ~bounds and blo, bhi = eval_interval b ~bounds in
      norm (Stdlib.( +. ) alo blo, Stdlib.( +. ) ahi bhi)
  | Sub (a, b) ->
      let alo, ahi = eval_interval a ~bounds and blo, bhi = eval_interval b ~bounds in
      norm (Stdlib.( -. ) alo bhi, Stdlib.( -. ) ahi blo)
  | Mul (a, b) -> imul (eval_interval a ~bounds) (eval_interval b ~bounds)
  | Div (a, b) -> idiv (eval_interval a ~bounds) (eval_interval b ~bounds)
  | Pow_int (a, n) -> ipow (eval_interval a ~bounds) n
  | Sin a -> isin (eval_interval a ~bounds)
  | Cos a -> icos (eval_interval a ~bounds)

let rec pp ppf = function
  | Const x -> Format.fprintf ppf "%g" x
  | Var id -> Format.fprintf ppf "v%d" id
  | Neg a -> Format.fprintf ppf "-(%a)" pp a
  | Add (a, b) -> Format.fprintf ppf "(%a + %a)" pp a pp b
  | Sub (a, b) -> Format.fprintf ppf "(%a - %a)" pp a pp b
  | Mul (a, b) -> Format.fprintf ppf "(%a * %a)" pp a pp b
  | Div (a, b) -> Format.fprintf ppf "(%a / %a)" pp a pp b
  | Pow_int (a, n) -> Format.fprintf ppf "(%a)^%d" pp a n
  | Sin a -> Format.fprintf ppf "sin(%a)" pp a
  | Cos a -> Format.fprintf ppf "cos(%a)" pp a
