type t =
  | Const of float
  | Var of int
  | Neg of t
  | Add of t * t
  | Sub of t * t
  | Mul of t * t
  | Div of t * t
  | Pow_int of t * int
  | Sin of t
  | Cos of t

let const x = Const x
let var (v : Variable.t) = Var v.Variable.id
let ( + ) a b = Add (a, b)
let ( - ) a b = Sub (a, b)
let ( * ) a b = Mul (a, b)
let ( / ) a b = Div (a, b)
let pow a n = Pow_int (a, n)
let neg a = Neg a
let sin_ a = Sin a
let cos_ a = Cos a

(* binary exponentiation, shared by [eval] and the interval evaluator so
   interval endpoints reproduce [eval]'s rounding exactly *)
let int_pow_nonneg x n =
  let rec go acc base n =
    if n = 0 then acc
    else if n land 1 = 1 then go (Stdlib.( *. ) acc base) (Stdlib.( *. ) base base) (n asr 1)
    else go acc (Stdlib.( *. ) base base) (n asr 1)
  in
  go 1.0 x n

let int_pow x n =
  if n >= 0 then int_pow_nonneg x n
  else Stdlib.( /. ) 1.0 (int_pow_nonneg x (Stdlib.( ~- ) n))

let rec eval e ~env =
  match e with
  | Const x -> x
  | Var id -> env.(id)
  | Neg a -> -.eval a ~env
  | Add (a, b) -> Stdlib.( +. ) (eval a ~env) (eval b ~env)
  | Sub (a, b) -> Stdlib.( -. ) (eval a ~env) (eval b ~env)
  | Mul (a, b) -> Stdlib.( *. ) (eval a ~env) (eval b ~env)
  | Div (a, b) -> Stdlib.( /. ) (eval a ~env) (eval b ~env)
  | Pow_int (a, n) -> int_pow (eval a ~env) n
  | Sin a -> Stdlib.sin (eval a ~env)
  | Cos a -> Stdlib.cos (eval a ~env)

module Int_set = Set.Make (Int)

let rec var_set = function
  | Const _ -> Int_set.empty
  | Var id -> Int_set.singleton id
  | Neg a | Sin a | Cos a | Pow_int (a, _) -> var_set a
  | Add (a, b) | Sub (a, b) | Mul (a, b) | Div (a, b) ->
      Int_set.union (var_set a) (var_set b)

let vars e = Int_set.elements (var_set e)
let depends_on e id = Int_set.mem id (var_set e)

let rec simplify e =
  match e with
  | Const _ | Var _ -> e
  | Neg a -> (
      match simplify a with
      | Const x -> Const (-.x)
      | Neg b -> b
      | a' -> Neg a')
  | Add (a, b) -> (
      match (simplify a, simplify b) with
      | Const x, Const y -> Const (Stdlib.( +. ) x y)
      | Const 0.0, b' -> b'
      | a', Const 0.0 -> a'
      | a', b' -> Add (a', b'))
  | Sub (a, b) -> (
      match (simplify a, simplify b) with
      | Const x, Const y -> Const (Stdlib.( -. ) x y)
      | a', Const 0.0 -> a'
      | Const 0.0, b' -> simplify (Neg b')
      | a', b' -> Sub (a', b'))
  | Mul (a, b) -> (
      match (simplify a, simplify b) with
      | Const x, Const y -> Const (Stdlib.( *. ) x y)
      | Const 0.0, _ | _, Const 0.0 -> Const 0.0
      | Const 1.0, b' -> b'
      | a', Const 1.0 -> a'
      | a', b' -> Mul (a', b'))
  | Div (a, b) -> (
      match (simplify a, simplify b) with
      | Const x, Const y when y <> 0.0 -> Const (Stdlib.( /. ) x y)
      | a', Const 1.0 -> a'
      | Const 0.0, b' when b' <> Const 0.0 -> Const 0.0
      | a', b' -> Div (a', b'))
  | Pow_int (a, n) -> (
      match (simplify a, n) with
      | a', 1 -> a'
      | _, 0 -> Const 1.0
      | Const x, n -> Const (eval (Pow_int (Const x, n)) ~env:[||])
      | a', n -> Pow_int (a', n))
  | Sin a -> (
      match simplify a with Const x -> Const (Stdlib.sin x) | a' -> Sin a')
  | Cos a -> (
      match simplify a with Const x -> Const (Stdlib.cos x) | a' -> Cos a')

let rec deriv_raw e id =
  match e with
  | Const _ -> Const 0.0
  | Var v -> if v = id then Const 1.0 else Const 0.0
  | Neg a -> Neg (deriv_raw a id)
  | Add (a, b) -> Add (deriv_raw a id, deriv_raw b id)
  | Sub (a, b) -> Sub (deriv_raw a id, deriv_raw b id)
  | Mul (a, b) -> Add (Mul (deriv_raw a id, b), Mul (a, deriv_raw b id))
  | Div (a, b) ->
      Div (Sub (Mul (deriv_raw a id, b), Mul (a, deriv_raw b id)), Pow_int (b, 2))
  | Pow_int (a, n) ->
      Mul
        ( Mul (Const (float_of_int n), Pow_int (a, Stdlib.( - ) n 1)),
          deriv_raw a id )
  | Sin a -> Mul (Cos a, deriv_raw a id)
  | Cos a -> Neg (Mul (Sin a, deriv_raw a id))

let deriv e id = simplify (deriv_raw e id)

let is_linear_in e id =
  match simplify e with
  | Var v when v = id -> Some 1.0
  | Mul (Const k, Var v) | Mul (Var v, Const k) when v = id -> Some k
  | Div (Var v, Const k) when v = id && k <> 0.0 -> Some (Stdlib.( /. ) 1.0 k)
  | Neg (Var v) when v = id -> Some (-1.0)
  | Neg (Mul (Const k, Var v)) | Neg (Mul (Var v, Const k)) when v = id ->
      Some (-.k)
  | Const _ | Var _ | Neg _ | Add _ | Sub _ | Mul _ | Div _ | Pow_int _ | Sin _
  | Cos _ ->
      None

(* ---- interval evaluation ------------------------------------------- *)

(* A closed interval [lo, hi] with possibly infinite endpoints.  The
   arithmetic is conservative: results always enclose the image of the
   true function over the inputs, widening to the whole line whenever a
   tighter enclosure would require case analysis we cannot justify
   (division through zero, indeterminate endpoint products). *)

let whole = (neg_infinity, infinity)

(* an endpoint combination that produced NaN (inf - inf, 0 * inf after
   IEEE, ...) carries no information: widen to the whole line *)
let norm ((lo, hi) as i) =
  if Float.is_nan lo || Float.is_nan hi then whole else i

(* endpoint product with the 0 * inf = 0 convention: an infinite endpoint
   encodes an unbounded direction, and scaling it by exactly zero
   contributes nothing to the product's range *)
let mul_ep a b = if a = 0.0 || b = 0.0 then 0.0 else Stdlib.( *. ) a b

let imul (a, b) (c, d) =
  let p1 = mul_ep a c and p2 = mul_ep a d and p3 = mul_ep b c and p4 = mul_ep b d in
  norm
    ( Float.min (Float.min p1 p2) (Float.min p3 p4),
      Float.max (Float.max p1 p2) (Float.max p3 p4) )

(* reciprocal of an interval.  When the interval straddles zero in its
   interior the reciprocal is two disconnected rays; we return the whole
   line (the convex hull), which stays sound. *)
let iinv (c, d) =
  if c = 0.0 && d = 0.0 then whole
  else if c >= 0.0 then
    (* [0, d] or [c, d] with c > 0: positive ray *)
    ( (if d = infinity then 0.0 else Stdlib.( /. ) 1.0 d),
      if c = 0.0 then infinity else Stdlib.( /. ) 1.0 c )
  else if d <= 0.0 then
    ( (if d = 0.0 then neg_infinity else Stdlib.( /. ) 1.0 d),
      if c = neg_infinity then 0.0 else Stdlib.( /. ) 1.0 c )
  else whole

let idiv u v = imul u (iinv v)

let ipow_nonneg (a, b) n =
  if n = 0 then (1.0, 1.0)
  else
    let pa = int_pow_nonneg a n and pb = int_pow_nonneg b n in
    if n land 1 = 1 then (pa, pb) (* odd: monotone *)
    else if a >= 0.0 then (pa, pb)
    else if b <= 0.0 then (pb, pa)
    else (0.0, Float.max pa pb)

let ipow i n = if n >= 0 then ipow_nonneg i n else iinv (ipow_nonneg i (-n))

let two_pi = 2.0 *. Float.pi

(* does [lo, hi] contain a point of the form offset + k * period? *)
let contains_grid_point lo hi ~offset ~period =
  if Stdlib.( -. ) hi lo >= period then true
  else
    let k = Float.ceil (Stdlib.( /. ) (Stdlib.( -. ) lo offset) period) in
    Stdlib.( +. ) offset (Stdlib.( *. ) k period) <= hi

let icos (a, b) =
  if (not (Float.is_finite a)) || not (Float.is_finite b) then (-1.0, 1.0)
  else if Stdlib.( -. ) b a >= two_pi then (-1.0, 1.0)
  else
    let ca = Stdlib.cos a and cb = Stdlib.cos b in
    let lo =
      if contains_grid_point a b ~offset:Float.pi ~period:two_pi then -1.0
      else Float.min ca cb
    in
    let hi =
      if contains_grid_point a b ~offset:0.0 ~period:two_pi then 1.0
      else Float.max ca cb
    in
    (lo, hi)

(* sin x = cos (x - pi/2); shifting the interval keeps the enclosure
   conservative up to the rounding of the shift, which [icos]'s exact
   extrema (+-1) absorb *)
let isin (a, b) =
  if (not (Float.is_finite a)) || not (Float.is_finite b) then (-1.0, 1.0)
  else if Stdlib.( -. ) b a >= two_pi then (-1.0, 1.0)
  else
    let sa = Stdlib.sin a and sb = Stdlib.sin b in
    let lo =
      if contains_grid_point a b ~offset:(Stdlib.( /. ) (-.Float.pi) 2.0) ~period:two_pi
      then -1.0
      else Float.min sa sb
    in
    let hi =
      if contains_grid_point a b ~offset:(Stdlib.( /. ) Float.pi 2.0) ~period:two_pi
      then 1.0
      else Float.max sa sb
    in
    (lo, hi)

(* The primitives above, packaged for reuse by the kernel verifier
   ([Qturbo_analysis.Kernel_check]): its abstract interpreter must run
   the {e same} interval arithmetic as [eval_interval], otherwise the
   enclosure comparison would report rounding discrepancies as range
   violations. *)
module Interval = struct
  type it = float * float

  let whole = whole
  let of_const x = (x, x)

  let of_bound ((lo, hi) as i) =
    if Float.is_nan lo || Float.is_nan hi || lo > hi then whole else i

  let neg (lo, hi) = (-.hi, -.lo)

  let add (alo, ahi) (blo, bhi) =
    norm (Stdlib.( +. ) alo blo, Stdlib.( +. ) ahi bhi)

  let sub (alo, ahi) (blo, bhi) =
    norm (Stdlib.( -. ) alo bhi, Stdlib.( -. ) ahi blo)

  let mul = imul
  let div = idiv
  let pow = ipow
  let sin_ = isin
  let cos_ = icos
end

let rec eval_interval e ~bounds =
  match e with
  | Const x -> (x, x)
  | Var id ->
      let ((lo, hi) as i) = bounds.(id) in
      if Float.is_nan lo || Float.is_nan hi || lo > hi then whole else i
  | Neg a ->
      let lo, hi = eval_interval a ~bounds in
      (-.hi, -.lo)
  | Add (a, b) ->
      let alo, ahi = eval_interval a ~bounds and blo, bhi = eval_interval b ~bounds in
      norm (Stdlib.( +. ) alo blo, Stdlib.( +. ) ahi bhi)
  | Sub (a, b) ->
      let alo, ahi = eval_interval a ~bounds and blo, bhi = eval_interval b ~bounds in
      norm (Stdlib.( -. ) alo bhi, Stdlib.( -. ) ahi blo)
  | Mul (a, b) -> imul (eval_interval a ~bounds) (eval_interval b ~bounds)
  | Div (a, b) -> idiv (eval_interval a ~bounds) (eval_interval b ~bounds)
  | Pow_int (a, n) -> ipow (eval_interval a ~bounds) n
  | Sin a -> isin (eval_interval a ~bounds)
  | Cos a -> icos (eval_interval a ~bounds)

(* ---- compiled kernels ----------------------------------------------- *)

(* A flat postfix program packed one instruction per word —
   [(arg lsl 5) lor op] — plus a const table.  [eval_kernel] is a
   tight non-allocating loop over a reusable stack; it performs
   exactly the float operations of [eval] in the same order, so its
   result is bitwise-identical.

   A peephole pass fuses the patterns the Rydberg channels actually
   produce (a van-der-Waals tail is [c / ((Δx)² + (Δy)²)³]): pushing
   two variables straight into a binary op, squaring a just-computed
   difference, dividing a constant by the whole expression.  Fusion
   only collapses dispatch — each fused op runs the same float
   operations on the same values in the same order as the ops it
   replaces, keeping the bitwise guarantee. *)

type kernel = {
  k_prog : int array; (* (arg lsl 5) lor op *)
  k_consts : float array;
  k_depth : int; (* stack slots needed (upper bound after fusion) *)
  k_max_var : int; (* largest variable id read; -1 when closed *)
}

let op_const = 0
and op_var = 1
and op_neg = 2
and op_add = 3
and op_sub = 4
and op_mul = 5
and op_div = 6
and op_pow = 7
and op_sin = 8
and op_cos = 9

(* fused superinstructions, introduced by the peephole pass only *)
let op_vv_add = 10 (* push env.(a) + env.(b); arg = (a lsl 24) lor b *)
and op_var_add = 14 (* top <- top + env.(arg) *)
and op_const_add = 18 (* top <- top + consts.(arg) *)
and op_sq = 22 (* top <- top², ≡ pow 2 *)
and op_cube = 23 (* top <- top·(top·top), ≡ pow 3 *)
and op_dsq = 24 (* push (env.(a) - env.(b))²; arg packed as vv *)
and op_crdiv = 25 (* top <- consts.(arg) / top *)
and op_var_sin = 26 (* push sin env.(arg) *)
and op_var_cos = 27

(* [var a; var b; <binop>] → one op; [var b; <binop>] and
   [const c; <binop>] likewise; [vv_sub; pow 2] → [dsq]; pow 2 and
   pow 3 get dedicated ops ([int_pow]'s binary exponentiation performs
   [1.0·(x·x)] and [(1.0·x)·(x·x)] — multiplying by 1.0 is exact, so
   [x·x] and [x·(x·x)] are the same floats); [var a; sin] → [var_sin]. *)
let fuse ops args n =
  let open Stdlib in
  let fop = Array.make (Int.max 1 n) 0 and farg = Array.make (Int.max 1 n) 0 in
  let m = ref 0 in
  let emitf op arg =
    fop.(!m) <- op;
    farg.(!m) <- arg;
    incr m
  in
  let last_is op = !m > 0 && fop.(!m - 1) = op in
  let last2_are o1 o2 = !m > 1 && fop.(!m - 2) = o1 && fop.(!m - 1) = o2 in
  let pack_ok a b = a < 1 lsl 24 && b < 1 lsl 24 in
  for i = 0 to n - 1 do
    let op = ops.(i) and arg = args.(i) in
    if op >= op_add && op <= op_div then
      if last2_are op_var op_var && pack_ok farg.(!m - 2) farg.(!m - 1) then begin
        let a = farg.(!m - 2) and b = farg.(!m - 1) in
        m := !m - 2;
        emitf (op - op_add + op_vv_add) ((a lsl 24) lor b)
      end
      else if last_is op_var then begin
        let b = farg.(!m - 1) in
        m := !m - 1;
        emitf (op - op_add + op_var_add) b
      end
      else if last_is op_const then begin
        let c = farg.(!m - 1) in
        m := !m - 1;
        emitf (op - op_add + op_const_add) c
      end
      else emitf op arg
    else if op = op_pow && arg = 2 then begin
      if last_is (op_sub - op_add + op_vv_add) then begin
        let p = farg.(!m - 1) in
        m := !m - 1;
        emitf op_dsq p
      end
      else emitf op_sq 0
    end
    else if op = op_pow && arg = 3 then emitf op_cube 0
    else if op = op_sin && last_is op_var then begin
      let a = farg.(!m - 1) in
      m := !m - 1;
      emitf op_var_sin a
    end
    else if op = op_cos && last_is op_var then begin
      let a = farg.(!m - 1) in
      m := !m - 1;
      emitf op_var_cos a
    end
    else emitf op arg
  done;
  Array.init !m (fun i -> (farg.(i) lsl 5) lor (fop.(i) land 31))

let compile_raw ~fused e =
  let open Stdlib in
  let ops = ref [] and args = ref [] and count = ref 0 in
  let consts = ref [] and n_consts = ref 0 in
  let emit op arg =
    ops := op :: !ops;
    args := arg :: !args;
    incr count
  in
  let add_const x =
    consts := x :: !consts;
    incr n_consts;
    !n_consts - 1
  in
  let max_var = ref (-1) in
  let depth = ref 0 and cur = ref 0 in
  let push () =
    incr cur;
    if !cur > !depth then depth := !cur
  in
  let rec go = function
    | Const x ->
        emit op_const (add_const x);
        push ()
    | Var id ->
        emit op_var id;
        if id > !max_var then max_var := id;
        push ()
    | Neg a -> go a; emit op_neg 0
    | Add (a, b) -> go a; go b; emit op_add 0; decr cur
    | Sub (a, b) -> go a; go b; emit op_sub 0; decr cur
    | Mul (a, b) -> go a; go b; emit op_mul 0; decr cur
    | Div (Const c, b) ->
        (* [c / expr] in one dispatch; same division, same operand order *)
        let ci = add_const c in
        push ();
        go b;
        emit op_crdiv ci;
        decr cur
    | Div (a, b) -> go a; go b; emit op_div 0; decr cur
    | Pow_int (a, n) -> go a; emit op_pow n
    | Sin a -> go a; emit op_sin 0
    | Cos a -> go a; emit op_cos 0
  in
  go e;
  let n = !count in
  let op_arr = Array.make (Int.max 1 n) 0 and arg_arr = Array.make (Int.max 1 n) 0 in
  List.iteri (fun i op -> op_arr.(n - 1 - i) <- op) !ops;
  List.iteri (fun i a -> arg_arr.(n - 1 - i) <- a) !args;
  let c_arr = Array.make (Int.max 1 !n_consts) 0.0 in
  List.iteri (fun i c -> c_arr.(!n_consts - 1 - i) <- c) !consts;
  {
    k_prog =
      (if fused then fuse op_arr arg_arr n
       else Array.init n (fun i -> (arg_arr.(i) lsl 5) lor (op_arr.(i) land 31)));
    k_consts = c_arr;
    k_depth = Int.max 1 !depth;
    k_max_var = !max_var;
  }

(* Test-mode verification point: [Qturbo_analysis.Kernel_check] installs
   a verifier here so every kernel the pipeline compiles is checked at
   birth.  Default is a no-op — production builds pay nothing. *)
let compile_hook : (t -> kernel -> unit) ref = ref (fun _ _ -> ())

let compile e =
  let k = compile_raw ~fused:true e in
  !compile_hook e k;
  k

let compile_unfused e =
  let k = compile_raw ~fused:false e in
  !compile_hook e k;
  k

let kernel_length k = Array.length k.k_prog
let kernel_max_var k = k.k_max_var

(* ---- typed IR view --------------------------------------------------- *)

type binop = B_add | B_sub | B_mul | B_div

type vm_instr =
  | K_const of int
  | K_var of int
  | K_neg
  | K_binop of binop
  | K_pow of int
  | K_sin
  | K_cos
  | K_vv of binop * int * int
  | K_var_op of binop * int
  | K_const_op of binop * int
  | K_sq
  | K_cube
  | K_dsq of int * int
  | K_crdiv of int
  | K_var_sin of int
  | K_var_cos of int
  | K_unknown of { op : int; arg : int }

let binop_of_offset = function
  | 0 -> B_add
  | 1 -> B_sub
  | 2 -> B_mul
  | _ -> B_div

let offset_of_binop = function B_add -> 0 | B_sub -> 1 | B_mul -> 2 | B_div -> 3

let decode_instr instr =
  let open Stdlib in
  let arg = instr asr 5 and op = instr land 31 in
  if op = op_const then K_const arg
  else if op = op_var then K_var arg
  else if op = op_neg then K_neg
  else if op >= op_add && op <= op_div then K_binop (binop_of_offset (op - op_add))
  else if op = op_pow then K_pow arg
  else if op = op_sin then K_sin
  else if op = op_cos then K_cos
  else if op >= op_vv_add && op < op_var_add then
    K_vv (binop_of_offset (op - op_vv_add), arg lsr 24, arg land 0xffffff)
  else if op >= op_var_add && op < op_const_add then
    K_var_op (binop_of_offset (op - op_var_add), arg)
  else if op >= op_const_add && op < op_sq then
    K_const_op (binop_of_offset (op - op_const_add), arg)
  else if op = op_sq then K_sq
  else if op = op_cube then K_cube
  else if op = op_dsq then K_dsq (arg lsr 24, arg land 0xffffff)
  else if op = op_crdiv then K_crdiv arg
  else if op = op_var_sin then K_var_sin arg
  else if op = op_var_cos then K_var_cos arg
  else K_unknown { op; arg }

let encode_instr i =
  let open Stdlib in
  let pack op arg = (arg lsl 5) lor (op land 31) in
  match i with
  | K_const ci -> pack op_const ci
  | K_var v -> pack op_var v
  | K_neg -> pack op_neg 0
  | K_binop b -> pack (op_add + offset_of_binop b) 0
  | K_pow n -> pack op_pow n
  | K_sin -> pack op_sin 0
  | K_cos -> pack op_cos 0
  | K_vv (b, x, y) -> pack (op_vv_add + offset_of_binop b) ((x lsl 24) lor y)
  | K_var_op (b, v) -> pack (op_var_add + offset_of_binop b) v
  | K_const_op (b, ci) -> pack (op_const_add + offset_of_binop b) ci
  | K_sq -> pack op_sq 0
  | K_cube -> pack op_cube 0
  | K_dsq (x, y) -> pack op_dsq ((x lsl 24) lor y)
  | K_crdiv ci -> pack op_crdiv ci
  | K_var_sin v -> pack op_var_sin v
  | K_var_cos v -> pack op_var_cos v
  | K_unknown { op; arg } -> pack op arg

let kernel_view k = Array.map decode_instr k.k_prog
let kernel_consts k = Array.copy k.k_consts
let kernel_depth k = k.k_depth

let kernel_of_view prog ~consts ~depth ~max_var =
  {
    k_prog = Array.map encode_instr prog;
    k_consts = Array.copy consts;
    k_depth = depth;
    k_max_var = max_var;
  }

(* per-domain evaluation stack: kernels are shared across pool domains,
   so the scratch must be domain-local *)
let stack_key = Domain.DLS.new_key (fun () -> ref (Array.make 16 0.0))

let eval_kernel k ~env =
  let open Stdlib in
  let cell = Domain.DLS.get stack_key in
  if Array.length !cell < k.k_depth then
    cell := Array.make (Int.max k.k_depth (2 * Array.length !cell)) 0.0;
  let st = !cell in
  let prog = k.k_prog and consts = k.k_consts in
  let sp = ref 0 in
  for pc = 0 to Array.length prog - 1 do
    let instr = Array.unsafe_get prog pc in
    let arg = instr asr 5 in
    match instr land 31 with
    | 0 (* const *) ->
        Array.unsafe_set st !sp (Array.unsafe_get consts arg);
        incr sp
    | 1 (* var *) ->
        Array.unsafe_set st !sp env.(arg);
        incr sp
    | 2 (* neg *) ->
        let i = !sp - 1 in
        Array.unsafe_set st i (-.Array.unsafe_get st i)
    | 3 (* add *) ->
        decr sp;
        let i = !sp - 1 in
        Array.unsafe_set st i (Array.unsafe_get st i +. Array.unsafe_get st !sp)
    | 4 (* sub *) ->
        decr sp;
        let i = !sp - 1 in
        Array.unsafe_set st i (Array.unsafe_get st i -. Array.unsafe_get st !sp)
    | 5 (* mul *) ->
        decr sp;
        let i = !sp - 1 in
        Array.unsafe_set st i (Array.unsafe_get st i *. Array.unsafe_get st !sp)
    | 6 (* div *) ->
        decr sp;
        let i = !sp - 1 in
        Array.unsafe_set st i (Array.unsafe_get st i /. Array.unsafe_get st !sp)
    | 7 (* pow *) ->
        let i = !sp - 1 in
        Array.unsafe_set st i (int_pow (Array.unsafe_get st i) arg)
    | 8 (* sin *) ->
        let i = !sp - 1 in
        Array.unsafe_set st i (sin (Array.unsafe_get st i))
    | 9 (* cos *) ->
        let i = !sp - 1 in
        Array.unsafe_set st i (cos (Array.unsafe_get st i))
    (* fused ops: same float operations, same order, one dispatch.
       Variable reads stay bounds-checked, and [a] before [b], so a
       short [env] raises exactly where the unfused program did. *)
    | 10 (* vv_add *) ->
        let va = env.(arg lsr 24) in
        let vb = env.(arg land 0xffffff) in
        Array.unsafe_set st !sp (va +. vb);
        incr sp
    | 11 (* vv_sub *) ->
        let va = env.(arg lsr 24) in
        let vb = env.(arg land 0xffffff) in
        Array.unsafe_set st !sp (va -. vb);
        incr sp
    | 12 (* vv_mul *) ->
        let va = env.(arg lsr 24) in
        let vb = env.(arg land 0xffffff) in
        Array.unsafe_set st !sp (va *. vb);
        incr sp
    | 13 (* vv_div *) ->
        let va = env.(arg lsr 24) in
        let vb = env.(arg land 0xffffff) in
        Array.unsafe_set st !sp (va /. vb);
        incr sp
    | 14 (* var_add *) ->
        let i = !sp - 1 in
        Array.unsafe_set st i (Array.unsafe_get st i +. env.(arg))
    | 15 (* var_sub *) ->
        let i = !sp - 1 in
        Array.unsafe_set st i (Array.unsafe_get st i -. env.(arg))
    | 16 (* var_mul *) ->
        let i = !sp - 1 in
        Array.unsafe_set st i (Array.unsafe_get st i *. env.(arg))
    | 17 (* var_div *) ->
        let i = !sp - 1 in
        Array.unsafe_set st i (Array.unsafe_get st i /. env.(arg))
    | 18 (* const_add *) ->
        let i = !sp - 1 in
        Array.unsafe_set st i
          (Array.unsafe_get st i +. Array.unsafe_get consts arg)
    | 19 (* const_sub *) ->
        let i = !sp - 1 in
        Array.unsafe_set st i
          (Array.unsafe_get st i -. Array.unsafe_get consts arg)
    | 20 (* const_mul *) ->
        let i = !sp - 1 in
        Array.unsafe_set st i
          (Array.unsafe_get st i *. Array.unsafe_get consts arg)
    | 21 (* const_div *) ->
        let i = !sp - 1 in
        Array.unsafe_set st i
          (Array.unsafe_get st i /. Array.unsafe_get consts arg)
    | 22 (* sq *) ->
        let i = !sp - 1 in
        let x = Array.unsafe_get st i in
        Array.unsafe_set st i (x *. x)
    | 23 (* cube *) ->
        let i = !sp - 1 in
        let x = Array.unsafe_get st i in
        Array.unsafe_set st i (x *. (x *. x))
    | 24 (* dsq *) ->
        let va = env.(arg lsr 24) in
        let vb = env.(arg land 0xffffff) in
        let d = va -. vb in
        Array.unsafe_set st !sp (d *. d);
        incr sp
    | 25 (* crdiv *) ->
        let i = !sp - 1 in
        Array.unsafe_set st i
          (Array.unsafe_get consts arg /. Array.unsafe_get st i)
    | 26 (* var_sin *) ->
        Array.unsafe_set st !sp (sin env.(arg));
        incr sp
    | 27 (* var_cos *) ->
        Array.unsafe_set st !sp (cos env.(arg));
        incr sp
    | _ -> assert false
  done;
  st.(0)

(* ---- batched SoA evaluation ------------------------------------------ *)

(* Many kernels packed into one flat program so a residual sweep over a
   component's channels runs as a single tight loop writing into a
   reusable Bigarray buffer — no per-row closure dispatch, no boxed
   intermediate arrays.  Each row replays exactly the float operations
   [eval_kernel] would run on its kernel, in the same order, so every
   output is bitwise-identical to the per-kernel evaluator. *)
module Batch = struct
  open Stdlib

  type buffer =
    (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t

  type t = {
    b_prog : int array;  (* concatenated programs, const args rebased *)
    b_row_ptr : int array;  (* row r occupies [b_row_ptr.(r), b_row_ptr.(r+1)) *)
    b_consts : float array;  (* concatenated constant tables *)
    b_depth : int;  (* max stack depth over all rows *)
    b_max_var : int;
  }

  let length b = Array.length b.b_row_ptr - 1
  let max_var b = b.b_max_var

  let create_buffer n =
    Bigarray.Array1.create Bigarray.float64 Bigarray.c_layout (Stdlib.max 1 n)

  (* opcodes whose argument indexes the constant table — the only words
     that need rebasing when tables are concatenated (the vv/dsq pairs
     pack variable ids, everything else is a variable id or a literal) *)
  let reads_consts op =
    op = op_const || (op >= op_const_add && op <= op_const_add + 3)
    || op = op_crdiv

  let pack kernels =
    let rows = Array.length kernels in
    let row_ptr = Array.make (rows + 1) 0 in
    let total_prog = ref 0 and total_consts = ref 0 in
    Array.iter
      (fun k ->
        total_prog := !total_prog + Array.length k.k_prog;
        total_consts := !total_consts + Array.length k.k_consts)
      kernels;
    let prog = Array.make (Stdlib.max 1 !total_prog) 0 in
    let consts = Array.make (Stdlib.max 1 !total_consts) 0.0 in
    let depth = ref 1 and max_var = ref (-1) in
    let pp = ref 0 and cp = ref 0 in
    Array.iteri
      (fun r k ->
        row_ptr.(r) <- !pp;
        let off = !cp in
        Array.iter
          (fun word ->
            let op = word land 31 and arg = word asr 5 in
            prog.(!pp) <-
              (if reads_consts op then ((arg + off) lsl 5) lor op else word);
            incr pp)
          k.k_prog;
        Array.blit k.k_consts 0 consts off (Array.length k.k_consts);
        cp := off + Array.length k.k_consts;
        if k.k_depth > !depth then depth := k.k_depth;
        if k.k_max_var > !max_var then max_var := k.k_max_var)
      kernels;
    row_ptr.(rows) <- !pp;
    {
      b_prog = prog;
      b_row_ptr = row_ptr;
      b_consts = consts;
      b_depth = !depth;
      b_max_var = !max_var;
    }

  let eval b ~env ~out =
    let open Stdlib in
    let rows = length b in
    if Bigarray.Array1.dim out < rows then
      invalid_arg "Expr.Batch.eval: output buffer shorter than the batch";
    let cell = Domain.DLS.get stack_key in
    if Array.length !cell < b.b_depth then
      cell := Array.make (Int.max b.b_depth (2 * Array.length !cell)) 0.0;
    let st = !cell in
    let prog = b.b_prog and consts = b.b_consts and row_ptr = b.b_row_ptr in
    for r = 0 to rows - 1 do
      let sp = ref 0 in
      for pc = row_ptr.(r) to row_ptr.(r + 1) - 1 do
        let instr = Array.unsafe_get prog pc in
        let arg = instr asr 5 in
        match instr land 31 with
        | 0 (* const *) ->
            Array.unsafe_set st !sp (Array.unsafe_get consts arg);
            incr sp
        | 1 (* var *) ->
            Array.unsafe_set st !sp env.(arg);
            incr sp
        | 2 (* neg *) ->
            let i = !sp - 1 in
            Array.unsafe_set st i (-.Array.unsafe_get st i)
        | 3 (* add *) ->
            decr sp;
            let i = !sp - 1 in
            Array.unsafe_set st i
              (Array.unsafe_get st i +. Array.unsafe_get st !sp)
        | 4 (* sub *) ->
            decr sp;
            let i = !sp - 1 in
            Array.unsafe_set st i
              (Array.unsafe_get st i -. Array.unsafe_get st !sp)
        | 5 (* mul *) ->
            decr sp;
            let i = !sp - 1 in
            Array.unsafe_set st i
              (Array.unsafe_get st i *. Array.unsafe_get st !sp)
        | 6 (* div *) ->
            decr sp;
            let i = !sp - 1 in
            Array.unsafe_set st i
              (Array.unsafe_get st i /. Array.unsafe_get st !sp)
        | 7 (* pow *) ->
            let i = !sp - 1 in
            Array.unsafe_set st i (int_pow (Array.unsafe_get st i) arg)
        | 8 (* sin *) ->
            let i = !sp - 1 in
            Array.unsafe_set st i (sin (Array.unsafe_get st i))
        | 9 (* cos *) ->
            let i = !sp - 1 in
            Array.unsafe_set st i (cos (Array.unsafe_get st i))
        | 10 (* vv_add *) ->
            let va = env.(arg lsr 24) in
            let vb = env.(arg land 0xffffff) in
            Array.unsafe_set st !sp (va +. vb);
            incr sp
        | 11 (* vv_sub *) ->
            let va = env.(arg lsr 24) in
            let vb = env.(arg land 0xffffff) in
            Array.unsafe_set st !sp (va -. vb);
            incr sp
        | 12 (* vv_mul *) ->
            let va = env.(arg lsr 24) in
            let vb = env.(arg land 0xffffff) in
            Array.unsafe_set st !sp (va *. vb);
            incr sp
        | 13 (* vv_div *) ->
            let va = env.(arg lsr 24) in
            let vb = env.(arg land 0xffffff) in
            Array.unsafe_set st !sp (va /. vb);
            incr sp
        | 14 (* var_add *) ->
            let i = !sp - 1 in
            Array.unsafe_set st i (Array.unsafe_get st i +. env.(arg))
        | 15 (* var_sub *) ->
            let i = !sp - 1 in
            Array.unsafe_set st i (Array.unsafe_get st i -. env.(arg))
        | 16 (* var_mul *) ->
            let i = !sp - 1 in
            Array.unsafe_set st i (Array.unsafe_get st i *. env.(arg))
        | 17 (* var_div *) ->
            let i = !sp - 1 in
            Array.unsafe_set st i (Array.unsafe_get st i /. env.(arg))
        | 18 (* const_add *) ->
            let i = !sp - 1 in
            Array.unsafe_set st i
              (Array.unsafe_get st i +. Array.unsafe_get consts arg)
        | 19 (* const_sub *) ->
            let i = !sp - 1 in
            Array.unsafe_set st i
              (Array.unsafe_get st i -. Array.unsafe_get consts arg)
        | 20 (* const_mul *) ->
            let i = !sp - 1 in
            Array.unsafe_set st i
              (Array.unsafe_get st i *. Array.unsafe_get consts arg)
        | 21 (* const_div *) ->
            let i = !sp - 1 in
            Array.unsafe_set st i
              (Array.unsafe_get st i /. Array.unsafe_get consts arg)
        | 22 (* sq *) ->
            let i = !sp - 1 in
            let x = Array.unsafe_get st i in
            Array.unsafe_set st i (x *. x)
        | 23 (* cube *) ->
            let i = !sp - 1 in
            let x = Array.unsafe_get st i in
            Array.unsafe_set st i (x *. (x *. x))
        | 24 (* dsq *) ->
            let va = env.(arg lsr 24) in
            let vb = env.(arg land 0xffffff) in
            let d = va -. vb in
            Array.unsafe_set st !sp (d *. d);
            incr sp
        | 25 (* crdiv *) ->
            let i = !sp - 1 in
            Array.unsafe_set st i
              (Array.unsafe_get consts arg /. Array.unsafe_get st i)
        | 26 (* var_sin *) ->
            Array.unsafe_set st !sp (sin env.(arg));
            incr sp
        | 27 (* var_cos *) ->
            Array.unsafe_set st !sp (cos env.(arg));
            incr sp
        | _ -> assert false
      done;
      Bigarray.Array1.unsafe_set out r st.(0)
    done
end

let rec pp ppf = function
  | Const x -> Format.fprintf ppf "%g" x
  | Var id -> Format.fprintf ppf "v%d" id
  | Neg a -> Format.fprintf ppf "-(%a)" pp a
  | Add (a, b) -> Format.fprintf ppf "(%a + %a)" pp a pp b
  | Sub (a, b) -> Format.fprintf ppf "(%a - %a)" pp a pp b
  | Mul (a, b) -> Format.fprintf ppf "(%a * %a)" pp a pp b
  | Div (a, b) -> Format.fprintf ppf "(%a / %a)" pp a pp b
  | Pow_int (a, n) -> Format.fprintf ppf "(%a)^%d" pp a n
  | Sin a -> Format.fprintf ppf "sin(%a)" pp a
  | Cos a -> Format.fprintf ppf "cos(%a)" pp a
