(** Trapped-ion AAIS (SimuQ's IonTrap backend, §"Ion trap" of the demo
    matrix): a linear chain of ions with

    - per-ion {e polar Rabi drives} — amplitude Ω_i and phase φ_i feeding
      [0.5·Ω·cos φ → X_i] and [−0.5·Ω·sin φ → Y_i], the same cos/sin
      channel pair the Rydberg family uses;
    - per-ion {e light shifts} μ_i feeding [Z_i] linearly;
    - {e Mølmer–Sørensen pair couplings} J^P(i,j) for [P ∈ {X,Y,Z}]
      feeding [P_i·P_j], available for ion-index distance
      [d = |i−j| ≤ coupling_range] and bounded by [±j_max / d^falloff].

    Every variable is runtime dynamic and every channel carries a
    closed-form solver hint, so there is no analogue of the Rydberg
    position solve: the generic pipeline (planner, cache, supervisor)
    runs unchanged. *)

open Qturbo_pauli

type t = {
  aais : Aais.t;
  spec : Device.iontrap;
  n : int;
  omegas : Variable.t array;  (** Rabi amplitudes, [Ω_i ∈ [0, omega_max]] *)
  phis : Variable.t array;  (** drive phases, [φ_i ∈ [−π, π]] *)
  mus : Variable.t array;  (** light shifts, [|μ_i| ≤ mu_max] *)
  pairs : (int * int * Pauli.op * Variable.t) list;
      (** MS coupling variables as [(i, j, basis, J)] with [i < j] *)
}

val pair_bound : spec:Device.iontrap -> i:int -> j:int -> float
(** Usable coupling bound [j_max / |i−j|^falloff]. *)

val build : spec:Device.iontrap -> n:int -> t
(** Raises [Invalid_argument] when [n < 1] or [n > spec.max_ions]. *)

val hamiltonian : t -> env:float array -> Qturbo_pauli.Pauli_sum.t
(** The Hamiltonian realised by a compiled environment. *)

val hamiltonian_of_pulse :
  omega:float array ->
  phi:float array ->
  mu:float array ->
  couplings:(int * int * Pauli.op * float) list ->
  unit ->
  Qturbo_pauli.Pauli_sum.t
(** Same Hamiltonian from extracted pulse values, for the verifier's
    independent reconstruction. *)
