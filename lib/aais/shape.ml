open Qturbo_pauli

(* Exact float rendering: the raw IEEE bits in hex.  Injective on bit
   patterns (so distinct NaN payloads and -0.0/0.0 stay distinct, which
   [%h] would conflate) and an order of magnitude cheaper than a
   [Printf.sprintf] round-trip — this runs for every constant of every
   channel on each plan-key derivation. *)
let hex_digits = "0123456789abcdef"

let add_float buf f =
  let bits = Int64.bits_of_float f in
  if Int64.equal bits 0L then Buffer.add_char buf '0'
  else begin
    let started = ref false in
    for i = 15 downto 0 do
      let nib =
        Int64.to_int (Int64.logand (Int64.shift_right_logical bits (i * 4)) 0xFL)
      in
      if nib <> 0 then started := true;
      if !started then Buffer.add_char buf hex_digits.[nib]
    done
  end

(* Exact structural rendering of an amplitude expression.  Constants are
   printed as hex floats so two expressions that differ only in a
   constant's low bits never collide; the constructors are tagged so
   [Add (a, b)] and [Mul (a, b)] render differently. *)
let rec add_expr buf (e : Expr.t) =
  match e with
  | Expr.Const c ->
      Buffer.add_char buf 'c';
      add_float buf c
  | Expr.Var v ->
      Buffer.add_char buf 'v';
      Buffer.add_string buf (string_of_int v)
  | Expr.Neg a ->
      Buffer.add_string buf "n(";
      add_expr buf a;
      Buffer.add_char buf ')'
  | Expr.Add (a, b) -> add_binop buf "+" a b
  | Expr.Sub (a, b) -> add_binop buf "-" a b
  | Expr.Mul (a, b) -> add_binop buf "*" a b
  | Expr.Div (a, b) -> add_binop buf "/" a b
  | Expr.Pow_int (a, k) ->
      Buffer.add_char buf 'p';
      Buffer.add_string buf (string_of_int k);
      Buffer.add_char buf '(';
      add_expr buf a;
      Buffer.add_char buf ')'
  | Expr.Sin a ->
      Buffer.add_string buf "s(";
      add_expr buf a;
      Buffer.add_char buf ')'
  | Expr.Cos a ->
      Buffer.add_string buf "k(";
      add_expr buf a;
      Buffer.add_char buf ')'

and add_binop buf op a b =
  Buffer.add_char buf '(';
  add_expr buf a;
  Buffer.add_string buf op;
  add_expr buf b;
  Buffer.add_char buf ')'

let add_hint buf (h : Instruction.solver_hint) =
  match h with
  | Instruction.Hint_linear { var; slope } ->
      Buffer.add_char buf 'L';
      Buffer.add_string buf (string_of_int var);
      Buffer.add_char buf ':';
      add_float buf slope
  | Instruction.Hint_polar_cos { amp; phase; scale } ->
      Buffer.add_char buf 'C';
      Buffer.add_string buf (string_of_int amp);
      Buffer.add_char buf ',';
      Buffer.add_string buf (string_of_int phase);
      Buffer.add_char buf ':';
      add_float buf scale
  | Instruction.Hint_polar_sin { amp; phase; scale } ->
      Buffer.add_char buf 'S';
      Buffer.add_string buf (string_of_int amp);
      Buffer.add_char buf ',';
      Buffer.add_string buf (string_of_int phase);
      Buffer.add_char buf ':';
      add_float buf scale
  | Instruction.Hint_fixed -> Buffer.add_char buf 'F'
  | Instruction.Hint_generic -> Buffer.add_char buf 'G'

(* Anchored site coordinates are additionally snapped to a 1e-6 um grid
   (a picometer — far below any physically meaningful layout
   difference): the anchoring subtraction [(x +. o) -. o] is not exact
   in floating point, so without the snap a rigidly-translated device
   would render ulp-different coordinates and miss the shared plan.
   Non-site variables keep the exact [%h] rendering. *)
let quantize x = Float.round (x *. 1e6) /. 1e6

let add_variable buf ~site ~offset (v : Variable.t) =
  let canon x = if site then quantize (x -. offset) else x in
  Buffer.add_char buf '|';
  Buffer.add_string buf (string_of_int v.Variable.id);
  Buffer.add_char buf ' ';
  Buffer.add_char buf
    (match v.Variable.kind with
    | Variable.Runtime_fixed -> 'f'
    | Variable.Runtime_dynamic -> 'd');
  Buffer.add_char buf ' ';
  add_float buf (canon v.Variable.bound.Qturbo_optim.Bounds.lo);
  Buffer.add_char buf ' ';
  add_float buf (canon v.Variable.bound.Qturbo_optim.Bounds.hi);
  Buffer.add_char buf ' ';
  add_float buf (canon v.Variable.init)

(* Canonicalize the device geometry: subtract the first site's initial
   coordinates from every site-coordinate variable before rendering, so
   rigidly-translated layouts produce the same key.  Sound because the
   compiler only ever consumes coordinate {e differences} (van der
   Waals interactions, pairwise-distance feasibility checks), so
   translated devices are genuinely plan-interchangeable.  Rotation is
   out of scope.  Variables that are not site coordinates get a zero
   offset. *)
let coordinate_offsets (aais : Aais.t) =
  let n_vars = Array.length (Aais.variables aais) in
  let offsets = Array.make n_vars 0.0 in
  let sites = aais.Aais.sites in
  if Array.length sites > 0 then begin
    let vars = Aais.variables aais in
    let x0, y0 = sites.(0) in
    let ox = vars.(x0).Variable.init in
    let oy =
      match y0 with Some y -> vars.(y).Variable.init | None -> 0.0
    in
    Array.iter
      (fun (x, y) ->
        offsets.(x) <- ox;
        match y with Some y -> offsets.(y) <- oy | None -> ())
      sites
  end;
  offsets

let add_channel buf (c : Instruction.channel) =
  Buffer.add_char buf '|';
  Buffer.add_string buf (string_of_int c.Instruction.cid);
  Buffer.add_char buf ' ';
  add_expr buf c.Instruction.expr;
  Buffer.add_char buf ' ';
  add_hint buf c.Instruction.hint;
  List.iter
    (fun { Instruction.pstring; coeff } ->
      Buffer.add_char buf ';';
      (* sparse site:op rendering — effect terms are low-weight, so this
         is far shorter (and cheaper) than the dense spelling, and the
         ascending (site, op) list is just as injective *)
      List.iter
        (fun (site, op) ->
          Buffer.add_string buf (string_of_int site);
          Buffer.add_char buf
            (match op with
            | Pauli.I -> 'I'
            | Pauli.X -> 'X'
            | Pauli.Y -> 'Y'
            | Pauli.Z -> 'Z'))
        (Pauli_string.to_list pstring);
      Buffer.add_char buf ':';
      add_float buf coeff)
    c.Instruction.effects

let of_aais (aais : Aais.t) =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf aais.Aais.name;
  Buffer.add_string buf (Printf.sprintf "#%d#" aais.Aais.n_qubits);
  Buffer.add_string buf aais.Aais.fingerprint;
  let offsets = coordinate_offsets aais in
  let site = Array.make (Array.length (Aais.variables aais)) false in
  Array.iter
    (fun (x, y) ->
      site.(x) <- true;
      match y with Some y -> site.(y) <- true | None -> ())
    aais.Aais.sites;
  Array.iter
    (fun (v : Variable.t) ->
      add_variable buf ~site:site.(v.Variable.id)
        ~offset:offsets.(v.Variable.id) v)
    (Aais.variables aais);
  Buffer.add_string buf "##";
  Array.iter (add_channel buf) (Aais.channels aais);
  Buffer.contents buf

let support_of_target target =
  List.filter
    (fun s -> not (Pauli_string.is_identity s))
    (Pauli_sum.support target)

let of_support support =
  let buf = Buffer.create 256 in
  List.iter
    (fun s ->
      Buffer.add_string buf (Pauli_string.to_string s);
      Buffer.add_char buf ',')
    support;
  Buffer.contents buf

let key ~aais ~support = of_aais aais ^ "@@" ^ of_support support
