open Qturbo_pauli

type rydberg_segment = {
  duration : float;
  omega : float array;
  phi : float array;
  delta : float array;
}

type rydberg = {
  spec : Device.rydberg;
  positions : (float * float) array;
  segments : rydberg_segment list;
}

let rydberg_duration p =
  List.fold_left (fun acc s -> acc +. s.duration) 0.0 p.segments

let rydberg_segment_hamiltonians p =
  List.map
    (fun s ->
      ( Rydberg.hamiltonian_of_pulse ~spec:p.spec ~positions:p.positions
          ~omega:s.omega ~phi:s.phi ~delta:s.delta (),
        s.duration ))
    p.segments

let within_limits p =
  let violations = ref [] in
  let add fmt = Printf.ksprintf (fun s -> violations := s :: !violations) fmt in
  List.iteri
    (fun k s ->
      Array.iteri
        (fun i w ->
          if w < -1e-9 || w > p.spec.Device.omega_max +. 1e-9 then
            add "segment %d: omega(%d)=%.3f outside [0, %.3f]" k i w
              p.spec.Device.omega_max)
        s.omega;
      Array.iteri
        (fun i d ->
          if Float.abs d > p.spec.Device.delta_max +. 1e-9 then
            add "segment %d: |delta(%d)|=%.3f > %.3f" k i (Float.abs d)
              p.spec.Device.delta_max)
        s.delta)
    p.segments;
  if rydberg_duration p > p.spec.Device.max_time +. 1e-9 then
    add "total duration %.3f us > device limit %.3f us" (rydberg_duration p)
      p.spec.Device.max_time;
  List.iter (fun v -> violations := v :: !violations)
    (Rydberg.check_layout ~spec:p.spec p.positions);
  List.rev !violations

let slew_violations p =
  let limit = p.spec.Device.omega_slew_max in
  if not (Float.is_finite limit) then []
  else begin
    let violations = ref [] in
    let add fmt = Printf.ksprintf (fun s -> violations := s :: !violations) fmt in
    let n = Array.length p.positions in
    let check label rate =
      if rate > limit *. (1.0 +. 1e-9) then
        add "%s: slew %.3f exceeds %.3f" label rate limit
    in
    let segs = Array.of_list p.segments in
    let m = Array.length segs in
    for k = 0 to m - 2 do
      for i = 0 to n - 1 do
        let dt =
          Float.max 1e-12 ((segs.(k).duration +. segs.(k + 1).duration) /. 2.0)
        in
        check
          (Printf.sprintf "segment %d->%d omega(%d)" k (k + 1) i)
          (Float.abs (segs.(k + 1).omega.(i) -. segs.(k).omega.(i)) /. dt)
      done
    done;
    List.rev !violations
  end

let pp_rydberg ppf p =
  Format.fprintf ppf "rydberg pulse (%d atoms, %d segments, %.4f us)@."
    (Array.length p.positions) (List.length p.segments) (rydberg_duration p);
  Array.iteri
    (fun i (x, y) -> Format.fprintf ppf "  atom %d at (%.2f, %.2f) um@." i x y)
    p.positions;
  List.iteri
    (fun k s ->
      Format.fprintf ppf "  segment %d: %.4f us omega=%s delta=%s@." k
        s.duration
        (String.concat ","
           (Array.to_list (Array.map (Printf.sprintf "%.3f") s.omega)))
        (String.concat ","
           (Array.to_list (Array.map (Printf.sprintf "%.3f") s.delta))))
    p.segments

type heisenberg_segment = {
  duration : float;
  amplitudes : (Pauli_string.t * float) list;
}

type heisenberg = { spec : Device.heisenberg; segments : heisenberg_segment list }

let heisenberg_duration p =
  List.fold_left (fun acc s -> acc +. s.duration) 0.0 p.segments

let heisenberg_segment_hamiltonians p =
  List.map (fun s -> (Pauli_sum.of_list s.amplitudes, s.duration)) p.segments

let heisenberg_within_limits p =
  let violations = ref [] in
  let add fmt = Printf.ksprintf (fun s -> violations := s :: !violations) fmt in
  List.iteri
    (fun k s ->
      List.iter
        (fun (pstring, a) ->
          let bound =
            if Pauli_string.weight pstring <= 1 then p.spec.Device.single_max
            else p.spec.Device.two_max
          in
          if Float.abs a > bound +. 1e-9 then
            add "segment %d: |a^%s|=%.3f > %.3f" k
              (Format.asprintf "%a" Pauli_string.pp pstring)
              (Float.abs a) bound)
        s.amplitudes)
    p.segments;
  if heisenberg_duration p > p.spec.Device.max_time +. 1e-9 then
    add "total duration %.3f us > device limit %.3f us" (heisenberg_duration p)
      p.spec.Device.max_time;
  List.rev !violations

let pp_heisenberg ppf p =
  Format.fprintf ppf "heisenberg pulse (%d segments, %.4f us)@."
    (List.length p.segments) (heisenberg_duration p);
  List.iteri
    (fun k s ->
      Format.fprintf ppf "  segment %d: %.4f us, %d active terms@." k s.duration
        (List.length s.amplitudes))
    p.segments

type iontrap_segment = {
  duration : float;
  omega : float array;
  phi : float array;
  mu : float array;
  couplings : (int * int * Pauli.op * float) list;
}

type iontrap = { spec : Device.iontrap; segments : iontrap_segment list }

let iontrap_duration p =
  List.fold_left (fun acc s -> acc +. s.duration) 0.0 p.segments

let iontrap_segment_hamiltonians p =
  List.map
    (fun s ->
      ( Iontrap.hamiltonian_of_pulse ~omega:s.omega ~phi:s.phi ~mu:s.mu
          ~couplings:s.couplings (),
        s.duration ))
    p.segments

let iontrap_within_limits p =
  let violations = ref [] in
  let add fmt = Printf.ksprintf (fun s -> violations := s :: !violations) fmt in
  List.iteri
    (fun k s ->
      Array.iteri
        (fun i w ->
          if w < -1e-9 || w > p.spec.Device.omega_max +. 1e-9 then
            add "segment %d: omega(%d)=%.3f outside [0, %.3f]" k i w
              p.spec.Device.omega_max)
        s.omega;
      Array.iteri
        (fun i m ->
          if Float.abs m > p.spec.Device.mu_max +. 1e-9 then
            add "segment %d: |mu(%d)|=%.3f > %.3f" k i (Float.abs m)
              p.spec.Device.mu_max)
        s.mu;
      List.iter
        (fun (i, j, op, a) ->
          if abs (j - i) > p.spec.Device.coupling_range then
            add "segment %d: coupling %s(%d,%d) beyond range %d" k
              (Pauli.op_to_string op) i j p.spec.Device.coupling_range
          else begin
            let bound = Iontrap.pair_bound ~spec:p.spec ~i ~j in
            if Float.abs a > bound +. 1e-9 then
              add "segment %d: |J^%s(%d,%d)|=%.3f > %.3f" k
                (Pauli.op_to_string op) i j (Float.abs a) bound
          end)
        s.couplings)
    p.segments;
  if iontrap_duration p > p.spec.Device.max_time +. 1e-9 then
    add "total duration %.3f us > device limit %.3f us" (iontrap_duration p)
      p.spec.Device.max_time;
  List.rev !violations

let pp_iontrap ppf p =
  let n =
    match p.segments with [] -> 0 | s :: _ -> Array.length s.omega
  in
  Format.fprintf ppf "iontrap pulse (%d ions, %d segments, %.4f us)@." n
    (List.length p.segments) (iontrap_duration p);
  List.iteri
    (fun k s ->
      Format.fprintf ppf
        "  segment %d: %.4f us omega=%s mu=%s, %d active couplings@." k
        s.duration
        (String.concat ","
           (Array.to_list (Array.map (Printf.sprintf "%.3f") s.omega)))
        (String.concat ","
           (Array.to_list (Array.map (Printf.sprintf "%.3f") s.mu)))
        (List.length
           (List.filter (fun (_, _, _, a) -> a <> 0.0) s.couplings)))
    p.segments
