open Qturbo_pauli

type t = {
  aais : Aais.t;
  spec : Device.rydberg;
  n : int;
  xs : Variable.t array;
  ys : Variable.t array option;
  deltas : Variable.t array;
  omegas : Variable.t array;
  phis : Variable.t array;
}

(* Default inter-atom spacing for initial layouts: comfortably above the
   minimum separation and in the range where C6/(4d^6) is of order the
   MHz-scale couplings the benchmarks target. *)
let default_spacing = 9.0

let chain_inits n = Array.init n (fun i -> (float_of_int i *. default_spacing, 0.0))

let polygon_inits n =
  if n = 1 then [| (0.0, 0.0) |]
  else begin
    let r = default_spacing /. (2.0 *. sin (Float.pi /. float_of_int n)) in
    let raw =
      Array.init n (fun k ->
          let th = 2.0 *. Float.pi *. float_of_int k /. float_of_int n in
          (r *. cos th, r *. sin th))
    in
    (* translate so atom 0 sits at the origin, rotate so atom 1 has y = 0 *)
    let x0, y0 = raw.(0) in
    let shifted = Array.map (fun (x, y) -> (x -. x0, y -. y0)) raw in
    let x1, y1 = shifted.(Int.min 1 (n - 1)) in
    let d = Float.max 1e-12 (sqrt ((x1 *. x1) +. (y1 *. y1))) in
    let c = x1 /. d and s = y1 /. d in
    Array.map (fun (x, y) -> ((c *. x) +. (s *. y), (c *. y) -. (s *. x))) shifted
  end

type cutoff = All_pairs | Radius of float | Auto

(* Above this atom count [Auto] switches from exact all-pairs channels
   to the neighbor-list cutoff; every bench/test size up to n = 93 stays
   on the untouched exact path. *)
let auto_threshold = 96

(* 2.5 lattice spacings keeps first and second neighbors on both the
   chain and the polygon layouts; the nearest dropped pair sits at
   >= 3 spacings, where the van-der-Waals amplitude has fallen to
   (1/3)^6 ~ 0.14% of the nearest-neighbor coupling. *)
let auto_radius_factor = 2.5

let resolve_cutoff ~cutoff ~n =
  match cutoff with
  | All_pairs -> None
  | Radius r ->
      if not (Float.is_finite r && r > 0.0) then
        invalid_arg "Rydberg.build: cutoff radius must be positive and finite";
      Some r
  | Auto ->
      if n <= auto_threshold then None
      else Some (auto_radius_factor *. default_spacing)

(* Neighbor-list pair enumeration: all (i, j), i < j, with
   |p_i - p_j| <= radius, in the exact (i ascending, j ascending) order
   of the quadratic double loop.  A uniform cell grid at the cutoff
   length makes this O(n) for bounded-density layouts: any qualifying
   pair lands in the same or an adjacent cell. *)
let pairs_within ~radius positions =
  let n = Array.length positions in
  let cell = Float.max radius 1e-9 in
  let key (x, y) =
    (int_of_float (floor (x /. cell)), int_of_float (floor (y /. cell)))
  in
  let bins = Hashtbl.create (2 * n) in
  Array.iteri
    (fun i p ->
      let k = key p in
      Hashtbl.replace bins k
        (i :: Option.value ~default:[] (Hashtbl.find_opt bins k)))
    positions;
  let r2 = radius *. radius in
  let out = ref [] in
  for i = 0 to n - 1 do
    let cx, cy = key positions.(i) in
    let cands = ref [] in
    for dx = -1 to 1 do
      for dy = -1 to 1 do
        match Hashtbl.find_opt bins (cx + dx, cy + dy) with
        | None -> ()
        | Some l -> List.iter (fun j -> if j > i then cands := j :: !cands) l
      done
    done;
    List.iter
      (fun j ->
        let xi, yi = positions.(i) and xj, yj = positions.(j) in
        let dx = xi -. xj and dy = yi -. yj in
        if (dx *. dx) +. (dy *. dy) <= r2 then out := (i, j) :: !out)
      (List.sort_uniq Int.compare !cands)
  done;
  List.rev !out

let check_layout_positions ~spec positions =
  let n = Array.length positions in
  let violations = ref [] in
  let check_pair i j =
    let xi, yi = positions.(i) and xj, yj = positions.(j) in
    let d = sqrt (((xi -. xj) ** 2.0) +. ((yi -. yj) ** 2.0)) in
    if d < spec.Device.min_separation then
      violations :=
        Printf.sprintf "atoms %d,%d separated by %.2f um < %.2f um" i j d
          spec.Device.min_separation
        :: !violations
  in
  if n <= auto_threshold then
    for i = 0 to n - 1 do
      for j = i + 1 to n - 1 do
        check_pair i j
      done
    done
  else
    (* grid at the minimum separation: any violating pair is within one
       cell, and the candidates come back in (i, j) order, so the
       violation list matches the quadratic loop's exactly *)
    List.iter
      (fun (i, j) -> check_pair i j)
      (pairs_within ~radius:spec.Device.min_separation positions);
  let xs = Array.map fst positions and ys = Array.map snd positions in
  let extent coords =
    let lo = Array.fold_left Float.min infinity coords in
    let hi = Array.fold_left Float.max neg_infinity coords in
    hi -. lo
  in
  let span = Float.max (extent xs) (extent ys) in
  if span > spec.Device.max_extent then
    violations :=
      Printf.sprintf "layout spans %.1f um > %.1f um window" span
        spec.Device.max_extent
      :: !violations;
  List.rev !violations

let build_cutoff_at ~cutoff ~origin ~spec ~n =
  if n < 1 then invalid_arg "Rydberg.build: need at least one atom";
  let ox, oy = origin in
  let pool = Variable.create_pool () in
  let inits =
    let base =
      match spec.Device.geometry with
      | Device.Line -> chain_inits n
      | Device.Plane -> polygon_inits n
    in
    Array.map (fun (x, y) -> (x +. ox, y +. oy)) base
  in
  let extent = spec.Device.max_extent in
  (* the feasible box is centered on the origin coordinate, so a rigid
     translation shifts bounds, pins and inits together and the
     Shape-anchored cache key comes out identical for every origin *)
  let coord ~name ~pinned ~center ~init =
    if pinned then
      Variable.fresh pool ~name ~kind:Variable.Runtime_fixed ~lo:center
        ~hi:center ~init:center ()
    else
      Variable.fresh pool ~name ~kind:Variable.Runtime_fixed
        ~lo:(center -. (2.0 *. extent))
        ~hi:(center +. (2.0 *. extent))
        ~init ()
  in
  let xs =
    Array.init n (fun i ->
        coord ~name:(Printf.sprintf "x%d" i) ~pinned:(i = 0) ~center:ox
          ~init:(fst inits.(i)))
  in
  let ys =
    match spec.Device.geometry with
    | Device.Line -> None
    | Device.Plane ->
        Some
          (Array.init n (fun i ->
               coord
                 ~name:(Printf.sprintf "y%d" i)
                 ~pinned:(i = 0 || i = 1)
                 ~center:oy
                 ~init:(snd inits.(i))))
  in
  let n_controls =
    match spec.Device.control with Device.Global -> 1 | Device.Local -> n
  in
  let deltas =
    Array.init n_controls (fun i ->
        Variable.fresh pool
          ~name:(Printf.sprintf "delta%d" i)
          ~kind:Variable.Runtime_dynamic ~lo:(-.spec.Device.delta_max)
          ~hi:spec.Device.delta_max ~init:0.0 ())
  in
  let omegas =
    Array.init n_controls (fun i ->
        Variable.fresh pool
          ~name:(Printf.sprintf "omega%d" i)
          ~kind:Variable.Runtime_dynamic ~lo:0.0 ~hi:spec.Device.omega_max
          ~init:0.0 ())
  in
  let phis =
    Array.init n_controls (fun i ->
        Variable.fresh pool
          ~name:(Printf.sprintf "phi%d" i)
          ~kind:Variable.Runtime_dynamic ~lo:(-.Float.pi) ~hi:Float.pi ~init:0.0 ())
  in
  let next_cid = ref 0 in
  let fresh_cid () =
    let c = !next_cid in
    incr next_cid;
    c
  in
  let dist6_expr i j =
    let dx = Expr.(var xs.(i) - var xs.(j)) in
    match ys with
    | None -> Expr.pow dx 6
    | Some ys -> Expr.(pow (pow dx 2 + pow (var ys.(i) - var ys.(j)) 2) 3)
  in
  (* pair selection: exact all-pairs, or the neighbor list of the
     initial layout under the cutoff radius.  The kept pairs are
     enumerated in the same (i ascending, j ascending) order either way,
     so when nothing is dropped the channels — ids, labels, expressions —
     are byte-identical to the exact build and the structural cache key
     comes out the same. *)
  let cutoff_radius = resolve_cutoff ~cutoff ~n in
  let vdw_pairs =
    match cutoff_radius with
    | None ->
        List.concat
          (List.init n (fun i ->
               List.filter_map
                 (fun j -> if j <= i then None else Some (i, j))
                 (List.init n Fun.id)))
    | Some radius -> pairs_within ~radius inits
  in
  let truncation =
    match cutoff_radius with
    | None -> None
    | Some radius ->
        let kept = List.length vdw_pairs in
        let dropped = (n * (n - 1) / 2) - kept in
        if dropped = 0 then None
        else begin
          (* exact complement sums over the initial layout — simple float
             ops, no allocation; this is diagnostic bookkeeping, not a
             compile hot path *)
          let r2 = radius *. radius in
          let sum = ref 0.0 and maxd = ref 0.0 in
          for i = 0 to n - 1 do
            for j = i + 1 to n - 1 do
              let xi, yi = inits.(i) and xj, yj = inits.(j) in
              let dx = xi -. xj and dy = yi -. yj in
              let d2 = (dx *. dx) +. (dy *. dy) in
              if d2 > r2 then begin
                let a = Float.abs (spec.Device.c6 /. (4.0 *. (d2 ** 3.0))) in
                (* three effects per pair channel: Z_iZ_j, Z_i, Z_j *)
                sum := !sum +. (3.0 *. a);
                if a > !maxd then maxd := a
              end
            done
          done;
          Some
            {
              Aais.radius;
              kept_pairs = kept;
              dropped_pairs = dropped;
              dropped_l1 = !sum;
              max_dropped = !maxd;
            }
        end
  in
  let vdw_instructions =
    List.map
      (fun (i, j) ->
        let expr = Expr.(const (spec.Device.c6 /. 4.0) / dist6_expr i j) in
        let effects =
          [
            {
              Instruction.pstring = Pauli_string.two i Pauli.Z j Pauli.Z;
              coeff = 1.0;
            };
            { Instruction.pstring = Pauli_string.single i Pauli.Z; coeff = -1.0 };
            { Instruction.pstring = Pauli_string.single j Pauli.Z; coeff = -1.0 };
          ]
        in
        let channel =
          Instruction.channel ~cid:(fresh_cid ())
            ~label:(Printf.sprintf "vdw(%d,%d)" i j)
            ~expr ~effects ~hint:Instruction.Hint_fixed
        in
        Instruction.make
          ~label:(Printf.sprintf "vdw(%d,%d)" i j)
          ~channels:[ channel ])
      vdw_pairs
  in
  let control_index i =
    match spec.Device.control with Device.Global -> 0 | Device.Local -> i
  in
  let detuning_instructions =
    match spec.Device.control with
    | Device.Local ->
        List.init n (fun i ->
            let expr = Expr.(const 0.5 * var deltas.(i)) in
            let channel =
              Instruction.channel ~cid:(fresh_cid ())
                ~label:(Printf.sprintf "detuning(%d)" i)
                ~expr
                ~effects:
                  [ { Instruction.pstring = Pauli_string.single i Pauli.Z; coeff = 1.0 } ]
                ~hint:
                  (Instruction.Hint_linear
                     { var = deltas.(i).Variable.id; slope = 0.5 })
            in
            Instruction.make ~label:(Printf.sprintf "detuning(%d)" i)
              ~channels:[ channel ])
    | Device.Global ->
        let channels =
          List.init n (fun i ->
              Instruction.channel ~cid:(fresh_cid ())
                ~label:(Printf.sprintf "detuning-global@%d" i)
                ~expr:Expr.(const 0.5 * var deltas.(0))
                ~effects:
                  [ { Instruction.pstring = Pauli_string.single i Pauli.Z; coeff = 1.0 } ]
                ~hint:
                  (Instruction.Hint_linear
                     { var = deltas.(0).Variable.id; slope = 0.5 }))
        in
        [ Instruction.make ~label:"detuning(global)" ~channels ]
  in
  let rabi_channels i =
    let k = control_index i in
    let omega = omegas.(k) and phi = phis.(k) in
    let cos_channel =
      Instruction.channel ~cid:(fresh_cid ())
        ~label:(Printf.sprintf "rabi-cos(%d)" i)
        ~expr:Expr.(const 0.5 * var omega * cos_ (var phi))
        ~effects:
          [ { Instruction.pstring = Pauli_string.single i Pauli.X; coeff = 1.0 } ]
        ~hint:
          (Instruction.Hint_polar_cos
             { amp = omega.Variable.id; phase = phi.Variable.id; scale = 0.5 })
    in
    let sin_channel =
      Instruction.channel ~cid:(fresh_cid ())
        ~label:(Printf.sprintf "rabi-sin(%d)" i)
        ~expr:Expr.(neg (const 0.5 * var omega * sin_ (var phi)))
        ~effects:
          [ { Instruction.pstring = Pauli_string.single i Pauli.Y; coeff = 1.0 } ]
        ~hint:
          (Instruction.Hint_polar_sin
             { amp = omega.Variable.id; phase = phi.Variable.id; scale = -0.5 })
    in
    [ cos_channel; sin_channel ]
  in
  let rabi_instructions =
    match spec.Device.control with
    | Device.Local ->
        List.init n (fun i ->
            Instruction.make
              ~label:(Printf.sprintf "rabi(%d)" i)
              ~channels:(rabi_channels i))
    | Device.Global ->
        [
          Instruction.make ~label:"rabi(global)"
            ~channels:(List.concat (List.init n rabi_channels));
        ]
  in
  let instructions = vdw_instructions @ detuning_instructions @ rabi_instructions in
  let positions_of_env env =
    Array.init n (fun i ->
        let x = env.(xs.(i).Variable.id) in
        let y = match ys with None -> 0.0 | Some ys -> env.(ys.(i).Variable.id) in
        (x, y))
  in
  let check_fixed env = check_layout_positions ~spec (positions_of_env env) in
  let aais =
    (* the fingerprint renders every spec parameter the check_fixed
       closure captures, so structurally-keyed plan caches distinguish
       devices that differ only in their geometric constraints *)
    let fingerprint =
      Printf.sprintf "rydberg c6=%h omega=%h delta=%h sep=%h extent=%h %s %s"
        spec.Device.c6 spec.Device.omega_max spec.Device.delta_max
        spec.Device.min_separation spec.Device.max_extent
        (match spec.Device.control with
        | Device.Global -> "global"
        | Device.Local -> "local")
        (match spec.Device.geometry with
        | Device.Line -> "line"
        | Device.Plane -> "plane")
    in
    let sites =
      Array.init n (fun i ->
          ( xs.(i).Variable.id,
            match ys with
            | None -> None
            | Some ys -> Some ys.(i).Variable.id ))
    in
    Aais.make ~name:(Printf.sprintf "rydberg[%s,n=%d]" spec.Device.name n)
      ~n_qubits:n ~pool ~instructions ~check_fixed ~fingerprint ~sites
      ?truncation ()
  in
  { aais; spec; n; xs; ys; deltas; omegas; phis }

let build_at ~origin ~spec ~n = build_cutoff_at ~cutoff:Auto ~origin ~spec ~n
let build ~spec ~n = build_at ~origin:(0.0, 0.0) ~spec ~n

let build_cutoff ~cutoff ~spec ~n =
  build_cutoff_at ~cutoff ~origin:(0.0, 0.0) ~spec ~n

let positions t ~env =
  Array.init t.n (fun i ->
      let x = env.(t.xs.(i).Variable.id) in
      let y =
        match t.ys with None -> 0.0 | Some ys -> env.(ys.(i).Variable.id)
      in
      (x, y))

let distance t ~env i j =
  let ps = positions t ~env in
  let xi, yi = ps.(i) and xj, yj = ps.(j) in
  sqrt (((xi -. xj) ** 2.0) +. ((yi -. yj) ** 2.0))

let hamiltonian_of_pulse ?cutoff_radius ~spec ~positions ~omega ~phi ~delta () =
  let n = Array.length positions in
  if Array.length omega <> n || Array.length phi <> n || Array.length delta <> n
  then invalid_arg "Rydberg.hamiltonian_of_pulse: per-atom array lengths";
  let keep =
    (* [cutoff_radius] reconstructs what a truncated AAIS compiles
       against; the default is the exact physics — a real device's
       van-der-Waals tails do not truncate *)
    match cutoff_radius with
    | None -> fun _ -> true
    | Some r -> fun d2 -> d2 <= r *. r
  in
  let h = ref Pauli_sum.zero in
  let add c s = h := Pauli_sum.add_term !h s c in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let xi, yi = positions.(i) and xj, yj = positions.(j) in
      let d2 = ((xi -. xj) ** 2.0) +. ((yi -. yj) ** 2.0) in
      if keep d2 then begin
        let a = spec.Device.c6 /. (4.0 *. (d2 ** 3.0)) in
        add a (Pauli_string.two i Pauli.Z j Pauli.Z);
        add (-.a) (Pauli_string.single i Pauli.Z);
        add (-.a) (Pauli_string.single j Pauli.Z)
      end
    done;
    add (delta.(i) /. 2.0) (Pauli_string.single i Pauli.Z);
    add (omega.(i) /. 2.0 *. cos phi.(i)) (Pauli_string.single i Pauli.X);
    add (-.(omega.(i) /. 2.0) *. sin phi.(i)) (Pauli_string.single i Pauli.Y)
  done;
  !h

let hamiltonian t ~env =
  let k i =
    match t.spec.Device.control with Device.Global -> 0 | Device.Local -> i
  in
  let per_atom vars = Array.init t.n (fun i -> env.(vars.(k i).Variable.id)) in
  hamiltonian_of_pulse ~spec:t.spec ~positions:(positions t ~env)
    ~omega:(per_atom t.omegas) ~phi:(per_atom t.phis) ~delta:(per_atom t.deltas)
    ()

let check_layout ~spec positions = check_layout_positions ~spec positions
