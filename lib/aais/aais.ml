type truncation = {
  radius : float;
  kept_pairs : int;
  dropped_pairs : int;
  dropped_l1 : float;
  max_dropped : float;
}

type t = {
  name : string;
  n_qubits : int;
  pool : Variable.pool;
  instructions : Instruction.t list;
  check_fixed : float array -> string list;
  fingerprint : string;
  sites : (int * int option) array;
  truncation : truncation option;
}

let channels t =
  let all =
    List.concat_map (fun (i : Instruction.t) -> i.Instruction.channels) t.instructions
  in
  let n = List.length all in
  let arr = Array.make n None in
  List.iter
    (fun (c : Instruction.channel) ->
      let cid = c.Instruction.cid in
      if cid < 0 || cid >= n then invalid_arg "Aais: channel id out of range";
      if arr.(cid) <> None then invalid_arg "Aais: duplicate channel id";
      arr.(cid) <- Some c)
    all;
  Array.map
    (function Some c -> c | None -> invalid_arg "Aais: missing channel id")
    arr

let make ~name ~n_qubits ~pool ~instructions ?(check_fixed = fun _ -> [])
    ?(fingerprint = "") ?(sites = [||]) ?truncation () =
  let t =
    {
      name;
      n_qubits;
      pool;
      instructions;
      check_fixed;
      fingerprint;
      sites;
      truncation;
    }
  in
  ignore (channels t);
  t

let channel_count t =
  List.fold_left
    (fun acc (i : Instruction.t) -> acc + List.length i.Instruction.channels)
    0 t.instructions

let variables t = Variable.all t.pool
let variable t id = (variables t).(id)

let dynamic_variable_ids t =
  Array.to_list (variables t)
  |> List.filter Variable.is_dynamic
  |> List.map (fun v -> v.Variable.id)

let fixed_variable_ids t =
  Array.to_list (variables t)
  |> List.filter Variable.is_fixed
  |> List.map (fun v -> v.Variable.id)
