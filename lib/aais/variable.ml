open Qturbo_optim

type kind = Runtime_fixed | Runtime_dynamic

type t = {
  id : int;
  name : string;
  kind : kind;
  bound : Bounds.bound;
  init : float;
}

type pool = { mutable vars : t list; mutable next : int }

let create_pool () = { vars = []; next = 0 }

let fresh pool ~name ~kind ?(lo = neg_infinity) ?(hi = infinity) ?init () =
  let bound = Bounds.make ~lo ~hi in
  let init =
    match init with
    | Some x -> Bounds.clamp bound x
    | None ->
        if Float.is_finite lo && Float.is_finite hi then (lo +. hi) /. 2.0
        else if Float.is_finite lo then lo
        else if Float.is_finite hi then hi
        else 0.0
  in
  let v = { id = pool.next; name; kind; bound; init } in
  pool.next <- pool.next + 1;
  pool.vars <- v :: pool.vars;
  v

let count pool = pool.next

let all pool =
  let arr = Array.make pool.next None in
  List.iter (fun v -> arr.(v.id) <- Some v) pool.vars;
  Array.map
    (function Some v -> v | None -> invalid_arg "Variable.all: hole in pool")
    arr

let get pool id =
  if id < 0 || id >= pool.next then invalid_arg "Variable.get: unknown id";
  (all pool).(id)

let is_fixed v = v.kind = Runtime_fixed
let is_dynamic v = v.kind = Runtime_dynamic

let initial_env pool = Array.map (fun v -> v.init) (all pool)
let bounds_array pool = Array.map (fun v -> v.bound) (all pool)

let pp ppf v =
  Format.fprintf ppf "%s#%d(%s)" v.name v.id
    (match v.kind with Runtime_fixed -> "fixed" | Runtime_dynamic -> "dyn")
