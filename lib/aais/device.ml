type control = Global | Local
type geometry = Line | Plane

type rydberg = {
  name : string;
  c6 : float;
  omega_max : float;
  delta_max : float;
  min_separation : float;
  max_extent : float;
  max_time : float;
  omega_slew_max : float;
  control : control;
  geometry : geometry;
}

let aquila_paper =
  {
    name = "aquila-paper-units";
    c6 = 862690.0;
    omega_max = 2.5;
    delta_max = 20.0;
    min_separation = 4.0;
    max_extent = 75.0;
    max_time = 4.0;
    (* ~Ω_max in 50 ns, the scale of Aquila's published waveform limits *)
    omega_slew_max = 50.0;
    control = Local;
    geometry = Line;
  }

let two_pi = 2.0 *. Float.pi

let aquila =
  {
    name = "aquila";
    c6 = two_pi *. 862690.0;
    omega_max = 15.8;
    delta_max = 125.0;
    min_separation = 4.0;
    max_extent = 75.0;
    max_time = 4.0;
    omega_slew_max = 250.0;
    control = Global;
    geometry = Plane;
  }

let aquila_fig6a = { aquila with name = "aquila-fig6a"; omega_max = 6.28 }

let aquila_fig6b =
  { aquila with name = "aquila-fig6b"; omega_max = 13.8; geometry = Line }

let with_control control spec = { spec with control }
let with_geometry geometry spec = { spec with geometry }

type heisenberg = {
  name : string;
  single_max : float;
  two_max : float;
  max_time : float;
  ring : bool;
}

let heisenberg_default =
  {
    name = "heisenberg-chain";
    single_max = 50.0;
    two_max = 1.0;
    max_time = 100.0;
    ring = false;
  }

type iontrap = {
  name : string;
  omega_max : float;
  mu_max : float;
  j_max : float;
  falloff : float;
  coupling_range : int;
  max_ions : int;
  max_time : float;
}

(* Linear-chain trap with all-to-all Mølmer–Sørensen couplings whose
   usable strength falls off as a power law in the ion-index distance —
   the collective-motional-mode picture of trapped-ion analog
   simulators (SimuQ's IonTrap backend).  Amplitudes in rad/µs. *)
let iontrap_chain =
  {
    name = "iontrap-chain";
    omega_max = 12.0;
    mu_max = 25.0;
    j_max = 1.5;
    falloff = 1.2;
    coupling_range = max_int;
    max_ions = 128;
    max_time = 100.0;
  }

(* Nearest-neighbour-only trap: segmented/shuttling architectures where
   only adjacent ions share a gate zone.  Stronger couplings, no tail. *)
let iontrap_nn =
  {
    name = "iontrap-nn";
    omega_max = 12.0;
    mu_max = 25.0;
    j_max = 2.5;
    falloff = 0.0;
    coupling_range = 1;
    max_ions = 128;
    max_time = 100.0;
  }
