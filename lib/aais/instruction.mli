(** Instruction channels: the "Instructions → Synthesized variables →
    Hamiltonian terms" structure of paper Fig. 2.

    An {e instruction} is one tunable knob of the device (a van-der-Waals
    pair interaction, a detuning, a Rabi drive).  Each instruction exposes
    one or more {e channels}; a channel is a synthesized amplitude
    expression together with the Hamiltonian terms it feeds and their
    constant coefficients.  The channel's [expr × T_sim] is exactly the
    paper's synthesized variable α. *)

type effect = { pstring : Qturbo_pauli.Pauli_string.t; coeff : float }
(** One arrow of Fig. 2's lower layer: this channel adds
    [coeff · expr · T] to the Pauli term's [B] entry.  Identity-string
    effects may be listed but are ignored by the compiler. *)

type solver_hint =
  | Hint_linear of { var : int; slope : float }
      (** [expr = slope · var]; [var] is the time-critical variable. *)
  | Hint_polar_cos of { amp : int; phase : int; scale : float }
      (** [expr = scale · amp · cos phase]; [amp] is time-critical. *)
  | Hint_polar_sin of { amp : int; phase : int; scale : float }
      (** [expr = scale · amp · sin phase], the partner channel. *)
  | Hint_fixed
      (** depends only on runtime-fixed variables (solved in phase 2). *)
  | Hint_generic  (** no special structure; generic local solver. *)

type channel = {
  cid : int;  (** dense channel index within one AAIS *)
  label : string;
  expr : Expr.t;
  kernel : Expr.kernel;
      (** [expr] compiled once at construction; hot paths evaluate this
          instead of re-interpreting the ADT *)
  effects : effect list;
  hint : solver_hint;
}

type t = {
  label : string;
  channels : channel list;
  variables : int list;  (** distinct variable ids across the channels *)
}

val make : label:string -> channels:channel list -> t
(** Derives [variables] from the channel expressions. *)

val channel :
  cid:int ->
  label:string ->
  expr:Expr.t ->
  effects:effect list ->
  hint:solver_hint ->
  channel
(** Smoke-checks the hint against the expression structure:
    [Hint_linear] must satisfy {!Expr.is_linear_in} and the polar hints
    must depend on exactly their two variables.  Raises
    [Invalid_argument] on a lying hint. *)

val eval_channel : channel -> env:float array -> float
(** [Expr.eval_kernel] on the cached kernel — bitwise-identical to
    [Expr.eval c.expr ~env]. *)

val effect_terms : channel -> (Qturbo_pauli.Pauli_string.t * float) list
(** Non-identity effects. *)

val validate_hint : channel -> bool
(** The check behind {!channel}, exposed for property tests. *)
