(** Compiled pulse schedules — the compiler's output artifact.

    A schedule is a sequence of piecewise-constant segments (a single
    segment for time-independent targets).  Rydberg schedules also carry
    the static atom layout. *)

type rydberg_segment = {
  duration : float;  (** µs *)
  omega : float array;  (** per-atom Rabi amplitude *)
  phi : float array;  (** per-atom Rabi phase *)
  delta : float array;  (** per-atom detuning *)
}

type rydberg = {
  spec : Device.rydberg;
  positions : (float * float) array;  (** µm *)
  segments : rydberg_segment list;
}

val rydberg_duration : rydberg -> float
(** Total execution time — the paper's "execution time" metric. *)

val rydberg_segment_hamiltonians : rydberg -> (Qturbo_pauli.Pauli_sum.t * float) list
(** [(H_k, τ_k)] per segment, for noiseless theory evolution. *)

val within_limits : rydberg -> string list
(** Violations of the device's dynamic-amplitude and total-time limits
    (empty = executable).  Slew limits are checked separately by
    {!slew_violations}: raw compiled pulses are rectangles and only pass
    after the ramping post-pass. *)

val slew_violations : rydberg -> string list
(** Rabi slew-rate violations on {e internal} transitions: the schedule
    is read as samples joined by linear ramps, so the rate between
    consecutive segments is [|ΔΩ| / ((τ_k + τ_{k+1})/2)].  The start/end
    condition (the drive must begin and end at zero) is a separate check,
    {!Qturbo_core.Ramp.ramp_admissible}.  Empty when the spec's
    [omega_slew_max] is infinite. *)

val pp_rydberg : Format.formatter -> rydberg -> unit

type heisenberg_segment = {
  duration : float;
  amplitudes : (Qturbo_pauli.Pauli_string.t * float) list;
      (** nonzero Pauli amplitudes of the segment *)
}

type heisenberg = {
  spec : Device.heisenberg;
  segments : heisenberg_segment list;
}

val heisenberg_duration : heisenberg -> float

val heisenberg_segment_hamiltonians :
  heisenberg -> (Qturbo_pauli.Pauli_sum.t * float) list

val heisenberg_within_limits : heisenberg -> string list
(** Amplitude-bound (weight-1 terms against [single_max], weight-2 terms
    against [two_max]) and total-time violations; empty = executable. *)

val pp_heisenberg : Format.formatter -> heisenberg -> unit

type iontrap_segment = {
  duration : float;  (** µs *)
  omega : float array;  (** per-ion Rabi amplitude *)
  phi : float array;  (** per-ion drive phase *)
  mu : float array;  (** per-ion light shift *)
  couplings : (int * int * Qturbo_pauli.Pauli.op * float) list;
      (** Mølmer–Sørensen pair amplitudes as [(i, j, basis, J)] *)
}

type iontrap = { spec : Device.iontrap; segments : iontrap_segment list }

val iontrap_duration : iontrap -> float

val iontrap_segment_hamiltonians :
  iontrap -> (Qturbo_pauli.Pauli_sum.t * float) list

val iontrap_within_limits : iontrap -> string list
(** Per-ion drive/shift bounds, distance-dependent coupling bounds
    ({!Iontrap.pair_bound}) and the total-time limit.  Ion traps have no
    slew-rate analogue here — there is no separate slew check and the
    ramping post-pass is an identity for this family. *)

val pp_iontrap : Format.formatter -> iontrap -> unit
