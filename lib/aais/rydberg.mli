(** The Rydberg AAIS (paper §2.1.1): van-der-Waals pair interactions
    controlled by runtime-fixed atom positions, plus detuning and Rabi
    drive instructions controlled by runtime-dynamic variables.

    {ul
    {- van der Waals, for every atom pair (i, j):
       [C6/|x_i−x_j|⁶ · n̂_i n̂_j], expanding to Z_iZ_j, Z_i, Z_j (and an
       ignored identity shift) with synthesized amplitude
       [C6/(4 d⁶)];}
    {- detuning, per atom (or one global): [−Δ n̂_i], synthesized
       amplitude [Δ/2] feeding Z_i;}
    {- Rabi drive, per atom (or one global):
       [(Ω/2)cos φ · X_i − (Ω/2)sin φ · Y_i], a cos/sin channel pair.}} *)

type t = {
  aais : Aais.t;
  spec : Device.rydberg;
  n : int;
  xs : Variable.t array;  (** per-atom x coordinates (runtime fixed) *)
  ys : Variable.t array option;  (** y coordinates; [None] for 1-D *)
  deltas : Variable.t array;  (** length [n], or 1 under global control *)
  omegas : Variable.t array;
  phis : Variable.t array;
}

type cutoff =
  | All_pairs  (** exact: every (i, j) pair channel, O(n²) of them *)
  | Radius of float
      (** neighbor list of the initial layout: only pairs within this
          distance (µm) get a channel.  O(n) channels for geometrically
          local layouts.  When the radius covers the full layout
          diameter the build is byte-identical to {!All_pairs}. *)
  | Auto
      (** {!All_pairs} up to {!auto_threshold} atoms, then
          [Radius (auto_radius_factor · default spacing)] — large
          builds scale near-linearly while every small device stays
          exact. *)

val auto_threshold : int
(** Atom count above which [Auto] starts truncating (96). *)

val auto_radius_factor : float
(** [Auto]'s cutoff radius in units of the default lattice spacing
    (2.5 — keeps first and second neighbors on chain and polygon
    layouts; the nearest dropped coupling is ~0.14% of the
    nearest-neighbor amplitude). *)

val default_spacing : float
(** Initial inter-atom spacing of the generated layouts (µm). *)

val pairs_within :
  radius:float -> (float * float) array -> (int * int) list
(** Neighbor-list enumeration: all pairs [(i, j)], [i < j], with
    [|p_i − p_j| <= radius], in the (i ascending, j ascending) order of
    the exact double loop.  Cell-grid backed — O(n) for bounded-density
    layouts. *)

val build : spec:Device.rydberg -> n:int -> t
(** Build the AAIS for [n] atoms under the {!Auto} cutoff policy: exact
    all-pairs channels up to {!auto_threshold} atoms, the neighbor-list
    cutoff beyond.  Atom 0 is pinned at the origin (and atom 1 at
    [y = 0] in planar geometry) to fix the translation/rotation gauge of
    the position solve.  Initial positions are an evenly spaced chain
    (1-D) or regular polygon (2-D).  When pairs are dropped the AAIS
    carries an {!Aais.truncation} summary and the analyzer reports the
    truncation bound as [QT029].  Equivalent to
    [build_at ~origin:(0.0, 0.0)]. *)

val build_cutoff : cutoff:cutoff -> spec:Device.rydberg -> n:int -> t
(** {!build} with an explicit cutoff policy ([All_pairs] forces the
    exact O(n²) channels at any size; [Radius r] truncates at [r] µm
    regardless of size). *)

val build_cutoff_at :
  cutoff:cutoff -> origin:float * float -> spec:Device.rydberg -> n:int -> t
(** {!build_cutoff} anchored at [origin] — the general entry point
    behind every other builder. *)

val build_at : origin:float * float -> spec:Device.rydberg -> n:int -> t
(** Like {!build} with atom 0 pinned at [origin] (and atom 1 at
    [y = origin_y] in planar geometry): the whole initial layout is
    rigidly translated by [origin] and the position bounds are centered
    on it.  Devices differing only in [origin] are physically
    interchangeable and share one structural cache key (the {!Shape}
    key anchors the first site at the origin). *)

val positions : t -> env:float array -> (float * float) array
(** Atom coordinates under an environment ([y = 0] in 1-D). *)

val distance : t -> env:float array -> int -> int -> float

val hamiltonian : t -> env:float array -> Qturbo_pauli.Pauli_sum.t
(** The physical simulator Hamiltonian at the given variable values:
    van-der-Waals from the positions plus the detuning/Rabi drives.  Used
    for theory curves and by the device emulator. *)

val hamiltonian_of_pulse :
  ?cutoff_radius:float ->
  spec:Device.rydberg ->
  positions:(float * float) array ->
  omega:float array ->
  phi:float array ->
  delta:float array ->
  unit ->
  Qturbo_pauli.Pauli_sum.t
(** Same physics from explicit pulse parameters (per-atom arrays), without
    an AAIS instance — the emulator's entry point.  [cutoff_radius]
    drops van-der-Waals pairs beyond that distance, reconstructing what
    a cutoff-truncated AAIS compiles against; the default is the exact
    physics (a real device's tails do not truncate). *)

val check_layout : spec:Device.rydberg -> (float * float) array -> string list
(** Geometric constraint violations: pairwise separation below
    [min_separation], or the bounding box exceeding [max_extent]. *)
