(** The Rydberg AAIS (paper §2.1.1): van-der-Waals pair interactions
    controlled by runtime-fixed atom positions, plus detuning and Rabi
    drive instructions controlled by runtime-dynamic variables.

    {ul
    {- van der Waals, for every atom pair (i, j):
       [C6/|x_i−x_j|⁶ · n̂_i n̂_j], expanding to Z_iZ_j, Z_i, Z_j (and an
       ignored identity shift) with synthesized amplitude
       [C6/(4 d⁶)];}
    {- detuning, per atom (or one global): [−Δ n̂_i], synthesized
       amplitude [Δ/2] feeding Z_i;}
    {- Rabi drive, per atom (or one global):
       [(Ω/2)cos φ · X_i − (Ω/2)sin φ · Y_i], a cos/sin channel pair.}} *)

type t = {
  aais : Aais.t;
  spec : Device.rydberg;
  n : int;
  xs : Variable.t array;  (** per-atom x coordinates (runtime fixed) *)
  ys : Variable.t array option;  (** y coordinates; [None] for 1-D *)
  deltas : Variable.t array;  (** length [n], or 1 under global control *)
  omegas : Variable.t array;
  phis : Variable.t array;
}

val build : spec:Device.rydberg -> n:int -> t
(** Build the AAIS for [n] atoms.  Atom 0 is pinned at the origin (and
    atom 1 at [y = 0] in planar geometry) to fix the translation/rotation
    gauge of the position solve.  Initial positions are an evenly spaced
    chain (1-D) or regular polygon (2-D).  Equivalent to
    [build_at ~origin:(0.0, 0.0)]. *)

val build_at : origin:float * float -> spec:Device.rydberg -> n:int -> t
(** Like {!build} with atom 0 pinned at [origin] (and atom 1 at
    [y = origin_y] in planar geometry): the whole initial layout is
    rigidly translated by [origin] and the position bounds are centered
    on it.  Devices differing only in [origin] are physically
    interchangeable and share one structural cache key (the {!Shape}
    key anchors the first site at the origin). *)

val positions : t -> env:float array -> (float * float) array
(** Atom coordinates under an environment ([y = 0] in 1-D). *)

val distance : t -> env:float array -> int -> int -> float

val hamiltonian : t -> env:float array -> Qturbo_pauli.Pauli_sum.t
(** The physical simulator Hamiltonian at the given variable values:
    van-der-Waals from the positions plus the detuning/Rabi drives.  Used
    for theory curves and by the device emulator. *)

val hamiltonian_of_pulse :
  spec:Device.rydberg ->
  positions:(float * float) array ->
  omega:float array ->
  phi:float array ->
  delta:float array ->
  Qturbo_pauli.Pauli_sum.t
(** Same physics from explicit pulse parameters (per-atom arrays), without
    an AAIS instance — the emulator's entry point. *)

val check_layout : spec:Device.rydberg -> (float * float) array -> string list
(** Geometric constraint violations: pairwise separation below
    [min_separation], or the bounding box exceeding [max_extent]. *)
