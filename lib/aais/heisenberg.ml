open Qturbo_pauli

type t = {
  aais : Aais.t;
  spec : Device.heisenberg;
  n : int;
  singles : Variable.t array array;
  pairs : (int * int * Variable.t array) list;
}

let pauli_ops = [| Pauli.X; Pauli.Y; Pauli.Z |]

let build ~spec ~n =
  if n < 1 then invalid_arg "Heisenberg.build: need at least one qubit";
  let pool = Variable.create_pool () in
  let next_cid = ref 0 in
  let fresh_cid () =
    let c = !next_cid in
    incr next_cid;
    c
  in
  let instructions = ref [] in
  let linear_instruction ~label ~bound ~pstring =
    let v =
      Variable.fresh pool ~name:label ~kind:Variable.Runtime_dynamic ~lo:(-.bound)
        ~hi:bound ~init:0.0 ()
    in
    let channel =
      Instruction.channel ~cid:(fresh_cid ()) ~label ~expr:(Expr.var v)
        ~effects:[ { Instruction.pstring; coeff = 1.0 } ]
        ~hint:(Instruction.Hint_linear { var = v.Variable.id; slope = 1.0 })
    in
    instructions := Instruction.make ~label ~channels:[ channel ] :: !instructions;
    v
  in
  let singles =
    Array.init n (fun i ->
        Array.map
          (fun op ->
            linear_instruction
              ~label:(Printf.sprintf "a^%s%d" (Pauli.op_to_string op) i)
              ~bound:spec.Device.single_max
              ~pstring:(Pauli_string.single i op))
          pauli_ops)
  in
  let pair_list =
    let chain = List.init (Int.max 0 (n - 1)) (fun i -> (i, i + 1)) in
    if spec.Device.ring && n > 2 then chain @ [ (n - 1, 0) ] else chain
  in
  let pairs =
    List.map
      (fun (i, j) ->
        let vars =
          Array.map
            (fun op ->
              linear_instruction
                ~label:
                  (Printf.sprintf "a^%s%d%s%d" (Pauli.op_to_string op) i
                     (Pauli.op_to_string op) j)
                ~bound:spec.Device.two_max
                ~pstring:(Pauli_string.two i op j op))
            pauli_ops
        in
        (i, j, vars))
      pair_list
  in
  let aais =
    Aais.make
      ~name:(Printf.sprintf "heisenberg[%s,n=%d]" spec.Device.name n)
      ~n_qubits:n ~pool
      ~instructions:(List.rev !instructions)
      ~fingerprint:
        (Printf.sprintf "heisenberg single=%h two=%h ring=%b"
           spec.Device.single_max spec.Device.two_max spec.Device.ring)
      ()
  in
  { aais; spec; n; singles; pairs }

let hamiltonian t ~env =
  let h = ref Pauli_sum.zero in
  Array.iteri
    (fun i per_op ->
      Array.iteri
        (fun p v ->
          let a = env.(v.Variable.id) in
          if a <> 0.0 then
            h := Pauli_sum.add_term !h (Pauli_string.single i pauli_ops.(p)) a)
        per_op)
    t.singles;
  List.iter
    (fun (i, j, vars) ->
      Array.iteri
        (fun p v ->
          let a = env.(v.Variable.id) in
          if a <> 0.0 then
            h :=
              Pauli_sum.add_term !h
                (Pauli_string.two i pauli_ops.(p) j pauli_ops.(p))
                a)
        vars)
    t.pairs;
  !h
