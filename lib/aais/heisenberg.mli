(** The Heisenberg AAIS (paper §2.1.2): directly tunable single-qubit
    Pauli amplitudes [a^{P_i}·P_i] and same-Pauli two-qubit couplings
    [a^{P_iP_j}·P_iP_j] along the device connectivity (chain or ring).

    Every variable is runtime dynamic and time-critical, so compilation
    is exact and the whole pipeline reduces to linear algebra — which is
    why the paper reports a 100% compilation-error reduction on this
    backend. *)

type t = {
  aais : Aais.t;
  spec : Device.heisenberg;
  n : int;
  singles : Variable.t array array;
      (** [singles.(i).(p)] with [p] indexing X=0, Y=1, Z=2 *)
  pairs : (int * int * Variable.t array) list;
      (** [(i, j, vars)] per connected pair, [vars] indexed like singles *)
}

val build : spec:Device.heisenberg -> n:int -> t
(** Chain connectivity [(i, i+1)], plus the wrap-around pair when
    [spec.ring]. *)

val hamiltonian : t -> env:float array -> Qturbo_pauli.Pauli_sum.t
(** The simulator Hamiltonian at the given amplitudes. *)

val pauli_ops : Qturbo_pauli.Pauli.op array
(** [[|X; Y; Z|]], the index convention of [singles]/[pairs]. *)
