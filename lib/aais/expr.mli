(** Symbolic amplitude expressions over AAIS variables.

    Every instruction channel's strength is an expression in the device's
    amplitude variables — e.g. the van-der-Waals channel is
    [C6 / (4·(x_i − x_j)⁶)] and a Rabi channel is [(Ω/2)·cos φ].  Keeping
    these symbolic gives the compiler three things for free: the variable
    dependency sets that drive the locality decomposition, exact
    Jacobians for the local solvers (no finite differences on the hot
    path), and pattern hints that stay trustworthy because they are
    checked against the expression structure in tests. *)

type t =
  | Const of float
  | Var of int  (** a {!Variable.t} id *)
  | Neg of t
  | Add of t * t
  | Sub of t * t
  | Mul of t * t
  | Div of t * t
  | Pow_int of t * int  (** integer exponent, may be negative *)
  | Sin of t
  | Cos of t

val const : float -> t
val var : Variable.t -> t
val ( + ) : t -> t -> t
val ( - ) : t -> t -> t
val ( * ) : t -> t -> t
val ( / ) : t -> t -> t
val pow : t -> int -> t
val neg : t -> t
val sin_ : t -> t
val cos_ : t -> t

val eval : t -> env:float array -> float
(** Evaluate with variable [id] bound to [env.(id)].  Division by zero
    and 0^negative follow IEEE semantics (yield infinities/NaN) so the
    optimisers can see and reject the region. *)

val eval_interval : t -> bounds:(float * float) array -> float * float
(** Conservative interval evaluation: [eval_interval e ~bounds] encloses
    [eval e ~env] for every [env] with [env.(id)] inside the closed
    interval [bounds.(id)].  Endpoints may be infinite.  Division by an
    interval containing zero widens to a ray (denominator touching zero
    at an endpoint) or to the whole line (zero in the interior);
    [Pow_int] distinguishes even/odd and negative exponents; [Sin]/[Cos]
    locate their exact extrema when the argument interval is narrower
    than a period and clamp to [[-1, 1]] otherwise.  Any indeterminate
    endpoint combination (e.g. [inf - inf]) widens to the whole line, so
    the result is always a sound — if sometimes loose — enclosure.
    Drives the pre-solve bounds-feasibility analysis
    ({!Qturbo_analysis.Feasibility} in [qturbo.analysis]). *)

val deriv : t -> int -> t
(** Exact symbolic partial derivative with respect to a variable id,
    lightly simplified. *)

val vars : t -> int list
(** Distinct variable ids, ascending. *)

val depends_on : t -> int -> bool

val simplify : t -> t
(** Constant folding and algebraic identities ([0·x], [x+0], [x^1], …).
    Idempotent. *)

val is_linear_in : t -> int -> float option
(** [is_linear_in e v] is [Some k] when [e = k·(Var v)] exactly for a
    constant [k] (detected structurally after simplification), i.e. the
    channel is a pure linear drive of a time-critical variable. *)

(** The interval-arithmetic primitives behind {!eval_interval}, exposed
    so the kernel verifier ([Qturbo_analysis.Kernel_check]) can run its
    abstract interpreter with {e exactly} the arithmetic of the source
    evaluator — any reimplementation would turn rounding differences
    into spurious range-soundness findings.  All operations are
    conservative enclosures; indeterminate endpoint combinations widen
    to the whole line. *)
module Interval : sig
  type it = float * float

  val whole : it
  val of_const : float -> it

  val of_bound : it -> it
  (** Sanitize a variable bound the way {!eval_interval} does: NaN
      endpoints or an inverted interval widen to the whole line. *)

  val neg : it -> it
  val add : it -> it -> it
  val sub : it -> it -> it
  val mul : it -> it -> it
  val div : it -> it -> it
  val pow : it -> int -> it
  val sin_ : it -> it
  val cos_ : it -> it
end

(** {1 Compiled kernels}

    The recursive {!eval} walks the ADT on every call — fine for a
    one-off probe, an interpretive tax inside an optimiser loop.
    {!compile} flattens an expression once into a postfix program
    (opcode / argument int arrays plus a constant table) that
    {!eval_kernel} runs with a tight non-allocating loop over a
    reusable, domain-local stack. *)

type kernel

val compile : t -> kernel
(** Flatten to a postfix program.  [eval_kernel (compile e) ~env]
    performs exactly the float operations of [eval e ~env], on the
    same values, in the same order — the result is bitwise-identical,
    including IEEE special cases (division by zero, NaN). *)

val eval_kernel : kernel -> env:float array -> float
(** Evaluate a compiled kernel.  Allocation-free after the first call
    on a domain (the evaluation stack is domain-local scratch, so
    kernels may be shared freely across pool domains).  Raises
    [Invalid_argument] like {!eval} when [env] is shorter than the
    largest variable id read. *)

val kernel_length : kernel -> int
(** Number of postfix steps (one per ADT node). *)

val kernel_max_var : kernel -> int
(** Largest variable id the kernel reads, [-1] for a closed
    expression. *)

val compile_unfused : t -> kernel
(** {!compile} with the peephole fusion pass disabled: one postfix step
    per ADT node, base opcodes only.  Evaluates bitwise-identically to
    the fused kernel (fusion only collapses dispatch) — the reference
    point for the peephole-equivalence property tests. *)

val compile_hook : (t -> kernel -> unit) ref
(** Called by {!compile} / {!compile_unfused} on every kernel, with the
    source expression it was compiled from.  Default is a no-op.
    [Qturbo_analysis.Kernel_check.install_compile_hook] points this at
    the kernel verifier so test-mode runs check every kernel at birth;
    the hook may raise to reject a bad kernel. *)

(** {1 Batched evaluation}

    A residual sweep evaluates every channel kernel of a component
    against the same environment, once per optimiser iteration.
    {!Batch.pack} concatenates the kernels into one flat program so
    {!Batch.eval} runs the whole sweep as a single tight loop writing
    into a reusable [Bigarray] buffer — no per-kernel dispatch, no boxed
    intermediate arrays, and (after the first call on a domain) no
    allocation at all. *)
module Batch : sig
  type buffer =
    (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t

  type t

  val pack : kernel array -> t
  (** Concatenate kernels into one program.  [eval] on the result
      performs exactly the float operations each [eval_kernel] would,
      in the same order, so every output is bitwise-identical to the
      per-kernel evaluator. *)

  val eval : t -> env:float array -> out:buffer -> unit
  (** [eval b ~env ~out] writes kernel [r]'s value to [out.{r}] for
      every row.  Raises [Invalid_argument] when [out] is shorter than
      the batch.  Domain-safe: the evaluation stack is the same
      domain-local scratch {!eval_kernel} uses. *)

  val length : t -> int
  (** Number of packed kernels (rows). *)

  val max_var : t -> int
  (** Largest variable id any packed kernel reads, [-1] if none. *)

  val create_buffer : int -> buffer
  (** A fresh float64 buffer of at least the given length (at least 1,
      so a zero-row batch still gets a valid buffer). *)
end

(** {1 Typed IR view}

    The packed [int array] program, decoded instruction by instruction
    for static analysis.  {!kernel_view} is total: words whose opcode is
    outside the defined range decode to {!vm_instr.K_unknown} instead of
    raising, so a verifier can report malformed programs as findings.
    {!kernel_of_view} re-encodes a view — [kernel_of_view (kernel_view k)
    ~consts:(kernel_consts k) ~depth:(kernel_depth k)
    ~max_var:(kernel_max_var k)] rebuilds [k] exactly, and deliberately
    performs no validation so tests can craft corrupted kernels. *)

type binop = B_add | B_sub | B_mul | B_div

type vm_instr =
  | K_const of int  (** push [consts.(i)] *)
  | K_var of int  (** push [env.(v)] *)
  | K_neg
  | K_binop of binop  (** pop b, pop a, push [a op b] *)
  | K_pow of int
  | K_sin
  | K_cos
  | K_vv of binop * int * int  (** fused: push [env.(a) op env.(b)] *)
  | K_var_op of binop * int  (** fused: top ← [top op env.(v)] *)
  | K_const_op of binop * int  (** fused: top ← [top op consts.(i)] *)
  | K_sq  (** fused: top ← top² *)
  | K_cube
  | K_dsq of int * int  (** fused: push [(env.(a) − env.(b))²] *)
  | K_crdiv of int  (** fused: top ← [consts.(i) / top] *)
  | K_var_sin of int
  | K_var_cos of int
  | K_unknown of { op : int; arg : int }  (** undecodable word *)

val kernel_view : kernel -> vm_instr array

val kernel_consts : kernel -> float array
(** A copy of the constant table. *)

val kernel_depth : kernel -> int
(** The declared stack-slot requirement ([eval_kernel] sizes its scratch
    from this, so a kernel that actually needs more writes out of
    bounds — exactly what the verifier checks). *)

val kernel_of_view :
  vm_instr array -> consts:float array -> depth:int -> max_var:int -> kernel

val pp : Format.formatter -> t -> unit
