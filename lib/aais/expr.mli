(** Symbolic amplitude expressions over AAIS variables.

    Every instruction channel's strength is an expression in the device's
    amplitude variables — e.g. the van-der-Waals channel is
    [C6 / (4·(x_i − x_j)⁶)] and a Rabi channel is [(Ω/2)·cos φ].  Keeping
    these symbolic gives the compiler three things for free: the variable
    dependency sets that drive the locality decomposition, exact
    Jacobians for the local solvers (no finite differences on the hot
    path), and pattern hints that stay trustworthy because they are
    checked against the expression structure in tests. *)

type t =
  | Const of float
  | Var of int  (** a {!Variable.t} id *)
  | Neg of t
  | Add of t * t
  | Sub of t * t
  | Mul of t * t
  | Div of t * t
  | Pow_int of t * int  (** integer exponent, may be negative *)
  | Sin of t
  | Cos of t

val const : float -> t
val var : Variable.t -> t
val ( + ) : t -> t -> t
val ( - ) : t -> t -> t
val ( * ) : t -> t -> t
val ( / ) : t -> t -> t
val pow : t -> int -> t
val neg : t -> t
val sin_ : t -> t
val cos_ : t -> t

val eval : t -> env:float array -> float
(** Evaluate with variable [id] bound to [env.(id)].  Division by zero
    and 0^negative follow IEEE semantics (yield infinities/NaN) so the
    optimisers can see and reject the region. *)

val eval_interval : t -> bounds:(float * float) array -> float * float
(** Conservative interval evaluation: [eval_interval e ~bounds] encloses
    [eval e ~env] for every [env] with [env.(id)] inside the closed
    interval [bounds.(id)].  Endpoints may be infinite.  Division by an
    interval containing zero widens to a ray (denominator touching zero
    at an endpoint) or to the whole line (zero in the interior);
    [Pow_int] distinguishes even/odd and negative exponents; [Sin]/[Cos]
    locate their exact extrema when the argument interval is narrower
    than a period and clamp to [[-1, 1]] otherwise.  Any indeterminate
    endpoint combination (e.g. [inf - inf]) widens to the whole line, so
    the result is always a sound — if sometimes loose — enclosure.
    Drives the pre-solve bounds-feasibility analysis
    ({!Qturbo_analysis.Feasibility} in [qturbo.analysis]). *)

val deriv : t -> int -> t
(** Exact symbolic partial derivative with respect to a variable id,
    lightly simplified. *)

val vars : t -> int list
(** Distinct variable ids, ascending. *)

val depends_on : t -> int -> bool

val simplify : t -> t
(** Constant folding and algebraic identities ([0·x], [x+0], [x^1], …).
    Idempotent. *)

val is_linear_in : t -> int -> float option
(** [is_linear_in e v] is [Some k] when [e = k·(Var v)] exactly for a
    constant [k] (detected structurally after simplification), i.e. the
    channel is a pure linear drive of a time-critical variable. *)

(** {1 Compiled kernels}

    The recursive {!eval} walks the ADT on every call — fine for a
    one-off probe, an interpretive tax inside an optimiser loop.
    {!compile} flattens an expression once into a postfix program
    (opcode / argument int arrays plus a constant table) that
    {!eval_kernel} runs with a tight non-allocating loop over a
    reusable, domain-local stack. *)

type kernel

val compile : t -> kernel
(** Flatten to a postfix program.  [eval_kernel (compile e) ~env]
    performs exactly the float operations of [eval e ~env], on the
    same values, in the same order — the result is bitwise-identical,
    including IEEE special cases (division by zero, NaN). *)

val eval_kernel : kernel -> env:float array -> float
(** Evaluate a compiled kernel.  Allocation-free after the first call
    on a domain (the evaluation stack is domain-local scratch, so
    kernels may be shared freely across pool domains).  Raises
    [Invalid_argument] like {!eval} when [env] is shorter than the
    largest variable id read. *)

val kernel_length : kernel -> int
(** Number of postfix steps (one per ADT node). *)

val kernel_max_var : kernel -> int
(** Largest variable id the kernel reads, [-1] for a closed
    expression. *)

val pp : Format.formatter -> t -> unit
