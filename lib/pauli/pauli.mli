(** Single-qubit Pauli operators and their product table. *)

type op = I | X | Y | Z

type phase = P1 | Pi | Pm1 | Pmi
(** The fourth roots of unity [1, i, -1, -i] arising from Pauli products. *)

val mul : op -> op -> phase * op
(** [mul a b] is the product [a·b] as [(phase, op)]; e.g.
    [mul X Y = (Pi, Z)]. *)

val phase_mul : phase -> phase -> phase

val phase_to_complex : phase -> Complex.t

val commutes : op -> op -> bool
(** Single-site commutation: true iff either operand is [I] or they are
    equal. *)

val op_to_string : op -> string

val op_of_char : char -> op option
(** Accepts ['I' 'X' 'Y' 'Z'] (upper case only). *)

val compare_op : op -> op -> int
(** Total order [I < X < Y < Z]. *)

val equal_op : op -> op -> bool

(** Dense 2x2 matrix of an operator, row major, for the quantum simulator. *)
val matrix : op -> Complex.t array
