(** Textual Hamiltonians.

    A small concrete syntax so targets can come from files and the
    command line rather than only from the built-in benchmark suite (the
    moral equivalent of SimuQ's Python eDSL):

    {v
      H := term (('+' | '-') term)*
      term := [float '*'?] pauli+ | float
      pauli := ('X'|'Y'|'Z') site-index
    v}

    Examples: ["Z0 Z1 + Z1 Z2 + X0 + X1 + X2"],
    ["1.5 * Z0 Z1 - 0.5*X2 + 2.0"] (a bare number is an identity term).
    Whitespace is free; a site may appear at most once per term. *)

val parse : string -> (Pauli_sum.t, string) result
(** [Error msg] pinpoints the offending token. *)

val parse_exn : string -> Pauli_sum.t
(** Raises [Invalid_argument] with the parse error. *)

val to_string : Pauli_sum.t -> string
(** Canonical spelling accepted by {!parse}; round-trips exactly
    (coefficients printed as hex floats would be unreadable, so they are
    printed with ["%.17g"], which round-trips IEEE doubles). *)
