type op = I | X | Y | Z
type phase = P1 | Pi | Pm1 | Pmi

let phase_int = function P1 -> 0 | Pi -> 1 | Pm1 -> 2 | Pmi -> 3
let phase_of_int k =
  match ((k mod 4) + 4) mod 4 with
  | 0 -> P1
  | 1 -> Pi
  | 2 -> Pm1
  | _ -> Pmi

let phase_mul a b = phase_of_int (phase_int a + phase_int b)

let phase_to_complex = function
  | P1 -> Complex.one
  | Pi -> Complex.i
  | Pm1 -> { Complex.re = -1.0; im = 0.0 }
  | Pmi -> { Complex.re = 0.0; im = -1.0 }

let mul a b =
  match (a, b) with
  | I, o -> (P1, o)
  | o, I -> (P1, o)
  | X, X | Y, Y | Z, Z -> (P1, I)
  | X, Y -> (Pi, Z)
  | Y, X -> (Pmi, Z)
  | Y, Z -> (Pi, X)
  | Z, Y -> (Pmi, X)
  | Z, X -> (Pi, Y)
  | X, Z -> (Pmi, Y)

let commutes a b =
  match (a, b) with
  | I, _ | _, I -> true
  | X, X | Y, Y | Z, Z -> true
  | X, Y | Y, X | Y, Z | Z, Y | Z, X | X, Z -> false

let op_to_string = function I -> "I" | X -> "X" | Y -> "Y" | Z -> "Z"

let op_of_char = function
  | 'I' -> Some I
  | 'X' -> Some X
  | 'Y' -> Some Y
  | 'Z' -> Some Z
  | _ -> None

let op_int = function I -> 0 | X -> 1 | Y -> 2 | Z -> 3
let compare_op a b = Int.compare (op_int a) (op_int b)
let equal_op a b = op_int a = op_int b

let c re im = { Complex.re; im }

let matrix = function
  | I -> [| Complex.one; Complex.zero; Complex.zero; Complex.one |]
  | X -> [| Complex.zero; Complex.one; Complex.one; Complex.zero |]
  | Y -> [| Complex.zero; c 0.0 (-1.0); Complex.i; Complex.zero |]
  | Z -> [| Complex.one; Complex.zero; Complex.zero; c (-1.0) 0.0 |]
