(** Multi-qubit Pauli strings, stored sparsely (identity sites omitted).

    A Pauli string such as [Z₁Z₂] is the map [{1 ↦ Z, 2 ↦ Z}]; it is the
    row key of the compiler's equation systems ("Hamiltonian terms" layer
    of paper Fig. 2). *)

type t

val identity : t

val of_list : (int * Pauli.op) list -> t
(** Builds from [(site, op)] pairs; [I] entries are dropped; duplicate
    sites raise [Invalid_argument]; negative sites raise
    [Invalid_argument]. *)

val single : int -> Pauli.op -> t
(** [single i op] is the one-site string [op_i]. *)

val two : int -> Pauli.op -> int -> Pauli.op -> t
(** [two i a j b] is [a_i · b_j]; requires [i <> j]. *)

val to_list : t -> (int * Pauli.op) list
(** Ascending site order; never contains [I]. *)

val op_at : t -> int -> Pauli.op
(** [I] for unlisted sites. *)

val weight : t -> int
(** Number of non-identity sites. *)

val support : t -> int list
(** Sites carrying a non-identity operator, ascending. *)

val max_site : t -> int
(** Largest touched site; [-1] for the identity string. *)

val is_identity : t -> bool

val mul : t -> t -> Pauli.phase * t
(** Operator product with accumulated phase. *)

val commutes : t -> t -> bool
(** Strings commute iff they anticommute on an even number of sites. *)

val compare : t -> t -> int

val equal : t -> t -> bool

val hash : t -> int

val of_string : string -> t
(** Parse a dense spelling like ["IZZ"] (site 0 leftmost).  Raises
    [Invalid_argument] on other characters. *)

val to_string : ?n:int -> t -> string
(** Dense spelling padded to [n] sites (default: [max_site + 1]). *)

val pp : Format.formatter -> t -> unit
(** Compact spelling like ["Z1Z2"] (["I"] for the identity). *)
