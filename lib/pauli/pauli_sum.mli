(** Real-weighted sums of Pauli strings — the Hamiltonian representation.

    All Hamiltonians in the benchmark suite (paper Table 2) have real
    coefficients, so the coefficient field is [float].  Terms are kept in a
    canonical map keyed by {!Pauli_string.t}; zero coefficients are pruned
    eagerly so structural equality is semantic equality. *)

type t

val zero : t

val of_list : (Pauli_string.t * float) list -> t
(** Duplicate strings are summed. *)

val term : float -> Pauli_string.t -> t

val add : t -> t -> t

val sub : t -> t -> t

val scale : float -> t -> t

val add_term : t -> Pauli_string.t -> float -> t

val coeff : t -> Pauli_string.t -> float
(** Zero for absent terms. *)

val terms : t -> (Pauli_string.t * float) list
(** Canonical (sorted) order; coefficients are nonzero. *)

val term_count : t -> int

val n_qubits : t -> int
(** [1 + max touched site] ([0] for the zero sum and for pure-identity
    sums the identity contributes site [-1]). *)

val drop_identity : t -> t
(** Remove the identity-string term (a global energy shift is irrelevant
    to compilation). *)

val mul : t -> t -> t * bool
(** Operator product.  The boolean is [true] when every cross-phase was
    real (±1); imaginary phases fold a [0.] coefficient and flag [false] —
    callers that need complex algebra should not use this type.  Used only
    in tests/examples (e.g. verifying the PXP projector identity). *)

val norm1 : t -> float
(** Sum of absolute coefficients, [‖·‖₁] over the coefficient vector. *)

val equal : ?tol:float -> t -> t -> bool

val support : t -> Pauli_string.t list

val pp : Format.formatter -> t -> unit
