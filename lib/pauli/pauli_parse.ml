(* Hand-rolled tokenizer + recursive-descent parser; the grammar is
   regular enough that no parser generator is warranted. *)

type token =
  | Tnum of float
  | Tpauli of Pauli.op * int
  | Tid
  | Tplus
  | Tminus
  | Tstar

exception Error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

let is_digit c = c >= '0' && c <= '9'

let tokenize text =
  let tokens = ref [] in
  let len = String.length text in
  let pos = ref 0 in
  let advance () = incr pos in
  let read_while pred =
    let start = !pos in
    while !pos < len && pred text.[!pos] do
      advance ()
    done;
    String.sub text start (!pos - start)
  in
  while !pos < len do
    match text.[!pos] with
    | ' ' | '\t' | '\n' | '\r' -> advance ()
    | '+' ->
        advance ();
        tokens := Tplus :: !tokens
    | '-' ->
        advance ();
        tokens := Tminus :: !tokens
    | '*' ->
        advance ();
        tokens := Tstar :: !tokens
    | ('X' | 'Y' | 'Z' | 'I') as c -> (
        advance ();
        let digits = read_while is_digit in
        match (Pauli.op_of_char c, digits) with
        | Some Pauli.I, "" -> tokens := Tid :: !tokens
        | Some Pauli.I, _ -> fail "identity takes no site index"
        | Some _, "" -> fail "operator %c needs a site index" c
        | Some op, digits -> tokens := Tpauli (op, int_of_string digits) :: !tokens
        | None, _ -> fail "unreachable operator %c" c)
    | c when is_digit c || c = '.' -> (
        let num =
          read_while (fun c -> is_digit c || c = '.' || c = 'e' || c = 'E')
        in
        (* allow exponent signs: 1e-3 *)
        let num =
          if
            (!pos < len && (text.[!pos] = '+' || text.[!pos] = '-'))
            && String.length num > 0
            && (num.[String.length num - 1] = 'e' || num.[String.length num - 1] = 'E')
          then begin
            let sign = String.make 1 text.[!pos] in
            advance ();
            num ^ sign ^ read_while is_digit
          end
          else num
        in
        match float_of_string_opt num with
        | Some f -> tokens := Tnum f :: !tokens
        | None -> fail "bad number %S" num)
    | c -> fail "unexpected character %C" c
  done;
  List.rev !tokens

let parse_tokens tokens =
  (* term := [Tnum [Tstar]] Tpauli* ; at least one of coefficient/pauli *)
  let rec terms acc sign = function
    | [] -> fail "empty term"
    | stream ->
        let coeff_opt, stream =
          match stream with
          | Tnum f :: Tstar :: rest -> (Some f, rest)
          | Tnum f :: rest -> (Some f, rest)
          | rest -> (None, rest)
        in
        let coeff = Option.value coeff_opt ~default:1.0 in
        let rec paulis acc_sites saw_id = function
          | Tpauli (op, site) :: rest ->
              if List.mem_assoc site acc_sites then
                fail "site %d repeated within a term" site;
              paulis ((site, op) :: acc_sites) saw_id rest
          | Tid :: rest -> paulis acc_sites true rest
          | rest -> (acc_sites, saw_id, rest)
        in
        let sites, saw_id, rest = paulis [] false stream in
        (* a term must contain a coefficient, an identity marker, or at
           least one Pauli factor *)
        if sites = [] && (not saw_id) && coeff_opt = None then
          fail "term without content";
        let term = (Pauli_string.of_list (List.rev sites), sign *. coeff) in
        let acc = term :: acc in
        (match rest with
        | [] -> List.rev acc
        | Tplus :: tl -> terms acc 1.0 tl
        | Tminus :: tl -> terms acc (-1.0) tl
        | (Tnum _ | Tpauli _ | Tid | Tstar) :: _ ->
            fail "expected '+' or '-' between terms")
  in
  (* leading sign *)
  match tokens with
  | [] -> fail "empty input"
  | Tminus :: tl -> terms [] (-1.0) tl
  | Tplus :: tl -> terms [] 1.0 tl
  | tl -> terms [] 1.0 tl

let parse text =
  match Pauli_sum.of_list (parse_tokens (tokenize text)) with
  | sum -> Ok sum
  | exception Error msg -> Result.Error msg
  | exception Invalid_argument msg -> Result.Error msg

let parse_exn text =
  match parse text with
  | Ok sum -> sum
  | Result.Error msg -> invalid_arg ("Pauli_parse: " ^ msg)

let to_string sum =
  let term_to_string (s, c) =
    let ops =
      List.map
        (fun (site, op) -> Printf.sprintf "%s%d" (Pauli.op_to_string op) site)
        (Pauli_string.to_list s)
    in
    let coeff = Printf.sprintf "%.17g" (Float.abs c) in
    let body =
      if ops = [] then coeff else coeff ^ " * " ^ String.concat " " ops
    in
    ((if c < 0.0 then "-" else "+"), body)
  in
  match List.map term_to_string (Pauli_sum.terms sum) with
  | [] -> "0"
  | (sign, body) :: rest ->
      let first = if sign = "-" then "-" ^ body else body in
      List.fold_left
        (fun acc (sign, body) -> acc ^ " " ^ sign ^ " " ^ body)
        first rest
