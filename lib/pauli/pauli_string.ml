module Site_map = Map.Make (Int)

type t = Pauli.op Site_map.t

let identity = Site_map.empty

let of_list pairs =
  List.fold_left
    (fun acc (site, op) ->
      if site < 0 then invalid_arg "Pauli_string.of_list: negative site";
      match op with
      | Pauli.I -> acc
      | Pauli.X | Pauli.Y | Pauli.Z ->
          if Site_map.mem site acc then
            invalid_arg "Pauli_string.of_list: duplicate site";
          Site_map.add site op acc)
    Site_map.empty pairs

let single i op = of_list [ (i, op) ]

let two i a j b =
  if i = j then invalid_arg "Pauli_string.two: equal sites";
  of_list [ (i, a); (j, b) ]

let to_list t = Site_map.bindings t
let op_at t i = match Site_map.find_opt i t with Some op -> op | None -> Pauli.I
let weight t = Site_map.cardinal t
let support t = List.map fst (Site_map.bindings t)
let max_site t = match Site_map.max_binding_opt t with Some (s, _) -> s | None -> -1
let is_identity t = Site_map.is_empty t

let mul a b =
  let phase = ref Pauli.P1 in
  let merged =
    Site_map.merge
      (fun _site oa ob ->
        match (oa, ob) with
        | None, None -> None
        | Some o, None | None, Some o -> Some o
        | Some o1, Some o2 ->
            let p, o = Pauli.mul o1 o2 in
            phase := Pauli.phase_mul !phase p;
            (match o with Pauli.I -> None | Pauli.X | Pauli.Y | Pauli.Z -> Some o))
      a b
  in
  (!phase, merged)

let commutes a b =
  let anticommuting_sites = ref 0 in
  Site_map.iter
    (fun site oa ->
      let ob = op_at b site in
      if not (Pauli.commutes oa ob) then incr anticommuting_sites)
    a;
  !anticommuting_sites mod 2 = 0

let compare a b =
  Site_map.compare Pauli.compare_op a b

let equal a b = compare a b = 0

let hash t =
  Site_map.fold
    (fun site op acc ->
      let opi = match op with Pauli.I -> 0 | X -> 1 | Y -> 2 | Z -> 3 in
      (acc * 1_000_003) + (site * 4) + opi)
    t 17

let of_string s =
  let pairs = ref [] in
  String.iteri
    (fun i c ->
      match Pauli.op_of_char c with
      | Some op -> pairs := (i, op) :: !pairs
      | None -> invalid_arg "Pauli_string.of_string: invalid character")
    s;
  of_list !pairs

let to_string ?n t =
  let len = match n with Some n -> n | None -> max_site t + 1 in
  String.init len (fun i -> (Pauli.op_to_string (op_at t i)).[0])

let pp ppf t =
  if is_identity t then Format.fprintf ppf "I"
  else
    Site_map.iter
      (fun site op -> Format.fprintf ppf "%s%d" (Pauli.op_to_string op) site)
      t
