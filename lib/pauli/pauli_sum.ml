module Term_map = Map.Make (struct
  type t = Pauli_string.t

  let compare = Pauli_string.compare
end)

type t = float Term_map.t

let zero = Term_map.empty

let add_term t s c =
  if c = 0.0 then t
  else
    Term_map.update s
      (fun existing ->
        let total = match existing with Some x -> x +. c | None -> c in
        if total = 0.0 then None else Some total)
      t

let of_list pairs = List.fold_left (fun acc (s, c) -> add_term acc s c) zero pairs
let term c s = add_term zero s c
let add a b = Term_map.fold (fun s c acc -> add_term acc s c) b a
let sub a b = Term_map.fold (fun s c acc -> add_term acc s (-.c)) b a

let scale k t =
  if k = 0.0 then zero else Term_map.map (fun c -> k *. c) t

let coeff t s = match Term_map.find_opt s t with Some c -> c | None -> 0.0
let terms t = Term_map.bindings t
let term_count t = Term_map.cardinal t

let n_qubits t =
  Term_map.fold (fun s _ acc -> Int.max acc (Pauli_string.max_site s + 1)) t 0

let drop_identity t = Term_map.remove Pauli_string.identity t

let mul a b =
  let all_real = ref true in
  let result = ref zero in
  Term_map.iter
    (fun sa ca ->
      Term_map.iter
        (fun sb cb ->
          let phase, s = Pauli_string.mul sa sb in
          let factor =
            match phase with
            | Pauli.P1 -> 1.0
            | Pauli.Pm1 -> -1.0
            | Pauli.Pi | Pauli.Pmi ->
                all_real := false;
                0.0
          in
          result := add_term !result s (ca *. cb *. factor))
        b)
    a;
  (!result, !all_real)

let norm1 t = Term_map.fold (fun _ c acc -> acc +. Float.abs c) t 0.0

let equal ?(tol = 0.0) a b =
  let close x y = Float.abs (x -. y) <= tol in
  Term_map.for_all (fun s c -> close c (coeff b s)) a
  && Term_map.for_all (fun s c -> close c (coeff a s)) b

let support t = List.map fst (terms t)

let pp ppf t =
  let first = ref true in
  Term_map.iter
    (fun s c ->
      if !first then first := false
      else Format.fprintf ppf (if c >= 0.0 then " + " else " ");
      Format.fprintf ppf "%g·%a" c Pauli_string.pp s)
    t;
  if !first then Format.fprintf ppf "0"
