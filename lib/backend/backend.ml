open Qturbo_aais
module Diagnostic = Qturbo_analysis.Diagnostic

type flag = Device_preset | Cutoff | Ramp

let flag_name = function
  | Device_preset -> "--device"
  | Cutoff -> "--cutoff"
  | Ramp -> "--ramp"

type pulse =
  | Rydberg_pulse of Pulse.rydberg
  | Heisenberg_pulse of Pulse.heisenberg
  | Iontrap_pulse of Pulse.iontrap

let pulse_text = function
  | Rydberg_pulse p -> Format.asprintf "%a" Pulse.pp_rydberg p
  | Heisenberg_pulse p -> Format.asprintf "%a" Pulse.pp_heisenberg p
  | Iontrap_pulse p -> Format.asprintf "%a" Pulse.pp_iontrap p

let pulse_json = function
  | Rydberg_pulse p -> Pulse_io.rydberg_to_json p
  | Heisenberg_pulse p -> Pulse_io.heisenberg_to_json p
  | Iontrap_pulse p -> Pulse_io.iontrap_to_json p

let pulse_violations = function
  | Rydberg_pulse p -> Pulse.within_limits p @ Pulse.slew_violations p
  | Heisenberg_pulse p -> Pulse.heisenberg_within_limits p
  | Iontrap_pulse p -> Pulse.iontrap_within_limits p

type instance = {
  backend_name : string;
  device_name : string;
  aais : Aais.t;
  max_time : float;
  spec_diagnostics : Diagnostic.t list;
  verify :
    target:Qturbo_pauli.Pauli_sum.t ->
    t_tar:float ->
    Qturbo_core.Compiler.result ->
    Qturbo_core.Verifier.report;
  extract : env:float array -> t_sim:float -> pulse;
  ramp : pulse -> pulse;
}

type t = {
  name : string;
  doc : string;
  flags : flag list;
  devices : (string * string) list;
  default_device : string option;
  instantiate :
    ?device:string -> ?cutoff:string -> model_name:string -> n:int -> unit ->
    instance;
}

let supports backend flag = List.mem flag backend.flags

let reject_unsupported backend ~device ~cutoff ~ramp =
  let reject flag =
    failwith
      (Printf.sprintf "%s does not apply to the %s backend" (flag_name flag)
         backend.name)
  in
  if device <> None && not (supports backend Device_preset) then
    reject Device_preset;
  if cutoff <> None && not (supports backend Cutoff) then reject Cutoff;
  if ramp && not (supports backend Ramp) then reject Ramp

(* ---- registry ---- *)

let registry : (string * t) list ref = ref []

let register backend =
  if List.mem_assoc backend.name !registry then
    invalid_arg ("Backend.register: duplicate backend " ^ backend.name);
  registry := !registry @ [ (backend.name, backend) ]

let find name = List.assoc_opt name !registry

let names () = List.map fst !registry

let all () = List.map snd !registry

let find_exn name =
  match find name with
  | Some b -> b
  | None ->
      failwith
        (Printf.sprintf "unknown backend %s (%s)" name
           (String.concat " | " (names ())))

(* ---- rydberg ---- *)

let rydberg_presets =
  [
    ("aquila-paper", Device.aquila_paper);
    ("aquila", Device.aquila);
    ("aquila-fig6a", Device.aquila_fig6a);
    ("aquila-fig6b", Device.aquila_fig6b);
  ]

let describe_rydberg (s : Device.rydberg) =
  Printf.sprintf
    "C6=%.4g  Omega<=%.3g  |Delta|<=%.3g  sep>=%g um  window %g um  %s \
     control, %s"
    s.Device.c6 s.Device.omega_max s.Device.delta_max s.Device.min_separation
    s.Device.max_extent
    (match s.Device.control with
    | Device.Global -> "global"
    | Device.Local -> "local")
    (match s.Device.geometry with Device.Line -> "1-D" | Device.Plane -> "2-D")

(* [resolve_rydberg_spec] of the pre-refactor CLI, verbatim: the preset
   lookup, the n>16 window widening for scaling studies, and the planar
   layout for cycle/lattice couplings all have to stay bitwise-identical
   (the golden tests pin this). *)
let resolve_rydberg_spec ~device_name ~n ~model_name =
  let spec =
    match List.assoc_opt device_name rydberg_presets with
    | Some s -> s
    | None -> failwith ("unknown device: " ^ device_name)
  in
  let spec =
    if n > 16 then
      let extent = Float.max 2000.0 (3.5 *. float_of_int n) in
      { spec with Device.max_extent = extent }
    else spec
  in
  match model_name with
  | "ising-cycle" | "ising-cycle+" | "ising-grid" ->
      Device.with_geometry Device.Plane spec
  | _ -> spec

let parse_cutoff s =
  match String.lowercase_ascii (String.trim s) with
  | "auto" -> Rydberg.Auto
  | "all-pairs" | "all" | "exact" -> Rydberg.All_pairs
  | other -> (
      match float_of_string_opt other with
      | Some r when Float.is_finite r && r > 0.0 -> Rydberg.Radius r
      | _ ->
          failwith
            ("invalid --cutoff " ^ s
           ^ " (expected auto, all-pairs, or a positive radius in um)"))

let rydberg =
  let instantiate ?device ?cutoff ~model_name ~n () =
    let device_name = Option.value device ~default:"aquila-paper" in
    let spec = resolve_rydberg_spec ~device_name ~n ~model_name in
    let cutoff = parse_cutoff (Option.value cutoff ~default:"auto") in
    let ryd = Rydberg.build_cutoff ~cutoff ~spec ~n in
    {
      backend_name = "rydberg";
      device_name;
      aais = ryd.Rydberg.aais;
      max_time = spec.Device.max_time;
      spec_diagnostics = Qturbo_analysis.Device_check.rydberg_spec spec;
      verify =
        (fun ~target ~t_tar r ->
          Qturbo_core.Verifier.verify_rydberg ryd ~target ~t_tar r);
      extract =
        (fun ~env ~t_sim ->
          Rydberg_pulse (Qturbo_core.Extract.rydberg_pulse ryd ~env ~t_sim));
      ramp =
        (function
        | Rydberg_pulse p -> Rydberg_pulse (Qturbo_core.Ramp.apply p)
        | other -> other);
    }
  in
  {
    name = "rydberg";
    doc = "neutral-atom arrays: vdW pair interactions, detunings, Rabi drives";
    flags = [ Device_preset; Cutoff; Ramp ];
    devices =
      List.map (fun (name, s) -> (name, describe_rydberg s)) rydberg_presets;
    default_device = Some "aquila-paper";
    instantiate;
  }

(* ---- heisenberg ---- *)

let heisenberg =
  let instantiate ?device ?cutoff ~model_name ~n () =
    ignore device;
    ignore cutoff;
    ignore model_name;
    let spec = Device.heisenberg_default in
    let heis = Heisenberg.build ~spec ~n in
    {
      backend_name = "heisenberg";
      device_name = spec.Device.name;
      aais = heis.Heisenberg.aais;
      max_time = spec.Device.max_time;
      spec_diagnostics = Qturbo_analysis.Device_check.heisenberg_spec spec;
      verify =
        (fun ~target ~t_tar r ->
          Qturbo_core.Verifier.verify_heisenberg heis ~target ~t_tar r);
      extract =
        (fun ~env ~t_sim ->
          Heisenberg_pulse
            (Qturbo_core.Extract.heisenberg_pulse heis ~env ~t_sim));
      ramp = Fun.id;
    }
  in
  let h = Device.heisenberg_default in
  {
    name = "heisenberg";
    doc = "generic spin chain: per-site Pauli drives, same-Pauli couplings";
    flags = [];
    devices =
      [
        ( h.Device.name,
          Printf.sprintf "single<=%g  two<=%g  (chain)" h.Device.single_max
            h.Device.two_max );
      ];
    default_device = None;
    instantiate;
  }

(* ---- iontrap ---- *)

let iontrap_presets =
  [
    ("iontrap-chain", Device.iontrap_chain); ("iontrap-nn", Device.iontrap_nn);
  ]

let describe_iontrap (s : Device.iontrap) =
  Printf.sprintf
    "Omega<=%.3g  |mu|<=%.3g  J<=%.3g/d^%g  range %s  <=%d ions"
    s.Device.omega_max s.Device.mu_max s.Device.j_max s.Device.falloff
    (if s.Device.coupling_range = max_int then "all"
     else string_of_int s.Device.coupling_range)
    s.Device.max_ions

let iontrap =
  let instantiate ?device ?cutoff ~model_name ~n () =
    ignore cutoff;
    ignore model_name;
    let device_name = Option.value device ~default:"iontrap-chain" in
    let spec =
      match List.assoc_opt device_name iontrap_presets with
      | Some s -> s
      | None -> failwith ("unknown device: " ^ device_name)
    in
    let trap = Iontrap.build ~spec ~n in
    {
      backend_name = "iontrap";
      device_name;
      aais = trap.Iontrap.aais;
      max_time = spec.Device.max_time;
      spec_diagnostics = Qturbo_analysis.Device_check.iontrap_spec spec;
      verify =
        (fun ~target ~t_tar r ->
          Qturbo_core.Verifier.verify_iontrap trap ~target ~t_tar r);
      extract =
        (fun ~env ~t_sim ->
          Iontrap_pulse (Qturbo_core.Extract.iontrap_pulse trap ~env ~t_sim));
      ramp = Fun.id;
    }
  in
  {
    name = "iontrap";
    doc =
      "trapped-ion chain: per-ion drives and light shifts, Molmer-Sorensen \
       pair couplings";
    flags = [ Device_preset ];
    devices =
      List.map (fun (name, s) -> (name, describe_iontrap s)) iontrap_presets;
    default_device = Some "iontrap-chain";
    instantiate;
  }

let () =
  register rydberg;
  register heisenberg;
  register iontrap
