(** First-class backend abstraction: one record per AAIS family
    packaging everything the pipeline needs beyond the family-agnostic
    solve core — AAIS construction from a device preset, typed pulse
    extraction, device limit checks, verification, the ramping post-pass
    hook, and pulse printing/JSON emission.

    The CLI dispatches every command through {!find_exn} instead of
    per-family matches; adding a family means implementing one {!t}
    value and calling {!register} (see [docs/BACKENDS.md]). *)

open Qturbo_aais

type flag = Device_preset | Cutoff | Ramp
    (** CLI options that only exist for some families.  A backend
        declares the flags it understands; the CLI rejects any explicit
        use of an undeclared flag (exit 2) instead of silently ignoring
        it. *)

val flag_name : flag -> string
(** The user-facing spelling, e.g. ["--cutoff"]. *)

(** A typed pulse schedule — the per-family extraction result. *)
type pulse =
  | Rydberg_pulse of Pulse.rydberg
  | Heisenberg_pulse of Pulse.heisenberg
  | Iontrap_pulse of Pulse.iontrap

val pulse_text : pulse -> string
(** Human-readable schedule (the family's [pp_*] printer). *)

val pulse_json : pulse -> string
(** Strict-JSON schedule ({!Qturbo_aais.Pulse_io}). *)

val pulse_violations : pulse -> string list
(** Device-limit violations; for Rydberg this is
    [within_limits @ slew_violations], matching what the CLI has always
    printed under [--show-pulse]. *)

type instance = {
  backend_name : string;
  device_name : string;  (** resolved preset name *)
  aais : Aais.t;  (** feeds the family-agnostic compilers directly *)
  max_time : float;  (** device schedule-length limit, for [analyze] *)
  spec_diagnostics : Qturbo_analysis.Diagnostic.t list;
      (** QT010/QT011 findings on the device preset itself *)
  verify :
    target:Qturbo_pauli.Pauli_sum.t ->
    t_tar:float ->
    Qturbo_core.Compiler.result ->
    Qturbo_core.Verifier.report;
      (** independent reconstruction through the family's physical
          Hamiltonian *)
  extract : env:float array -> t_sim:float -> pulse;
  ramp : pulse -> pulse;
      (** hardware ramping post-pass; the identity for families without
          slew limits *)
}
(** A backend bound to a concrete device, model support and size. *)

type t = {
  name : string;
  doc : string;  (** one-line summary for listings *)
  flags : flag list;  (** CLI options this family understands *)
  devices : (string * string) list;
      (** device presets as [(name, human summary)] *)
  default_device : string option;
      (** preset used when [--device] is omitted; [None] when the family
          has a single implicit device *)
  instantiate :
    ?device:string -> ?cutoff:string -> model_name:string -> n:int -> unit ->
    instance;
      (** Build the AAIS.  [model_name] lets a family adapt (the Rydberg
          backend picks planar layouts for cycle/lattice models).  Raises
          [Failure] on unknown presets or malformed cutoffs. *)
}

val supports : t -> flag -> bool

val reject_unsupported :
  t -> device:string option -> cutoff:string option -> ramp:bool -> unit
(** Raises [Failure] (CLI exit 2) when an explicitly-passed flag is not
    declared by the backend. *)

(** {1 Registry} *)

val register : t -> unit
(** Raises [Invalid_argument] on duplicate names. *)

val find : string -> t option

val find_exn : string -> t
(** Raises [Failure] listing the known names (CLI exit 2). *)

val names : unit -> string list
(** Registration order. *)

val all : unit -> t list

(** {1 Built-in backends}

    Registered at module initialisation, in this order. *)

val rydberg : t
val heisenberg : t
val iontrap : t
