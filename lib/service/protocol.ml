module J = Qturbo_util.Json

type job = {
  model : string option;
  hamiltonian : string option;
  n : int;
  backend : string;
  device : string option;
  cutoff : string option;
  j : float;
  h : float;
  t_tar : float;
}

type compile = {
  job : job;
  domains : int;
  best_effort : bool;
  deadline : float;
  show_pulse : bool;
  ramp : bool;
  no_plan_cache : bool;
}

type sweep = {
  sweep_job : job;
  sweep_j : string;
  sweep_h : string;
  sweep_t : string;
  sweep_segments : string;
  sweep_domains : int;
  batch_domains : int;
  sweep_best_effort : bool;
  sweep_no_plan_cache : bool;
}

type request =
  | Ping
  | Stats
  | Shutdown
  | Compile of compile
  | Check of job
  | Lint of job
  | Sweep of sweep

let op_name = function
  | Ping -> "ping"
  | Stats -> "stats"
  | Shutdown -> "shutdown"
  | Compile _ -> "compile"
  | Check _ -> "check"
  | Lint _ -> "lint"
  | Sweep _ -> "sweep"

(* ---- field extraction -------------------------------------------------- *)

exception Bad of string

let fail fmt = Printf.ksprintf (fun s -> raise (Bad s)) fmt

let opt_string fields name =
  match List.assoc_opt name fields with
  | None | Some J.Null -> None
  | Some (J.String s) -> Some s
  | Some _ -> fail "field %S must be a string" name

let str fields name ~default =
  Option.value (opt_string fields name) ~default

let num fields name ~default =
  match List.assoc_opt name fields with
  | None | Some J.Null -> default
  | Some (J.Number f) when Float.is_finite f -> f
  | Some _ -> fail "field %S must be a finite number" name

let int_of fields name ~default =
  let f = num fields name ~default:(float_of_int default) in
  if Float.is_integer f && Float.abs f <= 1e9 then int_of_float f
  else fail "field %S must be an integer" name

let boolean fields name ~default =
  match List.assoc_opt name fields with
  | None | Some J.Null -> default
  | Some (J.Bool b) -> b
  | Some _ -> fail "field %S must be a boolean" name

(* strict protocol: an op accepts exactly its declared fields — a typo
   like "t_targ" is an error, not a silently applied default *)
let check_fields fields ~allowed =
  List.iter
    (fun (k, _) ->
      if not (List.mem k allowed) then
        fail "unknown field %S for op %S" k (str fields "op" ~default:"?"))
    fields

let job_fields =
  [ "model"; "hamiltonian"; "n"; "backend"; "device"; "cutoff"; "j"; "h";
    "t_tar" ]

let job_of fields =
  {
    model = opt_string fields "model";
    hamiltonian = opt_string fields "hamiltonian";
    n = int_of fields "n" ~default:5;
    backend = str fields "backend" ~default:"rydberg";
    device = opt_string fields "device";
    cutoff = opt_string fields "cutoff";
    j = num fields "j" ~default:0.0;
    h = num fields "h" ~default:0.0;
    t_tar = num fields "t_tar" ~default:1.0;
  }

let parse v =
  match
    match v with
    | J.Object fields -> (
        let op =
          match opt_string fields "op" with
          | Some op -> op
          | None -> fail "request object needs an \"op\" field"
        in
        match op with
        | "ping" ->
            check_fields fields ~allowed:[ "op" ];
            Ping
        | "stats" ->
            check_fields fields ~allowed:[ "op" ];
            Stats
        | "shutdown" ->
            check_fields fields ~allowed:[ "op" ];
            Shutdown
        | "compile" ->
            check_fields fields
              ~allowed:
                ("op" :: "domains" :: "best_effort" :: "deadline"
                :: "show_pulse" :: "ramp" :: "no_plan_cache" :: job_fields);
            Compile
              {
                job = job_of fields;
                domains = int_of fields "domains" ~default:0;
                best_effort = boolean fields "best_effort" ~default:false;
                deadline = num fields "deadline" ~default:0.0;
                show_pulse = boolean fields "show_pulse" ~default:false;
                ramp = boolean fields "ramp" ~default:false;
                no_plan_cache = boolean fields "no_plan_cache" ~default:false;
              }
        | "check" ->
            check_fields fields ~allowed:("op" :: job_fields);
            Check (job_of fields)
        | "lint" ->
            check_fields fields ~allowed:("op" :: job_fields);
            Lint (job_of fields)
        | "sweep" ->
            check_fields fields
              ~allowed:
                ("op" :: "sweep_j" :: "sweep_h" :: "sweep_t"
                :: "sweep_segments" :: "domains" :: "batch_domains"
                :: "best_effort" :: "no_plan_cache" :: job_fields);
            Sweep
              {
                sweep_job = job_of fields;
                sweep_j = str fields "sweep_j" ~default:"0";
                sweep_h = str fields "sweep_h" ~default:"0";
                sweep_t = str fields "sweep_t" ~default:"1.0";
                sweep_segments = str fields "sweep_segments" ~default:"";
                sweep_domains = int_of fields "domains" ~default:0;
                batch_domains = int_of fields "batch_domains" ~default:0;
                sweep_best_effort = boolean fields "best_effort" ~default:false;
                sweep_no_plan_cache =
                  boolean fields "no_plan_cache" ~default:false;
              }
        | other -> fail "unknown op %S" other)
    | _ -> fail "request must be a JSON object"
  with
  | req -> Ok req
  | exception Bad msg -> Error msg

let parse_line line =
  match J.parse line with
  | Error msg -> Error ("invalid JSON: " ^ msg)
  | Ok v -> parse v
