(* Shared request logic: everything the CLI's --json paths and the
   daemon both need — model construction, backend resolution, range
   parsing, and the machine-readable payload builders.  Keeping a
   single implementation here is what makes a CLI invocation and a
   daemon request byte-identical for the same job. *)

module Backend = Qturbo_backend.Backend
module D = Qturbo_analysis.Diagnostic
module C = Qturbo_core.Compiler

let model_names =
  [
    "ising-chain"; "ising-cycle"; "kitaev"; "ising-cycle+"; "heis-chain";
    "mis-chain"; "qaoa-chain"; "pxp"; "ising-grid";
  ]

let build_model ~name ~n ~j ~h =
  match name with
  | "ising-chain" -> Qturbo_models.Benchmarks.ising_chain ?j ?h ~n ()
  | "ising-cycle" -> Qturbo_models.Benchmarks.ising_cycle ?j ?h ~n ()
  | "kitaev" -> Qturbo_models.Benchmarks.kitaev ?h ~n ()
  | "ising-cycle+" -> Qturbo_models.Benchmarks.ising_cycle_plus ?j ?h ~n ()
  | "heis-chain" -> Qturbo_models.Benchmarks.heisenberg_chain ?j ?h ~n ()
  | "mis-chain" -> Qturbo_models.Benchmarks.mis_chain ~n ()
  | "qaoa-chain" -> Qturbo_models.Benchmarks.qaoa_chain ?gamma:j ?beta:h ~n ()
  | "pxp" -> Qturbo_models.Benchmarks.pxp ?j ?h ~n ()
  | "ising-grid" ->
      let side = int_of_float (Float.round (sqrt (float_of_int n))) in
      if side * side <> n then
        invalid_arg "ising-grid needs a square qubit count";
      Qturbo_models.Benchmarks.ising_grid ?j ?h ~rows:side ~cols:side ()
  | other -> invalid_arg ("unknown model: " ^ other)

let resolve_model ~hamiltonian ~model_name ~n ~j ~h =
  let j = if j = 0.0 then None else Some j in
  let h = if h = 0.0 then None else Some h in
  match (hamiltonian, model_name) with
  | Some text, _ ->
      (* the register size is exactly what the expression touches *)
      let sum = Qturbo_pauli.Pauli_parse.parse_exn text in
      Qturbo_models.Model.static ~name:"custom"
        ~n:(Qturbo_pauli.Pauli_sum.n_qubits sum)
        sum
  | None, Some name -> build_model ~name ~n ~j ~h
  | None, None -> failwith "provide either --model or --hamiltonian"

(* Resolve --backend/--device/--cutoff through the registry, rejecting
   explicitly-passed flags the chosen backend does not declare. *)
let resolve_backend ~backend ~device ~cutoff ~ramp ~model_name ~n =
  let b = Backend.find_exn backend in
  Backend.reject_unsupported b ~device ~cutoff ~ramp;
  b.Backend.instantiate ?device ?cutoff ~model_name ~n ()

let static_target model =
  Qturbo_pauli.Pauli_sum.drop_identity
    (Qturbo_models.Model.hamiltonian_at model ~s:0.0)

(* ---- range parsing (sweep grids) ------------------------------------- *)

let parse_range ~what text =
  let fail () =
    failwith
      (Printf.sprintf "%s: expected VALUE or LO:HI:COUNT, got %s" what text)
  in
  let num s =
    match float_of_string_opt (String.trim s) with
    | Some v -> v
    | None -> fail ()
  in
  match String.split_on_char ':' text with
  | [ v ] -> [ num v ]
  | [ lo; hi; count ] ->
      let lo = num lo and hi = num hi in
      let count =
        match int_of_string_opt (String.trim count) with
        | Some k when k >= 1 -> k
        | _ -> fail ()
      in
      if count = 1 then [ lo ]
      else
        List.init count (fun i ->
            lo +. (float_of_int i *. (hi -. lo) /. float_of_int (count - 1)))
  | _ -> fail ()

let parse_int_list ~what text =
  List.filter_map
    (fun s ->
      let s = String.trim s in
      if s = "" then None
      else
        match int_of_string_opt s with
        | Some k when k >= 1 -> Some k
        | _ -> failwith (what ^ ": expected comma-separated counts >= 1"))
    (String.split_on_char ',' text)

(* ---- cache / store telemetry ------------------------------------------ *)

(* Plan-cache keys are exact structural strings (kilobytes for large
   devices); display layers show a stable digest prefix instead. *)
let digest_key key = String.sub (Digest.to_hex (Digest.string key)) 0 12

let plan_cache_json () =
  let s = Qturbo_core.Compile_plan.cache_stats () in
  let per_key = Qturbo_core.Compile_plan.cache_per_key () in
  Printf.sprintf
    {|{"hits":%d,"misses":%d,"evictions":%d,"discarded":%d,"size":%d,"capacity":%d,"per_key":[%s]}|}
    s.Qturbo_core.Plan_cache.hits s.Qturbo_core.Plan_cache.misses
    s.Qturbo_core.Plan_cache.evictions s.Qturbo_core.Plan_cache.discarded
    s.Qturbo_core.Plan_cache.size s.Qturbo_core.Plan_cache.capacity
    (String.concat ","
       (List.map
          (fun (key, (k : Qturbo_core.Plan_cache.key_stats)) ->
            Printf.sprintf
              {|{"key":"%s","hits":%d,"misses":%d,"evictions":%d,"discarded":%d}|}
              (digest_key key) k.Qturbo_core.Plan_cache.key_hits
              k.Qturbo_core.Plan_cache.key_misses
              k.Qturbo_core.Plan_cache.key_evictions
              k.Qturbo_core.Plan_cache.key_discarded)
          per_key))

let plan_store_json () =
  match Qturbo_core.Compile_plan.store_stats () with
  | None -> "null"
  | Some s ->
      Printf.sprintf
        {|{"dir":%s,"hits":%d,"misses":%d,"corrupt":%d,"version_mismatch":%d,"writes":%d,"write_errors":%d}|}
        (Qturbo_util.Json.quote
           (Option.value (Qturbo_core.Compile_plan.store_dir ()) ~default:""))
        s.Qturbo_store.Plan_store.hits s.Qturbo_store.Plan_store.misses
        s.Qturbo_store.Plan_store.corrupt
        s.Qturbo_store.Plan_store.version_mismatch
        s.Qturbo_store.Plan_store.writes s.Qturbo_store.Plan_store.write_errors

(* ---- payload builders -------------------------------------------------- *)

(* The static --json compile: compile, verify, splice the pulse when
   asked.  Byte-for-byte the report `qturbo compile --json` prints. *)
let compile_report_json ~options ~inst ~target ~t_tar ~show_pulse ~ramp () =
  let r = C.compile ~options ~aais:inst.Backend.aais ~target ~t_tar () in
  let report =
    Qturbo_core.Verifier.report_to_json (inst.Backend.verify ~target ~t_tar r)
  in
  if show_pulse then begin
    let pulse =
      inst.Backend.extract ~env:r.C.env ~t_sim:r.C.t_sim
    in
    let pulse = if ramp then inst.Backend.ramp pulse else pulse in
    String.sub report 0 (String.length report - 1)
    ^ ",\"pulse\":" ^ Backend.pulse_json pulse ^ "}"
  end
  else report

let check_report_json ~inst ~aais ~target ~t_tar () =
  let t_max = inst.Backend.max_time in
  let diags =
    inst.Backend.spec_diagnostics
    @ C.analyze ~t_max ~aais ~target ~t_tar ()
  in
  D.list_to_json diags

(* `qturbo lint --json` without an injected defect. *)
let lint_report_json ~model_label ~backend ~inst ~target () =
  let module CP = Qturbo_core.Compile_plan in
  let module KC = Qturbo_analysis.Kernel_check in
  let aais = inst.Backend.aais in
  let support = CP.support_of_target target in
  let plan = CP.build ~aais ~target_shape:support () in
  let channels = Qturbo_aais.Aais.channels aais in
  let diags = KC.check_aais aais @ CP.lint plan in
  let n_rows =
    Qturbo_core.Term_index.count
      (Qturbo_core.Linear_system.skeleton_index plan.CP.skeleton)
  in
  Printf.sprintf "{\"model\":%s,\"backend\":%s,\"channels\":%d,\"rows\":%d,%s}"
    (Qturbo_util.Json.quote model_label)
    (Qturbo_util.Json.quote backend)
    (Array.length channels) n_rows
    (let report = D.list_to_json diags in
     (* embed the report object's fields *)
     String.sub report 1 (String.length report - 2))

let sweep_header ~probe ~backend ~n ~mode ~job_count ~batch_domains =
  Printf.sprintf
    {|"sweep":{"model":%s,"backend":%s,"n":%d,"mode":"%s","jobs":%d,"batch_domains":%d}|}
    (Qturbo_util.Json.quote probe.Qturbo_models.Model.name)
    (Qturbo_util.Json.quote backend)
    n mode job_count batch_domains

(* `qturbo sweep --json`, static mode: one batch over a (j, h, t) job
   list, each job reported through the backend's verifier. *)
let sweep_static_json ~options ~batch_domains ~backend ~inst ~probe ~target_of
    ~jobs () =
  let jf = Qturbo_util.Json.float_lit in
  let n = probe.Qturbo_models.Model.n in
  let batch = List.map (fun (j, h, t) -> (target_of ~j ~h, t)) jobs in
  let results =
    C.compile_batch ~options ~batch_domains ~aais:inst.Backend.aais batch
  in
  let reports =
    List.map2
      (fun (target, t_tar) r -> inst.Backend.verify ~target ~t_tar r)
      batch results
  in
  let job_json (j, h, t) report =
    Printf.sprintf {|{"j":%s,"h":%s,"t_tar":%s,"report":%s}|} (jf j) (jf h)
      (jf t)
      (Qturbo_core.Verifier.report_to_json report)
  in
  Printf.sprintf {|{%s,"jobs":[%s],"plan_cache":%s}|}
    (sweep_header ~probe ~backend ~n ~mode:"static"
       ~job_count:(List.length jobs) ~batch_domains)
    (String.concat "," (List.map2 job_json jobs reports))
    (plan_cache_json ())

(* `qturbo sweep --json`, time-dependent mode: (segments, t_tar) jobs
   re-discretizing one driven model. *)
let sweep_td_json ~options ~batch_domains ~backend ~inst ~probe ~td_jobs () =
  let jf = Qturbo_util.Json.float_lit in
  let n = probe.Qturbo_models.Model.n in
  let results =
    List.map
      (fun (segments, t_tar) ->
        ( segments,
          t_tar,
          Qturbo_core.Td_compiler.compile ~options ~aais:inst.Backend.aais
            ~model:probe ~t_tar ~segments () ))
      td_jobs
  in
  let job_json (segments, t_tar, (td : Qturbo_core.Td_compiler.result)) =
    Printf.sprintf
      {|{"segments":%d,"t_tar":%s,"t_sim":%s,"relative_error":%s,"plan_shapes":%d,"plan_builds":%d,"degraded":%b}|}
      segments (jf t_tar)
      (jf td.Qturbo_core.Td_compiler.t_sim)
      (jf td.Qturbo_core.Td_compiler.relative_error)
      td.Qturbo_core.Td_compiler.plan_shapes
      td.Qturbo_core.Td_compiler.plan_builds
      td.Qturbo_core.Td_compiler.degraded
  in
  Printf.sprintf {|{%s,"jobs":[%s],"plan_cache":%s}|}
    (sweep_header ~probe ~backend ~n ~mode:"td"
       ~job_count:(List.length td_jobs) ~batch_domains)
    (String.concat "," (List.map job_json results))
    (plan_cache_json ())

(* ---- daemon request handlers ------------------------------------------ *)

let options_with ~domains ~best_effort ~deadline ~no_plan_cache =
  {
    C.default_options with
    C.domains = (if domains > 0 then domains else C.default_options.C.domains);
    best_effort;
    deadline_seconds = (if deadline > 0.0 then Some deadline else None);
    plan_cache = not no_plan_cache;
  }

let resolve_job (j : Protocol.job) ~ramp =
  let model =
    resolve_model ~hamiltonian:j.Protocol.hamiltonian
      ~model_name:j.Protocol.model ~n:j.Protocol.n ~j:j.Protocol.j
      ~h:j.Protocol.h
  in
  let n = model.Qturbo_models.Model.n in
  let inst =
    resolve_backend ~backend:j.Protocol.backend ~device:j.Protocol.device
      ~cutoff:j.Protocol.cutoff ~ramp
      ~model_name:model.Qturbo_models.Model.name ~n
  in
  (model, inst)

let handle_compile (c : Protocol.compile) ~deadline_cap =
  let j = c.Protocol.job in
  let model, inst = resolve_job j ~ramp:c.Protocol.ramp in
  if Qturbo_models.Model.is_driven model then
    failwith "service compile supports static models only (like --json)";
  let deadline =
    match (c.Protocol.deadline, deadline_cap) with
    | 0.0, cap -> Option.value cap ~default:0.0
    | d, None -> d
    | d, Some cap -> Float.min d cap
  in
  let options =
    options_with ~domains:c.Protocol.domains
      ~best_effort:c.Protocol.best_effort ~deadline
      ~no_plan_cache:c.Protocol.no_plan_cache
  in
  compile_report_json ~options ~inst ~target:(static_target model)
    ~t_tar:j.Protocol.t_tar ~show_pulse:c.Protocol.show_pulse
    ~ramp:c.Protocol.ramp ()

let handle_check (j : Protocol.job) =
  let model, inst = resolve_job j ~ramp:false in
  check_report_json ~inst ~aais:inst.Backend.aais
    ~target:(static_target model) ~t_tar:j.Protocol.t_tar ()

let handle_lint (j : Protocol.job) =
  let model, inst = resolve_job j ~ramp:false in
  lint_report_json ~model_label:model.Qturbo_models.Model.name
    ~backend:j.Protocol.backend ~inst ~target:(static_target model) ()

let handle_sweep (s : Protocol.sweep) =
  let j = s.Protocol.sweep_job in
  let model_of ~j:jc ~h =
    resolve_model ~hamiltonian:j.Protocol.hamiltonian
      ~model_name:j.Protocol.model ~n:j.Protocol.n ~j:jc ~h
  in
  let probe = model_of ~j:0.0 ~h:0.0 in
  let n = probe.Qturbo_models.Model.n in
  let inst =
    resolve_backend ~backend:j.Protocol.backend ~device:j.Protocol.device
      ~cutoff:j.Protocol.cutoff ~ramp:false
      ~model_name:probe.Qturbo_models.Model.name ~n
  in
  let options =
    options_with ~domains:s.Protocol.sweep_domains
      ~best_effort:s.Protocol.sweep_best_effort ~deadline:0.0
      ~no_plan_cache:s.Protocol.sweep_no_plan_cache
  in
  let batch_domains =
    if s.Protocol.batch_domains > 0 then s.Protocol.batch_domains
    else options.C.domains
  in
  let ts = parse_range ~what:"sweep_t" s.Protocol.sweep_t in
  if Qturbo_models.Model.is_driven probe then begin
    let seg_list =
      parse_int_list ~what:"sweep_segments" s.Protocol.sweep_segments
    in
    if seg_list = [] then
      failwith "time-dependent sweeps need sweep_segments, e.g. \"2,4,8\"";
    let td_jobs =
      List.concat_map
        (fun segments -> List.map (fun t -> (segments, t)) ts)
        seg_list
    in
    sweep_td_json ~options ~batch_domains ~backend:j.Protocol.backend ~inst
      ~probe ~td_jobs ()
  end
  else begin
    let js = parse_range ~what:"sweep_j" s.Protocol.sweep_j in
    let hs = parse_range ~what:"sweep_h" s.Protocol.sweep_h in
    let jobs =
      List.concat_map
        (fun jv -> List.concat_map (fun h -> List.map (fun t -> (jv, h, t)) ts) hs)
        js
    in
    if jobs = [] then failwith "sweep: no jobs";
    let target_of ~j:jc ~h = static_target (model_of ~j:jc ~h) in
    sweep_static_json ~options ~batch_domains ~backend:j.Protocol.backend
      ~inst ~probe ~target_of ~jobs ()
  end
