module J = Qturbo_util.Json
module D = Qturbo_analysis.Diagnostic
module Failure_r = Qturbo_resilience.Failure

let src = Logs.Src.create "qturbo.service" ~doc:"qturbo serve daemon"

module Log = (val Logs.src_log src)

type config = {
  socket_path : string;
  max_request_bytes : int;
  deadline_cap : float option;
  max_requests : int option;
}

let default_config ~socket_path =
  {
    socket_path;
    max_request_bytes = 1 lsl 20;
    deadline_cap = None;
    max_requests = None;
  }

(* ---- responses -------------------------------------------------------- *)

(* [extra] fields are pre-rendered JSON (diagnostics, failure records). *)
let error_json ~kind ~message ?(extra = []) () =
  Printf.sprintf {|{"ok":false,"error":{"kind":%s,"message":%s%s}}|}
    (J.quote kind) (J.quote message)
    (String.concat ""
       (List.map (fun (k, v) -> Printf.sprintf ",%s:%s" (J.quote k) v) extra))

let ok_json payload = {|{"ok":true,"result":|} ^ payload ^ "}"

let stats_json ~requests ~started =
  Printf.sprintf
    {|{"requests":%d,"uptime_seconds":%s,"plan_cache":%s,"plan_store":%s}|}
    requests
    (J.float_lit (Qturbo_util.Clock.now () -. started))
    (Ops.plan_cache_json ()) (Ops.plan_store_json ())

(* The same failure taxonomy the CLI maps to exit codes, as typed error
   responses: a request can fail, the daemon does not. *)
let guarded f =
  match f () with
  | payload -> ok_json payload
  | exception (Failure msg | Invalid_argument msg) ->
      error_json ~kind:"user" ~message:msg ()
  | exception D.Rejected ds ->
      error_json ~kind:"rejected"
        ~message:"input rejected by the pre-solve analyzer"
        ~extra:[ ("diagnostics", D.list_to_json ds) ]
        ()
  | exception Failure_r.Failed fs ->
      error_json ~kind:"failed"
        ~message:
          (Printf.sprintf
             "compilation failed: %d classified failure record(s); retry \
              with best_effort for a degraded result"
             (List.length fs))
        ~extra:[ ("failures", Failure_r.list_to_json fs) ]
        ()
  | exception exn ->
      error_json ~kind:"internal" ~message:(Printexc.to_string exn) ()

let handle_request ?deadline_cap ~requests ~started line =
  match Protocol.parse_line line with
  | Error msg -> (error_json ~kind:"parse" ~message:msg (), true)
  | Ok req -> (
      Log.debug (fun m -> m "request: %s" (Protocol.op_name req));
      match req with
      | Protocol.Ping -> (ok_json {|"pong"|}, true)
      | Protocol.Shutdown -> (ok_json {|"shutting down"|}, false)
      | Protocol.Stats -> (ok_json (stats_json ~requests ~started), true)
      | Protocol.Compile c ->
          (guarded (fun () -> Ops.handle_compile c ~deadline_cap), true)
      | Protocol.Check j -> (guarded (fun () -> Ops.handle_check j), true)
      | Protocol.Lint j -> (guarded (fun () -> Ops.handle_lint j), true)
      | Protocol.Sweep s -> (guarded (fun () -> Ops.handle_sweep s), true))

(* ---- socket plumbing -------------------------------------------------- *)

(* A crashed daemon leaves its socket file behind; a live one answers a
   probe connect.  Only the former may be cleaned up and reused. *)
let prepare_path path =
  if Sys.file_exists path then begin
    let probe = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    let alive =
      match Unix.connect probe (Unix.ADDR_UNIX path) with
      | () -> true
      | exception Unix.Unix_error _ -> false
    in
    (try Unix.close probe with Unix.Unix_error _ -> ());
    if alive then
      failwith ("qturbo serve: a daemon is already listening on " ^ path);
    try Sys.remove path with Sys_error _ -> ()
  end

exception Line_too_long

(* One newline-terminated request, bounded: a hostile client cannot
   buffer the daemon into the ground.  None = clean EOF. *)
let read_line_bounded ic ~max_bytes =
  let b = Buffer.create 256 in
  let rec go () =
    match input_char ic with
    | '\n' -> Some (Buffer.contents b)
    | c ->
        if Buffer.length b >= max_bytes then raise Line_too_long;
        Buffer.add_char b c;
        go ()
    | exception End_of_file ->
        if Buffer.length b = 0 then None else Some (Buffer.contents b)
  in
  go ()

let serve config =
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  prepare_path config.socket_path;
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind sock (Unix.ADDR_UNIX config.socket_path);
  Unix.listen sock 16;
  Log.info (fun m -> m "serving on %s" config.socket_path);
  let started = Qturbo_util.Clock.now () in
  let requests = ref 0 in
  let keep_serving = ref true in
  let budget_left () =
    match config.max_requests with None -> true | Some k -> !requests < k
  in
  while !keep_serving && budget_left () do
    match Unix.accept sock with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | fd, _ ->
        let ic = Unix.in_channel_of_descr fd in
        let oc = Unix.out_channel_of_descr fd in
        (try
           (* serve request lines until the client hangs up *)
           let rec connection () =
             if !keep_serving && budget_left () then
               match
                 read_line_bounded ic ~max_bytes:config.max_request_bytes
               with
               | None -> ()
               | Some line ->
                   incr requests;
                   let resp, keep =
                     handle_request ?deadline_cap:config.deadline_cap
                       ~requests:!requests ~started line
                   in
                   output_string oc resp;
                   output_char oc '\n';
                   flush oc;
                   if not keep then keep_serving := false else connection ()
           in
           connection ()
         with
        | Line_too_long ->
            incr requests;
            (try
               output_string oc
                 (error_json ~kind:"parse"
                    ~message:
                      (Printf.sprintf "request exceeds %d bytes"
                         config.max_request_bytes)
                    ());
               output_char oc '\n';
               flush oc
             with Sys_error _ -> ())
        | Sys_error _ | Unix.Unix_error _ -> ());
        (try flush oc with Sys_error _ -> ());
        (try Unix.close fd with Unix.Unix_error _ -> ())
  done;
  (try Unix.close sock with Unix.Unix_error _ -> ());
  try Sys.remove config.socket_path with Sys_error _ -> ()
