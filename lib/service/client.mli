(** Thin client side of the daemon protocol: connect, send one
    newline-terminated request, read one response line.  [qturbo
    client] and the service tests are the callers. *)

val request : socket_path:string -> string -> (string, string) result
(** Send [line] (a JSON request, no trailing newline needed) to the
    daemon at [socket_path]; the response line, or a connection-level
    error message.  Never raises. *)

val response_ok : string -> bool
(** [true] iff the response line strict-parses and carries
    ["ok"]: true. *)
