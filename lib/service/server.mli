(** The [qturbo serve] daemon: a Unix-domain-socket compile service.

    One process holds the warm plan cache, device artifacts and
    (optionally) the persistent plan store, and answers newline-
    delimited strict-JSON requests ({!Protocol}).  Connections are
    served sequentially — determinism and bitwise-reproducibility come
    first; parallelism lives {e inside} a request (worker domains,
    batch fan-out), exactly as in the CLI.

    Failure containment mirrors the CLI's exit-code taxonomy as typed
    error responses: analyzer rejections carry the structured
    diagnostics, supervisor failures carry the classified failure
    records, user errors carry the message, and malformed bytes are a
    parse error — a request can fail, the daemon does not. *)

type config = {
  socket_path : string;
  max_request_bytes : int;
      (** per-request byte bound; longer lines get a parse-error
          response and the connection is dropped (default 1 MiB) *)
  deadline_cap : float option;
      (** upper bound (seconds) applied to every compile request's
          deadline; requests asking for more (or nothing) get this *)
  max_requests : int option;
      (** serve at most this many requests, then exit the loop —
          tests and smoke jobs use it to bound the daemon's life *)
}

val default_config : socket_path:string -> config

val handle_request :
  ?deadline_cap:float -> requests:int -> started:float -> string -> string * bool
(** Handle one request line, returning the response line and whether
    the daemon should keep serving ([false] after [shutdown]).
    Exposed so tests can drive the protocol without a socket;
    [requests]/[started] only feed the [stats] payload. *)

val serve : config -> unit
(** Bind the socket and serve until [shutdown] or [max_requests].
    Removes the socket file on exit.  Raises [Failure] if another
    daemon is already listening on the path (a stale socket file left
    by a crash is cleaned up and reused). *)
