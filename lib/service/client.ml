module J = Qturbo_util.Json

let request ~socket_path line =
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let finally () = try Unix.close sock with Unix.Unix_error _ -> () in
  match
    Fun.protect ~finally (fun () ->
        Unix.connect sock (Unix.ADDR_UNIX socket_path);
        let oc = Unix.out_channel_of_descr sock in
        output_string oc line;
        output_char oc '\n';
        flush oc;
        let ic = Unix.in_channel_of_descr sock in
        input_line ic)
  with
  | resp -> Ok resp
  | exception Unix.Unix_error (e, _, _) ->
      Error
        (Printf.sprintf "cannot reach daemon at %s: %s" socket_path
           (Unix.error_message e))
  | exception End_of_file ->
      Error "daemon closed the connection without responding"
  | exception Sys_error msg -> Error msg

let response_ok line =
  match J.parse line with
  | Ok (J.Object fields) -> (
      match List.assoc_opt "ok" fields with
      | Some (J.Bool b) -> b
      | _ -> false)
  | _ -> false
