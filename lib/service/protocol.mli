(** Wire protocol of the [qturbo serve] daemon.

    Requests are single-line strict-JSON objects with an ["op"] field;
    responses are single-line JSON objects with an ["ok"] field (see
    docs/SERVICE.md for the full request/response catalogue).  The
    parser is strict in both senses: the bytes must be RFC 8259 (the
    hardened [Qturbo_util.Json] parser — bounded nesting, full
    surrogate-pair support), and the object must carry only fields the
    requested op declares, with the right types.  Anything else is a
    per-request error response, never a crash. *)

(** Target selection + device resolution, shared by every compiling
    op; mirrors the CLI flags of the same names (and their
    defaults). *)
type job = {
  model : string option;
  hamiltonian : string option;  (** overrides [model], like [-H] *)
  n : int;  (** default 5 *)
  backend : string;  (** default ["rydberg"] *)
  device : string option;
  cutoff : string option;
  j : float;  (** 0 = model default *)
  h : float;  (** 0 = model default *)
  t_tar : float;  (** default 1.0 *)
}

type compile = {
  job : job;
  domains : int;  (** 0 = process default *)
  best_effort : bool;
  deadline : float;  (** seconds; 0 = request imposes none *)
  show_pulse : bool;
  ramp : bool;
  no_plan_cache : bool;
}

type sweep = {
  sweep_job : job;  (** [j]/[h]/[t_tar] ignored — ranges below rule *)
  sweep_j : string;  (** CLI range syntax: VALUE or LO:HI:COUNT *)
  sweep_h : string;
  sweep_t : string;
  sweep_segments : string;  (** driven models: comma-separated counts *)
  sweep_domains : int;
  batch_domains : int;
  sweep_best_effort : bool;
  sweep_no_plan_cache : bool;
}

type request =
  | Ping
  | Stats
  | Shutdown
  | Compile of compile
  | Check of job
  | Lint of job
  | Sweep of sweep

val op_name : request -> string

val parse : Qturbo_util.Json.value -> (request, string) result
(** Shape-check a parsed value into a request. *)

val parse_line : string -> (request, string) result
(** Strict-parse one line of bytes (bounded nesting) and shape-check
    it.  All failures are [Error] — hostile input cannot raise. *)
