(** Typed failure taxonomy for the solve supervisor.

    Every way a per-component solve (or the pipeline around it) can go
    wrong maps to exactly one class, so callers — the compiler, the
    verifier report, the CLI, CI — reason about failures structurally
    instead of parsing exception messages. *)

type class_ =
  | Non_convergence  (** solver stopped without meeting its tolerance *)
  | Budget_exhausted  (** evaluation budget ran out *)
  | Singular_jacobian  (** LU factorization of the normal equations failed *)
  | Numeric_invalid  (** NaN/Inf cost or residual *)
  | Deadline_expired  (** wall-clock deadline passed *)
  | Position_retry_exhausted
      (** §5.2 position-constraint retry loop hit its hard bound *)

val class_name : class_ -> string
(** Stable kebab-case name, used in text reports, JSON, and the
    [QTURBO_FAULTS] grammar documentation. *)

type t = {
  component : int;
      (** locality component id / segment index; [-1] for pipeline-level
          failures not attributable to one component *)
  site : string;  (** call site: ["local-solve"], ["constraint-loop"], … *)
  stage : string;
      (** escalation-ladder stage (["lm"], ["lm-retry"], ["nelder-mead"],
          ["multistart"]) or [""] outside the ladder *)
  class_ : class_;
  fatal : bool;
      (** [false] when a later stage recovered (or the failure is
          advisory); [true] when the cascade gave up *)
  detail : string;
}

val make :
  component:int ->
  site:string ->
  stage:string ->
  class_:class_ ->
  fatal:bool ->
  string ->
  t

exception Failed of t list
(** Raised by strict (non-best-effort) compiles when at least one
    component failure is fatal.  Carries the full ordered failure list;
    a printer is registered so uncaught instances still read well. *)

val to_string : t -> string
val to_json : t -> string
val list_to_json : t list -> string
val json_escape : string -> string
