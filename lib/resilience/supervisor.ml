open Qturbo_util
open Qturbo_optim

exception Expired

type t = {
  deadline : float option; (* absolute, Clock.now-based *)
  faults : Fault.spec;
  best_effort : bool;
}

let none = { deadline = None; faults = []; best_effort = false }

let make ?deadline_seconds ?faults ?(best_effort = false) () =
  let deadline =
    match deadline_seconds with
    | None -> None
    | Some s -> Some (Clock.now () +. s)
  in
  let faults = match faults with Some f -> f | None -> Fault.of_env () in
  { deadline; faults; best_effort }

let with_best_effort t best_effort = { t with best_effort }
let best_effort t = t.best_effort
let faults t = t.faults
let deadline t = t.deadline

let wall_expired t =
  match t.deadline with None -> false | Some d -> Clock.now () >= d

let site_expired t ~site ~component =
  wall_expired t || Fault.fires t.faults ~site ~component = Some Fault.Deadline

let pool_guard t ~site () =
  if site_expired t ~site ~component:(-1) then raise Expired

(* Nelder–Mead is hopeless well before ~40 dimensions (a shrink step alone
   costs n evaluations); above that the ladder jumps straight from the
   jittered LM restart to multistart. *)
let nm_dim_limit = 40
let multistart_starts = 4

let stage_lm = "lm"
let stage_lm_retry = "lm-retry"
let stage_nm = "nelder-mead"
let stage_multistart = "multistart"

type outcome = {
  report : Objective.report;
  stage : string;
  failures : Failure.t list;
}

let recovered o = o.stage <> "" && o.failures <> []
let failed o = o.stage = ""

(* deterministic per-(site, component) stream for the jittered restart and
   the multistart samples: parallel compiles hash the same keys, so every
   domain count sees identical draws *)
let stream ~site ~component =
  let h = ref 0xcbf29ce4L in
  String.iter
    (fun c ->
      h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) 0x100000001b3L)
    site;
  let seed = Int64.add !h (Int64.of_int ((component + 7) * 0x9e3779b9)) in
  Rng.create ~seed

(* The retry jitter only needs to step off a pathological point (NaN
   residual, singular Jacobian at x0) — it must stay inside the basin the
   original init selected, or recovery lands on a different local minimum
   and "recovered" compiles silently lose accuracy.  Global exploration is
   the multistart stage's job. *)
let jitter ?bounds rng x0 =
  Array.mapi
    (fun i v ->
      let u = Rng.uniform rng ~lo:(-1.0) ~hi:1.0 in
      let w = Rng.uniform rng ~lo:(-1.0) ~hi:1.0 in
      let v' = (v *. (1.0 +. (0.01 *. u))) +. (0.001 *. w) in
      match bounds with
      | Some bs -> Bounds.clamp bs.(i) v'
      | None -> v')
    x0

let classify_report (r : Objective.report) =
  if Float.is_finite r.cost then None
  else
    Some
      (match r.stop with
      | Objective.Stop_deadline -> Failure.Deadline_expired
      | Objective.Stop_max_evaluations -> Failure.Budget_exhausted
      | Objective.Stop_invalid -> Failure.Numeric_invalid
      | Objective.Stop_converged | Objective.Stop_no_progress
      | Objective.Stop_max_iterations ->
          if Float.is_nan r.cost then Failure.Numeric_invalid
          else Failure.Non_convergence)

let classify_exn = function
  | Qturbo_linalg.Lu.Singular _ ->
      (Failure.Singular_jacobian, "singular normal equations")
  | Expired -> (Failure.Deadline_expired, "deadline expired")
  | e -> (Failure.Numeric_invalid, Printexc.to_string e)

(* the residual (and jacobian) a ladder stage actually sees, with this
   stage's injected fault applied.  A [Singular] fault raises from the
   residual, escapes the solver, and is classified by the ladder — the
   same path a genuinely singular factorization from a user-supplied
   Jacobian would take. *)
let faulted t ~stage ~component residual jacobian =
  match Fault.fires t.faults ~site:stage ~component with
  | Some Fault.Nan ->
      let residual x = Array.map (fun _ -> Float.nan) (residual x) in
      (residual, None)
  | Some Fault.Singular ->
      ((fun _ -> raise (Qturbo_linalg.Lu.Singular 0)), None)
  | _ -> (residual, jacobian)

let merge_deadline t (options : Levenberg_marquardt.options) =
  match (t.deadline, options.deadline) with
  | None, d -> { options with deadline = d }
  | (Some _ as d), None -> { options with deadline = d }
  | Some a, Some b -> { options with deadline = Some (Float.min a b) }

(* Stage runners return a report; injected [Singular] faults (and any
   exception out of a user residual/Jacobian) propagate to the ladder. *)

let run_lm_stage t ~stage ~component ~options ~jacobian residual x0 =
  if Fault.fires t.faults ~site:stage ~component = Some Fault.Deadline then
    Objective.failed_report ~x:x0 ~stop:Objective.Stop_deadline
  else begin
    let options = merge_deadline t options in
    let options =
      if Fault.fires t.faults ~site:stage ~component = Some Fault.Budget then
        { options with Levenberg_marquardt.max_evaluations = 0 }
      else options
    in
    let residual, jacobian = faulted t ~stage ~component residual jacobian in
    Levenberg_marquardt.minimize ~options ?jacobian residual x0
  end

let run_nm_stage t ~component ~options residual x0 =
  let stage = stage_nm in
  match Fault.fires t.faults ~site:stage ~component with
  | Some Fault.Deadline ->
      Objective.failed_report ~x:x0 ~stop:Objective.Stop_deadline
  | Some Fault.Budget ->
      Objective.failed_report ~x:x0 ~stop:Objective.Stop_max_evaluations
  | _ ->
      let residual, _ = faulted t ~stage ~component residual None in
      let nm_options =
        {
          Nelder_mead.default_options with
          deadline = (merge_deadline t options).Levenberg_marquardt.deadline;
        }
      in
      let f x = Objective.cost_of_residual (residual x) in
      Nelder_mead.minimize ~options:nm_options f x0

let run_multistart_stage t ~site ~component ~options ~jacobian ~bounds residual
    x0 =
  let stage = stage_multistart in
  if Fault.fires t.faults ~site:stage ~component = Some Fault.Deadline then
    Objective.failed_report ~x:x0 ~stop:Objective.Stop_deadline
  else begin
    let residual, jacobian = faulted t ~stage ~component residual jacobian in
    let options = merge_deadline t options in
    let budget_fault =
      Fault.fires t.faults ~site:stage ~component = Some Fault.Budget
    in
    let options =
      if budget_fault then
        { options with Levenberg_marquardt.max_evaluations = 0 }
      else options
    in
    let rng = stream ~site ~component in
    let sample =
      match bounds with
      | Some bs -> Multistart.sample_box bs ~fallback:10.0
      | None ->
          fun rng ->
            Array.map
              (fun v ->
                let span = 1.0 +. Float.abs v in
                Rng.uniform rng ~lo:(v -. span) ~hi:(v +. span))
              x0
    in
    let solve x0 =
      (Levenberg_marquardt.minimize ~options ?jacobian residual x0, ())
    in
    let accept (r : Objective.report) =
      r.Objective.converged && Float.is_finite r.Objective.cost
    in
    (* domains:1 — the ladder already runs inside a per-component pool
       task; nesting more parallelism buys nothing deterministic *)
    match
      Multistart.search ~domains:1 ~rng ~starts:multistart_starts ~sample
        ~solve ~accept ()
    with
    | Some run, _ -> run.Multistart.report
    | None, _ ->
        let stop =
          if budget_fault then Objective.Stop_max_evaluations
          else Objective.Stop_invalid
        in
        Objective.failed_report ~x:x0 ~stop
  end

let solve t ~site ~component ?(options = Levenberg_marquardt.default_options)
    ?jacobian ?bounds residual x0 =
  let fail ~stage class_ detail =
    Failure.make ~component ~site ~stage ~class_ ~fatal:false detail
  in
  if site_expired t ~site ~component then
    {
      report = Objective.failed_report ~x:x0 ~stop:Objective.Stop_deadline;
      stage = "";
      failures =
        [
          Failure.make ~component ~site ~stage:"" ~fatal:true
            ~class_:Failure.Deadline_expired "expired before solve started";
        ];
    }
  else begin
    let n = Array.length x0 in
    let stages =
      [
        ( stage_lm,
          fun () ->
            run_lm_stage t ~stage:stage_lm ~component ~options ~jacobian
              residual x0 );
        ( stage_lm_retry,
          fun () ->
            let rng = stream ~site ~component in
            let x0' = jitter ?bounds rng x0 in
            run_lm_stage t ~stage:stage_lm_retry ~component ~options ~jacobian
              residual x0' );
      ]
      @ (if n <= nm_dim_limit then
           [
             (stage_nm, fun () -> run_nm_stage t ~component ~options residual x0);
           ]
         else [])
      @ [
          ( stage_multistart,
            fun () ->
              run_multistart_stage t ~site ~component ~options ~jacobian
                ~bounds residual x0 );
        ]
    in
    let mark_last_fatal failures =
      let rec go = function
        | [] -> []
        | [ (last : Failure.t) ] -> [ { last with Failure.fatal = true } ]
        | f :: rest -> f :: go rest
      in
      go failures
    in
    let rec ladder acc best = function
      | [] ->
          (* every stage failed: surface the best (possibly infinite-cost)
             iterate with the final failure marked fatal *)
          let report =
            match best with
            | Some r -> r
            | None ->
                Objective.failed_report ~x:x0 ~stop:Objective.Stop_invalid
          in
          { report; stage = ""; failures = mark_last_fatal (List.rev acc) }
      | (name, run) :: rest ->
          if wall_expired t then
            ladder
              (fail ~stage:name Failure.Deadline_expired
                 "deadline expired before stage"
              :: acc)
              best []
          else begin
            match run () with
            | exception e ->
                let class_, detail = classify_exn e in
                ladder (fail ~stage:name class_ detail :: acc) best rest
            | report -> (
                match classify_report report with
                | None ->
                    (* finite cost: this stage's iterate is the answer.  A
                       deadline-stopped stage still counts — best effort —
                       but the expiry is recorded. *)
                    let acc =
                      if report.Objective.stop = Objective.Stop_deadline then
                        fail ~stage:name Failure.Deadline_expired
                          "stopped at deadline with a usable iterate"
                        :: acc
                      else acc
                    in
                    { report; stage = name; failures = List.rev acc }
                | Some class_ ->
                    let detail =
                      Printf.sprintf "stop=%s cost=%g"
                        (Objective.stop_name report.Objective.stop)
                        report.Objective.cost
                    in
                    let best =
                      match best with
                      | Some (b : Objective.report)
                        when Float.is_finite b.Objective.cost
                             || b.Objective.cost <= report.Objective.cost ->
                          Some b
                      | _ -> Some report
                    in
                    ladder (fail ~stage:name class_ detail :: acc) best rest)
          end
    in
    ladder [] None stages
  end
