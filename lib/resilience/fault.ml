type kind = Nan | Budget | Deadline | Singular | Retry

let kind_name = function
  | Nan -> "nan"
  | Budget -> "budget"
  | Deadline -> "deadline"
  | Singular -> "singular"
  | Retry -> "retry"

let kind_of_string = function
  | "nan" -> Some Nan
  | "budget" -> Some Budget
  | "deadline" -> Some Deadline
  | "singular" -> Some Singular
  | "retry" -> Some Retry
  | _ -> None

type clause = { site : string; comp : int option; kind : kind }
type spec = clause list

let empty = []
let is_empty s = s = []

let clause_to_string c =
  Printf.sprintf "%s%s=%s" c.site
    (match c.comp with None -> "" | Some i -> "#" ^ string_of_int i)
    (kind_name c.kind)

let to_string s = String.concat "," (List.map clause_to_string s)

let known_sites =
  [
    (* escalation-ladder stages *)
    "lm";
    "lm-retry";
    "nelder-mead";
    "multistart";
    (* pipeline call sites *)
    "local-solve";
    "fixed-solve";
    "min-time";
    "constraint-loop";
    "segment-loop";
    "refine";
  ]

let parse_clause s =
  match String.index_opt s '=' with
  | None -> Error (Printf.sprintf "fault clause %S: expected site=kind" s)
  | Some i -> (
      let lhs = String.sub s 0 i in
      let rhs = String.sub s (i + 1) (String.length s - i - 1) in
      let site, comp =
        match String.index_opt lhs '#' with
        | None -> (lhs, Ok None)
        | Some j -> (
            let site = String.sub lhs 0 j in
            let id = String.sub lhs (j + 1) (String.length lhs - j - 1) in
            match int_of_string_opt id with
            | Some c when c >= 0 -> (site, Ok (Some c))
            | _ ->
                ( site,
                  Error
                    (Printf.sprintf
                       "fault clause %S: component filter %S is not a \
                        non-negative integer"
                       s id) ))
      in
      match comp with
      | Error e -> Error e
      | Ok comp -> (
          if site = "" then
            Error (Printf.sprintf "fault clause %S: empty site" s)
          else if site <> "*" && not (List.mem site known_sites) then
            Error
              (Printf.sprintf "fault clause %S: unknown site %S (known: %s, *)"
                 s site
                 (String.concat ", " known_sites))
          else
            match kind_of_string rhs with
            | Some kind -> Ok { site; comp; kind }
            | None ->
                Error
                  (Printf.sprintf
                     "fault clause %S: unknown kind %S (known: nan, budget, \
                      deadline, singular, retry)"
                     s rhs)))

let parse s =
  let s = String.trim s in
  if s = "" then Ok []
  else
    let parts = String.split_on_char ',' s |> List.map String.trim in
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | p :: rest -> (
          match parse_clause p with
          | Ok c -> go (c :: acc) rest
          | Error e -> Error e)
    in
    go [] parts

let parse_exn s =
  match parse s with
  | Ok spec -> spec
  | Error e -> invalid_arg ("QTURBO_FAULTS: " ^ e)

let of_env () =
  match Sys.getenv_opt "QTURBO_FAULTS" with
  | None | Some "" -> []
  | Some s -> parse_exn s

(* Pure in (spec, site, component): no mutable counters, so fault firing
   is identical whatever order (or domain) the call sites run in. *)
let fires spec ~site ~component =
  List.find_map
    (fun c ->
      if
        (c.site = "*" || c.site = site)
        && match c.comp with None -> true | Some id -> id = component
      then Some c.kind
      else None)
    spec
