(** Seeded, deterministic fault injection.

    Driven by the [QTURBO_FAULTS] environment variable (or an explicit
    spec), faults let CI exercise every branch of the escalation ladder
    without contriving pathological Hamiltonians.

    {2 Spec grammar}

    {v QTURBO_FAULTS = clause [ "," clause ]*
clause        = site [ "#" component ] "=" kind
site          = "lm" | "lm-retry" | "nelder-mead" | "multistart"
              | "local-solve" | "fixed-solve" | "min-time"
              | "constraint-loop" | "segment-loop" | "refine" | "*"
kind          = "nan" | "budget" | "deadline" | "singular" | "retry" v}

    Examples: [lm=nan] makes the first ladder stage of every supervised
    solve see an all-NaN residual; [fixed-solve#2=deadline] expires the
    deadline at entry of component 2's runtime-fixed solve;
    [*=deadline] expires it everywhere; [constraint-loop=retry] forces
    the §5.2 position-constraint loop to its hard bound.

    Matching is a pure function of (spec, site, component) — no hidden
    counters — so injected behaviour is bitwise-identical at any
    [QTURBO_DOMAINS]. *)

type kind = Nan | Budget | Deadline | Singular | Retry

val kind_name : kind -> string

type clause = { site : string; comp : int option; kind : kind }
type spec = clause list

val empty : spec
val is_empty : spec -> bool
val known_sites : string list

val parse : string -> (spec, string) result
(** Rejects unknown sites and kinds with a message naming the bad
    clause.  The empty string parses to {!empty}. *)

val parse_exn : string -> spec
(** Raises [Invalid_argument] on a malformed spec. *)

val of_env : unit -> spec
(** Parse [QTURBO_FAULTS]; {!empty} when unset.  Raises
    [Invalid_argument] on a malformed value (a typo'd fault spec must
    never silently disable injection). *)

val fires : spec -> site:string -> component:int -> kind option
(** First clause matching the site (exactly, or via ["*"]) and the
    component (when the clause carries a [#id] filter). *)

val to_string : spec -> string
