type class_ =
  | Non_convergence
  | Budget_exhausted
  | Singular_jacobian
  | Numeric_invalid
  | Deadline_expired
  | Position_retry_exhausted

let class_name = function
  | Non_convergence -> "non-convergence"
  | Budget_exhausted -> "budget-exhausted"
  | Singular_jacobian -> "singular-jacobian"
  | Numeric_invalid -> "numeric-invalid"
  | Deadline_expired -> "deadline-expired"
  | Position_retry_exhausted -> "position-retry-exhausted"

type t = {
  component : int;
  site : string;
  stage : string;
  class_ : class_;
  fatal : bool;
  detail : string;
}

let make ~component ~site ~stage ~class_ ~fatal detail =
  { component; site; stage; class_; fatal; detail }

exception Failed of t list

let to_string f =
  Printf.sprintf "%s at %s%s (component %d%s)%s%s" (class_name f.class_)
    f.site
    (if f.stage = "" then "" else "/" ^ f.stage)
    f.component
    (if f.fatal then ", fatal" else ", recovered")
    (if f.detail = "" then "" else ": ")
    f.detail

(* shared with every hand-rolled emitter; failure records carry no raw
   floats, so [Json.float_lit] is not needed here *)
let json_escape = Qturbo_util.Json.escape

let to_json f =
  Printf.sprintf
    "{\"class\":\"%s\",\"component\":%d,\"site\":\"%s\",\"stage\":\"%s\",\"fatal\":%b,\"detail\":\"%s\"}"
    (class_name f.class_) f.component (json_escape f.site)
    (json_escape f.stage) f.fatal (json_escape f.detail)

let list_to_json fs = "[" ^ String.concat "," (List.map to_json fs) ^ "]"

let () =
  Printexc.register_printer (function
    | Failed fs ->
        Some
          (Printf.sprintf "Qturbo_resilience.Failure.Failed [%s]"
             (String.concat "; " (List.map to_string fs)))
    | _ -> None)
