(** Per-component solve supervisor: deadlines, NaN guards, and a
    deterministic escalation ladder.

    Wraps a nonlinear least-squares solve in up to four stages, run in
    order until one produces a finite-cost iterate:

    + {b lm} — Levenberg–Marquardt from the caller's initial point;
    + {b lm-retry} — LM restarted from a jitter-perturbed initial point,
      with the jitter drawn from a stream seeded by the (site, component)
      pair, so parallel compiles stay bitwise-identical;
    + {b nelder-mead} — derivative-free simplex on the summed-squares
      cost (skipped above 40 dimensions, where a simplex is hopeless);
    + {b multistart} — bounded multistart LM (4 starts, same seeded
      stream; samples inside [bounds] when given, else a box around the
      initial point).

    Escalation happens only on {e hard} failure — non-finite cost,
    deadline expiry, an injected fault, or an exception out of the
    residual/Jacobian.  A merely-unconverged finite iterate is accepted
    as-is, so compiles that never trip a fault are bitwise-identical to
    the unsupervised solver.  Every stage failure is recorded as a typed
    {!Failure.t}; when a later stage succeeds those records are
    non-fatal history, and when every stage fails the last record is
    marked fatal and the best iterate seen is still returned. *)

exception Expired
(** Raised by {!pool_guard} (and usable by callers) to abandon a
    parallel sweep when the deadline passes.  Never escapes {!solve}. *)

type t
(** Supervision context: optional absolute deadline, fault-injection
    spec, best-effort flag.  Immutable and domain-safe. *)

val none : t
(** No deadline, no faults, strict mode.  [solve] under [none] adds two
    spec lookups and a float test over the raw solver — its overhead on
    a full compile is well under a percent. *)

val make :
  ?deadline_seconds:float ->
  ?faults:Fault.spec ->
  ?best_effort:bool ->
  unit ->
  t
(** [deadline_seconds] is relative to now; [faults] defaults to
    {!Fault.of_env} (the [QTURBO_FAULTS] variable). *)

val with_best_effort : t -> bool -> t
val best_effort : t -> bool
val faults : t -> Fault.spec
val deadline : t -> float option

val wall_expired : t -> bool
(** The wall-clock deadline (if any) has passed. *)

val site_expired : t -> site:string -> component:int -> bool
(** {!wall_expired}, or a [deadline] fault fires at this site. *)

val pool_guard : t -> site:string -> unit -> unit
(** Pre-index guard for [Qturbo_par.Pool.parallel_*]: raises {!Expired}
    when {!site_expired} (component [-1], so only unfiltered clauses
    match).  This is how a deadline propagates through the pool: the
    guard stops the job from claiming further ranges and the caller
    catches {!Expired} and degrades. *)

type outcome = {
  report : Qturbo_optim.Objective.report;
      (** the winning stage's report; on total failure, the best iterate
          seen (possibly with infinite cost and the caller's [x0]) *)
  stage : string;
      (** name of the stage that produced [report]; [""] when every
          stage failed *)
  failures : Failure.t list;
      (** one record per failed stage, in execution order; all non-fatal
          when [stage <> ""], last one fatal otherwise *)
}

val recovered : outcome -> bool
(** A stage after the first succeeded — the ladder earned its keep. *)

val failed : outcome -> bool
(** No stage produced a usable iterate. *)

val solve :
  t ->
  site:string ->
  component:int ->
  ?options:Qturbo_optim.Levenberg_marquardt.options ->
  ?jacobian:Qturbo_optim.Objective.jacobian_fn ->
  ?bounds:Qturbo_optim.Bounds.bound array ->
  Qturbo_optim.Objective.residual_fn ->
  float array ->
  outcome
(** Run the ladder.  [site] is the pipeline call site (["local-solve"],
    ["fixed-solve"], …) used for fault matching and failure records;
    [component] the locality component id (or segment index).  [options]
    seeds every LM stage (the context deadline is merged in, taking the
    earlier of the two); [bounds] is used for jitter clamping and
    multistart sampling only — the solve itself is unconstrained, as
    for the raw solvers.  Never raises: faults, NaNs, deadlines and
    residual exceptions all land in [failures]. *)
