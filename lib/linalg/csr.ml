type t = {
  nrows : int;
  ncols : int;
  row_ptr : int array; (* length nrows + 1 *)
  col_idx : int array;
  values : float array;
}

type triplet = { row : int; col : int; value : float }

let of_triplets ~rows ~cols entries =
  List.iter
    (fun { row; col; value = _ } ->
      if row < 0 || row >= rows || col < 0 || col >= cols then
        invalid_arg "Csr.of_triplets: entry out of range")
    entries;
  (* bucket by row, then sort by column and merge duplicates *)
  let buckets = Array.make rows [] in
  List.iter
    (fun { row; col; value } ->
      if value <> 0.0 then buckets.(row) <- (col, value) :: buckets.(row))
    entries;
  let row_ptr = Array.make (rows + 1) 0 in
  let merged =
    Array.map
      (fun entries ->
        let sorted =
          List.sort (fun (c1, _) (c2, _) -> Int.compare c1 c2) entries
        in
        let rec merge = function
          | [] -> []
          | [ e ] -> [ e ]
          | (c1, v1) :: (c2, v2) :: rest when c1 = c2 ->
              merge ((c1, v1 +. v2) :: rest)
          | e :: rest -> e :: merge rest
        in
        List.filter (fun (_, v) -> v <> 0.0) (merge sorted))
      buckets
  in
  let nnz = Array.fold_left (fun acc l -> acc + List.length l) 0 merged in
  let col_idx = Array.make nnz 0 in
  let values = Array.make nnz 0.0 in
  let pos = ref 0 in
  Array.iteri
    (fun i entries ->
      row_ptr.(i) <- !pos;
      List.iter
        (fun (c, v) ->
          col_idx.(!pos) <- c;
          values.(!pos) <- v;
          incr pos)
        entries)
    merged;
  row_ptr.(rows) <- !pos;
  { nrows = rows; ncols = cols; row_ptr; col_idx; values }

let of_row_lists ~cols row_lists =
  let nrows = Array.length row_lists in
  let row_ptr = Array.make (nrows + 1) 0 in
  let nnz = ref 0 in
  Array.iteri
    (fun i cells ->
      row_ptr.(i) <- !nnz;
      List.iter
        (fun (c, _) ->
          if c < 0 || c >= cols then
            invalid_arg "Csr.of_row_lists: column out of range";
          incr nnz)
        cells)
    row_lists;
  row_ptr.(nrows) <- !nnz;
  let col_idx = Array.make !nnz 0 in
  let values = Array.make !nnz 0.0 in
  let pos = ref 0 in
  Array.iter
    (fun cells ->
      List.iter
        (fun (c, v) ->
          col_idx.(!pos) <- c;
          values.(!pos) <- v;
          incr pos)
        cells)
    row_lists;
  { nrows; ncols = cols; row_ptr; col_idx; values }

let rows t = t.nrows
let cols t = t.ncols
let nnz t = Array.length t.values
let row_ptr t = t.row_ptr
let col_idx t = t.col_idx
let values t = t.values

let col_sq_sums t =
  let sums = Array.make t.ncols 0.0 in
  Array.iteri
    (fun k j -> sums.(j) <- sums.(j) +. (t.values.(k) *. t.values.(k)))
    t.col_idx;
  sums

let get t i j =
  if i < 0 || i >= t.nrows || j < 0 || j >= t.ncols then
    invalid_arg "Csr.get: out of bounds";
  let result = ref 0.0 in
  (try
     for k = t.row_ptr.(i) to t.row_ptr.(i + 1) - 1 do
       if t.col_idx.(k) = j then begin
         result := t.values.(k);
         raise Exit
       end
     done
   with Exit -> ());
  !result

let row_entries t i =
  if i < 0 || i >= t.nrows then invalid_arg "Csr.row_entries: out of bounds";
  let acc = ref [] in
  for k = t.row_ptr.(i + 1) - 1 downto t.row_ptr.(i) do
    acc := (t.col_idx.(k), t.values.(k)) :: !acc
  done;
  !acc

let mul_vec t x =
  if Array.length x <> t.ncols then invalid_arg "Csr.mul_vec: dimension mismatch";
  Array.init t.nrows (fun i ->
      let s = ref 0.0 in
      for k = t.row_ptr.(i) to t.row_ptr.(i + 1) - 1 do
        s := !s +. (t.values.(k) *. x.(t.col_idx.(k)))
      done;
      !s)

let mul_vec_t t y =
  if Array.length y <> t.nrows then
    invalid_arg "Csr.mul_vec_t: dimension mismatch";
  let r = Array.make t.ncols 0.0 in
  for i = 0 to t.nrows - 1 do
    let yi = y.(i) in
    if yi <> 0.0 then
      for k = t.row_ptr.(i) to t.row_ptr.(i + 1) - 1 do
        let j = t.col_idx.(k) in
        r.(j) <- r.(j) +. (t.values.(k) *. yi)
      done
  done;
  r

let to_dense t =
  let m = Mat.create ~rows:t.nrows ~cols:t.ncols in
  for i = 0 to t.nrows - 1 do
    for k = t.row_ptr.(i) to t.row_ptr.(i + 1) - 1 do
      Mat.set m i t.col_idx.(k) t.values.(k)
    done
  done;
  m

let of_dense ?(tol = 0.0) m =
  let entries = ref [] in
  for i = 0 to Mat.rows m - 1 do
    for j = 0 to Mat.cols m - 1 do
      let v = Mat.get m i j in
      if Float.abs v > tol then entries := { row = i; col = j; value = v } :: !entries
    done
  done;
  of_triplets ~rows:(Mat.rows m) ~cols:(Mat.cols m) !entries

let norm1 t =
  let col_sums = Array.make t.ncols 0.0 in
  Array.iteri
    (fun k j -> col_sums.(j) <- col_sums.(j) +. Float.abs t.values.(k))
    t.col_idx;
  Array.fold_left Float.max 0.0 col_sums

let transpose t =
  let entries = ref [] in
  for i = 0 to t.nrows - 1 do
    for k = t.row_ptr.(i) to t.row_ptr.(i + 1) - 1 do
      entries := { row = t.col_idx.(k); col = i; value = t.values.(k) } :: !entries
    done
  done;
  of_triplets ~rows:t.ncols ~cols:t.nrows !entries
