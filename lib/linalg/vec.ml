type t = float array

let create n = Array.make n 0.0
let init = Array.init
let of_list = Array.of_list
let copy = Array.copy
let dim = Array.length
let fill v x = Array.fill v 0 (Array.length v) x

let check_dim name a b =
  if Array.length a <> Array.length b then
    invalid_arg (name ^ ": dimension mismatch")

let add a b =
  check_dim "Vec.add" a b;
  Array.init (Array.length a) (fun i -> a.(i) +. b.(i))

let sub a b =
  check_dim "Vec.sub" a b;
  Array.init (Array.length a) (fun i -> a.(i) -. b.(i))

let scale s a = Array.map (fun x -> s *. x) a

let axpy ~alpha ~x ~y =
  check_dim "Vec.axpy" x y;
  for i = 0 to Array.length x - 1 do
    y.(i) <- (alpha *. x.(i)) +. y.(i)
  done

let dot a b =
  check_dim "Vec.dot" a b;
  let s = ref 0.0 in
  for i = 0 to Array.length a - 1 do
    s := !s +. (a.(i) *. b.(i))
  done;
  !s

let norm2 a = sqrt (dot a a)
let norm1 a = Array.fold_left (fun s x -> s +. Float.abs x) 0.0 a
let norm_inf a = Array.fold_left (fun s x -> Float.max s (Float.abs x)) 0.0 a

let max_abs_index a =
  if Array.length a = 0 then invalid_arg "Vec.max_abs_index: empty";
  let best = ref 0 in
  for i = 1 to Array.length a - 1 do
    if Float.abs a.(i) > Float.abs a.(!best) then best := i
  done;
  !best

let map = Array.map

let map2 f a b =
  check_dim "Vec.map2" a b;
  Array.init (Array.length a) (fun i -> f a.(i) b.(i))

let pp ppf v =
  Format.fprintf ppf "[";
  Array.iteri
    (fun i x ->
      if i > 0 then Format.fprintf ppf "; ";
      Format.fprintf ppf "%g" x)
    v;
  Format.fprintf ppf "]"
