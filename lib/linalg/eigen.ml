type t = { eigenvalues : Vec.t; eigenvectors : Mat.t }

let symmetric ?(tol = 1e-12) ?(max_sweeps = 64) a0 =
  let n = Mat.rows a0 in
  if Mat.cols a0 <> n then invalid_arg "Eigen.symmetric: matrix not square";
  (* work on the symmetrised copy *)
  let a = Mat.init ~rows:n ~cols:n (fun i j -> 0.5 *. (Mat.get a0 i j +. Mat.get a0 j i)) in
  let v = Mat.identity n in
  let off_norm () =
    let s = ref 0.0 in
    for i = 0 to n - 1 do
      for j = i + 1 to n - 1 do
        let x = Mat.get a i j in
        s := !s +. (2.0 *. x *. x)
      done
    done;
    sqrt !s
  in
  let scale = Float.max 1e-300 (Mat.frobenius a) in
  let sweeps = ref 0 in
  while off_norm () > tol *. scale && !sweeps < max_sweeps do
    incr sweeps;
    for p = 0 to n - 2 do
      for q = p + 1 to n - 1 do
        let apq = Mat.get a p q in
        if Float.abs apq > 1e-300 then begin
          let app = Mat.get a p p and aqq = Mat.get a q q in
          (* Jacobi rotation annihilating a_pq *)
          let theta = (aqq -. app) /. (2.0 *. apq) in
          let t =
            let sign = if theta >= 0.0 then 1.0 else -1.0 in
            sign /. (Float.abs theta +. sqrt ((theta *. theta) +. 1.0))
          in
          let c = 1.0 /. sqrt ((t *. t) +. 1.0) in
          let s = t *. c in
          (* rows/columns p and q of A *)
          for k = 0 to n - 1 do
            let akp = Mat.get a k p and akq = Mat.get a k q in
            Mat.set a k p ((c *. akp) -. (s *. akq));
            Mat.set a k q ((s *. akp) +. (c *. akq))
          done;
          for k = 0 to n - 1 do
            let apk = Mat.get a p k and aqk = Mat.get a q k in
            Mat.set a p k ((c *. apk) -. (s *. aqk));
            Mat.set a q k ((s *. apk) +. (c *. aqk))
          done;
          (* accumulate the rotation into V *)
          for k = 0 to n - 1 do
            let vkp = Mat.get v k p and vkq = Mat.get v k q in
            Mat.set v k p ((c *. vkp) -. (s *. vkq));
            Mat.set v k q ((s *. vkp) +. (c *. vkq))
          done
        end
      done
    done
  done;
  (* sort ascending by eigenvalue *)
  let order = Array.init n Fun.id in
  Array.sort (fun i j -> Float.compare (Mat.get a i i) (Mat.get a j j)) order;
  let eigenvalues = Array.map (fun i -> Mat.get a i i) order in
  let eigenvectors =
    Mat.init ~rows:n ~cols:n (fun i j -> Mat.get v i order.(j))
  in
  { eigenvalues; eigenvectors }

let reconstruct { eigenvalues; eigenvectors = v } =
  let n = Array.length eigenvalues in
  Mat.init ~rows:n ~cols:n (fun i j ->
      let s = ref 0.0 in
      for k = 0 to n - 1 do
        s := !s +. (Mat.get v i k *. eigenvalues.(k) *. Mat.get v j k)
      done;
      !s)

let apply_function { eigenvalues; eigenvectors } f =
  reconstruct { eigenvalues = Array.map f eigenvalues; eigenvectors }
