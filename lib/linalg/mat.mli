(** Dense row-major matrices. *)

type t
(** A [rows x cols] matrix backed by a single flat float array. *)

val create : rows:int -> cols:int -> t
(** Zero matrix. *)

val init : rows:int -> cols:int -> (int -> int -> float) -> t

val of_rows : float array array -> t
(** Build from an array of equal-length rows.  Raises on ragged input or an
    empty outer array. *)

val identity : int -> t

val rows : t -> int

val cols : t -> int

val get : t -> int -> int -> float

val set : t -> int -> int -> float -> unit

val copy : t -> t

val row : t -> int -> Vec.t
(** Fresh copy of a row. *)

val col : t -> int -> Vec.t

val transpose : t -> t

val mul : t -> t -> t
(** Matrix product.  Raises on inner-dimension mismatch. *)

val at_mul_self : t -> t
(** [at_mul_self a] is [aᵀ a], computed directly from [a]'s rows with
    zero entries skipped — O(rows · nnz_per_row²) for row-sparse
    matrices instead of the O(rows · cols²) dense product, and no
    transpose copy.  Entries accumulate over rows in ascending order,
    so the result is a pure function of [a]. *)

val data : t -> float array
(** The underlying row-major buffer ([rows · cols] floats, entry
    [(i, j)] at [i·cols + j]).  Shared, not a copy — for in-library
    hot loops; mutating it mutates the matrix. *)

val mul_vec : t -> Vec.t -> Vec.t
(** [mul_vec a x] computes [a x]. *)

val mul_vec_t : t -> Vec.t -> Vec.t
(** [mul_vec_t a y] computes [aᵀ y] without materialising the transpose. *)

val add : t -> t -> t

val sub : t -> t -> t

val scale : float -> t -> t

val norm1 : t -> float
(** Induced L1 norm (maximum absolute column sum) — the [‖M‖₁] of the
    paper's Theorem 1 error bound. *)

val norm_inf : t -> float
(** Maximum absolute row sum. *)

val frobenius : t -> float

val equal : ?rtol:float -> ?atol:float -> t -> t -> bool

val pp : Format.formatter -> t -> unit
