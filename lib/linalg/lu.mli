(** LU decomposition with partial pivoting, for square linear systems.

    Used by the Levenberg–Marquardt inner solve (normal equations with a
    damping term) and by small dense subsystems left over after the greedy
    structural pass of {!Sparse_solve}. *)

type factor
(** A factored matrix; solving against multiple right-hand sides reuses
    the factorisation. *)

exception Singular of int
(** Raised when elimination meets a pivot below tolerance; the payload is
    the offending column. *)

val factorize : ?pivot_tol:float -> Mat.t -> factor
(** Factor a square matrix.  Raises [Invalid_argument] if not square and
    {!Singular} if numerically rank-deficient. *)

val factorize_in_place : ?pivot_tol:float -> Mat.t -> factor
(** Like {!factorize} but overwrites the argument with the factors
    instead of copying it — for callers whose matrix is already
    scratch (the LM damping loop re-fills it every attempt). *)

val solve_factored : factor -> Vec.t -> Vec.t
(** Solve [A x = b] given the factorisation of [A]. *)

val solve : ?pivot_tol:float -> Mat.t -> Vec.t -> Vec.t
(** One-shot factor + solve. *)

val det : factor -> float
(** Determinant from the factorisation. *)

val inverse : Mat.t -> Mat.t
(** Dense inverse (column-by-column solve).  Only used in tests. *)
