(** Symmetric eigendecomposition (cyclic Jacobi).

    Needed by the quantum layer: exact evolution under a Hermitian
    Hamiltonian diagonalises its real-symmetric embedding, giving an
    integrator-free reference to validate the RK4 path, and entanglement
    entropies diagonalise reduced density matrices.  Jacobi is slow but
    unconditionally robust and accurate to machine precision — the right
    trade-off for a reference implementation. *)

type t = {
  eigenvalues : Vec.t;  (** ascending *)
  eigenvectors : Mat.t;  (** column [j] pairs with [eigenvalues.(j)] *)
}

val symmetric : ?tol:float -> ?max_sweeps:int -> Mat.t -> t
(** Eigendecomposition of a symmetric matrix.  The input is symmetrised
    as [(A + Aᵀ)/2] first; [tol] bounds the off-diagonal Frobenius mass at
    convergence relative to the matrix norm (default [1e-12]).  Raises
    [Invalid_argument] on non-square input. *)

val reconstruct : t -> Mat.t
(** [V diag(λ) Vᵀ] — for tests. *)

val apply_function : t -> (float -> float) -> Mat.t
(** [f(A) = V diag(f λ) Vᵀ]: matrix functions of symmetric matrices. *)
