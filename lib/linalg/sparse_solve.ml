type row = { cells : (int * float) list; rhs : float }

type stats = {
  greedy_solved : int;
  dense_solved : int;
  free_vars : int;
  dense_rows : int;
}

type result = { x : Vec.t; residual_l1 : float; stats : stats }

let validate ~ncols rows =
  List.iter
    (fun { cells; rhs = _ } ->
      let seen = Hashtbl.create 8 in
      List.iter
        (fun (c, _) ->
          if c < 0 || c >= ncols then
            invalid_arg "Sparse_solve: column out of range";
          if Hashtbl.mem seen c then
            invalid_arg "Sparse_solve: duplicate column in row";
          Hashtbl.add seen c ())
        cells)
    rows

let residual_l1 ~ncols rows x =
  validate ~ncols rows;
  List.fold_left
    (fun acc { cells; rhs } ->
      let lhs =
        List.fold_left (fun s (c, a) -> s +. (a *. x.(c))) 0.0 cells
      in
      acc +. Float.abs (lhs -. rhs))
    0.0 rows

(* Tiny coefficients cannot be used as pivots in the greedy pass: dividing
   by them would blow up rounding errors from earlier substitutions. *)
let pivot_tol = 1e-12

let solve ~ncols rows =
  validate ~ncols rows;
  let rows = Array.of_list rows in
  let nrows = Array.length rows in
  let x = Array.make ncols 0.0 in
  let solved = Array.make ncols false in
  (* live state per row: remaining rhs and count of unsolved unknowns *)
  let rhs = Array.map (fun r -> r.rhs) rows in
  let unsolved = Array.map (fun r -> List.length r.cells) rows in
  let done_row = Array.make nrows false in
  (* column -> rows containing it *)
  let col_rows = Array.make ncols [] in
  Array.iteri
    (fun i r -> List.iter (fun (c, _) -> col_rows.(c) <- i :: col_rows.(c)) r.cells)
    rows;
  let greedy_solved = ref 0 in
  (* worklist of candidate singleton rows *)
  let queue = Queue.create () in
  Array.iteri (fun i n -> if n = 1 then Queue.add i queue) unsolved;
  let remaining_cell i =
    (* the unique unsolved (col, coeff) of row i, if any with usable pivot *)
    let rec find = function
      | [] -> None
      | (c, a) :: rest -> if solved.(c) then find rest else Some (c, a)
    in
    find rows.(i).cells
  in
  let settle_column c value =
    solved.(c) <- true;
    x.(c) <- value;
    List.iter
      (fun j ->
        if not done_row.(j) then begin
          let coeff = List.assoc c rows.(j).cells in
          rhs.(j) <- rhs.(j) -. (coeff *. value);
          unsolved.(j) <- unsolved.(j) - 1;
          if unsolved.(j) = 1 then Queue.add j queue
          else if unsolved.(j) = 0 then done_row.(j) <- true
        end)
      col_rows.(c)
  in
  while not (Queue.is_empty queue) do
    let i = Queue.pop queue in
    if (not done_row.(i)) && unsolved.(i) = 1 then
      match remaining_cell i with
      | None -> done_row.(i) <- true
      | Some (c, a) ->
          if Float.abs a > pivot_tol then begin
            done_row.(i) <- true;
            incr greedy_solved;
            settle_column c (rhs.(i) /. a)
          end
          (* else: leave for the dense fallback *)
  done;
  (* dense fallback over leftover rows/columns *)
  let leftover_rows =
    List.filter (fun i -> not done_row.(i)) (List.init nrows Fun.id)
  in
  let leftover_cols = Hashtbl.create 16 in
  let col_order = ref [] in
  List.iter
    (fun i ->
      List.iter
        (fun (c, _) ->
          if (not solved.(c)) && not (Hashtbl.mem leftover_cols c) then begin
            Hashtbl.add leftover_cols c (Hashtbl.length leftover_cols);
            col_order := c :: !col_order
          end)
        rows.(i).cells)
    leftover_rows;
  let dense_cols = Array.of_list (List.rev !col_order) in
  let dense_rows_n = List.length leftover_rows in
  let dense_solved = Array.length dense_cols in
  if dense_solved > 0 && dense_rows_n > 0 then begin
    let a = Mat.create ~rows:dense_rows_n ~cols:dense_solved in
    let b = Array.make dense_rows_n 0.0 in
    List.iteri
      (fun ri i ->
        b.(ri) <- rhs.(i);
        List.iter
          (fun (c, coeff) ->
            if not solved.(c) then
              Mat.set a ri (Hashtbl.find leftover_cols c) coeff)
          rows.(i).cells)
      leftover_rows;
    let sol = Qr.least_squares a b in
    Array.iteri (fun k c -> x.(c) <- sol.(k); solved.(c) <- true) dense_cols
  end;
  let free_vars = ref 0 in
  Array.iter (fun s -> if not s then incr free_vars) solved;
  let res =
    Array.fold_left
      (fun acc r ->
        let lhs =
          List.fold_left (fun s (c, a) -> s +. (a *. x.(c))) 0.0 r.cells
        in
        acc +. Float.abs (lhs -. r.rhs))
      0.0 rows
  in
  {
    x;
    residual_l1 = res;
    stats =
      {
        greedy_solved = !greedy_solved;
        dense_solved;
        free_vars = !free_vars;
        dense_rows = dense_rows_n;
      };
  }

let dense_only ~ncols rows =
  validate ~ncols rows;
  let rows_a = Array.of_list rows in
  let nrows = Array.length rows_a in
  if nrows = 0 then
    {
      x = Array.make ncols 0.0;
      residual_l1 = 0.0;
      stats =
        { greedy_solved = 0; dense_solved = 0; free_vars = ncols; dense_rows = 0 };
    }
  else begin
    let a = Mat.create ~rows:nrows ~cols:ncols in
    let b = Array.make nrows 0.0 in
    Array.iteri
      (fun i r ->
        b.(i) <- r.rhs;
        List.iter (fun (c, coeff) -> Mat.set a i c coeff) r.cells)
      rows_a;
    let x = Qr.least_squares a b in
    {
      x;
      residual_l1 = residual_l1 ~ncols rows x;
      stats =
        {
          greedy_solved = 0;
          dense_solved = ncols;
          free_vars = 0;
          dense_rows = nrows;
        };
    }
  end
