(** Householder QR factorisation and linear least squares.

    This is the dense engine behind the global linear equation system of
    QTurbo (paper §4.1): the system is usually solved exactly by the greedy
    structural pass, but any leftover coupled block — overdetermined when
    instruction channels are shared (global control), underdetermined when
    the AAIS is redundant — lands here as a minimum-norm least-squares
    problem. *)

type factor

val factorize : Mat.t -> factor
(** Householder QR of an [m x n] matrix with [m >= n] not required; rank
    deficiency is tolerated (detected during the solve). *)

val least_squares : ?rank_tol:float -> Mat.t -> Vec.t -> Vec.t
(** [least_squares a b] minimises [‖a x − b‖₂].  Columns whose pivot falls
    below [rank_tol * max_pivot] are treated as free and assigned zero,
    which yields a (not necessarily minimum-norm) basic solution — exactly
    the behaviour wanted for redundant AAIS channels: unused channels stay
    switched off. *)

val solve_factored : ?rank_tol:float -> factor -> Vec.t -> Vec.t

val residual_norm : Mat.t -> Vec.t -> Vec.t -> float
(** [residual_norm a x b = ‖a x − b‖₂]; convenience for callers reporting
    the [ε₁] of Theorem 1. *)
