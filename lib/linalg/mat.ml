type t = { rows : int; cols : int; data : float array }

let create ~rows ~cols =
  if rows < 0 || cols < 0 then invalid_arg "Mat.create: negative dimension";
  { rows; cols; data = Array.make (rows * cols) 0.0 }

let init ~rows ~cols f =
  let m = create ~rows ~cols in
  for i = 0 to rows - 1 do
    for j = 0 to cols - 1 do
      m.data.((i * cols) + j) <- f i j
    done
  done;
  m

let of_rows rs =
  let nrows = Array.length rs in
  if nrows = 0 then invalid_arg "Mat.of_rows: empty";
  let ncols = Array.length rs.(0) in
  Array.iter
    (fun r ->
      if Array.length r <> ncols then invalid_arg "Mat.of_rows: ragged rows")
    rs;
  init ~rows:nrows ~cols:ncols (fun i j -> rs.(i).(j))

let identity n = init ~rows:n ~cols:n (fun i j -> if i = j then 1.0 else 0.0)
let rows m = m.rows
let cols m = m.cols

let get m i j =
  if i < 0 || i >= m.rows || j < 0 || j >= m.cols then
    invalid_arg "Mat.get: out of bounds";
  m.data.((i * m.cols) + j)

let set m i j x =
  if i < 0 || i >= m.rows || j < 0 || j >= m.cols then
    invalid_arg "Mat.set: out of bounds";
  m.data.((i * m.cols) + j) <- x

let copy m = { m with data = Array.copy m.data }
let row m i = Array.init m.cols (fun j -> m.data.((i * m.cols) + j))
let col m j = Array.init m.rows (fun i -> m.data.((i * m.cols) + j))
let transpose m = init ~rows:m.cols ~cols:m.rows (fun i j -> get m j i)

let mul a b =
  if a.cols <> b.rows then invalid_arg "Mat.mul: dimension mismatch";
  let c = create ~rows:a.rows ~cols:b.cols in
  for i = 0 to a.rows - 1 do
    for k = 0 to a.cols - 1 do
      let aik = a.data.((i * a.cols) + k) in
      if aik <> 0.0 then
        for j = 0 to b.cols - 1 do
          c.data.((i * c.cols) + j) <-
            c.data.((i * c.cols) + j) +. (aik *. b.data.((k * b.cols) + j))
        done
    done
  done;
  c

let data m = m.data

(* AᵀA without materialising the transpose.  Jacobians here are
   row-sparse (a van-der-Waals channel touches 4 coordinates), so each
   row contributes only nnz² products; entries accumulate over rows in
   ascending order, making the result independent of call context. *)
let at_mul_self a =
  let n = a.cols in
  let c = create ~rows:n ~cols:n in
  let cd = c.data and ad = a.data in
  let idx = Array.make n 0 and v = Array.make n 0.0 in
  for r = 0 to a.rows - 1 do
    let base = r * n in
    let nnz = ref 0 in
    for j = 0 to n - 1 do
      let x = Array.unsafe_get ad (base + j) in
      if x <> 0.0 then begin
        Array.unsafe_set idx !nnz j;
        Array.unsafe_set v !nnz x;
        incr nnz
      end
    done;
    for p = 0 to !nnz - 1 do
      let jp = Array.unsafe_get idx p and vp = Array.unsafe_get v p in
      let row = jp * n in
      for q = p to !nnz - 1 do
        let jq = Array.unsafe_get idx q in
        let cell = row + jq in
        Array.unsafe_set cd cell
          (Array.unsafe_get cd cell +. (vp *. Array.unsafe_get v q))
      done
    done
  done;
  (* mirror the strict upper triangle *)
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      cd.((j * n) + i) <- cd.((i * n) + j)
    done
  done;
  c

let mul_vec a x =
  if a.cols <> Array.length x then invalid_arg "Mat.mul_vec: dimension mismatch";
  Array.init a.rows (fun i ->
      let s = ref 0.0 in
      for j = 0 to a.cols - 1 do
        s := !s +. (a.data.((i * a.cols) + j) *. x.(j))
      done;
      !s)

let mul_vec_t a y =
  if a.rows <> Array.length y then
    invalid_arg "Mat.mul_vec_t: dimension mismatch";
  let r = Array.make a.cols 0.0 in
  for i = 0 to a.rows - 1 do
    let yi = y.(i) in
    if yi <> 0.0 then
      for j = 0 to a.cols - 1 do
        r.(j) <- r.(j) +. (a.data.((i * a.cols) + j) *. yi)
      done
  done;
  r

let elementwise name f a b =
  if a.rows <> b.rows || a.cols <> b.cols then
    invalid_arg (name ^ ": dimension mismatch");
  { a with data = Array.init (Array.length a.data) (fun i -> f a.data.(i) b.data.(i)) }

let add a b = elementwise "Mat.add" ( +. ) a b
let sub a b = elementwise "Mat.sub" ( -. ) a b
let scale s a = { a with data = Array.map (fun x -> s *. x) a.data }

let norm1 m =
  let best = ref 0.0 in
  for j = 0 to m.cols - 1 do
    let s = ref 0.0 in
    for i = 0 to m.rows - 1 do
      s := !s +. Float.abs m.data.((i * m.cols) + j)
    done;
    best := Float.max !best !s
  done;
  !best

let norm_inf m =
  let best = ref 0.0 in
  for i = 0 to m.rows - 1 do
    let s = ref 0.0 in
    for j = 0 to m.cols - 1 do
      s := !s +. Float.abs m.data.((i * m.cols) + j)
    done;
    best := Float.max !best !s
  done;
  !best

let frobenius m =
  sqrt (Array.fold_left (fun s x -> s +. (x *. x)) 0.0 m.data)

let equal ?rtol ?atol a b =
  a.rows = b.rows && a.cols = b.cols
  && Qturbo_util.Float_cmp.approx_array ?rtol ?atol a.data b.data

let pp ppf m =
  for i = 0 to m.rows - 1 do
    Format.fprintf ppf "[";
    for j = 0 to m.cols - 1 do
      if j > 0 then Format.fprintf ppf " ";
      Format.fprintf ppf "%10.5g" (get m i j)
    done;
    Format.fprintf ppf "]@."
  done
