(** Dense float vectors.

    Thin, allocation-explicit wrappers around [float array]; all operations
    check dimensions.  Vectors are the currency between the equation-system
    builders and the solvers. *)

type t = float array

val create : int -> t
(** Zero vector of the given length. *)

val init : int -> (int -> float) -> t

val of_list : float list -> t

val copy : t -> t

val dim : t -> int

val fill : t -> float -> unit

val add : t -> t -> t
(** Elementwise sum.  Raises [Invalid_argument] on dimension mismatch. *)

val sub : t -> t -> t

val scale : float -> t -> t

val axpy : alpha:float -> x:t -> y:t -> unit
(** [axpy ~alpha ~x ~y] performs [y <- alpha * x + y] in place. *)

val dot : t -> t -> float

val norm2 : t -> float
(** Euclidean norm. *)

val norm1 : t -> float
(** L1 norm — the paper's accuracy metric (Eq. 9) is expressed in it. *)

val norm_inf : t -> float

val max_abs_index : t -> int
(** Index of the entry with largest magnitude.  Raises on empty. *)

val map : (float -> float) -> t -> t

val map2 : (float -> float -> float) -> t -> t -> t

val pp : Format.formatter -> t -> unit
