(** Compressed sparse row matrices.

    The global linear system of the compiler has O(N²) rows for an N-atom
    Rydberg device but only a handful of nonzeros per row; CSR keeps its
    assembly and matrix–vector products linear in the number of nonzeros. *)

type t

type triplet = { row : int; col : int; value : float }

val of_triplets : rows:int -> cols:int -> triplet list -> t
(** Build from coordinate entries; duplicate [(row, col)] entries are
    summed.  Entries out of range raise [Invalid_argument]. *)

val rows : t -> int

val cols : t -> int

val nnz : t -> int
(** Stored entries (explicit zeros created by cancellation are dropped). *)

val get : t -> int -> int -> float
(** Zero for non-stored entries; O(row nnz). *)

val row_entries : t -> int -> (int * float) list
(** Nonzeros of a row as [(col, value)] pairs, ascending columns. *)

val mul_vec : t -> Vec.t -> Vec.t

val mul_vec_t : t -> Vec.t -> Vec.t

val to_dense : t -> Mat.t

val of_dense : ?tol:float -> Mat.t -> t
(** Entries with [|x| <= tol] are dropped (default [0.]: keep all
    nonzeros). *)

val norm1 : t -> float
(** Induced L1 norm (max absolute column sum), matching {!Mat.norm1}. *)

val transpose : t -> t
