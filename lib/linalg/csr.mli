(** Compressed sparse row matrices.

    The global linear system of the compiler has O(N²) rows for an N-atom
    Rydberg device but only a handful of nonzeros per row; CSR keeps its
    assembly and matrix–vector products linear in the number of nonzeros. *)

type t

type triplet = { row : int; col : int; value : float }

val of_triplets : rows:int -> cols:int -> triplet list -> t
(** Build from coordinate entries; duplicate [(row, col)] entries are
    summed.  Entries out of range raise [Invalid_argument]. *)

val of_row_lists : cols:int -> (int * float) list array -> t
(** Pack per-row [(col, value)] lists {e verbatim}: entry order within a
    row is preserved, duplicates are kept, explicit zeros are stored.
    [row_entries] on the result returns exactly the input lists — the
    lossless bridge from the historical list-of-cells representation.
    Out-of-range columns raise [Invalid_argument]. *)

val rows : t -> int

val cols : t -> int

val nnz : t -> int
(** Stored entries (explicit zeros created by cancellation are dropped). *)

val row_ptr : t -> int array
(** The live row-pointer array (length [rows + 1]); do not mutate. *)

val col_idx : t -> int array
(** The live column-index array (length [nnz]); do not mutate. *)

val values : t -> float array
(** The {e live} value array (length [nnz], parallel to [col_idx]).
    Callers owning the matrix may refill it in place — the sparse
    Jacobian slots of [Fixed_solver] rewrite it every iteration without
    reallocating the structure. *)

val col_sq_sums : t -> float array
(** Per-column sum of squared stored values — the diagonal of [AᵀA],
    computed in row-major stored order (deterministic summation). *)

val get : t -> int -> int -> float
(** Zero for non-stored entries; O(row nnz). *)

val row_entries : t -> int -> (int * float) list
(** Nonzeros of a row as [(col, value)] pairs, ascending columns. *)

val mul_vec : t -> Vec.t -> Vec.t

val mul_vec_t : t -> Vec.t -> Vec.t

val to_dense : t -> Mat.t

val of_dense : ?tol:float -> Mat.t -> t
(** Entries with [|x| <= tol] are dropped (default [0.]: keep all
    nonzeros). *)

val norm1 : t -> float
(** Induced L1 norm (max absolute column sum), matching {!Mat.norm1}. *)

val transpose : t -> t
