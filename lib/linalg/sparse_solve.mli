(** Sparse linear-system solver for the global linear equation system.

    QTurbo's global system (paper §4.1, Eq. 5) is structurally almost
    triangular: van-der-Waals rows pin their synthesized variable directly,
    detuning rows then become singletons, and Rabi rows are singletons from
    the start.  The solver exploits this with a greedy substitution pass —
    repeatedly solving any row with exactly one unsolved unknown — and only
    falls back to a dense least-squares factorisation for whatever coupled
    block remains (e.g. shared channels under global control).

    The system may be inconsistent (the AAIS cannot realise the target
    exactly; the van-der-Waals tail is the canonical example) and the
    returned [residual_l1] is then the [ε₁] of the paper's Theorem 1. *)

type row = { cells : (int * float) list; rhs : float }
(** One equation [Σ coeff·x_col = rhs]; columns within a row must be
    distinct. *)

type stats = {
  greedy_solved : int;  (** unknowns fixed by the substitution pass *)
  dense_solved : int;  (** unknowns fixed by the dense fallback *)
  free_vars : int;  (** unknowns in no equation, set to zero *)
  dense_rows : int;  (** rows given to the dense fallback *)
}

type result = {
  x : Vec.t;
  residual_l1 : float;  (** [‖A x − b‖₁] over all rows *)
  stats : stats;
}

val solve : ncols:int -> row list -> result
(** Solve the system.  Never raises on rank deficiency or inconsistency;
    the residual reports the quality.  Raises [Invalid_argument] on
    out-of-range columns or duplicate columns within one row. *)

val residual_l1 : ncols:int -> row list -> Vec.t -> float
(** Recompute [‖A x − b‖₁] for an arbitrary candidate (used by the
    refinement stage after the runtime-fixed variables moved). *)

val dense_only : ncols:int -> row list -> result
(** Reference implementation that skips the greedy pass and solves the
    whole system densely (QR least squares).  Used by tests and by the
    [ablation/linear-solver] bench. *)
