type factor = {
  lu : Mat.t; (* combined L (unit lower) and U factors *)
  perm : int array; (* row permutation *)
  sign : float; (* permutation parity, for det *)
}

exception Singular of int

(* hot loops run on the raw row-major buffer: a bounds check and two
   index multiplications per element triple the cost of elimination on
   the ~200-variable systems the LM inner solve produces *)
let factorize_in_place ?(pivot_tol = 1e-13) lu =
  let n = Mat.rows lu in
  if Mat.cols lu <> n then invalid_arg "Lu.factorize: matrix not square";
  let d = Mat.data lu in
  let perm = Array.init n (fun i -> i) in
  let sign = ref 1.0 in
  for k = 0 to n - 1 do
    (* partial pivot: largest |entry| in column k at or below the diagonal *)
    let piv = ref k in
    let best = ref (Float.abs (Array.unsafe_get d ((k * n) + k))) in
    for i = k + 1 to n - 1 do
      let x = Float.abs (Array.unsafe_get d ((i * n) + k)) in
      if x > !best then begin
        piv := i;
        best := x
      end
    done;
    if !best <= pivot_tol then raise (Singular k);
    if !piv <> k then begin
      let rk = k * n and rp = !piv * n in
      for j = 0 to n - 1 do
        let tmp = Array.unsafe_get d (rk + j) in
        Array.unsafe_set d (rk + j) (Array.unsafe_get d (rp + j));
        Array.unsafe_set d (rp + j) tmp
      done;
      let tmp = perm.(k) in
      perm.(k) <- perm.(!piv);
      perm.(!piv) <- tmp;
      sign := -. !sign
    end;
    let rk = k * n in
    let pivot = Array.unsafe_get d (rk + k) in
    for i = k + 1 to n - 1 do
      let ri = i * n in
      let factor = Array.unsafe_get d (ri + k) /. pivot in
      Array.unsafe_set d (ri + k) factor;
      if factor <> 0.0 then
        for j = k + 1 to n - 1 do
          Array.unsafe_set d (ri + j)
            (Array.unsafe_get d (ri + j)
            -. (factor *. Array.unsafe_get d (rk + j)))
        done
    done
  done;
  { lu; perm; sign = !sign }

let factorize ?pivot_tol a = factorize_in_place ?pivot_tol (Mat.copy a)

let solve_factored { lu; perm; sign = _ } b =
  let n = Mat.rows lu in
  if Array.length b <> n then invalid_arg "Lu.solve_factored: dimension mismatch";
  let d = Mat.data lu in
  let x = Array.init n (fun i -> b.(perm.(i))) in
  (* forward substitution with unit lower factor *)
  for i = 1 to n - 1 do
    let ri = i * n in
    let s = ref x.(i) in
    for j = 0 to i - 1 do
      s := !s -. (Array.unsafe_get d (ri + j) *. Array.unsafe_get x j)
    done;
    x.(i) <- !s
  done;
  (* back substitution with upper factor *)
  for i = n - 1 downto 0 do
    let ri = i * n in
    let s = ref x.(i) in
    for j = i + 1 to n - 1 do
      s := !s -. (Array.unsafe_get d (ri + j) *. Array.unsafe_get x j)
    done;
    x.(i) <- !s /. Array.unsafe_get d (ri + i)
  done;
  x

let solve ?pivot_tol a b = solve_factored (factorize ?pivot_tol a) b

let det f =
  let n = Mat.rows f.lu in
  let d = ref f.sign in
  for i = 0 to n - 1 do
    d := !d *. Mat.get f.lu i i
  done;
  !d

let inverse a =
  let n = Mat.rows a in
  let f = factorize a in
  let inv = Mat.create ~rows:n ~cols:n in
  for j = 0 to n - 1 do
    let e = Array.init n (fun i -> if i = j then 1.0 else 0.0) in
    let x = solve_factored f e in
    for i = 0 to n - 1 do
      Mat.set inv i j x.(i)
    done
  done;
  inv
