type factor = {
  lu : Mat.t; (* combined L (unit lower) and U factors *)
  perm : int array; (* row permutation *)
  sign : float; (* permutation parity, for det *)
}

exception Singular of int

let factorize ?(pivot_tol = 1e-13) a =
  let n = Mat.rows a in
  if Mat.cols a <> n then invalid_arg "Lu.factorize: matrix not square";
  let lu = Mat.copy a in
  let perm = Array.init n (fun i -> i) in
  let sign = ref 1.0 in
  for k = 0 to n - 1 do
    (* partial pivot: largest |entry| in column k at or below the diagonal *)
    let piv = ref k in
    for i = k + 1 to n - 1 do
      if Float.abs (Mat.get lu i k) > Float.abs (Mat.get lu !piv k) then piv := i
    done;
    if Float.abs (Mat.get lu !piv k) <= pivot_tol then raise (Singular k);
    if !piv <> k then begin
      for j = 0 to n - 1 do
        let tmp = Mat.get lu k j in
        Mat.set lu k j (Mat.get lu !piv j);
        Mat.set lu !piv j tmp
      done;
      let tmp = perm.(k) in
      perm.(k) <- perm.(!piv);
      perm.(!piv) <- tmp;
      sign := -. !sign
    end;
    let pivot = Mat.get lu k k in
    for i = k + 1 to n - 1 do
      let factor = Mat.get lu i k /. pivot in
      Mat.set lu i k factor;
      if factor <> 0.0 then
        for j = k + 1 to n - 1 do
          Mat.set lu i j (Mat.get lu i j -. (factor *. Mat.get lu k j))
        done
    done
  done;
  { lu; perm; sign = !sign }

let solve_factored { lu; perm; sign = _ } b =
  let n = Mat.rows lu in
  if Array.length b <> n then invalid_arg "Lu.solve_factored: dimension mismatch";
  let x = Array.init n (fun i -> b.(perm.(i))) in
  (* forward substitution with unit lower factor *)
  for i = 1 to n - 1 do
    let s = ref x.(i) in
    for j = 0 to i - 1 do
      s := !s -. (Mat.get lu i j *. x.(j))
    done;
    x.(i) <- !s
  done;
  (* back substitution with upper factor *)
  for i = n - 1 downto 0 do
    let s = ref x.(i) in
    for j = i + 1 to n - 1 do
      s := !s -. (Mat.get lu i j *. x.(j))
    done;
    x.(i) <- !s /. Mat.get lu i i
  done;
  x

let solve ?pivot_tol a b = solve_factored (factorize ?pivot_tol a) b

let det f =
  let n = Mat.rows f.lu in
  let d = ref f.sign in
  for i = 0 to n - 1 do
    d := !d *. Mat.get f.lu i i
  done;
  !d

let inverse a =
  let n = Mat.rows a in
  let f = factorize a in
  let inv = Mat.create ~rows:n ~cols:n in
  for j = 0 to n - 1 do
    let e = Array.init n (fun i -> if i = j then 1.0 else 0.0) in
    let x = solve_factored f e in
    for i = 0 to n - 1 do
      Mat.set inv i j x.(i)
    done
  done;
  inv
