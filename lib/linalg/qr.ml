(* Householder QR with column pivoting.  We store the reflectors in the
   lower trapezoid of [r] and the scalar taus separately; [perm] records the
   column pivoting so rank-deficient systems solve the well-conditioned
   leading block and zero the rest. *)

type factor = {
  r : Mat.t; (* upper triangle = R; lower part = Householder vectors *)
  taus : float array;
  perm : int array; (* column permutation *)
  m : int;
  n : int;
}

let factorize a0 =
  let a = Mat.copy a0 in
  let m = Mat.rows a and n = Mat.cols a in
  let kmax = Int.min m n in
  let taus = Array.make kmax 0.0 in
  let perm = Array.init n (fun j -> j) in
  let col_norm2 j k =
    (* squared norm of column j from row k downward *)
    let s = ref 0.0 in
    for i = k to m - 1 do
      let x = Mat.get a i j in
      s := !s +. (x *. x)
    done;
    !s
  in
  for k = 0 to kmax - 1 do
    (* column pivot: bring the column with largest remaining norm to k *)
    let best = ref k and best_norm = ref (col_norm2 k k) in
    for j = k + 1 to n - 1 do
      let nj = col_norm2 j k in
      if nj > !best_norm then begin
        best := j;
        best_norm := nj
      end
    done;
    if !best <> k then begin
      for i = 0 to m - 1 do
        let tmp = Mat.get a i k in
        Mat.set a i k (Mat.get a i !best);
        Mat.set a i !best tmp
      done;
      let tmp = perm.(k) in
      perm.(k) <- perm.(!best);
      perm.(!best) <- tmp
    end;
    (* Householder reflector annihilating below-diagonal entries of col k *)
    let normx = sqrt (col_norm2 k k) in
    if normx = 0.0 then taus.(k) <- 0.0
    else begin
      let akk = Mat.get a k k in
      let alpha = if akk >= 0.0 then -.normx else normx in
      let v0 = akk -. alpha in
      (* v = (v0, a_{k+1,k}, ..., a_{m-1,k}); tau = 2 / (v.v) *)
      let vnorm2 = ref (v0 *. v0) in
      for i = k + 1 to m - 1 do
        let x = Mat.get a i k in
        vnorm2 := !vnorm2 +. (x *. x)
      done;
      if !vnorm2 = 0.0 then taus.(k) <- 0.0
      else begin
        let tau = 2.0 /. !vnorm2 in
        taus.(k) <- tau;
        (* apply reflector to remaining columns *)
        for j = k + 1 to n - 1 do
          let s = ref (v0 *. Mat.get a k j) in
          for i = k + 1 to m - 1 do
            s := !s +. (Mat.get a i k *. Mat.get a i j)
          done;
          let s = tau *. !s in
          Mat.set a k j (Mat.get a k j -. (s *. v0));
          for i = k + 1 to m - 1 do
            Mat.set a i j (Mat.get a i j -. (s *. Mat.get a i k))
          done
        done;
        (* store: diagonal gets alpha (the R entry); below stays = v *)
        Mat.set a k k alpha;
        (* normalise stored vector so v0 is implicit: keep raw v entries and
           remember v0 via tau trick — instead store v0 in a side channel.
           We re-derive v0 when applying Q^T in the solve by recomputing it
           from alpha is not possible, so store v entries scaled by v0. *)
        if v0 <> 0.0 then begin
          for i = k + 1 to m - 1 do
            Mat.set a i k (Mat.get a i k /. v0)
          done;
          (* effective tau for normalised v (v0 = 1): tau' = tau * v0^2 *)
          taus.(k) <- tau *. v0 *. v0
        end
      end
    end
  done;
  { r = a; taus; perm; m; n }

let apply_qt f b =
  (* y = Q^T b, using normalised reflectors (v0 = 1) stored below diag *)
  let { r; taus; m; n; _ } = f in
  let y = Array.copy b in
  let kmax = Int.min m n in
  for k = 0 to kmax - 1 do
    let tau = taus.(k) in
    if tau <> 0.0 then begin
      let s = ref y.(k) in
      for i = k + 1 to m - 1 do
        s := !s +. (Mat.get r i k *. y.(i))
      done;
      let s = tau *. !s in
      y.(k) <- y.(k) -. s;
      for i = k + 1 to m - 1 do
        y.(i) <- y.(i) -. (s *. Mat.get r i k)
      done
    end
  done;
  y

let solve_factored ?(rank_tol = 1e-12) f b =
  let { r; perm; m; n; _ } = f in
  if Array.length b <> m then invalid_arg "Qr.solve_factored: dimension mismatch";
  let y = apply_qt f b in
  let kmax = Int.min m n in
  (* determine numerical rank from the pivoted diagonal *)
  let max_piv = ref 0.0 in
  for k = 0 to kmax - 1 do
    max_piv := Float.max !max_piv (Float.abs (Mat.get r k k))
  done;
  let rank = ref 0 in
  (try
     for k = 0 to kmax - 1 do
       if Float.abs (Mat.get r k k) <= rank_tol *. !max_piv then raise Exit;
       incr rank
     done
   with Exit -> ());
  let x_permuted = Array.make n 0.0 in
  for i = !rank - 1 downto 0 do
    let s = ref y.(i) in
    for j = i + 1 to !rank - 1 do
      s := !s -. (Mat.get r i j *. x_permuted.(j))
    done;
    x_permuted.(i) <- !s /. Mat.get r i i
  done;
  (* undo column permutation *)
  let x = Array.make n 0.0 in
  for j = 0 to n - 1 do
    x.(perm.(j)) <- x_permuted.(j)
  done;
  x

let least_squares ?rank_tol a b = solve_factored ?rank_tol (factorize a) b

let residual_norm a x b = Vec.norm2 (Vec.sub (Mat.mul_vec a x) b)
