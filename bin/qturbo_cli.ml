(* qturbo: command-line front end to the compiler.

   Examples:
     qturbo compile --model ising-chain -n 5
     qturbo compile --model ising-cycle -n 12 --device aquila-fig6a \
       --j 0.157 --h 0.785 --t-tar 1.0 --show-pulse
     qturbo compile --model heis-chain -n 8 --backend heisenberg
     qturbo compile --model mis-chain -n 5 --segments 4
     qturbo compile --model ising-chain -n 8 --baseline
     qturbo compile --model ising-chain -n 5 --best-effort --deadline 30
     qturbo check --model ising-cycle -n 5 --backend heisenberg
     qturbo check --hamiltonian '-1.0*Z0 Z1' --json
     qturbo models
     qturbo devices *)

open Cmdliner
open Qturbo_aais
module Backend = Qturbo_backend.Backend

(* [run] compiles against the raw preset (no scaling-study window
   widening, no model-driven geometry switch) — it keeps its own preset
   table; every other command resolves devices through the backend
   registry. *)
let run_device_presets =
  [
    ("aquila-paper", Device.aquila_paper);
    ("aquila", Device.aquila);
    ("aquila-fig6a", Device.aquila_fig6a);
    ("aquila-fig6b", Device.aquila_fig6b);
  ]

(* Model/backend resolution, range parsing, and the machine-readable
   payload builders live in {!Qturbo_service.Ops}, shared with the
   [qturbo serve] daemon — a CLI --json invocation and a daemon request
   are byte-identical for the same job. *)
module Ops = Qturbo_service.Ops

let build_model = Ops.build_model
let resolve_model = Ops.resolve_model
let resolve_backend = Ops.resolve_backend

(* ---- persistent plan store -------------------------------------------- *)

(* --plan-store DIR (or the QTURBO_PLAN_STORE environment variable)
   enables the on-disk plan store for this invocation; --no-plan-store
   wins over the environment. *)
let setup_plan_store ~plan_store ~no_plan_store =
  if no_plan_store then Qturbo_core.Compile_plan.disable_store ()
  else
    let dir =
      match plan_store with
      | Some _ -> plan_store
      | None -> (
          match Sys.getenv_opt "QTURBO_PLAN_STORE" with
          | Some "" | None -> None
          | dir -> dir)
    in
    Option.iter (fun dir -> Qturbo_core.Compile_plan.enable_store ~dir) dir

let plan_store_arg =
  Cmdliner.Arg.(
    value
    & opt (some string) None
    & info [ "plan-store" ] ~docv:"DIR"
        ~doc:
          "Persist coefficient-free compile plans under $(docv) and reuse \
           them across processes: a cold invocation whose structural key is \
           already stored skips the whole front end.  Entries are keyed by \
           the exact structural key plus a store-format/binary version; any \
           mismatch or corruption falls back to a counted rebuild.  Results \
           are bitwise-identical with the store on or off.  The \
           $(b,QTURBO_PLAN_STORE) environment variable sets a default \
           directory.")

let no_plan_store_flag =
  Cmdliner.Arg.(
    value & flag
    & info [ "no-plan-store" ]
        ~doc:
          "Ignore $(b,QTURBO_PLAN_STORE) and run without the on-disk plan \
           store.")

(* ---- compile ---- *)

let print_store_summary () =
  match Qturbo_core.Compile_plan.store_stats () with
  | None -> ()
  | Some s ->
      Printf.printf
        "store: %d hit(s) / %d miss(es) / %d corrupt / %d version \
         mismatch(es); %d write(s)%s (%s)\n"
        s.Qturbo_store.Plan_store.hits s.Qturbo_store.Plan_store.misses
        s.Qturbo_store.Plan_store.corrupt
        s.Qturbo_store.Plan_store.version_mismatch
        s.Qturbo_store.Plan_store.writes
        (if s.Qturbo_store.Plan_store.write_errors > 0 then
           Printf.sprintf " / %d write error(s)"
             s.Qturbo_store.Plan_store.write_errors
         else "")
        (Option.value (Qturbo_core.Compile_plan.store_dir ()) ~default:"?")

let print_compile_result ~(instance : Backend.instance) ~show_pulse ~ramp
    (r : Qturbo_core.Compiler.result) =
  Printf.printf "compiled in %.2f ms\n" (1000.0 *. r.Qturbo_core.Compiler.compile_seconds);
  Printf.printf "evolution time: %.6f us\n" r.Qturbo_core.Compiler.t_sim;
  Printf.printf "error (L1):     %.6g\n" r.Qturbo_core.Compiler.error_l1;
  Printf.printf "relative error: %.4f %%\n" r.Qturbo_core.Compiler.relative_error;
  Printf.printf "theorem-1 bound %.6g (eps1 %.3g, sum eps2 %.3g)\n"
    r.Qturbo_core.Compiler.theorem1_bound r.Qturbo_core.Compiler.eps1
    r.Qturbo_core.Compiler.eps2_total;
  List.iter (Printf.printf "warning: %s\n") r.Qturbo_core.Compiler.warnings;
  List.iter
    (fun f ->
      Printf.printf "failure: %s\n" (Qturbo_resilience.Failure.to_string f))
    r.Qturbo_core.Compiler.failures;
  if r.Qturbo_core.Compiler.degraded then
    print_endline
      "DEGRADED: best-effort result; some component kept a non-converged \
       solution (see failure records above)";
  let p = r.Qturbo_core.Compiler.plan in
  if p.Qturbo_core.Compiler.cache_enabled then
    Printf.printf
      "plan: %s (cache %d hit(s) / %d miss(es)%s; this key %d/%d; build %.2f \
       ms, solve %.2f ms)\n"
      (if p.Qturbo_core.Compiler.cache_hit then "cached"
       else if p.Qturbo_core.Compiler.store_hit then "stored"
       else "built")
      p.Qturbo_core.Compiler.cache_hits p.Qturbo_core.Compiler.cache_misses
      (if p.Qturbo_core.Compiler.cache_discarded > 0 then
         Printf.sprintf " / %d discarded"
           p.Qturbo_core.Compiler.cache_discarded
       else "")
      p.Qturbo_core.Compiler.key_hits p.Qturbo_core.Compiler.key_misses
      (1000.0 *. p.Qturbo_core.Compiler.build_seconds)
      (1000.0 *. p.Qturbo_core.Compiler.solve_seconds)
  else
    Printf.printf "plan: built, cache disabled (build %.2f ms, solve %.2f ms)\n"
      (1000.0 *. p.Qturbo_core.Compiler.build_seconds)
      (1000.0 *. p.Qturbo_core.Compiler.solve_seconds);
  print_store_summary ();
  if show_pulse then begin
    let pulse =
      instance.Backend.extract ~env:r.Qturbo_core.Compiler.env
        ~t_sim:r.Qturbo_core.Compiler.t_sim
    in
    let pulse = if ramp then instance.Backend.ramp pulse else pulse in
    print_string (Backend.pulse_text pulse);
    match Backend.pulse_violations pulse with
    | [] -> print_endline "pulse is executable on this device"
    | vs -> List.iter (Printf.printf "limit violation: %s\n") vs
  end

let setup_logging verbose =
  Logs.set_reporter (Logs.format_reporter ());
  Logs.set_level (Some (if verbose then Logs.Debug else Logs.Warning))

let user_errors f =
  match f () with
  | code -> code
  | exception (Failure msg | Invalid_argument msg) ->
      Printf.eprintf "qturbo: %s\n" msg;
      2
  | exception Qturbo_analysis.Diagnostic.Rejected ds ->
      Printf.eprintf "qturbo: input rejected by the pre-solve analyzer\n";
      List.iter
        (fun d ->
          Printf.eprintf "  %s\n" (Qturbo_analysis.Diagnostic.to_string d))
        ds;
      1
  | exception Qturbo_resilience.Failure.Failed fs ->
      Printf.eprintf
        "qturbo: compilation failed — %d classified failure record(s); rerun \
         with --best-effort for a degraded result\n"
        (List.length fs);
      List.iter
        (fun f ->
          Printf.eprintf "  %s\n" (Qturbo_resilience.Failure.to_string f))
        fs;
      3

let compile_cmd model_name hamiltonian n backend device_name cutoff t_tar j h
    segments
    domains baseline no_refine no_time_opt no_plan_cache plan_store
    no_plan_store repeat best_effort
    deadline show_pulse ramp json verbose =
 user_errors @@ fun () ->
  setup_logging verbose;
  setup_plan_store ~plan_store ~no_plan_store;
  let model = resolve_model ~hamiltonian ~model_name ~n ~j ~h in
  let n = model.Qturbo_models.Model.n in
  if json && (baseline || Qturbo_models.Model.is_driven model) then
    failwith "--json reports are only available for static qturbo compiles";
  if repeat < 1 then failwith "--repeat must be >= 1";
  (* run the compile [repeat] times in-process and report the last run —
     the cache counters are per-process, so this is how the CI smoke
     observes warm-plan hits from a single invocation *)
  let repeated f =
    for _ = 2 to repeat do ignore (f ()) done;
    f ()
  in
  let options =
    {
      Qturbo_core.Compiler.default_options with
      Qturbo_core.Compiler.refine = not no_refine;
      time_opt = not no_time_opt;
      domains =
        (if domains > 0 then domains
         else Qturbo_core.Compiler.default_options.Qturbo_core.Compiler.domains);
      best_effort;
      deadline_seconds = (if deadline > 0.0 then Some deadline else None);
      plan_cache = not no_plan_cache;
    }
  in
  let inst =
    resolve_backend ~backend ~device:device_name ~cutoff ~ramp
      ~model_name:model.Qturbo_models.Model.name ~n
  in
  if Qturbo_models.Model.is_driven model then begin
    let td =
      repeated (fun () ->
          Qturbo_core.Td_compiler.compile ~options ~aais:inst.Backend.aais
            ~model ~t_tar ~segments ())
    in
    Printf.printf "compiled %d segments in %.2f ms\n" segments
      (1000.0 *. td.Qturbo_core.Td_compiler.compile_seconds);
    Printf.printf "total evolution time: %.6f us\n" td.Qturbo_core.Td_compiler.t_sim;
    Printf.printf "relative error: %.4f %%\n"
      td.Qturbo_core.Td_compiler.relative_error;
    List.iteri
      (fun k (s : Qturbo_core.Td_compiler.segment_result) ->
        Printf.printf "  segment %d: %.4f us (error %.4g)\n" k
          s.Qturbo_core.Td_compiler.duration s.Qturbo_core.Td_compiler.error_l1)
      td.Qturbo_core.Td_compiler.segments;
    List.iter
      (fun f ->
        Printf.printf "failure: %s\n"
          (Qturbo_resilience.Failure.to_string f))
      td.Qturbo_core.Td_compiler.failures;
    if td.Qturbo_core.Td_compiler.degraded then
      print_endline
        "DEGRADED: best-effort result; some component kept a \
         non-converged solution (see failure records above)";
    Printf.printf "plan: %d shape(s), %d front-end build(s)\n"
      td.Qturbo_core.Td_compiler.plan_shapes
      td.Qturbo_core.Td_compiler.plan_builds;
    0
  end
  else begin
    let target =
      Qturbo_pauli.Pauli_sum.drop_identity
        (Qturbo_models.Model.hamiltonian_at model ~s:0.0)
    in
    if baseline then begin
      let r =
        Qturbo_simuq.Simuq_compiler.compile ~aais:inst.Backend.aais ~target
          ~t_tar ()
      in
      Printf.printf "baseline: success=%b T=%.4f us error=%.4f%% (%.2f s)\n"
        r.Qturbo_simuq.Simuq_compiler.success
        r.Qturbo_simuq.Simuq_compiler.t_sim
        r.Qturbo_simuq.Simuq_compiler.relative_error
        r.Qturbo_simuq.Simuq_compiler.compile_seconds;
      0
    end
    else if json then begin
      (* the report builder is shared with the daemon, so the printed
         bytes match a `qturbo serve` compile response for the same job *)
      print_endline
        (repeated (fun () ->
             Ops.compile_report_json ~options ~inst ~target ~t_tar ~show_pulse
               ~ramp ()));
      0
    end
    else begin
      let r =
        repeated (fun () ->
            Qturbo_core.Compiler.compile ~options ~aais:inst.Backend.aais
              ~target ~t_tar ())
      in
      print_compile_result ~instance:inst ~show_pulse ~ramp r;
      0
    end
  end

let model_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "model"; "m" ] ~docv:"NAME" ~doc:"Benchmark model (see `qturbo models`).")

let hamiltonian_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "hamiltonian"; "H" ] ~docv:"TEXT"
        ~doc:"Target Hamiltonian as text, e.g. 'Z0 Z1 + 0.5*X2' (overrides --model).")

let n_arg =
  Arg.(value & opt int 5 & info [ "qubits"; "n" ] ~docv:"N" ~doc:"Number of qubits/atoms.")

let backend_arg =
  Arg.(
    value & opt string "rydberg"
    & info [ "backend"; "b" ] ~docv:"BACKEND"
        ~doc:"rydberg, heisenberg, or iontrap.")

let device_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "device"; "d" ] ~docv:"DEVICE"
        ~doc:
          "Device preset for backends that declare presets (see `qturbo \
           devices`); rejected on backends without them.")

let cutoff_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "cutoff" ] ~docv:"CUTOFF"
        ~doc:
          "Van-der-Waals interaction cutoff for the rydberg backend: \
           $(b,auto) (exact all-pairs channels up to 96 atoms, then a \
           22.5 um neighbor-list cutoff), $(b,all-pairs) (exact at any \
           size), or a positive radius in um.  When pairs are dropped the \
           analyzer reports the truncation-error bound as QT029.")

let t_tar_arg =
  Arg.(
    value & opt float 1.0
    & info [ "t-tar"; "t" ] ~docv:"US" ~doc:"Target evolution time (µs).")

let j_arg =
  Arg.(value & opt float 0.0 & info [ "coupling"; "j" ] ~docv:"J" ~doc:"Coupling strength (0 = model default).")

let h_arg =
  Arg.(
    value & opt float 0.0
    & info [ "field" ] ~docv:"H"
        ~doc:"Transverse-field strength (0 = model default).")

let segments_arg =
  Arg.(
    value & opt int 4
    & info [ "segments" ] ~docv:"K" ~doc:"Piecewise segments for driven models.")

let domains_arg =
  Arg.(
    value & opt int 0
    & info [ "domains" ] ~docv:"D"
        ~doc:
          "Worker domains for the parallel compile pipeline (0 = the \
           QTURBO_DOMAINS / core-count default; 1 = fully sequential).  \
           Output is bitwise-identical for every value.")

let baseline_flag =
  Arg.(value & flag & info [ "baseline" ] ~doc:"Compile with the SimuQ-style baseline instead.")

let no_refine_flag =
  Arg.(value & flag & info [ "no-refine" ] ~doc:"Disable §6.2 iterative refinement.")

let no_time_opt_flag =
  Arg.(value & flag & info [ "no-time-opt" ] ~doc:"Disable §5.1 evolution-time optimisation.")

let no_plan_cache_flag =
  Arg.(
    value & flag
    & info [ "no-plan-cache" ]
        ~doc:
          "Rebuild the structural compile plan (term index, linear-system \
           skeleton, locality decomposition, prepared solver contexts) on \
           every compile instead of reusing the process-wide plan cache.  \
           Results are bitwise-identical either way.")

let repeat_arg =
  Arg.(
    value & opt int 1
    & info [ "repeat" ] ~docv:"R"
        ~doc:
          "Compile R times in one process and report the last run; with the \
           plan cache enabled, runs after the first hit the cached plan \
           (the JSON report's plan_cache counters show it).")

let best_effort_flag =
  Arg.(
    value & flag
    & info [ "best-effort" ]
        ~doc:
          "Return a degraded result (with classified failure records) when a \
           component solve exhausts the resilience escalation ladder, \
           instead of failing the compile.")

let deadline_arg =
  Arg.(
    value & opt float 0.0
    & info [ "deadline" ] ~docv:"SECONDS"
        ~doc:
          "Wall-clock budget for the compile; stages past the deadline \
           short-circuit with classified deadline-expired records (0 = no \
           deadline).")

let show_pulse_flag =
  Arg.(value & flag & info [ "show-pulse" ] ~doc:"Print the compiled pulse schedule.")

let ramp_flag =
  Arg.(
    value & flag
    & info [ "ramp" ]
        ~doc:"Apply the hardware ramping post-pass before printing the pulse.")

let verbose_flag =
  Arg.(value & flag & info [ "verbose"; "v" ] ~doc:"Log the compiler's pipeline stages.")

let json_flag =
  Arg.(
    value & flag
    & info [ "json" ]
        ~doc:"Emit a machine-readable JSON report instead of text.")

let compile_term =
  Term.(
    const compile_cmd $ model_arg $ hamiltonian_arg $ n_arg $ backend_arg $ device_arg $ cutoff_arg $ t_tar_arg
    $ j_arg $ h_arg $ segments_arg $ domains_arg $ baseline_flag $ no_refine_flag
    $ no_time_opt_flag $ no_plan_cache_flag $ plan_store_arg
    $ no_plan_store_flag $ repeat_arg $ best_effort_flag
    $ deadline_arg $ show_pulse_flag $ ramp_flag $ json_flag $ verbose_flag)

let compile_info =
  Cmd.info "compile" ~doc:"Compile a benchmark Hamiltonian onto an analog device."

(* ---- check: the pre-solve static analyzer, no compilation ---- *)

(* Test aid: append an effectless channel (with its own fresh variable) to
   the AAIS, the canonical dangling-synthesized-variable defect.  No
   built-in backend has one, so [qturbo check --inject dangling-channel]
   is the only way to see QT005 from the command line. *)
let inject_dangling (aais : Aais.t) =
  let v =
    Variable.fresh aais.Aais.pool ~name:"dangling"
      ~kind:Variable.Runtime_dynamic ~lo:0.0 ~hi:1.0 ()
  in
  let ch =
    Instruction.channel ~cid:(Aais.channel_count aais) ~label:"dangling"
      ~expr:(Expr.var v) ~effects:[] ~hint:Instruction.Hint_generic
  in
  let instr = Instruction.make ~label:"dangling" ~channels:[ ch ] in
  Aais.make
    ~name:(aais.Aais.name ^ "+dangling")
    ~n_qubits:aais.Aais.n_qubits ~pool:aais.Aais.pool
    ~instructions:(aais.Aais.instructions @ [ instr ])
    ~check_fixed:aais.Aais.check_fixed ~fingerprint:aais.Aais.fingerprint
    ~sites:aais.Aais.sites ()

let check_cmd model_name hamiltonian n backend device_name cutoff t_tar j h
    inject
    json verbose =
 user_errors @@ fun () ->
  setup_logging verbose;
  let module D = Qturbo_analysis.Diagnostic in
  let model = resolve_model ~hamiltonian ~model_name ~n ~j ~h in
  let n = model.Qturbo_models.Model.n in
  let inst =
    resolve_backend ~backend ~device:device_name ~cutoff ~ramp:false
      ~model_name:model.Qturbo_models.Model.name ~n
  in
  let aais = inst.Backend.aais in
  let t_max = inst.Backend.max_time in
  let spec_diags = inst.Backend.spec_diagnostics in
  let aais =
    match inject with
    | None -> aais
    | Some "dangling-channel" -> inject_dangling aais
    | Some other -> failwith ("unknown injection: " ^ other)
  in
  let target =
    Qturbo_pauli.Pauli_sum.drop_identity
      (Qturbo_models.Model.hamiltonian_at model ~s:0.0)
  in
  let diags =
    spec_diags @ Qturbo_core.Compiler.analyze ~t_max ~aais ~target ~t_tar ()
  in
  if json then print_endline (D.list_to_json diags)
  else begin
    List.iter (fun d -> print_endline (D.to_string d)) diags;
    Printf.printf "%d error(s), %d warning(s)\n"
      (List.length (D.errors diags))
      (List.length (D.warnings diags))
  end;
  if D.has_errors diags then 1 else 0

let inject_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "inject" ] ~docv:"DEFECT"
        ~doc:
          "Seed a known defect before analyzing (test aid); currently only \
           $(b,dangling-channel).")

let check_term =
  Term.(
    const check_cmd $ model_arg $ hamiltonian_arg $ n_arg $ backend_arg
    $ device_arg $ cutoff_arg $ t_tar_arg $ j_arg $ h_arg $ inject_arg
    $ json_flag $ verbose_flag)

let check_info =
  Cmd.info "check"
    ~doc:
      "Statically analyze a Hamiltonian against a device without \
       compiling.  Exits non-zero when error-severity diagnostics are \
       found."

(* ---- lint: kernel IR verifier + plan-invariant linter ---- *)

(* Seeded-defect fixtures for the kernel verifier: hand-assembled IR
   views that trigger exactly one diagnostic each (the codes are the
   public contract the CI smoke asserts).  [Expr.kernel_of_view]
   deliberately skips validation, so these are constructible. *)
let lint_kernel_fixture variant =
  let open Expr in
  match variant with
  | "kernel-underflow" ->
      (* pops two values from an empty stack *)
      Some
        ( "QT017",
          kernel_of_view [| K_binop B_add |] ~consts:[||] ~depth:1 ~max_var:(-1)
        )
  | "kernel-arity" ->
      (* terminates with two values on the stack *)
      Some
        ("QT018", kernel_of_view [| K_var 0; K_var 0 |] ~consts:[||] ~depth:2 ~max_var:0)
  | "kernel-env" ->
      (* reads a variable no environment of this device has *)
      Some
        ("QT019", kernel_of_view [| K_var 9999 |] ~consts:[||] ~depth:1 ~max_var:9999)
  | "kernel-depth" ->
      (* needs two stack slots but declares one *)
      Some
        ( "QT020",
          kernel_of_view
            [| K_var 0; K_var 0; K_binop B_add |]
            ~consts:[||] ~depth:1 ~max_var:0 )
  | "kernel-opcode" ->
      (* an unassigned opcode word *)
      Some
        ( "QT022",
          kernel_of_view
            [| K_unknown { op = 30; arg = 7 }; K_var 0 |]
            ~consts:[||] ~depth:1 ~max_var:0 )
  | _ -> None

(* Seeded-defect copies of a (valid) plan: each corrupts one cross-stage
   invariant.  Plans are immutable records, so the corruption is a copy —
   the original stays sound. *)
let lint_corrupt_plan variant (plan : Qturbo_core.Compile_plan.t) =
  let module CP = Qturbo_core.Compile_plan in
  let d = plan.CP.device in
  let drop_last l = List.filteri (fun i _ -> i < List.length l - 1) l in
  match variant with
  | "plan-support" ->
      (* the index no longer leads with the (shortened) support's terms *)
      Some
        ( "QT023",
          { plan with CP.support = (match plan.CP.support with [] -> [] | _ :: tl -> tl) } )
  | "plan-channels" ->
      (* skeleton cells now reference a channel the device lost *)
      Some
        ( "QT024",
          {
            plan with
            CP.device =
              {
                d with
                CP.channels = Array.sub d.CP.channels 0 (Array.length d.CP.channels - 1);
              };
          } )
  | "plan-dup-channel" ->
      (* one channel listed twice inside a locality component *)
      let comps =
        match d.CP.comps with
        | (c : Qturbo_core.Locality.component) :: rest ->
            {
              c with
              Qturbo_core.Locality.channel_ids =
                (match c.Qturbo_core.Locality.channel_ids with
                | cid :: _ as ids -> cid :: ids
                | [] -> []);
            }
            :: rest
        | [] -> []
      in
      Some ("QT025", { plan with CP.device = { d with CP.comps = comps } })
  | "plan-class-count" ->
      (* one classification fewer than components *)
      Some
        ( "QT026",
          {
            plan with
            CP.device =
              { d with CP.classifications = drop_last d.CP.classifications };
          } )
  | "plan-key" ->
      (* stored key no longer matches the plan's own structure *)
      Some ("QT027", { plan with CP.key = plan.CP.key ^ "#stale" })
  | "plan-prepared" ->
      (* one prepared solver context fewer than components *)
      Some
        ( "QT028",
          { plan with CP.device = { d with CP.prepared = drop_last d.CP.prepared } }
        )
  | _ -> None

let lint_cmd model_name hamiltonian n backend device_name cutoff j h inject
    json
    verbose =
 user_errors @@ fun () ->
  setup_logging verbose;
  let module D = Qturbo_analysis.Diagnostic in
  let module KC = Qturbo_analysis.Kernel_check in
  let module CP = Qturbo_core.Compile_plan in
  (* every kernel compiled from here on is verified at birth *)
  KC.install_compile_hook ();
  let model = resolve_model ~hamiltonian ~model_name ~n ~j ~h in
  let n = model.Qturbo_models.Model.n in
  let aais =
    (resolve_backend ~backend ~device:device_name ~cutoff ~ramp:false
       ~model_name:model.Qturbo_models.Model.name ~n)
      .Backend.aais
  in
  let target =
    Qturbo_pauli.Pauli_sum.drop_identity
      (Qturbo_models.Model.hamiltonian_at model ~s:0.0)
  in
  let support = CP.support_of_target target in
  let plan = CP.build ~aais ~target_shape:support () in
  let channels = Aais.channels aais in
  let subject0 =
    if Array.length channels > 0 then
      D.Channel
        {
          cid = channels.(0).Instruction.cid;
          label = channels.(0).Instruction.label;
        }
    else D.System
  in
  let kernel_diags = KC.check_aais aais in
  let injected =
    match inject with
    | None -> []
    | Some variant -> (
        let n_env = Array.length (Aais.variables aais) in
        match lint_kernel_fixture variant with
        | Some (_code, k) -> KC.check ~subject:subject0 ~n_env k
        | None -> (
            match variant with
            | "kernel-range" ->
                (* a kernel provably computing a different function than
                   the expression it claims to implement *)
                KC.check ~subject:subject0 ~source:(Expr.Const 2.0) ~n_env
                  (Expr.compile_unfused (Expr.Const 3.0))
            | _ -> (
                match lint_corrupt_plan variant plan with
                | Some (_code, bad) -> CP.lint bad
                | None -> failwith ("unknown injection: " ^ variant))))
  in
  let plan_diags = CP.lint plan in
  let diags = kernel_diags @ plan_diags @ injected in
  let n_rows =
    Qturbo_core.Term_index.count
      (Qturbo_core.Linear_system.skeleton_index plan.CP.skeleton)
  in
  if json then
    Printf.printf "{\"model\":%s,\"backend\":%s,\"channels\":%d,\"rows\":%d,%s}\n"
      (Qturbo_util.Json.quote model.Qturbo_models.Model.name)
      (Qturbo_util.Json.quote backend)
      (Array.length channels) n_rows
      (let report = D.list_to_json diags in
       (* embed the report object's fields *)
       String.sub report 1 (String.length report - 2))
  else begin
    List.iter (fun d -> print_endline (D.to_string d)) diags;
    Printf.printf
      "linted %d kernel(s) and 1 plan (%d rows): %d error(s), %d warning(s)\n"
      (Array.length channels) n_rows
      (List.length (D.errors diags))
      (List.length (D.warnings diags))
  end;
  if D.has_errors diags then 1 else 0

let lint_inject_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "inject" ] ~docv:"DEFECT"
        ~doc:
          "Seed a known defect before linting (test aid).  Kernel defects: \
           $(b,kernel-underflow) (QT017), $(b,kernel-arity) (QT018), \
           $(b,kernel-env) (QT019), $(b,kernel-depth) (QT020), \
           $(b,kernel-range) (QT021), $(b,kernel-opcode) (QT022).  Plan \
           defects: $(b,plan-support) (QT023), $(b,plan-channels) (QT024), \
           $(b,plan-dup-channel) (QT025), $(b,plan-class-count) (QT026), \
           $(b,plan-key) (QT027), $(b,plan-prepared) (QT028).")

let lint_term =
  Term.(
    const lint_cmd $ model_arg $ hamiltonian_arg $ n_arg $ backend_arg
    $ device_arg $ cutoff_arg $ j_arg $ h_arg $ lint_inject_arg $ json_flag
    $ verbose_flag)

let lint_info =
  Cmd.info "lint"
    ~doc:
      "Statically verify the compiled artifacts for a model/device pair \
       without solving: every channel's postfix kernel (stack safety, \
       environment references, range soundness — QT017-QT022) and the \
       compile plan's cross-stage invariants (QT023-QT028).  Exits non-zero \
       when error-severity diagnostics are found."

(* ---- sweep: many (coefficients, t_tar) jobs through one shared plan ---- *)

let parse_range = Ops.parse_range
let parse_int_list = Ops.parse_int_list

(* One job per non-empty, non-comment line: "J H T_TAR" (0 = model
   default, same convention as the compile flags). *)
let parse_jobs_file path =
  let ic = open_in path in
  Fun.protect ~finally:(fun () -> close_in_noerr ic) @@ fun () ->
  let jobs = ref [] in
  let line_no = ref 0 in
  (try
     while true do
       let line = input_line ic in
       incr line_no;
       let line = String.trim line in
       if line <> "" && line.[0] <> '#' then
         match Scanf.sscanf line " %f %f %f" (fun j h t -> (j, h, t)) with
         | job -> jobs := job :: !jobs
         | exception _ ->
             failwith
               (Printf.sprintf "%s:%d: expected 'J H T_TAR', got %S" path
                  !line_no line)
     done
   with End_of_file -> ());
  List.rev !jobs

let digest_key = Ops.digest_key

let print_plan_summary ~plan_cache =
  if not plan_cache then print_endline "plan: cache disabled"
  else begin
    let s = Qturbo_core.Compile_plan.cache_stats () in
    Printf.printf
      "plan: %d hit(s) / %d miss(es) / %d eviction(s) / %d discarded; %d \
       cached plan(s)\n"
      s.Qturbo_core.Plan_cache.hits s.Qturbo_core.Plan_cache.misses
      s.Qturbo_core.Plan_cache.evictions s.Qturbo_core.Plan_cache.discarded
      s.Qturbo_core.Plan_cache.size;
    List.iter
      (fun (key, (k : Qturbo_core.Plan_cache.key_stats)) ->
        Printf.printf "  key %s: %d hit(s) / %d miss(es)\n" (digest_key key)
          k.Qturbo_core.Plan_cache.key_hits
          k.Qturbo_core.Plan_cache.key_misses)
      (Qturbo_core.Compile_plan.cache_per_key ())
  end;
  print_store_summary ()

let sweep_cmd model_name hamiltonian n backend device_name jobs_file sweep_j
    sweep_h sweep_t sweep_segments domains batch_domains no_plan_cache
    plan_store no_plan_store best_effort json verbose =
 user_errors @@ fun () ->
  setup_logging verbose;
  setup_plan_store ~plan_store ~no_plan_store;
  let options =
    {
      Qturbo_core.Compiler.default_options with
      Qturbo_core.Compiler.domains =
        (if domains > 0 then domains
         else Qturbo_core.Compiler.default_options.Qturbo_core.Compiler.domains);
      best_effort;
      plan_cache = not no_plan_cache;
    }
  in
  let batch_domains =
    if batch_domains > 0 then batch_domains
    else options.Qturbo_core.Compiler.domains
  in
  let ts = parse_range ~what:"--sweep-t" sweep_t in
  let jobs =
    match jobs_file with
    | Some path -> parse_jobs_file path
    | None ->
        let js = parse_range ~what:"--sweep-j" sweep_j in
        let hs = parse_range ~what:"--sweep-h" sweep_h in
        List.concat_map
          (fun j ->
            List.concat_map (fun h -> List.map (fun t -> (j, h, t)) ts) hs)
          js
  in
  if jobs = [] then failwith "sweep: no jobs (empty --jobs file?)";
  let model_of ~j ~h = resolve_model ~hamiltonian ~model_name ~n ~j ~h in
  let probe = model_of ~j:0.0 ~h:0.0 in
  let n = probe.Qturbo_models.Model.n in
  let inst =
    resolve_backend ~backend ~device:device_name ~cutoff:None ~ramp:false
      ~model_name:probe.Qturbo_models.Model.name ~n
  in
  if Qturbo_models.Model.is_driven probe then begin
    (* time-dependent sweep: re-discretize the model at each segment
       count; all segments of every job share one plan when their
       shapes agree, so the whole sweep pays one front-end build *)
    let seg_list = parse_int_list ~what:"--sweep-segments" sweep_segments in
    if seg_list = [] then
      failwith "time-dependent sweeps need --sweep-segments, e.g. 2,4,8";
    let td_jobs =
      List.concat_map (fun segments -> List.map (fun t -> (segments, t)) ts)
        seg_list
    in
    if json then
      print_endline
        (Ops.sweep_td_json ~options ~batch_domains ~backend ~inst ~probe
           ~td_jobs ())
    else begin
      let results =
        List.map
          (fun (segments, t_tar) ->
            ( segments,
              t_tar,
              Qturbo_core.Td_compiler.compile ~options ~aais:inst.Backend.aais
                ~model:probe ~t_tar ~segments () ))
          td_jobs
      in
      List.iteri
        (fun i (segments, t_tar, (td : Qturbo_core.Td_compiler.result)) ->
          Printf.printf
            "job %d: segments=%d t=%g -> T_sim=%.4f us, error %.4f%%, %d \
             shape(s), %d build(s)%s\n"
            i segments t_tar td.Qturbo_core.Td_compiler.t_sim
            td.Qturbo_core.Td_compiler.relative_error
            td.Qturbo_core.Td_compiler.plan_shapes
            td.Qturbo_core.Td_compiler.plan_builds
            (if td.Qturbo_core.Td_compiler.degraded then " DEGRADED" else ""))
        results;
      print_plan_summary ~plan_cache:options.Qturbo_core.Compiler.plan_cache
    end;
    0
  end
  else begin
    let target_of ~j ~h =
      Qturbo_pauli.Pauli_sum.drop_identity
        (Qturbo_models.Model.hamiltonian_at (model_of ~j ~h) ~s:0.0)
    in
    if json then
      print_endline
        (Ops.sweep_static_json ~options ~batch_domains ~backend ~inst ~probe
           ~target_of ~jobs ())
    else begin
      let batch = List.map (fun (j, h, t) -> (target_of ~j ~h, t)) jobs in
      let results =
        Qturbo_core.Compiler.compile_batch ~options ~batch_domains
          ~aais:inst.Backend.aais batch
      in
      List.iteri
        (fun i ((j, h, t), (r : Qturbo_core.Compiler.result)) ->
          Printf.printf
            "job %d: j=%g h=%g t=%g -> T_sim=%.4f us, error %.4f%%%s\n" i j h
            t r.Qturbo_core.Compiler.t_sim
            r.Qturbo_core.Compiler.relative_error
            (if r.Qturbo_core.Compiler.degraded then " DEGRADED" else ""))
        (List.combine jobs results);
      print_plan_summary ~plan_cache:options.Qturbo_core.Compiler.plan_cache
    end;
    0
  end

let jobs_file_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "jobs" ] ~docv:"FILE"
        ~doc:
          "Job list file: one 'J H T_TAR' triple per line ('#' comments; 0 \
           = model default).  Overrides the --sweep-* ranges.")

let sweep_j_arg =
  Arg.(
    value & opt string "0"
    & info [ "sweep-j" ] ~docv:"RANGE"
        ~doc:
          "Coupling values: a single value or LO:HI:COUNT (0 = model \
           default).")

let sweep_h_arg =
  Arg.(
    value & opt string "0"
    & info [ "sweep-h" ] ~docv:"RANGE"
        ~doc:
          "Transverse-field values: a single value or LO:HI:COUNT (0 = \
           model default).")

let sweep_t_arg =
  Arg.(
    value & opt string "1.0"
    & info [ "sweep-t" ] ~docv:"RANGE"
        ~doc:"Target evolution times (µs): a single value or LO:HI:COUNT.")

let sweep_segments_arg =
  Arg.(
    value & opt string ""
    & info [ "sweep-segments" ] ~docv:"LIST"
        ~doc:
          "Comma-separated segment counts for driven models (e.g. 2,4,8); \
           each count re-discretizes the model, sharing plans across the \
           sweep.")

let batch_domains_arg =
  Arg.(
    value & opt int 0
    & info [ "batch-domains" ] ~docv:"D"
        ~doc:
          "Worker domains for the batch job sweep (0 = the QTURBO_DOMAINS / \
           core-count default; 1 = fully sequential).  Batch output is \
           bitwise-identical for every value.")

let sweep_term =
  Term.(
    const sweep_cmd $ model_arg $ hamiltonian_arg $ n_arg $ backend_arg
    $ device_arg $ jobs_file_arg $ sweep_j_arg $ sweep_h_arg $ sweep_t_arg
    $ sweep_segments_arg $ domains_arg $ batch_domains_arg
    $ no_plan_cache_flag $ plan_store_arg $ no_plan_store_flag
    $ best_effort_flag $ json_flag $ verbose_flag)

let sweep_info =
  Cmd.info "sweep"
    ~doc:
      "Compile a grid or list of (coefficients, evolution-time) jobs in one \
       process.  Structurally-identical jobs share one compile plan; the \
       numeric back-ends run in parallel with --batch-domains workers."

(* ---- run: compile + emulate ---- *)

let run_cmd model_name n device_name t_tar j h shots noise_scale seed verbose =
 user_errors @@ fun () ->
  setup_logging verbose;
  let j = if j = 0.0 then None else Some j in
  let h = if h = 0.0 then None else Some h in
  let model = build_model ~name:model_name ~n ~j ~h in
  if Qturbo_models.Model.is_driven model then
    failwith "run supports static models only (compile driven ones instead)";
  let spec =
    match List.assoc_opt device_name run_device_presets with
    | Some sp -> sp
    | None -> failwith ("unknown device: " ^ device_name)
  in
  let ryd = Rydberg.build ~spec ~n in
  let target =
    Qturbo_pauli.Pauli_sum.drop_identity
      (Qturbo_models.Model.hamiltonian_at model ~s:0.0)
  in
  let r = Qturbo_core.Compiler.compile ~aais:ryd.Rydberg.aais ~target ~t_tar () in
  let pulse =
    Qturbo_core.Extract.rydberg_pulse ryd ~env:r.Qturbo_core.Compiler.env
      ~t_sim:r.Qturbo_core.Compiler.t_sim
  in
  Printf.printf "compiled: T_sim = %.4f us, relative error %.3f%%\n"
    r.Qturbo_core.Compiler.t_sim r.Qturbo_core.Compiler.relative_error;
  let ground = Qturbo_quantum.State.ground ~n in
  let th = Qturbo_quantum.Evolve.evolve ~h:target ~t:t_tar ground in
  Printf.printf "theory:   Z_avg = %+.4f  ZZ_avg = %+.4f\n"
    (Qturbo_quantum.Observable.z_avg th)
    (Qturbo_quantum.Observable.zz_avg th);
  let noise =
    Qturbo_device_noise.Noise_model.scaled noise_scale
      Qturbo_device_noise.Noise_model.aquila
  in
  let rng = Qturbo_util.Rng.create ~seed:(Int64.of_int seed) in
  let o = Qturbo_device_noise.Emulator.run ~rng ~noise ~shots ~pulse () in
  Printf.printf "device:   Z_avg = %+.4f  ZZ_avg = %+.4f  (%d shots, %d trajectories, noise x%g)\n"
    o.Qturbo_device_noise.Emulator.z_avg o.Qturbo_device_noise.Emulator.zz_avg
    o.Qturbo_device_noise.Emulator.shots o.Qturbo_device_noise.Emulator.trajectories
    noise_scale;
  0

let shots_arg =
  Arg.(value & opt int 500 & info [ "shots" ] ~docv:"K" ~doc:"Measurement shots.")

let noise_scale_arg =
  Arg.(
    value & opt float 1.0
    & info [ "noise-scale" ] ~docv:"S" ~doc:"Scale factor on the Aquila noise model.")

let seed_arg =
  Arg.(value & opt int 2026 & info [ "seed" ] ~docv:"SEED" ~doc:"Emulator RNG seed.")

let run_model_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "model"; "m" ] ~docv:"NAME" ~doc:"Benchmark model (see `qturbo models`).")

let run_device_arg =
  Arg.(
    value & opt string "aquila-fig6a"
    & info [ "device"; "d" ] ~docv:"DEVICE" ~doc:"Rydberg device preset.")

let run_term =
  Term.(
    const run_cmd $ run_model_arg $ n_arg $ run_device_arg $ t_tar_arg $ j_arg
    $ h_arg $ shots_arg $ noise_scale_arg $ seed_arg $ verbose_flag)

let run_info =
  Cmd.info "run"
    ~doc:"Compile a model and execute the pulse on the noisy device emulator."

(* ---- serve / client: the Unix-domain-socket compile service ---- *)

let default_socket_path () =
  Filename.concat (Filename.get_temp_dir_name ()) "qturbo.sock"

let socket_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "socket"; "s" ] ~docv:"PATH"
        ~doc:
          "Unix-domain socket path (default: $(b,qturbo.sock) in the \
           system temporary directory).")

let serve_cmd socket max_request_bytes deadline_cap max_requests plan_store
    no_plan_store verbose =
 user_errors @@ fun () ->
  setup_logging verbose;
  setup_plan_store ~plan_store ~no_plan_store;
  let socket_path = Option.value socket ~default:(default_socket_path ()) in
  if max_request_bytes < 1 then failwith "--max-request-bytes must be >= 1";
  let config =
    {
      Qturbo_service.Server.socket_path;
      max_request_bytes;
      deadline_cap = (if deadline_cap > 0.0 then Some deadline_cap else None);
      max_requests = (if max_requests > 0 then Some max_requests else None);
    }
  in
  Qturbo_service.Server.serve config;
  0

let max_request_bytes_arg =
  Arg.(
    value
    & opt int (1 lsl 20)
    & info [ "max-request-bytes" ] ~docv:"BYTES"
        ~doc:
          "Reject request lines longer than $(docv) with a parse-error \
           response (default 1 MiB).")

let deadline_cap_arg =
  Arg.(
    value & opt float 0.0
    & info [ "deadline-cap" ] ~docv:"SECONDS"
        ~doc:
          "Upper bound applied to every compile request's deadline; \
           requests asking for more (or for none) get this (0 = no cap).")

let max_requests_arg =
  Arg.(
    value & opt int 0
    & info [ "max-requests" ] ~docv:"K"
        ~doc:
          "Serve at most $(docv) requests, then exit (0 = serve until \
           shutdown); tests and smoke jobs use it to bound the daemon's \
           life.")

let serve_term =
  Term.(
    const serve_cmd $ socket_arg $ max_request_bytes_arg $ deadline_cap_arg
    $ max_requests_arg $ plan_store_arg $ no_plan_store_flag $ verbose_flag)

let serve_info =
  Cmd.info "serve"
    ~doc:
      "Run the compile daemon on a Unix-domain socket: one warm process \
       (plan cache, device artifacts, optional plan store) answering \
       newline-delimited JSON requests — compile, check, lint, sweep, \
       stats, ping, shutdown.  Responses reuse the exact --json payload \
       shapes; a request can fail (typed error responses carrying the \
       diagnostics or classified failure records), the daemon does not."

let client_cmd socket request verbose =
 user_errors @@ fun () ->
  setup_logging verbose;
  let socket_path = Option.value socket ~default:(default_socket_path ()) in
  let line =
    match request with
    | "-" -> ( match In_channel.input_line stdin with
      | Some l -> l
      | None -> failwith "client: no request on stdin")
    | r -> r
  in
  match Qturbo_service.Client.request ~socket_path line with
  | Error msg -> failwith msg
  | Ok resp ->
      print_endline resp;
      if Qturbo_service.Client.response_ok resp then 0 else 1

let request_arg =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"REQUEST"
        ~doc:
          "The JSON request line, e.g. \
           '{\"op\":\"compile\",\"model\":\"ising-chain\",\"n\":5}'; \
           $(b,-) reads it from stdin.")

let client_term = Term.(const client_cmd $ socket_arg $ request_arg $ verbose_flag)

let client_info =
  Cmd.info "client"
    ~doc:
      "Send one JSON request to a running `qturbo serve` daemon and print \
       the response line.  Exits 0 when the response carries \
       \"ok\": true, 1 otherwise."

(* ---- models / devices ---- *)

let models_cmd () =
  List.iter print_endline Ops.model_names;
  0

let devices_cmd () =
  List.iter
    (fun (b : Backend.t) ->
      List.iter
        (fun (name, summary) -> Printf.printf "%-14s %s\n" name summary)
        b.Backend.devices)
    (Backend.all ());
  0

let main () =
  let default = Term.(ret (const (`Help (`Pager, None)))) in
  let cmd =
    Cmd.group ~default
      (Cmd.info "qturbo" ~version:"1.0.0"
         ~doc:"A robust and efficient compiler for analog quantum simulation.")
      [
        Cmd.v compile_info compile_term;
        Cmd.v check_info check_term;
        Cmd.v lint_info lint_term;
        Cmd.v sweep_info sweep_term;
        Cmd.v serve_info serve_term;
        Cmd.v client_info client_term;
        Cmd.v run_info run_term;
        Cmd.v (Cmd.info "models" ~doc:"List benchmark models.") Term.(const models_cmd $ const ());
        Cmd.v (Cmd.info "devices" ~doc:"List device presets.") Term.(const devices_cmd $ const ());
      ]
  in
  exit (Cmd.eval' cmd)

let () = main ()
