(* Tests for pulse serialization (roundtrips, error reporting) and the
   independent result verifier. *)

open Qturbo_aais
open Qturbo_core

let sample_pulse () =
  {
    Pulse.spec = Device.aquila_fig6a;
    positions = [| (0.0, 0.0); (9.25, -1.5); (18.5, 0.75) |];
    segments =
      [
        {
          Pulse.duration = 0.25;
          omega = [| 6.28; 6.28; 6.28 |];
          phi = [| 0.0; 0.1; -0.1 |];
          delta = [| 1.5; -2.5; 0.0 |];
        };
        {
          Pulse.duration = 0.125;
          omega = [| 3.0; 3.0; 3.0 |];
          phi = [| 0.0; 0.0; 0.0 |];
          delta = [| 0.0; 0.0; 0.0 |];
        };
      ];
  }

let pulses_equal (a : Pulse.rydberg) (b : Pulse.rydberg) =
  a.Pulse.spec = b.Pulse.spec
  && a.Pulse.positions = b.Pulse.positions
  && a.Pulse.segments = b.Pulse.segments

let test_roundtrip () =
  let p = sample_pulse () in
  match Pulse_io.of_string (Pulse_io.to_string p) with
  | Ok p' -> Alcotest.(check bool) "identical" true (pulses_equal p p')
  | Error msg -> Alcotest.failf "parse failed: %s" msg

let test_roundtrip_exact_floats () =
  (* awkward values must survive the text roundtrip bit-exactly *)
  let p = sample_pulse () in
  let p =
    {
      p with
      Pulse.positions = [| (0.1 +. 0.2, 1.0 /. 3.0); (Float.pi, -0.0); (1e-300, 2.5) |];
    }
  in
  match Pulse_io.of_string (Pulse_io.to_string p) with
  | Ok p' -> Alcotest.(check bool) "bit exact" true (p.Pulse.positions = p'.Pulse.positions)
  | Error msg -> Alcotest.failf "parse failed: %s" msg

let test_save_load () =
  let path = Filename.temp_file "qturbo" ".pulse" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let p = sample_pulse () in
      Pulse_io.save ~path p;
      match Pulse_io.load ~path with
      | Ok p' -> Alcotest.(check bool) "file roundtrip" true (pulses_equal p p')
      | Error msg -> Alcotest.failf "load failed: %s" msg)

let expect_error text =
  match Pulse_io.of_string text with
  | Ok _ -> Alcotest.fail "bad input accepted"
  | Error _ -> ()

let test_parse_errors () =
  expect_error "";
  expect_error "not-a-pulse";
  expect_error "rydberg-pulse v1\ndevice d\nbogus";
  (* truncated after the atoms header *)
  expect_error "rydberg-pulse v1\ndevice d\nspec 1.0 1.0 1.0 1.0 1.0 1.0 global line\natoms 2\natom 0 0x0p+0 0x0p+0"

let test_parse_rejects_wrong_channel_arity () =
  let p = sample_pulse () in
  let text = Pulse_io.to_string p in
  (* drop one omega value from the first segment line *)
  let mangled =
    String.split_on_char '\n' text
    |> List.map (fun line ->
           if String.length line > 6 && String.sub line 0 6 = "omega " then
             String.sub line 0 (String.rindex line ' ')
           else line)
    |> String.concat "\n"
  in
  expect_error mangled

let test_compiled_pulse_roundtrip () =
  let ryd = Rydberg.build ~spec:Device.aquila_paper ~n:3 in
  let target =
    Qturbo_models.Model.hamiltonian_at (Qturbo_models.Benchmarks.ising_chain ~n:3 ()) ~s:0.0
  in
  let r = Compiler.compile ~aais:ryd.Rydberg.aais ~target ~t_tar:1.0 () in
  let pulse = Extract.rydberg_pulse ryd ~env:r.Compiler.env ~t_sim:r.Compiler.t_sim in
  match Pulse_io.of_string (Pulse_io.to_string pulse) with
  | Ok p' ->
      Alcotest.(check bool) "compiled pulse roundtrips" true (pulses_equal pulse p');
      Alcotest.(check (list string)) "still executable" [] (Pulse.within_limits p')
  | Error msg -> Alcotest.failf "parse failed: %s" msg

(* ---- Verifier ---- *)

let test_verifier_accepts_good_compilation () =
  let ryd = Rydberg.build ~spec:Device.aquila_paper ~n:3 in
  let target =
    Qturbo_models.Model.hamiltonian_at (Qturbo_models.Benchmarks.ising_chain ~n:3 ()) ~s:0.0
  in
  let r = Compiler.compile ~aais:ryd.Rydberg.aais ~target ~t_tar:1.0 () in
  let v = Verifier.verify_rydberg ryd ~target ~t_tar:1.0 r in
  Alcotest.(check bool) "executable" true v.Verifier.executable;
  Alcotest.(check bool) "consistent with compiler metric" true
    v.Verifier.consistent_with_compiler;
  Alcotest.(check bool) "small relative error" true (v.Verifier.relative_error < 1.0)

let test_verifier_detects_tampering () =
  let ryd = Rydberg.build ~spec:Device.aquila_paper ~n:3 in
  let target =
    Qturbo_models.Model.hamiltonian_at (Qturbo_models.Benchmarks.ising_chain ~n:3 ()) ~s:0.0
  in
  let r = Compiler.compile ~aais:ryd.Rydberg.aais ~target ~t_tar:1.0 () in
  (* sabotage a Rabi amplitude *)
  let env = Array.copy r.Compiler.env in
  env.(ryd.Rydberg.omegas.(0).Qturbo_aais.Variable.id) <- 0.5;
  let v =
    Verifier.verify_rydberg ryd ~target ~t_tar:1.0 { r with Compiler.env }
  in
  Alcotest.(check bool) "inconsistency flagged" false v.Verifier.consistent_with_compiler;
  Alcotest.(check bool) "error grew" true (v.Verifier.error_l1 > r.Compiler.error_l1 +. 0.1)

let test_verifier_detects_limit_violation () =
  let ryd = Rydberg.build ~spec:Device.aquila_paper ~n:3 in
  let target =
    Qturbo_models.Model.hamiltonian_at (Qturbo_models.Benchmarks.ising_chain ~n:3 ()) ~s:0.0
  in
  let r = Compiler.compile ~aais:ryd.Rydberg.aais ~target ~t_tar:1.0 () in
  (* move two atoms within the forbidden separation *)
  let env = Array.copy r.Compiler.env in
  env.(ryd.Rydberg.xs.(1).Qturbo_aais.Variable.id) <- 1.0;
  let v = Verifier.verify_rydberg ryd ~target ~t_tar:1.0 { r with Compiler.env } in
  Alcotest.(check bool) "not executable" false v.Verifier.executable;
  Alcotest.(check bool) "violation listed" true (v.Verifier.violations <> [])

let test_verifier_heisenberg_exact () =
  let heis = Heisenberg.build ~spec:Device.heisenberg_default ~n:4 in
  let target =
    Qturbo_models.Model.hamiltonian_at (Qturbo_models.Benchmarks.kitaev ~n:4 ()) ~s:0.0
  in
  let r = Compiler.compile ~aais:heis.Heisenberg.aais ~target ~t_tar:1.0 () in
  let v = Verifier.verify_heisenberg heis ~target ~t_tar:1.0 r in
  Alcotest.(check bool) "executable" true v.Verifier.executable;
  Alcotest.(check (float 1e-9)) "exact" 0.0 v.Verifier.error_l1;
  Alcotest.(check bool) "consistent" true v.Verifier.consistent_with_compiler

let test_verifier_heisenberg_flags_overtime () =
  let heis = Heisenberg.build ~spec:{ Device.heisenberg_default with Device.max_time = 0.5 } ~n:3 in
  let target =
    Qturbo_models.Model.hamiltonian_at (Qturbo_models.Benchmarks.ising_chain ~n:3 ()) ~s:0.0
  in
  (* two-qubit bound 1.0 forces T = 1.0 > max_time 0.5 *)
  let r = Compiler.compile ~aais:heis.Heisenberg.aais ~target ~t_tar:1.0 () in
  let v = Verifier.verify_heisenberg heis ~target ~t_tar:1.0 r in
  Alcotest.(check bool) "overtime flagged" false v.Verifier.executable

(* property: serialization roundtrips arbitrary well-formed pulses *)
let pulse_gen =
  QCheck.Gen.(
    int_range 1 5 >>= fun n ->
    int_range 1 3 >>= fun n_segs ->
    let farr lo hi = array_size (return n) (float_range lo hi) in
    list_repeat n_segs
      (float_range 0.01 2.0 >>= fun duration ->
       farr 0.0 6.0 >>= fun omega ->
       farr (-3.0) 3.0 >>= fun phi ->
       farr (-10.0) 10.0 >>= fun delta ->
       return { Pulse.duration; omega; phi; delta })
    >>= fun segments ->
    array_size (return n) (pair (float_range (-50.0) 50.0) (float_range (-50.0) 50.0))
    >>= fun positions ->
    return { Pulse.spec = Device.aquila; positions; segments })

let prop_io_roundtrip =
  QCheck.Test.make ~name:"pulse serialization roundtrips" ~count:100
    (QCheck.make pulse_gen) (fun p ->
      match Pulse_io.of_string (Pulse_io.to_string p) with
      | Ok p' -> pulses_equal p p'
      | Error _ -> false)

let () =
  Alcotest.run "io_verify"
    [
      ( "pulse_io",
        [
          Alcotest.test_case "roundtrip" `Quick test_roundtrip;
          Alcotest.test_case "exact floats" `Quick test_roundtrip_exact_floats;
          Alcotest.test_case "save/load" `Quick test_save_load;
          Alcotest.test_case "parse errors" `Quick test_parse_errors;
          Alcotest.test_case "channel arity" `Quick test_parse_rejects_wrong_channel_arity;
          Alcotest.test_case "compiled pulse" `Quick test_compiled_pulse_roundtrip;
        ] );
      ( "verifier",
        [
          Alcotest.test_case "accepts good compilation" `Quick
            test_verifier_accepts_good_compilation;
          Alcotest.test_case "detects tampering" `Quick test_verifier_detects_tampering;
          Alcotest.test_case "detects limit violations" `Quick
            test_verifier_detects_limit_violation;
          Alcotest.test_case "heisenberg exact" `Quick test_verifier_heisenberg_exact;
          Alcotest.test_case "heisenberg overtime" `Quick
            test_verifier_heisenberg_flags_overtime;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest [ prop_io_roundtrip ] );
    ]
