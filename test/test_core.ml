(* Tests for qturbo.core: term indexing, the global linear system,
   locality decomposition, local solvers, the fixed-variable solver, the
   compiler pipeline (with ablation options), mapping and the
   time-dependent driver. *)

open Qturbo_pauli
open Qturbo_aais
open Qturbo_core

let check_close msg tol a b =
  if Float.abs (a -. b) > tol then Alcotest.failf "%s: %.10g vs %.10g" msg a b

let ising_chain n =
  Qturbo_models.Model.hamiltonian_at (Qturbo_models.Benchmarks.ising_chain ~n ()) ~s:0.0

let rydberg3 () = Rydberg.build ~spec:Device.aquila_paper ~n:3

(* ---- Term_index ---- *)

let test_term_index_rows () =
  let ryd = rydberg3 () in
  let channels = Aais.channels ryd.Rydberg.aais in
  let idx = Term_index.build ~channels ~target:(ising_chain 3) in
  (* rows: ZZ(01), ZZ(12), ZZ(02), Z0, Z1, Z2, X0..X2, Y0..Y2 = 12 *)
  Alcotest.(check int) "row count" 12 (Term_index.count idx);
  (* identity never indexed *)
  Alcotest.(check (option int)) "identity" None
    (Term_index.row_of idx Pauli_string.identity);
  (* target terms are indexed first *)
  (match Term_index.row_of idx (Pauli_string.two 0 Pauli.Z 1 Pauli.Z) with
  | Some r -> Alcotest.(check bool) "target first" true (r < 5)
  | None -> Alcotest.fail "target term missing");
  (* channel-only term (Y0) present *)
  Alcotest.(check bool) "channel-only term" true
    (Term_index.row_of idx (Pauli_string.single 0 Pauli.Y) <> None)

let test_term_index_bijective () =
  let ryd = rydberg3 () in
  let idx = Term_index.build ~channels:(Aais.channels ryd.Rydberg.aais) ~target:(ising_chain 3) in
  for r = 0 to Term_index.count idx - 1 do
    match Term_index.row_of idx (Term_index.string_of idx r) with
    | Some r' when r' = r -> ()
    | _ -> Alcotest.failf "row %d not bijective" r
  done

(* ---- Linear_system ---- *)

let test_linear_system_worked_example () =
  (* the §4.1 system: α for both nn vdW channels must be 1, wrap 0,
     detuning α's 1, 2, 1, rabi cos 1 / sin 0 *)
  let ryd = rydberg3 () in
  let channels = Aais.channels ryd.Rydberg.aais in
  let ls = Linear_system.build ~channels ~target:(ising_chain 3) ~t_tar:1.0 in
  let sol = Linear_system.solve ls in
  let alpha = sol.Qturbo_linalg.Sparse_solve.x in
  check_close "eps1 zero" 1e-12 0.0 sol.Qturbo_linalg.Sparse_solve.residual_l1;
  (* channel order: vdw(0,1), vdw(0,2), vdw(1,2), det0..2, rabi pairs *)
  let find label =
    let found = ref None in
    Array.iter
      (fun (c : Instruction.channel) ->
        if c.Instruction.label = label then found := Some c.Instruction.cid)
      channels;
    match !found with Some cid -> cid | None -> Alcotest.failf "no channel %s" label
  in
  check_close "vdw01" 1e-9 1.0 alpha.(find "vdw(0,1)");
  check_close "vdw12" 1e-9 1.0 alpha.(find "vdw(1,2)");
  check_close "vdw02 wrap" 1e-9 0.0 alpha.(find "vdw(0,2)");
  check_close "det0 = alpha4" 1e-9 1.0 alpha.(find "detuning(0)");
  check_close "det1 = alpha5" 1e-9 2.0 alpha.(find "detuning(1)");
  check_close "det2 = alpha6" 1e-9 1.0 alpha.(find "detuning(2)");
  check_close "rabi cos" 1e-9 1.0 alpha.(find "rabi-cos(1)");
  check_close "rabi sin" 1e-9 0.0 alpha.(find "rabi-sin(1)")

let test_linear_system_greedy_matches_dense () =
  let ryd = Rydberg.build ~spec:Device.aquila_paper ~n:5 in
  let channels = Aais.channels ryd.Rydberg.aais in
  let ls = Linear_system.build ~channels ~target:(ising_chain 5) ~t_tar:1.0 in
  let greedy = Linear_system.solve ls in
  let dense = Linear_system.solve_dense ls in
  Alcotest.(check bool) "same solution" true
    (Qturbo_util.Float_cmp.approx_array ~rtol:1e-6 ~atol:1e-8
       greedy.Qturbo_linalg.Sparse_solve.x dense.Qturbo_linalg.Sparse_solve.x)

let test_linear_system_b_tar_scales_with_time () =
  let ryd = rydberg3 () in
  let channels = Aais.channels ryd.Rydberg.aais in
  let ls1 = Linear_system.build ~channels ~target:(ising_chain 3) ~t_tar:1.0 in
  let ls2 = Linear_system.build ~channels ~target:(ising_chain 3) ~t_tar:2.5 in
  Array.iteri
    (fun i b -> check_close "scaled" 1e-12 (2.5 *. b) ls2.Linear_system.b_tar.(i))
    ls1.Linear_system.b_tar

let test_linear_system_residual_metric () =
  let ryd = rydberg3 () in
  let channels = Aais.channels ryd.Rydberg.aais in
  let ls = Linear_system.build ~channels ~target:(ising_chain 3) ~t_tar:1.0 in
  let sol = Linear_system.solve ls in
  check_close "residual of solution" 1e-9 0.0
    (Linear_system.residual_l1 ls ~alpha:sol.Qturbo_linalg.Sparse_solve.x);
  let zero = Array.make ls.Linear_system.n_channels 0.0 in
  check_close "residual of zero = ||B||" 1e-9
    (Array.fold_left (fun acc b -> acc +. Float.abs b) 0.0 ls.Linear_system.b_tar)
    (Linear_system.residual_l1 ls ~alpha:zero)

(* ---- Locality ---- *)

let test_locality_components_rydberg () =
  let ryd = rydberg3 () in
  let channels = Aais.channels ryd.Rydberg.aais in
  let comps =
    Locality.decompose ~channels ~n_vars:(Variable.count ryd.Rydberg.aais.Aais.pool)
  in
  (* positions (3 vdW channels), 3 detunings, 3 rabi pairs = 7 components *)
  Alcotest.(check int) "components" 7 (List.length comps);
  let sizes = List.map (fun c -> List.length c.Locality.channel_ids) comps in
  Alcotest.(check int) "vdW grouped" 3 (List.fold_left Int.max 0 sizes)

let test_locality_global_control_merges () =
  let spec = Device.with_control Device.Global Device.aquila_paper in
  let ryd = Rydberg.build ~spec ~n:4 in
  let channels = Aais.channels ryd.Rydberg.aais in
  let comps =
    Locality.decompose ~channels ~n_vars:(Variable.count ryd.Rydberg.aais.Aais.pool)
  in
  (* positions + one shared detuning + one shared rabi = 3 components *)
  Alcotest.(check int) "three components" 3 (List.length comps)

let test_locality_partition () =
  let ryd = Rydberg.build ~spec:Device.aquila ~n:6 in
  let channels = Aais.channels ryd.Rydberg.aais in
  let n_vars = Variable.count ryd.Rydberg.aais.Aais.pool in
  let comps = Locality.decompose ~channels ~n_vars in
  let all_channels = List.concat_map (fun c -> c.Locality.channel_ids) comps in
  Alcotest.(check int) "channels partitioned" (Array.length channels)
    (List.length (List.sort_uniq Int.compare all_channels))

let test_component_of_channel () =
  let ryd = rydberg3 () in
  let channels = Aais.channels ryd.Rydberg.aais in
  let comps = Locality.decompose ~channels ~n_vars:(Variable.count ryd.Rydberg.aais.Aais.pool) in
  let comp = Locality.component_of_channel comps 0 in
  Alcotest.(check bool) "contains channel" true (List.mem 0 comp.Locality.channel_ids)

(* ---- Local_solver ---- *)

let classified ryd =
  let channels = Aais.channels ryd.Rydberg.aais in
  let vars = Aais.variables ryd.Rydberg.aais in
  let comps = Locality.decompose ~channels ~n_vars:(Array.length vars) in
  (channels, vars, comps, List.map (Local_solver.classify ~vars ~channels) comps)

let test_classification_names () =
  let ryd = rydberg3 () in
  let _, _, _, classes = classified ryd in
  let count pred = List.length (List.filter pred classes) in
  Alcotest.(check int) "one fixed" 1
    (count (function Local_solver.Fixed_vars -> true | _ -> false));
  Alcotest.(check int) "three linear" 3
    (count (function Local_solver.Linear _ -> true | _ -> false));
  Alcotest.(check int) "three polar" 3
    (count (function Local_solver.Polar _ -> true | _ -> false))

let test_min_time_detuning_case1 () =
  (* paper §5.1 Case 1: Δ/2 · T = 1 with Δ_max = 20 MHz → T = 0.1 µs *)
  let ryd = rydberg3 () in
  let channels, vars, comps, classes = classified ryd in
  let ls = Linear_system.build ~channels ~target:(ising_chain 3) ~t_tar:1.0 in
  let alpha = (Linear_system.solve ls).Qturbo_linalg.Sparse_solve.x in
  let times =
    List.map2
      (fun comp cls -> Local_solver.min_time ~vars ~channels ~alpha comp cls)
      comps classes
  in
  let sorted = List.sort Float.compare times in
  (match sorted with
  | t_fixed :: rest ->
      check_close "fixed component unconstrained" 1e-12 0.0 t_fixed;
      (match List.sort Float.compare rest with
      | [ a; b; c; d; e; f ] ->
          check_close "det fastest" 1e-9 0.1 a;
          check_close "det 2" 1e-9 0.1 b;
          check_close "det middle (alpha=2)" 1e-9 0.2 c;
          check_close "rabi 1" 1e-9 0.8 d;
          check_close "rabi 2" 1e-9 0.8 e;
          check_close "rabi 3 (bottleneck, paper Case 2)" 1e-9 0.8 f
      | _ -> Alcotest.fail "expected six dynamic components")
  | [] -> Alcotest.fail "no components")

let test_solve_at_detuning () =
  let ryd = rydberg3 () in
  let channels, vars, comps, classes = classified ryd in
  let ls = Linear_system.build ~channels ~target:(ising_chain 3) ~t_tar:1.0 in
  let alpha = (Linear_system.solve ls).Qturbo_linalg.Sparse_solve.x in
  List.iter2
    (fun comp cls ->
      match cls with
      | Local_solver.Linear { var; _ } ->
          let { Local_solver.assignments; eps2 } =
            Local_solver.solve_at ~vars ~channels ~alpha ~t_sim:0.8 comp cls
          in
          check_close "eps2" 1e-9 0.0 eps2;
          (match assignments with
          | [ (v, value) ] ->
              Alcotest.(check int) "assigns its var" var v;
              (* Δ = 2 α / T: either 2.5 (α=1) or 5.0 (α=2) *)
              Alcotest.(check bool) "value plausible" true
                (Float.abs (value -. 2.5) < 1e-6 || Float.abs (value -. 5.0) < 1e-6)
          | _ -> Alcotest.fail "single assignment expected")
      | Local_solver.Polar _ | Local_solver.Fixed_vars
      | Local_solver.Const_channels | Local_solver.Generic ->
          ())
    comps classes

let test_solve_at_polar () =
  let ryd = rydberg3 () in
  let channels, vars, comps, classes = classified ryd in
  let ls = Linear_system.build ~channels ~target:(ising_chain 3) ~t_tar:1.0 in
  let alpha = (Linear_system.solve ls).Qturbo_linalg.Sparse_solve.x in
  List.iter2
    (fun comp cls ->
      match cls with
      | Local_solver.Polar { amp; phase; _ } ->
          let { Local_solver.assignments; eps2 } =
            Local_solver.solve_at ~vars ~channels ~alpha ~t_sim:0.8 comp cls
          in
          check_close "polar exact" 1e-9 0.0 eps2;
          let lookup v = List.assoc v assignments in
          check_close "omega = 2.5 at bottleneck" 1e-6 2.5 (lookup amp);
          check_close "phi = 0" 1e-9 0.0 (lookup phase)
      | Local_solver.Linear _ | Local_solver.Fixed_vars
      | Local_solver.Const_channels | Local_solver.Generic ->
          ())
    comps classes

let test_solve_at_clamps_out_of_bounds () =
  (* at T shorter than feasible the detuning must clamp to its bound and
     report nonzero eps2 *)
  let ryd = rydberg3 () in
  let channels, vars, comps, classes = classified ryd in
  let ls = Linear_system.build ~channels ~target:(ising_chain 3) ~t_tar:1.0 in
  let alpha = (Linear_system.solve ls).Qturbo_linalg.Sparse_solve.x in
  let total_eps = ref 0.0 in
  List.iter2
    (fun comp cls ->
      match cls with
      | Local_solver.Linear _ ->
          let { Local_solver.eps2; assignments } =
            Local_solver.solve_at ~vars ~channels ~alpha ~t_sim:0.01 comp cls
          in
          List.iter
            (fun (v, value) ->
              Alcotest.(check bool) "in bounds" true
                (Qturbo_optim.Bounds.contains vars.(v).Variable.bound value))
            assignments;
          total_eps := !total_eps +. eps2
      | Local_solver.Polar _ | Local_solver.Fixed_vars
      | Local_solver.Const_channels | Local_solver.Generic ->
          ())
    comps classes;
  Alcotest.(check bool) "clamping reported" true (!total_eps > 0.1)

let test_generic_solver_case3 () =
  (* paper §5.1 Case 3: cos(φ)·T = 1 has no time-critical variable; the
     generic path must find T = 1 with φ = 0 *)
  let pool = Variable.create_pool () in
  let phi =
    Variable.fresh pool ~name:"phi" ~kind:Variable.Runtime_dynamic
      ~lo:(-.Float.pi) ~hi:Float.pi ~init:0.3 ()
  in
  let channel =
    Instruction.channel ~cid:0 ~label:"cos-only"
      ~expr:Expr.(Cos (Var phi.Variable.id))
      ~effects:[ { Instruction.pstring = Pauli_string.single 0 Pauli.X; coeff = 1.0 } ]
      ~hint:Instruction.Hint_generic
  in
  let channels = [| channel |] in
  let vars = Variable.all pool in
  let comps = Locality.decompose ~channels ~n_vars:1 in
  match comps with
  | [ comp ] ->
      let cls = Local_solver.classify ~vars ~channels comp in
      Alcotest.(check bool) "generic" true (cls = Local_solver.Generic);
      let alpha = [| 1.0 |] in
      let t = Local_solver.min_time ~vars ~channels ~alpha comp cls in
      check_close "T = 1" 1e-3 1.0 t;
      let { Local_solver.assignments; eps2 } =
        Local_solver.solve_at ~vars ~channels ~alpha ~t_sim:1.001 comp cls
      in
      Alcotest.(check bool) "small residual" true (eps2 < 1e-3);
      (match assignments with
      | [ (_, phi_val) ] ->
          Alcotest.(check bool) "phi near zero" true (Float.abs phi_val < 0.1)
      | _ -> Alcotest.fail "one assignment expected")
  | _ -> Alcotest.fail "one component expected"

let test_const_component () =
  (* a constant channel pins T directly *)
  let channel =
    Instruction.channel ~cid:0 ~label:"const"
      ~expr:(Expr.Const 2.0)
      ~effects:[ { Instruction.pstring = Pauli_string.single 0 Pauli.Z; coeff = 1.0 } ]
      ~hint:Instruction.Hint_generic
  in
  let channels = [| channel |] in
  let vars = [||] in
  let comps = Locality.decompose ~channels ~n_vars:0 in
  match comps with
  | [ comp ] ->
      let cls = Local_solver.classify ~vars ~channels comp in
      Alcotest.(check bool) "const" true (cls = Local_solver.Const_channels);
      check_close "T = alpha / k" 1e-12 3.0
        (Local_solver.min_time ~vars ~channels ~alpha:[| 6.0 |] comp cls)
  | _ -> Alcotest.fail "one component expected"

(* ---- Fixed_solver ---- *)

let test_fixed_solver_positions () =
  let ryd = rydberg3 () in
  let channels, vars, comps, classes = classified ryd in
  let ls = Linear_system.build ~channels ~target:(ising_chain 3) ~t_tar:1.0 in
  let alpha = (Linear_system.solve ls).Qturbo_linalg.Sparse_solve.x in
  List.iter2
    (fun comp cls ->
      match cls with
      | Local_solver.Fixed_vars ->
          let { Fixed_solver.assignments; eps2 } =
            Fixed_solver.solve ~vars ~channels ~alpha ~t_sim:0.8 comp
          in
          Alcotest.(check bool) "small residual" true (eps2 < 0.05);
          let lookup v = List.assoc v.Variable.id assignments in
          check_close "x0 pinned" 1e-9 0.0 (lookup ryd.Rydberg.xs.(0));
          check_close "x1 = 7.46" 0.05 7.4614 (Float.abs (lookup ryd.Rydberg.xs.(1)));
          check_close "x2 = 14.92" 0.1 14.9229 (Float.abs (lookup ryd.Rydberg.xs.(2)))
      | Local_solver.Linear _ | Local_solver.Polar _
      | Local_solver.Const_channels | Local_solver.Generic ->
          ())
    comps classes

let test_fixed_solver_rejects_bad_time () =
  let ryd = rydberg3 () in
  let channels, vars, comps, _ = classified ryd in
  match comps with
  | comp :: _ ->
      Alcotest.check_raises "t<=0"
        (Invalid_argument
           (Printf.sprintf "Fixed_solver.solve: t_sim <= 0 (component %d)"
              comp.Locality.id))
        (fun () ->
          ignore
            (Fixed_solver.solve ~vars ~channels
               ~alpha:(Array.make (Array.length channels) 0.0)
               ~t_sim:0.0 comp))
  | [] -> Alcotest.fail "no components"

(* ---- Compiler ---- *)

let compile_ising3 ?options () =
  let ryd = rydberg3 () in
  (ryd, Compiler.compile ?options ~aais:ryd.Rydberg.aais ~target:(ising_chain 3) ~t_tar:1.0 ())

let test_compiler_worked_example () =
  let ryd, r = compile_ising3 () in
  check_close "T_sim" 1e-9 0.8 r.Compiler.t_sim;
  let env = r.Compiler.env in
  check_close "omega" 1e-6 2.5 env.(ryd.Rydberg.omegas.(0).Variable.id);
  check_close "phi" 1e-9 0.0 env.(ryd.Rydberg.phis.(0).Variable.id);
  (* middle detuning 5 MHz, outer about 2.5 (refined slightly above) *)
  check_close "delta middle" 0.02 5.0 env.(ryd.Rydberg.deltas.(1).Variable.id);
  Alcotest.(check bool) "delta outer refined upward" true
    (let d = env.(ryd.Rydberg.deltas.(0).Variable.id) in
     d >= 2.5 && d <= 2.6);
  Alcotest.(check bool) "relative error below 1%" true (r.Compiler.relative_error < 1.0);
  Alcotest.(check (list string)) "no warnings" [] r.Compiler.warnings

let test_compiler_theorem1_bound () =
  let _, r = compile_ising3 () in
  Alcotest.(check bool) "bound dominates error" true
    (r.Compiler.theorem1_bound >= r.Compiler.error_l1 -. 1e-9)

let test_compiler_refine_improves () =
  let options = { Compiler.default_options with Compiler.refine = false } in
  let _, r_plain = compile_ising3 ~options () in
  let _, r_refined = compile_ising3 () in
  Alcotest.(check bool) "refinement reduces error" true
    (r_refined.Compiler.error_l1 <= r_plain.Compiler.error_l1 +. 1e-12)

let test_compiler_time_opt_ablation () =
  let options = { Compiler.default_options with Compiler.time_opt = false } in
  let _, r_no = compile_ising3 ~options () in
  let _, r_yes = compile_ising3 () in
  Alcotest.(check bool) "padded time longer" true
    (r_no.Compiler.t_sim > r_yes.Compiler.t_sim *. 2.0)

let test_compiler_generic_local_ablation_same_answer () =
  (* the generic LM+bisection path must agree with the analytic patterns *)
  let options =
    { Compiler.default_options with Compiler.generic_local_solver = true }
  in
  let _, r_generic = compile_ising3 ~options () in
  let _, r_analytic = compile_ising3 () in
  check_close "same T" 1e-3 r_analytic.Compiler.t_sim r_generic.Compiler.t_sim;
  Alcotest.(check bool) "similar error" true
    (Float.abs (r_generic.Compiler.error_l1 -. r_analytic.Compiler.error_l1) < 0.01)

let test_compiler_dense_ablation_same_answer () =
  let options = { Compiler.default_options with Compiler.dense_linear_solver = true } in
  let _, r_dense = compile_ising3 ~options () in
  let _, r_greedy = compile_ising3 () in
  check_close "same T" 1e-9 r_greedy.Compiler.t_sim r_dense.Compiler.t_sim;
  check_close "same error" 1e-6 r_greedy.Compiler.error_l1 r_dense.Compiler.error_l1

let test_compiler_t_tar_scales () =
  let ryd = rydberg3 () in
  let r2 =
    Compiler.compile ~aais:ryd.Rydberg.aais ~target:(ising_chain 3) ~t_tar:2.0 ()
  in
  (* doubling the target evolution doubles the bottleneck time *)
  check_close "T doubles" 1e-9 1.6 r2.Compiler.t_sim

let test_compiler_rejects_bad_input () =
  let ryd = rydberg3 () in
  Alcotest.check_raises "t_tar" (Invalid_argument "Compiler.compile: t_tar <= 0")
    (fun () ->
      ignore (Compiler.compile ~aais:ryd.Rydberg.aais ~target:(ising_chain 3) ~t_tar:0.0 ()));
  Alcotest.check_raises "too many qubits"
    (Invalid_argument "Compiler.compile: target touches qubits outside the AAIS")
    (fun () ->
      ignore (Compiler.compile ~aais:ryd.Rydberg.aais ~target:(ising_chain 5) ~t_tar:1.0 ()))

let test_compiler_unreachable_term_warns_in_error () =
  (* a YY term is outside the Rydberg AAIS span: strict compilation
     rejects it before any solver; non-strict keeps the historical
     least-squares behaviour and carries the diagnostic on the result *)
  let ryd = rydberg3 () in
  let target =
    Pauli_sum.add (ising_chain 3)
      (Pauli_sum.term 1.0 (Pauli_string.two 0 Pauli.Y 1 Pauli.Y))
  in
  (match Compiler.compile ~aais:ryd.Rydberg.aais ~target ~t_tar:1.0 () with
  | exception Qturbo_analysis.Diagnostic.Rejected ds ->
      Alcotest.(check bool) "QT001 reported" true
        (List.exists (fun d -> d.Qturbo_analysis.Diagnostic.code = "QT001") ds)
  | _ -> Alcotest.fail "strict compile should reject the YY term");
  let r =
    Compiler.compile ~strict:false ~aais:ryd.Rydberg.aais ~target ~t_tar:1.0 ()
  in
  Alcotest.(check bool) "unreachable term penalised" true (r.Compiler.error_l1 >= 1.0);
  Alcotest.(check bool) "diagnostic carried on the result" true
    (List.exists
       (fun d -> d.Qturbo_analysis.Diagnostic.code = "QT001")
       r.Compiler.diagnostics)

let test_compiler_heisenberg_exact () =
  let heis = Heisenberg.build ~spec:Device.heisenberg_default ~n:4 in
  let target =
    Qturbo_models.Model.hamiltonian_at
      (Qturbo_models.Benchmarks.heisenberg_chain ~n:4 ()) ~s:0.0
  in
  let r = Compiler.compile ~aais:heis.Heisenberg.aais ~target ~t_tar:1.0 () in
  check_close "exact compilation" 1e-9 0.0 r.Compiler.relative_error;
  (* bottleneck: two-qubit couplings with bound 1.0 need J·T/bound = 1 µs *)
  check_close "T from two-qubit bound" 1e-9 1.0 r.Compiler.t_sim

let test_compiler_heisenberg_hamiltonian_roundtrip () =
  (* the compiled simulator Hamiltonian times T equals the target times
     t_tar exactly on the Heisenberg AAIS *)
  let heis = Heisenberg.build ~spec:Device.heisenberg_default ~n:3 in
  let target =
    Qturbo_models.Model.hamiltonian_at (Qturbo_models.Benchmarks.kitaev ~n:3 ()) ~s:0.0
  in
  let t_tar = 1.0 in
  let r = Compiler.compile ~aais:heis.Heisenberg.aais ~target ~t_tar () in
  let h_sim = Heisenberg.hamiltonian heis ~env:r.Compiler.env in
  let lhs = Pauli_sum.scale r.Compiler.t_sim h_sim in
  let rhs = Pauli_sum.scale t_tar (Pauli_sum.drop_identity target) in
  Alcotest.(check bool) "H_sim * T_sim = H_tar * T_tar" true
    (Pauli_sum.equal ~tol:1e-9 lhs rhs)

let test_compiler_constraint_iteration () =
  (* a tiny max-extent forces the layout iteration to stretch T *)
  let spec = { Device.aquila_paper with Device.max_extent = 12.0 } in
  let ryd = Rydberg.build ~spec ~n:3 in
  let r = Compiler.compile ~aais:ryd.Rydberg.aais ~target:(ising_chain 3) ~t_tar:1.0 () in
  (* atoms must pack within 12 µm: stronger coupling, so T can stay at the
     bottleneck only if the layout fits; either way the result respects
     the constraint or reports it *)
  let positions = Rydberg.positions ryd ~env:r.Compiler.env in
  let violations = Rydberg.check_layout ~spec positions in
  Alcotest.(check bool) "fits or warns" true
    (violations = [] || r.Compiler.warnings <> [])

(* ---- Mapping ---- *)

let test_mapping_identity_inverse () =
  let m = Mapping.identity ~n:5 in
  Alcotest.(check (array int)) "inverse of identity" m (Mapping.inverse m)

let test_mapping_validates () =
  Alcotest.(check bool) "perm" true (Mapping.is_permutation [| 2; 0; 1 |]);
  Alcotest.(check bool) "dup" false (Mapping.is_permutation [| 0; 0 |]);
  Alcotest.check_raises "of_array" (Invalid_argument "Mapping.of_array: not a permutation")
    (fun () -> ignore (Mapping.of_array [| 1; 1 |]))

let test_mapping_greedy_unshuffles_chain () =
  (* chain 0-1-2-3 relabelled as 2-0-3-1: greedy BFS must recover a chain
     order so the mapped Hamiltonian has nearest-neighbour couplings *)
  let shuffled =
    Pauli_sum.of_list
      [
        (Pauli_string.two 2 Pauli.Z 0 Pauli.Z, 1.0);
        (Pauli_string.two 0 Pauli.Z 3 Pauli.Z, 1.0);
        (Pauli_string.two 3 Pauli.Z 1 Pauli.Z, 1.0);
      ]
  in
  let m = Mapping.greedy_chain ~target:shuffled ~n:4 in
  let mapped = Mapping.apply m shuffled in
  List.iter
    (fun (s, _) ->
      match Pauli_string.support s with
      | [ i; j ] ->
          Alcotest.(check int) "adjacent after mapping" 1 (abs (i - j))
      | _ -> Alcotest.fail "pair expected")
    (Pauli_sum.terms mapped)

let test_mapping_apply_preserves_coeffs () =
  let h = ising_chain 4 in
  let m = Mapping.of_array [| 3; 1; 0; 2 |] in
  let mapped = Mapping.apply m h in
  Alcotest.(check (float 1e-12)) "norm preserved" (Pauli_sum.norm1 h)
    (Pauli_sum.norm1 mapped);
  Alcotest.(check (float 1e-12)) "zz relocated" 1.0
    (Pauli_sum.coeff mapped (Pauli_string.two 3 Pauli.Z 1 Pauli.Z))

(* ---- Td_compiler ---- *)

let test_td_static_matches_compiler () =
  (* a static model through the TD driver with one segment behaves like
     the plain compiler *)
  let ryd = rydberg3 () in
  let model = Qturbo_models.Benchmarks.ising_chain ~n:3 () in
  let td =
    Td_compiler.compile ~aais:ryd.Rydberg.aais ~model ~t_tar:1.0 ~segments:1 ()
  in
  check_close "same T" 1e-3 0.8 td.Td_compiler.t_sim;
  Alcotest.(check int) "one segment" 1 (List.length td.Td_compiler.segments)

let test_td_mis_chain () =
  let spec = { Device.aquila_paper with Device.max_extent = 1e6 } in
  let ryd = Rydberg.build ~spec ~n:4 in
  let model = Qturbo_models.Benchmarks.mis_chain ~n:4 () in
  let td =
    Td_compiler.compile ~aais:ryd.Rydberg.aais ~model ~t_tar:1.0 ~segments:4 ()
  in
  Alcotest.(check int) "four segments" 4 (List.length td.Td_compiler.segments);
  Alcotest.(check bool) "reasonable error" true (td.Td_compiler.relative_error < 10.0);
  (* fixed layout shared: all segments agree on positions *)
  (match td.Td_compiler.segments with
  | first :: rest ->
      let pos env = Rydberg.positions ryd ~env in
      let p0 = pos first.Td_compiler.env in
      List.iter
        (fun (seg : Td_compiler.segment_result) ->
          let p = pos seg.Td_compiler.env in
          Array.iteri
            (fun i (x, y) ->
              let x', y' = p.(i) in
              check_close "shared x" 1e-9 x x';
              check_close "shared y" 1e-9 y y')
            p0)
        rest
  | [] -> Alcotest.fail "no segments");
  Alcotest.(check bool) "total time = sum of segments" true
    (Float.abs
       (td.Td_compiler.t_sim
       -. List.fold_left
            (fun acc (s : Td_compiler.segment_result) -> acc +. s.Td_compiler.duration)
            0.0 td.Td_compiler.segments)
    < 1e-9)

let test_td_rejects_bad_args () =
  let ryd = rydberg3 () in
  let model = Qturbo_models.Benchmarks.ising_chain ~n:3 () in
  let expect_qt016 name f =
    match f () with
    | exception Qturbo_analysis.Diagnostic.Rejected [ d ] ->
        Alcotest.(check string) (name ^ " code") "QT016" d.Qturbo_analysis.Diagnostic.code
    | exception e ->
        Alcotest.failf "%s: expected Rejected [QT016], got %s" name
          (Printexc.to_string e)
    | _ -> Alcotest.failf "%s: expected Rejected [QT016], got a result" name
  in
  expect_qt016 "segments = 0" (fun () ->
      Td_compiler.compile ~aais:ryd.Rydberg.aais ~model ~t_tar:1.0 ~segments:0 ());
  expect_qt016 "segments < 0" (fun () ->
      Td_compiler.compile ~aais:ryd.Rydberg.aais ~model ~t_tar:1.0 ~segments:(-3) ());
  expect_qt016 "nan t_tar" (fun () ->
      Td_compiler.compile ~aais:ryd.Rydberg.aais ~model ~t_tar:Float.nan ~segments:2 ());
  expect_qt016 "infinite t_tar" (fun () ->
      Td_compiler.compile ~aais:ryd.Rydberg.aais ~model ~t_tar:Float.infinity ~segments:2 ());
  (* the finite-nonpositive message is unchanged — callers pin it *)
  Alcotest.check_raises "t_tar" (Invalid_argument "Td_compiler.compile: t_tar <= 0")
    (fun () ->
      ignore (Td_compiler.compile ~aais:ryd.Rydberg.aais ~model ~t_tar:0.0 ~segments:2 ()))

(* ---- Extract ---- *)

let test_extract_rydberg_pulse () =
  let ryd, r = compile_ising3 () in
  let pulse = Extract.rydberg_pulse ryd ~env:r.Compiler.env ~t_sim:r.Compiler.t_sim in
  Alcotest.(check (list string)) "executable" [] (Pulse.within_limits pulse);
  check_close "duration" 1e-9 0.8 (Pulse.rydberg_duration pulse);
  Alcotest.(check int) "atoms" 3 (Array.length pulse.Pulse.positions)

let test_extract_heisenberg_pulse () =
  let heis = Heisenberg.build ~spec:Device.heisenberg_default ~n:3 in
  let target = ising_chain 3 in
  let r = Compiler.compile ~aais:heis.Heisenberg.aais ~target ~t_tar:1.0 () in
  let pulse = Extract.heisenberg_pulse heis ~env:r.Compiler.env ~t_sim:r.Compiler.t_sim in
  match Pulse.heisenberg_segment_hamiltonians pulse with
  | [ (h, t) ] ->
      Alcotest.(check bool) "implements the target" true
        (Pauli_sum.equal ~tol:1e-9 (Pauli_sum.scale t h)
           (Pauli_sum.drop_identity target))
  | _ -> Alcotest.fail "one segment expected"

(* ---- qcheck ---- *)

let prop_compiler_error_bounded_by_theorem1 =
  QCheck.Test.make ~name:"Theorem 1 bound holds across sizes" ~count:8
    QCheck.(int_range 3 10) (fun n ->
      let spec = { Device.aquila_paper with Device.max_extent = 1e6 } in
      let ryd = Rydberg.build ~spec ~n in
      let r = Compiler.compile ~aais:ryd.Rydberg.aais ~target:(ising_chain n) ~t_tar:1.0 () in
      r.Compiler.theorem1_bound >= r.Compiler.error_l1 -. 1e-9)

let prop_compiled_pulse_within_limits =
  QCheck.Test.make ~name:"compiled pulses respect dynamic device limits" ~count:8
    QCheck.(int_range 3 10) (fun n ->
      let spec = { Device.aquila_paper with Device.max_extent = 1e6 } in
      let ryd = Rydberg.build ~spec ~n in
      let r = Compiler.compile ~aais:ryd.Rydberg.aais ~target:(ising_chain n) ~t_tar:1.0 () in
      let pulse = Extract.rydberg_pulse ryd ~env:r.Compiler.env ~t_sim:r.Compiler.t_sim in
      (* the relaxed-extent spec leaves only amplitude/time limits *)
      List.for_all
        (fun v -> String.length v < 7 || String.sub v 0 6 <> "segmen")
        (Pulse.within_limits pulse))

let () =
  Alcotest.run "core"
    [
      ( "term_index",
        [
          Alcotest.test_case "rows" `Quick test_term_index_rows;
          Alcotest.test_case "bijective" `Quick test_term_index_bijective;
        ] );
      ( "linear_system",
        [
          Alcotest.test_case "worked example (§4.1)" `Quick test_linear_system_worked_example;
          Alcotest.test_case "greedy matches dense" `Quick test_linear_system_greedy_matches_dense;
          Alcotest.test_case "B scales with t_tar" `Quick test_linear_system_b_tar_scales_with_time;
          Alcotest.test_case "residual metric" `Quick test_linear_system_residual_metric;
        ] );
      ( "locality",
        [
          Alcotest.test_case "rydberg components" `Quick test_locality_components_rydberg;
          Alcotest.test_case "global control merges" `Quick test_locality_global_control_merges;
          Alcotest.test_case "partition" `Quick test_locality_partition;
          Alcotest.test_case "lookup" `Quick test_component_of_channel;
        ] );
      ( "local_solver",
        [
          Alcotest.test_case "classification" `Quick test_classification_names;
          Alcotest.test_case "min times (§5.1 cases)" `Quick test_min_time_detuning_case1;
          Alcotest.test_case "detuning solve" `Quick test_solve_at_detuning;
          Alcotest.test_case "polar solve" `Quick test_solve_at_polar;
          Alcotest.test_case "clamping" `Quick test_solve_at_clamps_out_of_bounds;
          Alcotest.test_case "generic Case 3" `Quick test_generic_solver_case3;
          Alcotest.test_case "const component" `Quick test_const_component;
        ] );
      ( "fixed_solver",
        [
          Alcotest.test_case "positions (§5.2)" `Quick test_fixed_solver_positions;
          Alcotest.test_case "bad time" `Quick test_fixed_solver_rejects_bad_time;
        ] );
      ( "compiler",
        [
          Alcotest.test_case "worked example end-to-end" `Quick test_compiler_worked_example;
          Alcotest.test_case "theorem 1 bound" `Quick test_compiler_theorem1_bound;
          Alcotest.test_case "refinement improves" `Quick test_compiler_refine_improves;
          Alcotest.test_case "time-opt ablation" `Quick test_compiler_time_opt_ablation;
          Alcotest.test_case "dense-solver ablation" `Quick test_compiler_dense_ablation_same_answer;
          Alcotest.test_case "generic-local ablation" `Quick
            test_compiler_generic_local_ablation_same_answer;
          Alcotest.test_case "t_tar scaling" `Quick test_compiler_t_tar_scales;
          Alcotest.test_case "input validation" `Quick test_compiler_rejects_bad_input;
          Alcotest.test_case "unreachable terms" `Quick test_compiler_unreachable_term_warns_in_error;
          Alcotest.test_case "heisenberg exact" `Quick test_compiler_heisenberg_exact;
          Alcotest.test_case "heisenberg roundtrip" `Quick test_compiler_heisenberg_hamiltonian_roundtrip;
          Alcotest.test_case "constraint iteration" `Quick test_compiler_constraint_iteration;
        ] );
      ( "mapping",
        [
          Alcotest.test_case "identity" `Quick test_mapping_identity_inverse;
          Alcotest.test_case "validation" `Quick test_mapping_validates;
          Alcotest.test_case "greedy unshuffles" `Quick test_mapping_greedy_unshuffles_chain;
          Alcotest.test_case "coefficients preserved" `Quick test_mapping_apply_preserves_coeffs;
        ] );
      ( "td_compiler",
        [
          Alcotest.test_case "static single segment" `Quick test_td_static_matches_compiler;
          Alcotest.test_case "mis chain" `Quick test_td_mis_chain;
          Alcotest.test_case "validation" `Quick test_td_rejects_bad_args;
        ] );
      ( "extract",
        [
          Alcotest.test_case "rydberg pulse" `Quick test_extract_rydberg_pulse;
          Alcotest.test_case "heisenberg pulse" `Quick test_extract_heisenberg_pulse;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_compiler_error_bounded_by_theorem1; prop_compiled_pulse_within_limits ]
      );
    ]
