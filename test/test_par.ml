(* Tests for qturbo.par and the parallel compile pipeline: pool
   primitives agree with their sequential loops (values, order,
   exceptions), compiled Expr kernels are bitwise-identical to the
   interpreter, and Compiler/Td_compiler output does not depend on the
   domain count. *)

open Qturbo_par

let bits = Int64.bits_of_float

let check_bits_array msg a b =
  Alcotest.(check int) (msg ^ ": length") (Array.length a) (Array.length b);
  Array.iteri
    (fun i x ->
      if not (Int64.equal (bits x) (bits b.(i))) then
        Alcotest.failf "%s: index %d differs: %h vs %h" msg i x b.(i))
    a

(* ---- Pool primitives ---- *)

let test_map_matches_sequential () =
  let input = Array.init 1000 (fun i -> float_of_int (i - 500) /. 7.0) in
  let f x = sin x /. (1.0 +. (x *. x)) in
  let expected = Array.map f input in
  List.iter
    (fun domains ->
      let got = Pool.parallel_map ~domains f input in
      check_bits_array (Printf.sprintf "domains=%d" domains) expected got)
    [ 1; 2; 4; 8 ]

let test_for_disjoint_writes () =
  let n = 777 in
  let out = Array.make n 0.0 in
  Pool.parallel_for ~domains:4 ~chunk:13 ~total:n (fun i ->
      out.(i) <- sqrt (float_of_int i));
  Array.iteri
    (fun i x ->
      if not (Int64.equal (bits x) (bits (sqrt (float_of_int i)))) then
        Alcotest.failf "index %d wrong" i)
    out

let test_exception_smallest_index () =
  (* every index >= 30 fails; the caller must see index 30's exception,
     exactly what a sequential loop raises first *)
  List.iter
    (fun domains ->
      match
        Pool.parallel_for ~domains ~chunk:7 ~total:100 (fun i ->
            if i >= 30 then failwith (string_of_int i))
      with
      | () -> Alcotest.fail "expected an exception"
      | exception Failure msg ->
          Alcotest.(check string)
            (Printf.sprintf "domains=%d" domains)
            "30" msg)
    [ 1; 4 ]

let test_nested_goes_sequential () =
  (* a task that itself calls the pool must not deadlock; results still
     match the flat computation *)
  let expected =
    Array.init 6 (fun i ->
        Array.init 50 (fun j -> float_of_int ((i * 50) + j) ** 1.5))
  in
  let got =
    Pool.parallel_map ~domains:4 ~chunk:1
      (fun i ->
        Pool.parallel_map ~domains:4
          (fun j -> float_of_int ((i * 50) + j) ** 1.5)
          (Array.init 50 Fun.id))
      (Array.init 6 Fun.id)
  in
  Array.iteri (fun i row -> check_bits_array "nested row" expected.(i) row) got

let test_reduce_order () =
  (* the fold runs sequentially in index order: float rounding must be
     identical to the plain fold_left *)
  let input = Array.init 500 (fun i -> 1.0 /. float_of_int (i + 1)) in
  let map x = x *. 3.0 in
  let expected = Array.fold_left (fun acc x -> acc +. map x) 0.1 input in
  List.iter
    (fun domains ->
      let got =
        Pool.parallel_reduce ~domains ~map ~fold:(fun acc x -> acc +. x)
          ~init:0.1 input
      in
      if not (Int64.equal (bits expected) (bits got)) then
        Alcotest.failf "domains=%d: %.17g vs %.17g" domains expected got)
    [ 1; 4 ]

let test_default_domains_env () =
  (* QTURBO_DOMAINS is read per call; the test binary runs under the
     CI matrix, so only sanity-check the contract *)
  let d = Pool.default_domains () in
  Alcotest.(check bool) "at least one domain" true (d >= 1);
  Alcotest.(check bool) "not in a worker at top level" false (Pool.in_worker ())

(* ---- compiled kernels ---- *)

let expr_gen =
  let open QCheck.Gen in
  let leaf =
    oneof
      [
        map (fun x -> Qturbo_aais.Expr.Const x) (float_range (-3.0) 3.0);
        map (fun v -> Qturbo_aais.Expr.Var v) (int_range 0 2);
      ]
  in
  fix
    (fun self depth ->
      if depth <= 0 then leaf
      else
        let sub = self (depth - 1) in
        oneof
          [
            leaf;
            map (fun a -> Qturbo_aais.Expr.Neg a) sub;
            map2 (fun a b -> Qturbo_aais.Expr.Add (a, b)) sub sub;
            map2 (fun a b -> Qturbo_aais.Expr.Sub (a, b)) sub sub;
            map2 (fun a b -> Qturbo_aais.Expr.Mul (a, b)) sub sub;
            map2 (fun a b -> Qturbo_aais.Expr.Div (a, b)) sub sub;
            map (fun a -> Qturbo_aais.Expr.Sin a) sub;
            map (fun a -> Qturbo_aais.Expr.Cos a) sub;
            map (fun a -> Qturbo_aais.Expr.Pow_int (a, 2)) sub;
            map (fun a -> Qturbo_aais.Expr.Pow_int (a, 3)) sub;
            map (fun a -> Qturbo_aais.Expr.Pow_int (a, 6)) sub;
            map (fun a -> Qturbo_aais.Expr.Pow_int (a, -1)) sub;
            map (fun a -> Qturbo_aais.Expr.Pow_int (a, -3)) sub;
          ])
    4

let arb_expr_env =
  let open QCheck.Gen in
  let gen =
    expr_gen >>= fun e ->
    list_repeat 3 (float_range (-2.5) 2.5) >>= fun env ->
    return (e, Array.of_list env)
  in
  QCheck.make
    ~print:(fun (e, _) -> Format.asprintf "%a" Qturbo_aais.Expr.pp e)
    gen

let prop_kernel_bitwise =
  QCheck.Test.make ~name:"compiled kernel is bitwise-identical to eval"
    ~count:2000 arb_expr_env
    (fun (e, env) ->
      let v = Qturbo_aais.Expr.eval e ~env in
      let k = Qturbo_aais.Expr.eval_kernel (Qturbo_aais.Expr.compile e) ~env in
      Int64.equal (bits v) (bits k))

let test_kernel_short_env_raises () =
  let e = Qturbo_aais.Expr.Var 5 in
  let k = Qturbo_aais.Expr.compile e in
  let env = [| 1.0; 2.0 |] in
  let raises f =
    match f () with
    | (_ : float) -> false
    | exception Invalid_argument _ -> true
  in
  Alcotest.(check bool) "eval raises" true
    (raises (fun () -> Qturbo_aais.Expr.eval e ~env));
  Alcotest.(check bool) "kernel raises" true
    (raises (fun () -> Qturbo_aais.Expr.eval_kernel k ~env))

let test_kernel_vdw_shape () =
  (* the van-der-Waals channel shape the peephole pass is built for *)
  let open Qturbo_aais.Expr in
  let e =
    Div
      ( Const 215672.0,
        Pow_int
          ( Add (Pow_int (Sub (Var 0, Var 1), 2), Pow_int (Sub (Var 2, Var 1), 2)),
            3 ) )
  in
  let k = compile e in
  Alcotest.(check bool) "fusion shrinks the program" true (kernel_length k <= 6);
  let env = [| 4.5; -1.25; 2.75 |] in
  Alcotest.(check bool) "value matches" true
    (Int64.equal (bits (eval e ~env)) (bits (eval_kernel k ~env)))

(* ---- compile determinism across domain counts ---- *)

let relaxed_line =
  { Qturbo_aais.Device.aquila_paper with Qturbo_aais.Device.max_extent = 2000.0 }

let relaxed_plane =
  Qturbo_aais.Device.with_geometry Qturbo_aais.Device.Plane relaxed_line

let static_target name n =
  Qturbo_pauli.Pauli_sum.drop_identity
    (Qturbo_models.Model.hamiltonian_at
       (Qturbo_models.Benchmarks.by_name ~name ~n)
       ~s:0.0)

let compile_with ~domains ~spec ~name ~n =
  let ryd = Qturbo_aais.Rydberg.build ~spec ~n in
  let options =
    { Qturbo_core.Compiler.default_options with Qturbo_core.Compiler.domains }
  in
  Qturbo_core.Compiler.compile ~options ~aais:ryd.Qturbo_aais.Rydberg.aais
    ~target:(static_target name n) ~t_tar:1.0 ()

let test_compile_determinism () =
  List.iter
    (fun (name, spec, n) ->
      let r1 = compile_with ~domains:1 ~spec ~name ~n in
      let r4 = compile_with ~domains:4 ~spec ~name ~n in
      let msg field = Printf.sprintf "%s n=%d: %s" name n field in
      check_bits_array (msg "env") r1.Qturbo_core.Compiler.env
        r4.Qturbo_core.Compiler.env;
      check_bits_array (msg "alpha_achieved")
        r1.Qturbo_core.Compiler.alpha_achieved
        r4.Qturbo_core.Compiler.alpha_achieved;
      check_bits_array (msg "t_sim/errors")
        [|
          r1.Qturbo_core.Compiler.t_sim;
          r1.Qturbo_core.Compiler.error_l1;
          r1.Qturbo_core.Compiler.eps2_total;
        |]
        [|
          r4.Qturbo_core.Compiler.t_sim;
          r4.Qturbo_core.Compiler.error_l1;
          r4.Qturbo_core.Compiler.eps2_total;
        |])
    [
      ("ising-chain", relaxed_line, 13);
      ("ising-cycle", relaxed_plane, 13);
      ("kitaev", relaxed_line, 12);
    ]

let test_td_compile_determinism () =
  let n = 5 in
  let model = Qturbo_models.Benchmarks.mis_chain ~n () in
  let run domains =
    let ryd = Qturbo_aais.Rydberg.build ~spec:relaxed_line ~n in
    let options =
      { Qturbo_core.Compiler.default_options with Qturbo_core.Compiler.domains }
    in
    Qturbo_core.Td_compiler.compile ~options ~aais:ryd.Qturbo_aais.Rydberg.aais
      ~model ~t_tar:1.0 ~segments:3 ()
  in
  let r1 = run 1 and r4 = run 4 in
  check_bits_array "t_sim/error"
    [| r1.Qturbo_core.Td_compiler.t_sim; r1.Qturbo_core.Td_compiler.error_l1 |]
    [| r4.Qturbo_core.Td_compiler.t_sim; r4.Qturbo_core.Td_compiler.error_l1 |];
  List.iter2
    (fun (s1 : Qturbo_core.Td_compiler.segment_result)
         (s4 : Qturbo_core.Td_compiler.segment_result) ->
      check_bits_array "segment env" s1.Qturbo_core.Td_compiler.env
        s4.Qturbo_core.Td_compiler.env;
      check_bits_array "segment duration"
        [| s1.Qturbo_core.Td_compiler.duration |]
        [| s4.Qturbo_core.Td_compiler.duration |])
    r1.Qturbo_core.Td_compiler.segments r4.Qturbo_core.Td_compiler.segments

let () =
  Alcotest.run "par"
    [
      ( "pool",
        [
          Alcotest.test_case "map matches sequential" `Quick
            test_map_matches_sequential;
          Alcotest.test_case "disjoint writes by index" `Quick
            test_for_disjoint_writes;
          Alcotest.test_case "smallest-index exception" `Quick
            test_exception_smallest_index;
          Alcotest.test_case "nested calls go sequential" `Quick
            test_nested_goes_sequential;
          Alcotest.test_case "reduce keeps fold order" `Quick test_reduce_order;
          Alcotest.test_case "default domains sanity" `Quick
            test_default_domains_env;
        ] );
      ( "kernels",
        [
          QCheck_alcotest.to_alcotest prop_kernel_bitwise;
          Alcotest.test_case "short env raises" `Quick
            test_kernel_short_env_raises;
          Alcotest.test_case "van-der-Waals fusion" `Quick test_kernel_vdw_shape;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "static compile, 1 vs 4 domains" `Quick
            test_compile_determinism;
          Alcotest.test_case "td compile, 1 vs 4 domains" `Quick
            test_td_compile_determinism;
        ] );
    ]
