(* Tests for the SimuQ-style baseline: the global mixed system and the
   multistart compiler, plus the qualitative comparisons the paper makes. *)

open Qturbo_aais
open Qturbo_simuq

let check_close msg tol a b =
  if Float.abs (a -. b) > tol then Alcotest.failf "%s: %.10g vs %.10g" msg a b

let ising_chain n =
  Qturbo_models.Model.hamiltonian_at (Qturbo_models.Benchmarks.ising_chain ~n ()) ~s:0.0

let rydberg n = Rydberg.build ~spec:Device.aquila_paper ~n

(* ---- Global_system ---- *)

let test_global_system_shape () =
  let ryd = rydberg 3 in
  let sys = Global_system.build ~aais:ryd.Rydberg.aais ~target:(ising_chain 3) ~t_tar:1.0 in
  (* 12 variables + T *)
  Alcotest.(check int) "continuous unknowns" 13 (Global_system.n_continuous sys);
  Alcotest.(check int) "instructions" 9 (Global_system.n_instructions sys)

let test_global_system_residual_at_known_solution () =
  (* feed the paper's worked solution: the residual must be tiny *)
  let ryd = rydberg 3 in
  let sys = Global_system.build ~aais:ryd.Rydberg.aais ~target:(ising_chain 3) ~t_tar:1.0 in
  let x = Array.make 13 0.0 in
  let set (v : Variable.t) value = x.(v.Variable.id) <- value in
  set ryd.Rydberg.xs.(0) 0.0;
  set ryd.Rydberg.xs.(1) 7.4614;
  set ryd.Rydberg.xs.(2) 14.9229;
  Array.iteri (fun i v -> set v (if i = 1 then 5.0 else 2.5)) ryd.Rydberg.deltas;
  Array.iter (fun v -> set v 2.5) ryd.Rydberg.omegas;
  Array.iter (fun v -> set v 0.0) ryd.Rydberg.phis;
  x.(12) <- 0.8;
  let indicators = Array.make 9 true in
  let err = Global_system.error_l1 sys ~indicators x in
  Alcotest.(check bool) "small residual at paper solution" true (err < 0.1)

let test_global_system_indicators_gate_channels () =
  let ryd = rydberg 3 in
  let sys = Global_system.build ~aais:ryd.Rydberg.aais ~target:(ising_chain 3) ~t_tar:1.0 in
  let x = Array.make 13 1.0 in
  x.(12) <- 0.5;
  let all_on = Array.make 9 true in
  let all_off = Array.make 9 false in
  let err_off = Global_system.error_l1 sys ~indicators:all_off x in
  (* with everything off B_sim = 0 and the error equals ||B_tar||₁ *)
  check_close "all-off error = ||B||" 1e-9 (Global_system.b_norm1 sys) err_off;
  Alcotest.(check bool) "on differs" true
    (Global_system.error_l1 sys ~indicators:all_on x <> err_off)

let test_global_system_split () =
  let ryd = rydberg 3 in
  let sys = Global_system.build ~aais:ryd.Rydberg.aais ~target:(ising_chain 3) ~t_tar:1.0 in
  let x = Array.init 13 float_of_int in
  let env, t = Global_system.split sys x in
  Alcotest.(check int) "env size" 12 (Array.length env);
  check_close "t" 1e-12 12.0 t

let test_initial_guess_within_bounds () =
  let ryd = rydberg 4 in
  let sys = Global_system.build ~aais:ryd.Rydberg.aais ~target:(ising_chain 4) ~t_tar:1.0 in
  let rng = Qturbo_util.Rng.create ~seed:1L in
  let bounds = Global_system.bounds sys ~t_max:10.0 in
  for _ = 1 to 50 do
    let x = Global_system.initial_guess sys ~rng ~t_max:10.0 in
    Array.iteri
      (fun i b ->
        if i < Array.length x - 1 then
          (* positions may be jittered slightly outside, the solver clamps *)
          ignore b
        else if x.(i) < 1e-4 || x.(i) > 10.0 then Alcotest.fail "T out of window")
      bounds
  done

(* ---- Simuq_compiler ---- *)

let quick_options =
  {
    Simuq_compiler.default_options with
    Simuq_compiler.starts = 6;
    time_budget_seconds = 30.0;
  }

let test_baseline_compiles_small_chain () =
  let ryd = rydberg 3 in
  let r =
    Simuq_compiler.compile ~options:quick_options ~aais:ryd.Rydberg.aais
      ~target:(ising_chain 3) ~t_tar:1.0 ()
  in
  Alcotest.(check bool) "success" true r.Simuq_compiler.success;
  Alcotest.(check bool) "error within tolerance" true
    (r.Simuq_compiler.relative_error <= 2.0 +. 1e-9);
  Alcotest.(check bool) "feasible T" true
    (r.Simuq_compiler.t_sim > 0.0 && r.Simuq_compiler.t_sim <= 10.0)

let test_baseline_t_suboptimal () =
  (* the baseline lands on a feasible T, essentially never the 0.8 µs
     bottleneck optimum *)
  let ryd = rydberg 3 in
  let r =
    Simuq_compiler.compile ~options:quick_options ~aais:ryd.Rydberg.aais
      ~target:(ising_chain 3) ~t_tar:1.0 ()
  in
  Alcotest.(check bool) "worse than the optimum" true
    (r.Simuq_compiler.t_sim > 0.8 +. 0.05)

let test_baseline_deterministic_given_seed () =
  let ryd = rydberg 3 in
  let run () =
    Simuq_compiler.compile ~options:quick_options ~aais:ryd.Rydberg.aais
      ~target:(ising_chain 3) ~t_tar:1.0 ()
  in
  let a = run () and b = run () in
  check_close "same T" 1e-12 a.Simuq_compiler.t_sim b.Simuq_compiler.t_sim;
  check_close "same error" 1e-12 a.Simuq_compiler.error_l1 b.Simuq_compiler.error_l1

let test_baseline_seed_changes_result () =
  let ryd = rydberg 3 in
  let run seed =
    Simuq_compiler.compile
      ~options:{ quick_options with Simuq_compiler.seed }
      ~aais:ryd.Rydberg.aais ~target:(ising_chain 3) ~t_tar:1.0 ()
  in
  let a = run 1L and b = run 2L in
  (* non-determinism across solver conditions, §3 of the paper *)
  Alcotest.(check bool) "different T" true
    (Float.abs (a.Simuq_compiler.t_sim -. b.Simuq_compiler.t_sim) > 1e-6)

let test_baseline_fails_on_impossible_budget () =
  let ryd = rydberg 3 in
  let options =
    {
      quick_options with
      Simuq_compiler.accept_relative_error = 1e-9;
      starts = 2;
      max_evaluations_per_start = 50;
    }
  in
  let r =
    Simuq_compiler.compile ~options ~aais:ryd.Rydberg.aais
      ~target:(ising_chain 3) ~t_tar:1.0 ()
  in
  Alcotest.(check bool) "fails" false r.Simuq_compiler.success

let test_baseline_slower_than_qturbo () =
  (* the headline comparison at a small but nontrivial size *)
  let spec = { Device.aquila_paper with Device.max_extent = 1e6 } in
  let ryd = Rydberg.build ~spec ~n:13 in
  let target = ising_chain 13 in
  let t0 = Sys.time () in
  let q = Qturbo_core.Compiler.compile ~aais:ryd.Rydberg.aais ~target ~t_tar:1.0 () in
  let t_q = Sys.time () -. t0 in
  let t0 = Sys.time () in
  let s =
    Simuq_compiler.compile ~options:quick_options ~aais:ryd.Rydberg.aais ~target
      ~t_tar:1.0 ()
  in
  let t_s = Sys.time () -. t0 in
  Alcotest.(check bool) "baseline succeeded" true s.Simuq_compiler.success;
  Alcotest.(check bool) "qturbo faster" true (t_q < t_s);
  Alcotest.(check bool) "qturbo shorter pulse" true
    (q.Qturbo_core.Compiler.t_sim <= s.Simuq_compiler.t_sim);
  Alcotest.(check bool) "qturbo at least as accurate" true
    (q.Qturbo_core.Compiler.relative_error
    <= s.Simuq_compiler.relative_error +. 1e-9)

let test_baseline_heisenberg () =
  let heis = Heisenberg.build ~spec:Device.heisenberg_default ~n:4 in
  let target = ising_chain 4 in
  let r =
    Simuq_compiler.compile ~options:quick_options ~aais:heis.Heisenberg.aais
      ~target ~t_tar:1.0 ()
  in
  Alcotest.(check bool) "success" true r.Simuq_compiler.success;
  (* QTurbo is exact here; the baseline is merely within tolerance *)
  let q = Qturbo_core.Compiler.compile ~aais:heis.Heisenberg.aais ~target ~t_tar:1.0 () in
  Alcotest.(check bool) "qturbo exact, baseline not" true
    (q.Qturbo_core.Compiler.error_l1 < 1e-9
    && r.Simuq_compiler.error_l1 > q.Qturbo_core.Compiler.error_l1)

let () =
  Alcotest.run "simuq"
    [
      ( "global_system",
        [
          Alcotest.test_case "shape" `Quick test_global_system_shape;
          Alcotest.test_case "paper solution residual" `Quick
            test_global_system_residual_at_known_solution;
          Alcotest.test_case "indicators gate channels" `Quick
            test_global_system_indicators_gate_channels;
          Alcotest.test_case "split" `Quick test_global_system_split;
          Alcotest.test_case "initial guess" `Quick test_initial_guess_within_bounds;
        ] );
      ( "compiler",
        [
          Alcotest.test_case "compiles small chain" `Quick test_baseline_compiles_small_chain;
          Alcotest.test_case "suboptimal T" `Quick test_baseline_t_suboptimal;
          Alcotest.test_case "deterministic per seed" `Quick
            test_baseline_deterministic_given_seed;
          Alcotest.test_case "seed sensitivity" `Quick test_baseline_seed_changes_result;
          Alcotest.test_case "fails on impossible budget" `Quick
            test_baseline_fails_on_impossible_budget;
          Alcotest.test_case "headline comparison" `Slow test_baseline_slower_than_qturbo;
          Alcotest.test_case "heisenberg" `Quick test_baseline_heisenberg;
        ] );
    ]
