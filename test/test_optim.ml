(* Tests for qturbo.optim: numeric Jacobians, Levenberg–Marquardt,
   Nelder–Mead, bounds transforms, scalar search, multistart. *)

open Qturbo_optim

let check_close msg tol a b =
  if Float.abs (a -. b) > tol then Alcotest.failf "%s: %.10g vs %.10g" msg a b

(* ---- Numeric_jacobian ---- *)

let test_jacobian_linear () =
  (* F(x) = A x has Jacobian A exactly *)
  let f x = [| (2.0 *. x.(0)) +. (3.0 *. x.(1)); -.x.(0) +. (5.0 *. x.(1)) |] in
  let j = Numeric_jacobian.forward f [| 1.0; 2.0 |] in
  check_close "j00" 1e-5 2.0 (Qturbo_linalg.Mat.get j 0 0);
  check_close "j01" 1e-5 3.0 (Qturbo_linalg.Mat.get j 0 1);
  check_close "j10" 1e-5 (-1.0) (Qturbo_linalg.Mat.get j 1 0);
  check_close "j11" 1e-5 5.0 (Qturbo_linalg.Mat.get j 1 1)

let test_jacobian_central_more_accurate () =
  let f x = [| exp x.(0) |] in
  let x = [| 1.0 |] in
  let truth = exp 1.0 in
  let err_f =
    Float.abs (Qturbo_linalg.Mat.get (Numeric_jacobian.forward f x) 0 0 -. truth)
  in
  let err_c =
    Float.abs (Qturbo_linalg.Mat.get (Numeric_jacobian.central f x) 0 0 -. truth)
  in
  Alcotest.(check bool) "central beats forward" true (err_c <= err_f)

(* ---- Levenberg_marquardt ---- *)

let test_lm_linear_system () =
  let f x = [| x.(0) -. 3.0; x.(1) +. 2.0 |] in
  let r = Levenberg_marquardt.minimize f [| 0.0; 0.0 |] in
  check_close "x0" 1e-6 3.0 r.Objective.x.(0);
  check_close "x1" 1e-6 (-2.0) r.Objective.x.(1);
  Alcotest.(check bool) "converged" true r.Objective.converged

let test_lm_rosenbrock () =
  (* classic curved valley in residual form *)
  let f x = [| 10.0 *. (x.(1) -. (x.(0) *. x.(0))); 1.0 -. x.(0) |] in
  let r = Levenberg_marquardt.minimize f [| -1.2; 1.0 |] in
  check_close "x0" 1e-4 1.0 r.Objective.x.(0);
  check_close "x1" 1e-4 1.0 r.Objective.x.(1)

let test_lm_vdw_style () =
  (* solve C/(d^6) = 1.25 for d, the §5.2 position problem in miniature *)
  let c = 862690.0 /. 4.0 in
  let f x = [| (c /. (x.(0) ** 6.0)) -. 1.25 |] in
  let r = Levenberg_marquardt.minimize f [| 9.0 |] in
  check_close "distance" 1e-3 7.4614 r.Objective.x.(0)

let test_lm_exact_jacobian () =
  let f x = [| (x.(0) *. x.(0)) -. 4.0 |] in
  let jacobian x =
    Qturbo_linalg.Mat.of_rows [| [| 2.0 *. x.(0) |] |]
  in
  let r = Levenberg_marquardt.minimize ~jacobian f [| 1.0 |] in
  check_close "root" 1e-6 2.0 r.Objective.x.(0)

let test_lm_budget_exhaustion () =
  let options =
    { Levenberg_marquardt.default_options with max_evaluations = 3 }
  in
  let f x = [| x.(0) -. 100.0 |] in
  let r = Levenberg_marquardt.minimize ~options f [| 0.0 |] in
  Alcotest.(check bool) "not converged" false r.Objective.converged;
  Alcotest.(check bool) "within budget" true (r.Objective.evaluations <= 3)

let test_lm_cost_target_stops_early () =
  let evaluations = ref 0 in
  let f x =
    incr evaluations;
    [| x.(0) -. 1.0 |]
  in
  let options =
    { Levenberg_marquardt.default_options with cost_target = 1.0 }
  in
  (* initial cost 0.5·(0-1)² = 0.5 <= 1.0: stop immediately *)
  let r = Levenberg_marquardt.minimize ~options f [| 0.0 |] in
  Alcotest.(check bool) "converged immediately" true r.Objective.converged;
  Alcotest.(check int) "single evaluation" 1 !evaluations

let test_lm_accept_residual () =
  let options =
    {
      Levenberg_marquardt.default_options with
      accept_residual = Some (fun r -> Qturbo_linalg.Vec.norm1 r <= 0.5);
    }
  in
  let f x = [| x.(0) -. 10.0 |] in
  let r = Levenberg_marquardt.minimize ~options f [| 0.0 |] in
  (* stops at the first iterate within the L1 tolerance, not the optimum *)
  Alcotest.(check bool) "within tolerance" true
    (Float.abs (r.Objective.x.(0) -. 10.0) <= 0.5 +. 1e-9)

let test_lm_multidimensional_fit () =
  (* fit y = a·exp(b·t) through exact data *)
  let ts = [| 0.0; 0.5; 1.0; 1.5; 2.0 |] in
  let ys = Array.map (fun t -> 2.0 *. exp (0.7 *. t)) ts in
  let f x = Array.mapi (fun i t -> (x.(0) *. exp (x.(1) *. t)) -. ys.(i)) ts in
  let r = Levenberg_marquardt.minimize f [| 1.0; 0.0 |] in
  check_close "a" 1e-5 2.0 r.Objective.x.(0);
  check_close "b" 1e-5 0.7 r.Objective.x.(1)

(* ---- Nelder_mead ---- *)

let test_nm_quadratic () =
  let f x = ((x.(0) -. 1.0) ** 2.0) +. ((x.(1) +. 2.0) ** 2.0) in
  let r = Nelder_mead.minimize f [| 0.0; 0.0 |] in
  check_close "x0" 1e-4 1.0 r.Objective.x.(0);
  check_close "x1" 1e-4 (-2.0) r.Objective.x.(1)

let test_nm_1d () =
  let f x = Float.abs (cos x.(0) -. 1.0) in
  let r = Nelder_mead.minimize f [| 0.7 |] in
  check_close "cos minimum" 1e-3 0.0 (Float.abs r.Objective.x.(0))

let test_nm_empty_input () =
  let r = Nelder_mead.minimize (fun _ -> 42.0) [||] in
  check_close "value" 1e-12 42.0 r.Objective.cost

let test_nm_nan_tolerant () =
  (* NaN regions are treated as +inf and avoided *)
  let f x = if x.(0) < 0.0 then Float.nan else (x.(0) -. 2.0) ** 2.0 in
  let r = Nelder_mead.minimize f [| 1.0 |] in
  check_close "avoids NaN region" 1e-3 2.0 r.Objective.x.(0)

(* ---- Bounds ---- *)

let test_bounds_make_validates () =
  Alcotest.check_raises "inverted" (Invalid_argument "Bounds.make: lo > hi")
    (fun () -> ignore (Bounds.make ~lo:2.0 ~hi:1.0))

let test_bounds_two_sided_roundtrip () =
  let t = Bounds.transform [| Bounds.make ~lo:(-1.0) ~hi:3.0 |] in
  List.iter
    (fun x ->
      let u = Bounds.to_internal t [| x |] in
      let x' = (Bounds.of_internal t u).(0) in
      check_close "roundtrip" 1e-9 x x')
    [ -1.0; -0.5; 0.0; 1.7; 3.0 ]

let test_bounds_one_sided_roundtrip () =
  let t = Bounds.transform [| Bounds.make ~lo:2.0 ~hi:infinity |] in
  List.iter
    (fun x ->
      let u = Bounds.to_internal t [| x |] in
      check_close "roundtrip" 1e-9 x (Bounds.of_internal t u).(0))
    [ 2.0; 2.5; 100.0 ]

let test_bounds_upper_roundtrip () =
  let t = Bounds.transform [| Bounds.make ~lo:neg_infinity ~hi:(-1.0) |] in
  List.iter
    (fun x ->
      let u = Bounds.to_internal t [| x |] in
      check_close "roundtrip" 1e-9 x (Bounds.of_internal t u).(0))
    [ -1.0; -4.0; -50.0 ]

let test_bounds_image_inside () =
  let b = Bounds.make ~lo:0.0 ~hi:2.5 in
  let t = Bounds.transform [| b |] in
  List.iter
    (fun u ->
      let x = (Bounds.of_internal t [| u |]).(0) in
      Alcotest.(check bool) "inside" true (Bounds.contains b x))
    [ -1e6; -3.0; 0.0; 1.0; 7.0; 1e6 ]

let test_bounds_degenerate () =
  let t = Bounds.transform [| Bounds.make ~lo:5.0 ~hi:5.0 |] in
  check_close "pinned" 1e-12 5.0 (Bounds.of_internal t [| 123.0 |]).(0)

let test_bounded_lm () =
  (* unconstrained optimum at x = 10 but the box stops at 2 *)
  let b = [| Bounds.make ~lo:0.0 ~hi:2.0 |] in
  let t = Bounds.transform b in
  let f x = [| x.(0) -. 10.0 |] in
  let r =
    Levenberg_marquardt.minimize (Bounds.wrap_residual t f)
      (Bounds.to_internal t [| 1.0 |])
  in
  let x = (Bounds.of_internal t r.Objective.x).(0) in
  check_close "at the bound" 1e-5 2.0 x

(* ---- Scalar ---- *)

let test_bisect_root () =
  let r = Scalar.bisect ~f:(fun x -> (x *. x) -. 2.0) ~lo:0.0 ~hi:2.0 () in
  check_close "sqrt 2" 1e-9 (sqrt 2.0) r.Scalar.root;
  Alcotest.(check bool) "converged" true r.Scalar.converged

let test_bisect_rejects_no_sign_change () =
  Alcotest.check_raises "no bracket"
    (Invalid_argument "Scalar.bisect: no sign change on bracket") (fun () ->
      ignore (Scalar.bisect ~f:(fun x -> x +. 10.0) ~lo:0.0 ~hi:1.0 ()))

let test_bisect_predicate () =
  let threshold = 0.7318 in
  let r = Scalar.bisect_predicate ~f:(fun x -> x >= threshold) ~lo:0.0 ~hi:1.0 () in
  check_close "threshold" 1e-6 threshold r.Scalar.root;
  Alcotest.(check bool) "converged" true r.Scalar.converged

let test_bisect_predicate_true_at_lo () =
  check_close "lo" 1e-12 0.3
    (Scalar.bisect_predicate ~f:(fun _ -> true) ~lo:0.3 ~hi:1.0 ()).Scalar.root

let test_golden_min () =
  let r = Scalar.golden_min ~f:(fun x -> (x -. 1.3) ** 2.0) ~lo:(-5.0) ~hi:5.0 () in
  check_close "argmin" 1e-6 1.3 r.Scalar.argmin;
  check_close "min" 1e-9 0.0 r.Scalar.minimum;
  Alcotest.(check bool) "converged" true r.Scalar.converged

(* ---- Multistart ---- *)

let test_multistart_finds_global () =
  (* two basins; only the one near 4 satisfies acceptance *)
  let rng = Qturbo_util.Rng.create ~seed:31L in
  let solve x0 =
    let f x = [| ((x.(0) -. 4.0) *. (x.(0) +. 3.0)) /. 10.0 |] in
    (Levenberg_marquardt.minimize f x0, ())
  in
  let best, used =
    Multistart.search ~rng ~starts:20
      ~sample:(fun rng -> [| Qturbo_util.Rng.uniform rng ~lo:(-10.0) ~hi:10.0 |])
      ~solve
      ~accept:(fun r -> r.Objective.cost < 1e-12 && r.Objective.x.(0) > 0.0)
      ()
  in
  (match best with
  | None -> Alcotest.fail "no run kept"
  | Some run ->
      Alcotest.(check bool) "found a root" true (run.Multistart.report.Objective.cost < 1e-10));
  Alcotest.(check bool) "used at least one start" true (used >= 1)

let test_sample_box () =
  let rng = Qturbo_util.Rng.create ~seed:37L in
  let bounds = [| Bounds.make ~lo:1.0 ~hi:2.0; Bounds.unbounded |] in
  for _ = 1 to 100 do
    let x = Multistart.sample_box bounds ~fallback:5.0 rng in
    Alcotest.(check bool) "first in box" true (x.(0) >= 1.0 && x.(0) < 2.0);
    Alcotest.(check bool) "second in fallback" true (x.(1) >= -5.0 && x.(1) < 5.0)
  done

(* Regression: acceptance must report the run that fired it, not a later
   start that happens to reach a lower cost — and the sequential early-exit
   path must agree with the speculative pool path on winner and [used]. *)
let synthetic_search ~domains ~costs ~accept =
  let rng = Qturbo_util.Rng.create ~seed:7L in
  (* x0s are split off [rng] sequentially in start order before any
     solving, so a counter tags each start with its index *)
  let counter = ref 0 in
  let sample _rng =
    let k = !counter in
    incr counter;
    [| float_of_int k |]
  in
  let solve x0 =
    let k = int_of_float x0.(0) in
    ( {
        Objective.x = x0;
        cost = costs.(k);
        residual_norm = 0.0;
        iterations = 1;
        evaluations = 1;
        converged = true;
        stop = Objective.Stop_converged;
      },
      k )
  in
  Multistart.search ~domains ~rng ~starts:(Array.length costs) ~sample ~solve
    ~accept ()

let test_multistart_reports_accepted_run () =
  (* start 2 is accepted first; start 6 is accepted too and cheaper *)
  let costs = [| 10.0; 9.0; 4.0; 7.0; 6.0; 5.5; 1.0; 3.0 |] in
  let accept r = r.Objective.cost < 5.0 in
  List.iter
    (fun domains ->
      match synthetic_search ~domains ~costs ~accept with
      | None, _ -> Alcotest.fail "expected a run"
      | Some run, used ->
          let msg s = Printf.sprintf "domains=%d: %s" domains s in
          Alcotest.(check int) (msg "accepted start") 2 run.Multistart.start_index;
          Alcotest.(check int) (msg "extra payload") 2 run.Multistart.extra;
          Alcotest.(check (float 0.0))
            (msg "accepted cost, not the global best")
            4.0 run.Multistart.report.Objective.cost;
          Alcotest.(check int) (msg "used stops at acceptance") 3 used)
    [ 1; 4 ]

let test_multistart_best_tie_prefers_earlier () =
  (* nothing accepted: best by (cost, start_index); the cost tie between
     starts 1 and 3 keeps the earlier one, on both paths *)
  let costs = [| 3.0; 1.0; 4.0; 1.0; 5.0 |] in
  let accept _ = false in
  List.iter
    (fun domains ->
      match synthetic_search ~domains ~costs ~accept with
      | None, _ -> Alcotest.fail "expected a run"
      | Some run, used ->
          let msg s = Printf.sprintf "domains=%d: %s" domains s in
          Alcotest.(check int) (msg "earlier tie wins") 1 run.Multistart.start_index;
          Alcotest.(check int) (msg "all starts consumed") 5 used)
    [ 1; 4 ]

let test_multistart_all_diverged () =
  let costs = [| Float.nan; Float.infinity; Float.nan |] in
  List.iter
    (fun domains ->
      match synthetic_search ~domains ~costs ~accept:(fun _ -> false) with
      | None, used -> Alcotest.(check int) "used" 3 used
      | Some _, _ -> Alcotest.fail "non-finite costs must yield None")
    [ 1; 4 ]

let test_multistart_parallel_matches_sequential () =
  (* same seed, real LM solves: the pool path must pick the identical
     winner (same start, bitwise-same point) as the sequential path *)
  let search domains =
    let rng = Qturbo_util.Rng.create ~seed:31L in
    let solve x0 =
      let f x = [| ((x.(0) -. 4.0) *. (x.(0) +. 3.0)) /. 10.0 |] in
      (Levenberg_marquardt.minimize f x0, ())
    in
    Multistart.search ~domains ~rng ~starts:12
      ~sample:(fun rng -> [| Qturbo_util.Rng.uniform rng ~lo:(-10.0) ~hi:10.0 |])
      ~solve
      ~accept:(fun r -> r.Objective.cost < 1e-12 && r.Objective.x.(0) > 0.0)
      ()
  in
  match (search 1, search 4) with
  | (Some r1, used1), (Some r4, used4) ->
      Alcotest.(check int) "same start" r1.Multistart.start_index
        r4.Multistart.start_index;
      Alcotest.(check int) "same used" used1 used4;
      Alcotest.(check bool) "bitwise-same point" true
        (Int64.equal
           (Int64.bits_of_float r1.Multistart.report.Objective.x.(0))
           (Int64.bits_of_float r4.Multistart.report.Objective.x.(0)))
  | _ -> Alcotest.fail "both paths must find a run"

(* ---- qcheck properties ---- *)

let prop_bounds_roundtrip =
  QCheck.Test.make ~name:"bounds transform roundtrips interior points" ~count:300
    QCheck.(triple (float_range (-10.) 10.) (float_range 0.1 10.) (float_range 0.01 0.99))
    (fun (lo, width, frac) ->
      let b = Bounds.make ~lo ~hi:(lo +. width) in
      let x = lo +. (frac *. width) in
      let t = Bounds.transform [| b |] in
      let x' = (Bounds.of_internal t (Bounds.to_internal t [| x |])).(0) in
      Float.abs (x -. x') < 1e-8)

let prop_of_internal_inside =
  QCheck.Test.make ~name:"of_internal always lands inside the box" ~count:300
    QCheck.(triple (float_range (-10.) 10.) (float_range 0.0 10.) (float_range (-50.) 50.))
    (fun (lo, width, u) ->
      let b = Bounds.make ~lo ~hi:(lo +. width) in
      let t = Bounds.transform [| b |] in
      Bounds.contains b (Bounds.of_internal t [| u |]).(0))

let prop_lm_decreases_cost =
  QCheck.Test.make ~name:"LM never returns worse than the start" ~count:100
    QCheck.(pair (float_range (-3.) 3.) (float_range (-3.) 3.))
    (fun (a, b) ->
      let f x = [| x.(0) -. a; (x.(0) *. x.(1)) -. b |] in
      let x0 = [| 0.5; 0.5 |] in
      let start_cost = Objective.cost_of_residual (f x0) in
      let r = Levenberg_marquardt.minimize f x0 in
      r.Objective.cost <= start_cost +. 1e-12)

let () =
  Alcotest.run "optim"
    [
      ( "jacobian",
        [
          Alcotest.test_case "linear exact" `Quick test_jacobian_linear;
          Alcotest.test_case "central accuracy" `Quick
            test_jacobian_central_more_accurate;
        ] );
      ( "levenberg_marquardt",
        [
          Alcotest.test_case "linear" `Quick test_lm_linear_system;
          Alcotest.test_case "rosenbrock" `Quick test_lm_rosenbrock;
          Alcotest.test_case "van-der-Waals style" `Quick test_lm_vdw_style;
          Alcotest.test_case "exact jacobian" `Quick test_lm_exact_jacobian;
          Alcotest.test_case "budget exhaustion" `Quick test_lm_budget_exhaustion;
          Alcotest.test_case "cost target" `Quick test_lm_cost_target_stops_early;
          Alcotest.test_case "accept residual" `Quick test_lm_accept_residual;
          Alcotest.test_case "exponential fit" `Quick test_lm_multidimensional_fit;
        ] );
      ( "nelder_mead",
        [
          Alcotest.test_case "quadratic" `Quick test_nm_quadratic;
          Alcotest.test_case "1d cosine" `Quick test_nm_1d;
          Alcotest.test_case "empty input" `Quick test_nm_empty_input;
          Alcotest.test_case "nan tolerant" `Quick test_nm_nan_tolerant;
        ] );
      ( "bounds",
        [
          Alcotest.test_case "validation" `Quick test_bounds_make_validates;
          Alcotest.test_case "two-sided roundtrip" `Quick
            test_bounds_two_sided_roundtrip;
          Alcotest.test_case "lower-only roundtrip" `Quick
            test_bounds_one_sided_roundtrip;
          Alcotest.test_case "upper-only roundtrip" `Quick test_bounds_upper_roundtrip;
          Alcotest.test_case "image inside box" `Quick test_bounds_image_inside;
          Alcotest.test_case "degenerate interval" `Quick test_bounds_degenerate;
          Alcotest.test_case "bounded LM" `Quick test_bounded_lm;
        ] );
      ( "scalar",
        [
          Alcotest.test_case "bisect root" `Quick test_bisect_root;
          Alcotest.test_case "bisect needs bracket" `Quick
            test_bisect_rejects_no_sign_change;
          Alcotest.test_case "bisect predicate" `Quick test_bisect_predicate;
          Alcotest.test_case "predicate true at lo" `Quick
            test_bisect_predicate_true_at_lo;
          Alcotest.test_case "golden min" `Quick test_golden_min;
        ] );
      ( "multistart",
        [
          Alcotest.test_case "finds accepted basin" `Quick test_multistart_finds_global;
          Alcotest.test_case "reports the accepted run" `Quick
            test_multistart_reports_accepted_run;
          Alcotest.test_case "cost tie keeps earlier start" `Quick
            test_multistart_best_tie_prefers_earlier;
          Alcotest.test_case "all-diverged yields None" `Quick
            test_multistart_all_diverged;
          Alcotest.test_case "pool path matches sequential" `Quick
            test_multistart_parallel_matches_sequential;
          Alcotest.test_case "sample box" `Quick test_sample_box;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_bounds_roundtrip; prop_of_internal_inside; prop_lm_decreases_cost ]
      );
    ]
