(* Tests for qturbo.util: RNG determinism and distributions, statistics,
   float comparison, table rendering. *)

open Qturbo_util

let check_float = Alcotest.(check (float 1e-9))

(* ---- Rng ---- *)

let test_rng_deterministic () =
  let a = Rng.create ~seed:7L and b = Rng.create ~seed:7L in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.next_int64 a) (Rng.next_int64 b)
  done

let test_rng_seeds_differ () =
  let a = Rng.create ~seed:1L and b = Rng.create ~seed:2L in
  Alcotest.(check bool) "different streams" false
    (Rng.next_int64 a = Rng.next_int64 b)

let test_rng_copy_independent () =
  let a = Rng.create ~seed:5L in
  let _ = Rng.next_int64 a in
  let b = Rng.copy a in
  Alcotest.(check int64) "copy continues identically" (Rng.next_int64 a)
    (Rng.next_int64 b)

let test_rng_split_independent () =
  let a = Rng.create ~seed:5L in
  let child = Rng.split a in
  Alcotest.(check bool) "child differs from parent" false
    (Rng.next_int64 a = Rng.next_int64 child)

let test_rng_float_range () =
  let rng = Rng.create ~seed:11L in
  for _ = 1 to 10_000 do
    let x = Rng.float rng in
    if x < 0.0 || x >= 1.0 then Alcotest.fail "float out of [0,1)"
  done

let test_rng_float_mean () =
  let rng = Rng.create ~seed:13L in
  let xs = Array.init 50_000 (fun _ -> Rng.float rng) in
  let mean = Stats.mean xs in
  if Float.abs (mean -. 0.5) > 0.01 then
    Alcotest.failf "uniform mean %.4f too far from 0.5" mean

let test_rng_gaussian_moments () =
  let rng = Rng.create ~seed:17L in
  let xs = Array.init 50_000 (fun _ -> Rng.gaussian rng ~mu:2.0 ~sigma:3.0) in
  let mean = Stats.mean xs and sd = Stats.stddev xs in
  if Float.abs (mean -. 2.0) > 0.05 then Alcotest.failf "gaussian mean %.3f" mean;
  if Float.abs (sd -. 3.0) > 0.05 then Alcotest.failf "gaussian sd %.3f" sd

let test_rng_int_bounds () =
  let rng = Rng.create ~seed:19L in
  let counts = Array.make 7 0 in
  for _ = 1 to 7_000 do
    let k = Rng.int rng ~bound:7 in
    counts.(k) <- counts.(k) + 1
  done;
  Array.iteri
    (fun i c -> if c = 0 then Alcotest.failf "bucket %d never hit" i)
    counts

let test_rng_shuffle_permutes () =
  let rng = Rng.create ~seed:23L in
  let a = Array.init 50 Fun.id in
  Rng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort Int.compare sorted;
  Alcotest.(check (array int)) "still a permutation" (Array.init 50 Fun.id) sorted

let test_rng_uniform_range () =
  let rng = Rng.create ~seed:29L in
  for _ = 1 to 1000 do
    let x = Rng.uniform rng ~lo:(-2.0) ~hi:5.0 in
    if x < -2.0 || x >= 5.0 then Alcotest.fail "uniform out of range"
  done

(* ---- Stats ---- *)

let test_mean () = check_float "mean" 2.5 (Stats.mean [| 1.0; 2.0; 3.0; 4.0 |])

let test_mean_empty () =
  Alcotest.check_raises "empty mean" (Invalid_argument "Stats.mean: empty array")
    (fun () -> ignore (Stats.mean [||]))

let test_variance () =
  (* mean 3, squared deviations 4 + 1 + 0 + 9 = 14, over n - 1 = 3 *)
  check_float "sample variance" (14.0 /. 3.0)
    (Stats.variance [| 1.0; 2.0; 3.0; 6.0 |])

let test_variance_singleton () = check_float "n<2" 0.0 (Stats.variance [| 5.0 |])

let test_median_odd () = check_float "odd" 3.0 (Stats.median [| 5.0; 1.0; 3.0 |])

let test_median_even () =
  check_float "even" 2.5 (Stats.median [| 4.0; 1.0; 2.0; 3.0 |])

let test_percentile () =
  let a = [| 10.0; 20.0; 30.0; 40.0; 50.0 |] in
  check_float "p0" 10.0 (Stats.percentile a ~p:0.0);
  check_float "p100" 50.0 (Stats.percentile a ~p:100.0);
  check_float "p50" 30.0 (Stats.percentile a ~p:50.0);
  check_float "p25" 20.0 (Stats.percentile a ~p:25.0)

let test_geometric_mean () =
  check_float "geomean" 4.0 (Stats.geometric_mean [| 2.0; 8.0 |])

let test_geometric_mean_rejects_nonpositive () =
  Alcotest.check_raises "nonpositive"
    (Invalid_argument "Stats.geometric_mean: nonpositive element") (fun () ->
      ignore (Stats.geometric_mean [| 1.0; 0.0 |]))

let test_min_max () =
  let lo, hi = Stats.min_max [| 3.0; -1.0; 7.0 |] in
  check_float "min" (-1.0) lo;
  check_float "max" 7.0 hi

let test_linear_fit () =
  let xs = [| 0.0; 1.0; 2.0; 3.0 |] in
  let ys = [| 1.0; 3.0; 5.0; 7.0 |] in
  let slope, intercept = Stats.linear_fit xs ys in
  check_float "slope" 2.0 slope;
  check_float "intercept" 1.0 intercept

(* ---- Float_cmp ---- *)

let test_approx_basic () =
  Alcotest.(check bool) "equal" true (Float_cmp.approx 1.0 1.0);
  Alcotest.(check bool) "close" true (Float_cmp.approx 1.0 (1.0 +. 1e-12));
  Alcotest.(check bool) "far" false (Float_cmp.approx 1.0 1.1)

let test_approx_nan () =
  Alcotest.(check bool) "nan" false (Float_cmp.approx Float.nan Float.nan)

let test_approx_array () =
  Alcotest.(check bool) "arrays" true
    (Float_cmp.approx_array [| 1.0; 2.0 |] [| 1.0; 2.0 |]);
  Alcotest.(check bool) "length mismatch" false
    (Float_cmp.approx_array [| 1.0 |] [| 1.0; 2.0 |])

let test_clamp () =
  check_float "below" 0.0 (Float_cmp.clamp ~lo:0.0 ~hi:1.0 (-5.0));
  check_float "above" 1.0 (Float_cmp.clamp ~lo:0.0 ~hi:1.0 5.0);
  check_float "inside" 0.5 (Float_cmp.clamp ~lo:0.0 ~hi:1.0 0.5)

(* ---- Table_fmt ---- *)

let test_table_render () =
  let t = Table_fmt.create ~header:[ "name"; "value" ] in
  Table_fmt.add_row t [ "alpha"; "1" ];
  Table_fmt.add_row t [ "b" ];
  let rendered = Table_fmt.render t in
  Alcotest.(check bool) "has header" true
    (String.length rendered > 0
    && String.sub rendered 0 4 = "name")

let test_table_rejects_wide_rows () =
  let t = Table_fmt.create ~header:[ "one" ] in
  Alcotest.check_raises "wide row"
    (Invalid_argument "Table_fmt.add_row: row wider than header") (fun () ->
      Table_fmt.add_row t [ "a"; "b" ])

let test_cell_of_float () =
  Alcotest.(check string) "nan is dash" "-" (Table_fmt.cell_of_float Float.nan);
  Alcotest.(check string) "zero" "0" (Table_fmt.cell_of_float 0.0);
  Alcotest.(check string) "plain" "1.5000" (Table_fmt.cell_of_float 1.5)

(* ---- Json: emit/parse round-trip ---- *)

(* Sized generator over the full value ADT: deep nesting, exotic keys
   and strings (escapes, control characters), non-finite floats. *)
let json_gen =
  let open QCheck.Gen in
  let str =
    string_size ~gen:(oneof [ printable; char ]) (int_range 0 12)
  in
  let num =
    frequency
      [
        (8, float);
        (2, oneofl [ Float.nan; Float.infinity; Float.neg_infinity; -0.0; 0.0 ]);
      ]
  in
  fix
    (fun self depth ->
      let leaf =
        frequency
          [
            (1, return Json.Null);
            (2, map (fun b -> Json.Bool b) bool);
            (4, map (fun f -> Json.Number f) num);
            (4, map (fun s -> Json.String s) str);
          ]
      in
      if depth = 0 then leaf
      else
        frequency
          [
            (4, leaf);
            ( 2,
              map
                (fun l -> Json.Array l)
                (list_size (int_range 0 4) (self (depth - 1))) );
            ( 2,
              map
                (fun l -> Json.Object l)
                (list_size (int_range 0 4)
                   (pair str (self (depth - 1)))) );
          ])
    4

(* [emit] maps non-finite numbers to [null] (JSON has no token for
   them); the round-trip is exact modulo that normalization. *)
let rec json_normalize = function
  | Json.Number f when not (Float.is_finite f) -> Json.Null
  | Json.Array l -> Json.Array (List.map json_normalize l)
  | Json.Object l ->
      Json.Object (List.map (fun (k, v) -> (k, json_normalize v)) l)
  | v -> v

let rec json_equal a b =
  match (a, b) with
  | Json.Null, Json.Null -> true
  | Json.Bool x, Json.Bool y -> x = y
  | Json.Number x, Json.Number y ->
      (* distinguish -0.0 from 0.0: emit prints "-0", which must parse
         back to the negative zero *)
      Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float y)
  | Json.String x, Json.String y -> String.equal x y
  | Json.Array x, Json.Array y ->
      List.length x = List.length y && List.for_all2 json_equal x y
  | Json.Object x, Json.Object y ->
      List.length x = List.length y
      && List.for_all2
           (fun (ka, va) (kb, vb) -> String.equal ka kb && json_equal va vb)
           x y
  | _, _ -> false

let prop_json_roundtrip =
  QCheck.Test.make ~name:"parse (emit v) = v (mod non-finite -> null)"
    ~count:1000
    (QCheck.make json_gen)
    (fun v ->
      match Json.parse (Json.emit v) with
      | Ok back -> json_equal back (json_normalize v)
      | Error msg -> QCheck.Test.fail_reportf "emit produced invalid JSON: %s" msg)

let prop_json_emit_stable =
  QCheck.Test.make ~name:"emit (parse (emit v)) = emit v" ~count:500
    (QCheck.make json_gen)
    (fun v ->
      let once = Json.emit v in
      String.equal once (Json.emit (Json.parse_exn once)))

let test_json_rejects_malformed () =
  let bad =
    [
      "";
      "   ";
      "nul";
      "tru";
      "truex";
      "nan";
      "NaN";
      "Infinity";
      "-Infinity";
      "+1";
      "01";
      "1.";
      ".5";
      "1e";
      "1e+";
      "--1";
      "\"unterminated";
      "\"bad \\q escape\"";
      "\"ctrl \x01 char\"";
      "\"\\u12\"";
      "\"\\u12zz\"";
      "[1,]";
      "[1 2]";
      "[";
      "]";
      "{";
      "{\"a\"}";
      "{\"a\":}";
      "{\"a\":1,}";
      "{\"a\" 1}";
      "{a:1}";
      "1 2";
      "{} []";
      "null garbage";
    ]
  in
  List.iter
    (fun text ->
      match Json.parse text with
      | Ok _ -> Alcotest.failf "accepted malformed input %S" text
      | Error _ -> ())
    bad

let test_json_emit_examples () =
  Alcotest.(check string) "escapes" "{\"a\\\"b\":\"x\\ny\"}"
    (Json.emit (Json.Object [ ("a\"b", Json.String "x\ny") ]));
  Alcotest.(check string) "non-finite to null" "[null,null,null]"
    (Json.emit
       (Json.Array
          [
            Json.Number Float.nan;
            Json.Number Float.infinity;
            Json.Number Float.neg_infinity;
          ]));
  Alcotest.(check string) "empty containers" "{\"a\":[],\"b\":{}}"
    (Json.emit (Json.Object [ ("a", Json.Array []); ("b", Json.Object []) ]))

(* ---- Json: RFC 8259 surrogate pairs ---- *)

let utf8_of_scalar u =
  let b = Buffer.create 4 in
  Buffer.add_utf_8_uchar b (Uchar.of_int u);
  Buffer.contents b

let parse_string_exn text =
  match Json.parse_exn text with
  | Json.String s -> s
  | _ -> Alcotest.failf "%S did not parse to a string" text

let test_json_surrogate_pairs () =
  Alcotest.(check string) "U+1F600" (utf8_of_scalar 0x1F600)
    (parse_string_exn {|"\ud83d\ude00"|});
  Alcotest.(check string) "pair floor U+10000" (utf8_of_scalar 0x10000)
    (parse_string_exn {|"\ud800\udc00"|});
  Alcotest.(check string) "pair ceiling U+10FFFF" (utf8_of_scalar 0x10FFFF)
    (parse_string_exn {|"\udbff\udfff"|});
  Alcotest.(check string) "pair amid text"
    ("ab" ^ utf8_of_scalar 0x1D11E ^ "cd")
    (parse_string_exn {|"ab\ud834\udd1ecd"|});
  (* capital hex digits *)
  Alcotest.(check string) "uppercase hex" (utf8_of_scalar 0x1F600)
    (parse_string_exn {|"😀"|});
  (* a lone or mismatched surrogate is malformed, not silently decoded *)
  List.iter
    (fun text ->
      match Json.parse text with
      | Ok _ -> Alcotest.failf "accepted lone/mismatched surrogate %S" text
      | Error _ -> ())
    [
      {|"\ud800"|} (* lone high, end of string *);
      {|"\udc00"|} (* lone low *);
      {|"\ude00\ud83d"|} (* reversed pair *);
      {|"\ud83d x"|} (* high then raw text *);
      {|"\ud83dA"|} (* high then non-surrogate escape *);
      {|"\ud83d\ud83d"|} (* high then high *);
      {|"\ud83d\n"|} (* high then a different escape *);
    ]

(* Every astral scalar's escaped surrogate pair decodes to exactly its
   UTF-8 bytes. *)
let prop_json_surrogate_escape_equiv =
  QCheck.Test.make ~name:"escaped surrogate pair = raw UTF-8" ~count:500
    QCheck.(make Gen.(int_range 0x10000 0x10FFFF))
    (fun u ->
      let v = u - 0x10000 in
      let hi = 0xD800 lor (v lsr 10) and lo = 0xDC00 lor (v land 0x3FF) in
      let escaped = Printf.sprintf "\"\\u%04x\\u%04x\"" hi lo in
      match Json.parse escaped with
      | Ok (Json.String s) -> String.equal s (utf8_of_scalar u)
      | _ -> false)

(* parse/emit round-trip over well-formed UTF-8 strings, astral plane
   included (the byte-oriented [json_gen] above never produces them). *)
let utf8_string_gen =
  let open QCheck.Gen in
  let scalar =
    oneof
      [
        int_range 0x20 0x7E;
        int_range 0xA0 0xD7FF;
        int_range 0xE000 0xFFFD;
        int_range 0x10000 0x10FFFF;
      ]
  in
  map
    (fun us -> String.concat "" (List.map utf8_of_scalar us))
    (list_size (int_range 0 10) scalar)

let prop_json_utf8_roundtrip =
  QCheck.Test.make ~name:"astral-plane strings round-trip" ~count:500
    (QCheck.make utf8_string_gen)
    (fun s ->
      match Json.parse (Json.emit (Json.String s)) with
      | Ok (Json.String back) -> String.equal back s
      | _ -> false)

(* ---- Json: nesting-depth bound ---- *)

let test_json_depth_limit () =
  let deep k = String.make k '[' ^ String.make k ']' in
  (match Json.parse (deep Json.default_max_depth) with
  | Ok _ -> ()
  | Error msg ->
      Alcotest.failf "rejected input at the default depth bound: %s" msg);
  (match Json.parse (deep (Json.default_max_depth + 1)) with
  | Ok _ -> Alcotest.fail "accepted input one past the depth bound"
  | Error _ -> ());
  (* the classic parser bomb: a clean error, not Stack_overflow *)
  (match Json.parse (String.make 10_000 '[') with
  | Ok _ -> Alcotest.fail "accepted the 10k-deep bomb"
  | Error _ -> ());
  (* objects count toward the same bound *)
  (match Json.parse ~max_depth:2 {|{"a":{"b":1}}|} with
  | Ok _ -> ()
  | Error msg -> Alcotest.failf "rejected depth-2 object: %s" msg);
  (match Json.parse ~max_depth:2 {|{"a":{"b":{"c":1}}}|} with
  | Ok _ -> Alcotest.fail "accepted an object past ~max_depth:2"
  | Error _ -> ());
  (* override in both directions *)
  (match Json.parse ~max_depth:2 "[[1]]" with
  | Ok _ -> ()
  | Error msg -> Alcotest.failf "rejected [[1]] at ~max_depth:2: %s" msg);
  (match Json.parse ~max_depth:2 "[[[1]]]" with
  | Ok _ -> Alcotest.fail "accepted [[[1]]] at ~max_depth:2"
  | Error _ -> ());
  (match
     Json.parse
       ~max_depth:(Json.default_max_depth + 2)
       (deep (Json.default_max_depth + 1))
   with
  | Ok _ -> ()
  | Error msg -> Alcotest.failf "rejected under a raised bound: %s" msg);
  Alcotest.check_raises "max_depth < 1 is a caller error"
    (Invalid_argument "Json.parse_exn: max_depth must be >= 1") (fun () ->
      ignore (Json.parse_exn ~max_depth:0 "1"))

(* ---- qcheck properties ---- *)

let prop_clamp_inside =
  QCheck.Test.make ~name:"clamp always lands inside the interval" ~count:500
    QCheck.(triple (float_range (-100.) 100.) (float_range (-100.) 100.) float)
    (fun (a, b, x) ->
      let lo = Float.min a b and hi = Float.max a b in
      let c = Float_cmp.clamp ~lo ~hi x in
      c >= lo && c <= hi)

let prop_percentile_monotone =
  QCheck.Test.make ~name:"percentile is monotone in p" ~count:200
    QCheck.(pair (list_of_size Gen.(int_range 1 30) (float_range (-50.) 50.))
              (pair (float_range 0. 100.) (float_range 0. 100.)))
    (fun (xs, (p1, p2)) ->
      QCheck.assume (xs <> []);
      let a = Array.of_list xs in
      let lo = Float.min p1 p2 and hi = Float.max p1 p2 in
      Stats.percentile a ~p:lo <= Stats.percentile a ~p:hi +. 1e-9)

let prop_mean_between_min_max =
  QCheck.Test.make ~name:"mean lies between min and max" ~count:300
    QCheck.(list_of_size Gen.(int_range 1 40) (float_range (-1e3) 1e3))
    (fun xs ->
      QCheck.assume (xs <> []);
      let a = Array.of_list xs in
      let lo, hi = Stats.min_max a in
      let m = Stats.mean a in
      m >= lo -. 1e-9 && m <= hi +. 1e-9)

let () =
  Alcotest.run "util"
    [
      ( "rng",
        [
          Alcotest.test_case "deterministic streams" `Quick test_rng_deterministic;
          Alcotest.test_case "seeds differ" `Quick test_rng_seeds_differ;
          Alcotest.test_case "copy is independent" `Quick test_rng_copy_independent;
          Alcotest.test_case "split is independent" `Quick test_rng_split_independent;
          Alcotest.test_case "float range" `Quick test_rng_float_range;
          Alcotest.test_case "float mean" `Slow test_rng_float_mean;
          Alcotest.test_case "gaussian moments" `Slow test_rng_gaussian_moments;
          Alcotest.test_case "int bounds" `Quick test_rng_int_bounds;
          Alcotest.test_case "shuffle permutes" `Quick test_rng_shuffle_permutes;
          Alcotest.test_case "uniform range" `Quick test_rng_uniform_range;
        ] );
      ( "stats",
        [
          Alcotest.test_case "mean" `Quick test_mean;
          Alcotest.test_case "mean of empty raises" `Quick test_mean_empty;
          Alcotest.test_case "variance" `Quick test_variance;
          Alcotest.test_case "variance singleton" `Quick test_variance_singleton;
          Alcotest.test_case "median odd" `Quick test_median_odd;
          Alcotest.test_case "median even" `Quick test_median_even;
          Alcotest.test_case "percentile" `Quick test_percentile;
          Alcotest.test_case "geometric mean" `Quick test_geometric_mean;
          Alcotest.test_case "geometric mean rejects" `Quick
            test_geometric_mean_rejects_nonpositive;
          Alcotest.test_case "min max" `Quick test_min_max;
          Alcotest.test_case "linear fit" `Quick test_linear_fit;
        ] );
      ( "float_cmp",
        [
          Alcotest.test_case "approx basics" `Quick test_approx_basic;
          Alcotest.test_case "approx nan" `Quick test_approx_nan;
          Alcotest.test_case "approx arrays" `Quick test_approx_array;
          Alcotest.test_case "clamp" `Quick test_clamp;
        ] );
      ( "table_fmt",
        [
          Alcotest.test_case "render" `Quick test_table_render;
          Alcotest.test_case "wide rows rejected" `Quick test_table_rejects_wide_rows;
          Alcotest.test_case "float cells" `Quick test_cell_of_float;
        ] );
      ( "json",
        Alcotest.test_case "malformed inputs rejected" `Quick
          test_json_rejects_malformed
        :: Alcotest.test_case "emit examples" `Quick test_json_emit_examples
        :: Alcotest.test_case "surrogate pairs" `Quick test_json_surrogate_pairs
        :: Alcotest.test_case "nesting depth limit" `Quick
             test_json_depth_limit
        :: List.map QCheck_alcotest.to_alcotest
             [
               prop_json_roundtrip; prop_json_emit_stable;
               prop_json_surrogate_escape_equiv; prop_json_utf8_roundtrip;
             ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_clamp_inside; prop_percentile_monotone; prop_mean_between_min_max ]
      );
    ]
