(* Tests for the staged compile pipeline: Compile_plan artifacts, the
   structural plan cache, golden equivalence between the plan-based
   entry points, and the QT016 input validation. *)

open Qturbo_pauli
open Qturbo_aais
open Qturbo_core

let relaxed_line = { Device.aquila_paper with Device.max_extent = 2000.0 }
let relaxed_plane = Device.with_geometry Device.Plane relaxed_line

let rydberg_for name n =
  let spec =
    match name with "ising-cycle" | "ising-cycle+" -> relaxed_plane | _ -> relaxed_line
  in
  Rydberg.build ~spec ~n

let static_target name n =
  Pauli_sum.drop_identity
    (Qturbo_models.Model.hamiltonian_at
       (Qturbo_models.Benchmarks.by_name ~name ~n)
       ~s:0.0)

let bits_equal a b =
  Array.length a = Array.length b
  && Array.for_all2
       (fun x y -> Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float y))
       a b

let check_bits_arr msg a b =
  if not (bits_equal a b) then Alcotest.failf "%s: arrays differ bitwise" msg

let check_bits msg a b =
  if not (Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b)) then
    Alcotest.failf "%s: %h vs %h" msg a b

(* ---- golden equivalence: td(1 segment) == static compile ---- *)

(* The single-segment time-dependent compile delegates to the staged
   static pipeline, so the two entry points must agree bitwise — on the
   §5 worked example and on Fig. 3 benchmarks. *)
let test_td_single_segment_golden () =
  List.iter
    (fun (name, n) ->
      let ryd = rydberg_for name n in
      let model = Qturbo_models.Benchmarks.by_name ~name ~n in
      let target = static_target name n in
      let r =
        Compiler.compile ~aais:ryd.Rydberg.aais ~target ~t_tar:1.0 ()
      in
      let td =
        Td_compiler.compile ~aais:ryd.Rydberg.aais ~model ~t_tar:1.0
          ~segments:1 ()
      in
      (match td.Td_compiler.segments with
      | [ s ] ->
          check_bits_arr (name ^ " env") r.Compiler.env s.Td_compiler.env;
          check_bits (name ^ " duration") r.Compiler.t_sim s.Td_compiler.duration;
          check_bits (name ^ " seg error") r.Compiler.error_l1
            s.Td_compiler.error_l1;
          check_bits (name ^ " eps1") r.Compiler.eps1 s.Td_compiler.eps1
      | other -> Alcotest.failf "%s: %d segments" name (List.length other));
      check_bits (name ^ " t_sim") r.Compiler.t_sim td.Td_compiler.t_sim;
      check_bits (name ^ " error_l1") r.Compiler.error_l1
        td.Td_compiler.error_l1;
      check_bits (name ^ " relative") r.Compiler.relative_error
        td.Td_compiler.relative_error;
      Alcotest.(check int) (name ^ " binding") 0 td.Td_compiler.binding_segment)
    [ ("ising-chain", 3); ("ising-cycle", 5); ("kitaev", 5) ]

(* ---- QT016 validation ---- *)

let test_compiler_rejects_nonfinite_t_tar () =
  let ryd = rydberg_for "ising-chain" 3 in
  let target = static_target "ising-chain" 3 in
  List.iter
    (fun t_tar ->
      match
        Compiler.compile ~aais:ryd.Rydberg.aais ~target ~t_tar ()
      with
      | exception Qturbo_analysis.Diagnostic.Rejected [ d ] ->
          Alcotest.(check string) "code" "QT016" d.Qturbo_analysis.Diagnostic.code
      | exception e ->
          Alcotest.failf "expected Rejected [QT016], got %s" (Printexc.to_string e)
      | _ -> Alcotest.fail "expected Rejected [QT016], got a result")
    [ Float.nan; Float.infinity; Float.neg_infinity ]

(* ---- structural keys ---- *)

let test_plan_key_ignores_coefficients () =
  let ryd = rydberg_for "ising-chain" 5 in
  let options = Compiler.default_options in
  let base =
    Compile_plan.plan_key ~options ~aais:ryd.Rydberg.aais
      ~target:(static_target "ising-chain" 5)
  in
  (* a different support on the same device must key differently *)
  let smaller =
    Compile_plan.plan_key ~options ~aais:ryd.Rydberg.aais
      ~target:(static_target "ising-chain" 3)
  in
  Alcotest.(check bool) "support contributes" true (base <> smaller);
  (* classification-affecting options contribute too *)
  let generic =
    Compile_plan.plan_key
      ~options:{ options with Compiler.generic_local_solver = true }
      ~aais:ryd.Rydberg.aais
      ~target:(static_target "ising-chain" 5)
  in
  Alcotest.(check bool) "options contribute" true (base <> generic);
  (* a different device fingerprint (same channels structurally scaled)
     must key differently *)
  let tighter =
    Rydberg.build
      ~spec:{ relaxed_line with Device.min_separation = 7.7 }
      ~n:5
  in
  let other =
    Compile_plan.plan_key ~options ~aais:tighter.Rydberg.aais
      ~target:(static_target "ising-chain" 5)
  in
  Alcotest.(check bool) "device fingerprint contributes" true (base <> other)

let prop_plan_key_coefficient_invariant =
  QCheck.Test.make ~name:"plan key is coefficient-invariant" ~count:25
    QCheck.(pair (float_range 0.05 3.0) (float_range 0.05 3.0))
    (fun (j, h) ->
      let ryd = rydberg_for "ising-chain" 4 in
      let target ~j ~h =
        Pauli_sum.drop_identity
          (Qturbo_models.Model.hamiltonian_at
             (Qturbo_models.Benchmarks.ising_chain ~j ~h ~n:4 ())
             ~s:0.0)
      in
      let options = Compiler.default_options in
      let key = Compile_plan.plan_key ~options ~aais:ryd.Rydberg.aais in
      String.equal
        (key ~target:(target ~j ~h))
        (key ~target:(target ~j:1.0 ~h:1.0)))

(* ---- cached vs cold solves are bitwise-identical ---- *)

let cold_vs_warm ~domains (j, h) =
  let ryd = rydberg_for "ising-chain" 4 in
  let target =
    Pauli_sum.drop_identity
      (Qturbo_models.Model.hamiltonian_at
         (Qturbo_models.Benchmarks.ising_chain ~j ~h ~n:4 ())
         ~s:0.0)
  in
  let options = { Compiler.default_options with Compiler.domains } in
  Compile_plan.clear_caches ();
  let cold =
    Compiler.compile
      ~options:{ options with Compiler.plan_cache = false }
      ~aais:ryd.Rydberg.aais ~target ~t_tar:1.0 ()
  in
  (* prime the cache, then solve against the cached plan *)
  ignore (Compiler.compile ~options ~aais:ryd.Rydberg.aais ~target ~t_tar:1.0 ());
  let warm =
    Compiler.compile ~options ~aais:ryd.Rydberg.aais ~target ~t_tar:1.0 ()
  in
  if not warm.Compiler.plan.Compiler.cache_hit then
    Alcotest.fail "warm compile missed the cache";
  bits_equal cold.Compiler.env warm.Compiler.env
  && bits_equal cold.Compiler.alpha_achieved warm.Compiler.alpha_achieved
  && Int64.equal
       (Int64.bits_of_float cold.Compiler.t_sim)
       (Int64.bits_of_float warm.Compiler.t_sim)
  && Int64.equal
       (Int64.bits_of_float cold.Compiler.error_l1)
       (Int64.bits_of_float warm.Compiler.error_l1)

let prop_cached_solve_bitwise_domains_1 =
  QCheck.Test.make ~name:"cached vs cold solve, 1 domain" ~count:8
    QCheck.(pair (float_range 0.05 3.0) (float_range 0.05 3.0))
    (cold_vs_warm ~domains:1)

let prop_cached_solve_bitwise_domains_4 =
  QCheck.Test.make ~name:"cached vs cold solve, 4 domains" ~count:8
    QCheck.(pair (float_range 0.05 3.0) (float_range 0.05 3.0))
    (cold_vs_warm ~domains:4)

(* ---- the LRU cache ---- *)

let test_plan_cache_lru () =
  Alcotest.check_raises "capacity" (Invalid_argument "Plan_cache.create: capacity < 1")
    (fun () -> ignore (Plan_cache.create ~capacity:0));
  let c = Plan_cache.create ~capacity:2 in
  Alcotest.(check (option int)) "miss" None (Plan_cache.find c "a");
  Plan_cache.add c "a" 1;
  Plan_cache.add c "b" 2;
  Alcotest.(check (option int)) "hit a" (Some 1) (Plan_cache.find c "a");
  (* b is now least recently used; inserting c evicts it *)
  Plan_cache.add c "c" 3;
  Alcotest.(check (option int)) "b evicted" None (Plan_cache.find c "b");
  Alcotest.(check (option int)) "a resident" (Some 1) (Plan_cache.find c "a");
  Alcotest.(check (option int)) "c resident" (Some 3) (Plan_cache.find c "c");
  (* re-adding a resident key keeps the resident value — and counts the
     dropped fresh build instead of silently discarding it *)
  Plan_cache.add c "a" 99;
  Alcotest.(check (option int)) "resident kept" (Some 1) (Plan_cache.find c "a");
  let s = Plan_cache.stats c in
  Alcotest.(check int) "evictions" 1 s.Plan_cache.evictions;
  Alcotest.(check int) "size" 2 s.Plan_cache.size;
  Alcotest.(check int) "hits" 4 s.Plan_cache.hits;
  Alcotest.(check int) "misses" 2 s.Plan_cache.misses;
  Alcotest.(check int) "discarded" 1 s.Plan_cache.discarded;
  (* per-key telemetry: "a" saw 1 miss, 3 hits, 1 discarded build;
     "b" was evicted once; an unseen key reads all-zero *)
  let ka = Plan_cache.key_stats c "a" in
  Alcotest.(check int) "a key hits" 3 ka.Plan_cache.key_hits;
  Alcotest.(check int) "a key misses" 1 ka.Plan_cache.key_misses;
  Alcotest.(check int) "a key discarded" 1 ka.Plan_cache.key_discarded;
  let kb = Plan_cache.key_stats c "b" in
  Alcotest.(check int) "b key evictions" 1 kb.Plan_cache.key_evictions;
  Alcotest.(check bool) "unseen key zero" true
    (Plan_cache.key_stats c "nope" = Plan_cache.zero_key_stats);
  Alcotest.(check int) "per_key size" 3 (List.length (Plan_cache.per_key c));
  Plan_cache.clear c;
  let s = Plan_cache.stats c in
  Alcotest.(check int) "cleared size" 0 s.Plan_cache.size;
  Alcotest.(check int) "cleared hits" 0 s.Plan_cache.hits;
  Alcotest.(check int) "cleared misses" 0 s.Plan_cache.misses;
  Alcotest.(check int) "cleared discarded" 0 s.Plan_cache.discarded;
  Alcotest.(check int) "cleared per_key" 0 (List.length (Plan_cache.per_key c))

(* ---- stage hooks and cache plumbing ---- *)

let with_stages f =
  let stages = ref [] in
  Compiler.stage_hook := (fun s -> stages := s :: !stages);
  Fun.protect
    ~finally:(fun () -> Compiler.stage_hook := fun _ -> ())
    (fun () ->
      f ();
      List.rev !stages)

let test_stage_hook_plan_build () =
  let ryd = rydberg_for "ising-chain" 3 in
  let target = static_target "ising-chain" 3 in
  let compile () =
    ignore (Compiler.compile ~aais:ryd.Rydberg.aais ~target ~t_tar:1.0 ())
  in
  Compile_plan.clear_caches ();
  let cold = with_stages compile in
  Alcotest.(check bool) "cold builds a plan" true (List.mem "plan-build" cold);
  Alcotest.(check bool) "cold misses" false (List.mem "plan-cache-hit" cold);
  (* build precedes the solver stages *)
  let rec before a b = function
    | [] -> false
    | s :: rest -> if s = a then List.mem b rest else before a b rest
  in
  Alcotest.(check bool) "build before precheck" true
    (before "plan-build" "precheck" cold);
  let warm = with_stages compile in
  Alcotest.(check bool) "warm hits" true (List.mem "plan-cache-hit" warm);
  Alcotest.(check bool) "warm skips the build" false (List.mem "plan-build" warm)

let test_cache_stats_counters () =
  let ryd = rydberg_for "ising-chain" 3 in
  let target = static_target "ising-chain" 3 in
  Compile_plan.clear_caches ();
  let r1 = Compiler.compile ~aais:ryd.Rydberg.aais ~target ~t_tar:1.0 () in
  Alcotest.(check bool) "first is a miss" false r1.Compiler.plan.Compiler.cache_hit;
  Alcotest.(check bool) "first records a build" true
    (r1.Compiler.plan.Compiler.build_seconds > 0.0);
  let r2 = Compiler.compile ~aais:ryd.Rydberg.aais ~target ~t_tar:2.0 () in
  Alcotest.(check bool) "same shape hits" true r2.Compiler.plan.Compiler.cache_hit;
  check_bits "hit build cost is zero" 0.0 r2.Compiler.plan.Compiler.build_seconds;
  Alcotest.(check int) "hit counter" 1 r2.Compiler.plan.Compiler.cache_hits;
  Alcotest.(check int) "miss counter" 1 r2.Compiler.plan.Compiler.cache_misses;
  let s = Compile_plan.cache_stats () in
  Alcotest.(check int) "plan cache size" 1 s.Plan_cache.size;
  let d = Compile_plan.device_cache_stats () in
  Alcotest.(check bool) "device cached" true (d.Plan_cache.size >= 1);
  (* disabling the cache leaves the counters untouched *)
  let r3 =
    Compiler.compile
      ~options:{ Compiler.default_options with Compiler.plan_cache = false }
      ~aais:ryd.Rydberg.aais ~target ~t_tar:1.0 ()
  in
  Alcotest.(check bool) "disabled: no hit" false r3.Compiler.plan.Compiler.cache_hit;
  Alcotest.(check bool) "disabled flag carried" false
    r3.Compiler.plan.Compiler.cache_enabled;
  let s' = Compile_plan.cache_stats () in
  Alcotest.(check int) "no extra miss" s.Plan_cache.misses s'.Plan_cache.misses

let test_device_plan_shared_across_shapes () =
  let ryd = rydberg_for "ising-chain" 5 in
  let options = Compiler.default_options in
  Compile_plan.clear_caches ();
  let p3, _ =
    Compile_plan.obtain ~options ~aais:ryd.Rydberg.aais
      ~target:(static_target "ising-chain" 3)
  in
  let p5, _ =
    Compile_plan.obtain ~options ~aais:ryd.Rydberg.aais
      ~target:(static_target "ising-chain" 5)
  in
  Alcotest.(check bool) "distinct plans" true (p3 != p5);
  Alcotest.(check bool) "shared device part" true
    (p3.Compile_plan.device == p5.Compile_plan.device)

(* ---- compile_batch ---- *)

let test_compile_batch_matches_individual () =
  let ryd = rydberg_for "ising-chain" 4 in
  let target ~j =
    Pauli_sum.drop_identity
      (Qturbo_models.Model.hamiltonian_at
         (Qturbo_models.Benchmarks.ising_chain ~j ~n:4 ())
         ~s:0.0)
  in
  let jobs = [ (target ~j:0.5, 1.0); (target ~j:1.5, 0.7); (target ~j:2.5, 1.3) ] in
  List.iter
    (fun plan_cache ->
      let options = { Compiler.default_options with Compiler.plan_cache } in
      Compile_plan.clear_caches ();
      let batch = Compiler.compile_batch ~options ~aais:ryd.Rydberg.aais jobs in
      List.iter2
        (fun (target, t_tar) (b : Compiler.result) ->
          let r =
            Compiler.compile ~options ~aais:ryd.Rydberg.aais ~target ~t_tar ()
          in
          check_bits_arr "batch env" r.Compiler.env b.Compiler.env;
          check_bits "batch t_sim" r.Compiler.t_sim b.Compiler.t_sim;
          check_bits "batch error" r.Compiler.error_l1 b.Compiler.error_l1)
        jobs batch)
    [ true; false ]

(* ---- td shares one device part across segments ---- *)

let test_td_multi_segment_unchanged () =
  (* the plan-based td path must reproduce the historical pipeline; the
     ramped MIS chain exercises distinct coefficient sets per segment *)
  let ryd = rydberg_for "mis-chain" 5 in
  let model = Qturbo_models.Benchmarks.mis_chain ~n:5 () in
  Compile_plan.clear_caches ();
  let a =
    Td_compiler.compile ~aais:ryd.Rydberg.aais ~model ~t_tar:1.0 ~segments:4 ()
  in
  (* warm: every segment shape is now cached *)
  let b =
    Td_compiler.compile ~aais:ryd.Rydberg.aais ~model ~t_tar:1.0 ~segments:4 ()
  in
  List.iter2
    (fun (x : Td_compiler.segment_result) (y : Td_compiler.segment_result) ->
      check_bits_arr "segment env" x.Td_compiler.env y.Td_compiler.env;
      check_bits "segment duration" x.Td_compiler.duration y.Td_compiler.duration)
    a.Td_compiler.segments b.Td_compiler.segments;
  check_bits "t_sim" a.Td_compiler.t_sim b.Td_compiler.t_sim;
  check_bits "error" a.Td_compiler.error_l1 b.Td_compiler.error_l1

let () =
  let quick name f = Alcotest.test_case name `Quick f in
  Alcotest.run "plan"
    [
      ( "golden",
        [
          quick "td single segment == static compile" test_td_single_segment_golden;
          quick "td multi segment, cold == warm" test_td_multi_segment_unchanged;
        ] );
      ( "validation",
        [ quick "non-finite t_tar rejected (QT016)" test_compiler_rejects_nonfinite_t_tar ] );
      ( "keys",
        [
          quick "structural key sensitivity" test_plan_key_ignores_coefficients;
          QCheck_alcotest.to_alcotest prop_plan_key_coefficient_invariant;
        ] );
      ( "cache",
        [
          quick "bounded LRU semantics" test_plan_cache_lru;
          quick "hit/miss counters and disable" test_cache_stats_counters;
          quick "device part shared across shapes" test_device_plan_shared_across_shapes;
          QCheck_alcotest.to_alcotest prop_cached_solve_bitwise_domains_1;
          QCheck_alcotest.to_alcotest prop_cached_solve_bitwise_domains_4;
        ] );
      ( "staging",
        [
          quick "plan-build and cache-hit hooks" test_stage_hook_plan_build;
          quick "compile_batch == individual compiles" test_compile_batch_matches_individual;
        ] );
    ]
