(* Tests for qturbo.pauli: single-site algebra, Pauli strings, Pauli sums. *)

open Qturbo_pauli

let op = Alcotest.testable (fun ppf o -> Format.pp_print_string ppf (Pauli.op_to_string o)) Pauli.equal_op

let pstring =
  Alcotest.testable (fun ppf s -> Pauli_string.pp ppf s) Pauli_string.equal

(* ---- Pauli ---- *)

let test_mul_table () =
  let check a b expect_phase expect_op =
    let phase, o = Pauli.mul a b in
    Alcotest.(check bool) "phase" true (phase = expect_phase);
    Alcotest.check op "op" expect_op o
  in
  check Pauli.X Pauli.Y Pauli.Pi Pauli.Z;
  check Pauli.Y Pauli.X Pauli.Pmi Pauli.Z;
  check Pauli.Y Pauli.Z Pauli.Pi Pauli.X;
  check Pauli.Z Pauli.X Pauli.Pi Pauli.Y;
  check Pauli.X Pauli.X Pauli.P1 Pauli.I;
  check Pauli.I Pauli.Z Pauli.P1 Pauli.Z

let test_phase_mul () =
  Alcotest.(check bool) "i*i = -1" true (Pauli.phase_mul Pauli.Pi Pauli.Pi = Pauli.Pm1);
  Alcotest.(check bool) "i*-i = 1" true (Pauli.phase_mul Pauli.Pi Pauli.Pmi = Pauli.P1);
  Alcotest.(check bool) "-1*-1 = 1" true (Pauli.phase_mul Pauli.Pm1 Pauli.Pm1 = Pauli.P1)

let test_commutes () =
  Alcotest.(check bool) "X,I" true (Pauli.commutes Pauli.X Pauli.I);
  Alcotest.(check bool) "X,X" true (Pauli.commutes Pauli.X Pauli.X);
  Alcotest.(check bool) "X,Y" false (Pauli.commutes Pauli.X Pauli.Y);
  Alcotest.(check bool) "Z,Y" false (Pauli.commutes Pauli.Z Pauli.Y)

let test_op_of_char () =
  Alcotest.(check (option op)) "Z" (Some Pauli.Z) (Pauli.op_of_char 'Z');
  Alcotest.(check (option op)) "bad" None (Pauli.op_of_char 'q')

let test_matrices_unitary () =
  (* each Pauli matrix squares to the identity *)
  let mul2 a b =
    Array.init 4 (fun k ->
        let i = k / 2 and j = k mod 2 in
        Complex.add
          (Complex.mul a.((i * 2) + 0) b.(0 + j))
          (Complex.mul a.((i * 2) + 1) b.(2 + j)))
  in
  List.iter
    (fun o ->
      let m = Pauli.matrix o in
      let sq = mul2 m m in
      let id = Pauli.matrix Pauli.I in
      Array.iteri
        (fun k c ->
          if Complex.norm (Complex.sub c id.(k)) > 1e-12 then
            Alcotest.failf "%s^2 <> I" (Pauli.op_to_string o))
        sq)
    [ Pauli.I; Pauli.X; Pauli.Y; Pauli.Z ]

(* ---- Pauli_string ---- *)

let test_string_of_list_drops_identity () =
  let s = Pauli_string.of_list [ (0, Pauli.I); (3, Pauli.Z) ] in
  Alcotest.(check int) "weight" 1 (Pauli_string.weight s);
  Alcotest.check op "op at 3" Pauli.Z (Pauli_string.op_at s 3);
  Alcotest.check op "op at 0" Pauli.I (Pauli_string.op_at s 0)

let test_string_duplicate_site_rejected () =
  Alcotest.check_raises "dup" (Invalid_argument "Pauli_string.of_list: duplicate site")
    (fun () -> ignore (Pauli_string.of_list [ (1, Pauli.X); (1, Pauli.Z) ]))

let test_string_negative_site_rejected () =
  Alcotest.check_raises "neg" (Invalid_argument "Pauli_string.of_list: negative site")
    (fun () -> ignore (Pauli_string.of_list [ (-1, Pauli.X) ]))

let test_string_mul_disjoint () =
  let a = Pauli_string.single 0 Pauli.Z in
  let b = Pauli_string.single 1 Pauli.Z in
  let phase, prod = Pauli_string.mul a b in
  Alcotest.(check bool) "no phase" true (phase = Pauli.P1);
  Alcotest.check pstring "ZZ" (Pauli_string.two 0 Pauli.Z 1 Pauli.Z) prod

let test_string_mul_same_site () =
  let a = Pauli_string.single 0 Pauli.X in
  let b = Pauli_string.single 0 Pauli.Y in
  let phase, prod = Pauli_string.mul a b in
  Alcotest.(check bool) "i phase" true (phase = Pauli.Pi);
  Alcotest.check pstring "Z" (Pauli_string.single 0 Pauli.Z) prod

let test_string_mul_self_inverse () =
  let s = Pauli_string.of_string "XYZX" in
  let phase, prod = Pauli_string.mul s s in
  Alcotest.(check bool) "identity" true (Pauli_string.is_identity prod);
  (* each of X,Y,Z squares with phase +1 *)
  Alcotest.(check bool) "no phase" true (phase = Pauli.P1)

let test_string_commutes () =
  let zz = Pauli_string.of_string "ZZ" in
  let xx = Pauli_string.of_string "XX" in
  let xi = Pauli_string.of_string "XI" in
  Alcotest.(check bool) "ZZ,XX commute (two anticommuting sites)" true
    (Pauli_string.commutes zz xx);
  Alcotest.(check bool) "ZZ,XI anticommute" false (Pauli_string.commutes zz xi)

let test_string_parse_print () =
  let s = Pauli_string.of_string "IZIX" in
  Alcotest.(check string) "to_string" "IZIX" (Pauli_string.to_string s);
  Alcotest.(check string) "padded" "IZIXII" (Pauli_string.to_string ~n:6 s);
  Alcotest.(check int) "max site" 3 (Pauli_string.max_site s);
  Alcotest.(check (list int)) "support" [ 1; 3 ] (Pauli_string.support s)

let test_string_parse_rejects () =
  Alcotest.check_raises "bad char"
    (Invalid_argument "Pauli_string.of_string: invalid character") (fun () ->
      ignore (Pauli_string.of_string "XQ"))

let test_string_compare_total_order () =
  let a = Pauli_string.of_string "X" in
  let b = Pauli_string.of_string "Z" in
  Alcotest.(check bool) "antisym" true
    (Pauli_string.compare a b = -Pauli_string.compare b a);
  Alcotest.(check int) "refl" 0 (Pauli_string.compare a a)

(* ---- Pauli_sum ---- *)

let test_sum_merge_terms () =
  let zz = Pauli_string.of_string "ZZ" in
  let h = Pauli_sum.of_list [ (zz, 1.0); (zz, 2.0) ] in
  Alcotest.(check int) "one term" 1 (Pauli_sum.term_count h);
  Alcotest.(check (float 1e-12)) "merged" 3.0 (Pauli_sum.coeff h zz)

let test_sum_zero_pruned () =
  let zz = Pauli_string.of_string "ZZ" in
  let h = Pauli_sum.of_list [ (zz, 1.0); (zz, -1.0) ] in
  Alcotest.(check int) "empty" 0 (Pauli_sum.term_count h)

let test_sum_add_sub_scale () =
  let x0 = Pauli_string.single 0 Pauli.X in
  let z0 = Pauli_string.single 0 Pauli.Z in
  let a = Pauli_sum.of_list [ (x0, 1.0); (z0, 2.0) ] in
  let b = Pauli_sum.of_list [ (x0, 0.5) ] in
  let c = Pauli_sum.sub (Pauli_sum.scale 2.0 a) b in
  Alcotest.(check (float 1e-12)) "x coeff" 1.5 (Pauli_sum.coeff c x0);
  Alcotest.(check (float 1e-12)) "z coeff" 4.0 (Pauli_sum.coeff c z0)

let test_sum_norm1 () =
  let h =
    Pauli_sum.of_list
      [ (Pauli_string.single 0 Pauli.X, -3.0); (Pauli_string.single 1 Pauli.Z, 4.0) ]
  in
  Alcotest.(check (float 1e-12)) "norm1" 7.0 (Pauli_sum.norm1 h)

let test_sum_n_qubits () =
  let h = Pauli_sum.term 1.0 (Pauli_string.single 6 Pauli.Y) in
  Alcotest.(check int) "n" 7 (Pauli_sum.n_qubits h)

let test_sum_drop_identity () =
  let h =
    Pauli_sum.of_list
      [ (Pauli_string.identity, 5.0); (Pauli_string.single 0 Pauli.Z, 1.0) ]
  in
  Alcotest.(check int) "dropped" 1 (Pauli_sum.term_count (Pauli_sum.drop_identity h))

let test_sum_mul_real () =
  (* (X0)(X0) = I *)
  let x0 = Pauli_sum.term 2.0 (Pauli_string.single 0 Pauli.X) in
  let prod, all_real = Pauli_sum.mul x0 x0 in
  Alcotest.(check bool) "real" true all_real;
  Alcotest.(check (float 1e-12)) "identity coeff" 4.0
    (Pauli_sum.coeff prod Pauli_string.identity)

let test_sum_mul_imaginary_flagged () =
  let x0 = Pauli_sum.term 1.0 (Pauli_string.single 0 Pauli.X) in
  let y0 = Pauli_sum.term 1.0 (Pauli_string.single 0 Pauli.Y) in
  let _, all_real = Pauli_sum.mul x0 y0 in
  Alcotest.(check bool) "flagged" false all_real

let test_sum_equal_tol () =
  let z = Pauli_string.single 0 Pauli.Z in
  let a = Pauli_sum.term 1.0 z and b = Pauli_sum.term 1.0000001 z in
  Alcotest.(check bool) "within tol" true (Pauli_sum.equal ~tol:1e-5 a b);
  Alcotest.(check bool) "strict" false (Pauli_sum.equal a b)

(* number-operator identities used by the models *)
let test_number_operator_expansion () =
  let n0 = Qturbo_models.Rydberg_ops.number 0 in
  Alcotest.(check (float 1e-12)) "identity part" 0.5
    (Pauli_sum.coeff n0 Pauli_string.identity);
  Alcotest.(check (float 1e-12)) "z part" (-0.5)
    (Pauli_sum.coeff n0 (Pauli_string.single 0 Pauli.Z));
  (* n̂² = n̂ (projector): check via product *)
  let sq, real = Pauli_sum.mul n0 n0 in
  Alcotest.(check bool) "real" true real;
  Alcotest.(check bool) "projector" true (Pauli_sum.equal ~tol:1e-12 sq n0)

let test_number_number_expansion () =
  let nn = Qturbo_models.Rydberg_ops.number_number 0 1 in
  let direct, real =
    Pauli_sum.mul (Qturbo_models.Rydberg_ops.number 0) (Qturbo_models.Rydberg_ops.number 1)
  in
  Alcotest.(check bool) "real" true real;
  Alcotest.(check bool) "n0*n1 = nn" true (Pauli_sum.equal ~tol:1e-12 direct nn)

(* ---- qcheck properties ---- *)

let op_gen = QCheck.Gen.oneofl [ Pauli.I; Pauli.X; Pauli.Y; Pauli.Z ]

let string_gen =
  QCheck.Gen.(
    int_range 0 5 >>= fun n ->
    list_repeat n op_gen >>= fun ops ->
    return (Pauli_string.of_list (List.mapi (fun i o -> (i, o)) ops)))

let arb_string = QCheck.make ~print:(Format.asprintf "%a" Pauli_string.pp) string_gen

let prop_mul_weight_support =
  QCheck.Test.make ~name:"product support within union of supports" ~count:300
    (QCheck.pair arb_string arb_string) (fun (a, b) ->
      let _, p = Pauli_string.mul a b in
      List.for_all
        (fun site ->
          List.mem site (Pauli_string.support a) || List.mem site (Pauli_string.support b))
        (Pauli_string.support p))

let prop_mul_identity =
  QCheck.Test.make ~name:"identity is a two-sided unit" ~count:200 arb_string
    (fun s ->
      let p1, l = Pauli_string.mul Pauli_string.identity s in
      let p2, r = Pauli_string.mul s Pauli_string.identity in
      p1 = Pauli.P1 && p2 = Pauli.P1 && Pauli_string.equal l s && Pauli_string.equal r s)

let prop_commute_symmetric =
  QCheck.Test.make ~name:"commutation relation is symmetric" ~count:300
    (QCheck.pair arb_string arb_string) (fun (a, b) ->
      Pauli_string.commutes a b = Pauli_string.commutes b a)

let prop_self_square_identity =
  QCheck.Test.make ~name:"every string squares to the identity" ~count:300
    arb_string (fun s ->
      let _, p = Pauli_string.mul s s in
      Pauli_string.is_identity p)

let prop_sum_add_commutative =
  QCheck.Test.make ~name:"pauli-sum addition is commutative" ~count:200
    (QCheck.pair (QCheck.pair arb_string QCheck.(float_range (-3.) 3.))
       (QCheck.pair arb_string QCheck.(float_range (-3.) 3.)))
    (fun (((s1, c1)), ((s2, c2))) ->
      let a = Pauli_sum.term c1 s1 and b = Pauli_sum.term c2 s2 in
      Pauli_sum.equal ~tol:1e-12 (Pauli_sum.add a b) (Pauli_sum.add b a))

let () =
  Alcotest.run "pauli"
    [
      ( "pauli",
        [
          Alcotest.test_case "multiplication table" `Quick test_mul_table;
          Alcotest.test_case "phase multiplication" `Quick test_phase_mul;
          Alcotest.test_case "commutation" `Quick test_commutes;
          Alcotest.test_case "parsing" `Quick test_op_of_char;
          Alcotest.test_case "matrices square to I" `Quick test_matrices_unitary;
        ] );
      ( "pauli_string",
        [
          Alcotest.test_case "identity dropped" `Quick test_string_of_list_drops_identity;
          Alcotest.test_case "duplicate rejected" `Quick test_string_duplicate_site_rejected;
          Alcotest.test_case "negative rejected" `Quick test_string_negative_site_rejected;
          Alcotest.test_case "disjoint product" `Quick test_string_mul_disjoint;
          Alcotest.test_case "same-site product" `Quick test_string_mul_same_site;
          Alcotest.test_case "self inverse" `Quick test_string_mul_self_inverse;
          Alcotest.test_case "string commutation" `Quick test_string_commutes;
          Alcotest.test_case "parse print" `Quick test_string_parse_print;
          Alcotest.test_case "parse rejects" `Quick test_string_parse_rejects;
          Alcotest.test_case "total order" `Quick test_string_compare_total_order;
        ] );
      ( "pauli_sum",
        [
          Alcotest.test_case "merge" `Quick test_sum_merge_terms;
          Alcotest.test_case "zero pruned" `Quick test_sum_zero_pruned;
          Alcotest.test_case "arith" `Quick test_sum_add_sub_scale;
          Alcotest.test_case "norm1" `Quick test_sum_norm1;
          Alcotest.test_case "n_qubits" `Quick test_sum_n_qubits;
          Alcotest.test_case "drop identity" `Quick test_sum_drop_identity;
          Alcotest.test_case "real product" `Quick test_sum_mul_real;
          Alcotest.test_case "imaginary flag" `Quick test_sum_mul_imaginary_flagged;
          Alcotest.test_case "tolerant equality" `Quick test_sum_equal_tol;
          Alcotest.test_case "number operator" `Quick test_number_operator_expansion;
          Alcotest.test_case "number-number" `Quick test_number_number_expansion;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_mul_weight_support;
            prop_mul_identity;
            prop_commute_symmetric;
            prop_self_square_identity;
            prop_sum_add_commutative;
          ] );
    ]
