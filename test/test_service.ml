(* Tests for the compile service: strict request parsing, the
   socket-free request handler (response shapes, typed errors, warm
   plan-cache reuse, CLI parity), and one end-to-end daemon round-trip
   over a real Unix-domain socket. *)

module J = Qturbo_util.Json
module Protocol = Qturbo_service.Protocol
module Server = Qturbo_service.Server
module Ops = Qturbo_service.Ops
module Client = Qturbo_service.Client

let parse_ok line =
  match Protocol.parse_line line with
  | Ok req -> req
  | Error msg -> Alcotest.failf "%s did not parse: %s" line msg

let parse_err line =
  match Protocol.parse_line line with
  | Ok req ->
      Alcotest.failf "%s parsed as %s, expected an error" line
        (Protocol.op_name req)
  | Error msg -> msg

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let check_contains msg ~needle hay =
  if not (contains ~needle hay) then
    Alcotest.failf "%s: %S not in %s" msg needle hay

(* ---- protocol ---- *)

let test_protocol_parse () =
  (match parse_ok {|{"op":"ping"}|} with
  | Protocol.Ping -> ()
  | req -> Alcotest.failf "expected ping, got %s" (Protocol.op_name req));
  (match parse_ok {|{"op":"compile","model":"ising-chain"}|} with
  | Protocol.Compile c ->
      (* documented defaults *)
      Alcotest.(check int) "default n" 5 c.Protocol.job.Protocol.n;
      Alcotest.(check string) "default backend" "rydberg"
        c.Protocol.job.Protocol.backend;
      Alcotest.(check bool) "default best_effort" false
        c.Protocol.best_effort
  | req -> Alcotest.failf "expected compile, got %s" (Protocol.op_name req));
  (match
     parse_ok
       {|{"op":"sweep","model":"ising-chain","n":4,"sweep_j":"0.1:0.3:3","best_effort":true}|}
   with
  | Protocol.Sweep s ->
      Alcotest.(check string) "sweep_j" "0.1:0.3:3" s.Protocol.sweep_j;
      Alcotest.(check bool) "best_effort" true s.Protocol.sweep_best_effort
  | req -> Alcotest.failf "expected sweep, got %s" (Protocol.op_name req))

let test_protocol_strict () =
  (* unknown op *)
  check_contains "unknown op" ~needle:"unknown op"
    (parse_err {|{"op":"frobnicate"}|});
  (* a typo'd field is an error, not a silently applied default *)
  check_contains "unknown field" ~needle:"t_targ"
    (parse_err {|{"op":"compile","model":"ising-chain","t_targ":2.0}|});
  (* ping accepts nothing but op *)
  check_contains "ping is closed" ~needle:"unknown field"
    (parse_err {|{"op":"ping","extra":1}|});
  (* type errors *)
  check_contains "n must be a number" ~needle:"\"n\""
    (parse_err {|{"op":"compile","model":"ising-chain","n":"five"}|});
  check_contains "n must be integral" ~needle:"integer"
    (parse_err {|{"op":"compile","model":"ising-chain","n":2.5}|});
  (* shape errors *)
  check_contains "needs op" ~needle:"op" (parse_err {|{"model":"x"}|});
  check_contains "object only" ~needle:"object" (parse_err {|[1,2]|});
  check_contains "invalid JSON" ~needle:"invalid JSON" (parse_err "{nope")

(* ---- the socket-free handler ---- *)

let handle line = Server.handle_request ~requests:1 ~started:0.0 line

let response_fields resp =
  match J.parse_exn resp with
  | J.Object fields -> fields
  | _ -> Alcotest.failf "response is not an object: %s" resp

let response_result resp =
  let fields = response_fields resp in
  match (List.assoc_opt "ok" fields, List.assoc_opt "result" fields) with
  | Some (J.Bool true), Some v -> v
  | _ -> Alcotest.failf "expected an ok response, got %s" resp

let response_error resp =
  let fields = response_fields resp in
  match (List.assoc_opt "ok" fields, List.assoc_opt "error" fields) with
  | Some (J.Bool false), Some (J.Object err) -> (
      match List.assoc_opt "kind" err with
      | Some (J.String kind) -> (kind, err)
      | _ -> Alcotest.failf "error without kind: %s" resp)
  | _ -> Alcotest.failf "expected an error response, got %s" resp

let test_handler_basics () =
  let resp, keep = handle {|{"op":"ping"}|} in
  Alcotest.(check string) "ping" {|{"ok":true,"result":"pong"}|} resp;
  Alcotest.(check bool) "ping keeps serving" true keep;
  let _, keep = handle {|{"op":"shutdown"}|} in
  Alcotest.(check bool) "shutdown stops" false keep;
  let resp, keep = handle "definitely not json" in
  let kind, _ = response_error resp in
  Alcotest.(check string) "malformed is a parse error" "parse" kind;
  Alcotest.(check bool) "parse errors keep serving" true keep;
  (* the depth bomb gets a clean parse error, not a crash *)
  let resp, _ = handle (String.make 10_000 '[') in
  let kind, _ = response_error resp in
  Alcotest.(check string) "depth bomb" "parse" kind;
  (* stats is well-formed *)
  let resp, _ = handle {|{"op":"stats"}|} in
  match response_result resp with
  | J.Object fields ->
      List.iter
        (fun k ->
          if not (List.mem_assoc k fields) then
            Alcotest.failf "stats lacks %S: %s" k resp)
        [ "requests"; "uptime_seconds"; "plan_cache"; "plan_store" ]
  | _ -> Alcotest.fail "stats result is not an object"

let test_handler_compile_and_warm_cache () =
  Qturbo_core.Compile_plan.clear_caches ();
  let req = {|{"op":"compile","model":"ising-chain","n":5}|} in
  let member path v =
    List.fold_left
      (fun v k ->
        match v with
        | J.Object fields -> (
            match List.assoc_opt k fields with
            | Some v -> v
            | None -> Alcotest.failf "missing field %s" k)
        | _ -> Alcotest.failf "not an object at %s" k)
      v path
  in
  let resp1, _ = handle req in
  let r1 = response_result resp1 in
  (match member [ "plan_cache"; "hit" ] r1 with
  | J.Bool false -> ()
  | _ -> Alcotest.fail "first compile should build its plan");
  let resp2, _ = handle req in
  let r2 = response_result resp2 in
  (match member [ "plan_cache"; "hit" ] r2 with
  | J.Bool true -> ()
  | _ -> Alcotest.fail "second compile should reuse the warm plan");
  (* numbers agree across the warm hit *)
  let error_l1 v =
    match member [ "error_l1" ] v with
    | J.Number f -> f
    | _ -> Alcotest.fail "error_l1 missing"
  in
  Alcotest.(check bool) "error_l1 identical" true
    (Int64.equal
       (Int64.bits_of_float (error_l1 r1))
       (Int64.bits_of_float (error_l1 r2)))

let test_handler_typed_errors () =
  let kind_of line = fst (response_error (fst (handle line))) in
  Alcotest.(check string) "unknown model is a user error" "user"
    (kind_of {|{"op":"compile","model":"not-a-model"}|});
  Alcotest.(check string) "driven model rejected" "user"
    (kind_of {|{"op":"compile","model":"mis-chain"}|});
  (* an analyzer rejection (uncoverable target) carries its diagnostics *)
  let resp, _ = handle {|{"op":"compile","hamiltonian":"1.0*Y0 Y1"}|} in
  let kind, err = response_error resp in
  Alcotest.(check string) "rejected" "rejected" kind;
  (match List.assoc_opt "diagnostics" err with
  | Some (J.Object _) -> ()
  | _ -> Alcotest.failf "rejection without diagnostics: %s" resp);
  (* requests after an error still work: the daemon survives *)
  let resp, keep = handle {|{"op":"ping"}|} in
  Alcotest.(check string) "still alive" {|{"ok":true,"result":"pong"}|} resp;
  Alcotest.(check bool) "keep" true keep

(* A daemon compile response's result matches the payload the CLI's
   --json path builds for the same job (both call Ops) — modulo the
   plan_cache object, which carries wall-clock timings. *)
let drop_plan_cache = function
  | J.Object fields ->
      J.Object (List.filter (fun (k, _) -> k <> "plan_cache") fields)
  | v -> v

let test_handler_cli_parity () =
  Qturbo_core.Compile_plan.clear_caches ();
  let resp, _ = handle {|{"op":"compile","model":"ising-chain","n":5}|} in
  Qturbo_core.Compile_plan.clear_caches ();
  let model =
    Ops.resolve_model ~hamiltonian:None ~model_name:(Some "ising-chain") ~n:5
      ~j:0.0 ~h:0.0
  in
  let inst =
    Ops.resolve_backend ~backend:"rydberg" ~device:None ~cutoff:None
      ~ramp:false ~model_name:model.Qturbo_models.Model.name
      ~n:model.Qturbo_models.Model.n
  in
  let direct =
    Ops.compile_report_json ~options:Qturbo_core.Compiler.default_options
      ~inst
      ~target:(Ops.static_target model)
      ~t_tar:1.0 ~show_pulse:false ~ramp:false ()
  in
  Alcotest.(check string) "daemon result = CLI --json payload"
    (J.emit (drop_plan_cache (J.parse_exn direct)))
    (J.emit (drop_plan_cache (response_result resp)))

(* ---- end-to-end over a real socket ---- *)

let test_socket_end_to_end () =
  let socket_path = Filename.temp_file "qturbo-serve-test" ".sock" in
  Sys.remove socket_path;
  let config =
    { (Server.default_config ~socket_path) with Server.max_requests = Some 8 }
  in
  let daemon = Thread.create Server.serve config in
  let deadline = Unix.gettimeofday () +. 10.0 in
  while (not (Sys.file_exists socket_path)) && Unix.gettimeofday () < deadline
  do
    Thread.delay 0.01
  done;
  Fun.protect
    ~finally:(fun () ->
      (* belt and braces: the daemon removes it on clean shutdown *)
      if Sys.file_exists socket_path then Sys.remove socket_path)
    (fun () ->
      let request line =
        match Client.request ~socket_path line with
        | Ok resp -> resp
        | Error msg -> Alcotest.failf "client error: %s" msg
      in
      Alcotest.(check string) "ping" {|{"ok":true,"result":"pong"}|}
        (request {|{"op":"ping"}|});
      let resp = request {|{"op":"check","model":"ising-chain","n":4}|} in
      Alcotest.(check bool) "check ok" true (Client.response_ok resp);
      let resp = request {|{"op":"compile","model":"bogus"}|} in
      Alcotest.(check bool) "error response" false (Client.response_ok resp);
      check_contains "user error over the wire" ~needle:{|"kind":"user"|} resp;
      Alcotest.(check string) "shutdown" {|{"ok":true,"result":"shutting down"}|}
        (request {|{"op":"shutdown"}|});
      Thread.join daemon;
      Alcotest.(check bool) "socket removed" false (Sys.file_exists socket_path);
      match Client.request ~socket_path {|{"op":"ping"}|} with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "daemon still answering after shutdown")

let () =
  Alcotest.run "service"
    [
      ( "protocol",
        [
          Alcotest.test_case "requests parse" `Quick test_protocol_parse;
          Alcotest.test_case "strict fields" `Quick test_protocol_strict;
        ] );
      ( "handler",
        [
          Alcotest.test_case "basics" `Quick test_handler_basics;
          Alcotest.test_case "compile + warm cache" `Quick
            test_handler_compile_and_warm_cache;
          Alcotest.test_case "typed errors" `Quick test_handler_typed_errors;
          Alcotest.test_case "CLI --json parity" `Quick
            test_handler_cli_parity;
        ] );
      ( "socket",
        [ Alcotest.test_case "end to end" `Quick test_socket_end_to_end ] );
    ]
