(* Coverage suite: corners of the public APIs not exercised by the main
   per-library suites, plus semantic property tests for the expression
   simplifier/differentiator over randomly generated trees. *)

open Qturbo_util

let check_close msg tol a b =
  if Float.abs (a -. b) > tol then Alcotest.failf "%s: %.10g vs %.10g" msg a b

(* ---- util corners ---- *)

let test_stderr_mean () =
  (* sd of [1;3] = sqrt 2, stderr = 1 *)
  check_close "stderr" 1e-12 1.0 (Stats.stderr_mean [| 1.0; 3.0 |])

let test_rng_split_reproducible () =
  let mk () =
    let parent = Rng.create ~seed:99L in
    let child = Rng.split parent in
    (Rng.next_int64 parent, Rng.next_int64 child)
  in
  Alcotest.(check bool) "deterministic split" true (mk () = mk ())

let test_table_header_only () =
  let t = Table_fmt.create ~header:[ "a"; "b" ] in
  let lines = String.split_on_char '\n' (Table_fmt.render t) in
  Alcotest.(check int) "header and separator only" 2 (List.length lines)

(* ---- linalg corners ---- *)

open Qturbo_linalg

let test_mat_row_col_frobenius () =
  let m = Mat.of_rows [| [| 3.0; 4.0 |]; [| 0.0; 0.0 |] |] in
  Alcotest.(check (array (float 1e-12))) "row" [| 3.0; 4.0 |] (Mat.row m 0);
  Alcotest.(check (array (float 1e-12))) "col" [| 4.0; 0.0 |] (Mat.col m 1);
  check_close "frobenius" 1e-12 5.0 (Mat.frobenius m)

let test_lu_factor_reuse () =
  let a = Mat.of_rows [| [| 2.0; 0.0 |]; [| 0.0; 4.0 |] |] in
  let f = Lu.factorize a in
  Alcotest.(check (array (float 1e-12))) "rhs 1" [| 1.0; 0.5 |]
    (Lu.solve_factored f [| 2.0; 2.0 |]);
  Alcotest.(check (array (float 1e-12))) "rhs 2" [| 2.0; 1.0 |]
    (Lu.solve_factored f [| 4.0; 4.0 |])

let test_csr_row_entries () =
  let s =
    Csr.of_triplets ~rows:2 ~cols:4
      [
        { Csr.row = 0; col = 3; value = 7.0 };
        { Csr.row = 0; col = 1; value = 5.0 };
      ]
  in
  Alcotest.(check (list (pair int (float 1e-12)))) "sorted columns"
    [ (1, 5.0); (3, 7.0) ]
    (Csr.row_entries s 0);
  Alcotest.(check (list (pair int (float 1e-12)))) "empty row" [] (Csr.row_entries s 1)

let test_sparse_residual_standalone () =
  let rows = [ { Sparse_solve.cells = [ (0, 2.0) ]; rhs = 4.0 } ] in
  check_close "residual of guess" 1e-12 2.0
    (Sparse_solve.residual_l1 ~ncols:1 rows [| 3.0 |])

(* ---- optim corners ---- *)

open Qturbo_optim

let test_multistart_exhausts_starts () =
  let rng = Rng.create ~seed:3L in
  let best, used =
    Multistart.search ~rng ~starts:5
      ~sample:(fun rng -> [| Rng.uniform rng ~lo:0.0 ~hi:1.0 |])
      ~solve:(fun x0 -> (Levenberg_marquardt.minimize (fun x -> [| x.(0) |]) x0, ()))
      ~accept:(fun _ -> false)
      ()
  in
  Alcotest.(check int) "all starts consumed" 5 used;
  Alcotest.(check bool) "best kept anyway" true (best <> None)

let test_golden_respects_bracket () =
  let r = Scalar.golden_min ~f:(fun x -> -.x) ~lo:0.0 ~hi:2.0 () in
  Alcotest.(check bool) "argmin at upper end" true (r.Scalar.argmin > 1.99)

let test_nm_respects_iteration_cap () =
  let options = { Nelder_mead.default_options with Nelder_mead.max_iterations = 3 } in
  let r = Nelder_mead.minimize ~options (fun x -> x.(0) ** 2.0) [| 100.0 |] in
  Alcotest.(check bool) "stopped by cap" true (r.Objective.iterations <= 3)

(* ---- aais corners ---- *)

open Qturbo_aais

let test_variable_lookup () =
  let pool = Variable.create_pool () in
  let v = Variable.fresh pool ~name:"x" ~kind:Variable.Runtime_fixed ~lo:1.0 ~hi:2.0 () in
  let fetched = Variable.get pool v.Variable.id in
  Alcotest.(check string) "name" "x" fetched.Variable.name;
  Alcotest.(check int) "bounds array" 1 (Array.length (Variable.bounds_array pool));
  Alcotest.check_raises "unknown id" (Invalid_argument "Variable.get: unknown id")
    (fun () -> ignore (Variable.get pool 7))

let test_device_with_control () =
  let s = Device.with_control Device.Global Device.aquila_paper in
  Alcotest.(check bool) "control flipped" true (s.Device.control = Device.Global);
  Alcotest.(check string) "rest untouched" Device.aquila_paper.Device.name s.Device.name

let test_expr_pp_smoke () =
  let text = Format.asprintf "%a" Expr.pp Expr.(Mul (Const 2.0, Sin (Var 3))) in
  Alcotest.(check bool) "mentions operands" true
    (String.length text > 0
    && String.index_opt text 's' <> None
    && String.index_opt text '2' <> None)

let test_rydberg_single_atom () =
  (* no pairs: only detuning and rabi instructions *)
  let ryd = Rydberg.build ~spec:Device.aquila_paper ~n:1 in
  Alcotest.(check int) "two instructions" 2
    (List.length ryd.Rydberg.aais.Aais.instructions)

(* ---- core corners ---- *)

open Qturbo_core

let golden () =
  let ryd = Rydberg.build ~spec:Device.aquila_paper ~n:3 in
  let target =
    Qturbo_pauli.Pauli_sum.drop_identity
      (Qturbo_models.Model.hamiltonian_at
         (Qturbo_models.Benchmarks.ising_chain ~n:3 ())
         ~s:0.0)
  in
  (ryd, target, Compiler.compile ~aais:ryd.Rydberg.aais ~target ~t_tar:1.0 ())

let test_component_summaries_content () =
  let _, _, r = golden () in
  let by_class c =
    List.filter
      (fun (s : Compiler.component_summary) -> s.Compiler.classification = c)
      r.Compiler.components
  in
  Alcotest.(check int) "one fixed component" 1 (List.length (by_class "fixed"));
  Alcotest.(check int) "three polar" 3 (List.length (by_class "polar"));
  List.iter
    (fun (s : Compiler.component_summary) ->
      check_close "polar bottleneck time" 1e-9 0.8 s.Compiler.min_time;
      Alcotest.(check int) "polar channel pair" 2 s.Compiler.channels)
    (by_class "polar")

let test_extract_segments_rejects_empty () =
  let ryd = Rydberg.build ~spec:Device.aquila_paper ~n:2 in
  Alcotest.check_raises "empty"
    (Invalid_argument "Extract.rydberg_pulse_segments: no segments") (fun () ->
      ignore (Extract.rydberg_pulse_segments ryd ~segments:[]))

let test_b_tar_norm () =
  let ryd, target, _ = golden () in
  (* ||B_tar||_1 = 5 terms x 1 MHz x 1 us *)
  check_close "norm" 1e-12 5.0
    (Compiler.b_tar_norm1 ~aais:ryd.Rydberg.aais ~target ~t_tar:1.0)

let test_td_binding_segment_in_range () =
  let spec = { Device.aquila_paper with Device.max_extent = 1e6 } in
  let ryd = Rydberg.build ~spec ~n:3 in
  let model = Qturbo_models.Benchmarks.mis_chain ~n:3 () in
  let td = Td_compiler.compile ~aais:ryd.Rydberg.aais ~model ~t_tar:1.0 ~segments:5 () in
  Alcotest.(check bool) "binding segment indexes a segment" true
    (td.Td_compiler.binding_segment >= 0 && td.Td_compiler.binding_segment < 5)

(* ---- quantum corners ---- *)

open Qturbo_quantum

let test_state_probabilities_sum () =
  let h =
    Qturbo_models.Model.hamiltonian_at (Qturbo_models.Benchmarks.ising_chain ~n:3 ()) ~s:0.0
  in
  let s = Evolve.evolve ~h ~t:0.9 (State.ground ~n:3) in
  let total = Array.fold_left ( +. ) 0.0 (State.probabilities s) in
  check_close "sums to one" 1e-9 1.0 total

let test_krylov_dt_max_override () =
  check_close "explicit dt_max" 1e-12 10.0
    (float_of_int (Krylov.step_count ~norm1:100.0 ~t:1.0 ~dt_max:(Some 0.1)))

let test_trotter_single_step_api () =
  let h = Qturbo_pauli.Pauli_sum.term 1.0 (Qturbo_pauli.Pauli_string.single 0 Qturbo_pauli.Pauli.Z) in
  let s = Trotter.step_first_order ~h ~dt:0.5 (State.basis ~n:1 1) in
  (* exp(-i(-1)0.5)|1>: probability unchanged *)
  check_close "diagonal step" 1e-12 1.0 (State.probability s 1)

let test_apply_compiled_n () =
  let c = Apply.compile ~n:4 Qturbo_pauli.Pauli_sum.zero in
  Alcotest.(check int) "n recorded" 4 (Apply.compiled_n c)

(* ---- Expr semantic properties over random trees ---- *)

let expr_gen =
  let open QCheck.Gen in
  let leaf =
    oneof [ map (fun x -> Expr.Const x) (float_range (-3.0) 3.0);
            map (fun v -> Expr.Var v) (int_range 0 2) ]
  in
  fix
    (fun self depth ->
      if depth <= 0 then leaf
      else
        let sub = self (depth - 1) in
        oneof
          [
            leaf;
            map (fun a -> Expr.Neg a) sub;
            map2 (fun a b -> Expr.Add (a, b)) sub sub;
            map2 (fun a b -> Expr.Sub (a, b)) sub sub;
            map2 (fun a b -> Expr.Mul (a, b)) sub sub;
            map (fun a -> Expr.Sin a) sub;
            map (fun a -> Expr.Cos a) sub;
            map (fun a -> Expr.Pow_int (a, 2)) sub;
          ])
    3

let arb_expr = QCheck.make ~print:(Format.asprintf "%a" Expr.pp) expr_gen

let sample_env = [| 0.7; -1.3; 2.1 |]

let prop_simplify_preserves_value =
  QCheck.Test.make ~name:"simplify preserves the evaluated value" ~count:300
    arb_expr (fun e ->
      let a = Expr.eval e ~env:sample_env in
      let b = Expr.eval (Expr.simplify e) ~env:sample_env in
      (Float.is_nan a && Float.is_nan b) || Float.abs (a -. b) <= 1e-9 *. Float.max 1.0 (Float.abs a))

let prop_deriv_matches_finite_difference =
  QCheck.Test.make ~name:"symbolic derivative matches finite differences"
    ~count:200 arb_expr (fun e ->
      let v = 0 in
      let f x =
        let env = Array.copy sample_env in
        env.(v) <- x;
        Expr.eval e ~env
      in
      let x0 = sample_env.(v) in
      let h = 1e-6 in
      let numeric = (f (x0 +. h) -. f (x0 -. h)) /. (2.0 *. h) in
      let symbolic =
        let env = Array.copy sample_env in
        Expr.eval (Expr.deriv e v) ~env
      in
      (not (Float.is_finite numeric))
      || Float.abs (numeric -. symbolic) <= 1e-3 *. Float.max 1.0 (Float.abs symbolic))

let prop_vars_sound =
  QCheck.Test.make ~name:"changing a non-listed variable never changes the value"
    ~count:200 arb_expr (fun e ->
      let vars = Expr.vars e in
      let untouched = List.filter (fun v -> not (List.mem v vars)) [ 0; 1; 2 ] in
      List.for_all
        (fun v ->
          let env = Array.copy sample_env in
          env.(v) <- env.(v) +. 5.0;
          let a = Expr.eval e ~env:sample_env and b = Expr.eval e ~env in
          (Float.is_nan a && Float.is_nan b) || a = b)
        untouched)

let () =
  Alcotest.run "coverage"
    [
      ( "util",
        [
          Alcotest.test_case "stderr_mean" `Quick test_stderr_mean;
          Alcotest.test_case "split reproducible" `Quick test_rng_split_reproducible;
          Alcotest.test_case "empty table" `Quick test_table_header_only;
        ] );
      ( "linalg",
        [
          Alcotest.test_case "row/col/frobenius" `Quick test_mat_row_col_frobenius;
          Alcotest.test_case "LU factor reuse" `Quick test_lu_factor_reuse;
          Alcotest.test_case "csr row entries" `Quick test_csr_row_entries;
          Alcotest.test_case "sparse residual" `Quick test_sparse_residual_standalone;
        ] );
      ( "optim",
        [
          Alcotest.test_case "multistart exhausts" `Quick test_multistart_exhausts_starts;
          Alcotest.test_case "golden bracket" `Quick test_golden_respects_bracket;
          Alcotest.test_case "NM iteration cap" `Quick test_nm_respects_iteration_cap;
        ] );
      ( "aais",
        [
          Alcotest.test_case "variable lookup" `Quick test_variable_lookup;
          Alcotest.test_case "with_control" `Quick test_device_with_control;
          Alcotest.test_case "expr pp" `Quick test_expr_pp_smoke;
          Alcotest.test_case "single atom" `Quick test_rydberg_single_atom;
        ] );
      ( "core",
        [
          Alcotest.test_case "component summaries" `Quick test_component_summaries_content;
          Alcotest.test_case "extract empty segments" `Quick test_extract_segments_rejects_empty;
          Alcotest.test_case "b_tar norm" `Quick test_b_tar_norm;
          Alcotest.test_case "binding segment" `Quick test_td_binding_segment_in_range;
        ] );
      ( "quantum",
        [
          Alcotest.test_case "probabilities sum" `Quick test_state_probabilities_sum;
          Alcotest.test_case "krylov dt_max" `Quick test_krylov_dt_max_override;
          Alcotest.test_case "trotter step api" `Quick test_trotter_single_step_api;
          Alcotest.test_case "compiled_n" `Quick test_apply_compiled_n;
        ] );
      ( "expr_properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_simplify_preserves_value;
            prop_deriv_matches_finite_difference;
            prop_vars_sound;
          ] );
    ]
