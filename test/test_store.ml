(* Tests for the persistent plan store: entry format validation (the
   corruption suite), the Compile_plan integration (cold-process reuse,
   fall-back-to-rebuild, self-repair), and bitwise identity of compile
   results with the store on or off at several domain counts. *)

open Qturbo_pauli
open Qturbo_aais
open Qturbo_core
module PS = Qturbo_store.Plan_store

let relaxed_line = { Device.aquila_paper with Device.max_extent = 2000.0 }

let rydberg_for n = Rydberg.build ~spec:relaxed_line ~n

let static_target name n =
  Pauli_sum.drop_identity
    (Qturbo_models.Model.hamiltonian_at
       (Qturbo_models.Benchmarks.by_name ~name ~n)
       ~s:0.0)

let bits_equal a b =
  Array.length a = Array.length b
  && Array.for_all2
       (fun x y -> Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float y))
       a b

let check_bits_arr msg a b =
  if not (bits_equal a b) then Alcotest.failf "%s: arrays differ bitwise" msg

let check_bits msg a b =
  if not (Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b)) then
    Alcotest.failf "%s: %h vs %h" msg a b

(* temp_file reserves a unique name; the store recreates it as a dir *)
let fresh_dir () =
  let f = Filename.temp_file "qturbo-store-test" "" in
  Sys.remove f;
  f

let rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
    Sys.rmdir dir
  end

let read_file path = In_channel.with_open_bin path In_channel.input_all

let write_file path bytes =
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc bytes)

(* ---- Plan_store unit tests: byte-level validation ---- *)

let with_raw_store f =
  let dir = fresh_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () ->
      f (PS.open_store ~version:"test/1" ~dir) dir)

let check_stats msg store ~hits ~misses ~corrupt ~version_mismatch ~writes =
  let s = PS.stats store in
  Alcotest.(check int) (msg ^ ": hits") hits s.PS.hits;
  Alcotest.(check int) (msg ^ ": misses") misses s.PS.misses;
  Alcotest.(check int) (msg ^ ": corrupt") corrupt s.PS.corrupt;
  Alcotest.(check int)
    (msg ^ ": version_mismatch")
    version_mismatch s.PS.version_mismatch;
  Alcotest.(check int) (msg ^ ": writes") writes s.PS.writes

let test_store_roundtrip () =
  with_raw_store @@ fun store _dir ->
  let key = "some structural key\nwith newlines"
  and payload = "opaque \x00 binary \xff payload" in
  Alcotest.(check bool) "save" true (PS.save store ~key ~payload);
  Alcotest.(check (option string)) "load" (Some payload)
    (PS.load store ~key);
  Alcotest.(check (option string)) "other key absent" None
    (PS.load store ~key:"different key");
  check_stats "round-trip" store ~hits:1 ~misses:1 ~corrupt:0
    ~version_mismatch:0 ~writes:1;
  (* a save replaces the prior entry *)
  Alcotest.(check bool) "re-save" true (PS.save store ~key ~payload:"v2");
  Alcotest.(check (option string)) "replaced" (Some "v2")
    (PS.load store ~key)

let test_store_corruption_suite () =
  with_raw_store @@ fun store _dir ->
  let key = "corruption victim" and payload = "payload bytes to protect" in
  let path = PS.entry_path store ~key in
  let plant () = ignore (PS.save store ~key ~payload) in
  let expect_invalid msg =
    match PS.load store ~key with
    | None -> ()
    | Some _ -> Alcotest.failf "%s: load accepted a damaged entry" msg
  in
  (* truncated file *)
  plant ();
  let whole = read_file path in
  write_file path (String.sub whole 0 (String.length whole / 2));
  expect_invalid "truncated";
  (* garbage bytes *)
  write_file path "complete garbage, not even a header";
  expect_invalid "garbage";
  (* one flipped payload byte breaks the checksum *)
  plant ();
  let whole = read_file path in
  let b = Bytes.of_string whole in
  let last = Bytes.length b - 1 in
  Bytes.set b last (Char.chr (Char.code (Bytes.get b last) lxor 1));
  write_file path (Bytes.to_string b);
  expect_invalid "flipped byte";
  (* an entry written under a different store-format version *)
  plant ();
  let other = PS.open_store ~version:"test/2" ~dir:(PS.dir store) in
  Alcotest.(check (option string)) "version mismatch" None
    (PS.load other ~key);
  check_stats "version mismatch counted" other ~hits:0 ~misses:0 ~corrupt:0
    ~version_mismatch:1 ~writes:0;
  (* the damage was counted, never raised *)
  let s = PS.stats store in
  Alcotest.(check int) "three corrupt loads" 3 s.PS.corrupt;
  (* ... and a fresh save repairs the entry *)
  plant ();
  Alcotest.(check (option string)) "repaired" (Some payload)
    (PS.load store ~key)

let test_store_reclassify () =
  with_raw_store @@ fun store _dir ->
  ignore (PS.save store ~key:"k" ~payload:"p");
  ignore (PS.load store ~key:"k");
  PS.reclassify_corrupt store;
  check_stats "reclassified" store ~hits:0 ~misses:0 ~corrupt:1
    ~version_mismatch:0 ~writes:1

let test_store_unusable_dir () =
  (* a directory that cannot be created: loads miss, saves fail, nothing
     raises *)
  let dir = Filename.concat "/dev/null" "not-a-dir" in
  let store = PS.open_store ~version:"test/1" ~dir in
  Alcotest.(check (option string)) "load misses" None (PS.load store ~key:"k");
  Alcotest.(check bool) "save fails" false
    (PS.save store ~key:"k" ~payload:"p");
  let s = PS.stats store in
  Alcotest.(check int) "write error counted" 1 s.PS.write_errors

(* ---- Compile_plan integration ---- *)

let with_store f =
  let dir = fresh_dir () in
  Compile_plan.clear_caches ();
  Compile_plan.enable_store ~dir;
  Fun.protect
    ~finally:(fun () ->
      Compile_plan.disable_store ();
      Compile_plan.clear_caches ();
      rm_rf dir)
    (fun () -> f dir)

let compile_ising ?(options = Compiler.default_options) ?(n = 5) () =
  let ryd = rydberg_for n in
  Compiler.compile ~options ~aais:ryd.Rydberg.aais
    ~target:(static_target "ising-chain" n)
    ~t_tar:1.0 ()

(* the only entry file in a fresh store dir *)
let sole_entry dir =
  match Sys.readdir dir with
  | [| f |] -> Filename.concat dir f
  | files -> Alcotest.failf "expected one store entry, found %d" (Array.length files)

let test_cold_process_store_hit () =
  with_store @@ fun _dir ->
  let r1 = compile_ising () in
  Alcotest.(check bool) "store enabled" true r1.Compiler.plan.Compiler.store_enabled;
  Alcotest.(check bool) "first compile misses" false
    r1.Compiler.plan.Compiler.store_hit;
  (* a fresh process = empty in-memory caches, same store *)
  Compile_plan.clear_caches ();
  let r2 = compile_ising () in
  Alcotest.(check bool) "second cold compile hits the store" true
    r2.Compiler.plan.Compiler.store_hit;
  check_bits "t_sim" r1.Compiler.t_sim r2.Compiler.t_sim;
  check_bits_arr "env" r1.Compiler.env r2.Compiler.env;
  (* stored plans skip the front-end build *)
  check_bits "no rebuild cost" 0.0 r2.Compiler.plan.Compiler.build_seconds;
  (match Compile_plan.store_stats () with
  | None -> Alcotest.fail "store stats missing"
  | Some s ->
      Alcotest.(check int) "one write" 1 s.PS.writes;
      Alcotest.(check int) "one hit" 1 s.PS.hits;
      Alcotest.(check int) "one miss" 1 s.PS.misses);
  (* within one process the LRU wins; the store is not re-read *)
  let r3 = compile_ising () in
  Alcotest.(check bool) "warm compile is an LRU hit" true
    r3.Compiler.plan.Compiler.cache_hit;
  Alcotest.(check bool) "not a store hit" false r3.Compiler.plan.Compiler.store_hit

let test_corrupt_store_rebuilds () =
  with_store @@ fun dir ->
  let r1 = compile_ising () in
  let entry = sole_entry dir in
  let damage bytes msg =
    Compile_plan.clear_caches ();
    write_file entry bytes;
    let r = compile_ising () in
    Alcotest.(check bool) (msg ^ ": rebuilt, not crashed") false
      r.Compiler.plan.Compiler.store_hit;
    check_bits (msg ^ ": t_sim identical") r1.Compiler.t_sim r.Compiler.t_sim;
    check_bits_arr (msg ^ ": env identical") r1.Compiler.env r.Compiler.env
  in
  let whole = read_file entry in
  damage (String.sub whole 0 (String.length whole / 3)) "truncated";
  damage "not a store entry at all" "garbage";
  (let b = Bytes.of_string (read_file entry) in
   (* the rebuild above re-wrote the entry; flip a payload byte *)
   let last = Bytes.length b - 1 in
   Bytes.set b last (Char.chr (Char.code (Bytes.get b last) lxor 1));
   damage (Bytes.to_string b) "flipped checksum");
  (match Compile_plan.store_stats () with
  | None -> Alcotest.fail "store stats missing"
  | Some s ->
      Alcotest.(check int) "every damage counted" 3 s.PS.corrupt;
      (* each rebuild repaired the entry *)
      Alcotest.(check int) "repair writes" 4 s.PS.writes);
  (* the final repair is loadable again *)
  Compile_plan.clear_caches ();
  let r = compile_ising () in
  Alcotest.(check bool) "repaired entry hits" true
    r.Compiler.plan.Compiler.store_hit

let test_version_mismatch_rebuilds () =
  with_store @@ fun dir ->
  let r1 = compile_ising () in
  let entry = sole_entry dir in
  (* rewrite the entry's version line; the payload checksum still holds,
     so only the version gate can reject it *)
  (match String.split_on_char '\n' (read_file entry) with
  | magic :: _version :: rest ->
      write_file entry (String.concat "\n" (magic :: "stale/0" :: rest))
  | _ -> Alcotest.fail "unexpected entry layout");
  Compile_plan.clear_caches ();
  let r2 = compile_ising () in
  Alcotest.(check bool) "rebuilt" false r2.Compiler.plan.Compiler.store_hit;
  check_bits "identical" r1.Compiler.t_sim r2.Compiler.t_sim;
  match Compile_plan.store_stats () with
  | None -> Alcotest.fail "store stats missing"
  | Some s ->
      Alcotest.(check int) "counted as version mismatch" 1 s.PS.version_mismatch;
      Alcotest.(check int) "not as corruption" 0 s.PS.corrupt

let test_store_bitwise_identical_across_domains () =
  List.iter
    (fun domains ->
      let options = { Compiler.default_options with Compiler.domains } in
      Compile_plan.clear_caches ();
      Compile_plan.disable_store ();
      let off = compile_ising ~options () in
      Alcotest.(check bool)
        (Printf.sprintf "domains %d: store off" domains)
        false off.Compiler.plan.Compiler.store_enabled;
      with_store (fun _dir ->
          let cold = compile_ising ~options () in
          Compile_plan.clear_caches ();
          let stored = compile_ising ~options () in
          Alcotest.(check bool)
            (Printf.sprintf "domains %d: stored run hits" domains)
            true stored.Compiler.plan.Compiler.store_hit;
          List.iter
            (fun (label, (r : Compiler.result)) ->
              let msg =
                Printf.sprintf "domains %d: %s vs store-off" domains label
              in
              check_bits (msg ^ " t_sim") off.Compiler.t_sim r.Compiler.t_sim;
              check_bits_arr (msg ^ " env") off.Compiler.env r.Compiler.env;
              check_bits (msg ^ " error") off.Compiler.error_l1
                r.Compiler.error_l1)
            [ ("cold store", cold); ("store hit", stored) ]))
    [ 1; 4 ]

let () =
  Alcotest.run "store"
    [
      ( "plan_store",
        [
          Alcotest.test_case "save/load round-trip" `Quick test_store_roundtrip;
          Alcotest.test_case "corruption suite" `Quick
            test_store_corruption_suite;
          Alcotest.test_case "reclassify corrupt" `Quick test_store_reclassify;
          Alcotest.test_case "unusable directory" `Quick
            test_store_unusable_dir;
        ] );
      ( "compile_plan",
        [
          Alcotest.test_case "cold-process store hit" `Quick
            test_cold_process_store_hit;
          Alcotest.test_case "corrupt entries rebuild" `Quick
            test_corrupt_store_rebuilds;
          Alcotest.test_case "version mismatch rebuilds" `Quick
            test_version_mismatch_rebuilds;
          Alcotest.test_case "bitwise identical on/off, domains 1 and 4"
            `Quick test_store_bitwise_identical_across_domains;
        ] );
    ]
