(* Tests for qturbo.models: the Table-2 benchmark Hamiltonians and
   piecewise discretization. *)

open Qturbo_pauli
open Qturbo_models

let coeff h s = Pauli_sum.coeff h s
let zz i j = Pauli_string.two i Pauli.Z j Pauli.Z
let x i = Pauli_string.single i Pauli.X
let z i = Pauli_string.single i Pauli.Z

let check_float = Alcotest.(check (float 1e-12))

let ham model = Model.hamiltonian_at model ~s:0.0

let test_ising_chain () =
  let h = ham (Benchmarks.ising_chain ~j:2.0 ~h:3.0 ~n:4 ()) in
  check_float "nn coupling" 2.0 (coeff h (zz 0 1));
  check_float "nn coupling end" 2.0 (coeff h (zz 2 3));
  check_float "no wraparound" 0.0 (coeff h (zz 3 0));
  check_float "transverse" 3.0 (coeff h (x 2));
  Alcotest.(check int) "term count" 7 (Pauli_sum.term_count h)

let test_ising_cycle () =
  let h = ham (Benchmarks.ising_cycle ~n:5 ()) in
  check_float "wraparound present" 1.0 (coeff h (zz 4 0));
  Alcotest.(check int) "terms" 10 (Pauli_sum.term_count h)

let test_kitaev () =
  let h = ham (Benchmarks.kitaev ~mu:2.0 ~t:0.5 ~h:0.25 ~n:3 ()) in
  check_float "zz" 1.0 (coeff h (zz 0 1));
  check_float "x sign" (-0.5) (coeff h (x 1));
  check_float "z sign" (-0.25) (coeff h (z 2))

let test_ising_cycle_plus () =
  let h = ham (Benchmarks.ising_cycle_plus ~j:64.0 ~n:6 ()) in
  check_float "nn" 64.0 (coeff h (zz 0 1));
  check_float "nnn is J/64" 1.0 (coeff h (zz 0 2));
  check_float "nnn wrap" 1.0 (coeff h (zz 4 0))

let test_heisenberg_chain () =
  let h = ham (Benchmarks.heisenberg_chain ~j:1.5 ~n:3 ()) in
  check_float "xx" 1.5 (coeff h (Pauli_string.two 0 Pauli.X 1 Pauli.X));
  check_float "yy" 1.5 (coeff h (Pauli_string.two 1 Pauli.Y 2 Pauli.Y));
  check_float "zz" 1.5 (coeff h (zz 0 1));
  check_float "field" 1.0 (coeff h (x 0))

let test_pxp () =
  let h = ham (Benchmarks.pxp ~j:8.0 ~h:0.5 ~n:3 ()) in
  (* n̂ n̂ expansion: ZZ coefficient J/4, Z coefficients -J/4 per adjacency *)
  check_float "zz" 2.0 (coeff h (zz 0 1));
  check_float "z edge" (-2.0) (coeff h (z 0));
  check_float "z middle (two bonds)" (-4.0) (coeff h (z 1));
  check_float "x field" 0.5 (coeff h (x 1))

let test_mis_chain_time_dependence () =
  let m = Benchmarks.mis_chain ~u:2.0 ~omega:1.0 ~alpha:4.0 ~n:2 () in
  Alcotest.(check bool) "driven" true (Model.is_driven m);
  let h0 = Model.hamiltonian_at m ~s:0.0 in
  let h1 = Model.hamiltonian_at m ~s:1.0 in
  let hmid = Model.hamiltonian_at m ~s:0.5 in
  (* detuning sweeps +U -> -U; n̂ has -1/2 Z content, plus nn coupling
     contributes -alpha/4 per bond *)
  check_float "start" ((-0.5 *. 2.0) -. 1.0) (coeff h0 (z 0));
  check_float "end" ((0.5 *. 2.0) -. 1.0) (coeff h1 (z 0));
  check_float "middle detuning cancels" (-1.0) (coeff hmid (z 0));
  (* static pieces don't move *)
  check_float "coupling stable" (coeff h0 (zz 0 1)) (coeff h1 (zz 0 1));
  check_float "drive stable" (coeff h0 (x 0)) (coeff h1 (x 0))

let test_discretize_static () =
  let m = Benchmarks.ising_chain ~n:3 () in
  let segs = Model.discretize m ~segments:4 in
  Alcotest.(check int) "count" 4 (List.length segs);
  List.iter
    (fun h -> Alcotest.(check bool) "same" true (Pauli_sum.equal h (ham m)))
    segs

let test_discretize_driven_midpoints () =
  let m = Benchmarks.mis_chain ~u:1.0 ~n:2 () in
  let segs = Model.discretize m ~segments:2 in
  match segs with
  | [ h1; h2 ] ->
      (* midpoints s = 0.25 and 0.75: detunings (1-2s)U = ±0.5 *)
      let z0 = z 0 in
      check_float "first segment" ((-0.5 *. 0.5) -. 0.25) (coeff h1 z0);
      check_float "second segment" ((0.5 *. 0.5) -. 0.25) (coeff h2 z0)
  | _ -> Alcotest.fail "expected two segments"

let test_discretize_rejects_zero () =
  Alcotest.check_raises "zero segments"
    (Invalid_argument "Model.discretize: segments < 1") (fun () ->
      ignore (Model.discretize (Benchmarks.ising_chain ~n:3 ()) ~segments:0))

let test_by_name_roundtrip () =
  List.iter
    (fun name ->
      let m = Benchmarks.by_name ~name ~n:6 in
      Alcotest.(check string) "name" name m.Model.name)
    [ "ising-chain"; "ising-cycle"; "kitaev"; "ising-cycle+"; "heis-chain";
      "mis-chain"; "pxp" ]

let test_by_name_unknown () =
  Alcotest.check_raises "unknown"
    (Invalid_argument "Benchmarks.by_name: unknown model nope") (fun () ->
      ignore (Benchmarks.by_name ~name:"nope" ~n:4))

let test_min_size_checks () =
  Alcotest.check_raises "cycle too small"
    (Invalid_argument "Benchmarks.ising_cycle: need at least 3 qubits") (fun () ->
      ignore (Benchmarks.ising_cycle ~n:2 ()))

let test_all_static () =
  let ms = Benchmarks.all_static ~n:6 in
  Alcotest.(check int) "six benchmarks" 6 (List.length ms);
  List.iter
    (fun m -> Alcotest.(check bool) "static" false (Model.is_driven m))
    ms

(* the paper's §7.4 parameter sets must produce Hamiltonians whose norm
   matches the physical scales *)
let test_fig6_parameters () =
  let h = ham (Benchmarks.ising_cycle ~j:0.157 ~h:0.785 ~n:12 ()) in
  check_float "J" 0.157 (coeff h (zz 0 1));
  check_float "h" 0.785 (coeff h (x 5))

(* qcheck: model structure invariants over sizes *)
let prop_chain_term_count =
  QCheck.Test.make ~name:"ising chain has 2n-1 terms" ~count:50
    QCheck.(int_range 2 40) (fun n ->
      Pauli_sum.term_count (ham (Benchmarks.ising_chain ~n ())) = (2 * n) - 1)

let prop_cycle_term_count =
  QCheck.Test.make ~name:"ising cycle has 2n terms" ~count:50
    QCheck.(int_range 3 40) (fun n ->
      Pauli_sum.term_count (ham (Benchmarks.ising_cycle ~n ())) = 2 * n)

let prop_models_touch_n_qubits =
  QCheck.Test.make ~name:"every static benchmark touches all n qubits" ~count:30
    QCheck.(int_range 5 30) (fun n ->
      List.for_all
        (fun m -> Pauli_sum.n_qubits (ham m) = n)
        (Benchmarks.all_static ~n))

let () =
  Alcotest.run "models"
    [
      ( "hamiltonians",
        [
          Alcotest.test_case "ising chain" `Quick test_ising_chain;
          Alcotest.test_case "ising cycle" `Quick test_ising_cycle;
          Alcotest.test_case "kitaev" `Quick test_kitaev;
          Alcotest.test_case "ising cycle+" `Quick test_ising_cycle_plus;
          Alcotest.test_case "heisenberg chain" `Quick test_heisenberg_chain;
          Alcotest.test_case "pxp" `Quick test_pxp;
          Alcotest.test_case "mis time dependence" `Quick test_mis_chain_time_dependence;
          Alcotest.test_case "fig6 parameters" `Quick test_fig6_parameters;
        ] );
      ( "discretization",
        [
          Alcotest.test_case "static copies" `Quick test_discretize_static;
          Alcotest.test_case "driven midpoints" `Quick test_discretize_driven_midpoints;
          Alcotest.test_case "zero segments rejected" `Quick test_discretize_rejects_zero;
        ] );
      ( "registry",
        [
          Alcotest.test_case "by_name" `Quick test_by_name_roundtrip;
          Alcotest.test_case "unknown name" `Quick test_by_name_unknown;
          Alcotest.test_case "size checks" `Quick test_min_size_checks;
          Alcotest.test_case "all_static" `Quick test_all_static;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_chain_term_count; prop_cycle_term_count; prop_models_touch_n_qubits ]
      );
    ]
