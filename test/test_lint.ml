(* Tests for static analyzer stage two: the kernel IR verifier
   (Kernel_check, QT017-QT022), the plan-invariant linter (Plan_lint via
   Compile_plan.lint, QT023-QT028), the lint-gated plan-cache admission,
   and the fused/unfused peephole-equivalence property. *)

open Qturbo_pauli
open Qturbo_aais
open Qturbo_core
module D = Qturbo_analysis.Diagnostic
module KC = Qturbo_analysis.Kernel_check

let codes diags = List.sort_uniq compare (List.map (fun d -> d.D.code) diags)

let check_codes msg expected diags =
  Alcotest.(check (list string)) msg expected (codes diags)

(* ---- device / plan fixtures (same presets as test_plan.ml) ---- *)

let relaxed_line = { Device.aquila_paper with Device.max_extent = 2000.0 }
let relaxed_plane = Device.with_geometry Device.Plane relaxed_line

let rydberg_for name n =
  let spec =
    match name with
    | "ising-cycle" | "ising-cycle+" -> relaxed_plane
    | _ -> relaxed_line
  in
  Rydberg.build ~spec ~n

let static_target name n =
  Pauli_sum.drop_identity
    (Qturbo_models.Model.hamiltonian_at
       (Qturbo_models.Benchmarks.by_name ~name ~n)
       ~s:0.0)

let plan_for name n =
  let ryd = rydberg_for name n in
  let target = static_target name n in
  Compile_plan.build ~aais:ryd.Rydberg.aais
    ~target_shape:(Compile_plan.support_of_target target)
    ()

(* ---- kernel verifier: every real kernel is provably safe ---- *)

(* Fig. 3 benchmark models plus the §5 worked example: every channel
   kernel of every device must verify clean, on both backends. *)
let test_kernels_clean_rydberg () =
  List.iter
    (fun (name, n) ->
      let ryd = rydberg_for name n in
      match KC.check_aais ryd.Rydberg.aais with
      | [] -> ()
      | diags ->
          Alcotest.failf "%s/%d: %s" name n
            (String.concat "; " (List.map D.to_string diags)))
    [
      ("ising-chain", 3);
      ("ising-chain", 7);
      ("ising-cycle", 5);
      ("kitaev", 5);
      ("ising-cycle+", 5);
      ("mis-chain", 5);
      ("pxp", 5);
    ]

let test_kernels_clean_heisenberg () =
  List.iter
    (fun n ->
      let h = Heisenberg.build ~spec:Device.heisenberg_default ~n in
      match KC.check_aais h.Heisenberg.aais with
      | [] -> ()
      | diags ->
          Alcotest.failf "heisenberg/%d: %s" n
            (String.concat "; " (List.map D.to_string diags)))
    [ 3; 6 ]

(* ---- kernel verifier: each code fires on a seeded defect ---- *)

let kv prog ~consts ~depth ~max_var =
  Expr.kernel_of_view (Array.of_list prog) ~consts ~depth ~max_var

let test_qt017_underflow () =
  check_codes "underflow" [ "QT017" ]
    (KC.check ~n_env:4 (kv [ Expr.K_binop Expr.B_add ] ~consts:[||] ~depth:1 ~max_var:(-1)));
  (* underflow mid-program, after a legitimate push *)
  check_codes "late underflow" [ "QT017" ]
    (KC.check ~n_env:4
       (kv [ Expr.K_var 0; Expr.K_binop Expr.B_mul ] ~consts:[||] ~depth:2 ~max_var:0))

let test_qt018_arity () =
  check_codes "two results" [ "QT018" ]
    (KC.check ~n_env:4
       (kv [ Expr.K_var 0; Expr.K_var 1 ] ~consts:[||] ~depth:2 ~max_var:1));
  check_codes "empty program" [ "QT018" ]
    (KC.check ~n_env:4 (kv [] ~consts:[||] ~depth:1 ~max_var:(-1)))

let test_qt019_env () =
  check_codes "beyond environment" [ "QT019" ]
    (KC.check ~n_env:4 (kv [ Expr.K_var 9 ] ~consts:[||] ~depth:1 ~max_var:9));
  (* within the environment but beyond the kernel's own declared
     max_var: a lying closedness witness *)
  check_codes "beyond declared max_var" [ "QT019" ]
    (KC.check ~n_env:4 (kv [ Expr.K_var 2 ] ~consts:[||] ~depth:1 ~max_var:1))

let test_qt020_depth () =
  check_codes "under-declared depth" [ "QT020" ]
    (KC.check ~n_env:4
       (kv
          [ Expr.K_var 0; Expr.K_var 1; Expr.K_binop Expr.B_add ]
          ~consts:[||] ~depth:1 ~max_var:1))

let test_qt021_range () =
  (* a kernel computing 3 for a source expression equal to 2: the
     kernel's interval [3,3] cannot enclose the source's [2,2] *)
  check_codes "wrong function" [ "QT021" ]
    (KC.check ~source:(Expr.Const 2.0) ~n_env:0
       (Expr.compile_unfused (Expr.Const 3.0)));
  (* and the honest kernel passes the same comparison *)
  check_codes "honest kernel" []
    (KC.check ~source:(Expr.Const 2.0) ~n_env:0
       (Expr.compile_unfused (Expr.Const 2.0)))

let test_qt022_malformed () =
  check_codes "unassigned opcode" [ "QT022" ]
    (KC.check ~n_env:4
       (kv [ Expr.K_unknown { op = 30; arg = 7 }; Expr.K_var 0 ] ~consts:[||]
          ~depth:1 ~max_var:0));
  check_codes "constant index out of pool" [ "QT022" ]
    (KC.check ~n_env:4 (kv [ Expr.K_const 3 ] ~consts:[| 1.5 |] ~depth:1 ~max_var:(-1)))

(* ---- compile-time verification hook ---- *)

let test_compile_hook_accepts_valid () =
  KC.install_compile_hook ();
  Fun.protect
    ~finally:(fun () -> Expr.compile_hook := fun _ _ -> ())
    (fun () ->
      (* hook runs on every compile; a valid expression passes *)
      let e = Expr.(Div (Const 5.2, Pow_int (Sub (Var 0, Var 1), 6))) in
      let k = Expr.compile e in
      let v = Expr.eval_kernel k ~env:[| 3.0; 1.0 |] in
      Alcotest.(check (float 1e-12)) "still evaluates" (5.2 /. 64.0) v)

let test_verify_compiled_rejects () =
  let bad =
    kv [ Expr.K_var 0; Expr.K_var 0 ] ~consts:[||] ~depth:2 ~max_var:0
  in
  match KC.verify_compiled (Expr.Var 0) bad with
  | () -> Alcotest.fail "expected Rejected"
  | exception D.Rejected diags -> check_codes "QT018 surfaced" [ "QT018" ] diags

(* ---- peephole equivalence: fused == unfused, never more steps ---- *)

let expr_gen =
  let open QCheck.Gen in
  fix
    (fun self depth ->
      let leaf =
        oneof
          [
            map (fun f -> Expr.Const f) (float_range (-10.0) 10.0);
            map (fun v -> Expr.Var v) (int_range 0 3);
          ]
      in
      if depth = 0 then leaf
      else
        let sub = self (depth - 1) in
        frequency
          [
            (2, leaf);
            (2, map2 (fun a b -> Expr.Add (a, b)) sub sub);
            (2, map2 (fun a b -> Expr.Sub (a, b)) sub sub);
            (2, map2 (fun a b -> Expr.Mul (a, b)) sub sub);
            (1, map2 (fun a b -> Expr.Div (a, b)) sub sub);
            (1, map (fun a -> Expr.Neg a) sub);
            ( 1,
              map2 (fun a p -> Expr.Pow_int (a, p)) sub (int_range (-3) 6) );
            (1, map (fun a -> Expr.Sin a) sub);
            (1, map (fun a -> Expr.Cos a) sub);
          ])
    5

let env_gen =
  QCheck.Gen.(array_size (return 4) (float_range (-5.0) 5.0))

let bits = Int64.bits_of_float

let prop_fused_bitwise_identical =
  QCheck.Test.make ~name:"fused kernel is bitwise-identical to unfused"
    ~count:800
    (QCheck.make QCheck.Gen.(pair expr_gen env_gen))
    (fun (e, env) ->
      let fused = Expr.eval_kernel (Expr.compile e) ~env in
      let plain = Expr.eval_kernel (Expr.compile_unfused e) ~env in
      let direct = Expr.eval e ~env in
      Int64.equal (bits fused) (bits plain)
      && Int64.equal (bits fused) (bits direct))

let prop_fused_never_longer =
  QCheck.Test.make ~name:"fusion never increases the step count" ~count:800
    (QCheck.make expr_gen)
    (fun e ->
      Array.length (Expr.kernel_view (Expr.compile e))
      <= Array.length (Expr.kernel_view (Expr.compile_unfused e)))

let prop_compiled_kernels_verify =
  QCheck.Test.make ~name:"every compiled kernel verifies clean" ~count:500
    (QCheck.make expr_gen)
    (fun e ->
      let n_env = 4 in
      KC.check ~source:e ~n_env (Expr.compile e) = []
      && KC.check ~source:e ~n_env (Expr.compile_unfused e) = [])

(* ---- plan linter: sound plans lint clean ---- *)

let test_plans_lint_clean () =
  List.iter
    (fun (name, n) ->
      match Compile_plan.lint (plan_for name n) with
      | [] -> ()
      | diags ->
          Alcotest.failf "%s/%d: %s" name n
            (String.concat "; " (List.map D.to_string diags)))
    [ ("ising-chain", 3); ("ising-chain", 7); ("ising-cycle", 5); ("kitaev", 5) ]

(* ---- plan linter: each code fires on a corrupted plan ---- *)

let base_plan = lazy (plan_for "ising-chain" 5)

let has_code code diags = List.mem code (codes diags)

let check_has msg code diags =
  if not (has_code code diags) then
    Alcotest.failf "%s: expected %s among [%s]" msg code
      (String.concat "; " (codes diags))

let drop_last l = List.filteri (fun i _ -> i < List.length l - 1) l

let test_qt023_support_coverage () =
  let plan = Lazy.force base_plan in
  let bad =
    { plan with Compile_plan.support = List.tl plan.Compile_plan.support }
  in
  check_has "shorter support" "QT023" (Compile_plan.lint bad)

let test_qt024_skeleton_dims () =
  let plan = Lazy.force base_plan in
  let d = plan.Compile_plan.device in
  let bad =
    {
      plan with
      Compile_plan.device =
        {
          d with
          Compile_plan.channels =
            Array.sub d.Compile_plan.channels 0
              (Array.length d.Compile_plan.channels - 1);
        };
    }
  in
  check_has "missing channel" "QT024" (Compile_plan.lint bad)

let test_qt025_partition () =
  let plan = Lazy.force base_plan in
  let d = plan.Compile_plan.device in
  let comps =
    match d.Compile_plan.comps with
    | (c : Locality.component) :: rest ->
        {
          c with
          Locality.channel_ids =
            (match c.Locality.channel_ids with
            | cid :: _ as ids -> cid :: ids
            | [] -> []);
        }
        :: rest
    | [] -> []
  in
  let bad =
    { plan with Compile_plan.device = { d with Compile_plan.comps = comps } }
  in
  check_codes "duplicated channel" [ "QT025" ] (Compile_plan.lint bad)

let test_qt026_classification () =
  let plan = Lazy.force base_plan in
  let d = plan.Compile_plan.device in
  let bad =
    {
      plan with
      Compile_plan.device =
        {
          d with
          Compile_plan.classifications = drop_last d.Compile_plan.classifications;
        };
    }
  in
  check_has "count mismatch" "QT026" (Compile_plan.lint bad)

let test_qt027_key_roundtrip () =
  let plan = Lazy.force base_plan in
  let bad = { plan with Compile_plan.key = plan.Compile_plan.key ^ "#stale" } in
  check_codes "stale key" [ "QT027" ] (Compile_plan.lint bad)

let test_qt028_prepared () =
  let plan = Lazy.force base_plan in
  let d = plan.Compile_plan.device in
  let bad =
    {
      plan with
      Compile_plan.device =
        { d with Compile_plan.prepared = drop_last d.Compile_plan.prepared };
    }
  in
  check_codes "prepared count" [ "QT028" ] (Compile_plan.lint bad)

(* ---- lint-gated cache admission ---- *)

let test_admit_rejects_corrupted () =
  Compile_plan.clear_caches ();
  let plan = plan_for "ising-chain" 5 in
  let before = (Compile_plan.cache_stats ()).Plan_cache.rejected in
  (* a sound plan is admitted silently *)
  Alcotest.(check (list string)) "sound plan admitted" []
    (codes (Compile_plan.admit plan));
  let bad = { plan with Compile_plan.key = plan.Compile_plan.key ^ "#stale" } in
  let errs = Compile_plan.admit bad in
  check_codes "refused with QT027" [ "QT027" ] errs;
  let after = Compile_plan.cache_stats () in
  Alcotest.(check int) "rejection counted" (before + 1)
    after.Plan_cache.rejected;
  (* the corrupted plan is not resident under its (corrupted) key *)
  let per_key = Compile_plan.cache_per_key () in
  Alcotest.(check bool) "corrupted key absent" false
    (List.exists
       (fun (k, (ks : Plan_cache.key_stats)) ->
         String.equal k bad.Compile_plan.key && ks.Plan_cache.key_rejected = 0)
       per_key)

let test_build_raises_on_broken_invariant () =
  (* with linting disabled, build hands back whatever it assembled; the
     flag is the bench's overhead-measurement escape hatch, and flipping
     it must not leak past the test *)
  Alcotest.(check bool) "lint_plans defaults on" true !Compile_plan.lint_plans;
  Compile_plan.lint_plans := false;
  Fun.protect
    ~finally:(fun () -> Compile_plan.lint_plans := true)
    (fun () ->
      let plan = plan_for "ising-chain" 3 in
      Alcotest.(check (list string)) "still sound" [] (codes (Compile_plan.lint plan)))

let test_cache_hit_relint_pulls_corrupted () =
  Compile_plan.clear_caches ();
  let ryd = rydberg_for "ising-chain" 5 in
  let target = static_target "ising-chain" 5 in
  let options = Compile_plan.default_options in
  (* plant a corrupted resident under the true structural key: same key,
     broken prepared-context invariant *)
  let plan, prov =
    Compile_plan.obtain ~options ~aais:ryd.Rydberg.aais ~target
  in
  Alcotest.(check bool) "first obtain is a miss" true
    (prov = Compile_plan.Built);
  let d = plan.Compile_plan.device in
  let corrupted =
    {
      plan with
      Compile_plan.device =
        { d with Compile_plan.prepared = drop_last d.Compile_plan.prepared };
    }
  in
  Compile_plan.cache_insert_unchecked corrupted;
  (* without on-hit re-linting the corrupted resident would be served *)
  Compile_plan.lint_on_hit := true;
  Fun.protect
    ~finally:(fun () -> Compile_plan.lint_on_hit := false)
    (fun () ->
      let before = (Compile_plan.cache_stats ()).Plan_cache.rejected in
      let served, prov' =
        Compile_plan.obtain ~options ~aais:ryd.Rydberg.aais ~target
      in
      Alcotest.(check bool) "re-lint turns the hit into a rebuild" true
        (prov' = Compile_plan.Built);
      Alcotest.(check (list string)) "served plan is sound" []
        (codes (Compile_plan.lint served));
      let after = (Compile_plan.cache_stats ()).Plan_cache.rejected in
      Alcotest.(check int) "pull counted as rejection" (before + 1) after;
      (* the rebuilt plan was re-admitted: a second obtain hits clean *)
      let again, prov2 =
        Compile_plan.obtain ~options ~aais:ryd.Rydberg.aais ~target
      in
      Alcotest.(check bool) "resident is sound again" true
        (prov2 = Compile_plan.Cached);
      Alcotest.(check (list string)) "clean" [] (codes (Compile_plan.lint again)));
  Compile_plan.clear_caches ()

let () =
  Alcotest.run "lint"
    [
      ( "kernel-verifier",
        [
          Alcotest.test_case "fig3 rydberg kernels clean" `Quick
            test_kernels_clean_rydberg;
          Alcotest.test_case "heisenberg kernels clean" `Quick
            test_kernels_clean_heisenberg;
          Alcotest.test_case "QT017 stack underflow" `Quick test_qt017_underflow;
          Alcotest.test_case "QT018 wrong result arity" `Quick test_qt018_arity;
          Alcotest.test_case "QT019 environment violation" `Quick test_qt019_env;
          Alcotest.test_case "QT020 under-declared depth" `Quick test_qt020_depth;
          Alcotest.test_case "QT021 range unsoundness" `Quick test_qt021_range;
          Alcotest.test_case "QT022 malformed instruction" `Quick
            test_qt022_malformed;
          Alcotest.test_case "compile hook accepts valid" `Quick
            test_compile_hook_accepts_valid;
          Alcotest.test_case "verify_compiled rejects" `Quick
            test_verify_compiled_rejects;
        ] );
      ( "peephole",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_fused_bitwise_identical;
            prop_fused_never_longer;
            prop_compiled_kernels_verify;
          ] );
      ( "plan-linter",
        [
          Alcotest.test_case "sound plans lint clean" `Quick
            test_plans_lint_clean;
          Alcotest.test_case "QT023 support coverage" `Quick
            test_qt023_support_coverage;
          Alcotest.test_case "QT024 skeleton dims" `Quick test_qt024_skeleton_dims;
          Alcotest.test_case "QT025 partition" `Quick test_qt025_partition;
          Alcotest.test_case "QT026 classification" `Quick
            test_qt026_classification;
          Alcotest.test_case "QT027 key round-trip" `Quick
            test_qt027_key_roundtrip;
          Alcotest.test_case "QT028 prepared contexts" `Quick test_qt028_prepared;
        ] );
      ( "cache-admission",
        [
          Alcotest.test_case "admit refuses corrupted plans" `Quick
            test_admit_rejects_corrupted;
          Alcotest.test_case "lint_plans escape hatch" `Quick
            test_build_raises_on_broken_invariant;
          Alcotest.test_case "on-hit re-lint pulls corrupted residents" `Quick
            test_cache_hit_relint_pulls_corrupted;
        ] );
    ]
