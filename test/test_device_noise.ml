(* Tests for the noisy Rydberg device emulator — the substitute for the
   paper's Aquila hardware runs. *)

open Qturbo_aais
open Qturbo_device_noise

let check_close msg tol a b =
  if Float.abs (a -. b) > tol then Alcotest.failf "%s: %.10g vs %.10g" msg a b

(* a small compiled-pulse fixture: 4-atom Ising cycle on the Fig-6a device *)
let fixture ?(t_tar = 0.4) () =
  let spec = Device.aquila_fig6a in
  let n = 4 in
  let ryd = Rydberg.build ~spec ~n in
  let target =
    Qturbo_models.Model.hamiltonian_at
      (Qturbo_models.Benchmarks.ising_cycle ~n ~j:0.157 ~h:0.785 ()) ~s:0.0
  in
  let r = Qturbo_core.Compiler.compile ~aais:ryd.Rydberg.aais ~target ~t_tar () in
  let pulse =
    Qturbo_core.Extract.rydberg_pulse ryd ~env:r.Qturbo_core.Compiler.env
      ~t_sim:r.Qturbo_core.Compiler.t_sim
  in
  (target, t_tar, pulse)

let test_ideal_noise_is_identity_perturbation () =
  let _, _, pulse = fixture () in
  let rng = Qturbo_util.Rng.create ~seed:1L in
  let p' = Emulator.perturbed_pulse ~rng ~noise:Noise_model.ideal pulse in
  Array.iteri
    (fun i (x, y) ->
      let x', y' = p'.Pulse.positions.(i) in
      check_close "x" 1e-12 x x';
      check_close "y" 1e-12 y y')
    pulse.Pulse.positions;
  List.iter2
    (fun (a : Pulse.rydberg_segment) (b : Pulse.rydberg_segment) ->
      Array.iteri (fun i w -> check_close "omega" 1e-12 w b.Pulse.omega.(i)) a.Pulse.omega;
      Array.iteri (fun i d -> check_close "delta" 1e-12 d b.Pulse.delta.(i)) a.Pulse.delta)
    pulse.Pulse.segments p'.Pulse.segments

let test_noise_perturbs_pulse () =
  let _, _, pulse = fixture () in
  let rng = Qturbo_util.Rng.create ~seed:2L in
  let p' = Emulator.perturbed_pulse ~rng ~noise:Noise_model.aquila pulse in
  let moved = ref false in
  Array.iteri
    (fun i (x, _) ->
      let x', _ = p'.Pulse.positions.(i) in
      if Float.abs (x -. x') > 1e-9 then moved := true)
    pulse.Pulse.positions;
  Alcotest.(check bool) "positions jittered" true !moved

let test_omega_never_negative () =
  let _, _, pulse = fixture () in
  let rng = Qturbo_util.Rng.create ~seed:3L in
  for _ = 1 to 50 do
    let p' =
      Emulator.perturbed_pulse ~rng
        ~noise:(Noise_model.scaled 50.0 Noise_model.aquila)
        pulse
    in
    List.iter
      (fun (s : Pulse.rydberg_segment) ->
        Array.iter
          (fun w -> if w < 0.0 then Alcotest.fail "negative Rabi amplitude")
          s.Pulse.omega)
      p'.Pulse.segments
  done

let test_noiseless_emulation_matches_target_evolution () =
  (* the compiled pulse under ideal noise reproduces the target evolution
     observables (the "QTurbo (TH)" ≈ "TH" overlap of Fig. 6) *)
  let target, t_tar, pulse = fixture () in
  let n = 4 in
  let th =
    Qturbo_quantum.Evolve.evolve ~h:target ~t:t_tar (Qturbo_quantum.State.ground ~n)
  in
  let sim = Emulator.noiseless_final_state ~pulse in
  check_close "z_avg" 0.02
    (Qturbo_quantum.Observable.z_avg th)
    (Qturbo_quantum.Observable.z_avg sim);
  check_close "zz_avg" 0.02
    (Qturbo_quantum.Observable.zz_avg th)
    (Qturbo_quantum.Observable.zz_avg sim)

let test_run_ideal_matches_exact_observables () =
  let _, _, pulse = fixture () in
  let rng = Qturbo_util.Rng.create ~seed:5L in
  let exact = Emulator.noiseless_final_state ~pulse in
  let o = Emulator.run ~rng ~noise:Noise_model.ideal ~shots:3000 ~pulse () in
  check_close "z sampling" 0.05 (Qturbo_quantum.Observable.z_avg exact) o.Emulator.z_avg;
  check_close "zz sampling" 0.05
    (Qturbo_quantum.Observable.zz_avg exact)
    o.Emulator.zz_avg;
  Alcotest.(check int) "shots recorded" 3000 o.Emulator.shots

let test_noise_degrades_accuracy () =
  let _, _, pulse = fixture () in
  let exact_z = Qturbo_quantum.Observable.z_avg (Emulator.noiseless_final_state ~pulse) in
  let err noise seed =
    let rng = Qturbo_util.Rng.create ~seed in
    let o = Emulator.run ~rng ~noise ~shots:600 ~trajectories:12 ~pulse () in
    Float.abs (o.Emulator.z_avg -. exact_z)
  in
  (* strong noise must hurt more than weak noise, on average over seeds *)
  let avg f = (f 1L +. f 2L +. f 3L) /. 3.0 in
  let weak = avg (err (Noise_model.scaled 0.2 Noise_model.aquila)) in
  let strong = avg (err (Noise_model.scaled 5.0 Noise_model.aquila)) in
  Alcotest.(check bool) "monotone in noise" true (strong > weak)

let test_longer_pulse_suffers_more () =
  (* same unitary, stretched 4x in time with amplitudes reduced 4x: the
     quasi-static detuning error accumulates longer — the mechanism behind
     the paper's Fig. 6 *)
  let _, _, pulse = fixture () in
  let stretch k (p : Pulse.rydberg) =
    {
      p with
      Pulse.segments =
        List.map
          (fun (s : Pulse.rydberg_segment) ->
            {
              s with
              Pulse.duration = s.Pulse.duration *. k;
              omega = Array.map (fun w -> w /. k) s.Pulse.omega;
              delta = Array.map (fun d -> d /. k) s.Pulse.delta;
            })
          p.Pulse.segments;
      (* the van-der-Waals part cannot be rescaled by amplitudes; spread
         the atoms so the couplings shrink by k as well *)
      positions =
        Array.map
          (fun (x, y) ->
            let f = k ** (1.0 /. 6.0) in
            (f *. x, f *. y))
          p.Pulse.positions;
    }
  in
  let long_pulse = stretch 4.0 pulse in
  (* both still implement (approximately) the same evolution noiselessly *)
  let z_short =
    Qturbo_quantum.Observable.z_avg (Emulator.noiseless_final_state ~pulse)
  in
  let z_long =
    Qturbo_quantum.Observable.z_avg (Emulator.noiseless_final_state ~pulse:long_pulse)
  in
  check_close "same noiseless physics" 0.02 z_short z_long;
  (* under detuning noise only (no readout, no jitter), the long pulse
     drifts further *)
  let noise =
    {
      Noise_model.ideal with
      Noise_model.delta_sigma = 1.0;
    }
  in
  let err p seed =
    let rng = Qturbo_util.Rng.create ~seed in
    let o = Emulator.run ~rng ~noise ~shots:400 ~trajectories:16 ~pulse:p () in
    Float.abs (o.Emulator.z_avg -. z_short)
  in
  let avg p = (err p 11L +. err p 12L +. err p 13L) /. 3.0 in
  Alcotest.(check bool) "longer pulse less robust" true
    (avg long_pulse > avg pulse)

let test_markovian_emulation () =
  (* Markovian decay pulls the excitation fraction down relative to the
     unitary pulse result, and the emulator path stays well-defined *)
  let _, _, pulse = fixture () in
  let exact = Emulator.noiseless_final_state ~pulse in
  let z_exact = Qturbo_quantum.Observable.z_avg exact in
  let noise =
    {
      Noise_model.ideal with
      Noise_model.decay_rate = 2.0;
      dephasing_rate = 0.5;
    }
  in
  let rng = Qturbo_util.Rng.create ~seed:77L in
  let o = Emulator.run ~rng ~noise ~shots:400 ~trajectories:16 ~pulse () in
  (* strong decay pushes atoms back toward the ground state: z -> 1 side *)
  Alcotest.(check bool) "decay biases toward ground" true
    (o.Emulator.z_avg > z_exact);
  Alcotest.(check bool) "observable in range" true
    (o.Emulator.z_avg <= 1.0 && o.Emulator.z_avg >= -1.0)

let test_markovian_preset () =
  Alcotest.(check bool) "markovian preset has rates" true
    (Noise_model.aquila_with_markovian.Noise_model.dephasing_rate > 0.0
    && Noise_model.aquila_with_markovian.Noise_model.decay_rate > 0.0);
  let s = Noise_model.scaled 2.0 Noise_model.aquila_with_markovian in
  Alcotest.(check (float 1e-12)) "rates scale"
    (2.0 *. Noise_model.aquila_with_markovian.Noise_model.decay_rate)
    s.Noise_model.decay_rate

let test_run_validates_shots () =
  let _, _, pulse = fixture () in
  let rng = Qturbo_util.Rng.create ~seed:1L in
  Alcotest.check_raises "shots" (Invalid_argument "Emulator.run: shots <= 0")
    (fun () ->
      ignore (Emulator.run ~rng ~noise:Noise_model.ideal ~shots:0 ~pulse ()))

let test_noise_model_presets () =
  Alcotest.(check (float 0.0)) "ideal omega" 0.0
    Noise_model.ideal.Noise_model.omega_relative_sigma;
  Alcotest.(check bool) "aquila has readout" true
    (Noise_model.aquila.Noise_model.readout.Qturbo_quantum.Measurement.p_1_to_0 > 0.0);
  let s = Noise_model.scaled 2.0 Noise_model.aquila in
  Alcotest.(check (float 1e-12)) "scaled sigma"
    (2.0 *. Noise_model.aquila.Noise_model.delta_sigma)
    s.Noise_model.delta_sigma;
  Alcotest.(check (float 1e-12)) "readout untouched"
    Noise_model.aquila.Noise_model.readout.Qturbo_quantum.Measurement.p_1_to_0
    s.Noise_model.readout.Qturbo_quantum.Measurement.p_1_to_0

let () =
  Alcotest.run "device_noise"
    [
      ( "noise_model",
        [ Alcotest.test_case "presets" `Quick test_noise_model_presets ] );
      ( "perturbation",
        [
          Alcotest.test_case "ideal is identity" `Quick
            test_ideal_noise_is_identity_perturbation;
          Alcotest.test_case "noise perturbs" `Quick test_noise_perturbs_pulse;
          Alcotest.test_case "omega clipped at zero" `Quick test_omega_never_negative;
        ] );
      ( "emulation",
        [
          Alcotest.test_case "noiseless matches target" `Slow
            test_noiseless_emulation_matches_target_evolution;
          Alcotest.test_case "ideal sampling statistics" `Slow
            test_run_ideal_matches_exact_observables;
          Alcotest.test_case "noise degrades" `Slow test_noise_degrades_accuracy;
          Alcotest.test_case "longer pulses suffer more" `Slow
            test_longer_pulse_suffers_more;
          Alcotest.test_case "markovian emulation" `Slow test_markovian_emulation;
          Alcotest.test_case "markovian preset" `Quick test_markovian_preset;
          Alcotest.test_case "validation" `Quick test_run_validates_shots;
        ] );
    ]
