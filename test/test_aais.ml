(* Tests for qturbo.aais: variables, symbolic expressions, instruction
   hints, the Rydberg/Heisenberg instruction sets, device specs, pulses. *)

open Qturbo_aais
open Qturbo_pauli

let check_close msg tol a b =
  if Float.abs (a -. b) > tol then Alcotest.failf "%s: %.10g vs %.10g" msg a b

(* ---- Variable ---- *)

let test_variable_pool () =
  let pool = Variable.create_pool () in
  let a = Variable.fresh pool ~name:"a" ~kind:Variable.Runtime_dynamic ~lo:0.0 ~hi:2.0 () in
  let b = Variable.fresh pool ~name:"b" ~kind:Variable.Runtime_fixed ~init:5.0 () in
  Alcotest.(check int) "ids dense" 0 a.Variable.id;
  Alcotest.(check int) "ids dense 2" 1 b.Variable.id;
  Alcotest.(check int) "count" 2 (Variable.count pool);
  check_close "default init = midpoint" 1e-12 1.0 a.Variable.init;
  check_close "explicit init" 1e-12 5.0 b.Variable.init;
  Alcotest.(check bool) "kinds" true
    (Variable.is_dynamic a && Variable.is_fixed b);
  let env = Variable.initial_env pool in
  Alcotest.(check (array (float 1e-12))) "initial env" [| 1.0; 5.0 |] env

let test_variable_init_clamped () =
  let pool = Variable.create_pool () in
  let v = Variable.fresh pool ~name:"v" ~kind:Variable.Runtime_dynamic ~lo:0.0 ~hi:1.0 ~init:9.0 () in
  check_close "clamped" 1e-12 1.0 v.Variable.init

(* ---- Expr ---- *)

let env_of lst =
  let n = List.fold_left (fun acc (i, _) -> Int.max acc (i + 1)) 0 lst in
  let env = Array.make n 0.0 in
  List.iter (fun (i, x) -> env.(i) <- x) lst;
  env

let test_expr_eval () =
  let e = Expr.(Add (Mul (Const 2.0, Var 0), Pow_int (Var 1, 3))) in
  check_close "eval" 1e-12 ((2.0 *. 1.5) +. 8.0) (Expr.eval e ~env:(env_of [ (0, 1.5); (1, 2.0) ]))

let test_expr_eval_trig () =
  let e = Expr.(Mul (Sin (Var 0), Cos (Var 0))) in
  check_close "trig" 1e-12 (sin 0.7 *. cos 0.7) (Expr.eval e ~env:(env_of [ (0, 0.7) ]))

let test_expr_negative_power () =
  let e = Expr.(Pow_int (Var 0, -6)) in
  check_close "inverse sixth" 1e-12 (1.0 /. 64.0) (Expr.eval e ~env:(env_of [ (0, 2.0) ]))

let test_expr_vars () =
  let e = Expr.(Div (Const 1.0, Pow_int (Sub (Var 3, Var 1), 6))) in
  Alcotest.(check (list int)) "vars" [ 1; 3 ] (Expr.vars e);
  Alcotest.(check bool) "depends" true (Expr.depends_on e 3);
  Alcotest.(check bool) "independent" false (Expr.depends_on e 0)

let test_expr_simplify () =
  let open Expr in
  Alcotest.(check bool) "0*x" true (simplify (Mul (Const 0.0, Var 1)) = Const 0.0);
  Alcotest.(check bool) "x+0" true (simplify (Add (Var 1, Const 0.0)) = Var 1);
  Alcotest.(check bool) "x^1" true (simplify (Pow_int (Var 2, 1)) = Var 2);
  Alcotest.(check bool) "const fold" true
    (simplify (Add (Const 2.0, Const 3.0)) = Const 5.0);
  Alcotest.(check bool) "neg neg" true (simplify (Neg (Neg (Var 0))) = Var 0)

let test_expr_deriv_polynomial () =
  (* d/dx (x - y)^6 = 6 (x - y)^5 *)
  let e = Expr.(Pow_int (Sub (Var 0, Var 1), 6)) in
  let d = Expr.deriv e 0 in
  let env = env_of [ (0, 3.0); (1, 1.0) ] in
  check_close "deriv" 1e-9 (6.0 *. (2.0 ** 5.0)) (Expr.eval d ~env)

let test_expr_deriv_trig () =
  let e = Expr.(Mul (Var 0, Cos (Var 1))) in
  let d0 = Expr.deriv e 0 and d1 = Expr.deriv e 1 in
  let env = env_of [ (0, 2.0); (1, 0.3) ] in
  check_close "d/da" 1e-12 (cos 0.3) (Expr.eval d0 ~env);
  check_close "d/dphi" 1e-12 (-2.0 *. sin 0.3) (Expr.eval d1 ~env)

let test_expr_deriv_quotient () =
  (* d/dx (c / x^6) = -6 c / x^7 *)
  let e = Expr.(Div (Const 100.0, Pow_int (Var 0, 6))) in
  let d = Expr.deriv e 0 in
  let env = env_of [ (0, 2.0) ] in
  check_close "quotient rule" 1e-9 (-6.0 *. 100.0 /. (2.0 ** 7.0)) (Expr.eval d ~env)

let test_expr_deriv_matches_numeric () =
  let rng = Qturbo_util.Rng.create ~seed:8L in
  let e =
    Expr.(
      Add
        ( Div (Const 3.0, Pow_int (Add (Pow_int (Var 0, 2), Pow_int (Var 1, 2)), 3)),
          Mul (Var 0, Sin (Var 1)) ))
  in
  for _ = 1 to 20 do
    let x = Qturbo_util.Rng.uniform rng ~lo:1.0 ~hi:3.0 in
    let y = Qturbo_util.Rng.uniform rng ~lo:1.0 ~hi:3.0 in
    let env = env_of [ (0, x); (1, y) ] in
    let h = 1e-6 in
    let env_h = env_of [ (0, x +. h); (1, y) ] in
    let numeric = (Expr.eval e ~env:env_h -. Expr.eval e ~env) /. h in
    let symbolic = Expr.eval (Expr.deriv e 0) ~env in
    if Float.abs (numeric -. symbolic) > 1e-3 *. Float.max 1.0 (Float.abs symbolic)
    then Alcotest.failf "deriv mismatch at (%.3f, %.3f)" x y
  done

let test_expr_is_linear () =
  Alcotest.(check (option (float 1e-12))) "k*v"
    (Some 0.5)
    (Expr.is_linear_in Expr.(Mul (Const 0.5, Var 2)) 2);
  Alcotest.(check (option (float 1e-12))) "bare var" (Some 1.0)
    (Expr.is_linear_in (Expr.Var 1) 1);
  Alcotest.(check (option (float 1e-12))) "wrong var" None
    (Expr.is_linear_in Expr.(Mul (Const 0.5, Var 2)) 1);
  Alcotest.(check (option (float 1e-12))) "nonlinear" None
    (Expr.is_linear_in Expr.(Pow_int (Var 0, 2)) 0)

(* ---- Instruction hints ---- *)

let test_hint_validation_rejects_lies () =
  Alcotest.(check bool) "lying linear hint rejected" true
    (match
       Instruction.channel ~cid:0 ~label:"bad"
         ~expr:Expr.(Pow_int (Var 0, 2))
         ~effects:[]
         ~hint:(Instruction.Hint_linear { var = 0; slope = 1.0 })
     with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_hint_polar_accepts_rydberg_shape () =
  let expr = Expr.(Mul (Mul (Const 0.5, Var 0), Cos (Var 1))) in
  let c =
    Instruction.channel ~cid:0 ~label:"rabi-cos" ~expr ~effects:[]
      ~hint:(Instruction.Hint_polar_cos { amp = 0; phase = 1; scale = 0.5 })
  in
  Alcotest.(check bool) "valid" true (Instruction.validate_hint c)

let test_instruction_variables_derived () =
  let c1 =
    Instruction.channel ~cid:0 ~label:"c1" ~expr:Expr.(Mul (Var 2, Var 0))
      ~effects:[] ~hint:Instruction.Hint_generic
  in
  let i = Instruction.make ~label:"i" ~channels:[ c1 ] in
  Alcotest.(check (list int)) "vars" [ 0; 2 ] i.Instruction.variables

let test_effect_terms_filter_identity () =
  let c =
    Instruction.channel ~cid:0 ~label:"c"
      ~expr:(Expr.Const 1.0)
      ~effects:
        [
          { Instruction.pstring = Pauli_string.identity; coeff = 1.0 };
          { Instruction.pstring = Pauli_string.single 0 Pauli.Z; coeff = -1.0 };
        ]
      ~hint:Instruction.Hint_generic
  in
  Alcotest.(check int) "identity removed" 1 (List.length (Instruction.effect_terms c))

(* ---- Rydberg AAIS ---- *)

let test_rydberg_structure_local () =
  let ryd = Rydberg.build ~spec:Device.aquila_paper ~n:3 in
  (* 3 vdW + 3 detuning + 3 rabi instructions *)
  Alcotest.(check int) "instructions" 9 (List.length ryd.Rydberg.aais.Aais.instructions);
  (* channels: 3 vdW + 3 detuning + 6 rabi *)
  Alcotest.(check int) "channels" 12 (Aais.channel_count ryd.Rydberg.aais);
  (* variables: 3 positions + 3 deltas + 3 omegas + 3 phis *)
  Alcotest.(check int) "variables" 12 (Variable.count ryd.Rydberg.aais.Aais.pool)

let test_rydberg_structure_global () =
  let spec = Device.with_control Device.Global Device.aquila_paper in
  let ryd = Rydberg.build ~spec ~n:4 in
  (* 6 vdW + 1 detuning + 1 rabi instruction; 4+1+1+1 variables *)
  Alcotest.(check int) "instructions" 8 (List.length ryd.Rydberg.aais.Aais.instructions);
  Alcotest.(check int) "variables" 7 (Variable.count ryd.Rydberg.aais.Aais.pool)

let test_rydberg_vdw_amplitude () =
  let ryd = Rydberg.build ~spec:Device.aquila_paper ~n:2 in
  let env = Variable.initial_env ryd.Rydberg.aais.Aais.pool in
  env.(ryd.Rydberg.xs.(0).Variable.id) <- 0.0;
  env.(ryd.Rydberg.xs.(1).Variable.id) <- 7.4614;
  let h = Rydberg.hamiltonian ryd ~env in
  (* C6/(4 d^6) at the paper's worked distance is 1.25 MHz *)
  check_close "zz coupling" 1e-3 1.25
    (Pauli_sum.coeff h (Pauli_string.two 0 Pauli.Z 1 Pauli.Z))

let test_rydberg_hamiltonian_drives () =
  let ryd = Rydberg.build ~spec:Device.aquila_paper ~n:2 in
  let env = Variable.initial_env ryd.Rydberg.aais.Aais.pool in
  env.(ryd.Rydberg.omegas.(0).Variable.id) <- 2.0;
  env.(ryd.Rydberg.phis.(0).Variable.id) <- Float.pi /. 2.0;
  env.(ryd.Rydberg.deltas.(1).Variable.id) <- 4.0;
  let h = Rydberg.hamiltonian ryd ~env in
  check_close "X vanishes at phi=pi/2" 1e-12 0.0
    (Pauli_sum.coeff h (Pauli_string.single 0 Pauli.X));
  check_close "Y = -omega/2" 1e-12 (-1.0)
    (Pauli_sum.coeff h (Pauli_string.single 0 Pauli.Y));
  (* detuning contributes Δ/2 to Z, vdW adds its own Z part *)
  let vdw = Pauli_sum.coeff h (Pauli_string.two 0 Pauli.Z 1 Pauli.Z) in
  check_close "Z" 1e-9 (2.0 -. vdw)
    (Pauli_sum.coeff h (Pauli_string.single 1 Pauli.Z))

let test_rydberg_distance_2d () =
  let spec = Device.with_geometry Device.Plane Device.aquila_paper in
  let ryd = Rydberg.build ~spec ~n:3 in
  let env = Variable.initial_env ryd.Rydberg.aais.Aais.pool in
  (match ryd.Rydberg.ys with
  | None -> Alcotest.fail "planar build lacks y coordinates"
  | Some ys ->
      env.(ryd.Rydberg.xs.(0).Variable.id) <- 0.0;
      env.(ys.(0).Variable.id) <- 0.0;
      env.(ryd.Rydberg.xs.(1).Variable.id) <- 3.0;
      env.(ys.(1).Variable.id) <- 4.0);
  check_close "3-4-5 triangle" 1e-12 5.0 (Rydberg.distance ryd ~env 0 1)

let test_rydberg_gauge_pins () =
  let ryd = Rydberg.build ~spec:Device.aquila_paper ~n:3 in
  let x0 = ryd.Rydberg.xs.(0) in
  Alcotest.(check bool) "atom 0 pinned" true
    (x0.Variable.bound.Qturbo_optim.Bounds.lo = 0.0
    && x0.Variable.bound.Qturbo_optim.Bounds.hi = 0.0)

let test_rydberg_check_layout () =
  let spec = Device.aquila_paper in
  Alcotest.(check (list string)) "fine layout" []
    (Rydberg.check_layout ~spec [| (0.0, 0.0); (10.0, 0.0) |]);
  Alcotest.(check bool) "too close" true
    (Rydberg.check_layout ~spec [| (0.0, 0.0); (1.0, 0.0) |] <> []);
  Alcotest.(check bool) "too wide" true
    (Rydberg.check_layout ~spec [| (0.0, 0.0); (200.0, 0.0) |] <> [])

let test_rydberg_hint_consistency () =
  (* every generated channel's hint must validate against its expression *)
  let ryd = Rydberg.build ~spec:Device.aquila ~n:5 in
  Array.iter
    (fun c ->
      if not (Instruction.validate_hint c) then
        Alcotest.failf "hint of %s does not validate" c.Instruction.label)
    (Aais.channels ryd.Rydberg.aais)

(* ---- Heisenberg AAIS ---- *)

let test_heisenberg_structure () =
  let heis = Heisenberg.build ~spec:Device.heisenberg_default ~n:4 in
  (* 4*3 single + 3*3 pair instructions, all single-channel *)
  Alcotest.(check int) "instructions" 21 (List.length heis.Heisenberg.aais.Aais.instructions);
  Alcotest.(check int) "channels" 21 (Aais.channel_count heis.Heisenberg.aais);
  Alcotest.(check int) "variables" 21 (Variable.count heis.Heisenberg.aais.Aais.pool)

let test_heisenberg_ring () =
  let spec = { Device.heisenberg_default with Device.ring = true } in
  let heis = Heisenberg.build ~spec ~n:4 in
  Alcotest.(check int) "pairs include wraparound" 4 (List.length heis.Heisenberg.pairs)

let test_heisenberg_hamiltonian () =
  let heis = Heisenberg.build ~spec:Device.heisenberg_default ~n:2 in
  let env = Variable.initial_env heis.Heisenberg.aais.Aais.pool in
  env.(heis.Heisenberg.singles.(0).(0).Variable.id) <- 1.5 (* X0 *);
  (match heis.Heisenberg.pairs with
  | (0, 1, vars) :: _ -> env.(vars.(2).Variable.id) <- 0.25 (* Z0Z1 *)
  | _ -> Alcotest.fail "expected pair (0,1)");
  let h = Heisenberg.hamiltonian heis ~env in
  check_close "X0" 1e-12 1.5 (Pauli_sum.coeff h (Pauli_string.single 0 Pauli.X));
  check_close "Z0Z1" 1e-12 0.25
    (Pauli_sum.coeff h (Pauli_string.two 0 Pauli.Z 1 Pauli.Z));
  Alcotest.(check int) "only set terms" 2 (Pauli_sum.term_count h)

let test_heisenberg_all_dynamic () =
  let heis = Heisenberg.build ~spec:Device.heisenberg_default ~n:3 in
  Alcotest.(check (list int)) "no fixed variables" []
    (Aais.fixed_variable_ids heis.Heisenberg.aais)

(* ---- Pulse ---- *)

let pulse_for_test () =
  {
    Pulse.spec = Device.aquila_paper;
    positions = [| (0.0, 0.0); (9.0, 0.0) |];
    segments =
      [
        { Pulse.duration = 0.5; omega = [| 1.0; 1.0 |]; phi = [| 0.0; 0.0 |]; delta = [| 0.0; 0.0 |] };
        { Pulse.duration = 0.3; omega = [| 2.0; 2.0 |]; phi = [| 0.0; 0.0 |]; delta = [| 1.0; 1.0 |] };
      ];
  }

let test_pulse_duration () =
  check_close "total" 1e-12 0.8 (Pulse.rydberg_duration (pulse_for_test ()))

let test_pulse_limits_ok () =
  Alcotest.(check (list string)) "within limits" [] (Pulse.within_limits (pulse_for_test ()))

let test_pulse_limits_violated () =
  let p = pulse_for_test () in
  let bad =
    {
      p with
      Pulse.segments =
        [ { Pulse.duration = 5.0; omega = [| 99.0; 0.0 |]; phi = [| 0.0; 0.0 |]; delta = [| 0.0; 0.0 |] } ];
    }
  in
  Alcotest.(check bool) "violations reported" true
    (List.length (Pulse.within_limits bad) >= 2)

let test_pulse_segment_hamiltonians () =
  let hs = Pulse.rydberg_segment_hamiltonians (pulse_for_test ()) in
  Alcotest.(check int) "two segments" 2 (List.length hs);
  (match hs with
  | (h1, t1) :: (h2, _) :: _ ->
      check_close "duration" 1e-12 0.5 t1;
      check_close "segment 1 X" 1e-12 0.5
        (Pauli_sum.coeff h1 (Pauli_string.single 0 Pauli.X));
      check_close "segment 2 X" 1e-12 1.0
        (Pauli_sum.coeff h2 (Pauli_string.single 0 Pauli.X))
  | _ -> Alcotest.fail "expected two segments")

let test_heisenberg_pulse () =
  let h = Pauli_sum.term 0.5 (Pauli_string.two 0 Pauli.X 1 Pauli.X) in
  let p : Pulse.heisenberg =
    {
      Pulse.spec = Device.heisenberg_default;
      segments = [ { Pulse.duration = 2.0; amplitudes = Pauli_sum.terms h } ];
    }
  in
  check_close "duration" 1e-12 2.0 (Pulse.heisenberg_duration p);
  match Pulse.heisenberg_segment_hamiltonians p with
  | [ (h', t) ] ->
      check_close "t" 1e-12 2.0 t;
      Alcotest.(check bool) "roundtrip" true (Pauli_sum.equal h h')
  | _ -> Alcotest.fail "expected one segment"

(* ---- qcheck ---- *)

let prop_rydberg_hamiltonian_hermitian_structure =
  QCheck.Test.make ~name:"rydberg channel effects only touch X/Y/Z terms" ~count:20
    QCheck.(int_range 2 8) (fun n ->
      let ryd = Rydberg.build ~spec:Device.aquila_paper ~n in
      Array.for_all
        (fun c ->
          List.for_all
            (fun (s, _) -> Pauli_string.weight s >= 1 && Pauli_string.weight s <= 2)
            (Instruction.effect_terms c))
        (Aais.channels ryd.Rydberg.aais))

let prop_polygon_inits_satisfy_min_separation =
  QCheck.Test.make ~name:"planar initial layout respects separation" ~count:15
    QCheck.(int_range 3 12) (fun n ->
      let spec = Device.aquila in
      let ryd = Rydberg.build ~spec ~n in
      let env = Variable.initial_env ryd.Rydberg.aais.Aais.pool in
      let violations =
        List.filter
          (fun v ->
            (* only separation violations matter here *)
            String.length v > 5 && String.sub v 0 5 = "atoms")
          (Rydberg.check_layout ~spec (Rydberg.positions ryd ~env))
      in
      violations = [])

let () =
  Alcotest.run "aais"
    [
      ( "variable",
        [
          Alcotest.test_case "pool" `Quick test_variable_pool;
          Alcotest.test_case "init clamped" `Quick test_variable_init_clamped;
        ] );
      ( "expr",
        [
          Alcotest.test_case "eval" `Quick test_expr_eval;
          Alcotest.test_case "trig" `Quick test_expr_eval_trig;
          Alcotest.test_case "negative power" `Quick test_expr_negative_power;
          Alcotest.test_case "vars" `Quick test_expr_vars;
          Alcotest.test_case "simplify" `Quick test_expr_simplify;
          Alcotest.test_case "deriv polynomial" `Quick test_expr_deriv_polynomial;
          Alcotest.test_case "deriv trig" `Quick test_expr_deriv_trig;
          Alcotest.test_case "deriv quotient" `Quick test_expr_deriv_quotient;
          Alcotest.test_case "deriv vs numeric" `Quick test_expr_deriv_matches_numeric;
          Alcotest.test_case "linearity detection" `Quick test_expr_is_linear;
        ] );
      ( "instruction",
        [
          Alcotest.test_case "lying hints rejected" `Quick test_hint_validation_rejects_lies;
          Alcotest.test_case "polar shape accepted" `Quick test_hint_polar_accepts_rydberg_shape;
          Alcotest.test_case "variables derived" `Quick test_instruction_variables_derived;
          Alcotest.test_case "identity effects filtered" `Quick
            test_effect_terms_filter_identity;
        ] );
      ( "rydberg",
        [
          Alcotest.test_case "local structure" `Quick test_rydberg_structure_local;
          Alcotest.test_case "global structure" `Quick test_rydberg_structure_global;
          Alcotest.test_case "vdW amplitude" `Quick test_rydberg_vdw_amplitude;
          Alcotest.test_case "drive Hamiltonian" `Quick test_rydberg_hamiltonian_drives;
          Alcotest.test_case "2-D distance" `Quick test_rydberg_distance_2d;
          Alcotest.test_case "gauge pins" `Quick test_rydberg_gauge_pins;
          Alcotest.test_case "layout checks" `Quick test_rydberg_check_layout;
          Alcotest.test_case "hints validate" `Quick test_rydberg_hint_consistency;
        ] );
      ( "heisenberg",
        [
          Alcotest.test_case "structure" `Quick test_heisenberg_structure;
          Alcotest.test_case "ring" `Quick test_heisenberg_ring;
          Alcotest.test_case "hamiltonian" `Quick test_heisenberg_hamiltonian;
          Alcotest.test_case "all dynamic" `Quick test_heisenberg_all_dynamic;
        ] );
      ( "pulse",
        [
          Alcotest.test_case "duration" `Quick test_pulse_duration;
          Alcotest.test_case "limits ok" `Quick test_pulse_limits_ok;
          Alcotest.test_case "limits violated" `Quick test_pulse_limits_violated;
          Alcotest.test_case "segment hamiltonians" `Quick test_pulse_segment_hamiltonians;
          Alcotest.test_case "heisenberg pulse" `Quick test_heisenberg_pulse;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_rydberg_hamiltonian_hermitian_structure;
            prop_polygon_inits_satisfy_min_separation;
          ] );
    ]
